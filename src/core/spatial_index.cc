#include "core/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace wgtt::core {

void SpatialIndex::build(std::vector<double> ap_x, double cell_m) {
  ap_x_ = std::move(ap_x);
  cell_m_ = cell_m > 0.0 ? cell_m : 30.0;
  order_.resize(ap_x_.size());
  std::iota(order_.begin(), order_.end(), 0);
  std::sort(order_.begin(), order_.end(), [this](int a, int b) {
    const double xa = ap_x_[static_cast<std::size_t>(a)];
    const double xb = ap_x_[static_cast<std::size_t>(b)];
    if (xa != xb) return xa < xb;
    return a < b;
  });
  sorted_x_.resize(ap_x_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    sorted_x_[i] = ap_x_[static_cast<std::size_t>(order_[i])];
  }
  min_x_ = sorted_x_.empty() ? 0.0 : sorted_x_.front();
  const double max_x = sorted_x_.empty() ? 0.0 : sorted_x_.back();
  num_segments_ =
      sorted_x_.empty()
          ? 0
          : static_cast<int>(std::floor((max_x - min_x_) / cell_m_)) + 1;
  seg_of_ap_.resize(ap_x_.size());
  for (std::size_t i = 0; i < ap_x_.size(); ++i) {
    seg_of_ap_[i] = segment_of(ap_x_[i]);
  }
}

int SpatialIndex::segment_of(double x) const {
  if (num_segments_ <= 0) return 0;
  const auto raw = static_cast<int>(std::floor((x - min_x_) / cell_m_));
  return std::clamp(raw, 0, num_segments_ - 1);
}

int SpatialIndex::nearest(double x) const {
  const std::size_t n = sorted_x_.size();
  if (n == 0) return -1;
  const std::size_t at = static_cast<std::size_t>(
      std::lower_bound(sorted_x_.begin(), sorted_x_.end(), x) -
      sorted_x_.begin());
  double dmin = std::numeric_limits<double>::infinity();
  if (at < n) dmin = sorted_x_[at] - x;
  if (at > 0) dmin = std::min(dmin, x - sorted_x_[at - 1]);
  // Several APs can sit at exactly |dx| == dmin (co-located installs, or x
  // exactly between two neighbours). Brute force scans AP indices ascending
  // with strict <, so the winner is the LOWEST AP index among them — walk
  // both equal-distance runs and take the min index.
  int best = -1;
  for (std::size_t i = at; i-- > 0;) {
    if (x - sorted_x_[i] > dmin) break;
    if (best < 0 || order_[i] < best) best = order_[i];
  }
  for (std::size_t i = at; i < n; ++i) {
    if (sorted_x_[i] - x > dmin) break;
    if (best < 0 || order_[i] < best) best = order_[i];
  }
  return best;
}

void SpatialIndex::neighbors(double x, double radius_m,
                             std::vector<int>& out) const {
  const auto first = std::lower_bound(sorted_x_.begin(), sorted_x_.end(),
                                      x - radius_m) -
                     sorted_x_.begin();
  const std::size_t start = out.size();
  for (std::size_t i = static_cast<std::size_t>(first); i < sorted_x_.size();
       ++i) {
    if (sorted_x_[i] > x + radius_m) break;
    out.push_back(order_[i]);
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end());
}

}  // namespace wgtt::core
