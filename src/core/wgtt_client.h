// The mobile client of a WGTT network.
//
// Thanks to the shared BSSID, the client is an unmodified 802.11 station:
// it addresses uplink frames to "the AP" (the BSSID) and keeps one downlink
// receive scoreboard that survives AP switches. It also emits a low-rate
// background probe (ARP-class chatter every real station produces), which
// is what gives the controller its first CSI for a client before any data
// flows, and keeps the fan-out set warm across idle periods.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_set>

#include "mac/wifi_mac.h"
#include "mobility/trajectory.h"
#include "net/ids.h"
#include "net/packet.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace wgtt::core {

class WgttClient {
 public:
  struct Config {
    mac::WifiMac::Config mac{};
    Time probe_interval = Time::ms(50);
    std::size_t probe_bytes = 42;
  };

  WgttClient(net::ClientId id, sim::Scheduler& sched, mac::Medium& medium,
             Rng rng, Config config, const mobility::Trajectory* trajectory);

  /// Sends an uplink IP packet (the client's stack assigns the IP-ID that
  /// the controller's de-duplication keys on).
  void send_uplink(net::Packet packet);

  /// Decoded, de-duplicated downlink packets arrive here.
  std::function<void(const net::Packet&)> on_downlink;

  void start_probing();
  void stop_probing();
  /// Emits one background probe immediately (used by off-channel scanning
  /// in multi-channel deployments: the client announces itself on the
  /// channel it just retuned to).
  void probe_now() { emit_probe(); }

  [[nodiscard]] net::ClientId id() const { return id_; }
  [[nodiscard]] mac::WifiMac& mac() { return mac_; }
  [[nodiscard]] mac::RadioId radio() const { return radio_; }
  /// Downlink packets the uid filter dropped as duplicates. Zero in normal
  /// operation (the MAC seq scoreboard already absorbs same-seq copies);
  /// nonzero when a failover replay or a zombie AP's backlog drain re-sends
  /// a packet outside the 256-seq scoreboard window.
  [[nodiscard]] std::uint64_t downlink_duplicates_dropped() const {
    return downlink_duplicates_dropped_;
  }
  [[nodiscard]] channel::Vec2 position() const {
    return trajectory_->position(sched_.now());
  }

 private:
  void emit_probe();
  [[nodiscard]] bool accept_downlink(const net::Packet& p);

  net::ClientId id_;
  sim::Scheduler& sched_;
  Config config_;
  const mobility::Trajectory* trajectory_;
  mac::WifiMac mac_;
  mac::RadioId radio_;
  std::uint16_t next_ip_id_ = 1;
  bool probing_ = false;
  std::unique_ptr<sim::Timer> probe_timer_;
  // Bounded FIFO hashset over packet uids: the failover overlap guard. The
  // MAC seq scoreboard dedups same-seq copies within its 256-seq window;
  // this catches replays landing OUTSIDE that window (deep failover rewind,
  // a zombie AP draining ancient backlog).
  static constexpr std::size_t kDownlinkDedupCapacity = 2048;
  std::unordered_set<std::uint64_t> seen_downlink_uids_;
  std::deque<std::uint64_t> seen_downlink_fifo_;
  std::uint64_t downlink_duplicates_dropped_ = 0;
};

}  // namespace wgtt::core
