// Streaming lower-median over a time-based sliding window.
//
// The paper's AP selection (§3.1.1) ranks APs by e_{floor(L/2)} — the lower
// median — of each link's ESNR readings from the last W milliseconds. The
// seed implementation recomputed that from scratch on every CSI report:
// copy the window into a vector, sort (or nth_element), index. That is
// O(W log W) work and two heap allocations per sample, multiplied by every
// AP of every client on every uplink frame — the hottest line of the
// controller by a wide margin.
//
// StreamingMedian maintains the same quantity incrementally with the
// classic dual-heap decomposition: a max-heap `low_` holding the smaller
// ceil(n/2) live values (its top IS the lower median) and a min-heap
// `high_` holding the larger floor(n/2). Expiring samples leave the window
// in arrival order (a deque remembers it), and are removed from the heaps
// *lazily*: a tombstone count is kept per exact value, dead entries are
// skipped when they surface at a heap top, and a heap is compacted when
// tombstones outnumber live entries. Every operation is amortized O(log W)
// and allocation-free in steady state; results are bit-identical to the
// sort-based computation because equal doubles are interchangeable.
//
// Single-threaded, like everything on one Scheduler. Used by
// core::EsnrTracker; tested against util/stats lower_median in core_test.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/units.h"

namespace wgtt::core {

class StreamingMedian {
 public:
  /// `window`: samples with timestamp <= now - window are expired.
  explicit StreamingMedian(Time window) : window_(window) {}

  /// Inserts a sample and expires anything older than the window.
  void add(Time now, double value);

  /// Lower median e_{floor(L/2)} (1-based, i.e. 0-based rank (n-1)/2) of
  /// the samples still in-window at `now`; nullopt if none remain.
  [[nodiscard]] std::optional<double> lower_median(Time now);

  /// Expires samples older than the window at `now`.
  void evict(Time now);

  /// Live (in-window as of the last add/evict/lower_median) sample count.
  [[nodiscard]] std::size_t size() const { return low_size_ + high_size_; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] Time window() const { return window_; }

  void clear();

 private:
  struct Sample {
    Time when;
    double value;
  };
  using Tombstones = std::unordered_map<std::uint64_t, std::uint32_t>;

  void mark_dead(double v);
  void rebalance();
  void prune_low();
  void prune_high();
  /// Rebuilds both heaps tombstone-free from the live samples in order_.
  void compact();
  [[nodiscard]] static std::uint64_t key_of(double v);

  Time window_;
  std::deque<Sample> order_;  // arrival order, drives eviction

  // low_: max-heap of the smaller half (after pruning, its top is the lower
  // median). high_: min-heap of the larger half. Both may carry expired
  // entries awaiting lazy removal; *_size_ count live ones only. The
  // cross-heap invariant max(low_) <= min(high_) holds over ALL entries,
  // dead included — that is what makes the side attribution in mark_dead
  // exact (see the .cc).
  std::priority_queue<double> low_;
  std::priority_queue<double, std::vector<double>, std::greater<>> high_;
  std::size_t low_size_ = 0;
  std::size_t high_size_ = 0;

  // Per-side tombstones by exact bit pattern (the evicted double is
  // bit-identical to the inserted one, so exact-match keys are sound; equal
  // values are interchangeable, so which equal copy dies is immaterial).
  Tombstones dead_low_;
  Tombstones dead_high_;
  std::size_t dead_low_total_ = 0;
  std::size_t dead_high_total_ = 0;
};

}  // namespace wgtt::core
