// Partition of the roadside AP array into controller domains (DESIGN.md §12).
//
// A domain owns a contiguous stretch of APs. The split is derived from the
// SpatialIndex's road segments when one is available — domain cuts land on
// segment boundaries so the per-segment scan structures never straddle two
// controllers — and falls back to an even split of the AP array otherwise.
// Like the SpatialIndex, the map is immutable after build(): controller
// crash/adoption re-homes APs at the protocol layer (AdoptAp), never by
// mutating the map.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ids.h"

namespace wgtt::core {

class SpatialIndex;

class DomainMap {
 public:
  /// Even split of `num_aps` APs into `num_domains` contiguous stretches.
  void build(std::uint32_t num_aps, std::uint32_t num_domains);

  /// Split aligned to the index's road segments: each domain gets a
  /// contiguous run of whole segments whose AP count is as close as possible
  /// to num_aps / num_domains. Falls back to the even split when the index
  /// is empty or has fewer segments than domains.
  void build(const SpatialIndex& index, std::uint32_t num_domains);

  [[nodiscard]] bool empty() const { return first_ap_.empty(); }
  [[nodiscard]] std::uint32_t num_domains() const {
    return first_ap_.empty()
               ? 0
               : static_cast<std::uint32_t>(first_ap_.size() - 1);
  }
  [[nodiscard]] std::uint32_t num_aps() const {
    return first_ap_.empty() ? 0 : first_ap_.back();
  }

  /// Home domain of an AP (the domain that owns it at build time).
  [[nodiscard]] std::uint32_t domain_of_ap(net::ApId ap) const {
    return domain_of_[net::index_of(ap)];
  }

  /// Half-open AP-index range [first, last) homed in domain d.
  [[nodiscard]] std::uint32_t first_ap(std::uint32_t d) const {
    return first_ap_[d];
  }
  [[nodiscard]] std::uint32_t last_ap(std::uint32_t d) const {
    return first_ap_[d + 1];
  }

  /// Line-topology neighbors of domain d ({d-1, d+1}, clipped to the ends).
  [[nodiscard]] std::vector<std::uint32_t> neighbors(std::uint32_t d) const;

  /// The alive domain nearest (in domain index distance) to `dead`, or
  /// num_domains() when every other domain is down. Ties break toward the
  /// lower index so every alive controller computes the same adopter.
  [[nodiscard]] std::uint32_t nearest_alive(
      std::uint32_t dead, const std::vector<bool>& alive) const;

 private:
  // first_ap_[d] .. first_ap_[d+1] is domain d's stretch; one trailing
  // sentinel entry equals num_aps.
  std::vector<std::uint32_t> first_ap_;
  std::vector<std::uint32_t> domain_of_;  // per-AP home domain
};

}  // namespace wgtt::core
