// Sliding-window ESNR state per (client, AP) link and the paper's AP
// selection rule (§3.1.1):
//
//   E(a) = sorted ESNR readings from AP a in the last W milliseconds
//   a*   = argmax_a  e_{floor(L_a / 2)}(a)      (the window median)
//
// W trades agility against noise: the paper's Figure 21 sweep finds 10 ms
// optimal at all vehicle speeds, which bench_fig21_window_size reproduces.
//
// The window median itself is maintained incrementally by a
// core::StreamingMedian per link (amortized O(log W) per CSI sample and
// allocation-free in steady state) instead of re-sorting the window on
// every report; the two are bit-identical, which core_test asserts.
//
// Links are stored contiguously per client (first-heard order, preserving
// the argmax tie-break of the original per-client AP list), and when a
// SpatialIndex is wired via set_spatial the per-client scans are bounded to
// APs within the neighbor radius of the client's anchor AP — the last AP to
// report CSI. Any AP with an in-window sample or fresh last_heard is within
// 2 * sense_range of the anchor (both had to hear the client within the
// freshness horizon, during which the client moves metres, not hundreds of
// metres), so a radius of 2 * sense_range plus slack makes the bounded scan
// return byte-identical results to the full scan; spatial_test proves this
// over a seeded sweep.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/spatial_index.h"
#include "core/streaming_median.h"
#include "net/ids.h"
#include "util/units.h"

namespace wgtt::core {

class EsnrTracker {
 public:
  explicit EsnrTracker(Time window);

  void add(net::ClientId client, net::ApId ap, Time now, double esnr_db);

  /// Window median for one link, if any sample is in-window.
  [[nodiscard]] std::optional<double> median(net::ClientId client,
                                             net::ApId ap, Time now);

  /// The selection rule: AP with maximal window-median ESNR. `evicted`,
  /// when non-null, is indexed by AP and masks APs out of the argmax — the
  /// controller passes its liveness eviction set so a Dead AP can never win
  /// selection no matter how good its (stale) CSI looks.
  [[nodiscard]] std::optional<net::ApId> best_ap(
      net::ClientId client, Time now,
      const std::vector<bool>* evicted = nullptr);

  /// APs that have heard the client within `freshness` — the controller's
  /// downlink fan-out set (paper §3.1.2 footnote 1).
  [[nodiscard]] std::vector<net::ApId> fresh_aps(net::ClientId client, Time now,
                                                 Time freshness);

  /// When this link last produced CSI (any age), if ever.
  [[nodiscard]] std::optional<Time> last_heard(net::ClientId client,
                                               net::ApId ap) const;

  /// Most recent metric sample on this link, regardless of window age.
  /// Used to judge challengers while the serving AP is briefly silent.
  [[nodiscard]] std::optional<double> last_value(net::ClientId client,
                                                 net::ApId ap) const;

  [[nodiscard]] Time window() const { return window_; }

  /// Bounds per-client scans to APs within `radius_m` (along the road) of
  /// the client's anchor AP. Links are never deleted — only skipped by the
  /// reach filter — so iteration order (and with it every tie-break) stays
  /// identical to the unbounded tracker. `index` must outlive the tracker;
  /// nullptr restores the unbounded behaviour.
  void set_spatial(const SpatialIndex* index, double radius_m);

  /// AP index of the last AP to report CSI for this client, or -1.
  [[nodiscard]] int anchor_ap(net::ClientId client) const;

 private:
  struct Link {
    net::ApId ap;
    StreamingMedian samples;
    Time last_heard = Time::zero();
    double last_value = 0.0;
    Link(net::ApId a, Time w) : ap(a), samples(w) {}
  };
  struct PerClient {
    std::vector<Link> links;  // first-heard order
    int anchor = -1;          // AP index of the last reporter
  };

  [[nodiscard]] Link* find_link(PerClient& pc, net::ApId ap);
  [[nodiscard]] const Link* find_link(const PerClient& pc, net::ApId ap) const;
  [[nodiscard]] bool in_reach(const PerClient& pc, net::ApId ap) const;

  Time window_;
  const SpatialIndex* spatial_ = nullptr;
  double radius_m_ = 0.0;
  std::unordered_map<net::ClientId, PerClient> clients_;
};

}  // namespace wgtt::core
