// Sliding-window ESNR state per (client, AP) link and the paper's AP
// selection rule (§3.1.1):
//
//   E(a) = sorted ESNR readings from AP a in the last W milliseconds
//   a*   = argmax_a  e_{floor(L_a / 2)}(a)      (the window median)
//
// W trades agility against noise: the paper's Figure 21 sweep finds 10 ms
// optimal at all vehicle speeds, which bench_fig21_window_size reproduces.
//
// The window median itself is maintained incrementally by a
// core::StreamingMedian per link (amortized O(log W) per CSI sample and
// allocation-free in steady state) instead of re-sorting the window on
// every report; the two are bit-identical, which core_test asserts.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/streaming_median.h"
#include "net/ids.h"
#include "util/units.h"

namespace wgtt::core {

class EsnrTracker {
 public:
  explicit EsnrTracker(Time window);

  void add(net::ClientId client, net::ApId ap, Time now, double esnr_db);

  /// Window median for one link, if any sample is in-window.
  [[nodiscard]] std::optional<double> median(net::ClientId client,
                                             net::ApId ap, Time now);

  /// The selection rule: AP with maximal window-median ESNR. `evicted`,
  /// when non-null, is indexed by AP and masks APs out of the argmax — the
  /// controller passes its liveness eviction set so a Dead AP can never win
  /// selection no matter how good its (stale) CSI looks.
  [[nodiscard]] std::optional<net::ApId> best_ap(
      net::ClientId client, Time now,
      const std::vector<bool>* evicted = nullptr);

  /// APs that have heard the client within `freshness` — the controller's
  /// downlink fan-out set (paper §3.1.2 footnote 1).
  [[nodiscard]] std::vector<net::ApId> fresh_aps(net::ClientId client, Time now,
                                                 Time freshness);

  /// When this link last produced CSI (any age), if ever.
  [[nodiscard]] std::optional<Time> last_heard(net::ClientId client,
                                               net::ApId ap) const;

  /// Most recent metric sample on this link, regardless of window age.
  /// Used to judge challengers while the serving AP is briefly silent.
  [[nodiscard]] std::optional<double> last_value(net::ClientId client,
                                                 net::ApId ap) const;

  [[nodiscard]] Time window() const { return window_; }

 private:
  struct Key {
    net::ClientId client;
    net::ApId ap;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return (static_cast<std::size_t>(k.client) << 32) ^
             static_cast<std::size_t>(k.ap);
    }
  };
  struct LinkState {
    StreamingMedian samples;
    Time last_heard = Time::zero();
    double last_value = 0.0;
    explicit LinkState(Time w) : samples(w) {}
  };

  Time window_;
  std::unordered_map<Key, LinkState, KeyHash> links_;
  std::unordered_map<net::ClientId, std::vector<net::ApId>> aps_of_client_;
};

}  // namespace wgtt::core
