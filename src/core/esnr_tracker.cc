#include "core/esnr_tracker.h"

#include <algorithm>

namespace wgtt::core {

EsnrTracker::EsnrTracker(Time window) : window_(window) {}

void EsnrTracker::add(net::ClientId client, net::ApId ap, Time now,
                      double esnr_db) {
  const Key key{client, ap};
  auto it = links_.find(key);
  if (it == links_.end()) {
    it = links_.emplace(key, LinkState{window_}).first;
    auto& aps = aps_of_client_[client];
    if (std::find(aps.begin(), aps.end(), ap) == aps.end()) aps.push_back(ap);
  }
  it->second.samples.add(now, esnr_db);
  it->second.last_heard = now;
  it->second.last_value = esnr_db;
}

std::optional<double> EsnrTracker::median(net::ClientId client, net::ApId ap,
                                          Time now) {
  auto it = links_.find(Key{client, ap});
  if (it == links_.end()) return std::nullopt;
  return it->second.samples.lower_median(now);
}

std::optional<net::ApId> EsnrTracker::best_ap(net::ClientId client, Time now,
                                              const std::vector<bool>* evicted) {
  auto ca = aps_of_client_.find(client);
  if (ca == aps_of_client_.end()) return std::nullopt;
  std::optional<net::ApId> best;
  double best_median = 0.0;
  for (net::ApId ap : ca->second) {
    if (evicted != nullptr) {
      const auto idx = static_cast<std::size_t>(net::index_of(ap));
      if (idx < evicted->size() && (*evicted)[idx]) continue;
    }
    const auto m = median(client, ap, now);
    if (!m) continue;
    if (!best || *m > best_median) {
      best = ap;
      best_median = *m;
    }
  }
  return best;
}

std::optional<Time> EsnrTracker::last_heard(net::ClientId client,
                                            net::ApId ap) const {
  auto it = links_.find(Key{client, ap});
  if (it == links_.end()) return std::nullopt;
  return it->second.last_heard;
}

std::optional<double> EsnrTracker::last_value(net::ClientId client,
                                              net::ApId ap) const {
  auto it = links_.find(Key{client, ap});
  if (it == links_.end()) return std::nullopt;
  return it->second.last_value;
}

std::vector<net::ApId> EsnrTracker::fresh_aps(net::ClientId client, Time now,
                                              Time freshness) {
  std::vector<net::ApId> out;
  auto ca = aps_of_client_.find(client);
  if (ca == aps_of_client_.end()) return out;
  for (net::ApId ap : ca->second) {
    auto it = links_.find(Key{client, ap});
    if (it != links_.end() && now - it->second.last_heard <= freshness) {
      out.push_back(ap);
    }
  }
  return out;
}

}  // namespace wgtt::core
