#include "core/esnr_tracker.h"

#include <algorithm>
#include <cmath>

namespace wgtt::core {

EsnrTracker::EsnrTracker(Time window) : window_(window) {}

EsnrTracker::Link* EsnrTracker::find_link(PerClient& pc, net::ApId ap) {
  for (Link& l : pc.links) {
    if (l.ap == ap) return &l;
  }
  return nullptr;
}

const EsnrTracker::Link* EsnrTracker::find_link(const PerClient& pc,
                                                net::ApId ap) const {
  for (const Link& l : pc.links) {
    if (l.ap == ap) return &l;
  }
  return nullptr;
}

bool EsnrTracker::in_reach(const PerClient& pc, net::ApId ap) const {
  if (spatial_ == nullptr || spatial_->empty() || pc.anchor < 0) return true;
  const auto idx = static_cast<int>(net::index_of(ap));
  if (idx >= spatial_->num_aps()) return true;
  return std::abs(spatial_->ap_x(idx) - spatial_->ap_x(pc.anchor)) <=
         radius_m_;
}

void EsnrTracker::set_spatial(const SpatialIndex* index, double radius_m) {
  spatial_ = index;
  radius_m_ = radius_m;
}

int EsnrTracker::anchor_ap(net::ClientId client) const {
  auto it = clients_.find(client);
  return it == clients_.end() ? -1 : it->second.anchor;
}

void EsnrTracker::add(net::ClientId client, net::ApId ap, Time now,
                      double esnr_db) {
  PerClient& pc = clients_[client];
  Link* link = find_link(pc, ap);
  if (link == nullptr) {
    pc.links.emplace_back(ap, window_);
    link = &pc.links.back();
  }
  link->samples.add(now, esnr_db);
  link->last_heard = now;
  link->last_value = esnr_db;
  pc.anchor = static_cast<int>(net::index_of(ap));
  // Long-silent links are deliberately NOT erased: removing a link and later
  // re-hearing that AP would re-append it at the back of `links`, losing the
  // first-heard iteration order that best_ap tie-breaks and fresh_aps output
  // depend on — and with it byte-identity against the unindexed run. Memory
  // stays bounded anyway: StreamingMedian evicts out-of-window samples on
  // every query/add, so a silent link costs only the empty Link slot, and the
  // link count is capped by the APs ever audible from the client's span.
}

std::optional<double> EsnrTracker::median(net::ClientId client, net::ApId ap,
                                          Time now) {
  auto it = clients_.find(client);
  if (it == clients_.end()) return std::nullopt;
  Link* link = find_link(it->second, ap);
  if (link == nullptr) return std::nullopt;
  return link->samples.lower_median(now);
}

std::optional<net::ApId> EsnrTracker::best_ap(net::ClientId client, Time now,
                                              const std::vector<bool>* evicted) {
  auto it = clients_.find(client);
  if (it == clients_.end()) return std::nullopt;
  PerClient& pc = it->second;
  std::optional<net::ApId> best;
  double best_median = 0.0;
  for (Link& l : pc.links) {
    if (evicted != nullptr) {
      const auto idx = static_cast<std::size_t>(net::index_of(l.ap));
      if (idx < evicted->size() && (*evicted)[idx]) continue;
    }
    if (!in_reach(pc, l.ap)) continue;
    const auto m = l.samples.lower_median(now);
    if (!m) continue;
    if (!best || *m > best_median) {
      best = l.ap;
      best_median = *m;
    }
  }
  return best;
}

std::optional<Time> EsnrTracker::last_heard(net::ClientId client,
                                            net::ApId ap) const {
  auto it = clients_.find(client);
  if (it == clients_.end()) return std::nullopt;
  const Link* link = find_link(it->second, ap);
  if (link == nullptr) return std::nullopt;
  return link->last_heard;
}

std::optional<double> EsnrTracker::last_value(net::ClientId client,
                                              net::ApId ap) const {
  auto it = clients_.find(client);
  if (it == clients_.end()) return std::nullopt;
  const Link* link = find_link(it->second, ap);
  if (link == nullptr) return std::nullopt;
  return link->last_value;
}

std::vector<net::ApId> EsnrTracker::fresh_aps(net::ClientId client, Time now,
                                              Time freshness) {
  std::vector<net::ApId> out;
  auto it = clients_.find(client);
  if (it == clients_.end()) return out;
  const PerClient& pc = it->second;
  for (const Link& l : pc.links) {
    if (!in_reach(pc, l.ap)) continue;
    if (now - l.last_heard <= freshness) out.push_back(l.ap);
  }
  return out;
}

}  // namespace wgtt::core
