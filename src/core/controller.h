// The WGTT controller (paper §3, Figure 5): the paper's primary
// contribution lives here and in the WgttAp.
//
// Control plane: ingest CSI reports from every AP, compute ESNR, run the
// sliding-window-median AP selection, and drive the three-step switching
// protocol (stop / start / ack) with a 30 ms ack-timeout retransmission and
// an at-most-one-outstanding-switch guarantee per client.
//
// Data plane: fan each downlink packet out (tagged with the client's 12-bit
// index) to every AP that has recently heard the client; de-duplicate
// uplink packets forwarded by multiple APs using the 48-bit
// (source, IP-ID) key hashset (§3.2.2-§3.2.3).
//
// Liveness (opt-in, DESIGN.md §7): a periodic heartbeat per AP drives an
// Alive -> Suspect -> Dead -> Recovering state machine. Dead APs are evicted
// from the fan-out and the selection argmax, clients served by one are
// force-failed-over by bootstrapping a live AP from the controller's own
// index watermark, and readmission is flap-damped with exponential backoff.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/domain_map.h"
#include "core/esnr_tracker.h"
#include "core/penalty_timers.h"
#include "core/spatial_index.h"
#include "net/backhaul.h"
#include "net/ids.h"
#include "net/messages.h"
#include "obs/metrics.h"
#include "sim/scheduler.h"

namespace wgtt::core {

class Controller {
 public:
  /// Link metric driving AP selection. The paper uses the window median of
  /// ESNR; kMeanRssi is the ablation (what RSSI-based selection would do).
  enum class SelectionMetric { kMedianEsnr, kMeanRssi };

  struct Config {
    SelectionMetric metric = SelectionMetric::kMedianEsnr;
    /// W, the AP-selection sliding window (paper §5.3.1: 10 ms optimal).
    Time selection_window = Time::ms(10);
    /// Minimum time between completed switches (paper §5.3.3 sweeps
    /// 40-120 ms; smaller is better down to this default).
    Time switch_hysteresis = Time::ms(40);
    /// stop/ack retransmission timeout (paper §3.1.2: 30 ms).
    Time ack_timeout = Time::ms(30);
    /// Freshness horizon for the downlink fan-out set.
    Time fanout_freshness = Time::ms(200);
    /// Bound on the de-duplication hashset.
    std::size_t dedup_capacity = 1 << 16;
    /// Require the challenger's median to beat the incumbent's by this many
    /// dB (0 = paper's pure argmax).
    double switch_margin_db = 0.0;
    /// A switch away from the serving AP requires either in-window CSI from
    /// it (so the comparison is real) or silence from it for this long.
    /// Guards against the degenerate first-report-wins decision right after
    /// an uplink lull, when the window holds a single AP's sample.
    Time serving_stale_timeout = Time::ms(250);

    // --- Spatial interest management (DESIGN.md §9) ---
    /// Bound the no-fresh-CSI downlink fallback to the spatial neighborhood
    /// of the client's anchor AP instead of broadcasting to every AP in the
    /// deployment. Needs set_spatial and at least one CSI report from the
    /// client (no anchor yet -> still all APs). Off by default: it changes
    /// behaviour after long silences, so only city-scale scenarios opt in.
    bool bounded_fallback = false;
    /// When > 0 and spatial state is wired, each heartbeat tick probes only
    /// the APs whose road segment falls in the current 1-of-N round-robin
    /// group instead of every AP, bounding per-tick control traffic at
    /// city scale. Each AP is still probed (and its previous probe judged)
    /// every N ticks, so detection latency grows by the same factor.
    /// 0 = legacy all-AP probing.
    int heartbeat_stagger = 0;

    // --- AP liveness & forced failover (DESIGN.md §7) ---
    /// Master switch, off by default: heartbeats are extra backhaul traffic
    /// (they consume jitter RNG draws), so fault-free seeded runs stay
    /// byte-identical unless a scenario opts in.
    bool liveness_enabled = false;
    /// Heartbeat probe period per AP.
    Time heartbeat_interval = Time::ms(25);
    /// Consecutive missed heartbeats before an AP is declared Dead. The
    /// first miss already demotes Alive -> Suspect.
    int heartbeat_miss_threshold = 3;
    /// Flap damping: a Dead AP that answers again waits this long before
    /// readmission, doubling per death up to the max.
    Time readmission_backoff = Time::ms(100);
    Time readmission_backoff_max = Time::ms(1600);
    /// On forced failover the new AP is bootstrapped from the controller's
    /// own fan-out watermark, rewound by this many indices so packets the
    /// dead AP accepted but never delivered are replayed. The client's
    /// duplicate suppression absorbs the overlap.
    std::uint16_t failover_replay = 32;

    // --- Multi-controller domains (DESIGN.md §12) ---
    struct DomainConfig {
      /// Master switch, off by default: inter-controller traffic consumes
      /// RNG draws, so single-controller seeded runs stay byte-identical
      /// unless a scenario opts in. With num_domains == 1 everything below
      /// stays inert even when enabled.
      bool enabled = false;
      /// This controller's domain id (== its NodeId::controller index).
      std::uint32_t id = 0;
      std::uint32_t num_domains = 1;
      /// Per-message timeout of the handover state-transfer handshake; each
      /// retry doubles it (bounded retry budget, arXiv 2008.09438).
      Time handover_timeout = Time::ms(30);
      /// Attempts (first send + retries) before abort-to-source.
      int handover_max_retries = 4;
      /// Penalty bar on (client, target-domain) after a handover lands or
      /// aborts: no further attempt toward that domain until it expires
      /// (osmo-bsc penalty_timers).
      Time penalty_window = Time::ms(500);
      /// The transferred watermark is pre-rewound by this many indices so
      /// the target replays the tail in flight at transfer time.
      std::uint16_t handover_replay = 32;
      /// Epoch leap applied when adopting a crashed neighbor's client from
      /// gossiped state: must exceed any epochs the dead controller can have
      /// minted since its last gossip, or the adopter's bootstrap start is
      /// stale at the AP.
      std::uint32_t epoch_jump = 64;
      /// Most recent uplink dedup keys carried in the state transfer.
      std::size_t dedup_seed_max = 32;
      /// Controller-to-controller heartbeat probing (the PR-5 machinery
      /// reused peer-to-peer).
      Time heartbeat_interval = Time::ms(25);
      int miss_threshold = 3;
      /// Ownership gossip period (crash-adoption bootstrap + split-brain
      /// reconciliation).
      Time sync_interval = Time::ms(100);
    };
    DomainConfig domains;
  };

  struct Stats {
    std::uint64_t csi_reports = 0;
    std::uint64_t downlink_packets = 0;
    std::uint64_t downlink_fanout_copies = 0;
    std::uint64_t uplink_packets = 0;
    std::uint64_t uplink_duplicates_dropped = 0;
    std::uint64_t switches_initiated = 0;
    std::uint64_t switches_completed = 0;
    std::uint64_t stop_retransmissions = 0;
    /// Downlink packets dropped because the fan-out set came up empty after
    /// the fallback and liveness eviction — every candidate AP was dead or
    /// recovering. Before this counter existed such packets vanished with
    /// no trace (the silent-drop bug fixed in PR 7).
    std::uint64_t fanout_empty_drops = 0;
    /// Acks whose (epoch, AP) did not match the outstanding switch:
    /// duplicates from a retransmit chain or leftovers of a superseded
    /// switch. Ignoring them is the fix for the stale-ack-completes-a-
    /// later-switch bug.
    std::uint64_t stale_acks_ignored = 0;
    // Liveness & failover (all zero while liveness is disabled).
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t heartbeat_acks = 0;
    std::uint64_t aps_marked_suspect = 0;
    std::uint64_t aps_marked_dead = 0;
    std::uint64_t aps_readmitted = 0;
    /// Switches minted because the serving (or pending) AP died, completed
    /// by bootstrapping the new AP from the controller's own watermark.
    std::uint64_t forced_failovers = 0;
    /// Serving AP died with no usable fallback in the selection window; the
    /// client is unserved until fresh CSI re-bootstraps it (degraded mode).
    std::uint64_t failovers_unserved = 0;
    /// Quench stops sent to a readmitted AP that may still believe it
    /// serves a client that was failed over away while it was dead.
    std::uint64_t quench_stops = 0;
    // Multi-controller domains (all zero in single-domain runs).
    std::uint64_t handover_requests = 0;   // handshakes initiated (as source)
    std::uint64_t handovers_out = 0;       // completed, ownership released
    std::uint64_t handovers_in = 0;        // accepted, ownership taken
    std::uint64_t handover_retries = 0;
    /// Retry budget exhausted (or target refused/died): ownership stays
    /// here and the target domain is penalty-barred.
    std::uint64_t handover_aborts = 0;
    /// Handover attempts suppressed by an armed penalty timer.
    std::uint64_t penalty_blocked = 0;
    std::uint64_t csi_forwarded = 0;       // cross-domain CSI relays
    std::uint64_t uplink_forwarded = 0;
    std::uint64_t downlink_forwarded = 0;
    /// Switch acks relayed to the owning domain (the acking AP is homed
    /// here, e.g. a returned stretch whose clients have not handed over yet).
    std::uint64_t switch_acks_forwarded = 0;
    /// Cross-domain traffic dropped because no alive believed owner exists
    /// (transient while ownership/gossip settles; never re-forwarded).
    std::uint64_t misrouted_dropped = 0;
    std::uint64_t peers_marked_dead = 0;
    std::uint64_t peers_recovered = 0;
    std::uint64_t aps_adopted = 0;
    std::uint64_t aps_returned = 0;
    std::uint64_t clients_adopted = 0;
    /// Adopted with no usable CSI anywhere: unserved until the re-homed
    /// APs' first reports re-bootstrap (degraded mode).
    std::uint64_t adopted_unserved = 0;
    /// Ownership released to a peer whose gossiped epoch was newer
    /// (split-brain reconciliation).
    std::uint64_t ownership_yields = 0;
  };

  struct SwitchRecord {
    Time initiated;
    Time completed;
    net::ClientId client;
    net::ApId from;
    net::ApId to;
  };

  Controller(sim::Scheduler& sched, net::Backhaul& backhaul, Config config);

  void add_ap(net::ApId ap);
  void add_client(net::ClientId client);

  /// Downlink entry point (the wired/server side hands packets here).
  void send_downlink(net::Packet packet);

  /// De-duplicated uplink packets exit here toward the server side.
  std::function<void(const net::Packet&)> on_uplink;

  /// Observation hook fired whenever the serving AP of a client changes
  /// (switch completion), for association-timeline plots (Figures 14/15/22).
  std::function<void(net::ClientId, net::ApId, Time)> on_serving_changed;

  /// Observation hook fired when a switch is initiated — a regular
  /// stop→start switch, the initial bootstrap, or a forced failover.
  /// Arguments: (client, old serving AP if any, target AP, time). Pairs
  /// with on_serving_changed to bracket the stop→start→ack span in traces.
  std::function<void(net::ClientId, std::optional<net::ApId>, net::ApId, Time)>
      on_switch_initiated;

  /// Observation hook fired when a downlink packet is dropped because the
  /// fan-out set was empty (see Stats::fanout_empty_drops).
  std::function<void(net::ClientId, Time)> on_fanout_empty;

  /// Wires the system-wide payload pool (owned by the scenario; must
  /// outlive the controller). With a pool, send_downlink acquires each
  /// packet once and fans out N refcounted 4-byte handles instead of N
  /// Packet copies (DESIGN.md §10). nullptr (the default) keeps the legacy
  /// copying fan-out — the pooled-vs-copied equivalence test drives both.
  void set_payload_pool(net::PacketPool* pool) { payload_pool_ = pool; }

  /// Wires the road-segment spatial index (owned by the scenario; must
  /// outlive the controller). Bounds the tracker's per-client ESNR scans to
  /// `neighbor_radius_m` of the client's anchor AP, shards per-client state
  /// by road segment (so mark_dead touches only nearby clients), and
  /// enables the bounded fan-out fallback / staggered heartbeats when those
  /// knobs are set. Call once, after every add_ap. nullptr detaches.
  void set_spatial(const SpatialIndex* index, double neighbor_radius_m);

  /// Wires the deployment-wide domain map (owned by the scenario; must
  /// outlive the controller). Sizes the liveness/eviction arrays to the
  /// TOTAL AP count — forwarded CSI feeds foreign AP indices into this
  /// controller's tracker, so every per-AP-index array must cover them.
  /// No-op outside multi-domain mode.
  void set_domain_map(const DomainMap* map);

  /// Initial ownership, set by the scenario at build time: this controller
  /// owns the client iff `owner` is its own domain id; otherwise it records
  /// `owner` as the believed owner for cross-domain forwarding.
  void set_client_owner(net::ClientId client, std::uint32_t owner);

  /// Controller crash/restart (the fail-stop model): a crashed controller
  /// handles nothing, its timers stop, and its volatile state — ownership,
  /// pending handshakes, serving beliefs, peer liveness — is wiped. The
  /// scenario additionally takes the backhaul node down. Restart is cold:
  /// ownership beliefs are repopulated by peer gossip.
  void set_crashed(bool crashed);
  [[nodiscard]] bool crashed() const { return crashed_; }

  /// Observation hook fired when this controller takes or releases
  /// ownership of a client; the argument is the new owning domain. The
  /// scenario uses it to route server-side downlink.
  std::function<void(net::ClientId, std::uint32_t)> on_ownership_changed;

  [[nodiscard]] std::uint32_t domain_id() const { return config_.domains.id; }
  /// Does this controller currently own the client's control plane?
  [[nodiscard]] bool owns_client(net::ClientId client) const;
  /// Is an inter-domain handover of this client outstanding here (as the
  /// source)? Exempted from the single-owner invariant until it settles.
  [[nodiscard]] bool handover_pending(net::ClientId client) const;
  /// The domain this controller believes owns the client.
  [[nodiscard]] std::uint32_t believed_owner(net::ClientId client) const;
  /// This controller's view of a peer domain's liveness.
  [[nodiscard]] bool peer_alive(std::uint32_t domain) const;
  /// Last time this controller changed its mind about a peer's liveness
  /// (marked dead or recovered). Failover/return churn is in flight until
  /// this has been quiet for a while; invariant checks exempt that window.
  [[nodiscard]] std::optional<Time> last_peer_transition() const {
    return last_peer_transition_;
  }
  /// APs this controller currently operates (home plus adopted).
  [[nodiscard]] const std::vector<net::ApId>& aps() const { return aps_; }

  /// Per-AP liveness verdict, driven by the heartbeat state machine.
  /// Dead and Recovering APs are evicted from the downlink fan-out and the
  /// ESNR selection argmax; Suspect APs keep serving (one missed heartbeat
  /// is not evidence enough to abandon a good radio link).
  enum class ApLiveness : std::uint8_t { kAlive, kSuspect, kDead, kRecovering };
  struct ApHealth {
    ApLiveness state = ApLiveness::kAlive;
    Time since = Time::zero();  // when the AP entered this state
  };
  /// Health of one AP. Always Alive while liveness is disabled.
  [[nodiscard]] ApHealth ap_health(net::ApId ap) const;

  /// Point-in-time snapshot of one client's control-plane state. Exists for
  /// the post-mortem forensics dump: when an invariant trips, the exact
  /// pending-switch bookkeeping (epoch, watermark, forced flag) is what
  /// distinguishes a stalled handshake from a lost ack or a rewound index.
  struct ClientDebug {
    net::ClientId client{};
    std::uint16_t next_index = 0;
    std::uint64_t downlink_sent = 0;
    std::optional<net::ApId> serving;
    bool switch_pending = false;
    bool pending_forced = false;
    net::ApId pending_target{};
    net::ApId pending_from{};
    Time pending_since;
    std::uint32_t epoch = 0;
    std::uint16_t pending_first_index = 0;
    Time last_switch_completed;
  };
  /// Debug snapshots of every registered client, ordered by client index.
  [[nodiscard]] std::vector<ClientDebug> client_debug() const;

  [[nodiscard]] std::optional<net::ApId> serving_ap(net::ClientId client) const;
  /// Initiation time of the client's outstanding switch, if one is pending.
  /// The invariant checker uses this to detect permanently stalled clients.
  [[nodiscard]] std::optional<Time> pending_switch_since(
      net::ClientId client) const;
  /// Completion time of the client's last switch (a large negative sentinel
  /// before the first one completes).
  [[nodiscard]] Time last_switch_completed(net::ClientId client) const;
  [[nodiscard]] const std::vector<SwitchRecord>& switch_log() const {
    return switch_log_;
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] EsnrTracker& tracker() { return tracker_; }

  /// Registers and starts recording `controller.*` metrics (selection
  /// decisions, de-dup hit/miss and table occupancy, switch-phase timing).
  /// nullptr detaches. Instrument pointers resolve once, here — the data
  /// path only pays a null check plus relaxed increments.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  struct ClientState {
    std::uint16_t next_index = 0;  // 12-bit downlink index counter
    std::uint64_t downlink_sent = 0;  // total fanned out (clamps the replay)
    std::optional<net::ApId> serving;
    // In-progress switch (at most one outstanding per client).
    bool switch_pending = false;
    // The pending switch is a forced failover: the old AP is dead, so the
    // retransmit path must resend the bootstrap start to the new AP rather
    // than a stop the corpse can never answer.
    bool pending_forced = false;
    net::ApId pending_target{};
    net::ApId pending_from{};
    Time pending_since;
    // Per-client switch-epoch counter; the pending switch carries the
    // latest minted value and the ack must echo it.
    std::uint32_t epoch = 0;
    // Fan-out index captured when a bootstrap was initiated. Retransmits
    // must resend THIS, not the since-advanced next_index, or every packet
    // fanned out between initiation and retransmit is silently skipped.
    std::uint16_t pending_first_index = 0;
    std::unique_ptr<sim::Timer> ack_timer;
    Time last_switch_completed = Time::ms(-1'000'000);
    // Slab bookkeeping: slots exist for every client index up to the
    // highest registered one; only registered slots are live.
    bool registered = false;
    // AP index of the last AP to report CSI for this client (-1 before the
    // first report) and the road segment shard the client currently sits
    // in (-1 while unsharded). Maintained by handle_csi/update_shard.
    int anchor_ap = -1;
    int shard = -1;
    // --- Multi-domain ownership (inert in single-domain mode) ---
    bool owned = true;                // this domain owns the control plane
    std::uint32_t owner_domain = 0;   // believed owner (== domains.id if us)
    // Outstanding inter-domain handover (as the source domain).
    bool ho_pending = false;
    std::uint32_t ho_target_domain = 0;
    net::ApId ho_target_ap{};
    std::uint32_t ho_seq = 0;
    int ho_attempts = 0;
    Time ho_started;
    Time ho_timeout;                  // current (backed-off) retry timeout
    std::unique_ptr<sim::Timer> ho_timer;
    // Target-side idempotency: the last accepted transfer, so a
    // retransmitted request replays the ack instead of re-bootstrapping.
    bool ho_acc_valid = false;
    std::uint32_t ho_acc_seq = 0;
    std::uint32_t ho_acc_src = 0;
    // Last-gossiped state while the client is believed owned elsewhere; the
    // crash-adoption bootstrap reads it.
    bool gossip_valid = false;
    std::uint32_t gossip_epoch = 0;
    std::uint16_t gossip_next_index = 0;
    std::uint64_t gossip_downlink_sent = 0;
    bool gossip_has_serving = false;
    net::ApId gossip_serving{};
  };

  void handle_backhaul(net::NodeId from, net::BackhaulMessage msg);
  void handle_csi(const net::CsiReport& report);
  void process_csi(const net::CsiReport& report, ClientState& cs);
  void handle_uplink(net::UplinkData&& msg);
  void handle_switch_ack(const net::SwitchAck& msg);
  void maybe_switch(net::ClientId client);
  void initiate_switch(net::ClientId client, net::ApId target);
  void bootstrap(net::ClientId client, net::ApId first_ap);
  [[nodiscard]] bool dedup_accept(const net::Packet& p);

  // Multi-domain machinery (no-ops while multi_domain() is false).
  [[nodiscard]] bool multi_domain() const {
    return config_.domains.enabled && config_.domains.num_domains > 1;
  }
  [[nodiscard]] net::NodeId self_node() const {
    return net::NodeId::controller(config_.domains.id);
  }
  void consider_handover(net::ClientId client, ClientState& cs,
                         net::ApId target, std::uint32_t target_domain);
  void initiate_handover(net::ClientId client, ClientState& cs,
                         net::ApId target, std::uint32_t target_domain);
  void send_handover_request(net::ClientId client, ClientState& cs);
  void abort_handover(net::ClientId client, ClientState& cs);
  void handle_handover_request(net::HandoverRequest&& msg);
  void handle_handover_ack(const net::HandoverAck& msg);
  /// Force-bootstrap `target` from the client's current watermark under its
  /// current epoch (handover accept and crash adoption share this tail).
  void bootstrap_forced(net::ClientId client, ClientState& cs,
                        net::ApId target);
  [[nodiscard]] std::vector<std::uint32_t> collect_dedup_seed(
      net::ClientId client) const;
  void seed_dedup(net::ClientId client, std::uint32_t ip_id);
  void forward_csi(const net::CsiReport& report, ClientState& cs);
  void forward_uplink(net::UplinkData&& msg, ClientState& cs);
  void forward_downlink(net::Packet&& packet, ClientState& cs);
  void domain_heartbeat_tick();
  void domain_sync_tick();
  [[nodiscard]] net::DomainSync build_domain_sync() const;
  void handle_domain_sync(const net::DomainSync& msg);
  void peer_dead(std::uint32_t domain);
  void peer_recovered(std::uint32_t domain);
  /// Adopt every un-adopted dead domain whose nearest alive controller is
  /// this one (re-run on each death so chained crashes resolve).
  void reevaluate_adoptions();
  void adopt_domain(std::uint32_t dead);
  void adopt_client(net::ClientId client, ClientState& cs);
  void return_domain(std::uint32_t recovered);

  // Liveness machinery (no-ops while liveness is disabled).
  struct LivenessState {
    ApLiveness state = ApLiveness::kAlive;
    Time state_since = Time::zero();
    int misses = 0;
    std::uint32_t hb_seq = 0;      // seq of the most recent probe
    Time hb_sent_at = Time::zero();
    bool ack_since_tick = true;    // an ack arrived since the last tick
    Time backoff = Time::zero();   // current readmission delay
    Time readmit_at = Time::zero();
    // Clients failed over away while this AP was dead; quenched with a stop
    // at readmission in case the AP (a zombie) still believes it serves.
    std::vector<net::ClientId> orphaned;
  };
  void heartbeat_tick();
  void handle_heartbeat_ack(const net::HeartbeatAck& msg);
  void mark_dead(net::ApId ap);
  void readmit(net::ApId ap);
  void force_failover(net::ClientId client);
  void quench_orphan(net::ApId ap, net::ClientId client);
  /// Moves the client into the shard of its current anchor segment.
  void update_shard(std::uint32_t client_idx, ClientState& cs);
  [[nodiscard]] ClientState* state(net::ClientId client);
  [[nodiscard]] const ClientState* state(net::ClientId client) const;
  [[nodiscard]] bool ap_usable(net::ApId ap) const;
  [[nodiscard]] const std::vector<bool>* eviction_mask() const {
    return config_.liveness_enabled ? &ap_evicted_ : nullptr;
  }

  sim::Scheduler& sched_;
  net::Backhaul& backhaul_;
  Config config_;
  net::PacketPool* payload_pool_ = nullptr;
  EsnrTracker tracker_;
  std::vector<net::ApId> aps_;
  // Per-client state lives in a dense slab indexed by net::index_of(client)
  // (client ids are dense join-order integers), so the hot-path lookup is
  // an array index instead of a hash probe.
  std::vector<ClientState> clients_;

  // Spatial interest management (set_spatial). ap_neighbors_ is the
  // precomputed per-AP neighbor set (for the bounded fan-out fallback);
  // shard_clients_ is the per-road-segment directory of client indices.
  const SpatialIndex* spatial_ = nullptr;
  double spatial_radius_m_ = 0.0;
  std::vector<std::vector<net::ApId>> ap_neighbors_;
  std::vector<std::vector<std::uint32_t>> shard_clients_;
  int hb_phase_ = 0;  // round-robin group for staggered heartbeats

  // Liveness bookkeeping, indexed by AP index. ap_evicted_ mirrors
  // (state == Dead || state == Recovering) so the hot paths test one bit.
  std::vector<LivenessState> liveness_;
  std::vector<bool> ap_evicted_;
  std::unique_ptr<sim::Timer> heartbeat_timer_;

  // Multi-domain state (empty / null in single-domain mode).
  struct PeerState {
    bool alive = true;
    int misses = 0;
    std::uint32_t hb_seq = 0;
    bool ack_since_tick = true;  // no miss accrues before the first probe
    Time state_since = Time::zero();
  };
  const DomainMap* domain_map_ = nullptr;
  std::vector<PeerState> peers_;       // indexed by domain id (self unused)
  std::vector<bool> adopted_by_me_;    // dead domains whose APs we operate
  std::optional<Time> last_peer_transition_;
  std::unique_ptr<sim::Timer> domain_hb_timer_;
  std::unique_ptr<sim::Timer> domain_sync_timer_;
  PenaltyTimers penalty_;
  std::uint32_t ho_seq_counter_ = 0;
  bool crashed_ = false;

  // Bounded FIFO hashset for uplink de-dup (48-bit key: client | ip_id).
  std::unordered_set<std::uint64_t> dedup_set_;
  std::deque<std::uint64_t> dedup_fifo_;

  std::vector<SwitchRecord> switch_log_;
  Stats stats_;

  struct Metrics {
    obs::Counter* csi_reports;
    obs::Counter* selection_evaluations;
    obs::Counter* switches_initiated;
    obs::Counter* switches_completed;
    obs::Counter* stop_retransmissions;
    obs::Counter* stale_acks_ignored;
    obs::Counter* downlink_packets;
    obs::Counter* fanout_copies;
    obs::Counter* fanout_empty_drops;
    obs::Counter* uplink_packets;
    obs::Counter* dedup_hits;    // duplicate found in the table and dropped
    obs::Counter* dedup_misses;  // new key accepted
    obs::Gauge* dedup_table_size;
    obs::Histogram* switch_time_ms;  // stop sent -> ack received (Table 1)
    // Liveness instruments; registered (and non-null) only when liveness is
    // enabled so fault-free snapshots keep the identical key set.
    obs::Counter* ap_marked_dead = nullptr;
    obs::Counter* ap_readmitted = nullptr;
    obs::Counter* forced_failovers = nullptr;
    obs::Histogram* heartbeat_rtt_ms = nullptr;
    // Multi-domain instruments; registered only in multi-domain mode so
    // single-domain snapshots keep the identical key set.
    obs::Counter* handover_requests = nullptr;
    obs::Counter* handovers_out = nullptr;
    obs::Counter* handovers_in = nullptr;
    obs::Counter* handover_retries = nullptr;
    obs::Counter* handover_aborts = nullptr;
    obs::Counter* penalty_blocked = nullptr;
    obs::Counter* csi_forwarded = nullptr;
    obs::Counter* uplink_fwd = nullptr;
    obs::Counter* downlink_fwd = nullptr;
    obs::Counter* switch_acks_fwd = nullptr;
    obs::Counter* misrouted_dropped = nullptr;
    obs::Counter* peers_marked_dead = nullptr;
    obs::Counter* aps_adopted = nullptr;
    obs::Counter* clients_adopted = nullptr;
    obs::Counter* ownership_yields = nullptr;
    obs::Histogram* handover_ms = nullptr;
  };
  std::optional<Metrics> metrics_;
};

}  // namespace wgtt::core
