// The WGTT controller (paper §3, Figure 5): the paper's primary
// contribution lives here and in the WgttAp.
//
// Control plane: ingest CSI reports from every AP, compute ESNR, run the
// sliding-window-median AP selection, and drive the three-step switching
// protocol (stop / start / ack) with a 30 ms ack-timeout retransmission and
// an at-most-one-outstanding-switch guarantee per client.
//
// Data plane: fan each downlink packet out (tagged with the client's 12-bit
// index) to every AP that has recently heard the client; de-duplicate
// uplink packets forwarded by multiple APs using the 48-bit
// (source, IP-ID) key hashset (§3.2.2-§3.2.3).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/esnr_tracker.h"
#include "net/backhaul.h"
#include "net/ids.h"
#include "net/messages.h"
#include "obs/metrics.h"
#include "sim/scheduler.h"

namespace wgtt::core {

class Controller {
 public:
  /// Link metric driving AP selection. The paper uses the window median of
  /// ESNR; kMeanRssi is the ablation (what RSSI-based selection would do).
  enum class SelectionMetric { kMedianEsnr, kMeanRssi };

  struct Config {
    SelectionMetric metric = SelectionMetric::kMedianEsnr;
    /// W, the AP-selection sliding window (paper §5.3.1: 10 ms optimal).
    Time selection_window = Time::ms(10);
    /// Minimum time between completed switches (paper §5.3.3 sweeps
    /// 40-120 ms; smaller is better down to this default).
    Time switch_hysteresis = Time::ms(40);
    /// stop/ack retransmission timeout (paper §3.1.2: 30 ms).
    Time ack_timeout = Time::ms(30);
    /// Freshness horizon for the downlink fan-out set.
    Time fanout_freshness = Time::ms(200);
    /// Bound on the de-duplication hashset.
    std::size_t dedup_capacity = 1 << 16;
    /// Require the challenger's median to beat the incumbent's by this many
    /// dB (0 = paper's pure argmax).
    double switch_margin_db = 0.0;
    /// A switch away from the serving AP requires either in-window CSI from
    /// it (so the comparison is real) or silence from it for this long.
    /// Guards against the degenerate first-report-wins decision right after
    /// an uplink lull, when the window holds a single AP's sample.
    Time serving_stale_timeout = Time::ms(250);
  };

  struct Stats {
    std::uint64_t csi_reports = 0;
    std::uint64_t downlink_packets = 0;
    std::uint64_t downlink_fanout_copies = 0;
    std::uint64_t uplink_packets = 0;
    std::uint64_t uplink_duplicates_dropped = 0;
    std::uint64_t switches_initiated = 0;
    std::uint64_t switches_completed = 0;
    std::uint64_t stop_retransmissions = 0;
    /// Acks whose (epoch, AP) did not match the outstanding switch:
    /// duplicates from a retransmit chain or leftovers of a superseded
    /// switch. Ignoring them is the fix for the stale-ack-completes-a-
    /// later-switch bug.
    std::uint64_t stale_acks_ignored = 0;
  };

  struct SwitchRecord {
    Time initiated;
    Time completed;
    net::ClientId client;
    net::ApId from;
    net::ApId to;
  };

  Controller(sim::Scheduler& sched, net::Backhaul& backhaul, Config config);

  void add_ap(net::ApId ap);
  void add_client(net::ClientId client);

  /// Downlink entry point (the wired/server side hands packets here).
  void send_downlink(net::Packet packet);

  /// De-duplicated uplink packets exit here toward the server side.
  std::function<void(const net::Packet&)> on_uplink;

  /// Observation hook fired whenever the serving AP of a client changes
  /// (switch completion), for association-timeline plots (Figures 14/15/22).
  std::function<void(net::ClientId, net::ApId, Time)> on_serving_changed;

  [[nodiscard]] std::optional<net::ApId> serving_ap(net::ClientId client) const;
  /// Initiation time of the client's outstanding switch, if one is pending.
  /// The invariant checker uses this to detect permanently stalled clients.
  [[nodiscard]] std::optional<Time> pending_switch_since(
      net::ClientId client) const;
  /// Completion time of the client's last switch (a large negative sentinel
  /// before the first one completes).
  [[nodiscard]] Time last_switch_completed(net::ClientId client) const;
  [[nodiscard]] const std::vector<SwitchRecord>& switch_log() const {
    return switch_log_;
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] EsnrTracker& tracker() { return tracker_; }

  /// Registers and starts recording `controller.*` metrics (selection
  /// decisions, de-dup hit/miss and table occupancy, switch-phase timing).
  /// nullptr detaches. Instrument pointers resolve once, here — the data
  /// path only pays a null check plus relaxed increments.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  struct ClientState {
    std::uint16_t next_index = 0;  // 12-bit downlink index counter
    std::optional<net::ApId> serving;
    // In-progress switch (at most one outstanding per client).
    bool switch_pending = false;
    net::ApId pending_target{};
    net::ApId pending_from{};
    Time pending_since;
    // Per-client switch-epoch counter; the pending switch carries the
    // latest minted value and the ack must echo it.
    std::uint32_t epoch = 0;
    // Fan-out index captured when a bootstrap was initiated. Retransmits
    // must resend THIS, not the since-advanced next_index, or every packet
    // fanned out between initiation and retransmit is silently skipped.
    std::uint16_t pending_first_index = 0;
    std::unique_ptr<sim::Timer> ack_timer;
    Time last_switch_completed = Time::ms(-1'000'000);
  };

  void handle_backhaul(net::NodeId from, net::BackhaulMessage msg);
  void handle_csi(const net::CsiReport& report);
  void handle_uplink(net::UplinkData&& msg);
  void handle_switch_ack(const net::SwitchAck& msg);
  void maybe_switch(net::ClientId client);
  void initiate_switch(net::ClientId client, net::ApId target);
  void bootstrap(net::ClientId client, net::ApId first_ap);
  [[nodiscard]] bool dedup_accept(const net::Packet& p);

  sim::Scheduler& sched_;
  net::Backhaul& backhaul_;
  Config config_;
  EsnrTracker tracker_;
  std::vector<net::ApId> aps_;
  std::unordered_map<net::ClientId, ClientState> clients_;

  // Bounded FIFO hashset for uplink de-dup (48-bit key: client | ip_id).
  std::unordered_set<std::uint64_t> dedup_set_;
  std::deque<std::uint64_t> dedup_fifo_;

  std::vector<SwitchRecord> switch_log_;
  Stats stats_;

  struct Metrics {
    obs::Counter* csi_reports;
    obs::Counter* selection_evaluations;
    obs::Counter* switches_initiated;
    obs::Counter* switches_completed;
    obs::Counter* stop_retransmissions;
    obs::Counter* stale_acks_ignored;
    obs::Counter* downlink_packets;
    obs::Counter* fanout_copies;
    obs::Counter* uplink_packets;
    obs::Counter* dedup_hits;    // duplicate found in the table and dropped
    obs::Counter* dedup_misses;  // new key accepted
    obs::Gauge* dedup_table_size;
    obs::Histogram* switch_time_ms;  // stop sent -> ack received (Table 1)
  };
  std::optional<Metrics> metrics_;
};

}  // namespace wgtt::core
