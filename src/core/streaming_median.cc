#include "core/streaming_median.h"

#include <algorithm>
#include <bit>

namespace wgtt::core {

// Correctness of the side attribution in mark_dead:
//
// Every entry ever placed in high_ was, at placement time, strictly greater
// than low_'s max; every entry placed in low_ was <= it; and rebalance only
// moves heap tops across, which preserves "every entry of low_ <= every
// entry of high_" over the full physical contents (dead included). So when
// a live value v expires:
//   v <  low_.top()  =>  every physical copy of v is in low_
//   v >  low_.top()  =>  every physical copy of v is in high_
//   v == low_.top()  =>  a physical copy sits at low_'s top (pop it now)
// which means a tombstone recorded on a side always has a physical copy on
// that side to consume, and prune never starves a heap below its live count.

std::uint64_t StreamingMedian::key_of(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

void StreamingMedian::add(Time now, double value) {
  evict(now);
  order_.push_back({now, value});
  if (low_.empty() || value <= low_.top()) {
    low_.push(value);
    ++low_size_;
  } else {
    high_.push(value);
    ++high_size_;
  }
  rebalance();
}

void StreamingMedian::evict(Time now) {
  const Time cutoff = now - window_;
  while (!order_.empty() && order_.front().when <= cutoff) {
    const double v = order_.front().value;
    order_.pop_front();
    mark_dead(v);
  }
  // Amortized cleanup: once tombstones outnumber live samples, rebuild.
  if (dead_low_total_ + dead_high_total_ > size()) compact();
}

std::optional<double> StreamingMedian::lower_median(Time now) {
  evict(now);
  if (empty()) return std::nullopt;
  prune_low();
  return low_.top();
}

void StreamingMedian::mark_dead(double v) {
  prune_low();
  if (!low_.empty() && v <= low_.top()) {
    --low_size_;
    if (v == low_.top()) {
      low_.pop();
    } else {
      ++dead_low_[key_of(v)];
      ++dead_low_total_;
    }
  } else {
    --high_size_;
    prune_high();
    if (!high_.empty() && v == high_.top()) {
      high_.pop();
    } else {
      ++dead_high_[key_of(v)];
      ++dead_high_total_;
    }
  }
  rebalance();
}

void StreamingMedian::rebalance() {
  // Target: low_size_ == ceil(n/2), so the lower median is low_'s top.
  if (low_size_ > high_size_ + 1) {
    prune_low();
    high_.push(low_.top());
    low_.pop();
    --low_size_;
    ++high_size_;
  } else if (high_size_ > low_size_) {
    prune_high();
    low_.push(high_.top());
    high_.pop();
    --high_size_;
    ++low_size_;
  }
}

void StreamingMedian::prune_low() {
  while (!low_.empty()) {
    auto it = dead_low_.find(key_of(low_.top()));
    if (it == dead_low_.end() || it->second == 0) return;
    if (--it->second == 0) dead_low_.erase(it);
    --dead_low_total_;
    low_.pop();
  }
}

void StreamingMedian::prune_high() {
  while (!high_.empty()) {
    auto it = dead_high_.find(key_of(high_.top()));
    if (it == dead_high_.end() || it->second == 0) return;
    if (--it->second == 0) dead_high_.erase(it);
    --dead_high_total_;
    high_.pop();
  }
}

void StreamingMedian::compact() {
  std::vector<double> values;
  values.reserve(order_.size());
  for (const auto& s : order_) values.push_back(s.value);
  const std::size_t n = values.size();
  const std::size_t k = (n + 1) / 2;  // ceil(n/2) smallest go to low_
  if (k < n) {
    std::nth_element(values.begin(),
                     values.begin() + static_cast<std::ptrdiff_t>(k),
                     values.end());
  }
  low_ = std::priority_queue<double>(values.begin(),
                                     values.begin() +
                                         static_cast<std::ptrdiff_t>(k));
  high_ = std::priority_queue<double, std::vector<double>, std::greater<>>(
      values.begin() + static_cast<std::ptrdiff_t>(k), values.end());
  low_size_ = k;
  high_size_ = n - k;
  dead_low_.clear();
  dead_high_.clear();
  dead_low_total_ = 0;
  dead_high_total_ = 0;
}

void StreamingMedian::clear() {
  order_.clear();
  compact();  // n = 0: resets heaps, sizes and tombstones
}

}  // namespace wgtt::core
