#include "core/controller.h"

#include <algorithm>

#include "phy/esnr.h"

namespace wgtt::core {

using net::BackhaulMessage;
using net::NodeId;

Controller::Controller(sim::Scheduler& sched, net::Backhaul& backhaul,
                       Config config)
    : sched_(sched),
      backhaul_(backhaul),
      config_(config),
      tracker_(config.selection_window) {
  backhaul_.attach(NodeId::controller(),
                   [this](NodeId from, BackhaulMessage msg) {
                     handle_backhaul(from, std::move(msg));
                   });
  if (config_.liveness_enabled) {
    heartbeat_timer_ = std::make_unique<sim::Timer>(
        sched_, [this] { heartbeat_tick(); }, sim::EventCategory::kControl);
    heartbeat_timer_->start(config_.heartbeat_interval);
  }
}

void Controller::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_.reset();
    return;
  }
  Metrics m;
  m.csi_reports = &registry->counter("controller.csi_reports");
  m.selection_evaluations =
      &registry->counter("controller.selection_evaluations");
  m.switches_initiated = &registry->counter("controller.switches_initiated");
  m.switches_completed = &registry->counter("controller.switches_completed");
  m.stop_retransmissions =
      &registry->counter("controller.stop_retransmissions");
  m.stale_acks_ignored = &registry->counter("controller.stale_acks_ignored");
  m.downlink_packets = &registry->counter("controller.downlink_packets");
  m.fanout_copies = &registry->counter("controller.fanout_copies");
  m.fanout_empty_drops = &registry->counter("controller.fanout_empty_drops");
  m.uplink_packets = &registry->counter("controller.uplink_packets");
  m.dedup_hits = &registry->counter("controller.dedup_hits");
  m.dedup_misses = &registry->counter("controller.dedup_misses");
  m.dedup_table_size = &registry->gauge("controller.dedup_table_size");
  // 0.25 ms buckets keep the Table-1 percentile estimate well inside the
  // 1 ms agreement bound with the exact trace-derived values.
  m.switch_time_ms =
      &registry->histogram("controller.switch_time_ms", 0.0, 60.0, 240);
  // Liveness instruments exist only when liveness does, so a fault-free
  // snapshot keeps the exact key set (and bytes) of a pre-liveness build.
  if (config_.liveness_enabled) {
    m.ap_marked_dead = &registry->counter("controller.ap_marked_dead");
    m.ap_readmitted = &registry->counter("controller.ap_readmitted");
    m.forced_failovers = &registry->counter("controller.forced_failovers");
    m.heartbeat_rtt_ms =
        &registry->histogram("controller.heartbeat_rtt_ms", 0.0, 5.0, 100);
  }
  metrics_ = m;
}

void Controller::add_ap(net::ApId ap) {
  if (std::find(aps_.begin(), aps_.end(), ap) == aps_.end()) aps_.push_back(ap);
  const auto idx = static_cast<std::size_t>(net::index_of(ap));
  if (liveness_.size() <= idx) {
    liveness_.resize(idx + 1);
    ap_evicted_.resize(idx + 1, false);
  }
}

void Controller::add_client(net::ClientId client) {
  const auto idx = static_cast<std::size_t>(net::index_of(client));
  if (idx >= clients_.size()) clients_.resize(idx + 1);
  ClientState& cs = clients_[idx];
  if (cs.registered) return;
  cs.registered = true;
  cs.ack_timer = std::make_unique<sim::Timer>(sched_, [this, client] {
    // stop/ack lost: retransmit the stop (paper §3.1.2, 30 ms timeout).
    ClientState* s = state(client);
    if (s == nullptr || !s->switch_pending) return;
    ++stats_.stop_retransmissions;
    if (metrics_) metrics_->stop_retransmissions->inc();
    if (s->pending_forced) {
      // Forced failover: the old AP is dead, so there is no stop to
      // retransmit — resend the bootstrap start to the new AP.
      backhaul_.send(NodeId::controller(), NodeId::ap(s->pending_target),
                     net::StartMsg{client, s->pending_target,
                                   s->pending_first_index, s->epoch});
    } else if (s->serving) {
      backhaul_.send(NodeId::controller(), NodeId::ap(s->pending_from),
                     net::StopMsg{client, s->pending_target, s->epoch});
    } else {
      // Bootstrap start was lost; resend it directly, with the fan-out
      // index captured at initiation (next_index has kept advancing and
      // would skip everything fanned out since).
      backhaul_.send(NodeId::controller(), NodeId::ap(s->pending_target),
                     net::StartMsg{client, s->pending_target,
                                   s->pending_first_index, s->epoch});
    }
    s->ack_timer->start(config_.ack_timeout);
  }, sim::EventCategory::kControl);
}

Controller::ClientState* Controller::state(net::ClientId client) {
  const auto idx = static_cast<std::size_t>(net::index_of(client));
  if (idx >= clients_.size() || !clients_[idx].registered) return nullptr;
  return &clients_[idx];
}

const Controller::ClientState* Controller::state(net::ClientId client) const {
  const auto idx = static_cast<std::size_t>(net::index_of(client));
  if (idx >= clients_.size() || !clients_[idx].registered) return nullptr;
  return &clients_[idx];
}

void Controller::set_spatial(const SpatialIndex* index,
                             double neighbor_radius_m) {
  spatial_ = index;
  spatial_radius_m_ = neighbor_radius_m;
  tracker_.set_spatial(index, neighbor_radius_m);
  ap_neighbors_.clear();
  shard_clients_.clear();
  for (ClientState& cs : clients_) cs.shard = -1;
  if (index == nullptr || index->empty()) {
    spatial_ = nullptr;
    return;
  }
  ap_neighbors_.resize(static_cast<std::size_t>(index->num_aps()));
  for (net::ApId ap : aps_) {
    const auto i = static_cast<int>(net::index_of(ap));
    if (i >= index->num_aps()) continue;
    std::vector<int> near = index->neighbors(index->ap_x(i), neighbor_radius_m);
    auto& out = ap_neighbors_[static_cast<std::size_t>(i)];
    out.reserve(near.size());
    for (int n : near) out.push_back(static_cast<net::ApId>(n));
  }
  shard_clients_.resize(static_cast<std::size_t>(index->num_segments()));
  // Clients that already have an anchor (CSI arrived before set_spatial)
  // are sharded immediately; the rest join on their first report.
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (clients_[i].registered && clients_[i].anchor_ap >= 0) {
      update_shard(static_cast<std::uint32_t>(i), clients_[i]);
    }
  }
}

void Controller::update_shard(std::uint32_t client_idx, ClientState& cs) {
  if (spatial_ == nullptr || shard_clients_.empty() || cs.anchor_ap < 0 ||
      cs.anchor_ap >= spatial_->num_aps()) {
    return;
  }
  const int seg = spatial_->segment_of_ap(cs.anchor_ap);
  if (seg == cs.shard) return;
  if (cs.shard >= 0) {
    auto& old = shard_clients_[static_cast<std::size_t>(cs.shard)];
    old.erase(std::remove(old.begin(), old.end(), client_idx), old.end());
  }
  shard_clients_[static_cast<std::size_t>(seg)].push_back(client_idx);
  cs.shard = seg;
}

void Controller::handle_backhaul(NodeId /*from*/, BackhaulMessage msg) {
  std::visit(
      [this](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, net::CsiReport>) {
          handle_csi(m);
        } else if constexpr (std::is_same_v<T, net::UplinkData>) {
          handle_uplink(std::move(m));
        } else if constexpr (std::is_same_v<T, net::SwitchAck>) {
          handle_switch_ack(m);
        } else if constexpr (std::is_same_v<T, net::HeartbeatAck>) {
          handle_heartbeat_ack(m);
        }
      },
      std::move(msg));
}

void Controller::handle_csi(const net::CsiReport& report) {
  ++stats_.csi_reports;
  if (metrics_) metrics_->csi_reports->inc();
  ClientState* cs = state(report.client);
  if (cs == nullptr) return;
  // The controller, not the AP, computes ESNR from raw CSI (§3.1.1). The
  // RSSI variant exists for the selection-metric ablation.
  const double value =
      config_.metric == SelectionMetric::kMedianEsnr
          ? phy::esnr_metric_db(report.measurement.subcarrier_snr_db)
          : report.measurement.rssi_dbm;
  tracker_.add(report.client, report.from_ap, sched_.now(), value);
  cs->anchor_ap = static_cast<int>(net::index_of(report.from_ap));
  update_shard(net::index_of(report.client), *cs);
  maybe_switch(report.client);
}

void Controller::maybe_switch(net::ClientId client) {
  ClientState* csp = state(client);
  if (csp == nullptr) return;
  ClientState& cs = *csp;
  if (cs.switch_pending) return;  // at most one outstanding switch
  if (metrics_) metrics_->selection_evaluations->inc();

  const auto best = tracker_.best_ap(client, sched_.now(), eviction_mask());
  if (!best) return;

  if (!cs.serving) {
    bootstrap(client, *best);
    return;
  }
  if (*best == *cs.serving) return;
  if (sched_.now() - cs.last_switch_completed < config_.switch_hysteresis) return;

  const auto incumbent = tracker_.median(client, *cs.serving, sched_.now());
  if (!incumbent) {
    // No in-window CSI from the serving AP: the window holds a partial view
    // (e.g. only the first report of a burst arrived, or a traffic lull
    // starved the CSI stream). While the serving AP has been silent for
    // less than the stale timeout, judge the challenger against the serving
    // AP's last known value — never trade a known-good AP for a worse one
    // just because the good one was quiet for a beat. Once silence exceeds
    // the timeout, the serving AP is presumed gone and the best known
    // challenger wins unconditionally.
    const auto heard = tracker_.last_heard(client, *cs.serving);
    if (heard && sched_.now() - *heard < config_.serving_stale_timeout) {
      const auto last_known = tracker_.last_value(client, *cs.serving);
      const auto challenger = tracker_.median(client, *best, sched_.now());
      if (!challenger || !last_known ||
          *challenger <= *last_known + config_.switch_margin_db) {
        return;
      }
    }
  } else if (config_.switch_margin_db > 0.0) {
    const auto challenger = tracker_.median(client, *best, sched_.now());
    if (challenger && *challenger < *incumbent + config_.switch_margin_db) {
      return;
    }
  }
  initiate_switch(client, *best);
}

void Controller::bootstrap(net::ClientId client, net::ApId first_ap) {
  ClientState& cs = *state(client);
  cs.switch_pending = true;
  cs.pending_forced = false;
  cs.pending_target = first_ap;
  cs.pending_from = first_ap;
  cs.pending_since = sched_.now();
  cs.pending_first_index = cs.next_index;
  ++cs.epoch;
  ++stats_.switches_initiated;
  if (metrics_) metrics_->switches_initiated->inc();
  if (on_switch_initiated) {
    on_switch_initiated(client, std::nullopt, first_ap, sched_.now());
  }
  backhaul_.send(NodeId::controller(), NodeId::ap(first_ap),
                 net::StartMsg{client, first_ap, cs.pending_first_index,
                               cs.epoch});
  cs.ack_timer->start(config_.ack_timeout);
}

void Controller::initiate_switch(net::ClientId client, net::ApId target) {
  ClientState& cs = *state(client);
  cs.switch_pending = true;
  cs.pending_forced = false;
  cs.pending_target = target;
  cs.pending_from = *cs.serving;
  cs.pending_since = sched_.now();
  ++cs.epoch;
  ++stats_.switches_initiated;
  if (metrics_) metrics_->switches_initiated->inc();
  if (on_switch_initiated) {
    on_switch_initiated(client, cs.serving, target, sched_.now());
  }
  backhaul_.send(NodeId::controller(), NodeId::ap(*cs.serving),
                 net::StopMsg{client, target, cs.epoch});
  cs.ack_timer->start(config_.ack_timeout);
}

void Controller::handle_switch_ack(const net::SwitchAck& msg) {
  ClientState* csp = state(msg.client);
  if (csp == nullptr) return;
  ClientState& cs = *csp;
  // Only the ack for the outstanding switch counts: matching on
  // (epoch, target) rather than the sender alone rejects duplicates from a
  // retransmit chain and leftovers of a previous switch to the same AP,
  // either of which could otherwise complete a LATER switch that has not
  // actually happened at the APs.
  if (!cs.switch_pending || msg.from_ap != cs.pending_target ||
      msg.epoch != cs.epoch) {
    ++stats_.stale_acks_ignored;
    if (metrics_) metrics_->stale_acks_ignored->inc();
    return;
  }
  cs.ack_timer->cancel();
  cs.switch_pending = false;
  cs.pending_forced = false;
  const net::ApId from = cs.serving.value_or(msg.from_ap);
  cs.serving = msg.from_ap;
  cs.last_switch_completed = sched_.now();
  ++stats_.switches_completed;
  if (metrics_) {
    metrics_->switches_completed->inc();
    metrics_->switch_time_ms->observe(
        (sched_.now() - cs.pending_since).to_millis());
  }
  switch_log_.push_back(
      {cs.pending_since, sched_.now(), msg.client, from, msg.from_ap});
  if (on_serving_changed) on_serving_changed(msg.client, msg.from_ap, sched_.now());
}

void Controller::send_downlink(net::Packet packet) {
  ClientState* csp = state(packet.client);
  if (csp == nullptr) return;
  ClientState& cs = *csp;
  ++stats_.downlink_packets;
  if (metrics_) metrics_->downlink_packets->inc();

  const std::uint16_t index = cs.next_index;
  cs.next_index = (cs.next_index + 1) & 0x0fff;  // m = 12 bits
  ++cs.downlink_sent;

  // Fan out to every AP that has recently heard the client. Before any CSI
  // exists (client just joined, or long idle), fall back to all APs — or,
  // with bounded_fallback, to the spatial neighborhood of the client's
  // anchor AP: at 1024 APs the all-AP fallback is a broadcast storm, and
  // any AP that could possibly reach the client is within the neighbor
  // radius of the last AP that heard it. A client with no anchor yet has
  // no known location, so it still gets the full broadcast. Dead and
  // Recovering APs are evicted from the set either way — packets handed to
  // a corpse are packets lost.
  std::vector<net::ApId> targets =
      tracker_.fresh_aps(packet.client, sched_.now(), config_.fanout_freshness);
  if (targets.empty()) {
    if (config_.bounded_fallback && spatial_ != nullptr && cs.anchor_ap >= 0 &&
        static_cast<std::size_t>(cs.anchor_ap) < ap_neighbors_.size()) {
      targets = ap_neighbors_[static_cast<std::size_t>(cs.anchor_ap)];
    } else {
      targets = aps_;
    }
  }
  if (config_.liveness_enabled) {
    std::erase_if(targets, [this](net::ApId ap) { return !ap_usable(ap); });
  }
  if (targets.empty()) {
    // Liveness erased every candidate: the packet has nowhere to go. Count
    // and announce the drop instead of letting it vanish silently — at this
    // point the client is effectively partitioned from the deployment and
    // upper layers (TCP, the operator's dashboards) deserve to know.
    ++stats_.fanout_empty_drops;
    if (metrics_) metrics_->fanout_empty_drops->inc();
    if (on_fanout_empty) on_fanout_empty(packet.client, sched_.now());
    return;
  }
  if (payload_pool_ != nullptr) {
    // Single-copy fan-out (DESIGN.md §10): the payload enters the pool
    // once; every target gets a 4-byte handle plus one reference. The
    // wire size is cached in the message so backhaul latency accounting
    // never touches the pool.
    const auto tunnel_bytes = static_cast<std::uint32_t>(packet.tunnel_bytes());
    const net::PacketPool::Handle h = payload_pool_->acquire(std::move(packet));
    for (net::ApId ap : targets) {
      ++stats_.downlink_fanout_copies;
      payload_pool_->add_ref(h);
      net::DownlinkData msg;
      msg.index = index;
      msg.handle = h;
      msg.tunnel_bytes = tunnel_bytes;
      backhaul_.send(NodeId::controller(), NodeId::ap(ap), std::move(msg));
    }
    payload_pool_->drop(h);  // the acquisition reference; targets hold theirs
  } else {
    for (net::ApId ap : targets) {
      ++stats_.downlink_fanout_copies;
      backhaul_.send(NodeId::controller(), NodeId::ap(ap),
                     net::DownlinkData{packet, index});
    }
  }
  if (metrics_) metrics_->fanout_copies->inc(targets.size());
}

bool Controller::dedup_accept(const net::Packet& p) {
  // 48-bit key: 32-bit source identity (client) + 16-bit IP-ID (§3.2.2).
  const std::uint64_t key =
      (static_cast<std::uint64_t>(net::index_of(p.client)) << 16) | p.ip_id;
  if (dedup_set_.contains(key)) {
    if (metrics_) metrics_->dedup_hits->inc();
    return false;
  }
  // Evict before inserting, with >=: the table never holds more than
  // dedup_capacity keys at any instant. The old post-insert `>` check let
  // it grow to capacity + 1 before evicting — the off-by-one fixed in PR 7
  // (locked by the DedupCapacityBoundary test).
  if (dedup_fifo_.size() >= config_.dedup_capacity) {
    dedup_set_.erase(dedup_fifo_.front());
    dedup_fifo_.pop_front();
  }
  dedup_set_.insert(key);
  dedup_fifo_.push_back(key);
  if (metrics_) {
    metrics_->dedup_misses->inc();
    metrics_->dedup_table_size->set(static_cast<double>(dedup_set_.size()));
  }
  return true;
}

void Controller::handle_uplink(net::UplinkData&& msg) {
  ++stats_.uplink_packets;
  if (metrics_) metrics_->uplink_packets->inc();
  if (!dedup_accept(msg.packet)) {
    ++stats_.uplink_duplicates_dropped;
    return;
  }
  if (on_uplink) on_uplink(msg.packet);
}

// --- AP liveness & forced failover --------------------------------------

bool Controller::ap_usable(net::ApId ap) const {
  const auto idx = static_cast<std::size_t>(net::index_of(ap));
  return idx >= ap_evicted_.size() || !ap_evicted_[idx];
}

Controller::ApHealth Controller::ap_health(net::ApId ap) const {
  if (!config_.liveness_enabled) return {};
  const auto idx = static_cast<std::size_t>(net::index_of(ap));
  if (idx >= liveness_.size()) return {};
  return {liveness_[idx].state, liveness_[idx].state_since};
}

void Controller::heartbeat_tick() {
  // With a stagger of N (and spatial state wired), each tick probes only
  // the APs whose road segment falls in the current round-robin group:
  // per-tick control traffic drops N-fold, each AP is still probed — and
  // its previous probe judged — every N ticks.
  const int stagger =
      (config_.heartbeat_stagger > 0 && spatial_ != nullptr &&
       !spatial_->empty())
          ? config_.heartbeat_stagger
          : 0;
  for (net::ApId ap : aps_) {
    const auto idx = static_cast<std::size_t>(net::index_of(ap));
    if (stagger > 0) {
      const auto i = static_cast<int>(idx);
      if (i >= spatial_->num_aps() ||
          spatial_->segment_of_ap(i) % stagger != hb_phase_) {
        continue;
      }
    }
    LivenessState& ls = liveness_[idx];
    // Judge the probe sent last tick before sending the next one.
    // (ack_since_tick starts true, so no miss accrues before first probe.)
    if (!ls.ack_since_tick) {
      ++ls.misses;
      if (ls.state == ApLiveness::kAlive) {
        ls.state = ApLiveness::kSuspect;
        ls.state_since = sched_.now();
        ++stats_.aps_marked_suspect;
      }
      if (ls.misses >= config_.heartbeat_miss_threshold &&
          ls.state != ApLiveness::kDead) {
        mark_dead(ap);
      }
    }
    if (ls.state == ApLiveness::kRecovering &&
        sched_.now() >= ls.readmit_at) {
      readmit(ap);
    }
    ls.ack_since_tick = false;
    ++ls.hb_seq;
    ls.hb_sent_at = sched_.now();
    ++stats_.heartbeats_sent;
    backhaul_.send(NodeId::controller(), NodeId::ap(ap),
                   net::Heartbeat{ls.hb_seq});
  }
  if (stagger > 0) hb_phase_ = (hb_phase_ + 1) % stagger;
  heartbeat_timer_->start(config_.heartbeat_interval);
}

void Controller::handle_heartbeat_ack(const net::HeartbeatAck& msg) {
  const auto idx = static_cast<std::size_t>(net::index_of(msg.from_ap));
  if (idx >= liveness_.size()) return;
  LivenessState& ls = liveness_[idx];
  ++stats_.heartbeat_acks;
  ls.ack_since_tick = true;
  ls.misses = 0;
  if (metrics_ && metrics_->heartbeat_rtt_ms && msg.seq == ls.hb_seq) {
    metrics_->heartbeat_rtt_ms->observe(
        (sched_.now() - ls.hb_sent_at).to_millis());
  }
  if (ls.state == ApLiveness::kDead) {
    // Back from the dead: damp the flap with an exponential readmission
    // backoff so an oscillating AP cannot thrash the fan-out set.
    ls.state = ApLiveness::kRecovering;
    ls.state_since = sched_.now();
    if (ls.backoff == Time::zero()) ls.backoff = config_.readmission_backoff;
    ls.readmit_at = sched_.now() + ls.backoff;
    ls.backoff = std::min(ls.backoff * 2, config_.readmission_backoff_max);
  } else if (ls.state == ApLiveness::kSuspect) {
    ls.state = ApLiveness::kAlive;
    ls.state_since = sched_.now();
  }
}

void Controller::mark_dead(net::ApId ap) {
  const auto idx = static_cast<std::size_t>(net::index_of(ap));
  LivenessState& ls = liveness_[idx];
  ls.state = ApLiveness::kDead;
  ls.state_since = sched_.now();
  ap_evicted_[idx] = true;
  ++stats_.aps_marked_dead;
  if (metrics_ && metrics_->ap_marked_dead) metrics_->ap_marked_dead->inc();
  // Any client whose stream touches the dead AP — serving through it, or
  // mid-switch into or out of it — is failed over immediately rather than
  // waiting out retransmissions toward a corpse.
  const auto touch = [&](net::ClientId client, ClientState& cs) {
    const bool serving_dead = cs.serving && *cs.serving == ap;
    const bool pending_dead =
        cs.switch_pending &&
        (cs.pending_target == ap || cs.pending_from == ap);
    if (serving_dead || pending_dead) {
      // Remember the orphan: if the AP was a zombie (radio up, backhaul
      // down) it still believes it serves this client and must be quenched
      // once it is readmitted.
      ls.orphaned.push_back(client);
      force_failover(client);
    }
  };
  if (spatial_ != nullptr && !shard_clients_.empty() &&
      static_cast<int>(idx) < spatial_->num_aps()) {
    // Only clients anchored near the AP can be serving through it or
    // switching to it: serving requires CSI, CSI requires sense-range
    // proximity, and the anchor trails the client by at most the neighbor
    // radius — so 2x the radius around the AP covers every candidate.
    const double x = spatial_->ap_x(static_cast<int>(idx));
    const int s0 = spatial_->segment_of(x - 2.0 * spatial_radius_m_);
    const int s1 = spatial_->segment_of(x + 2.0 * spatial_radius_m_);
    for (int s = s0; s <= s1; ++s) {
      // Copy: force_failover never edits shards, but stay robust to
      // future hooks mutating client state mid-scan.
      const std::vector<std::uint32_t> members =
          shard_clients_[static_cast<std::size_t>(s)];
      for (std::uint32_t ci : members) {
        ClientState& cs = clients_[ci];
        if (cs.registered) touch(static_cast<net::ClientId>(ci), cs);
      }
    }
  } else {
    for (std::size_t ci = 0; ci < clients_.size(); ++ci) {
      if (clients_[ci].registered) {
        touch(static_cast<net::ClientId>(ci), clients_[ci]);
      }
    }
  }
}

void Controller::force_failover(net::ClientId client) {
  ClientState& cs = *state(client);
  cs.ack_timer->cancel();
  cs.switch_pending = false;
  cs.pending_forced = false;
  const auto target = tracker_.best_ap(client, sched_.now(), &ap_evicted_);
  if (!target) {
    // Degraded mode: no usable AP has in-window CSI for this client. Drop
    // to unserved; the next CSI report re-bootstraps through the normal
    // path (and the fan-out keeps reaching every fresh, usable AP).
    cs.serving.reset();
    ++stats_.failovers_unserved;
    return;
  }
  // Mint a new epoch and bootstrap the new AP straight from our own fan-out
  // watermark: the dead AP can never answer a stop, so the normal
  // stop -> start chain is unavailable. Rewinding by failover_replay
  // re-sends the tail the dead AP may have accepted but never delivered;
  // the client's duplicate suppression absorbs the overlap.
  const std::uint16_t replay = static_cast<std::uint16_t>(
      std::min<std::uint64_t>(config_.failover_replay, cs.downlink_sent));
  ++cs.epoch;
  cs.switch_pending = true;
  cs.pending_forced = true;
  cs.pending_target = *target;
  cs.pending_from = cs.serving.value_or(*target);
  cs.pending_since = sched_.now();
  cs.pending_first_index =
      static_cast<std::uint16_t>((cs.next_index - replay) & 0x0fff);
  ++stats_.switches_initiated;
  ++stats_.forced_failovers;
  if (metrics_) {
    metrics_->switches_initiated->inc();
    if (metrics_->forced_failovers) metrics_->forced_failovers->inc();
  }
  if (on_switch_initiated) {
    on_switch_initiated(client, cs.serving, *target, sched_.now());
  }
  backhaul_.send(NodeId::controller(), NodeId::ap(*target),
                 net::StartMsg{client, *target, cs.pending_first_index,
                               cs.epoch});
  cs.ack_timer->start(config_.ack_timeout);
}

void Controller::readmit(net::ApId ap) {
  const auto idx = static_cast<std::size_t>(net::index_of(ap));
  LivenessState& ls = liveness_[idx];
  ls.state = ApLiveness::kAlive;
  ls.state_since = sched_.now();
  ap_evicted_[idx] = false;
  ++stats_.aps_readmitted;
  if (metrics_ && metrics_->ap_readmitted) metrics_->ap_readmitted->inc();
  for (net::ClientId client : ls.orphaned) quench_orphan(ap, client);
  ls.orphaned.clear();
}

void Controller::quench_orphan(net::ApId ap, net::ClientId client) {
  ClientState* csp = state(client);
  if (csp == nullptr) return;
  ClientState& cs = *csp;
  // Nothing to quench if the client is unserved or came back through this
  // very AP (a fresh start superseded the zombie's stale serving state).
  if (!cs.serving || *cs.serving == ap) return;
  if (cs.switch_pending) {
    // A stop now could race the in-flight start of the pending switch;
    // retry once the handshake quiesces.
    sched_.schedule_in(config_.heartbeat_interval,
                       [this, ap, client] { quench_orphan(ap, client); },
                       sim::EventCategory::kControl);
    return;
  }
  // The stop carries the client's current epoch: newer than anything the
  // zombie recorded, so it stops serving and forwards a start that the
  // actual serving AP answers as a duplicate (a stale ack we ignore).
  ++stats_.quench_stops;
  backhaul_.send(NodeId::controller(), NodeId::ap(ap),
                 net::StopMsg{client, *cs.serving, cs.epoch});
}

std::vector<Controller::ClientDebug> Controller::client_debug() const {
  // The slab is already ordered by client index.
  std::vector<ClientDebug> out;
  out.reserve(clients_.size());
  for (std::size_t ci = 0; ci < clients_.size(); ++ci) {
    const ClientState& cs = clients_[ci];
    if (!cs.registered) continue;
    ClientDebug d;
    d.client = static_cast<net::ClientId>(ci);
    d.next_index = cs.next_index;
    d.downlink_sent = cs.downlink_sent;
    d.serving = cs.serving;
    d.switch_pending = cs.switch_pending;
    d.pending_forced = cs.pending_forced;
    d.pending_target = cs.pending_target;
    d.pending_from = cs.pending_from;
    d.pending_since = cs.pending_since;
    d.epoch = cs.epoch;
    d.pending_first_index = cs.pending_first_index;
    d.last_switch_completed = cs.last_switch_completed;
    out.push_back(d);
  }
  return out;
}

std::optional<net::ApId> Controller::serving_ap(net::ClientId client) const {
  const ClientState* cs = state(client);
  return cs == nullptr ? std::nullopt : cs->serving;
}

std::optional<Time> Controller::pending_switch_since(
    net::ClientId client) const {
  const ClientState* cs = state(client);
  if (cs == nullptr || !cs->switch_pending) return std::nullopt;
  return cs->pending_since;
}

Time Controller::last_switch_completed(net::ClientId client) const {
  const ClientState* cs = state(client);
  return cs == nullptr ? Time::ms(-1'000'000) : cs->last_switch_completed;
}

}  // namespace wgtt::core
