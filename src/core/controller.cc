#include "core/controller.h"

#include <algorithm>

#include "phy/esnr.h"

namespace wgtt::core {

using net::BackhaulMessage;
using net::NodeId;

Controller::Controller(sim::Scheduler& sched, net::Backhaul& backhaul,
                       Config config)
    : sched_(sched),
      backhaul_(backhaul),
      config_(config),
      tracker_(config.selection_window) {
  backhaul_.attach(self_node(),
                   [this](NodeId from, BackhaulMessage msg) {
                     handle_backhaul(from, std::move(msg));
                   });
  if (config_.liveness_enabled) {
    heartbeat_timer_ = std::make_unique<sim::Timer>(
        sched_, [this] { heartbeat_tick(); }, sim::EventCategory::kControl);
    heartbeat_timer_->start(config_.heartbeat_interval);
  }
  if (multi_domain()) {
    peers_.resize(config_.domains.num_domains);
    adopted_by_me_.assign(config_.domains.num_domains, false);
    domain_hb_timer_ = std::make_unique<sim::Timer>(
        sched_, [this] { domain_heartbeat_tick(); },
        sim::EventCategory::kControl);
    domain_hb_timer_->start(config_.domains.heartbeat_interval);
    domain_sync_timer_ = std::make_unique<sim::Timer>(
        sched_, [this] { domain_sync_tick(); }, sim::EventCategory::kControl);
    domain_sync_timer_->start(config_.domains.sync_interval);
  }
}

void Controller::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_.reset();
    return;
  }
  Metrics m;
  m.csi_reports = &registry->counter("controller.csi_reports");
  m.selection_evaluations =
      &registry->counter("controller.selection_evaluations");
  m.switches_initiated = &registry->counter("controller.switches_initiated");
  m.switches_completed = &registry->counter("controller.switches_completed");
  m.stop_retransmissions =
      &registry->counter("controller.stop_retransmissions");
  m.stale_acks_ignored = &registry->counter("controller.stale_acks_ignored");
  m.downlink_packets = &registry->counter("controller.downlink_packets");
  m.fanout_copies = &registry->counter("controller.fanout_copies");
  m.fanout_empty_drops = &registry->counter("controller.fanout_empty_drops");
  m.uplink_packets = &registry->counter("controller.uplink_packets");
  m.dedup_hits = &registry->counter("controller.dedup_hits");
  m.dedup_misses = &registry->counter("controller.dedup_misses");
  m.dedup_table_size = &registry->gauge("controller.dedup_table_size");
  // 0.25 ms buckets keep the Table-1 percentile estimate well inside the
  // 1 ms agreement bound with the exact trace-derived values.
  m.switch_time_ms =
      &registry->histogram("controller.switch_time_ms", 0.0, 60.0, 240);
  // Liveness instruments exist only when liveness does, so a fault-free
  // snapshot keeps the exact key set (and bytes) of a pre-liveness build.
  if (config_.liveness_enabled) {
    m.ap_marked_dead = &registry->counter("controller.ap_marked_dead");
    m.ap_readmitted = &registry->counter("controller.ap_readmitted");
    m.forced_failovers = &registry->counter("controller.forced_failovers");
    m.heartbeat_rtt_ms =
        &registry->histogram("controller.heartbeat_rtt_ms", 0.0, 5.0, 100);
  }
  // Domain instruments exist only in multi-domain mode, for the same
  // key-set reason. Shared by name, so every domain controller aggregates
  // into one series.
  if (multi_domain()) {
    m.handover_requests = &registry->counter("controller.handover_requests");
    m.handovers_out = &registry->counter("domain.handovers_out");
    m.handovers_in = &registry->counter("domain.handovers_in");
    m.handover_retries = &registry->counter("domain.handover_retries");
    m.handover_aborts = &registry->counter("domain.handover_aborts");
    m.penalty_blocked = &registry->counter("domain.penalty_blocked");
    m.csi_forwarded = &registry->counter("domain.csi_forwarded");
    m.uplink_fwd = &registry->counter("domain.uplink_forwarded");
    m.downlink_fwd = &registry->counter("domain.downlink_forwarded");
    m.switch_acks_fwd = &registry->counter("domain.switch_acks_forwarded");
    m.misrouted_dropped = &registry->counter("domain.misrouted_dropped");
    m.peers_marked_dead = &registry->counter("domain.peers_marked_dead");
    m.aps_adopted = &registry->counter("domain.aps_adopted");
    m.clients_adopted = &registry->counter("domain.clients_adopted");
    m.ownership_yields = &registry->counter("domain.ownership_yields");
    m.handover_ms =
        &registry->histogram("controller.handover_ms", 0.0, 120.0, 240);
  }
  metrics_ = m;
}

void Controller::add_ap(net::ApId ap) {
  if (std::find(aps_.begin(), aps_.end(), ap) == aps_.end()) aps_.push_back(ap);
  const auto idx = static_cast<std::size_t>(net::index_of(ap));
  if (liveness_.size() <= idx) {
    liveness_.resize(idx + 1);
    ap_evicted_.resize(idx + 1, false);
  }
}

void Controller::add_client(net::ClientId client) {
  const auto idx = static_cast<std::size_t>(net::index_of(client));
  if (idx >= clients_.size()) clients_.resize(idx + 1);
  ClientState& cs = clients_[idx];
  if (cs.registered) return;
  cs.registered = true;
  cs.ack_timer = std::make_unique<sim::Timer>(sched_, [this, client] {
    // stop/ack lost: retransmit the stop (paper §3.1.2, 30 ms timeout).
    ClientState* s = state(client);
    if (s == nullptr || !s->switch_pending) return;
    ++stats_.stop_retransmissions;
    if (metrics_) metrics_->stop_retransmissions->inc();
    if (s->pending_forced) {
      // Forced failover: the old AP is dead, so there is no stop to
      // retransmit — resend the bootstrap start to the new AP.
      backhaul_.send(self_node(), NodeId::ap(s->pending_target),
                     net::StartMsg{client, s->pending_target,
                                   s->pending_first_index, s->epoch});
    } else if (s->serving) {
      backhaul_.send(self_node(), NodeId::ap(s->pending_from),
                     net::StopMsg{client, s->pending_target, s->epoch});
    } else {
      // Bootstrap start was lost; resend it directly, with the fan-out
      // index captured at initiation (next_index has kept advancing and
      // would skip everything fanned out since).
      backhaul_.send(self_node(), NodeId::ap(s->pending_target),
                     net::StartMsg{client, s->pending_target,
                                   s->pending_first_index, s->epoch});
    }
    s->ack_timer->start(config_.ack_timeout);
  }, sim::EventCategory::kControl);
  if (multi_domain()) {
    cs.owner_domain = config_.domains.id;
    cs.ho_timer = std::make_unique<sim::Timer>(sched_, [this, client] {
      ClientState* s = state(client);
      if (s == nullptr || !s->ho_pending) return;
      if (s->ho_attempts >= config_.domains.handover_max_retries) {
        // Retry budget spent: the target domain is unreachable. Abort to
        // source — we keep ownership — and bar the target so the argmax
        // does not immediately re-propose it.
        abort_handover(client, *s);
        return;
      }
      ++stats_.handover_retries;
      if (metrics_ && metrics_->handover_retries) {
        metrics_->handover_retries->inc();
      }
      s->ho_timeout = s->ho_timeout * 2;  // exponential backoff
      send_handover_request(client, *s);
    }, sim::EventCategory::kControl);
  }
}

void Controller::set_domain_map(const DomainMap* map) {
  domain_map_ = map;
  if (!multi_domain() || map == nullptr) return;
  // Forwarded CSI and adopted APs feed foreign AP indices into this
  // controller; every per-AP-index array must span the whole deployment.
  const auto total = static_cast<std::size_t>(map->num_aps());
  if (liveness_.size() < total) {
    liveness_.resize(total);
    ap_evicted_.resize(total, false);
  }
}

void Controller::set_client_owner(net::ClientId client, std::uint32_t owner) {
  ClientState* cs = state(client);
  if (cs == nullptr) return;
  cs->owned = owner == config_.domains.id;
  cs->owner_domain = owner;
}

Controller::ClientState* Controller::state(net::ClientId client) {
  const auto idx = static_cast<std::size_t>(net::index_of(client));
  if (idx >= clients_.size() || !clients_[idx].registered) return nullptr;
  return &clients_[idx];
}

const Controller::ClientState* Controller::state(net::ClientId client) const {
  const auto idx = static_cast<std::size_t>(net::index_of(client));
  if (idx >= clients_.size() || !clients_[idx].registered) return nullptr;
  return &clients_[idx];
}

void Controller::set_spatial(const SpatialIndex* index,
                             double neighbor_radius_m) {
  spatial_ = index;
  spatial_radius_m_ = neighbor_radius_m;
  tracker_.set_spatial(index, neighbor_radius_m);
  ap_neighbors_.clear();
  shard_clients_.clear();
  for (ClientState& cs : clients_) cs.shard = -1;
  if (index == nullptr || index->empty()) {
    spatial_ = nullptr;
    return;
  }
  ap_neighbors_.resize(static_cast<std::size_t>(index->num_aps()));
  for (net::ApId ap : aps_) {
    const auto i = static_cast<int>(net::index_of(ap));
    if (i >= index->num_aps()) continue;
    std::vector<int> near = index->neighbors(index->ap_x(i), neighbor_radius_m);
    auto& out = ap_neighbors_[static_cast<std::size_t>(i)];
    out.reserve(near.size());
    for (int n : near) out.push_back(static_cast<net::ApId>(n));
  }
  shard_clients_.resize(static_cast<std::size_t>(index->num_segments()));
  // Clients that already have an anchor (CSI arrived before set_spatial)
  // are sharded immediately; the rest join on their first report.
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (clients_[i].registered && clients_[i].anchor_ap >= 0) {
      update_shard(static_cast<std::uint32_t>(i), clients_[i]);
    }
  }
}

void Controller::update_shard(std::uint32_t client_idx, ClientState& cs) {
  if (spatial_ == nullptr || shard_clients_.empty() || cs.anchor_ap < 0 ||
      cs.anchor_ap >= spatial_->num_aps()) {
    return;
  }
  const int seg = spatial_->segment_of_ap(cs.anchor_ap);
  if (seg == cs.shard) return;
  if (cs.shard >= 0) {
    auto& old = shard_clients_[static_cast<std::size_t>(cs.shard)];
    old.erase(std::remove(old.begin(), old.end(), client_idx), old.end());
  }
  shard_clients_[static_cast<std::size_t>(seg)].push_back(client_idx);
  cs.shard = seg;
}

void Controller::handle_backhaul(NodeId /*from*/, BackhaulMessage msg) {
  // Fail-stop: a crashed controller handles nothing. The scenario also
  // takes the backhaul node down, so this is belt and braces for messages
  // already in flight at crash time.
  if (crashed_) return;
  std::visit(
      [this](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, net::CsiReport>) {
          handle_csi(m);
        } else if constexpr (std::is_same_v<T, net::UplinkData>) {
          handle_uplink(std::move(m));
        } else if constexpr (std::is_same_v<T, net::SwitchAck>) {
          handle_switch_ack(m);
        } else if constexpr (std::is_same_v<T, net::HeartbeatAck>) {
          handle_heartbeat_ack(m);
        } else if constexpr (std::is_same_v<T, net::CsiForward>) {
          // Forwarded exactly once: a non-owner receiving one drops it
          // rather than re-forwarding, so routing loops cannot form.
          ClientState* cs = state(m.report.client);
          if (cs != nullptr && cs->owned) {
            process_csi(m.report, *cs);
          } else {
            ++stats_.misrouted_dropped;
            if (metrics_ && metrics_->misrouted_dropped) {
              metrics_->misrouted_dropped->inc();
            }
          }
        } else if constexpr (std::is_same_v<T, net::UplinkForward>) {
          ClientState* cs = state(m.data.packet.client);
          if (cs != nullptr && cs->owned) {
            handle_uplink(std::move(m.data));
          } else {
            ++stats_.misrouted_dropped;
            if (metrics_ && metrics_->misrouted_dropped) {
              metrics_->misrouted_dropped->inc();
            }
          }
        } else if constexpr (std::is_same_v<T, net::DownlinkForward>) {
          ClientState* cs = state(m.packet.client);
          if (cs != nullptr && cs->owned) {
            send_downlink(std::move(m.packet));
          } else {
            ++stats_.misrouted_dropped;
            if (metrics_ && metrics_->misrouted_dropped) {
              metrics_->misrouted_dropped->inc();
            }
          }
        } else if constexpr (std::is_same_v<T, net::HandoverRequest>) {
          handle_handover_request(std::move(m));
        } else if constexpr (std::is_same_v<T, net::HandoverAck>) {
          handle_handover_ack(m);
        } else if constexpr (std::is_same_v<T, net::DomainHeartbeat>) {
          // Echoed inline (no processing delay), like the AP heartbeat. A
          // probe from a peer is also liveness evidence in itself.
          if (m.src_domain < peers_.size() && !peers_[m.src_domain].alive) {
            peer_recovered(m.src_domain);
          }
          backhaul_.send(self_node(), NodeId::controller(m.src_domain),
                         net::DomainHeartbeatAck{config_.domains.id, m.seq});
        } else if constexpr (std::is_same_v<T, net::DomainHeartbeatAck>) {
          if (m.src_domain < peers_.size()) {
            PeerState& ps = peers_[m.src_domain];
            ps.ack_since_tick = true;
            ps.misses = 0;
            if (!ps.alive) peer_recovered(m.src_domain);
          }
        } else if constexpr (std::is_same_v<T, net::DomainSync>) {
          handle_domain_sync(m);
        }
      },
      std::move(msg));
}

void Controller::handle_csi(const net::CsiReport& report) {
  ++stats_.csi_reports;
  if (metrics_) metrics_->csi_reports->inc();
  ClientState* cs = state(report.client);
  if (cs == nullptr) return;
  if (multi_domain() && !cs->owned) {
    // Measurement for a client another domain owns (our AP overheard it
    // near the boundary): relay to the believed owner, whose argmax seeing
    // our AP win is exactly what triggers the inter-domain handover.
    forward_csi(report, *cs);
    return;
  }
  process_csi(report, *cs);
}

void Controller::process_csi(const net::CsiReport& report, ClientState& cs) {
  // The controller, not the AP, computes ESNR from raw CSI (§3.1.1). The
  // RSSI variant exists for the selection-metric ablation.
  const double value =
      config_.metric == SelectionMetric::kMedianEsnr
          ? phy::esnr_metric_db(report.measurement.subcarrier_snr_db)
          : report.measurement.rssi_dbm;
  tracker_.add(report.client, report.from_ap, sched_.now(), value);
  cs.anchor_ap = static_cast<int>(net::index_of(report.from_ap));
  update_shard(net::index_of(report.client), cs);
  maybe_switch(report.client);
}

void Controller::maybe_switch(net::ClientId client) {
  ClientState* csp = state(client);
  if (csp == nullptr) return;
  ClientState& cs = *csp;
  if (cs.switch_pending) return;  // at most one outstanding switch
  if (cs.ho_pending) return;      // ... or one outstanding handover
  if (metrics_) metrics_->selection_evaluations->inc();

  const auto best = tracker_.best_ap(client, sched_.now(), eviction_mask());
  if (!best) return;

  if (multi_domain() && domain_map_ != nullptr) {
    const std::uint32_t target_domain = domain_map_->domain_of_ap(*best);
    if (target_domain != config_.domains.id && !adopted_by_me_[target_domain]) {
      // The winning AP is operated by another controller: an intra-domain
      // start toward it can never complete (its ack goes to its home
      // controller), so this is an inter-domain handover decision.
      consider_handover(client, cs, *best, target_domain);
      return;
    }
  }

  if (!cs.serving) {
    bootstrap(client, *best);
    return;
  }
  if (*best == *cs.serving) return;
  if (sched_.now() - cs.last_switch_completed < config_.switch_hysteresis) return;

  const auto incumbent = tracker_.median(client, *cs.serving, sched_.now());
  if (!incumbent) {
    // No in-window CSI from the serving AP: the window holds a partial view
    // (e.g. only the first report of a burst arrived, or a traffic lull
    // starved the CSI stream). While the serving AP has been silent for
    // less than the stale timeout, judge the challenger against the serving
    // AP's last known value — never trade a known-good AP for a worse one
    // just because the good one was quiet for a beat. Once silence exceeds
    // the timeout, the serving AP is presumed gone and the best known
    // challenger wins unconditionally.
    const auto heard = tracker_.last_heard(client, *cs.serving);
    if (heard && sched_.now() - *heard < config_.serving_stale_timeout) {
      const auto last_known = tracker_.last_value(client, *cs.serving);
      const auto challenger = tracker_.median(client, *best, sched_.now());
      if (!challenger || !last_known ||
          *challenger <= *last_known + config_.switch_margin_db) {
        return;
      }
    }
  } else if (config_.switch_margin_db > 0.0) {
    const auto challenger = tracker_.median(client, *best, sched_.now());
    if (challenger && *challenger < *incumbent + config_.switch_margin_db) {
      return;
    }
  }
  initiate_switch(client, *best);
}

void Controller::bootstrap(net::ClientId client, net::ApId first_ap) {
  ClientState& cs = *state(client);
  cs.switch_pending = true;
  cs.pending_forced = false;
  cs.pending_target = first_ap;
  cs.pending_from = first_ap;
  cs.pending_since = sched_.now();
  cs.pending_first_index = cs.next_index;
  ++cs.epoch;
  ++stats_.switches_initiated;
  if (metrics_) metrics_->switches_initiated->inc();
  if (on_switch_initiated) {
    on_switch_initiated(client, std::nullopt, first_ap, sched_.now());
  }
  backhaul_.send(self_node(), NodeId::ap(first_ap),
                 net::StartMsg{client, first_ap, cs.pending_first_index,
                               cs.epoch});
  cs.ack_timer->start(config_.ack_timeout);
}

void Controller::initiate_switch(net::ClientId client, net::ApId target) {
  ClientState& cs = *state(client);
  cs.switch_pending = true;
  cs.pending_forced = false;
  cs.pending_target = target;
  cs.pending_from = *cs.serving;
  cs.pending_since = sched_.now();
  ++cs.epoch;
  ++stats_.switches_initiated;
  if (metrics_) metrics_->switches_initiated->inc();
  if (on_switch_initiated) {
    on_switch_initiated(client, cs.serving, target, sched_.now());
  }
  backhaul_.send(self_node(), NodeId::ap(*cs.serving),
                 net::StopMsg{client, target, cs.epoch});
  cs.ack_timer->start(config_.ack_timeout);
}

void Controller::handle_switch_ack(const net::SwitchAck& msg) {
  ClientState* csp = state(msg.client);
  if (csp == nullptr) return;
  ClientState& cs = *csp;
  if (multi_domain() && !cs.owned) {
    // An AP homed here acked a switch another domain is driving — its
    // stretch was returned (or adopted) while the client's ownership still
    // sits across the boundary. Relay to the believed owner exactly once;
    // without this the owner's switch retransmits forever against an ack
    // that keeps landing on the wrong controller.
    const std::uint32_t owner = cs.owner_domain;
    if (!msg.relayed && owner < peers_.size() &&
        owner != config_.domains.id && peers_[owner].alive) {
      net::SwitchAck fwd = msg;
      fwd.relayed = true;
      ++stats_.switch_acks_forwarded;
      if (metrics_ && metrics_->switch_acks_fwd) {
        metrics_->switch_acks_fwd->inc();
      }
      backhaul_.send(self_node(), NodeId::controller(owner), fwd);
    } else {
      ++stats_.misrouted_dropped;
      if (metrics_ && metrics_->misrouted_dropped) {
        metrics_->misrouted_dropped->inc();
      }
    }
    return;
  }
  // Only the ack for the outstanding switch counts: matching on
  // (epoch, target) rather than the sender alone rejects duplicates from a
  // retransmit chain and leftovers of a previous switch to the same AP,
  // either of which could otherwise complete a LATER switch that has not
  // actually happened at the APs.
  if (!cs.switch_pending || msg.from_ap != cs.pending_target ||
      msg.epoch != cs.epoch) {
    ++stats_.stale_acks_ignored;
    if (metrics_) metrics_->stale_acks_ignored->inc();
    return;
  }
  cs.ack_timer->cancel();
  cs.switch_pending = false;
  cs.pending_forced = false;
  const net::ApId from = cs.serving.value_or(msg.from_ap);
  cs.serving = msg.from_ap;
  cs.last_switch_completed = sched_.now();
  ++stats_.switches_completed;
  if (metrics_) {
    metrics_->switches_completed->inc();
    metrics_->switch_time_ms->observe(
        (sched_.now() - cs.pending_since).to_millis());
  }
  switch_log_.push_back(
      {cs.pending_since, sched_.now(), msg.client, from, msg.from_ap});
  if (on_serving_changed) on_serving_changed(msg.client, msg.from_ap, sched_.now());
}

void Controller::send_downlink(net::Packet packet) {
  ClientState* csp = state(packet.client);
  if (csp == nullptr) return;
  ClientState& cs = *csp;
  if (multi_domain() && !cs.owned) {
    // The server handed us a packet for a client another domain owns
    // (routing lags ownership during a handover): relay it once.
    forward_downlink(std::move(packet), cs);
    return;
  }
  ++stats_.downlink_packets;
  if (metrics_) metrics_->downlink_packets->inc();

  const std::uint16_t index = cs.next_index;
  cs.next_index = (cs.next_index + 1) & 0x0fff;  // m = 12 bits
  ++cs.downlink_sent;

  // Fan out to every AP that has recently heard the client. Before any CSI
  // exists (client just joined, or long idle), fall back to all APs — or,
  // with bounded_fallback, to the spatial neighborhood of the client's
  // anchor AP: at 1024 APs the all-AP fallback is a broadcast storm, and
  // any AP that could possibly reach the client is within the neighbor
  // radius of the last AP that heard it. A client with no anchor yet has
  // no known location, so it still gets the full broadcast. Dead and
  // Recovering APs are evicted from the set either way — packets handed to
  // a corpse are packets lost.
  std::vector<net::ApId> targets =
      tracker_.fresh_aps(packet.client, sched_.now(), config_.fanout_freshness);
  if (targets.empty()) {
    if (config_.bounded_fallback && spatial_ != nullptr && cs.anchor_ap >= 0 &&
        static_cast<std::size_t>(cs.anchor_ap) < ap_neighbors_.size()) {
      targets = ap_neighbors_[static_cast<std::size_t>(cs.anchor_ap)];
    } else {
      targets = aps_;
    }
  }
  if (config_.liveness_enabled) {
    std::erase_if(targets, [this](net::ApId ap) { return !ap_usable(ap); });
  }
  if (targets.empty()) {
    // Liveness erased every candidate: the packet has nowhere to go. Count
    // and announce the drop instead of letting it vanish silently — at this
    // point the client is effectively partitioned from the deployment and
    // upper layers (TCP, the operator's dashboards) deserve to know.
    ++stats_.fanout_empty_drops;
    if (metrics_) metrics_->fanout_empty_drops->inc();
    if (on_fanout_empty) on_fanout_empty(packet.client, sched_.now());
    return;
  }
  if (payload_pool_ != nullptr) {
    // Single-copy fan-out (DESIGN.md §10): the payload enters the pool
    // once; every target gets a 4-byte handle plus one reference. The
    // wire size is cached in the message so backhaul latency accounting
    // never touches the pool.
    const auto tunnel_bytes = static_cast<std::uint32_t>(packet.tunnel_bytes());
    const net::PacketPool::Handle h = payload_pool_->acquire(std::move(packet));
    for (net::ApId ap : targets) {
      ++stats_.downlink_fanout_copies;
      payload_pool_->add_ref(h);
      net::DownlinkData msg;
      msg.index = index;
      msg.handle = h;
      msg.tunnel_bytes = tunnel_bytes;
      backhaul_.send(self_node(), NodeId::ap(ap), std::move(msg));
    }
    payload_pool_->drop(h);  // the acquisition reference; targets hold theirs
  } else {
    for (net::ApId ap : targets) {
      ++stats_.downlink_fanout_copies;
      backhaul_.send(self_node(), NodeId::ap(ap),
                     net::DownlinkData{packet, index});
    }
  }
  if (metrics_) metrics_->fanout_copies->inc(targets.size());
}

bool Controller::dedup_accept(const net::Packet& p) {
  // 48-bit key: 32-bit source identity (client) + 16-bit IP-ID (§3.2.2).
  const std::uint64_t key =
      (static_cast<std::uint64_t>(net::index_of(p.client)) << 16) | p.ip_id;
  if (dedup_set_.contains(key)) {
    if (metrics_) metrics_->dedup_hits->inc();
    return false;
  }
  // Evict before inserting, with >=: the table never holds more than
  // dedup_capacity keys at any instant. The old post-insert `>` check let
  // it grow to capacity + 1 before evicting — the off-by-one fixed in PR 7
  // (locked by the DedupCapacityBoundary test).
  if (dedup_fifo_.size() >= config_.dedup_capacity) {
    dedup_set_.erase(dedup_fifo_.front());
    dedup_fifo_.pop_front();
  }
  dedup_set_.insert(key);
  dedup_fifo_.push_back(key);
  if (metrics_) {
    metrics_->dedup_misses->inc();
    metrics_->dedup_table_size->set(static_cast<double>(dedup_set_.size()));
  }
  return true;
}

void Controller::handle_uplink(net::UplinkData&& msg) {
  ++stats_.uplink_packets;
  if (metrics_) metrics_->uplink_packets->inc();
  if (multi_domain()) {
    ClientState* cs = state(msg.packet.client);
    if (cs != nullptr && !cs->owned) {
      // Only the owner de-duplicates (its ring is the authoritative one);
      // relay to it.
      forward_uplink(std::move(msg), *cs);
      return;
    }
  }
  if (!dedup_accept(msg.packet)) {
    ++stats_.uplink_duplicates_dropped;
    return;
  }
  if (on_uplink) on_uplink(msg.packet);
}

// --- Multi-controller domains (DESIGN.md §12) ----------------------------

void Controller::forward_csi(const net::CsiReport& report, ClientState& cs) {
  const std::uint32_t owner = cs.owner_domain;
  if (owner < peers_.size() && owner != config_.domains.id &&
      peers_[owner].alive) {
    ++stats_.csi_forwarded;
    if (metrics_ && metrics_->csi_forwarded) metrics_->csi_forwarded->inc();
    backhaul_.send(self_node(), NodeId::controller(owner),
                   net::CsiForward{config_.domains.id, report});
  } else {
    ++stats_.misrouted_dropped;
    if (metrics_ && metrics_->misrouted_dropped) {
      metrics_->misrouted_dropped->inc();
    }
  }
}

void Controller::forward_uplink(net::UplinkData&& msg, ClientState& cs) {
  const std::uint32_t owner = cs.owner_domain;
  if (owner < peers_.size() && owner != config_.domains.id &&
      peers_[owner].alive) {
    ++stats_.uplink_forwarded;
    if (metrics_ && metrics_->uplink_fwd) metrics_->uplink_fwd->inc();
    backhaul_.send(self_node(), NodeId::controller(owner),
                   net::UplinkForward{config_.domains.id, std::move(msg)});
  } else {
    ++stats_.misrouted_dropped;
    if (metrics_ && metrics_->misrouted_dropped) {
      metrics_->misrouted_dropped->inc();
    }
  }
}

void Controller::forward_downlink(net::Packet&& packet, ClientState& cs) {
  const std::uint32_t owner = cs.owner_domain;
  if (owner < peers_.size() && owner != config_.domains.id &&
      peers_[owner].alive) {
    ++stats_.downlink_forwarded;
    if (metrics_ && metrics_->downlink_fwd) metrics_->downlink_fwd->inc();
    backhaul_.send(self_node(), NodeId::controller(owner),
                   net::DownlinkForward{config_.domains.id, std::move(packet)});
  } else {
    ++stats_.misrouted_dropped;
    if (metrics_ && metrics_->misrouted_dropped) {
      metrics_->misrouted_dropped->inc();
    }
  }
}

void Controller::consider_handover(net::ClientId client, ClientState& cs,
                                   net::ApId target,
                                   std::uint32_t target_domain) {
  if (penalty_.barred(client, target_domain, sched_.now())) {
    // Boundary flap damping: a recent handover involving this target (in
    // either direction) bars another attempt until the window expires.
    ++stats_.penalty_blocked;
    if (metrics_ && metrics_->penalty_blocked) {
      metrics_->penalty_blocked->inc();
    }
    return;
  }
  if (target_domain >= peers_.size() || !peers_[target_domain].alive) return;
  if (cs.serving) {
    if (sched_.now() - cs.last_switch_completed < config_.switch_hysteresis) {
      return;
    }
    // Same challenger-vs-incumbent discipline as the intra-domain decision:
    // a cross-domain handover is strictly more expensive than a switch, so
    // it clears at least the same bar.
    const auto incumbent = tracker_.median(client, *cs.serving, sched_.now());
    if (!incumbent) {
      const auto heard = tracker_.last_heard(client, *cs.serving);
      if (heard && sched_.now() - *heard < config_.serving_stale_timeout) {
        const auto last_known = tracker_.last_value(client, *cs.serving);
        const auto challenger = tracker_.median(client, target, sched_.now());
        if (!challenger || !last_known ||
            *challenger <= *last_known + config_.switch_margin_db) {
          return;
        }
      }
    } else if (config_.switch_margin_db > 0.0) {
      const auto challenger = tracker_.median(client, target, sched_.now());
      if (challenger && *challenger < *incumbent + config_.switch_margin_db) {
        return;
      }
    }
  }
  initiate_handover(client, cs, target, target_domain);
}

void Controller::initiate_handover(net::ClientId client, ClientState& cs,
                                   net::ApId target,
                                   std::uint32_t target_domain) {
  cs.ho_pending = true;
  cs.ho_target_domain = target_domain;
  cs.ho_target_ap = target;
  cs.ho_seq = ++ho_seq_counter_;
  cs.ho_attempts = 0;
  cs.ho_started = sched_.now();
  cs.ho_timeout = config_.domains.handover_timeout;
  ++stats_.handover_requests;
  if (metrics_ && metrics_->handover_requests) {
    metrics_->handover_requests->inc();
  }
  send_handover_request(client, cs);
}

void Controller::send_handover_request(net::ClientId client, ClientState& cs) {
  net::HandoverRequest req;
  req.client = client;
  req.src_domain = config_.domains.id;
  req.target_ap = cs.ho_target_ap;
  req.epoch = cs.epoch;
  // Pre-rewind the transferred watermark so the target replays the tail the
  // boundary APs may hold but have not delivered (the client's duplicate
  // suppression absorbs the overlap, as on forced failover).
  const auto replay = static_cast<std::uint16_t>(std::min<std::uint64_t>(
      config_.domains.handover_replay, cs.downlink_sent));
  req.next_index = static_cast<std::uint16_t>((cs.next_index - replay) & 0x0fff);
  req.downlink_sent = cs.downlink_sent;
  req.dedup_seed = collect_dedup_seed(client);
  req.seq = cs.ho_seq;
  ++cs.ho_attempts;
  backhaul_.send(self_node(), NodeId::controller(cs.ho_target_domain),
                 std::move(req));
  cs.ho_timer->start(cs.ho_timeout);
}

void Controller::abort_handover(net::ClientId client, ClientState& cs) {
  cs.ho_pending = false;
  cs.ho_timer->cancel();
  penalty_.arm(client, cs.ho_target_domain,
               sched_.now() + config_.domains.penalty_window);
  ++stats_.handover_aborts;
  if (metrics_ && metrics_->handover_aborts) {
    metrics_->handover_aborts->inc();
  }
}

std::vector<std::uint32_t> Controller::collect_dedup_seed(
    net::ClientId client) const {
  // Newest-first reverse scan of the dedup FIFO for this client's keys; the
  // target re-inserts them so in-flight uplink duplicates do not leak
  // through right after the transfer.
  std::vector<std::uint32_t> out;
  const std::uint64_t want =
      static_cast<std::uint64_t>(net::index_of(client)) << 16;
  for (auto it = dedup_fifo_.rbegin();
       it != dedup_fifo_.rend() && out.size() < config_.domains.dedup_seed_max;
       ++it) {
    if ((*it & ~std::uint64_t{0xffff}) == want) {
      out.push_back(static_cast<std::uint32_t>(*it & 0xffff));
    }
  }
  return out;
}

void Controller::seed_dedup(net::ClientId client, std::uint32_t ip_id) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(net::index_of(client)) << 16) |
      (ip_id & 0xffff);
  if (dedup_set_.contains(key)) return;
  if (dedup_fifo_.size() >= config_.dedup_capacity) {
    dedup_set_.erase(dedup_fifo_.front());
    dedup_fifo_.pop_front();
  }
  dedup_set_.insert(key);
  dedup_fifo_.push_back(key);
}

void Controller::handle_handover_request(net::HandoverRequest&& msg) {
  ClientState* csp = state(msg.client);
  const NodeId src = NodeId::controller(msg.src_domain);
  if (csp == nullptr) {
    backhaul_.send(self_node(), src,
                   net::HandoverAck{msg.client, config_.domains.id, false,
                                    msg.seq, 0});
    return;
  }
  ClientState& cs = *csp;
  if (cs.ho_acc_valid && cs.ho_acc_src == msg.src_domain &&
      cs.ho_acc_seq == msg.seq) {
    // Retransmit of a transfer we already accepted (our ack was lost):
    // replay the ack only — re-applying the state would rewind the epoch
    // and watermark we have since advanced.
    backhaul_.send(self_node(), src,
                   net::HandoverAck{msg.client, config_.domains.id, true,
                                    msg.seq, cs.epoch});
    return;
  }
  if (cs.owned) {
    // Already ours (gossip or a prior transfer raced the retransmit chain).
    // Accept idempotently without touching the live state.
    cs.ho_acc_valid = true;
    cs.ho_acc_seq = msg.seq;
    cs.ho_acc_src = msg.src_domain;
    backhaul_.send(self_node(), src,
                   net::HandoverAck{msg.client, config_.domains.id, true,
                                    msg.seq, cs.epoch});
    return;
  }
  // Take ownership: adopt the transferred epoch (advancing past our own
  // stale view), watermark, and dedup seed, then bootstrap the proposed AP
  // from the transferred (pre-rewound) index under a freshly minted epoch.
  cs.owned = true;
  cs.owner_domain = config_.domains.id;
  cs.epoch = std::max(cs.epoch, msg.epoch) + 1;
  cs.next_index = msg.next_index;
  cs.downlink_sent = msg.downlink_sent;
  for (std::uint32_t ip_id : msg.dedup_seed) seed_dedup(msg.client, ip_id);
  cs.ack_timer->cancel();
  cs.switch_pending = false;
  cs.pending_forced = false;
  cs.serving.reset();
  cs.ho_acc_valid = true;
  cs.ho_acc_seq = msg.seq;
  cs.ho_acc_src = msg.src_domain;
  ++stats_.handovers_in;
  if (metrics_ && metrics_->handovers_in) metrics_->handovers_in->inc();
  // Bar an immediate hand-back to the source: the client just crossed the
  // boundary toward us, and flapping straight back is the ping-pong the
  // penalty timer exists to damp.
  penalty_.arm(msg.client, msg.src_domain,
               sched_.now() + config_.domains.penalty_window);
  if (on_ownership_changed) {
    on_ownership_changed(msg.client, config_.domains.id);
  }
  net::ApId target = msg.target_ap;
  if (!ap_usable(target)) {
    const auto best = tracker_.best_ap(msg.client, sched_.now(),
                                       eviction_mask());
    if (best) {
      target = *best;
    } else {
      // Degraded: accept the transfer (the source's link is worse) but stay
      // unserved until fresh CSI re-bootstraps.
      ++stats_.failovers_unserved;
      backhaul_.send(self_node(), src,
                     net::HandoverAck{msg.client, config_.domains.id, true,
                                      msg.seq, cs.epoch});
      return;
    }
  }
  bootstrap_forced(msg.client, cs, target);
  backhaul_.send(self_node(), src,
                 net::HandoverAck{msg.client, config_.domains.id, true,
                                  msg.seq, cs.epoch});
}

void Controller::bootstrap_forced(net::ClientId client, ClientState& cs,
                                  net::ApId target) {
  // force_failover's bootstrap tail under the ALREADY-minted epoch: the
  // old AP (another domain's, or a corpse's) can never answer a stop, so
  // the start goes straight from our watermark.
  cs.switch_pending = true;
  cs.pending_forced = true;
  cs.pending_target = target;
  cs.pending_from = target;
  cs.pending_since = sched_.now();
  cs.pending_first_index = cs.next_index;
  ++stats_.switches_initiated;
  if (metrics_) metrics_->switches_initiated->inc();
  if (on_switch_initiated) {
    on_switch_initiated(client, std::nullopt, target, sched_.now());
  }
  backhaul_.send(self_node(), NodeId::ap(target),
                 net::StartMsg{client, target, cs.pending_first_index,
                               cs.epoch});
  cs.ack_timer->start(config_.ack_timeout);
}

void Controller::handle_handover_ack(const net::HandoverAck& msg) {
  ClientState* csp = state(msg.client);
  if (csp == nullptr) return;
  ClientState& cs = *csp;
  if (!cs.ho_pending || msg.seq != cs.ho_seq) return;  // stale chain leftover
  cs.ho_timer->cancel();
  cs.ho_pending = false;
  if (!msg.accepted) {
    penalty_.arm(msg.client, cs.ho_target_domain,
                 sched_.now() + config_.domains.penalty_window);
    ++stats_.handover_aborts;
    if (metrics_ && metrics_->handover_aborts) {
      metrics_->handover_aborts->inc();
    }
    return;
  }
  // Ownership released. Stop the old serving AP under the target's minted
  // epoch (strictly newer than the start record it is serving under, so the
  // stop supersedes it); the forwarded start it triggers arrives at the
  // target's AP as a same-epoch duplicate and is answered as an ack replay.
  // When the handover target IS the old serving AP (same radio, new owner —
  // common right after a returned stretch), there is nothing to quench:
  // stopping it would kill the drain the target just bootstrapped.
  const auto old_serving = cs.serving;
  cs.ack_timer->cancel();
  cs.switch_pending = false;
  cs.pending_forced = false;
  cs.serving.reset();
  cs.owned = false;
  cs.owner_domain = msg.from_domain;
  ++stats_.handovers_out;
  if (metrics_) {
    if (metrics_->handovers_out) metrics_->handovers_out->inc();
    if (metrics_->handover_ms) {
      metrics_->handover_ms->observe((sched_.now() - cs.ho_started).to_millis());
    }
  }
  if (old_serving && *old_serving != cs.ho_target_ap) {
    backhaul_.send(self_node(), NodeId::ap(*old_serving),
                   net::StopMsg{msg.client, cs.ho_target_ap, msg.epoch});
  }
  // Seed the gossip record with the target's minted epoch so an immediate
  // target crash still adopts from a base at least that fresh.
  if (msg.epoch > cs.gossip_epoch || !cs.gossip_valid) {
    cs.gossip_valid = true;
    cs.gossip_epoch = msg.epoch;
    cs.gossip_next_index = cs.next_index;
    cs.gossip_downlink_sent = cs.downlink_sent;
    cs.gossip_has_serving = true;
    cs.gossip_serving = cs.ho_target_ap;
  }
  if (on_ownership_changed) {
    on_ownership_changed(msg.client, msg.from_domain);
  }
}

void Controller::domain_heartbeat_tick() {
  const std::uint32_t me = config_.domains.id;
  for (std::uint32_t d = 0; d < peers_.size(); ++d) {
    if (d == me) continue;
    PeerState& ps = peers_[d];
    // Judge the probe sent last tick before sending the next one (the
    // PR-5 AP-heartbeat discipline, peer-to-peer).
    if (!ps.ack_since_tick) {
      ++ps.misses;
      if (ps.misses >= config_.domains.miss_threshold && ps.alive) {
        peer_dead(d);
      }
    }
    ps.ack_since_tick = false;
    ++ps.hb_seq;
    backhaul_.send(self_node(), NodeId::controller(d),
                   net::DomainHeartbeat{me, ps.hb_seq});
  }
  domain_hb_timer_->start(config_.domains.heartbeat_interval);
}

void Controller::peer_dead(std::uint32_t domain) {
  PeerState& ps = peers_[domain];
  ps.alive = false;
  ps.state_since = sched_.now();
  last_peer_transition_ = sched_.now();
  ++stats_.peers_marked_dead;
  if (metrics_ && metrics_->peers_marked_dead) {
    metrics_->peers_marked_dead->inc();
  }
  // Handovers in flight toward the corpse can never complete: abort them
  // now instead of burning the whole retry budget.
  for (std::size_t ci = 0; ci < clients_.size(); ++ci) {
    ClientState& cs = clients_[ci];
    if (cs.registered && cs.ho_pending && cs.ho_target_domain == domain) {
      abort_handover(static_cast<net::ClientId>(ci), cs);
    }
  }
  reevaluate_adoptions();
}

void Controller::peer_recovered(std::uint32_t domain) {
  PeerState& ps = peers_[domain];
  ps.alive = true;
  ps.misses = 0;
  ps.ack_since_tick = true;
  ps.state_since = sched_.now();
  last_peer_transition_ = sched_.now();
  ++stats_.peers_recovered;
  if (adopted_by_me_[domain]) return_domain(domain);
  // Responsibilities may shift with the alive set; pick up any dead domain
  // still left without an adopter.
  reevaluate_adoptions();
  // Push our ownership claims at the recovered peer right away rather than
  // waiting out the sync interval: if the "death" was a false positive
  // (lossy heartbeats) we may have adopted clients the peer still believes
  // are its own, and the jumped-epoch claims in this sync are what make it
  // yield. Shortens the dual-ownership window to one backhaul transit.
  backhaul_.send(self_node(), NodeId::controller(domain),
                 build_domain_sync());
}

void Controller::reevaluate_adoptions() {
  if (domain_map_ == nullptr || crashed_) return;
  const std::uint32_t me = config_.domains.id;
  std::vector<bool> alive(peers_.size());
  for (std::uint32_t d = 0; d < peers_.size(); ++d) {
    alive[d] = d == me ? true : peers_[d].alive;
  }
  for (std::uint32_t d = 0; d < peers_.size(); ++d) {
    if (d == me || alive[d] || adopted_by_me_[d]) continue;
    if (domain_map_->nearest_alive(d, alive) == me) adopt_domain(d);
  }
  // Client sweep, separate from the AP re-homing: a relayed gossip entry
  // can teach us about a dead domain's client long after we adopted its
  // APs, so adoption keys off the believed owner, not the adopt instant.
  for (std::size_t ci = 0; ci < clients_.size(); ++ci) {
    ClientState& cs = clients_[ci];
    if (!cs.registered || cs.owned) continue;
    const std::uint32_t d = cs.owner_domain;
    if (d == me || d >= alive.size() || alive[d]) continue;
    if (domain_map_->nearest_alive(d, alive) == me) {
      adopt_client(static_cast<net::ClientId>(ci), cs);
    }
  }
}

void Controller::adopt_domain(std::uint32_t dead) {
  adopted_by_me_[dead] = true;
  // Re-home the dead domain's APs: they re-point their uplink/CSI/ack path
  // here and join our fan-out fallback set.
  for (std::uint32_t a = domain_map_->first_ap(dead);
       a < domain_map_->last_ap(dead); ++a) {
    const auto ap = static_cast<net::ApId>(a);
    backhaul_.send(self_node(), NodeId::ap(ap),
                   net::AdoptAp{config_.domains.id});
    add_ap(ap);
    ++stats_.aps_adopted;
    if (metrics_ && metrics_->aps_adopted) metrics_->aps_adopted->inc();
  }
  // The corpse's clients are picked up by the client sweep in
  // reevaluate_adoptions (the caller), keyed off the believed owner.
}

void Controller::adopt_client(net::ClientId client, ClientState& cs) {
  // Bootstrap from the dead owner's last-gossiped epoch/watermark. The
  // epoch jump leaps over anything it minted after that gossip, so our
  // starts are never stale at the APs.
  cs.owned = true;
  cs.owner_domain = config_.domains.id;
  const std::uint32_t base =
      std::max(cs.epoch, cs.gossip_valid ? cs.gossip_epoch : 0);
  cs.epoch = base + config_.domains.epoch_jump;
  if (cs.gossip_valid) {
    cs.next_index = cs.gossip_next_index;
    cs.downlink_sent = cs.gossip_downlink_sent;
  }
  cs.ack_timer->cancel();
  cs.switch_pending = false;
  cs.pending_forced = false;
  if (cs.ho_timer) cs.ho_timer->cancel();
  cs.ho_pending = false;
  ++stats_.clients_adopted;
  if (metrics_ && metrics_->clients_adopted) {
    metrics_->clients_adopted->inc();
  }
  if (on_ownership_changed) {
    on_ownership_changed(client, config_.domains.id);
  }
  if (cs.gossip_valid && cs.gossip_has_serving) {
    // The data plane outlived its controller: the gossiped serving AP is
    // still draining under the dead domain's epoch. Keep it — we only
    // take over routing and ownership; our next measurement-driven
    // switch re-stamps the jumped epoch at the AP layer.
    cs.serving = cs.gossip_serving;
  } else {
    cs.serving.reset();
    const auto target = tracker_.best_ap(client, sched_.now(),
                                         eviction_mask());
    if (target) {
      bootstrap_forced(client, cs, *target);
    } else {
      // Degraded: no usable CSI anywhere yet. The adopted APs' first
      // reports (they now flow here) re-bootstrap through the normal path.
      ++stats_.adopted_unserved;
    }
  }
}

void Controller::return_domain(std::uint32_t recovered) {
  adopted_by_me_[recovered] = false;
  for (std::uint32_t a = domain_map_->first_ap(recovered);
       a < domain_map_->last_ap(recovered); ++a) {
    const auto ap = static_cast<net::ApId>(a);
    backhaul_.send(self_node(), NodeId::ap(ap), net::AdoptAp{recovered});
    std::erase(aps_, ap);
    ++stats_.aps_returned;
  }
  // Clients stay owned here; the measurement-driven handover path migrates
  // them back as soon as the returned APs' CSI (relayed by the recovered
  // controller) wins the argmax.
}

void Controller::domain_sync_tick() {
  const net::DomainSync sync = build_domain_sync();
  for (std::uint32_t d = 0; d < peers_.size(); ++d) {
    if (d == config_.domains.id || !peers_[d].alive) continue;
    backhaul_.send(self_node(), NodeId::controller(d), sync);
  }
  domain_sync_timer_->start(config_.domains.sync_interval);
}

net::DomainSync Controller::build_domain_sync() const {
  net::DomainSync sync;
  sync.src_domain = config_.domains.id;
  const std::uint32_t me = config_.domains.id;
  for (std::size_t ci = 0; ci < clients_.size(); ++ci) {
    const ClientState& cs = clients_[ci];
    if (!cs.registered) continue;
    if (cs.owned) {
      sync.entries.push_back({static_cast<net::ClientId>(ci), me, cs.epoch,
                              cs.next_index, cs.downlink_sent,
                              cs.serving.has_value(),
                              cs.serving.value_or(net::ApId{})});
    } else if (cs.gossip_valid && cs.owner_domain != me &&
               cs.owner_domain < peers_.size() &&
               !peers_[cs.owner_domain].alive) {
      // Relay our last record of a dead owner: the adopter may never have
      // seen the ownership transfer (the owner crashed before gossiping
      // it), and a client nobody speaks for stays orphaned forever.
      sync.entries.push_back({static_cast<net::ClientId>(ci),
                              cs.owner_domain, cs.gossip_epoch,
                              cs.gossip_next_index, cs.gossip_downlink_sent,
                              cs.gossip_has_serving, cs.gossip_serving});
    }
  }
  return sync;
}

void Controller::handle_domain_sync(const net::DomainSync& msg) {
  const std::uint32_t me = config_.domains.id;
  bool saw_dead_owner = false;
  for (const net::DomainSync::Entry& e : msg.entries) {
    ClientState* csp = state(e.client);
    if (csp == nullptr) continue;
    ClientState& cs = *csp;
    if (e.owner == me && !cs.owned) {
      // A relayed claim naming us as owner of a client we do not own can
      // only be stale (e.g. we crashed and restarted since); ignore it.
      continue;
    }
    if (cs.owned) {
      // Relays republish a third party's old record; only a direct claim
      // from the sender itself can contest our ownership.
      if (e.owner != msg.src_domain) continue;
      // Split-brain: both sides believe they own the client (an aborted
      // handover whose transfer actually landed, or a crash/adopt race).
      // Yield to the higher epoch; equal epochs break toward the lower
      // domain id so both sides pick the same winner.
      if (e.epoch > cs.epoch ||
          (e.epoch == cs.epoch && msg.src_domain < me)) {
        ++stats_.ownership_yields;
        if (metrics_ && metrics_->ownership_yields) {
          metrics_->ownership_yields->inc();
        }
        cs.ack_timer->cancel();
        cs.switch_pending = false;
        cs.pending_forced = false;
        if (cs.ho_timer) cs.ho_timer->cancel();
        cs.ho_pending = false;
        if (cs.serving && !(e.has_serving && e.serving == *cs.serving)) {
          // Quench our AP's drain: an equal-epoch stop supersedes the start
          // record it serves under. new_ap = itself routes the forwarded
          // start back where the record is now a stop — a clean no-op.
          // Skipped when the winner serves through the SAME AP (both sides
          // bootstrapped one radio): its record carries the winner's epoch
          // and the drain is now the winner's to manage, not ours to kill.
          backhaul_.send(self_node(), NodeId::ap(*cs.serving),
                         net::StopMsg{e.client, *cs.serving, cs.epoch});
        }
        cs.serving.reset();
        cs.owned = false;
        cs.owner_domain = msg.src_domain;
        // Seed the gossip record from the winner's entry: if it crashes
        // before its next sync reaches us, adoption still has a fresh base.
        cs.gossip_valid = true;
        cs.gossip_epoch = e.epoch;
        cs.gossip_next_index = e.next_index;
        cs.gossip_downlink_sent = e.downlink_sent;
        cs.gossip_has_serving = e.has_serving;
        cs.gossip_serving = e.serving;
        if (on_ownership_changed) {
          on_ownership_changed(e.client, msg.src_domain);
        }
      }
    } else {
      // Track the freshest gossip: it names the believed owner for
      // forwarding and seeds the crash-adoption bootstrap.
      if (!cs.gossip_valid || e.epoch >= cs.gossip_epoch) {
        cs.gossip_valid = true;
        cs.gossip_epoch = e.epoch;
        cs.gossip_next_index = e.next_index;
        cs.gossip_downlink_sent = e.downlink_sent;
        cs.gossip_has_serving = e.has_serving;
        cs.gossip_serving = e.serving;
        cs.owner_domain = e.owner;
      }
      if (e.owner < peers_.size() && e.owner != me &&
          !peers_[e.owner].alive) {
        saw_dead_owner = true;
      }
    }
  }
  // A relay just taught us about clients whose owner is already dead; if
  // we are that domain's adopter, pick them up now rather than leaking
  // them until some unrelated liveness event re-runs the sweep.
  if (saw_dead_owner) reevaluate_adoptions();
}

void Controller::set_crashed(bool crashed) {
  if (crashed == crashed_) return;
  crashed_ = crashed;
  if (crashed) {
    // Fail-stop: volatile state dies with the process.
    if (heartbeat_timer_) heartbeat_timer_->cancel();
    if (domain_hb_timer_) domain_hb_timer_->cancel();
    if (domain_sync_timer_) domain_sync_timer_->cancel();
    for (ClientState& cs : clients_) {
      if (!cs.registered) continue;
      cs.ack_timer->cancel();
      if (cs.ho_timer) cs.ho_timer->cancel();
      cs.switch_pending = false;
      cs.pending_forced = false;
      cs.ho_pending = false;
      cs.owned = false;
      cs.serving.reset();
      cs.gossip_valid = false;
      cs.ho_acc_valid = false;
    }
    // Any adopted APs are no longer operated by anyone until the liveness
    // machinery re-homes them; our AP list reverts to the home stretch.
    if (domain_map_ != nullptr && multi_domain()) {
      aps_.clear();
      for (std::uint32_t a = domain_map_->first_ap(config_.domains.id);
           a < domain_map_->last_ap(config_.domains.id); ++a) {
        aps_.push_back(static_cast<net::ApId>(a));
      }
    }
    for (std::size_t d = 0; d < adopted_by_me_.size(); ++d) {
      adopted_by_me_[d] = false;
    }
    for (PeerState& ps : peers_) ps = PeerState{};
  } else {
    // Cold restart: peers presumed alive until probed; ownership beliefs
    // repopulate from their gossip (until then cross-domain traffic for
    // unknown owners is counted as misrouted and dropped).
    for (PeerState& ps : peers_) {
      ps = PeerState{};
      ps.state_since = sched_.now();
    }
    if (config_.liveness_enabled && heartbeat_timer_) {
      heartbeat_timer_->start(config_.heartbeat_interval);
    }
    if (domain_hb_timer_) {
      domain_hb_timer_->start(config_.domains.heartbeat_interval);
    }
    if (domain_sync_timer_) {
      domain_sync_timer_->start(config_.domains.sync_interval);
    }
  }
}

bool Controller::owns_client(net::ClientId client) const {
  const ClientState* cs = state(client);
  return cs != nullptr && cs->owned && !crashed_;
}

bool Controller::handover_pending(net::ClientId client) const {
  const ClientState* cs = state(client);
  return cs != nullptr && cs->ho_pending;
}

std::uint32_t Controller::believed_owner(net::ClientId client) const {
  const ClientState* cs = state(client);
  return cs == nullptr ? config_.domains.id : cs->owner_domain;
}

bool Controller::peer_alive(std::uint32_t domain) const {
  if (domain == config_.domains.id) return !crashed_;
  return domain < peers_.size() && peers_[domain].alive;
}

// --- AP liveness & forced failover --------------------------------------

bool Controller::ap_usable(net::ApId ap) const {
  const auto idx = static_cast<std::size_t>(net::index_of(ap));
  return idx >= ap_evicted_.size() || !ap_evicted_[idx];
}

Controller::ApHealth Controller::ap_health(net::ApId ap) const {
  if (!config_.liveness_enabled) return {};
  const auto idx = static_cast<std::size_t>(net::index_of(ap));
  if (idx >= liveness_.size()) return {};
  return {liveness_[idx].state, liveness_[idx].state_since};
}

void Controller::heartbeat_tick() {
  // With a stagger of N (and spatial state wired), each tick probes only
  // the APs whose road segment falls in the current round-robin group:
  // per-tick control traffic drops N-fold, each AP is still probed — and
  // its previous probe judged — every N ticks.
  const int stagger =
      (config_.heartbeat_stagger > 0 && spatial_ != nullptr &&
       !spatial_->empty())
          ? config_.heartbeat_stagger
          : 0;
  for (net::ApId ap : aps_) {
    const auto idx = static_cast<std::size_t>(net::index_of(ap));
    if (stagger > 0) {
      const auto i = static_cast<int>(idx);
      if (i >= spatial_->num_aps() ||
          spatial_->segment_of_ap(i) % stagger != hb_phase_) {
        continue;
      }
    }
    LivenessState& ls = liveness_[idx];
    // Judge the probe sent last tick before sending the next one.
    // (ack_since_tick starts true, so no miss accrues before first probe.)
    if (!ls.ack_since_tick) {
      ++ls.misses;
      if (ls.state == ApLiveness::kAlive) {
        ls.state = ApLiveness::kSuspect;
        ls.state_since = sched_.now();
        ++stats_.aps_marked_suspect;
      }
      if (ls.misses >= config_.heartbeat_miss_threshold &&
          ls.state != ApLiveness::kDead) {
        mark_dead(ap);
      }
    }
    if (ls.state == ApLiveness::kRecovering &&
        sched_.now() >= ls.readmit_at) {
      readmit(ap);
    }
    ls.ack_since_tick = false;
    ++ls.hb_seq;
    ls.hb_sent_at = sched_.now();
    ++stats_.heartbeats_sent;
    backhaul_.send(self_node(), NodeId::ap(ap),
                   net::Heartbeat{ls.hb_seq});
  }
  if (stagger > 0) hb_phase_ = (hb_phase_ + 1) % stagger;
  heartbeat_timer_->start(config_.heartbeat_interval);
}

void Controller::handle_heartbeat_ack(const net::HeartbeatAck& msg) {
  const auto idx = static_cast<std::size_t>(net::index_of(msg.from_ap));
  if (idx >= liveness_.size()) return;
  LivenessState& ls = liveness_[idx];
  ++stats_.heartbeat_acks;
  ls.ack_since_tick = true;
  ls.misses = 0;
  if (metrics_ && metrics_->heartbeat_rtt_ms && msg.seq == ls.hb_seq) {
    metrics_->heartbeat_rtt_ms->observe(
        (sched_.now() - ls.hb_sent_at).to_millis());
  }
  if (ls.state == ApLiveness::kDead) {
    // Back from the dead: damp the flap with an exponential readmission
    // backoff so an oscillating AP cannot thrash the fan-out set.
    ls.state = ApLiveness::kRecovering;
    ls.state_since = sched_.now();
    if (ls.backoff == Time::zero()) ls.backoff = config_.readmission_backoff;
    ls.readmit_at = sched_.now() + ls.backoff;
    ls.backoff = std::min(ls.backoff * 2, config_.readmission_backoff_max);
  } else if (ls.state == ApLiveness::kSuspect) {
    ls.state = ApLiveness::kAlive;
    ls.state_since = sched_.now();
  }
}

void Controller::mark_dead(net::ApId ap) {
  const auto idx = static_cast<std::size_t>(net::index_of(ap));
  LivenessState& ls = liveness_[idx];
  ls.state = ApLiveness::kDead;
  ls.state_since = sched_.now();
  ap_evicted_[idx] = true;
  ++stats_.aps_marked_dead;
  if (metrics_ && metrics_->ap_marked_dead) metrics_->ap_marked_dead->inc();
  // Any client whose stream touches the dead AP — serving through it, or
  // mid-switch into or out of it — is failed over immediately rather than
  // waiting out retransmissions toward a corpse.
  const auto touch = [&](net::ClientId client, ClientState& cs) {
    const bool serving_dead = cs.serving && *cs.serving == ap;
    const bool pending_dead =
        cs.switch_pending &&
        (cs.pending_target == ap || cs.pending_from == ap);
    if (serving_dead || pending_dead) {
      // Remember the orphan: if the AP was a zombie (radio up, backhaul
      // down) it still believes it serves this client and must be quenched
      // once it is readmitted.
      ls.orphaned.push_back(client);
      force_failover(client);
    }
  };
  if (spatial_ != nullptr && !shard_clients_.empty() &&
      static_cast<int>(idx) < spatial_->num_aps()) {
    // Only clients anchored near the AP can be serving through it or
    // switching to it: serving requires CSI, CSI requires sense-range
    // proximity, and the anchor trails the client by at most the neighbor
    // radius — so 2x the radius around the AP covers every candidate.
    const double x = spatial_->ap_x(static_cast<int>(idx));
    const int s0 = spatial_->segment_of(x - 2.0 * spatial_radius_m_);
    const int s1 = spatial_->segment_of(x + 2.0 * spatial_radius_m_);
    for (int s = s0; s <= s1; ++s) {
      // Copy: force_failover never edits shards, but stay robust to
      // future hooks mutating client state mid-scan.
      const std::vector<std::uint32_t> members =
          shard_clients_[static_cast<std::size_t>(s)];
      for (std::uint32_t ci : members) {
        ClientState& cs = clients_[ci];
        if (cs.registered) touch(static_cast<net::ClientId>(ci), cs);
      }
    }
  } else {
    for (std::size_t ci = 0; ci < clients_.size(); ++ci) {
      if (clients_[ci].registered) {
        touch(static_cast<net::ClientId>(ci), clients_[ci]);
      }
    }
  }
}

void Controller::force_failover(net::ClientId client) {
  ClientState& cs = *state(client);
  cs.ack_timer->cancel();
  cs.switch_pending = false;
  cs.pending_forced = false;
  const auto target = tracker_.best_ap(client, sched_.now(), &ap_evicted_);
  if (!target) {
    // Degraded mode: no usable AP has in-window CSI for this client. Drop
    // to unserved; the next CSI report re-bootstraps through the normal
    // path (and the fan-out keeps reaching every fresh, usable AP).
    cs.serving.reset();
    ++stats_.failovers_unserved;
    return;
  }
  // Mint a new epoch and bootstrap the new AP straight from our own fan-out
  // watermark: the dead AP can never answer a stop, so the normal
  // stop -> start chain is unavailable. Rewinding by failover_replay
  // re-sends the tail the dead AP may have accepted but never delivered;
  // the client's duplicate suppression absorbs the overlap.
  const std::uint16_t replay = static_cast<std::uint16_t>(
      std::min<std::uint64_t>(config_.failover_replay, cs.downlink_sent));
  ++cs.epoch;
  cs.switch_pending = true;
  cs.pending_forced = true;
  cs.pending_target = *target;
  cs.pending_from = cs.serving.value_or(*target);
  cs.pending_since = sched_.now();
  cs.pending_first_index =
      static_cast<std::uint16_t>((cs.next_index - replay) & 0x0fff);
  ++stats_.switches_initiated;
  ++stats_.forced_failovers;
  if (metrics_) {
    metrics_->switches_initiated->inc();
    if (metrics_->forced_failovers) metrics_->forced_failovers->inc();
  }
  if (on_switch_initiated) {
    on_switch_initiated(client, cs.serving, *target, sched_.now());
  }
  backhaul_.send(self_node(), NodeId::ap(*target),
                 net::StartMsg{client, *target, cs.pending_first_index,
                               cs.epoch});
  cs.ack_timer->start(config_.ack_timeout);
}

void Controller::readmit(net::ApId ap) {
  const auto idx = static_cast<std::size_t>(net::index_of(ap));
  LivenessState& ls = liveness_[idx];
  ls.state = ApLiveness::kAlive;
  ls.state_since = sched_.now();
  ap_evicted_[idx] = false;
  ++stats_.aps_readmitted;
  if (metrics_ && metrics_->ap_readmitted) metrics_->ap_readmitted->inc();
  for (net::ClientId client : ls.orphaned) quench_orphan(ap, client);
  ls.orphaned.clear();
}

void Controller::quench_orphan(net::ApId ap, net::ClientId client) {
  ClientState* csp = state(client);
  if (csp == nullptr) return;
  ClientState& cs = *csp;
  // Nothing to quench if the client is unserved or came back through this
  // very AP (a fresh start superseded the zombie's stale serving state).
  if (!cs.serving || *cs.serving == ap) return;
  if (cs.switch_pending) {
    // A stop now could race the in-flight start of the pending switch;
    // retry once the handshake quiesces.
    sched_.schedule_in(config_.heartbeat_interval,
                       [this, ap, client] { quench_orphan(ap, client); },
                       sim::EventCategory::kControl);
    return;
  }
  // The stop carries the client's current epoch: newer than anything the
  // zombie recorded, so it stops serving and forwards a start that the
  // actual serving AP answers as a duplicate (a stale ack we ignore).
  ++stats_.quench_stops;
  backhaul_.send(self_node(), NodeId::ap(ap),
                 net::StopMsg{client, *cs.serving, cs.epoch});
}

std::vector<Controller::ClientDebug> Controller::client_debug() const {
  // The slab is already ordered by client index.
  std::vector<ClientDebug> out;
  out.reserve(clients_.size());
  for (std::size_t ci = 0; ci < clients_.size(); ++ci) {
    const ClientState& cs = clients_[ci];
    if (!cs.registered) continue;
    ClientDebug d;
    d.client = static_cast<net::ClientId>(ci);
    d.next_index = cs.next_index;
    d.downlink_sent = cs.downlink_sent;
    d.serving = cs.serving;
    d.switch_pending = cs.switch_pending;
    d.pending_forced = cs.pending_forced;
    d.pending_target = cs.pending_target;
    d.pending_from = cs.pending_from;
    d.pending_since = cs.pending_since;
    d.epoch = cs.epoch;
    d.pending_first_index = cs.pending_first_index;
    d.last_switch_completed = cs.last_switch_completed;
    out.push_back(d);
  }
  return out;
}

std::optional<net::ApId> Controller::serving_ap(net::ClientId client) const {
  const ClientState* cs = state(client);
  return cs == nullptr ? std::nullopt : cs->serving;
}

std::optional<Time> Controller::pending_switch_since(
    net::ClientId client) const {
  const ClientState* cs = state(client);
  if (cs == nullptr || !cs->switch_pending) return std::nullopt;
  return cs->pending_since;
}

Time Controller::last_switch_completed(net::ClientId client) const {
  const ClientState* cs = state(client);
  return cs == nullptr ? Time::ms(-1'000'000) : cs->last_switch_completed;
}

}  // namespace wgtt::core
