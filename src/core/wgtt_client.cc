#include "core/wgtt_client.h"

#include "phy/rate_control.h"

namespace wgtt::core {

WgttClient::WgttClient(net::ClientId id, sim::Scheduler& sched,
                       mac::Medium& medium, Rng rng, Config config,
                       const mobility::Trajectory* trajectory)
    : id_(id),
      sched_(sched),
      config_([&] {
        Config c = config;
        c.mac.shared_rx_scoreboard = true;  // one seq space across the array
        return c;
      }()),
      trajectory_(trajectory),
      // Fork independent streams: one for the MAC, one for rate control.
      mac_(sched, medium, rng.fork(), config_.mac) {
  radio_ = mac_.attach([this] { return trajectory_->position(sched_.now()); });
  mac_.set_tx_to_bssid(true);
  mac_.add_peer(mac::kBssidWgtt);
  // The client has no CSI tool; its uplink rate control is the stock
  // statistics-driven sampler.
  mac_.set_rate_controller(mac::kBssidWgtt,
                           std::make_unique<phy::MinstrelLite>(
                               phy::MinstrelLite::Config{}, Rng{rng.next_u64()}));
  mac_.on_deliver = [this](mac::RadioId, const net::Packet& p) {
    if (!accept_downlink(p)) return;
    if (on_downlink) on_downlink(p);
  };
  probe_timer_ = std::make_unique<sim::Timer>(
      sched_,
      [this] {
        if (!probing_) return;
        emit_probe();
        probe_timer_->start(config_.probe_interval);
      },
      sim::EventCategory::kChannel);
}

bool WgttClient::accept_downlink(const net::Packet& p) {
  if (seen_downlink_uids_.contains(p.uid)) {
    ++downlink_duplicates_dropped_;
    return false;
  }
  seen_downlink_uids_.insert(p.uid);
  seen_downlink_fifo_.push_back(p.uid);
  if (seen_downlink_fifo_.size() > kDownlinkDedupCapacity) {
    seen_downlink_uids_.erase(seen_downlink_fifo_.front());
    seen_downlink_fifo_.pop_front();
  }
  return true;
}

void WgttClient::send_uplink(net::Packet packet) {
  packet.client = id_;
  packet.downlink = false;
  packet.ip_id = next_ip_id_++;
  if (packet.created == Time::zero()) packet.created = sched_.now();
  mac_.enqueue(mac::kBssidWgtt, std::move(packet));
}

void WgttClient::start_probing() {
  if (probing_) return;
  probing_ = true;
  probe_timer_->start(Time::us(100));  // first probe almost immediately
}

void WgttClient::stop_probing() {
  probing_ = false;
  probe_timer_->cancel();
}

void WgttClient::emit_probe() {
  net::Packet p = net::make_packet();
  p.proto = net::Proto::kArp;
  p.payload_bytes = config_.probe_bytes;
  send_uplink(std::move(p));
}

}  // namespace wgtt::core
