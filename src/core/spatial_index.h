// Road-segment spatial index over the AP array (DESIGN.md §9).
//
// The deployment is a linear corridor: every AP sits at a fixed road
// coordinate x (the y setback is shared), and a client's position along the
// road determines the only APs that can matter to it — everything else is
// out of sense range. This index is built once from the scenario geometry
// and answers three questions in O(log A) or O(1):
//
//   * nearest(x)        — the AP a client at x would associate with,
//                         byte-identical to the brute-force ascending-index
//                         strict-< scan it replaces (ties on |dx| go to the
//                         lowest AP index);
//   * neighbors(x, r)   — every AP within r metres of x along the road,
//                         returned in ascending AP-index order (callers rely
//                         on this to keep scheduled event order identical to
//                         the unindexed path);
//   * segment_of(x)     — the grid cell (road segment) containing x, used to
//                         shard per-client controller state.
//
// The index is immutable after build(): APs do not move. Positions are
// stored both by AP index and sorted by (x, index) so nearest/neighbors are
// binary searches over a contiguous array.
#pragma once

#include <vector>

namespace wgtt::core {

class SpatialIndex {
 public:
  SpatialIndex() = default;

  /// Builds the index over `ap_x[i]` = road coordinate of AP index i.
  /// `cell_m` is the segment (grid cell) width; it only affects sharding
  /// granularity, never query results.
  void build(std::vector<double> ap_x, double cell_m);

  [[nodiscard]] bool empty() const { return ap_x_.empty(); }
  [[nodiscard]] int num_aps() const { return static_cast<int>(ap_x_.size()); }
  [[nodiscard]] int num_segments() const { return num_segments_; }
  [[nodiscard]] double cell_m() const { return cell_m_; }
  [[nodiscard]] double ap_x(int ap) const {
    return ap_x_[static_cast<std::size_t>(ap)];
  }

  /// Segment containing road coordinate x, clamped to [0, num_segments()-1]
  /// so off-array positions (lead-in, overrun) land in the edge segments.
  [[nodiscard]] int segment_of(double x) const;
  [[nodiscard]] int segment_of_ap(int ap) const {
    return seg_of_ap_[static_cast<std::size_t>(ap)];
  }

  /// AP index minimising |ap_x - x|; ties broken toward the lowest AP
  /// index, matching a brute-force ascending scan with strict <.
  [[nodiscard]] int nearest(double x) const;

  /// Appends every AP index with |ap_x - x| <= radius_m to `out`, in
  /// ascending AP-index order (`out` is not cleared).
  void neighbors(double x, double radius_m, std::vector<int>& out) const;
  [[nodiscard]] std::vector<int> neighbors(double x, double radius_m) const {
    std::vector<int> out;
    neighbors(x, radius_m, out);
    return out;
  }

 private:
  double cell_m_ = 30.0;
  double min_x_ = 0.0;
  int num_segments_ = 0;
  std::vector<double> ap_x_;      // by AP index
  std::vector<int> seg_of_ap_;    // by AP index
  std::vector<int> order_;        // AP indices sorted by (x, index)
  std::vector<double> sorted_x_;  // ap_x_[order_[i]], ascending
};

}  // namespace wgtt::core
