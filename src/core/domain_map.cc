#include "core/domain_map.h"

#include <algorithm>
#include <stdexcept>

#include "core/spatial_index.h"

namespace wgtt::core {

void DomainMap::build(std::uint32_t num_aps, std::uint32_t num_domains) {
  if (num_domains == 0 || num_aps == 0) {
    throw std::invalid_argument("DomainMap: need at least one AP and domain");
  }
  num_domains = std::min(num_domains, num_aps);
  first_ap_.assign(num_domains + 1, 0);
  // Even split, remainder spread over the leading domains.
  const std::uint32_t base = num_aps / num_domains;
  const std::uint32_t extra = num_aps % num_domains;
  for (std::uint32_t d = 0; d < num_domains; ++d) {
    first_ap_[d + 1] = first_ap_[d] + base + (d < extra ? 1 : 0);
  }
  domain_of_.assign(num_aps, 0);
  for (std::uint32_t d = 0; d < num_domains; ++d) {
    for (std::uint32_t a = first_ap_[d]; a < first_ap_[d + 1]; ++a) {
      domain_of_[a] = d;
    }
  }
}

void DomainMap::build(const SpatialIndex& index, std::uint32_t num_domains) {
  const auto num_aps = static_cast<std::uint32_t>(index.num_aps());
  const auto num_segments = static_cast<std::uint32_t>(index.num_segments());
  if (index.empty() || num_segments < num_domains) {
    build(num_aps, num_domains);
    return;
  }
  num_domains = std::min(num_domains, num_aps);
  // Per-segment AP counts; APs are sorted by x inside the index so a run of
  // whole segments is a contiguous run of AP indices.
  std::vector<std::uint32_t> seg_count(num_segments, 0);
  for (std::uint32_t a = 0; a < num_aps; ++a) {
    ++seg_count[static_cast<std::uint32_t>(
        index.segment_of_ap(static_cast<int>(a)))];
  }
  first_ap_.assign(num_domains + 1, 0);
  domain_of_.assign(num_aps, 0);
  // Greedy cut: close a domain once it holds >= its proportional share of
  // the remaining APs, leaving at least one segment per remaining domain.
  std::uint32_t d = 0;
  std::uint32_t placed = 0;
  std::uint32_t in_domain = 0;
  for (std::uint32_t s = 0; s < num_segments; ++s) {
    in_domain += seg_count[s];
    placed += seg_count[s];
    const std::uint32_t remaining_domains = num_domains - d - 1;
    const std::uint32_t remaining_segments = num_segments - s - 1;
    const std::uint32_t target =
        (num_aps - first_ap_[d] + remaining_domains) / (remaining_domains + 1);
    if (remaining_domains > 0 && in_domain >= target &&
        remaining_segments >= remaining_domains) {
      first_ap_[d + 1] = placed;
      ++d;
      in_domain = 0;
    }
  }
  for (; d < num_domains; ++d) first_ap_[d + 1] = num_aps;
  for (std::uint32_t dd = 0; dd < num_domains; ++dd) {
    for (std::uint32_t a = first_ap_[dd]; a < first_ap_[dd + 1]; ++a) {
      domain_of_[a] = dd;
    }
  }
}

std::vector<std::uint32_t> DomainMap::neighbors(std::uint32_t d) const {
  std::vector<std::uint32_t> out;
  if (d > 0) out.push_back(d - 1);
  if (d + 1 < num_domains()) out.push_back(d + 1);
  return out;
}

std::uint32_t DomainMap::nearest_alive(std::uint32_t dead,
                                       const std::vector<bool>& alive) const {
  const std::uint32_t n = num_domains();
  std::uint32_t best = n;
  std::uint32_t best_dist = n + 1;
  for (std::uint32_t d = 0; d < n; ++d) {
    if (d == dead || !alive[d]) continue;
    const std::uint32_t dist = d > dead ? d - dead : dead - d;
    if (dist < best_dist) {  // strict: ties keep the lower index
      best_dist = dist;
      best = d;
    }
  }
  return best;
}

}  // namespace wgtt::core
