// Per-(client, target-domain) penalty timers damping handover ping-pong at a
// domain boundary (osmo-bsc's penalty_timers.h is the production exemplar:
// after a handover to a target, further attempts toward that target are
// barred until the timer runs out). Expiry is lazy — entries are checked
// against `now` on lookup and swept opportunistically — so arming and
// querying never touch the scheduler.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/ids.h"
#include "util/units.h"

namespace wgtt::core {

class PenaltyTimers {
 public:
  /// Bar (client, domain) until `until`. Re-arming extends, never shortens.
  void arm(net::ClientId client, std::uint32_t domain, Time until) {
    Time& t = until_[key(client, domain)];
    if (until > t) t = until;
  }

  /// Is a handover of `client` toward `domain` currently barred?
  [[nodiscard]] bool barred(net::ClientId client, std::uint32_t domain,
                            Time now) const {
    const auto it = until_.find(key(client, domain));
    return it != until_.end() && now < it->second;
  }

  /// Remaining bar, zero when none. (Tick-exact: at `until` itself the bar
  /// has expired.)
  [[nodiscard]] Time remaining(net::ClientId client, std::uint32_t domain,
                                    Time now) const {
    const auto it = until_.find(key(client, domain));
    if (it == until_.end() || now >= it->second) return Time::zero();
    return it->second - now;
  }

  /// Drop every expired entry; call occasionally to bound the map.
  void sweep(Time now) {
    for (auto it = until_.begin(); it != until_.end();) {
      it = now >= it->second ? until_.erase(it) : std::next(it);
    }
  }

  [[nodiscard]] std::size_t size() const { return until_.size(); }

 private:
  [[nodiscard]] static std::uint64_t key(net::ClientId client,
                                         std::uint32_t domain) {
    return (static_cast<std::uint64_t>(net::index_of(client)) << 32) | domain;
  }

  std::unordered_map<std::uint64_t, Time> until_;
};

}  // namespace wgtt::core
