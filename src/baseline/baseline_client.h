// The mobile client of the Enhanced 802.11r baseline (paper §5.1), plus a
// "stock" 802.11r mode reproducing the paper's §2 motivation experiment.
//
// Enhanced mode (the paper's tuned comparison scheme):
//   (1) tracks per-AP RSSI from 100 ms beacons,
//   (2) re-associates to the strongest AP when the current AP's RSSI falls
//       below a threshold, with a 1 s time hysteresis,
//   (3) association requests may be relayed by any AP (state replication).
//
// Stock mode (the §2 Linksys experiment): the switching decision needs a
// 5 s RSSI history below threshold before it triggers — at 20 mph the
// client exits the cell before the history accumulates, and the handover
// never happens (Figure 4a).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mac/wifi_mac.h"
#include "mobility/trajectory.h"
#include "net/ids.h"
#include "net/packet.h"
#include "sim/scheduler.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/units.h"

namespace wgtt::baseline {

class BaselineClient {
 public:
  struct Config {
    mac::WifiMac::Config mac{};
    double rssi_threshold_dbm = -76.0;
    /// The paper's item (2) time hysteresis: the current AP's RSSI must
    /// have been below threshold for this long before the client moves
    /// (1 s enhanced; the stock §2 experiment uses a 5 s RSSI history).
    Time below_threshold_persistence = Time::sec(1);
    /// Minimum spacing between completed handovers (anti-ping-pong).
    Time min_switch_interval = Time::sec(1);
    double rssi_ewma_alpha = 0.4;
    Time assoc_retry_timeout = Time::ms(60);
    int assoc_max_retries = 5;
    Time evaluation_period = Time::ms(100);
    /// Beacon staleness horizon for considering an AP a candidate.
    Time beacon_staleness = Time::ms(600);
  };

  struct Stats {
    std::uint64_t handovers_attempted = 0;
    std::uint64_t handovers_completed = 0;
    std::uint64_t handovers_failed = 0;
    std::uint64_t assoc_req_sent = 0;
  };

  BaselineClient(net::ClientId id, sim::Scheduler& sched, mac::Medium& medium,
                 Rng rng, Config config, const mobility::Trajectory* trajectory);

  /// Uplink IP packet into the network (dropped if not associated).
  void send_uplink(net::Packet packet);

  /// Decoded downlink packets arrive here.
  std::function<void(const net::Packet&)> on_downlink;
  /// Fired when association moves to a new AP radio.
  std::function<void(mac::RadioId, Time)> on_associated;

  void start();

  [[nodiscard]] net::ClientId id() const { return id_; }
  [[nodiscard]] mac::WifiMac& mac() { return mac_; }
  [[nodiscard]] mac::RadioId radio() const { return radio_; }
  [[nodiscard]] std::optional<mac::RadioId> serving() const { return serving_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] channel::Vec2 position() const {
    return trajectory_->position(sched_.now());
  }

 private:
  struct ApRecord {
    Ewma rssi{0.4};
    Time last_beacon = Time::zero();
    Time below_threshold_since = Time::max();
    Time blacklist_until = Time::zero();
  };

  void on_heard(const mac::Frame& frame, bool decoded,
                const channel::CsiMeasurement& csi);
  void evaluate();
  void begin_association(mac::RadioId target);
  void send_assoc_req();
  void on_assoc_resp(mac::RadioId from);
  [[nodiscard]] std::optional<mac::RadioId> best_candidate() const;

  net::ClientId id_;
  sim::Scheduler& sched_;
  Config config_;
  const mobility::Trajectory* trajectory_;
  mac::WifiMac mac_;
  mac::RadioId radio_{};
  std::uint16_t next_ip_id_ = 1;

  std::unordered_map<mac::RadioId, ApRecord> aps_;
  std::optional<mac::RadioId> serving_;
  Time last_switch_ = Time::ms(-1'000'000);

  // In-progress association attempt.
  std::optional<mac::RadioId> assoc_target_;
  int assoc_tries_ = 0;
  std::unique_ptr<sim::Timer> assoc_timer_;
  std::unique_ptr<sim::Timer> eval_timer_;

  Stats stats_;
};

}  // namespace wgtt::baseline
