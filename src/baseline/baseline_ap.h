// A conventional enterprise Wi-Fi AP for the Enhanced 802.11r baseline
// (paper §5.1): its own BSSID, 100 ms beacons, association via management
// frames, and a deep per-client socket/driver buffer feeding the NIC queue.
//
// The "Enhanced" part (the paper's items (1)-(3)): association state is
// replicated through the distribution router so any AP can accept a
// re-association instantly, and APs relay overheard association requests to
// the target AP over the backhaul.
//
// What it deliberately lacks is WGTT's cross-AP queue management: when the
// client re-associates elsewhere, the backlog buffered here keeps being
// transmitted into a dying link until the retry limit discards it — the
// §2/§3 capacity-loss problem.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>

#include "mac/wifi_mac.h"
#include "net/backhaul.h"
#include "net/ids.h"
#include "net/messages.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace wgtt::baseline {

class BaselineAp {
 public:
  struct Config {
    mac::WifiMac::Config mac{};
    /// Socket + driver buffering above the NIC queue (the paper counts
    /// 1600-2000 backlogged packets at 50-90 Mbit/s across all layers).
    std::size_t socket_queue_capacity = 512;
    Time beacon_interval = Time::ms(100);
    Time pump_period = Time::ms(1);
  };

  struct Stats {
    std::uint64_t downlink_received = 0;
    std::uint64_t socket_drops = 0;
    std::uint64_t associations = 0;
    std::uint64_t relayed_assoc_reqs = 0;
  };

  BaselineAp(net::ApId id, sim::Scheduler& sched, mac::Medium& medium,
             net::Backhaul& backhaul, Rng rng, Config config,
             mac::Medium::PositionFn position);

  /// Pre-shares client identity (the paper's enhanced item (3)): the AP can
  /// accept this client instantly without an auth exchange.
  void learn_client(net::ClientId client, mac::RadioId radio);

  /// Radio -> AP directory for relaying overheard association requests.
  void set_ap_directory(
      std::function<std::optional<net::ApId>(mac::RadioId)> ap_of_radio);

  /// ViFi-style uplink salvaging (Balasubramanian et al., SIGCOMM 2008,
  /// cited in the paper's §6): when enabled, this AP forwards uplink data
  /// it overhears for *other* APs' clients to the router, which
  /// de-duplicates. Isolates the uplink-diversity ingredient of WGTT's
  /// design on top of an otherwise conventional handover network.
  void set_uplink_salvaging(bool enabled) { salvage_uplink_ = enabled; }

  [[nodiscard]] net::ApId id() const { return id_; }
  [[nodiscard]] mac::WifiMac& mac() { return mac_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool associated(net::ClientId client) const;
  [[nodiscard]] std::size_t backlog(net::ClientId client) const;

 private:
  struct ClientState {
    mac::RadioId radio{};
    bool associated = false;
    std::deque<net::Packet> socket_queue;
  };

  void handle_backhaul(net::NodeId from, net::BackhaulMessage msg);
  void handle_mgmt(mac::RadioId from, mac::MgmtFrame frame);
  void on_heard(const mac::Frame& frame, bool decoded,
                const channel::CsiMeasurement& csi);
  void accept_association(net::ClientId client);
  void pump(ClientState& cs);
  void pump_all();

  net::ApId id_;
  sim::Scheduler& sched_;
  net::Backhaul& backhaul_;
  Rng rng_;
  Config config_;
  mac::WifiMac mac_;
  bool salvage_uplink_ = false;
  std::function<std::optional<net::ApId>(mac::RadioId)> ap_of_radio_;
  std::unordered_map<net::ClientId, ClientState> clients_;
  std::unordered_map<mac::RadioId, net::ClientId> client_of_radio_;
  Stats stats_;
  std::unique_ptr<sim::Timer> pump_timer_;
};

}  // namespace wgtt::baseline
