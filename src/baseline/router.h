// The baseline network's distribution system: a thin WLAN router that
// forwards each client's downlink traffic to the AP the client is currently
// associated with (learned from AssocSync), and passes uplink packets to
// the server side. It occupies the controller's backhaul address — in the
// baseline there is no WGTT controller, just ordinary switching.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/backhaul.h"
#include "net/ids.h"
#include "net/messages.h"
#include "sim/scheduler.h"

namespace wgtt::baseline {

class Router {
 public:
  struct Stats {
    std::uint64_t downlink_packets = 0;
    std::uint64_t downlink_dropped_unassociated = 0;
    std::uint64_t uplink_packets = 0;
    std::uint64_t uplink_duplicates_dropped = 0;
    std::uint64_t association_moves = 0;
  };

  Router(sim::Scheduler& sched, net::Backhaul& backhaul);

  void add_ap(net::ApId ap);
  void add_client(net::ClientId client);

  /// Downlink entry point from the server side.
  void send_downlink(net::Packet packet);

  /// Uplink exit toward the server side.
  std::function<void(const net::Packet&)> on_uplink;
  /// Association change observation hook (for the association timelines).
  std::function<void(net::ClientId, net::ApId, Time)> on_association;

  [[nodiscard]] std::optional<net::ApId> associated_ap(net::ClientId c) const;
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<net::ApId>& aps() const { return aps_; }

 private:
  void handle_backhaul(net::NodeId from, net::BackhaulMessage msg);

  [[nodiscard]] bool dedup_accept(const net::Packet& p);

  sim::Scheduler& sched_;
  net::Backhaul& backhaul_;
  std::vector<net::ApId> aps_;
  std::unordered_map<net::ClientId, net::ApId> assoc_;
  // Bounded de-dup set, needed once ViFi-style salvaging fans uplink
  // packets in through several APs.
  std::unordered_set<std::uint64_t> dedup_set_;
  std::deque<std::uint64_t> dedup_fifo_;
  Stats stats_;
};

}  // namespace wgtt::baseline
