#include "baseline/baseline_ap.h"

#include "phy/rate_control.h"

namespace wgtt::baseline {

using net::BackhaulMessage;
using net::NodeId;

BaselineAp::BaselineAp(net::ApId id, sim::Scheduler& sched,
                       mac::Medium& medium, net::Backhaul& backhaul, Rng rng,
                       Config config, mac::Medium::PositionFn position)
    : id_(id),
      sched_(sched),
      backhaul_(backhaul),
      rng_(rng),
      config_(config),
      mac_(sched, medium, rng_.fork(), config_.mac) {
  mac_.attach(std::move(position));
  mac_.enable_beacons(config_.beacon_interval);
  mac_.on_deliver = [this](mac::RadioId from, const net::Packet& pkt) {
    auto it = client_of_radio_.find(from);
    if (it == client_of_radio_.end()) return;
    backhaul_.send(NodeId::ap(id_), NodeId::controller(),
                   net::UplinkData{id_, pkt});
  };
  mac_.on_mgmt = [this](mac::RadioId from, mac::MgmtFrame f) {
    handle_mgmt(from, f);
  };
  mac_.on_heard = [this](const mac::Frame& f, bool decoded,
                         const channel::CsiMeasurement& csi) {
    on_heard(f, decoded, csi);
  };
  mac_.on_mpdu_acked = [this](mac::RadioId peer, std::uint16_t,
                              const net::Packet&) {
    auto it = client_of_radio_.find(peer);
    if (it == client_of_radio_.end()) return;
    auto cs = clients_.find(it->second);
    if (cs != clients_.end()) pump(cs->second);
  };
  backhaul_.attach(NodeId::ap(id_), [this](NodeId from, BackhaulMessage msg) {
    handle_backhaul(from, std::move(msg));
  });
  pump_timer_ = std::make_unique<sim::Timer>(sched_, [this] {
    pump_all();
    pump_timer_->start(config_.pump_period);
  });
  pump_timer_->start(config_.pump_period);
}

void BaselineAp::learn_client(net::ClientId client, mac::RadioId radio) {
  if (clients_.contains(client)) return;
  ClientState cs;
  cs.radio = radio;
  clients_.emplace(client, std::move(cs));
  client_of_radio_[radio] = client;
}

bool BaselineAp::associated(net::ClientId client) const {
  auto it = clients_.find(client);
  return it != clients_.end() && it->second.associated;
}

std::size_t BaselineAp::backlog(net::ClientId client) const {
  auto it = clients_.find(client);
  if (it == clients_.end()) return 0;
  return it->second.socket_queue.size() + mac_.queue_depth(it->second.radio);
}

void BaselineAp::handle_backhaul(NodeId /*from*/, BackhaulMessage msg) {
  std::visit(
      [this](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, net::DownlinkData>) {
          auto it = clients_.find(m.packet.client);
          if (it == clients_.end()) return;
          ++stats_.downlink_received;
          ClientState& cs = it->second;
          if (cs.socket_queue.size() >= config_.socket_queue_capacity) {
            ++stats_.socket_drops;
            return;
          }
          cs.socket_queue.push_back(std::move(m.packet));
          if (cs.associated) pump(cs);
        } else if constexpr (std::is_same_v<T, net::AssocSync>) {
          // Another AP took this client (or a relayed assoc request).
          auto it = clients_.find(m.client);
          if (it == clients_.end()) return;
          if (m.from_ap == id_) {
            // Relayed association request for us: accept it.
            accept_association(m.client);
          } else if (it->second.associated) {
            // Client moved elsewhere; stop treating it as ours. The backlog
            // already in the NIC queue keeps draining into the old link —
            // exactly the behaviour WGTT's switching protocol eliminates.
            it->second.associated = false;
          }
        }
      },
      std::move(msg));
}

void BaselineAp::accept_association(net::ClientId client) {
  auto it = clients_.find(client);
  if (it == clients_.end()) return;
  ClientState& cs = it->second;
  if (!mac_.has_peer(cs.radio)) {
    mac_.add_peer(cs.radio);
    mac_.set_rate_controller(
        cs.radio, std::make_unique<phy::MinstrelLite>(
                      phy::MinstrelLite::Config{}, rng_.fork()));
  }
  if (!cs.associated) {
    cs.associated = true;
    ++stats_.associations;
  }
  // Reply over the air and tell the distribution router.
  mac_.send_mgmt(cs.radio, mac::MgmtFrame{mac::MgmtFrame::Kind::kAssocResp});
  backhaul_.send(NodeId::ap(id_), NodeId::controller(),
                 net::AssocSync{client, id_});
  pump(cs);
}

void BaselineAp::handle_mgmt(mac::RadioId from, mac::MgmtFrame frame) {
  if (frame.kind != mac::MgmtFrame::Kind::kAssocReq) return;
  auto it = client_of_radio_.find(from);
  if (it == client_of_radio_.end()) return;
  accept_association(it->second);
}

void BaselineAp::set_ap_directory(
    std::function<std::optional<net::ApId>(mac::RadioId)> ap_of_radio) {
  ap_of_radio_ = std::move(ap_of_radio);
}

void BaselineAp::on_heard(const mac::Frame& frame, bool decoded,
                          const channel::CsiMeasurement& /*csi*/) {
  if (!decoded) return;
  // ViFi-style salvage: overheard uplink data for another AP's client is
  // tunnelled to the router, which de-duplicates.
  if (salvage_uplink_ && frame.to != mac_.radio()) {
    if (const auto* df = std::get_if<mac::DataFrame>(&frame.body)) {
      auto it = client_of_radio_.find(frame.from);
      if (it != client_of_radio_.end()) {
        for (const auto& m : df->mpdus) {
          if (!m.packet.downlink) {
            backhaul_.send(net::NodeId::ap(id_), net::NodeId::controller(),
                           net::UplinkData{id_, m.packet});
          }
        }
      }
    }
  }
  // Enhanced item (3): relay an overheard association request to its target
  // AP through the backhaul. An AssocSync whose from_ap equals the receiving
  // AP's own id is interpreted there as "this client is asking for you".
  const auto* mf = std::get_if<mac::MgmtFrame>(&frame.body);
  if (mf == nullptr || mf->kind != mac::MgmtFrame::Kind::kAssocReq) return;
  if (frame.to == mac_.radio()) return;  // our own; handled via on_mgmt
  auto it = client_of_radio_.find(frame.from);
  if (it == client_of_radio_.end() || ap_of_radio_ == nullptr) return;
  const std::optional<net::ApId> target = ap_of_radio_(frame.to);
  if (!target || *target == id_) return;
  ++stats_.relayed_assoc_reqs;
  backhaul_.send(NodeId::ap(id_), NodeId::ap(*target),
                 net::AssocSync{it->second, *target});
}

void BaselineAp::pump(ClientState& cs) {
  if (!cs.associated) return;
  while (!cs.socket_queue.empty() &&
         mac_.queue_depth(cs.radio) < config_.mac.hw_queue_capacity) {
    mac_.enqueue(cs.radio, std::move(cs.socket_queue.front()));
    cs.socket_queue.pop_front();
  }
}

void BaselineAp::pump_all() {
  for (auto& [id, cs] : clients_) {
    if (cs.associated) pump(cs);
  }
}

}  // namespace wgtt::baseline
