#include "baseline/baseline_client.h"

#include "phy/rate_control.h"

namespace wgtt::baseline {

BaselineClient::BaselineClient(net::ClientId id, sim::Scheduler& sched,
                               mac::Medium& medium, Rng rng, Config config,
                               const mobility::Trajectory* trajectory)
    : id_(id),
      sched_(sched),
      config_(config),
      trajectory_(trajectory),
      mac_(sched, medium, rng.fork(), config.mac) {
  radio_ = mac_.attach([this] { return trajectory_->position(sched_.now()); });
  mac_.on_deliver = [this](mac::RadioId, const net::Packet& p) {
    if (on_downlink) on_downlink(p);
  };
  mac_.on_heard = [this](const mac::Frame& f, bool decoded,
                         const channel::CsiMeasurement& csi) {
    on_heard(f, decoded, csi);
  };
  mac_.on_mgmt = [this](mac::RadioId from, mac::MgmtFrame f) {
    if (f.kind == mac::MgmtFrame::Kind::kAssocResp) on_assoc_resp(from);
  };
  assoc_timer_ = std::make_unique<sim::Timer>(sched_, [this] {
    if (!assoc_target_) return;
    if (assoc_tries_ >= config_.assoc_max_retries) {
      // Handover failed (the Figure 4a outcome at speed): blacklist the
      // target briefly and fall back to scanning.
      ++stats_.handovers_failed;
      aps_[*assoc_target_].blacklist_until = sched_.now() + Time::ms(500);
      assoc_target_.reset();
      return;
    }
    send_assoc_req();
  });
  eval_timer_ = std::make_unique<sim::Timer>(sched_, [this] {
    evaluate();
    eval_timer_->start(config_.evaluation_period);
  });
}

void BaselineClient::start() { eval_timer_->start(config_.evaluation_period); }

void BaselineClient::send_uplink(net::Packet packet) {
  if (!serving_) return;  // no association, no uplink (packet lost)
  packet.client = id_;
  packet.downlink = false;
  packet.ip_id = next_ip_id_++;
  if (packet.created == Time::zero()) packet.created = sched_.now();
  mac_.enqueue(*serving_, std::move(packet));
}

void BaselineClient::on_heard(const mac::Frame& frame, bool decoded,
                              const channel::CsiMeasurement& csi) {
  if (!decoded) return;
  if (!std::holds_alternative<mac::BeaconFrame>(frame.body)) return;
  auto [it, inserted] =
      aps_.try_emplace(frame.from, ApRecord{Ewma{config_.rssi_ewma_alpha},
                                            Time::zero(), Time::max(),
                                            Time::zero()});
  ApRecord& rec = it->second;
  rec.rssi.add(csi.rssi_dbm);
  rec.last_beacon = sched_.now();
  // Track how long this AP has been below the switching threshold (stock
  // 802.11r's slow decision history).
  if (rec.rssi.value() < config_.rssi_threshold_dbm) {
    if (rec.below_threshold_since == Time::max()) {
      rec.below_threshold_since = sched_.now();
    }
  } else {
    rec.below_threshold_since = Time::max();
  }
}

std::optional<mac::RadioId> BaselineClient::best_candidate() const {
  std::optional<mac::RadioId> best;
  double best_rssi = -1e9;
  const Time now = sched_.now();
  for (const auto& [radio, rec] : aps_) {
    if (now - rec.last_beacon > config_.beacon_staleness) continue;
    if (rec.blacklist_until > now) continue;
    if (!rec.rssi.initialized()) continue;
    if (rec.rssi.value() > best_rssi) {
      best_rssi = rec.rssi.value();
      best = radio;
    }
  }
  return best;
}

void BaselineClient::evaluate() {
  if (assoc_target_) return;  // association attempt in flight

  const auto best = best_candidate();
  if (!best) return;

  if (!serving_) {
    begin_association(*best);
    return;
  }
  if (*best == *serving_) return;
  if (sched_.now() - last_switch_ < config_.min_switch_interval) return;

  const auto cur = aps_.find(*serving_);
  if (cur == aps_.end()) return;

  // The current AP's RSSI must have been below threshold for the whole
  // hysteresis window (or its beacons must have vanished entirely) before
  // the client decides to move — the paper's item (2).
  const bool beacons_gone =
      sched_.now() - cur->second.last_beacon > config_.beacon_staleness;
  if (!beacons_gone) {
    if (cur->second.below_threshold_since == Time::max()) return;
    if (sched_.now() - cur->second.below_threshold_since <
        config_.below_threshold_persistence) {
      return;
    }
  }
  begin_association(*best);
}

void BaselineClient::begin_association(mac::RadioId target) {
  assoc_target_ = target;
  assoc_tries_ = 0;
  ++stats_.handovers_attempted;
  send_assoc_req();
}

void BaselineClient::send_assoc_req() {
  if (!assoc_target_) return;
  ++assoc_tries_;
  ++stats_.assoc_req_sent;
  mac_.send_mgmt(*assoc_target_, mac::MgmtFrame{mac::MgmtFrame::Kind::kAssocReq});
  assoc_timer_->start(config_.assoc_retry_timeout);
}

void BaselineClient::on_assoc_resp(mac::RadioId from) {
  if (!assoc_target_ || from != *assoc_target_) return;
  assoc_timer_->cancel();
  assoc_target_.reset();
  // Make-before-break: the old association simply lapses.
  if (serving_ && *serving_ != from) {
    mac_.flush_peer(*serving_);
    mac_.remove_peer(*serving_);
  }
  if (!mac_.has_peer(from)) {
    mac_.add_peer(from);
    mac_.set_rate_controller(from, std::make_unique<phy::MinstrelLite>(
                                       phy::MinstrelLite::Config{},
                                       Rng{static_cast<std::uint64_t>(
                                           sched_.now().count_ns() + 17)}));
  }
  serving_ = from;
  last_switch_ = sched_.now();
  ++stats_.handovers_completed;
  if (on_associated) on_associated(from, sched_.now());
}

}  // namespace wgtt::baseline
