#include "baseline/router.h"

#include <algorithm>

namespace wgtt::baseline {

using net::BackhaulMessage;
using net::NodeId;

Router::Router(sim::Scheduler& sched, net::Backhaul& backhaul)
    : sched_(sched), backhaul_(backhaul) {
  backhaul_.attach(NodeId::controller(),
                   [this](NodeId from, BackhaulMessage msg) {
                     handle_backhaul(from, std::move(msg));
                   });
}

void Router::add_ap(net::ApId ap) {
  if (std::find(aps_.begin(), aps_.end(), ap) == aps_.end()) aps_.push_back(ap);
}

void Router::add_client(net::ClientId /*client*/) {}

void Router::send_downlink(net::Packet packet) {
  ++stats_.downlink_packets;
  auto it = assoc_.find(packet.client);
  if (it == assoc_.end()) {
    ++stats_.downlink_dropped_unassociated;
    return;
  }
  backhaul_.send(NodeId::controller(), NodeId::ap(it->second),
                 net::DownlinkData{std::move(packet), 0});
}

void Router::handle_backhaul(NodeId /*from*/, BackhaulMessage msg) {
  std::visit(
      [this](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, net::UplinkData>) {
          ++stats_.uplink_packets;
          if (!dedup_accept(m.packet)) {
            ++stats_.uplink_duplicates_dropped;
            return;
          }
          if (on_uplink) on_uplink(m.packet);
        } else if constexpr (std::is_same_v<T, net::AssocSync>) {
          // An AP reports the client associated with it. Tell the previous
          // AP it lost the client (it stops pumping fresh packets; its
          // queued backlog keeps draining — the baseline's flaw).
          auto it = assoc_.find(m.client);
          const bool moved = it == assoc_.end() || it->second != m.from_ap;
          if (!moved) return;
          if (it != assoc_.end()) {
            backhaul_.send(NodeId::controller(), NodeId::ap(it->second),
                           net::AssocSync{m.client, m.from_ap});
          }
          assoc_[m.client] = m.from_ap;
          ++stats_.association_moves;
          if (on_association) on_association(m.client, m.from_ap, sched_.now());
        }
      },
      std::move(msg));
}

bool Router::dedup_accept(const net::Packet& p) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(net::index_of(p.client)) << 16) | p.ip_id;
  if (dedup_set_.contains(key)) return false;
  dedup_set_.insert(key);
  dedup_fifo_.push_back(key);
  if (dedup_fifo_.size() > (1u << 16)) {
    dedup_set_.erase(dedup_fifo_.front());
    dedup_fifo_.pop_front();
  }
  return true;
}

std::optional<net::ApId> Router::associated_ap(net::ClientId c) const {
  auto it = assoc_.find(c);
  return it == assoc_.end() ? std::nullopt : std::make_optional(it->second);
}

}  // namespace wgtt::baseline
