// Controller<->AP backhaul protocol messages (paper §3).
//
// Everything the WGTT control and data planes exchange over Ethernet is one
// of these message types. Sizes are modelled so backhaul serialization time
// is accounted for.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "channel/link_channel.h"
#include "net/ids.h"
#include "net/packet.h"
#include "net/packet_pool.h"

namespace wgtt::net {

/// Controller -> AP: a downlink data packet, tunnelled, carrying the
/// client's 12-bit index number for the cyclic queue (§3.1.2).
///
/// Two payload representations (DESIGN.md §10). Legacy: the Packet rides in
/// `packet` by value, copied once per fan-out target. Pooled: the payload
/// lives once in the system-wide PacketPool and `handle` carries one
/// reference to it — the message body is then 4 bytes of handle plus the
/// cached wire size (`tunnel_bytes`, so backhaul latency accounting never
/// needs the pool). Whoever destroys a pooled message without delivering it
/// must drop its reference.
struct DownlinkData {
  Packet packet;
  std::uint16_t index = 0;  // m = 12-bit index number
  PacketPool::Handle handle = PacketPool::kNullHandle;
  std::uint32_t tunnel_bytes = 0;  // wire size when pooled

  [[nodiscard]] bool pooled() const { return handle != PacketPool::kNullHandle; }
};

/// AP -> controller: an overheard uplink packet, tunnelled with the AP's
/// addresses so the controller knows the receiving AP (§3.2.2).
struct UplinkData {
  ApId from_ap{};
  Packet packet;
};

/// AP -> controller: CSI of one received uplink frame (§3.1.1); the
/// controller computes ESNR from this.
struct CsiReport {
  ApId from_ap{};
  ClientId client{};
  channel::CsiMeasurement measurement;
};

/// Controller -> old AP: cease sending to client c; tells it who the new
/// serving AP is (step 1 of the switching protocol).
///
/// `epoch` is a per-client monotonically increasing switch counter minted by
/// the controller at initiation and carried through the whole stop -> start
/// -> ack chain. It is what makes the handshake idempotent on a lossy
/// backhaul: an AP that already answered epoch e replays its recorded answer
/// on a retransmit (same epoch) and discards anything from an older epoch,
/// and the controller only completes a switch on the ack whose epoch matches
/// the switch it actually has outstanding.
struct StopMsg {
  ClientId client{};
  ApId new_ap{};
  std::uint32_t epoch = 0;
};

/// Old AP -> new AP: first unsent index k for client c (step 2). Also sent
/// controller -> first AP at bootstrap, with the fan-out index captured at
/// initiation.
struct StartMsg {
  ClientId client{};
  ApId from_ap{};
  std::uint16_t first_unsent_index = 0;
  std::uint32_t epoch = 0;
};

/// New AP -> controller: switch complete (step 3). Echoes the epoch of the
/// start it answers.
struct SwitchAck {
  ClientId client{};
  ApId from_ap{};
  std::uint32_t epoch = 0;
  // Set when a controller relays an ack that reached it for a client another
  // domain owns (the AP is homed here but the switch was driven elsewhere).
  // Relayed acks are never re-forwarded. Bookkeeping only, not wire bytes.
  bool relayed = false;
};

/// Overhearing AP -> serving AP: a block ACK heard in monitor mode
/// (§3.2.1): client address, starting sequence number, and the bitmap.
struct BlockAckForward {
  ClientId client{};
  ApId from_ap{};
  std::uint16_t start_seq = 0;
  std::uint64_t bitmap = 0;
  std::uint64_t ba_uid = 0;  // identity of the over-the-air BA frame, for
                             // duplicate suppression at the serving AP
};

/// First-associating AP -> all others: replicated association state
/// (paper §4.3, the hostapd sta_info transfer).
struct AssocSync {
  ClientId client{};
  ApId from_ap{};
};

/// Controller -> AP: liveness probe. `seq` is a per-AP monotonically
/// increasing counter; the AP echoes it in a HeartbeatAck so the controller
/// can both detect misses and measure backhaul round-trip time.
struct Heartbeat {
  std::uint32_t seq = 0;
};

/// AP -> controller: heartbeat echo. Answered immediately on receipt (no
/// processing-queue delay) so the RTT sample measures the backhaul path.
struct HeartbeatAck {
  ApId from_ap{};
  std::uint32_t seq = 0;
};

// --- inter-controller (multi-domain) messages (DESIGN.md §12) ---------------

/// Non-owner controller -> believed owner: a CSI report that arrived at a
/// foreign domain's AP. Forwarded exactly once (the receiver never
/// re-forwards) so routing loops cannot form while ownership is in motion.
struct CsiForward {
  std::uint32_t src_domain = 0;
  CsiReport report;
};

/// Non-owner controller -> believed owner: an uplink data packet overheard
/// by a foreign domain's AP.
struct UplinkForward {
  std::uint32_t src_domain = 0;
  UplinkData data;
};

/// Non-owner controller -> believed owner: a downlink packet that the server
/// handed to the wrong domain while ownership was in motion.
struct DownlinkForward {
  std::uint32_t src_domain = 0;
  Packet packet;
};

/// Source domain -> target domain: the inter-domain handover state transfer
/// (step 1). Carries everything the target needs to continue the client's
/// downlink stream without a 12-bit index regression: the client's switch
/// epoch, the controller watermark (`next_index`, pre-rewound by the
/// configured replay margin), and a seed of the uplink dedup ring so
/// in-flight duplicates don't leak through right after the switch.
/// `seq` makes retransmits idempotent at the target.
struct HandoverRequest {
  ClientId client{};
  std::uint32_t src_domain = 0;
  ApId target_ap{};
  std::uint32_t epoch = 0;
  std::uint16_t next_index = 0;
  std::uint64_t downlink_sent = 0;
  std::vector<std::uint32_t> dedup_seed;
  std::uint32_t seq = 0;
};

/// Target domain -> source domain: handover accepted/refused (step 2).
/// Echoes `seq` so the source can match it to the request it has
/// outstanding; `epoch` is the (higher) epoch the target minted.
struct HandoverAck {
  ClientId client{};
  std::uint32_t from_domain = 0;
  bool accepted = false;
  std::uint32_t seq = 0;
  std::uint32_t epoch = 0;
};

/// Controller -> peer controller: liveness probe, the PR-5 heartbeat
/// machinery reused controller-to-controller.
struct DomainHeartbeat {
  std::uint32_t src_domain = 0;
  std::uint32_t seq = 0;
};

/// Peer controller -> controller: heartbeat echo, answered immediately.
struct DomainHeartbeatAck {
  std::uint32_t src_domain = 0;
  std::uint32_t seq = 0;
};

/// Controller -> neighbor controllers: periodic ownership gossip. Each entry
/// names a client this domain believes it owns plus the client's current
/// epoch and watermark, so a neighbor that must adopt the client after a
/// crash can bootstrap from the last-gossiped state, and so split-brain
/// after a lossy handover resolves by yielding to the higher epoch.
struct DomainSync {
  struct Entry {
    ClientId client{};
    /// The domain claiming ownership. Usually the sender itself; an entry
    /// with owner != src_domain is a RELAY — the sender republishing its
    /// last record of a now-dead owner, so the dead domain's adopter
    /// learns of clients whose ownership transfer it never observed.
    /// Relayed entries update belief but never trigger ownership yields.
    std::uint32_t owner = 0;
    std::uint32_t epoch = 0;
    std::uint16_t next_index = 0;
    std::uint64_t downlink_sent = 0;
    /// The AP currently draining this client, if any. A crash adopter keeps
    /// that data plane running instead of force-bootstrapping next to it —
    /// without this the dead domain's AP would keep serving forever.
    bool has_serving = false;
    ApId serving{};
  };
  std::uint32_t src_domain = 0;
  std::vector<Entry> entries;
};

/// Adopting controller -> AP: re-home the AP to a new controller domain. The
/// AP re-points its uplink/CSI/ack destination at the new domain's address.
struct AdoptAp {
  std::uint32_t new_domain = 0;
};

using BackhaulMessage =
    std::variant<DownlinkData, UplinkData, CsiReport, StopMsg, StartMsg,
                 SwitchAck, BlockAckForward, AssocSync, Heartbeat,
                 HeartbeatAck, CsiForward, UplinkForward, DownlinkForward,
                 HandoverRequest, HandoverAck, DomainHeartbeat,
                 DomainHeartbeatAck, DomainSync, AdoptAp>;

/// Message-type tag, in variant-alternative order; keys the backhaul's
/// per-type fault-injection plans.
enum class MsgKind : std::uint8_t {
  kDownlinkData,
  kUplinkData,
  kCsiReport,
  kStop,
  kStart,
  kSwitchAck,
  kBlockAckForward,
  kAssocSync,
  kHeartbeat,
  kHeartbeatAck,
  kCsiForward,
  kUplinkForward,
  kDownlinkForward,
  kHandoverRequest,
  kHandoverAck,
  kDomainHeartbeat,
  kDomainHeartbeatAck,
  kDomainSync,
  kAdoptAp,
};
inline constexpr std::size_t kNumMsgKinds = 19;

[[nodiscard]] MsgKind kind_of(const BackhaulMessage& msg);

/// Serialized size on the backhaul wire, for latency accounting.
[[nodiscard]] std::size_t wire_bytes(const BackhaulMessage& msg);

/// Control messages (stop/start/ack) bypass data queues in the AP
/// (paper §3.1.2: "incoming control packets are prioritized").
[[nodiscard]] bool is_control(const BackhaulMessage& msg);

}  // namespace wgtt::net
