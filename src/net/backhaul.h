// Simulated switched-Ethernet backhaul connecting the controller and APs.
//
// Unicast store-and-forward through one switch: per-message latency =
// serialization at line rate + switch forwarding overhead (+ optional
// jitter). The backhaul is reliable but can be configured with a loss rate
// to exercise the switching protocol's 30 ms retransmission timeout.
#pragma once

#include <functional>
#include <unordered_map>

#include "net/messages.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace wgtt::net {

class Backhaul {
 public:
  struct Config {
    double line_rate_mbps = 1000.0;     // GigE
    Time switch_overhead = Time::us(30);  // forwarding + host stack
    Time jitter_max = Time::us(20);
    double loss_rate = 0.0;             // control-plane loss injection
  };

  using Handler = std::function<void(NodeId from, BackhaulMessage msg)>;

  Backhaul(sim::Scheduler& sched, const Config& config, Rng rng);

  /// Registers the message handler for `node`. Re-registering replaces.
  void attach(NodeId node, Handler handler);

  /// Sends `msg` from `from` to `to`; delivery is scheduled on the
  /// simulator. Sending to an unattached node is an error.
  void send(NodeId from, NodeId to, BackhaulMessage msg);

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }

 private:
  sim::Scheduler& sched_;
  Config config_;
  Rng rng_;
  std::unordered_map<NodeId, Handler> handlers_;
  // FIFO discipline per (src, dst): a switched-Ethernet path never reorders
  // packets of one flow, and the WGTT index stream depends on that.
  std::unordered_map<std::uint64_t, Time> last_delivery_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace wgtt::net
