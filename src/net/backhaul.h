// Simulated switched-Ethernet backhaul connecting the controller and APs.
//
// Unicast store-and-forward through one switch: per-message latency =
// serialization at line rate + switch forwarding overhead (+ optional
// jitter). The backhaul is reliable by default but carries two layers of
// fault injection to exercise the switching protocol's 30 ms retransmission
// timeout: a uniform `loss_rate` over all messages, and per-message-type
// FaultPlans (loss, extra delay, duplication, deterministic first-N drops).
// Faults preserve the per-(src,dst) FIFO discipline — a delayed message
// holds back the rest of its flow, and a duplicate arrives after the
// original — because a switched-Ethernet path never reorders a flow and the
// WGTT index stream depends on that. The one deliberate exception is
// FaultPlan::reorder_rate, which models a misbehaving switch by letting a
// message escape the FIFO clamp. Whole-node faults (AP crash, partition)
// are modelled by taking a node's link down via set_node_up().
//
// Two opt-in extensions (DESIGN.md §10), both off by default so seeded runs
// stay byte-identical to the infinite-pipe engine:
//
//  * Per-link bandwidth/queue model (`link_rate_mbps` > 0): each directed
//    (src, dst) link is a FIFO serializer at the configured rate with a
//    bounded byte queue. Backlog is tracked analytically as a busy-until
//    virtual clock — no extra scheduler events — and a message that would
//    push the queued bytes past `link_queue_bytes` is dropped at send time
//    (counted in queue_drops()).
//
//  * Fan-out batching (`batching`): unfaulted DownlinkData messages on one
//    link coalesce into an open batch that flushes after `batch_window`,
//    at `batch_max_msgs`, or immediately when any other traffic hits the
//    link (so control messages can never overtake queued data of the same
//    flow). A flushed batch is ONE delivery event invoking the receiver
//    once per message in send order — event count stops scaling with
//    fan-out width x packet rate. Delay-, reorder- or dup-faulted messages
//    flush the open batch and take the per-message path, so fault
//    semantics (and the per-flow FIFO, reorder excepted) are preserved.
//
// Payload pooling: when a PacketPool is wired via set_payload_pool, pooled
// DownlinkData messages carry a refcounted handle instead of a Packet, and
// every path that destroys a message without delivering it (loss, queue
// bound, downed link, missing handler) drops its reference; duplication
// adds one.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/messages.h"
#include "net/packet_pool.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace wgtt::net {

/// Fault injection for one message type. Faults are drawn independently per
/// send; RNG draws happen only for nonzero knobs, so an all-zero plan leaves
/// seeded runs bit-identical to a fault-free backhaul.
struct FaultPlan {
  double loss_rate = 0.0;   // drop probability
  double dup_rate = 0.0;    // probability of delivering a second copy
  double delay_rate = 0.0;  // probability of adding extra delay
  Time delay_max = Time::zero();  // extra delay ~ U[0, delay_max)
  /// Deterministically drop the first N matching sends (then behave
  /// normally). The surgical knob regression tests use to lose exactly one
  /// control message.
  int drop_first = 0;
  /// Opt-in reordering: with this probability the message takes an extra
  /// U[0, reorder_max) delay AND bypasses the per-flow FIFO clamp, so
  /// later sends on the same flow can overtake it. Off by default — a
  /// healthy switched-Ethernet path never reorders a flow — but a
  /// misbehaving switch or a routing flap can, and the epoch guards must
  /// survive that.
  double reorder_rate = 0.0;
  Time reorder_max = Time::zero();
};

class Backhaul {
 public:
  struct Config {
    double line_rate_mbps = 1000.0;     // GigE
    Time switch_overhead = Time::us(30);  // forwarding + host stack
    Time jitter_max = Time::us(20);
    double loss_rate = 0.0;             // uniform loss over all messages
    /// Per-message-type fault plans, indexed by MsgKind.
    std::array<FaultPlan, kNumMsgKinds> faults{};

    // --- Per-link bandwidth/queue model (DESIGN.md §10) ---
    /// Rate of each directed (src, dst) link. 0 (the default) = the legacy
    /// infinite pipe: serialization at line_rate_mbps, no queueing, no
    /// drops — byte-identical to the pre-model engine.
    double link_rate_mbps = 0.0;
    /// Byte bound of each link's send queue; a message that would push the
    /// analytically-tracked backlog past this is dropped at send time.
    /// Read only when link_rate_mbps > 0.
    std::size_t link_queue_bytes = 256 * 1024;

    // --- Fan-out batching (DESIGN.md §10) ---
    /// Coalesce unfaulted DownlinkData per link into single delivery
    /// events. Off by default (byte-identity).
    bool batching = false;
    /// How long an open batch may wait for more traffic before flushing.
    Time batch_window = Time::us(500);
    /// Flush as soon as a batch holds this many messages.
    std::size_t batch_max_msgs = 32;

    [[nodiscard]] FaultPlan& fault(MsgKind kind) {
      return faults[static_cast<std::size_t>(kind)];
    }
    [[nodiscard]] const FaultPlan& fault(MsgKind kind) const {
      return faults[static_cast<std::size_t>(kind)];
    }
  };

  using Handler = std::function<void(NodeId from, BackhaulMessage msg)>;

  Backhaul(sim::Scheduler& sched, const Config& config, Rng rng);

  /// Registers the message handler for `node`. Re-registering replaces.
  void attach(NodeId node, Handler handler);

  /// Wires the pool behind pooled DownlinkData payloads, so drop paths can
  /// release references and duplication can add them. The pool must outlive
  /// the backhaul's last delivery. nullptr detaches (the default: all
  /// messages carry payloads by value).
  void set_payload_pool(PacketPool* pool) { payload_pool_ = pool; }

  /// Sends `msg` from `from` to `to`; delivery is scheduled on the
  /// simulator. Sending to an unattached node is an error.
  void send(NodeId from, NodeId to, BackhaulMessage msg);

  /// Marks a node's backhaul link up or down (all links start up). While
  /// down, sends from or to the node are dropped at send time, and messages
  /// already in flight toward it are dropped at delivery time — a cable cut
  /// loses what is on the wire. A pure map lookup: taking links down and up
  /// never consumes RNG draws, so fault-free runs stay bit-identical.
  void set_node_up(NodeId node, bool up);
  [[nodiscard]] bool node_up(NodeId node) const {
    return !down_nodes_.contains(node);
  }

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t messages_duplicated() const { return duplicated_; }
  [[nodiscard]] std::uint64_t messages_delayed() const { return delayed_; }
  /// Drops attributable to a FaultPlan (excluded from the uniform
  /// `loss_rate` drops, which `messages_dropped` also counts).
  [[nodiscard]] std::uint64_t fault_dropped() const { return fault_dropped_; }
  /// Drops attributable to a downed link (send-time and in-flight).
  [[nodiscard]] std::uint64_t link_dropped() const { return link_dropped_; }
  /// Messages that bypassed the FIFO clamp via FaultPlan::reorder_rate.
  [[nodiscard]] std::uint64_t messages_reordered() const { return reordered_; }
  /// Drops by the per-link byte-queue bound (link model only); also counted
  /// in messages_dropped.
  [[nodiscard]] std::uint64_t queue_drops() const { return queue_drops_; }
  /// Batches flushed / messages that rode in a batch (batching only).
  [[nodiscard]] std::uint64_t batches_flushed() const { return batches_flushed_; }
  [[nodiscard]] std::uint64_t messages_batched() const { return batched_msgs_; }
  /// Lifetime serialization-busy fraction of the busiest directed link
  /// (the `backhaul.link_utilization` gauge). 0 while the link model is off
  /// or no time has elapsed.
  [[nodiscard]] double max_link_utilization(Time now) const;

 private:
  /// Hashed directed-link key; indexes the FIFO watermark, the link
  /// serializer state, and the open batch.
  [[nodiscard]] static std::uint64_t flow_key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(std::hash<NodeId>{}(from)) << 32) ^
           std::hash<NodeId>{}(to);
  }

  /// Drops / adds the payload-pool reference of a pooled DownlinkData.
  /// No-ops for by-value messages or while no pool is wired.
  void drop_payload(const BackhaulMessage& msg);
  void ref_payload(const BackhaulMessage& msg);

  /// Schedules one delivery at >= `arrival`, clamped to the flow's FIFO
  /// unless `bypass_fifo` (a reorder-faulted message) is set.
  void deliver(NodeId from, NodeId to, BackhaulMessage msg, Time arrival,
               bool bypass_fifo = false);

  // Batching machinery.
  void flush_batch(std::uint64_t key);
  void flush_batch_if(std::uint64_t key, std::uint64_t gen);
  void deliver_batch_parked(std::uint32_t slot);

  /// In-flight message parked between send() and its delivery event. Kept in
  /// a free-listed slab so the scheduled callback captures only
  /// (this, slot index) — it stays within InlineCallback's inline buffer, and
  /// the steady state allocates nothing per message (DESIGN.md §8).
  struct PendingDelivery {
    NodeId from{};
    NodeId to{};
    BackhaulMessage msg;
  };
  std::uint32_t park(NodeId from, NodeId to, BackhaulMessage msg);
  void deliver_parked(std::uint32_t slot);

  /// One directed link's serializer state (link model only).
  struct LinkState {
    Time busy_until = Time::zero();   // virtual clock of the FIFO serializer
    std::uint64_t busy_ns = 0;        // lifetime serialization time
  };

  /// An open (not yet flushed) batch on one link.
  struct Batch {
    NodeId from{};
    NodeId to{};
    std::vector<BackhaulMessage> msgs;
    Time ready = Time::zero();  // latest serialization finish among members
    std::uint64_t gen = 0;      // stales the pending window-flush event
    bool open = false;
  };
  /// A flushed batch parked until its single delivery event.
  struct PendingBatch {
    NodeId from{};
    NodeId to{};
    std::vector<BackhaulMessage> msgs;
  };

  sim::Scheduler& sched_;
  Config config_;
  Rng rng_;
  PacketPool* payload_pool_ = nullptr;
  std::unordered_map<NodeId, Handler> handlers_;
  std::vector<PendingDelivery> in_flight_;    // grows to the high-water mark
  std::vector<std::uint32_t> free_in_flight_;
  std::vector<PendingBatch> batch_in_flight_;
  std::vector<std::uint32_t> free_batch_in_flight_;
  // FIFO discipline per (src, dst): a switched-Ethernet path never reorders
  // packets of one flow, and the WGTT index stream depends on that.
  std::unordered_map<std::uint64_t, Time> last_delivery_;
  std::unordered_map<std::uint64_t, LinkState> links_;
  std::unordered_map<std::uint64_t, Batch> batches_;
  std::unordered_set<NodeId> down_nodes_;
  std::array<int, kNumMsgKinds> drop_first_remaining_{};
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t fault_dropped_ = 0;
  std::uint64_t link_dropped_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t queue_drops_ = 0;
  std::uint64_t batches_flushed_ = 0;
  std::uint64_t batched_msgs_ = 0;
};

}  // namespace wgtt::net
