// Strongly typed node identifiers. An AP id doubles as the index into the
// roadside array; clients are numbered in join order.
#pragma once

#include <cstdint>
#include <functional>

namespace wgtt::net {

enum class ApId : std::uint32_t {};
enum class ClientId : std::uint32_t {};

/// A backhaul endpoint: the controller or one of the APs.
struct NodeId {
  enum class Kind : std::uint8_t { kController, kAp } kind = Kind::kController;
  std::uint32_t index = 0;

  [[nodiscard]] static NodeId controller() { return {Kind::kController, 0}; }
  /// Controller of domain `d` in a multi-controller deployment. Domain 0 is
  /// wire-identical to the legacy single-controller address.
  [[nodiscard]] static NodeId controller(std::uint32_t domain) {
    return {Kind::kController, domain};
  }
  [[nodiscard]] static NodeId ap(ApId id) {
    return {Kind::kAp, static_cast<std::uint32_t>(id)};
  }

  friend bool operator==(const NodeId&, const NodeId&) = default;
};

[[nodiscard]] constexpr std::uint32_t index_of(ApId id) {
  return static_cast<std::uint32_t>(id);
}
[[nodiscard]] constexpr std::uint32_t index_of(ClientId id) {
  return static_cast<std::uint32_t>(id);
}

}  // namespace wgtt::net

template <>
struct std::hash<wgtt::net::NodeId> {
  std::size_t operator()(const wgtt::net::NodeId& n) const noexcept {
    return (static_cast<std::size_t>(n.kind) << 32) ^ n.index;
  }
};

template <>
struct std::hash<wgtt::net::ApId> {
  std::size_t operator()(wgtt::net::ApId id) const noexcept {
    return static_cast<std::size_t>(id);
  }
};

template <>
struct std::hash<wgtt::net::ClientId> {
  std::size_t operator()(wgtt::net::ClientId id) const noexcept {
    return static_cast<std::size_t>(id);
  }
};
