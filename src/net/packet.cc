#include "net/packet.h"

namespace wgtt::net {

namespace {
// thread_local so concurrent trials in the bench TrialPool each get their
// own deterministic uid stream: every trial calls reset_packet_uids() on
// whichever worker thread runs it, and uids only need to be unique within
// one run (one scheduler, one thread).
thread_local std::uint64_t g_next_uid = 1;
}  // namespace

Packet make_packet() {
  Packet p;
  p.uid = g_next_uid++;
  return p;
}

void reset_packet_uids() { g_next_uid = 1; }

}  // namespace wgtt::net
