#include "net/packet.h"

namespace wgtt::net {

namespace {
// thread_local so concurrent trials in the bench TrialPool each get their
// own deterministic uid stream: every trial calls reset_packet_uids() on
// whichever worker thread runs it, and uids only need to be unique within
// one run (one scheduler, one thread).
//
// The parallel engine (DESIGN.md §11) adds a second sharing shape: several
// domains of ONE run, each with its own scheduler, executed by a worker
// pool whose size must not affect results. There the uid stream is
// per-domain state, not per-thread state — each domain redirects the
// stream pointer to its own counter around its execution windows
// (set_packet_uid_stream), so the uids a domain draws are independent of
// which worker ran it and of how many workers exist.
thread_local std::uint64_t g_default_uid = 1;
thread_local std::uint64_t* g_uid_stream = &g_default_uid;
}  // namespace

Packet make_packet() {
  Packet p;
  p.uid = (*g_uid_stream)++;
  return p;
}

void reset_packet_uids() {
  g_default_uid = 1;
  g_uid_stream = &g_default_uid;
}

std::uint64_t* set_packet_uid_stream(std::uint64_t* stream) {
  std::uint64_t* prev = g_uid_stream;
  g_uid_stream = stream != nullptr ? stream : &g_default_uid;
  return prev;
}

std::uint64_t packet_uid_domain_base(std::uint64_t domain) {
  // domain + 1, not domain: base(0) must not equal 1, where the default
  // thread-local stream starts — a make_packet() outside any domain
  // enter/exit window would otherwise silently collide with domain 0's uids.
  return ((domain + 1) << 48) | 1;
}

}  // namespace wgtt::net
