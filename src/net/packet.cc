#include "net/packet.h"

namespace wgtt::net {

namespace {
std::uint64_t g_next_uid = 1;
}  // namespace

Packet make_packet() {
  Packet p;
  p.uid = g_next_uid++;
  return p;
}

void reset_packet_uids() { g_next_uid = 1; }

}  // namespace wgtt::net
