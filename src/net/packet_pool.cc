#include "net/packet_pool.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace wgtt::net {

PacketPool::Handle PacketPool::acquire(Packet&& packet) {
  if (free_.empty()) {
    const auto base = static_cast<Handle>(chunks_.size() * kChunkSize);
    chunks_.push_back(std::make_unique<Packet[]>(kChunkSize));
    refs_.push_back(std::make_unique<std::uint32_t[]>(kChunkSize));
    for (std::size_t i = 0; i < kChunkSize; ++i) refs_.back()[i] = 0;
    // Pushed in reverse so the LIFO freelist hands out ascending handles
    // within a fresh chunk (deterministic, and sequential first touches).
    free_.reserve(free_.size() + kChunkSize);
    for (std::size_t i = kChunkSize; i-- > 0;) {
      free_.push_back(base + static_cast<Handle>(i));
    }
  }
  const Handle h = free_.back();
  free_.pop_back();
  *get(h) = std::move(packet);
  refs_[h / kChunkSize][h % kChunkSize] = 1;
  ++in_use_;
  ++total_refs_;
  if (in_use_ > peak_in_use_) peak_in_use_ = in_use_;
  return h;
}

void PacketPool::check_live(Handle h, const char* op) const {
  if (h == kNullHandle || h / kChunkSize >= chunks_.size() ||
      refs_[h / kChunkSize][h % kChunkSize] == 0) {
    std::fprintf(stderr, "PacketPool::%s on dead handle %u\n", op, h);
    std::abort();
  }
}

void PacketPool::add_ref(Handle h) {
  check_live(h, "add_ref");
  ++refs_[h / kChunkSize][h % kChunkSize];
  ++total_refs_;
}

Packet PacketPool::release(Handle h) {
  check_live(h, "release");
  std::uint32_t& refs = refs_[h / kChunkSize][h % kChunkSize];
  --total_refs_;
  if (--refs > 0) return *get(h);  // other holders remain: copy out
  // Last reference: move the payload out (no copy) and recycle the slot.
  Packet out = std::move(*get(h));
  free_.push_back(h);
  --in_use_;
  return out;
}

void PacketPool::drop(Handle h) {
  check_live(h, "drop");
  std::uint32_t& refs = refs_[h / kChunkSize][h % kChunkSize];
  --total_refs_;
  if (--refs > 0) return;
  free_.push_back(h);
  --in_use_;
}

std::uint32_t PacketPool::ref_count(Handle h) const {
  if (h == kNullHandle || h / kChunkSize >= chunks_.size()) return 0;
  return refs_[h / kChunkSize][h % kChunkSize];
}

const Packet* PacketPool::get(Handle h) const {
  return &chunks_[h / kChunkSize][h % kChunkSize];
}

Packet* PacketPool::get(Handle h) {
  return &chunks_[h / kChunkSize][h % kChunkSize];
}

}  // namespace wgtt::net
