#include "net/packet_pool.h"

#include <utility>

namespace wgtt::net {

PacketPool::Handle PacketPool::acquire(Packet&& packet) {
  if (free_.empty()) {
    const auto base = static_cast<Handle>(chunks_.size() * kChunkSize);
    chunks_.push_back(std::make_unique<Packet[]>(kChunkSize));
    // Pushed in reverse so the LIFO freelist hands out ascending handles
    // within a fresh chunk (deterministic, and sequential first touches).
    free_.reserve(free_.size() + kChunkSize);
    for (std::size_t i = kChunkSize; i-- > 0;) {
      free_.push_back(base + static_cast<Handle>(i));
    }
  }
  const Handle h = free_.back();
  free_.pop_back();
  *get(h) = std::move(packet);
  ++in_use_;
  if (in_use_ > peak_in_use_) peak_in_use_ = in_use_;
  return h;
}

Packet PacketPool::release(Handle h) {
  Packet out = std::move(*get(h));
  free_.push_back(h);
  --in_use_;
  return out;
}

const Packet* PacketPool::get(Handle h) const {
  return &chunks_[h / kChunkSize][h % kChunkSize];
}

Packet* PacketPool::get(Handle h) {
  return &chunks_[h / kChunkSize][h % kChunkSize];
}

}  // namespace wgtt::net
