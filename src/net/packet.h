// The simulator's packet representation.
//
// Packets carry metadata rather than serialized bytes: the simulation needs
// sizes, addresses, sequence numbers and the WGTT bookkeeping fields, not
// payload contents. Byte counts include the real header overheads so that
// airtime and throughput accounting match a wire implementation.
#pragma once

#include <cstdint>
#include <optional>

#include "net/ids.h"
#include "util/units.h"

namespace wgtt::net {

enum class Proto : std::uint8_t { kUdp, kTcp, kArp };

/// TCP header fields the Reno model needs. Sequence numbers are 64-bit to
/// sidestep wraparound (a modelling convenience; wrap handling is not what
/// this reproduction studies).
struct TcpFields {
  std::uint64_t seq = 0;       // first payload byte
  std::uint64_t ack = 0;       // cumulative ack
  bool is_ack = false;
  /// Timestamp echo (mirrors the TCP timestamp option): the ack carries the
  /// `created` time of the segment that triggered it, for RTT estimation.
  Time ts_echo;
};

inline constexpr std::size_t kIpUdpHeaderBytes = 28;   // IPv4 + UDP
inline constexpr std::size_t kIpTcpHeaderBytes = 40;   // IPv4 + TCP
inline constexpr std::size_t kMacHeaderBytes = 34;     // 802.11 QoS data + FCS
/// Controller<->AP tunnel: outer IP/UDP + 4-byte WGTT index (paper §3.1.3).
inline constexpr std::size_t kTunnelHeaderBytes = 32;

struct Packet {
  std::uint64_t uid = 0;       // globally unique, assigned by make_packet()
  ClientId client{};           // which mobile this packet belongs to
  bool downlink = true;
  Proto proto = Proto::kUdp;

  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  /// IPv4 identification: with src_ip it forms the controller's 48-bit
  /// de-duplication key (paper §3.2.2).
  std::uint16_t ip_id = 0;

  std::size_t payload_bytes = 0;
  std::optional<TcpFields> tcp;
  /// Application-level sequence number for UDP flows (loss/ordering
  /// accounting at the sink).
  std::uint32_t app_seq = 0;

  Time created;                // when the source emitted it

  /// Size at the IP layer (payload + transport/IP headers).
  [[nodiscard]] std::size_t ip_bytes() const {
    return payload_bytes +
           (proto == Proto::kTcp ? kIpTcpHeaderBytes : kIpUdpHeaderBytes);
  }
  /// Size as an MPDU over the air.
  [[nodiscard]] std::size_t air_bytes() const {
    return ip_bytes() + kMacHeaderBytes;
  }
  /// Size when tunnelled controller<->AP over the backhaul.
  [[nodiscard]] std::size_t tunnel_bytes() const {
    return ip_bytes() + kTunnelHeaderBytes;
  }
};

/// Creates a packet with a fresh process-wide uid. Uids only disambiguate
/// copies inside one run; determinism across runs is preserved because
/// allocation order is itself deterministic.
[[nodiscard]] Packet make_packet();

/// Resets the uid counter (between independent experiments in one binary).
/// Also restores the default (thread-local) uid stream.
void reset_packet_uids();

/// Redirects make_packet()'s uid draws on this thread to `stream` (nullptr
/// restores the thread-local default). Returns the previously active
/// stream so callers can nest save/restore. The parallel engine's domains
/// each own one counter, swapped in around their execution windows, so uid
/// allocation is per-domain deterministic regardless of worker count
/// (DESIGN.md §11.5).
std::uint64_t* set_packet_uid_stream(std::uint64_t* stream);

/// First uid of domain d's namespace: ((d + 1) << 48) | 1. 48 counter bits
/// per domain keep streams collision-free without coordination; the d + 1
/// offset keeps every domain namespace disjoint from the default
/// thread-local stream, which starts at 1 (i.e. in the d-less low range).
[[nodiscard]] std::uint64_t packet_uid_domain_base(std::uint64_t domain);

}  // namespace wgtt::net
