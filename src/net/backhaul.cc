#include "net/backhaul.h"

#include <stdexcept>
#include <utility>

namespace wgtt::net {

std::size_t wire_bytes(const BackhaulMessage& msg) {
  return std::visit(
      [](const auto& m) -> std::size_t {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, DownlinkData>) {
          return m.packet.tunnel_bytes();
        } else if constexpr (std::is_same_v<T, UplinkData>) {
          return m.packet.tunnel_bytes();
        } else if constexpr (std::is_same_v<T, CsiReport>) {
          // 56 subcarriers x 2 bytes + UDP/IP + metadata (paper §3.1.1).
          return 56 * 2 + 28 + 16;
        } else if constexpr (std::is_same_v<T, StopMsg>) {
          return 64;  // two L2 addresses + framing
        } else if constexpr (std::is_same_v<T, StartMsg>) {
          return 64;
        } else if constexpr (std::is_same_v<T, SwitchAck>) {
          return 64;
        } else if constexpr (std::is_same_v<T, BlockAckForward>) {
          return 28 + 2 + 8 + 14;  // UDP/IP + start seq + bitmap + addresses
        } else if constexpr (std::is_same_v<T, AssocSync>) {
          return 256;  // sta_info struct transfer
        } else if constexpr (std::is_same_v<T, Heartbeat>) {
          return 64;  // UDP/IP + seq + framing
        } else {
          static_assert(std::is_same_v<T, HeartbeatAck>);
          return 64;
        }
      },
      msg);
}

bool is_control(const BackhaulMessage& msg) {
  return std::holds_alternative<StopMsg>(msg) ||
         std::holds_alternative<StartMsg>(msg) ||
         std::holds_alternative<SwitchAck>(msg) ||
         std::holds_alternative<Heartbeat>(msg) ||
         std::holds_alternative<HeartbeatAck>(msg);
}

MsgKind kind_of(const BackhaulMessage& msg) {
  // The variant index IS the kind; a static_assert pins the correspondence.
  static_assert(std::variant_size_v<BackhaulMessage> == kNumMsgKinds);
  static_assert(std::is_same_v<std::variant_alternative_t<
                    static_cast<std::size_t>(MsgKind::kStop), BackhaulMessage>,
                StopMsg>);
  static_assert(std::is_same_v<std::variant_alternative_t<
                    static_cast<std::size_t>(MsgKind::kAssocSync),
                    BackhaulMessage>,
                AssocSync>);
  static_assert(std::is_same_v<std::variant_alternative_t<
                    static_cast<std::size_t>(MsgKind::kHeartbeatAck),
                    BackhaulMessage>,
                HeartbeatAck>);
  return static_cast<MsgKind>(msg.index());
}

Backhaul::Backhaul(sim::Scheduler& sched, const Config& config, Rng rng)
    : sched_(sched), config_(config), rng_(rng) {
  for (std::size_t k = 0; k < kNumMsgKinds; ++k) {
    drop_first_remaining_[k] = config_.faults[k].drop_first;
  }
}

void Backhaul::attach(NodeId node, Handler handler) {
  handlers_[node] = std::move(handler);
}

void Backhaul::set_node_up(NodeId node, bool up) {
  if (up) {
    down_nodes_.erase(node);
  } else {
    down_nodes_.insert(node);
  }
}

void Backhaul::send(NodeId from, NodeId to, BackhaulMessage msg) {
  if (!handlers_.contains(to)) {
    throw std::logic_error("Backhaul::send to unattached node");
  }
  ++sent_;
  // Link-down drops happen before any RNG draw so that a run where no node
  // ever goes down consumes the identical draw sequence.
  if (!down_nodes_.empty() &&
      (down_nodes_.contains(from) || down_nodes_.contains(to))) {
    ++dropped_;
    ++link_dropped_;
    return;
  }
  if (rng_.chance(config_.loss_rate)) {
    ++dropped_;
    return;
  }
  const auto kind = static_cast<std::size_t>(kind_of(msg));
  const FaultPlan& plan = config_.faults[kind];
  if (drop_first_remaining_[kind] > 0) {
    --drop_first_remaining_[kind];
    ++dropped_;
    ++fault_dropped_;
    return;
  }
  // RNG draws are gated on nonzero knobs so an all-zero plan keeps seeded
  // runs bit-identical to a Backhaul built before fault injection existed.
  if (plan.loss_rate > 0.0 && rng_.chance(plan.loss_rate)) {
    ++dropped_;
    ++fault_dropped_;
    return;
  }
  const double ser_us =
      static_cast<double>(wire_bytes(msg)) * 8.0 / config_.line_rate_mbps;
  Time latency = config_.switch_overhead + Time::micros(ser_us);
  if (config_.jitter_max > Time::zero()) {
    latency += Time::ns(static_cast<std::int64_t>(
        rng_.uniform() * static_cast<double>(config_.jitter_max.count_ns())));
  }
  if (plan.delay_rate > 0.0 && plan.delay_max > Time::zero() &&
      rng_.chance(plan.delay_rate)) {
    ++delayed_;
    latency += Time::ns(static_cast<std::int64_t>(
        rng_.uniform() * static_cast<double>(plan.delay_max.count_ns())));
  }
  // A reordered message takes an extra delay and skips the FIFO clamp in
  // deliver(): it neither waits for earlier messages nor holds back later
  // ones, so the flow genuinely reorders around it.
  bool reorder = false;
  if (plan.reorder_rate > 0.0 && plan.reorder_max > Time::zero() &&
      rng_.chance(plan.reorder_rate)) {
    reorder = true;
    ++reordered_;
    latency += Time::ns(static_cast<std::int64_t>(
        rng_.uniform() * static_cast<double>(plan.reorder_max.count_ns())));
  }
  const bool duplicate = plan.dup_rate > 0.0 && rng_.chance(plan.dup_rate);
  const Time arrival = sched_.now() + latency;
  if (duplicate) {
    ++duplicated_;
    BackhaulMessage copy = msg;
    deliver(from, to, std::move(msg), arrival, reorder);
    // The copy trails the original; the FIFO clamp in deliver() keeps it
    // behind both the original and anything sent meanwhile.
    deliver(from, to, std::move(copy), arrival + config_.switch_overhead,
            reorder);
  } else {
    deliver(from, to, std::move(msg), arrival, reorder);
  }
}

void Backhaul::deliver(NodeId from, NodeId to, BackhaulMessage msg,
                       Time arrival, bool bypass_fifo) {
  // Enforce per-(src,dst) FIFO: neither jitter nor injected delay may
  // reorder a flow (a delayed message stalls everything behind it). A
  // reorder-faulted message skips both the clamp and the watermark update,
  // so messages sent after it can overtake it.
  if (!bypass_fifo) {
    const std::uint64_t flow_key =
        (static_cast<std::uint64_t>(std::hash<NodeId>{}(from)) << 32) ^
        std::hash<NodeId>{}(to);
    auto [it, inserted] = last_delivery_.try_emplace(flow_key, arrival);
    if (!inserted) {
      if (arrival <= it->second) arrival = it->second + Time::ns(1);
      it->second = arrival;
    }
  }
  // Park the message in the slab and schedule a 16-byte (this, slot)
  // trampoline: the message body never rides inside the callback, so the
  // event stays in InlineCallback's inline buffer.
  const std::uint32_t slot = park(from, to, std::move(msg));
  sched_.schedule_at(arrival, [this, slot] { deliver_parked(slot); },
                     sim::EventCategory::kBackhaul);
}

std::uint32_t Backhaul::park(NodeId from, NodeId to, BackhaulMessage msg) {
  if (free_in_flight_.empty()) {
    in_flight_.push_back(PendingDelivery{from, to, std::move(msg)});
    return static_cast<std::uint32_t>(in_flight_.size() - 1);
  }
  const std::uint32_t slot = free_in_flight_.back();
  free_in_flight_.pop_back();
  in_flight_[slot] = PendingDelivery{from, to, std::move(msg)};
  return slot;
}

void Backhaul::deliver_parked(std::uint32_t slot) {
  // Move everything out and recycle the slot before invoking: the handler
  // may send() reentrantly, which can grow in_flight_.
  PendingDelivery d = std::move(in_flight_[slot]);
  free_in_flight_.push_back(slot);
  // A message in flight toward a node whose link went down meanwhile is
  // lost with the cable.
  if (!down_nodes_.empty() && down_nodes_.contains(d.to)) {
    ++dropped_;
    ++link_dropped_;
    return;
  }
  // Handler looked up at delivery time: attach order vs send order must
  // not matter, and a handler may be replaced mid-run.
  auto it = handlers_.find(d.to);
  if (it != handlers_.end()) it->second(d.from, std::move(d.msg));
}

}  // namespace wgtt::net
