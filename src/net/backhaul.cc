#include "net/backhaul.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace wgtt::net {

std::size_t wire_bytes(const BackhaulMessage& msg) {
  return std::visit(
      [](const auto& m) -> std::size_t {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, DownlinkData>) {
          // A pooled message cached its wire size at fan-out so latency
          // accounting never dereferences the pool.
          return m.pooled() ? m.tunnel_bytes : m.packet.tunnel_bytes();
        } else if constexpr (std::is_same_v<T, UplinkData>) {
          return m.packet.tunnel_bytes();
        } else if constexpr (std::is_same_v<T, CsiReport>) {
          // 56 subcarriers x 2 bytes + UDP/IP + metadata (paper §3.1.1).
          return 56 * 2 + 28 + 16;
        } else if constexpr (std::is_same_v<T, StopMsg>) {
          return 64;  // two L2 addresses + framing
        } else if constexpr (std::is_same_v<T, StartMsg>) {
          return 64;
        } else if constexpr (std::is_same_v<T, SwitchAck>) {
          return 64;
        } else if constexpr (std::is_same_v<T, BlockAckForward>) {
          return 28 + 2 + 8 + 14;  // UDP/IP + start seq + bitmap + addresses
        } else if constexpr (std::is_same_v<T, AssocSync>) {
          return 256;  // sta_info struct transfer
        } else if constexpr (std::is_same_v<T, Heartbeat>) {
          return 64;  // UDP/IP + seq + framing
        } else if constexpr (std::is_same_v<T, HeartbeatAck>) {
          return 64;
        } else if constexpr (std::is_same_v<T, CsiForward>) {
          // The inner report plus the forwarding header.
          return 56 * 2 + 28 + 16 + 8;
        } else if constexpr (std::is_same_v<T, UplinkForward>) {
          return m.data.packet.tunnel_bytes() + 8;
        } else if constexpr (std::is_same_v<T, DownlinkForward>) {
          return m.packet.tunnel_bytes() + 8;
        } else if constexpr (std::is_same_v<T, HandoverRequest>) {
          // Fixed state-transfer header plus the dedup-ring seed.
          return 96 + m.dedup_seed.size() * 4;
        } else if constexpr (std::is_same_v<T, HandoverAck>) {
          return 64;
        } else if constexpr (std::is_same_v<T, DomainHeartbeat>) {
          return 64;
        } else if constexpr (std::is_same_v<T, DomainHeartbeatAck>) {
          return 64;
        } else if constexpr (std::is_same_v<T, DomainSync>) {
          return 64 + m.entries.size() * 24;
        } else {
          static_assert(std::is_same_v<T, AdoptAp>);
          return 64;
        }
      },
      msg);
}

bool is_control(const BackhaulMessage& msg) {
  return std::holds_alternative<StopMsg>(msg) ||
         std::holds_alternative<StartMsg>(msg) ||
         std::holds_alternative<SwitchAck>(msg) ||
         std::holds_alternative<Heartbeat>(msg) ||
         std::holds_alternative<HeartbeatAck>(msg) ||
         std::holds_alternative<HandoverRequest>(msg) ||
         std::holds_alternative<HandoverAck>(msg) ||
         std::holds_alternative<DomainHeartbeat>(msg) ||
         std::holds_alternative<DomainHeartbeatAck>(msg) ||
         std::holds_alternative<DomainSync>(msg) ||
         std::holds_alternative<AdoptAp>(msg);
}

MsgKind kind_of(const BackhaulMessage& msg) {
  // The variant index IS the kind; a static_assert pins the correspondence.
  static_assert(std::variant_size_v<BackhaulMessage> == kNumMsgKinds);
  static_assert(std::is_same_v<std::variant_alternative_t<
                    static_cast<std::size_t>(MsgKind::kStop), BackhaulMessage>,
                StopMsg>);
  static_assert(std::is_same_v<std::variant_alternative_t<
                    static_cast<std::size_t>(MsgKind::kAssocSync),
                    BackhaulMessage>,
                AssocSync>);
  static_assert(std::is_same_v<std::variant_alternative_t<
                    static_cast<std::size_t>(MsgKind::kHeartbeatAck),
                    BackhaulMessage>,
                HeartbeatAck>);
  static_assert(std::is_same_v<std::variant_alternative_t<
                    static_cast<std::size_t>(MsgKind::kHandoverRequest),
                    BackhaulMessage>,
                HandoverRequest>);
  static_assert(std::is_same_v<std::variant_alternative_t<
                    static_cast<std::size_t>(MsgKind::kAdoptAp),
                    BackhaulMessage>,
                AdoptAp>);
  return static_cast<MsgKind>(msg.index());
}

Backhaul::Backhaul(sim::Scheduler& sched, const Config& config, Rng rng)
    : sched_(sched), config_(config), rng_(rng) {
  for (std::size_t k = 0; k < kNumMsgKinds; ++k) {
    drop_first_remaining_[k] = config_.faults[k].drop_first;
  }
}

void Backhaul::attach(NodeId node, Handler handler) {
  handlers_[node] = std::move(handler);
}

void Backhaul::set_node_up(NodeId node, bool up) {
  if (up) {
    down_nodes_.erase(node);
  } else {
    down_nodes_.insert(node);
  }
}

void Backhaul::drop_payload(const BackhaulMessage& msg) {
  if (payload_pool_ == nullptr) return;
  if (const auto* d = std::get_if<DownlinkData>(&msg);
      d != nullptr && d->pooled()) {
    payload_pool_->drop(d->handle);
  }
}

void Backhaul::ref_payload(const BackhaulMessage& msg) {
  if (payload_pool_ == nullptr) return;
  if (const auto* d = std::get_if<DownlinkData>(&msg);
      d != nullptr && d->pooled()) {
    payload_pool_->add_ref(d->handle);
  }
}

double Backhaul::max_link_utilization(Time now) const {
  if (now <= Time::zero()) return 0.0;
  double best = 0.0;
  for (const auto& [key, link] : links_) {
    best = std::max(best, static_cast<double>(link.busy_ns) /
                              static_cast<double>(now.count_ns()));
  }
  return best;
}

void Backhaul::send(NodeId from, NodeId to, BackhaulMessage msg) {
  if (!handlers_.contains(to)) {
    drop_payload(msg);
    throw std::logic_error("Backhaul::send to unattached node");
  }
  ++sent_;
  // Link-down drops happen before any RNG draw so that a run where no node
  // ever goes down consumes the identical draw sequence.
  if (!down_nodes_.empty() &&
      (down_nodes_.contains(from) || down_nodes_.contains(to))) {
    ++dropped_;
    ++link_dropped_;
    drop_payload(msg);
    return;
  }
  if (rng_.chance(config_.loss_rate)) {
    ++dropped_;
    drop_payload(msg);
    return;
  }
  const auto kind = static_cast<std::size_t>(kind_of(msg));
  const FaultPlan& plan = config_.faults[kind];
  if (drop_first_remaining_[kind] > 0) {
    --drop_first_remaining_[kind];
    ++dropped_;
    ++fault_dropped_;
    drop_payload(msg);
    return;
  }
  // RNG draws are gated on nonzero knobs so an all-zero plan keeps seeded
  // runs bit-identical to a Backhaul built before fault injection existed.
  if (plan.loss_rate > 0.0 && rng_.chance(plan.loss_rate)) {
    ++dropped_;
    ++fault_dropped_;
    drop_payload(msg);
    return;
  }

  // --- link admission (DESIGN.md §10; consumes no RNG draws) -----------
  // With link_rate_mbps == 0 this reduces exactly to the legacy formula:
  // serialization at line rate, no queueing, no drops.
  const std::uint64_t key = flow_key(from, to);
  const auto bytes = static_cast<double>(wire_bytes(msg));
  Time queue_wait = Time::zero();
  double ser_us;
  if (config_.link_rate_mbps > 0.0) {
    LinkState& link = links_[key];
    const Time now = sched_.now();
    const Time backlog =
        link.busy_until > now ? link.busy_until - now : Time::zero();
    // The queue bound is enforced analytically: pending bytes are the
    // backlog interval times the drain rate, so no per-byte bookkeeping
    // (and no extra events) is needed.
    const double backlog_bytes = static_cast<double>(backlog.count_ns()) *
                                 config_.link_rate_mbps / 8000.0;
    if (backlog_bytes + bytes > static_cast<double>(config_.link_queue_bytes)) {
      ++dropped_;
      ++queue_drops_;
      drop_payload(msg);
      return;
    }
    ser_us = bytes * 8.0 / config_.link_rate_mbps;
    const Time ser = Time::micros(ser_us);
    queue_wait = backlog;
    link.busy_until = now + backlog + ser;
    link.busy_ns += static_cast<std::uint64_t>(ser.count_ns());
  } else {
    ser_us = bytes * 8.0 / config_.line_rate_mbps;
  }

  if (config_.batching) {
    if (std::holds_alternative<DownlinkData>(msg)) {
      // Fault draws still happen per message at send time, so batching
      // changes scheduling only, never which messages fault. A faulted
      // message cannot ride a batch (its latency differs from its
      // batchmates'), so it flushes the open batch — earlier sends deliver
      // first — and takes the per-message path below.
      Time extra = Time::zero();
      bool faulted = false;
      bool reorder = false;
      if (plan.delay_rate > 0.0 && plan.delay_max > Time::zero() &&
          rng_.chance(plan.delay_rate)) {
        faulted = true;
        ++delayed_;
        extra += Time::ns(static_cast<std::int64_t>(
            rng_.uniform() * static_cast<double>(plan.delay_max.count_ns())));
      }
      if (plan.reorder_rate > 0.0 && plan.reorder_max > Time::zero() &&
          rng_.chance(plan.reorder_rate)) {
        faulted = true;
        reorder = true;
        ++reordered_;
        extra += Time::ns(static_cast<std::int64_t>(
            rng_.uniform() * static_cast<double>(plan.reorder_max.count_ns())));
      }
      const bool duplicate = plan.dup_rate > 0.0 && rng_.chance(plan.dup_rate);
      if (!faulted && !duplicate) {
        const Time ser_done = sched_.now() + queue_wait + Time::micros(ser_us);
        Batch& b = batches_[key];
        if (!b.open) {
          b.open = true;
          b.from = from;
          b.to = to;
          b.msgs.clear();
          b.ready = ser_done;
          const std::uint64_t gen = ++b.gen;
          sched_.schedule_at(
              sched_.now() + config_.batch_window,
              [this, key, gen] { flush_batch_if(key, gen); },
              sim::EventCategory::kBackhaul);
        }
        b.msgs.push_back(std::move(msg));
        if (ser_done > b.ready) b.ready = ser_done;
        ++batched_msgs_;
        if (b.msgs.size() >= config_.batch_max_msgs) flush_batch(key);
        return;
      }
      flush_batch(key);
      Time latency =
          queue_wait + config_.switch_overhead + Time::micros(ser_us) + extra;
      if (config_.jitter_max > Time::zero()) {
        latency += Time::ns(static_cast<std::int64_t>(
            rng_.uniform() *
            static_cast<double>(config_.jitter_max.count_ns())));
      }
      const Time arrival = sched_.now() + latency;
      if (duplicate) {
        ++duplicated_;
        BackhaulMessage copy = msg;
        ref_payload(copy);
        deliver(from, to, std::move(msg), arrival, reorder);
        deliver(from, to, std::move(copy), arrival + config_.switch_overhead,
                reorder);
      } else {
        deliver(from, to, std::move(msg), arrival, reorder);
      }
      return;
    }
    // Non-batchable traffic (control, uplink) on this link empties the open
    // batch first: a stop/start must never overtake data queued before it.
    flush_batch(key);
  }

  Time latency = config_.switch_overhead + Time::micros(ser_us) + queue_wait;
  if (config_.jitter_max > Time::zero()) {
    latency += Time::ns(static_cast<std::int64_t>(
        rng_.uniform() * static_cast<double>(config_.jitter_max.count_ns())));
  }
  if (plan.delay_rate > 0.0 && plan.delay_max > Time::zero() &&
      rng_.chance(plan.delay_rate)) {
    ++delayed_;
    latency += Time::ns(static_cast<std::int64_t>(
        rng_.uniform() * static_cast<double>(plan.delay_max.count_ns())));
  }
  // A reordered message takes an extra delay and skips the FIFO clamp in
  // deliver(): it neither waits for earlier messages nor holds back later
  // ones, so the flow genuinely reorders around it.
  bool reorder = false;
  if (plan.reorder_rate > 0.0 && plan.reorder_max > Time::zero() &&
      rng_.chance(plan.reorder_rate)) {
    reorder = true;
    ++reordered_;
    latency += Time::ns(static_cast<std::int64_t>(
        rng_.uniform() * static_cast<double>(plan.reorder_max.count_ns())));
  }
  const bool duplicate = plan.dup_rate > 0.0 && rng_.chance(plan.dup_rate);
  const Time arrival = sched_.now() + latency;
  if (duplicate) {
    ++duplicated_;
    BackhaulMessage copy = msg;
    ref_payload(copy);
    deliver(from, to, std::move(msg), arrival, reorder);
    // The copy trails the original; the FIFO clamp in deliver() keeps it
    // behind both the original and anything sent meanwhile.
    deliver(from, to, std::move(copy), arrival + config_.switch_overhead,
            reorder);
  } else {
    deliver(from, to, std::move(msg), arrival, reorder);
  }
}

void Backhaul::deliver(NodeId from, NodeId to, BackhaulMessage msg,
                       Time arrival, bool bypass_fifo) {
  // Enforce per-(src,dst) FIFO: neither jitter nor injected delay may
  // reorder a flow (a delayed message stalls everything behind it). A
  // reorder-faulted message skips both the clamp and the watermark update,
  // so messages sent after it can overtake it.
  if (!bypass_fifo) {
    auto [it, inserted] = last_delivery_.try_emplace(flow_key(from, to), arrival);
    if (!inserted) {
      if (arrival <= it->second) arrival = it->second + Time::ns(1);
      it->second = arrival;
    }
  }
  // Park the message in the slab and schedule a 16-byte (this, slot)
  // trampoline: the message body never rides inside the callback, so the
  // event stays in InlineCallback's inline buffer.
  const std::uint32_t slot = park(from, to, std::move(msg));
  sched_.schedule_at(arrival, [this, slot] { deliver_parked(slot); },
                     sim::EventCategory::kBackhaul);
}

void Backhaul::flush_batch(std::uint64_t key) {
  const auto it = batches_.find(key);
  if (it == batches_.end() || !it->second.open) return;
  Batch& b = it->second;
  b.open = false;
  ++b.gen;  // stales the pending window-flush event
  ++batches_flushed_;
  // One serialization tail + one switch crossing + one jitter draw for the
  // whole batch: the coalesced deliveries share a wire departure.
  Time arrival = std::max(sched_.now(), b.ready) + config_.switch_overhead;
  if (config_.jitter_max > Time::zero()) {
    arrival += Time::ns(static_cast<std::int64_t>(
        rng_.uniform() * static_cast<double>(config_.jitter_max.count_ns())));
  }
  // The batch clamps against the same per-flow watermark single deliveries
  // use, so batched and unbatched traffic of one flow share one FIFO.
  auto [w, inserted] = last_delivery_.try_emplace(key, arrival);
  if (!inserted) {
    if (arrival <= w->second) arrival = w->second + Time::ns(1);
    w->second = arrival;
  }
  std::uint32_t slot;
  if (free_batch_in_flight_.empty()) {
    batch_in_flight_.push_back(PendingBatch{b.from, b.to, std::move(b.msgs)});
    slot = static_cast<std::uint32_t>(batch_in_flight_.size() - 1);
  } else {
    slot = free_batch_in_flight_.back();
    free_batch_in_flight_.pop_back();
    batch_in_flight_[slot] = PendingBatch{b.from, b.to, std::move(b.msgs)};
  }
  b.msgs = {};
  sched_.schedule_at(arrival, [this, slot] { deliver_batch_parked(slot); },
                     sim::EventCategory::kBackhaul);
}

void Backhaul::flush_batch_if(std::uint64_t key, std::uint64_t gen) {
  const auto it = batches_.find(key);
  if (it != batches_.end() && it->second.open && it->second.gen == gen) {
    flush_batch(key);
  }
}

std::uint32_t Backhaul::park(NodeId from, NodeId to, BackhaulMessage msg) {
  if (free_in_flight_.empty()) {
    in_flight_.push_back(PendingDelivery{from, to, std::move(msg)});
    return static_cast<std::uint32_t>(in_flight_.size() - 1);
  }
  const std::uint32_t slot = free_in_flight_.back();
  free_in_flight_.pop_back();
  in_flight_[slot] = PendingDelivery{from, to, std::move(msg)};
  return slot;
}

void Backhaul::deliver_parked(std::uint32_t slot) {
  // Move everything out and recycle the slot before invoking: the handler
  // may send() reentrantly, which can grow in_flight_.
  PendingDelivery d = std::move(in_flight_[slot]);
  free_in_flight_.push_back(slot);
  // A message in flight toward a node whose link went down meanwhile is
  // lost with the cable.
  if (!down_nodes_.empty() && down_nodes_.contains(d.to)) {
    ++dropped_;
    ++link_dropped_;
    drop_payload(d.msg);
    return;
  }
  // Handler looked up at delivery time: attach order vs send order must
  // not matter, and a handler may be replaced mid-run.
  auto it = handlers_.find(d.to);
  if (it != handlers_.end()) {
    it->second(d.from, std::move(d.msg));
  } else {
    drop_payload(d.msg);
  }
}

void Backhaul::deliver_batch_parked(std::uint32_t slot) {
  PendingBatch b = std::move(batch_in_flight_[slot]);
  free_batch_in_flight_.push_back(slot);
  if (!down_nodes_.empty() && down_nodes_.contains(b.to)) {
    // The cable cut loses the whole batch on the wire.
    for (const BackhaulMessage& m : b.msgs) {
      ++dropped_;
      ++link_dropped_;
      drop_payload(m);
    }
    return;
  }
  const auto it = handlers_.find(b.to);
  if (it == handlers_.end()) {
    for (const BackhaulMessage& m : b.msgs) drop_payload(m);
    return;
  }
  // One event, many messages: invoked in send order so the receiver sees
  // exactly the per-message sequence, just on one timestamp.
  for (BackhaulMessage& m : b.msgs) it->second(b.from, std::move(m));
}

}  // namespace wgtt::net
