#include "net/backhaul.h"

#include <stdexcept>
#include <utility>

namespace wgtt::net {

std::size_t wire_bytes(const BackhaulMessage& msg) {
  return std::visit(
      [](const auto& m) -> std::size_t {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, DownlinkData>) {
          return m.packet.tunnel_bytes();
        } else if constexpr (std::is_same_v<T, UplinkData>) {
          return m.packet.tunnel_bytes();
        } else if constexpr (std::is_same_v<T, CsiReport>) {
          // 56 subcarriers x 2 bytes + UDP/IP + metadata (paper §3.1.1).
          return 56 * 2 + 28 + 16;
        } else if constexpr (std::is_same_v<T, StopMsg>) {
          return 64;  // two L2 addresses + framing
        } else if constexpr (std::is_same_v<T, StartMsg>) {
          return 64;
        } else if constexpr (std::is_same_v<T, SwitchAck>) {
          return 64;
        } else if constexpr (std::is_same_v<T, BlockAckForward>) {
          return 28 + 2 + 8 + 14;  // UDP/IP + start seq + bitmap + addresses
        } else {
          static_assert(std::is_same_v<T, AssocSync>);
          return 256;  // sta_info struct transfer
        }
      },
      msg);
}

bool is_control(const BackhaulMessage& msg) {
  return std::holds_alternative<StopMsg>(msg) ||
         std::holds_alternative<StartMsg>(msg) ||
         std::holds_alternative<SwitchAck>(msg);
}

Backhaul::Backhaul(sim::Scheduler& sched, const Config& config, Rng rng)
    : sched_(sched), config_(config), rng_(rng) {}

void Backhaul::attach(NodeId node, Handler handler) {
  handlers_[node] = std::move(handler);
}

void Backhaul::send(NodeId from, NodeId to, BackhaulMessage msg) {
  if (!handlers_.contains(to)) {
    throw std::logic_error("Backhaul::send to unattached node");
  }
  ++sent_;
  if (rng_.chance(config_.loss_rate)) {
    ++dropped_;
    return;
  }
  const double ser_us =
      static_cast<double>(wire_bytes(msg)) * 8.0 / config_.line_rate_mbps;
  Time latency = config_.switch_overhead + Time::micros(ser_us);
  if (config_.jitter_max > Time::zero()) {
    latency += Time::ns(static_cast<std::int64_t>(
        rng_.uniform() * static_cast<double>(config_.jitter_max.count_ns())));
  }
  // Enforce per-(src,dst) FIFO: jitter must not reorder a flow.
  const std::uint64_t flow_key =
      (static_cast<std::uint64_t>(std::hash<NodeId>{}(from)) << 32) ^
      std::hash<NodeId>{}(to);
  Time arrival = sched_.now() + latency;
  auto [it, inserted] = last_delivery_.try_emplace(flow_key, arrival);
  if (!inserted) {
    if (arrival <= it->second) arrival = it->second + Time::ns(1);
    it->second = arrival;
  }
  sched_.schedule_at(arrival, [this, from, to, m = std::move(msg)]() mutable {
    // Handler looked up at delivery time: attach order vs send order must
    // not matter, and a handler may be replaced mid-run.
    auto it = handlers_.find(to);
    if (it != handlers_.end()) it->second(from, std::move(m));
  });
}

}  // namespace wgtt::net
