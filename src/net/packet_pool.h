// Pool allocator for packets parked in per-AP cyclic queues.
//
// The controller fans every downlink packet out to every in-range AP, and
// each AP parks its copy in a 4096-slot cyclic queue per client (paper
// §3.1.2). Storing a full Packet per ring slot made each queue ~0.5 MB of
// mostly-cold memory, paid at construction for every (AP, client) pair and
// again in cache misses on every put/take. The pool inverts that: ring
// slots hold 4-byte handles, and the packets themselves live in chunks
// allocated on demand — so memory scales with the live backlog (tens to a
// few thousand packets), not with the 12-bit index space times the fan-out
// width.
//
// Handles are refcounted (DESIGN.md §10): a fan-out to N APs acquires the
// payload once and hands each AP a handle plus one reference, so the N-way
// Packet copy on the controller's hot path collapses to N add_ref calls.
// release() decrements and only materializes a Packet — moved out of the
// slot on the last reference, copied while other holders remain — while
// drop() decrements without materializing anything (the cyclic-queue
// overwrite, crash-wipe, and backhaul drop paths use it). Releasing or
// dropping a dead handle is a hard program error and aborts: a silent
// double-release would hand the same slot to two owners and corrupt
// payloads far from the bug.
//
// Handles are indices, not pointers: chunk storage never moves, a released
// slot is recycled LIFO, and all operations are O(1). The pool is
// single-threaded by design (one pool per AP, one AP per scheduler); the
// parallel experiment runner gives each trial its own system and therefore
// its own pools, so no synchronization is needed or provided.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.h"

namespace wgtt::net {

class PacketPool {
 public:
  /// Opaque slot index. Stable for the lifetime of the acquisition.
  using Handle = std::uint32_t;
  static constexpr Handle kNullHandle = 0xffffffffu;

  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Stores `packet` and returns its handle with a reference count of 1.
  /// Grows by one chunk when the freelist is empty; never moves existing
  /// packets.
  [[nodiscard]] Handle acquire(Packet&& packet);

  /// Adds one reference to a live handle (fan-out sharing).
  void add_ref(Handle h);

  /// Removes one reference and returns the packet: moved out of the slot on
  /// the last reference (the slot is then recycled and the handle becomes
  /// invalid), copied while other references remain. Aborts on a dead
  /// handle.
  Packet release(Handle h);

  /// Removes one reference without materializing a Packet — the path for
  /// every "this copy is discarded" case (queue overwrite, crash wipe,
  /// backhaul loss). Aborts on a dead handle.
  void drop(Handle h);

  /// Current reference count of a handle (0 = free slot).
  [[nodiscard]] std::uint32_t ref_count(Handle h) const;

  /// Packet behind a live handle. No liveness check beyond bounds — callers
  /// (the cyclic queue) track occupancy themselves.
  [[nodiscard]] const Packet* get(Handle h) const;
  [[nodiscard]] Packet* get(Handle h);

  /// Live acquisitions (distinct slots, regardless of reference counts).
  [[nodiscard]] std::size_t in_use() const { return in_use_; }
  /// Sum of reference counts over all live handles; the `net.pool_refs`
  /// gauge. Equals in_use() when nothing is shared.
  [[nodiscard]] std::size_t total_refs() const { return total_refs_; }
  /// Total slots ever allocated (chunks * chunk size).
  [[nodiscard]] std::size_t capacity() const {
    return chunks_.size() * kChunkSize;
  }
  /// High-water mark of in_use() — how deep the backlog ever got.
  [[nodiscard]] std::size_t peak_in_use() const { return peak_in_use_; }

 private:
  static constexpr std::size_t kChunkSize = 256;

  /// Aborts unless `h` names a slot with a nonzero reference count. An
  /// explicit check rather than assert(): release-mode builds must catch a
  /// double-release too, and the death test pins the behaviour.
  void check_live(Handle h, const char* op) const;

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  // Reference counts, parallel to chunks_ (0 = free slot).
  std::vector<std::unique_ptr<std::uint32_t[]>> refs_;
  std::vector<Handle> free_;  // LIFO: hot slots are reused first
  std::size_t in_use_ = 0;
  std::size_t total_refs_ = 0;
  std::size_t peak_in_use_ = 0;
};

}  // namespace wgtt::net
