// Pool allocator for packets parked in per-AP cyclic queues.
//
// The controller fans every downlink packet out to every in-range AP, and
// each AP parks its copy in a 4096-slot cyclic queue per client (paper
// §3.1.2). Storing a full Packet per ring slot made each queue ~0.5 MB of
// mostly-cold memory, paid at construction for every (AP, client) pair and
// again in cache misses on every put/take. The pool inverts that: ring
// slots hold 4-byte handles, and the packets themselves live in chunks
// allocated on demand — so memory scales with the live backlog (tens to a
// few thousand packets), not with the 12-bit index space times the fan-out
// width.
//
// Handles are indices, not pointers: chunk storage never moves, a released
// slot is recycled LIFO, and all operations are O(1). The pool is
// single-threaded by design (one pool per AP, one AP per scheduler); the
// parallel experiment runner gives each trial its own system and therefore
// its own pools, so no synchronization is needed or provided.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.h"

namespace wgtt::net {

class PacketPool {
 public:
  /// Opaque slot index. Stable for the lifetime of the acquisition.
  using Handle = std::uint32_t;
  static constexpr Handle kNullHandle = 0xffffffffu;

  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Stores `packet` and returns its handle. Grows by one chunk when the
  /// freelist is empty; never moves existing packets.
  [[nodiscard]] Handle acquire(Packet&& packet);

  /// Removes and returns the packet; the handle becomes invalid.
  Packet release(Handle h);

  /// Packet behind a live handle. No liveness check beyond bounds — callers
  /// (the cyclic queue) track occupancy themselves.
  [[nodiscard]] const Packet* get(Handle h) const;
  [[nodiscard]] Packet* get(Handle h);

  /// Live acquisitions.
  [[nodiscard]] std::size_t in_use() const { return in_use_; }
  /// Total slots ever allocated (chunks * chunk size).
  [[nodiscard]] std::size_t capacity() const {
    return chunks_.size() * kChunkSize;
  }
  /// High-water mark of in_use() — how deep the backlog ever got.
  [[nodiscard]] std::size_t peak_in_use() const { return peak_in_use_; }

 private:
  static constexpr std::size_t kChunkSize = 256;

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  std::vector<Handle> free_;  // LIFO: hot slots are reused first
  std::size_t in_use_ = 0;
  std::size_t peak_in_use_ = 0;
};

}  // namespace wgtt::net
