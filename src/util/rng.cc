#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace wgtt {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& lane : s_) lane = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // = 2^64 mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] so log() is finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double mean) {
  return -mean * std::log(1.0 - uniform());
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() { return Rng{next_u64()}; }

}  // namespace wgtt
