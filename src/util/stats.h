// Small statistics toolkit used by the evaluation harness and by the
// control-plane algorithms (median ESNR selection, EWMA rate control).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace wgtt {

/// Streaming mean / variance (Welford).
class RunningStats {
 public:
  void add(double x);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // sample variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exponentially weighted moving average. alpha is the weight of the newest
/// sample; the first sample initializes the average.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x);
  void reset() { initialized_ = false; value_ = 0.0; }

  [[nodiscard]] bool initialized() const { return initialized_; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Median of the values (copies; does not reorder the input).
[[nodiscard]] double median(std::span<const double> xs);

/// The paper's AP selection uses the lower median e_{floor(L/2)} of the
/// sorted window (0-based floor(L/2) is the upper median; the paper's
/// 1-based e_{floor(L/2)} is the lower). Kept as its own function so the
/// selection algorithm matches the paper's formula exactly.
[[nodiscard]] double lower_median(std::span<const double> xs);

/// q in [0,1]; linear interpolation between order statistics.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Empirical CDF: sorted (value, cumulative fraction) pairs.
struct CdfPoint {
  double value;
  double fraction;
};
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(std::span<const double> xs);

}  // namespace wgtt
