#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wgtt {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

namespace {
std::vector<double> sorted_copy(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return v;
}
}  // namespace

double median(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("median of empty span");
  auto v = sorted_copy(xs);
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double lower_median(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("lower_median of empty span");
  auto v = sorted_copy(xs);
  // 1-based index floor(L/2) => 0-based floor(L/2) - 1 for even L, floor(L/2)
  // for odd L. For L = 1, both give element 0.
  const std::size_t n = v.size();
  const std::size_t idx = n % 2 == 1 ? n / 2 : n / 2 - 1;
  return v[idx];
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty span");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile q out of [0,1]");
  auto v = sorted_copy(xs);
  if (v.size() == 1) return v[0];
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> xs) {
  auto v = sorted_copy(xs);
  std::vector<CdfPoint> out;
  out.reserve(v.size());
  const double n = static_cast<double>(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out.push_back({v[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

}  // namespace wgtt
