// Time-based sliding window of samples: the data structure behind the
// paper's W-millisecond ESNR window (§3.1.1). Samples older than the window
// duration are evicted lazily on access.
#pragma once

#include <deque>
#include <span>
#include <vector>

#include "util/units.h"

namespace wgtt {

template <typename T>
class TimedWindow {
 public:
  explicit TimedWindow(Time window) : window_(window) {}

  void add(Time now, T value) {
    evict(now);
    samples_.push_back({now, std::move(value)});
  }

  /// Drops samples with timestamp <= now - window.
  void evict(Time now) {
    const Time cutoff = now - window_;
    while (!samples_.empty() && samples_.front().when <= cutoff) {
      samples_.pop_front();
    }
  }

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] Time window() const { return window_; }

  /// Copies current values out (after eviction at `now`).
  [[nodiscard]] std::vector<T> values(Time now) {
    evict(now);
    std::vector<T> out;
    out.reserve(samples_.size());
    for (const auto& s : samples_) out.push_back(s.value);
    return out;
  }

  /// Timestamp of the newest sample; Time::zero() when empty.
  [[nodiscard]] Time newest() const {
    return samples_.empty() ? Time::zero() : samples_.back().when;
  }

  void clear() { samples_.clear(); }

 private:
  struct Sample {
    Time when;
    T value;
  };
  Time window_;
  std::deque<Sample> samples_;
};

}  // namespace wgtt
