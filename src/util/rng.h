// Deterministic random number generation for the simulator.
//
// All stochastic behaviour in WGTT's simulation (fading, packet errors,
// contention backoff) flows from one seeded root generator, so a scenario is
// exactly reproducible from its seed. xoshiro256++ is used for speed; the
// fading model draws millions of variates per simulated second.
#pragma once

#include <array>
#include <cstdint>

namespace wgtt {

/// xoshiro256++ PRNG (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  /// Seeds the four 64-bit lanes by iterating splitmix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with given mean.
  double exponential(double mean);

  /// Bernoulli trial.
  bool chance(double p);

  /// Derives an independently seeded child generator. Used to give each
  /// channel tap / client / module its own stream while keeping the whole
  /// simulation a function of one root seed.
  Rng fork();

  // UniformRandomBitGenerator interface, so std::shuffle etc. work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace wgtt
