// Fixed-capacity ring buffer. Backbone of the AP cyclic queue and of the
// timed sliding windows used by the ESNR tracker.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace wgtt {

/// FIFO ring over contiguous storage. push_back fails (returns false) when
/// full rather than overwriting: queue-full is a meaningful event for every
/// queue in the AP pipeline.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    if (capacity == 0) throw std::invalid_argument("RingBuffer capacity 0");
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == buf_.size(); }

  /// Appends; returns false (and drops the value) if full.
  bool push_back(T value) {
    if (full()) return false;
    buf_[(head_ + size_) % buf_.size()] = std::move(value);
    ++size_;
    return true;
  }

  /// Removes and returns the oldest element. Precondition: !empty().
  T pop_front() {
    if (empty()) throw std::logic_error("pop_front on empty RingBuffer");
    T v = std::move(buf_[head_]);
    head_ = (head_ + 1) % buf_.size();
    --size_;
    return v;
  }

  [[nodiscard]] const T& front() const {
    if (empty()) throw std::logic_error("front on empty RingBuffer");
    return buf_[head_];
  }

  [[nodiscard]] const T& back() const {
    if (empty()) throw std::logic_error("back on empty RingBuffer");
    return buf_[(head_ + size_ - 1) % buf_.size()];
  }

  /// i-th oldest element, 0 <= i < size().
  [[nodiscard]] const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("RingBuffer::at");
    return buf_[(head_ + i) % buf_.size()];
  }

  [[nodiscard]] T& at(std::size_t i) {
    if (i >= size_) throw std::out_of_range("RingBuffer::at");
    return buf_[(head_ + i) % buf_.size()];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace wgtt
