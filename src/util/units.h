// Strong-typed physical units used throughout the WGTT simulator.
//
// Time is an integer nanosecond count: discrete-event simulation demands an
// exact, totally ordered clock (floating-point time drifts and breaks event
// ordering determinism). Lengths, speeds and powers are doubles because they
// feed analog channel math.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>

namespace wgtt {

/// Simulation time: signed 64-bit nanoseconds since simulation start.
/// Signed so that differences and "not yet scheduled" sentinels are natural.
class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time ns(std::int64_t v) { return Time{v}; }
  [[nodiscard]] static constexpr Time us(std::int64_t v) { return Time{v * 1'000}; }
  [[nodiscard]] static constexpr Time ms(std::int64_t v) { return Time{v * 1'000'000}; }
  [[nodiscard]] static constexpr Time sec(std::int64_t v) { return Time{v * 1'000'000'000}; }
  /// From fractional seconds (rounds to nearest nanosecond).
  [[nodiscard]] static constexpr Time seconds(double s) {
    return Time{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  [[nodiscard]] static constexpr Time micros(double us_) {
    return seconds(us_ * 1e-6);
  }
  [[nodiscard]] static constexpr Time millis(double ms_) {
    return seconds(ms_ * 1e-3);
  }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  [[nodiscard]] static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count_ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double to_micros() const { return static_cast<double>(ns_) * 1e-3; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time o) { ns_ += o.ns_; return *this; }
  constexpr Time& operator-=(Time o) { ns_ -= o.ns_; return *this; }
  [[nodiscard]] friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  [[nodiscard]] friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  [[nodiscard]] friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns_ * k}; }
  [[nodiscard]] friend constexpr Time operator*(std::int64_t k, Time a) { return a * k; }
  [[nodiscard]] friend constexpr std::int64_t operator/(Time a, Time b) { return a.ns_ / b.ns_; }

 private:
  constexpr explicit Time(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

/// Decibel conversions.
[[nodiscard]] inline double to_db(double linear) { return 10.0 * std::log10(linear); }
[[nodiscard]] inline double from_db(double db) { return std::pow(10.0, db / 10.0); }

/// dBm <-> milliwatt.
[[nodiscard]] inline double dbm_to_mw(double dbm) { return from_db(dbm); }
[[nodiscard]] inline double mw_to_dbm(double mw) { return to_db(mw); }

/// Speed conversions. The paper quotes vehicle speeds in mph.
[[nodiscard]] constexpr double mph_to_mps(double mph) { return mph * 0.44704; }
[[nodiscard]] constexpr double mps_to_mph(double mps) { return mps / 0.44704; }

/// 2.4 GHz Wi-Fi constants used by the channel model.
inline constexpr double kSpeedOfLight = 299'792'458.0;        // m/s
inline constexpr double kCarrierHz = 2.462e9;                 // channel 11
inline constexpr double kWavelength = kSpeedOfLight / kCarrierHz;  // ~12.2 cm
inline constexpr double kChannelBandwidthHz = 20e6;
inline constexpr int kNumSubcarriers = 56;  // 802.11n 20 MHz data+pilot tones

}  // namespace wgtt
