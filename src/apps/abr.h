// Adaptive-bitrate (DASH-style) video streaming — an extension of the
// paper's §5.4 fixed-rate video case study.
//
// The paper streams a fixed 2.5 Mbit/s file; modern players instead fetch
// 2-second segments from a bitrate ladder and adapt to the channel. The
// AbrPlayer implements a buffer-based controller (in the spirit of BBA):
// the fuller the playback buffer, the higher the rung it requests. Over a
// WGTT network the buffer stays full and the player parks at the top rung;
// over the Enhanced 802.11r baseline the stop-and-go channel forces rung
// oscillation and stalls — a sharper lens on the same phenomenon Table 4
// measures.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/scheduler.h"
#include "util/units.h"

namespace wgtt::apps {

class AbrPlayer {
 public:
  struct Config {
    /// Bitrate ladder, Mbit/s, ascending (a 480p->1080p-ish spread).
    std::vector<double> ladder_mbps{0.6, 1.2, 2.5, 5.0};
    Time segment_duration = Time::sec(2);
    /// Buffer thresholds (seconds of media) at which higher rungs unlock;
    /// rung i requires reservoir + i * cushion_per_rung of buffer.
    double reservoir_s = 4.0;
    double cushion_per_rung_s = 3.0;
    Time prebuffer = Time::millis(1500.0);
    Time tick = Time::ms(50);
  };

  struct Report {
    double mean_played_mbps = 0.0;   // quality actually watched
    double rebuffer_ratio = 0.0;     // stalled fraction after first play
    int quality_switches = 0;
    int segments_fetched = 0;
    double top_rung_fraction = 0.0;  // fraction of segments at max quality
  };

  AbrPlayer(sim::Scheduler& sched, Config config);
  ~AbrPlayer();
  AbrPlayer(const AbrPlayer&) = delete;
  AbrPlayer& operator=(const AbrPlayer&) = delete;

  /// The player requests `bytes` more video data from the origin; the
  /// harness wires this to a TCP sender's send_bytes().
  std::function<void(std::uint64_t bytes)> request_bytes;

  /// Feed cumulative in-order received bytes (from the TCP receiver).
  void on_progress(std::uint64_t total_bytes_delivered);

  void start();
  void stop();

  [[nodiscard]] Report report() const;
  [[nodiscard]] int current_rung() const { return rung_; }
  [[nodiscard]] double buffered_media_s() const { return buffer_s_; }
  [[nodiscard]] bool playing() const { return state_ == State::kPlaying; }

 private:
  enum class State { kIdle, kBuffering, kPlaying, kStalled };

  void tick();
  void maybe_fetch_next();
  [[nodiscard]] int pick_rung() const;
  [[nodiscard]] std::uint64_t segment_bytes(int rung) const;

  sim::Scheduler& sched_;
  Config config_;
  State state_ = State::kIdle;
  bool running_ = false;
  int rung_ = 0;

  // Fetch state: one outstanding segment at a time.
  bool fetch_outstanding_ = false;
  std::uint64_t fetch_target_bytes_ = 0;   // cumulative delivery target
  std::uint64_t delivered_bytes_ = 0;
  int fetch_rung_ = 0;

  double buffer_s_ = 0.0;       // seconds of downloaded, unplayed media
  double played_s_ = 0.0;
  double played_weighted_mbps_ = 0.0;  // integral of rung bitrate over play
  std::vector<int> fetched_rungs_;
  int quality_switches_ = 0;

  Time started_;
  Time first_play_;
  bool ever_played_ = false;
  Time last_tick_;
  // Per-rung seconds of media currently in the buffer, FIFO by fetch order.
  std::vector<int> buffer_rungs_;   // one entry per buffered segment
  double head_segment_left_s_ = 0.0;

  std::unique_ptr<sim::Timer> tick_timer_;
};

}  // namespace wgtt::apps
