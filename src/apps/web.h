// Web page load model for the paper's §5.4 web-browsing case study: the
// 2.1 MB eBay homepage fetched from a local server over one TCP connection;
// the metric is launch-to-fully-loaded time, with "infinity" when the
// transfer never completes during the drive (paper Table 5).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "util/units.h"

namespace wgtt::apps {

class WebPageLoad {
 public:
  explicit WebPageLoad(std::size_t page_bytes = 2'100'000)
      : page_bytes_(page_bytes) {}

  /// Call when the fetch begins.
  void begin(Time now) { begun_ = now; }

  /// Feed cumulative in-order received bytes; records completion time.
  void on_progress(std::uint64_t bytes_delivered, Time now) {
    if (!completed_ && bytes_delivered >= page_bytes_) completed_ = now;
  }

  [[nodiscard]] bool complete() const { return completed_.has_value(); }

  /// Load duration, or nullopt = the paper's "infinite" outcome.
  [[nodiscard]] std::optional<Time> load_time() const {
    if (!completed_) return std::nullopt;
    return *completed_ - begun_;
  }

  [[nodiscard]] std::size_t page_bytes() const { return page_bytes_; }

 private:
  std::size_t page_bytes_;
  Time begun_;
  std::optional<Time> completed_;
};

}  // namespace wgtt::apps
