// Video-conferencing model for the paper's §5.4 remote-conferencing case
// study: a real-time UDP video stream at a fixed frame rate; the receiver
// counts frames that arrive complete, per one-second window, yielding the
// fps CDF of Figure 24.
//
// Two built-in profiles mirror the paper's applications:
//  - Skype-like: 30 fps, high-resolution frames (~2.4 Mbit/s).
//  - Hangouts-like: 60 fps, reduced-resolution frames (~1.8 Mbit/s) — the
//    lower per-frame size is why the paper measures higher fps with it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "sim/scheduler.h"

namespace wgtt::apps {

struct ConferenceProfile {
  double fps = 30.0;
  std::size_t frame_bytes = 10'000;  // ~2.4 Mbit/s at 30 fps
  std::size_t packet_payload = 1200;
};

[[nodiscard]] ConferenceProfile skype_like();
[[nodiscard]] ConferenceProfile hangouts_like();

class ConferenceSource {
 public:
  using SendFn = std::function<void(net::Packet)>;

  ConferenceSource(sim::Scheduler& sched, SendFn send,
                   ConferenceProfile profile, net::ClientId client,
                   bool downlink);
  ~ConferenceSource();
  ConferenceSource(const ConferenceSource&) = delete;
  ConferenceSource& operator=(const ConferenceSource&) = delete;

  void start();
  void stop();
  [[nodiscard]] std::uint32_t frames_sent() const { return next_frame_; }
  [[nodiscard]] int packets_per_frame() const { return packets_per_frame_; }

 private:
  void emit_frame();

  sim::Scheduler& sched_;
  SendFn send_;
  ConferenceProfile profile_;
  net::ClientId client_;
  bool downlink_;
  int packets_per_frame_;
  std::uint32_t next_frame_ = 0;
  std::uint16_t next_ip_id_ = 1;
  bool running_ = false;
  std::unique_ptr<sim::Timer> frame_timer_;
};

class ConferenceSink {
 public:
  ConferenceSink(ConferenceProfile profile, int packets_per_frame);

  void on_packet(Time now, const net::Packet& p);

  /// Frames completed in each 1 s window of the run (the fps samples whose
  /// CDF the paper plots).
  [[nodiscard]] std::vector<double> fps_samples(Time horizon) const;
  [[nodiscard]] std::uint64_t frames_completed() const { return completions_.size(); }

 private:
  ConferenceProfile profile_;
  int packets_per_frame_;
  std::unordered_map<std::uint32_t, int> partial_;  // frame -> packets seen
  std::vector<Time> completions_;
};

}  // namespace wgtt::apps
