#include "apps/abr.h"

#include <algorithm>
#include <stdexcept>

namespace wgtt::apps {

AbrPlayer::AbrPlayer(sim::Scheduler& sched, Config config)
    : sched_(sched), config_(std::move(config)) {
  if (config_.ladder_mbps.empty()) {
    throw std::invalid_argument("ABR ladder must not be empty");
  }
  tick_timer_ = std::make_unique<sim::Timer>(sched_, [this] {
    tick();
    if (running_) tick_timer_->start(config_.tick);
  });
}

AbrPlayer::~AbrPlayer() { stop(); }

void AbrPlayer::start() {
  if (running_) return;
  running_ = true;
  state_ = State::kBuffering;
  started_ = sched_.now();
  last_tick_ = sched_.now();
  tick_timer_->start(config_.tick);
  maybe_fetch_next();
}

void AbrPlayer::stop() {
  running_ = false;
  tick_timer_->cancel();
}

std::uint64_t AbrPlayer::segment_bytes(int rung) const {
  const double mbps = config_.ladder_mbps[static_cast<std::size_t>(rung)];
  return static_cast<std::uint64_t>(mbps * 1e6 / 8.0 *
                                    config_.segment_duration.to_seconds());
}

int AbrPlayer::pick_rung() const {
  // Buffer-based: rung i unlocks at reservoir + i * cushion seconds.
  int rung = 0;
  for (int i = static_cast<int>(config_.ladder_mbps.size()) - 1; i > 0; --i) {
    if (buffer_s_ >= config_.reservoir_s + i * config_.cushion_per_rung_s) {
      rung = i;
      break;
    }
  }
  return rung;
}

void AbrPlayer::maybe_fetch_next() {
  if (!running_ || fetch_outstanding_ || !request_bytes) return;
  // Cap the buffer at ~30 s like real players.
  if (buffer_s_ > 30.0) return;
  const int rung = pick_rung();
  if (!fetched_rungs_.empty() && rung != fetched_rungs_.back()) {
    ++quality_switches_;
  }
  fetch_rung_ = rung;
  rung_ = rung;
  fetched_rungs_.push_back(rung);
  fetch_outstanding_ = true;
  fetch_target_bytes_ = delivered_bytes_ + segment_bytes(rung);
  request_bytes(segment_bytes(rung));
}

void AbrPlayer::on_progress(std::uint64_t total_bytes_delivered) {
  delivered_bytes_ = total_bytes_delivered;
  if (fetch_outstanding_ && delivered_bytes_ >= fetch_target_bytes_) {
    fetch_outstanding_ = false;
    buffer_rungs_.push_back(fetch_rung_);
    if (buffer_rungs_.size() == 1) {
      head_segment_left_s_ = config_.segment_duration.to_seconds();
    }
    buffer_s_ += config_.segment_duration.to_seconds();
    maybe_fetch_next();
  }
}

void AbrPlayer::tick() {
  const Time now = sched_.now();
  double dt = (now - last_tick_).to_seconds();
  last_tick_ = now;

  switch (state_) {
    case State::kIdle:
      break;
    case State::kBuffering:
    case State::kStalled:
      if (buffer_s_ >= config_.prebuffer.to_seconds()) {
        if (!ever_played_) {
          ever_played_ = true;
          first_play_ = now;
        }
        state_ = State::kPlaying;
      }
      break;
    case State::kPlaying: {
      // Consume media, tracking which rung is on screen.
      while (dt > 0.0 && !buffer_rungs_.empty()) {
        const double step = std::min(dt, head_segment_left_s_);
        const int rung = buffer_rungs_.front();
        played_s_ += step;
        played_weighted_mbps_ +=
            step * config_.ladder_mbps[static_cast<std::size_t>(rung)];
        buffer_s_ = std::max(0.0, buffer_s_ - step);
        head_segment_left_s_ -= step;
        dt -= step;
        if (head_segment_left_s_ <= 1e-12) {
          buffer_rungs_.erase(buffer_rungs_.begin());
          head_segment_left_s_ =
              buffer_rungs_.empty() ? 0.0 : config_.segment_duration.to_seconds();
        }
      }
      if (buffer_rungs_.empty()) state_ = State::kStalled;
      break;
    }
  }
  maybe_fetch_next();
}

AbrPlayer::Report AbrPlayer::report() const {
  Report r;
  r.segments_fetched = static_cast<int>(fetched_rungs_.size());
  r.quality_switches = quality_switches_;
  if (played_s_ > 0.0) r.mean_played_mbps = played_weighted_mbps_ / played_s_;
  int top = 0;
  for (int rung : fetched_rungs_) {
    if (rung == static_cast<int>(config_.ladder_mbps.size()) - 1) ++top;
  }
  if (!fetched_rungs_.empty()) {
    r.top_rung_fraction =
        static_cast<double>(top) / static_cast<double>(fetched_rungs_.size());
  }
  if (ever_played_) {
    const double watched = (sched_.now() - first_play_).to_seconds();
    r.rebuffer_ratio =
        watched > 0.0 ? std::clamp(1.0 - played_s_ / watched, 0.0, 1.0) : 0.0;
  } else {
    r.rebuffer_ratio =
        (sched_.now() - started_) > config_.prebuffer * 3 ? 1.0 : 0.0;
  }
  return r;
}

}  // namespace wgtt::apps
