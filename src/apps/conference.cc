#include "apps/conference.h"

namespace wgtt::apps {

ConferenceProfile skype_like() { return {30.0, 10'000, 1200}; }
ConferenceProfile hangouts_like() { return {60.0, 3'750, 1200}; }

ConferenceSource::ConferenceSource(sim::Scheduler& sched, SendFn send,
                                   ConferenceProfile profile,
                                   net::ClientId client, bool downlink)
    : sched_(sched),
      send_(std::move(send)),
      profile_(profile),
      client_(client),
      downlink_(downlink),
      packets_per_frame_(static_cast<int>(
          (profile.frame_bytes + profile.packet_payload - 1) /
          profile.packet_payload)) {
  frame_timer_ = std::make_unique<sim::Timer>(sched_, [this] {
    if (!running_) return;
    emit_frame();
    frame_timer_->start(Time::seconds(1.0 / profile_.fps));
  });
}

ConferenceSource::~ConferenceSource() { stop(); }

void ConferenceSource::start() {
  if (running_) return;
  running_ = true;
  frame_timer_->start(Time::zero());
}

void ConferenceSource::stop() {
  running_ = false;
  frame_timer_->cancel();
}

void ConferenceSource::emit_frame() {
  const std::uint32_t frame = next_frame_++;
  std::size_t remaining = profile_.frame_bytes;
  for (int i = 0; i < packets_per_frame_; ++i) {
    net::Packet p = net::make_packet();
    p.client = client_;
    p.downlink = downlink_;
    p.proto = net::Proto::kUdp;
    p.ip_id = next_ip_id_++;
    p.payload_bytes = std::min(remaining, profile_.packet_payload);
    remaining -= p.payload_bytes;
    // app_seq encodes (frame, packet-within-frame) for sink reassembly.
    p.app_seq = frame * static_cast<std::uint32_t>(packets_per_frame_) +
                static_cast<std::uint32_t>(i);
    p.created = sched_.now();
    send_(std::move(p));
  }
}

ConferenceSink::ConferenceSink(ConferenceProfile profile, int packets_per_frame)
    : profile_(profile), packets_per_frame_(packets_per_frame) {}

void ConferenceSink::on_packet(Time now, const net::Packet& p) {
  const std::uint32_t frame =
      p.app_seq / static_cast<std::uint32_t>(packets_per_frame_);
  int& seen = partial_[frame];
  ++seen;
  if (seen == packets_per_frame_) {
    completions_.push_back(now);
    partial_.erase(frame);
  }
}

std::vector<double> ConferenceSink::fps_samples(Time horizon) const {
  const auto seconds = static_cast<std::size_t>(
      std::max<std::int64_t>(1, horizon / Time::sec(1)));
  std::vector<double> out(seconds, 0.0);
  for (Time t : completions_) {
    const auto idx = static_cast<std::size_t>(t / Time::sec(1));
    if (idx < out.size()) out[idx] += 1.0;
  }
  return out;
}

}  // namespace wgtt::apps
