#include "apps/video.h"

#include <algorithm>

namespace wgtt::apps {

VideoPlayer::VideoPlayer(sim::Scheduler& sched, Config config)
    : sched_(sched), config_(config) {
  tick_timer_ = std::make_unique<sim::Timer>(sched_, [this] {
    tick();
    if (running_) tick_timer_->start(config_.tick);
  });
}

VideoPlayer::~VideoPlayer() { stop(); }

void VideoPlayer::start() {
  if (running_) return;
  running_ = true;
  state_ = State::kBuffering;
  started_ = sched_.now();
  last_tick_ = sched_.now();
  tick_timer_->start(config_.tick);
}

void VideoPlayer::stop() {
  if (!running_) return;
  if (state_ == State::kStalled) {
    stalled_total_ += sched_.now() - stall_began_;
  }
  running_ = false;
  tick_timer_->cancel();
}

void VideoPlayer::on_bytes(std::uint64_t bytes) { bytes_received_ += bytes; }

double VideoPlayer::buffered_media_seconds() const {
  const double received_media_s = static_cast<double>(bytes_received_) * 8.0 /
                                  (config_.video_bitrate_mbps * 1e6);
  return received_media_s - media_played_s_;
}

void VideoPlayer::tick() {
  const Time now = sched_.now();
  const double dt = (now - last_tick_).to_seconds();
  last_tick_ = now;

  switch (state_) {
    case State::kIdle:
      break;
    case State::kBuffering:
      if (buffered_media_seconds() >= config_.prebuffer.to_seconds()) {
        if (!ever_played_) {
          ever_played_ = true;
          first_play_ = now;
        }
        state_ = State::kPlaying;
      }
      break;
    case State::kPlaying:
      media_played_s_ += dt;
      if (buffered_media_seconds() <= 0.0) {
        // Ran dry: a rebuffer event begins.
        media_played_s_ = static_cast<double>(bytes_received_) * 8.0 /
                          (config_.video_bitrate_mbps * 1e6);
        state_ = State::kStalled;
        stall_began_ = now;
        ++rebuffer_events_;
      }
      break;
    case State::kStalled:
      if (buffered_media_seconds() >= config_.prebuffer.to_seconds()) {
        stalled_total_ += now - stall_began_;
        state_ = State::kPlaying;
      }
      break;
  }
}

VideoPlayer::Report VideoPlayer::report() const {
  Report r;
  r.rebuffer_events = rebuffer_events_;
  Time stalled = stalled_total_;
  if (state_ == State::kStalled) stalled += sched_.now() - stall_began_;
  r.stalled_total = stalled;
  r.watch_total = running_ || state_ != State::kIdle
                      ? sched_.now() - started_
                      : Time::zero();
  // Rebuffer ratio: the fraction of time since playback first started
  // during which no media was playing (the initial prebuffer is free). A
  // session that never escapes buffering despite ample time (the network
  // died) scores 1.
  if (ever_played_) {
    const double watched = (sched_.now() - first_play_).to_seconds();
    r.rebuffer_ratio =
        watched > 0.0
            ? std::clamp(1.0 - media_played_s_ / watched, 0.0, 1.0)
            : 0.0;
  } else {
    r.rebuffer_ratio =
        r.watch_total > config_.prebuffer * 3 ? 1.0 : 0.0;
  }
  return r;
}

}  // namespace wgtt::apps
