// Streaming-video player model for the paper's §5.4 "online video" case
// study: a VLC-style player consuming an HD stream delivered over TCP, with
// a 1500 ms pre-buffer and rebuffer accounting.
//
// Feed it the in-order byte arrivals from a TcpReceiver; it plays media at
// the nominal bitrate, stalls when the buffer runs dry, and resumes after
// re-accumulating the pre-buffer. The rebuffer ratio is stalled time over
// total watch time (the paper's Table 4 metric).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/scheduler.h"
#include "util/units.h"

namespace wgtt::apps {

class VideoPlayer {
 public:
  struct Config {
    double video_bitrate_mbps = 2.5;   // 1280x720 HD stream
    Time prebuffer = Time::millis(1500.0);
    Time tick = Time::ms(20);
  };

  VideoPlayer(sim::Scheduler& sched, Config config);
  ~VideoPlayer();
  VideoPlayer(const VideoPlayer&) = delete;
  VideoPlayer& operator=(const VideoPlayer&) = delete;

  /// New in-order media bytes arrived.
  void on_bytes(std::uint64_t bytes);

  void start();
  void stop();

  struct Report {
    int rebuffer_events = 0;
    Time stalled_total;
    Time watch_total;
    double rebuffer_ratio = 0.0;  // stalled / watch
  };
  [[nodiscard]] Report report() const;
  [[nodiscard]] bool playing() const { return state_ == State::kPlaying; }

 private:
  enum class State { kIdle, kBuffering, kPlaying, kStalled };

  void tick();
  [[nodiscard]] double buffered_media_seconds() const;

  sim::Scheduler& sched_;
  Config config_;
  State state_ = State::kIdle;
  std::uint64_t bytes_received_ = 0;
  double media_played_s_ = 0.0;
  Time started_;
  Time first_play_;
  bool ever_played_ = false;
  Time stall_began_;
  Time stalled_total_ = Time::zero();
  int rebuffer_events_ = 0;
  Time last_tick_;
  bool running_ = false;
  std::unique_ptr<sim::Timer> tick_timer_;
};

}  // namespace wgtt::apps
