// WebPageLoad is header-only; this TU anchors the library target.
#include "apps/web.h"
