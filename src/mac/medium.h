// The shared 2.4 GHz medium (channel 11 in the testbed).
//
// Responsibilities:
//  - carrier sense: when is the medium busy as heard at a given position?
//  - broadcast: a transmitted frame is offered to every radio in audible
//    range; each radio's owner decides decode success from its own channel.
//  - collision detection: a reception fails outright if another audible
//    transmission overlapped it in time at the listener.
//
// Audibility is geometric: transmissions are audible within
// `sense_range_m`. That is deliberately simple — carrier sense in the
// testbed is an energy threshold, and in a linear roadside deployment range
// is the dominant factor (it is what makes the paper's Figure 20 parallel
// vs opposing-direction contention difference appear).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "channel/geometry.h"
#include "mac/frame.h"
#include "sim/scheduler.h"

namespace wgtt::mac {

class Medium {
 public:
  struct Config {
    double sense_range_m = 120.0;
    /// Capture effect: a frame survives an overlap if its received power
    /// exceeds every overlapping frame by this margin (requires a power
    /// oracle; without one, any overlap is a collision).
    double capture_threshold_db = 5.0;
  };

  /// Large-scale received power (dBm) of a transmission from `tx` as heard
  /// at `at`. Wired by the scenario, which knows the link budgets; enables
  /// the capture effect (without it the paper's multi-AP block-ACK replies
  /// would collide at the client almost every time, which Table 3 shows
  /// does not happen on the real testbed).
  using PowerFn = std::function<double(RadioId tx, channel::Vec2 at)>;

  /// Receivers get the frame plus reception context.
  struct RxContext {
    bool collided = false;   // another audible transmission overlapped
  };
  using RxHandler = std::function<void(const Frame&, const RxContext&)>;
  using PositionFn = std::function<channel::Vec2()>;

  Medium(sim::Scheduler& sched, const Config& config);

  void set_power_oracle(PowerFn oracle) { power_ = std::move(oracle); }

  /// Optional interest filter (spatial interest management, DESIGN.md §9):
  /// given a transmit origin, appends the id of every radio that could
  /// possibly be within sense range — a SUPERSET of the audible set.
  /// Audibility is still checked at delivery time, so the filter only
  /// prunes deliveries that would have been discarded anyway; a pruned
  /// delivery fires no handler and draws no RNG, so a correct (superset)
  /// filter keeps seeded runs byte-identical while cutting the per-frame
  /// event fan-out from O(radios) to O(neighborhood).
  ///
  /// Contract: the filter must append each candidate at most once, in
  /// INCREASING RadioId order — delivery events for one frame share a
  /// timestamp, so their FIFO order (and hence every downstream RNG draw)
  /// is the order they were scheduled in, which the unfiltered path does
  /// in ascending radio id.
  using ReachFn = std::function<void(channel::Vec2 origin,
                                     std::vector<RadioId>& out)>;
  void set_reach_filter(ReachFn filter) { reach_ = std::move(filter); }

  /// Registers a radio; returns its id. `on_rx` fires at frame air-end for
  /// every audible frame (including frames addressed to others — that is
  /// monitor-mode overhearing). Radios start on channel 1.
  RadioId add_radio(PositionFn position, RxHandler on_rx);

  /// Unregisters (keeps ids stable; slot becomes inert).
  void remove_radio(RadioId id);

  /// Retunes a radio. Frames are only audible between same-channel radios;
  /// a radio on kNoChannel hears nothing (mid-retune blackout). Implements
  /// the paper's §7 multi-channel discussion: putting adjacent APs on
  /// different channels removes their mutual interference but also their
  /// ability to overhear the client (uplink diversity, BA forwarding, CSI).
  static constexpr int kNoChannel = -1;
  void set_radio_channel(RadioId id, int channel);
  [[nodiscard]] int radio_channel(RadioId id) const;

  /// Medium-busy horizon as heard at `id`'s position: the latest air_end of
  /// any in-flight audible transmission, or now if idle.
  [[nodiscard]] Time busy_until(RadioId id) const;

  /// Starts a transmission of `duration` from radio `from`. The frame's
  /// air_start/air_end are filled in; delivery events are scheduled for all
  /// audible radios. Returns the transmission uid.
  std::uint64_t transmit(RadioId from, Frame frame, Time duration);

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] std::uint64_t frames_sent() const { return next_tx_uid_ - 1; }
  [[nodiscard]] std::uint64_t collisions_observed() const { return collisions_; }

 private:
  struct Radio {
    PositionFn position;
    RxHandler on_rx;
    bool active = false;
    int channel = 1;
  };
  struct Flight {
    std::uint64_t uid;
    RadioId from;
    channel::Vec2 origin;
    Time start;
    Time end;
    int channel = 1;
  };

  [[nodiscard]] bool audible(const Flight& f, channel::Vec2 at,
                             int rx_channel) const;
  void prune(Time now);
  void deliver(std::size_t r, const Frame& frame);

  sim::Scheduler& sched_;
  Config config_;
  PowerFn power_;
  ReachFn reach_;
  std::vector<RadioId> reach_scratch_;
  std::vector<Radio> radios_;
  std::vector<Flight> in_flight_;
  std::uint64_t next_tx_uid_ = 1;
  std::uint64_t collisions_ = 0;
};

}  // namespace wgtt::mac
