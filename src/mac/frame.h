// Over-the-air frame types. The simulator broadcasts frames on the Medium;
// every registered radio in range decides independently (from its own
// channel realization) whether it decoded the frame — which is what makes
// overhearing-based designs (block-ACK forwarding, uplink diversity)
// expressible.
#pragma once

#include <cstdint>
#include <functional>
#include <variant>
#include <vector>

#include "net/packet.h"
#include "phy/mcs.h"
#include "util/units.h"

namespace wgtt::mac {

/// Radio-level address: node index in the Medium's registry.
enum class RadioId : std::uint32_t {};
inline constexpr RadioId kBroadcast{0xffffffff};
/// Shared thin-AP BSSID: all WGTT APs accept frames addressed here, so the
/// client sees the whole array as one AP (paper §4.3).
inline constexpr RadioId kBssidWgtt{0xfffffffe};

/// One MPDU inside an A-MPDU.
struct Mpdu {
  std::uint16_t seq = 0;     // 802.11 sequence number (12-bit space)
  net::Packet packet;
  int retries = 0;
};

struct DataFrame {
  std::vector<Mpdu> mpdus;   // size 1 = unaggregated
  phy::Mcs mcs = phy::Mcs::kMcs0;
  bool needs_block_ack = true;
};

struct BlockAckFrame {
  std::uint16_t start_seq = 0;
  std::uint64_t bitmap = 0;          // bit i => start_seq + i received
  std::uint64_t acked_tx_uid = 0;    // which DataFrame this responds to
};

struct BeaconFrame {};

/// Management exchange used by the Enhanced 802.11r baseline: each step of
/// auth/re-association is one frame; `step` distinguishes them.
struct MgmtFrame {
  enum class Kind : std::uint8_t { kAuthReq, kAuthResp, kAssocReq, kAssocResp } kind;
};

using FrameBody = std::variant<DataFrame, BlockAckFrame, BeaconFrame, MgmtFrame>;

struct Frame {
  std::uint64_t tx_uid = 0;   // unique per transmission attempt
  RadioId from{};
  RadioId to{};               // kBroadcast for beacons
  FrameBody body;
  Time air_start;
  Time air_end;
};

/// Total MPDU payload bytes in a data frame.
[[nodiscard]] inline std::size_t data_frame_bytes(const DataFrame& f) {
  std::size_t total = 0;
  for (const auto& m : f.mpdus) total += m.packet.air_bytes();
  return total;
}

}  // namespace wgtt::mac

template <>
struct std::hash<wgtt::mac::RadioId> {
  std::size_t operator()(wgtt::mac::RadioId id) const noexcept {
    return static_cast<std::size_t>(id);
  }
};
