#include "mac/wifi_mac.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "phy/esnr.h"

namespace wgtt::mac {

namespace {
/// Block ACKs are sent at the 24 Mbit/s legacy control rate (16-QAM 1/2):
/// fast, but fragile near cell edges — which is why the paper forwards
/// overheard BAs between APs (§3.2.1).
double ba_decode_probability(const channel::CsiMeasurement& csi) {
  const double esnr =
      phy::effective_snr_db(csi.subcarrier_snr_db, phy::Modulation::kQam16);
  return phy::mpdu_delivery_probability(esnr, phy::Mcs::kMcs3, 32);
}

/// Beacons and management frames go at the 1 Mbit/s basic rate: slow and
/// very robust (decodable well past the data-usable range).
double mgmt_decode_probability(const channel::CsiMeasurement& csi,
                               std::size_t bytes) {
  const double esnr =
      phy::effective_snr_db(csi.subcarrier_snr_db, phy::Modulation::kBpsk);
  return phy::mpdu_delivery_probability(esnr, phy::Mcs::kMcs0, bytes);
}
}  // namespace

WifiMac::WifiMac(sim::Scheduler& sched, Medium& medium, Rng rng, Config config)
    : sched_(sched), medium_(medium), rng_(rng), config_(config) {
  cw_ = config_.timings.cw_min;
  ba_timer_ = std::make_unique<sim::Timer>(sched_, [this] { on_ba_timeout(); },
                                           sim::EventCategory::kMacTx);
}

void WifiMac::set_metrics(obs::MetricsRegistry* registry,
                          std::string_view component) {
  if (registry == nullptr) {
    metrics_.reset();
    return;
  }
  const std::string prefix = std::string(component) + ".";
  auto counter = [&](std::string_view name) {
    return &registry->counter(prefix + std::string(name));
  };
  Metrics m;
  m.ampdus_sent = counter("ampdus_sent");
  m.retransmissions = counter("retransmissions");
  m.mpdus_delivered = counter("mpdus_delivered");
  m.mpdus_delivered_via_forwarded_ba =
      counter("mpdus_delivered_via_forwarded_ba");
  m.mpdus_dropped_retry = counter("mpdus_dropped_retry");
  m.enqueue_drops = counter("enqueue_drops");
  m.ba_timeouts = counter("ba_timeouts");
  m.ba_injected = counter("ba_injected");
  m.ba_heard = counter("ba_heard");
  m.ba_collisions = counter("ba_collisions");
  m.ampdu_mpdus =
      &registry->histogram(prefix + "ampdu_mpdus", 0.0, 33.0, 33);
  m.hw_queue_depth =
      &registry->histogram(prefix + "hw_queue_depth", 0.0, 160.0, 160);
  metrics_ = m;
}

RadioId WifiMac::attach(Medium::PositionFn position) {
  if (radio_ != RadioId{0xffffffff}) throw std::logic_error("WifiMac::attach called twice");
  radio_ = medium_.add_radio(
      std::move(position),
      [this](const Frame& f, const Medium::RxContext& ctx) { handle_rx(f, ctx); });
  return radio_;
}

void WifiMac::add_peer(RadioId peer) {
  if (peers_.contains(peer)) return;
  peers_.emplace(peer, Peer{});
  peer_order_.push_back(peer);
}

void WifiMac::remove_peer(RadioId peer) {
  peers_.erase(peer);
  std::erase(peer_order_, peer);
  if (rr_cursor_ >= peer_order_.size()) rr_cursor_ = 0;
}

void WifiMac::set_rate_controller(RadioId peer,
                                  std::unique_ptr<phy::RateController> rc) {
  peer_of(peer).rc = std::move(rc);
}

WifiMac::Peer& WifiMac::peer_of(RadioId id) {
  auto it = peers_.find(id);
  if (it == peers_.end()) throw std::logic_error("unknown peer");
  return it->second;
}

const WifiMac::Peer* WifiMac::find_peer(RadioId id) const {
  auto it = peers_.find(id);
  return it == peers_.end() ? nullptr : &it->second;
}

bool WifiMac::enqueue(RadioId peer, net::Packet packet,
                      std::optional<std::uint16_t> seq) {
  Peer& p = peer_of(peer);
  if (p.queue.size() >= config_.hw_queue_capacity) {
    ++p.stats.enqueue_drops;
    if (metrics_) metrics_->enqueue_drops->inc();
    return false;
  }
  TxMpdu t;
  t.mpdu.seq = seq.value_or(p.seq_counter.peek());
  if (!seq) p.seq_counter.next();
  t.mpdu.packet = std::move(packet);
  p.queue.push_back(std::move(t));
  ++p.stats.mpdus_enqueued;
  if (metrics_) {
    metrics_->hw_queue_depth->observe(static_cast<double>(p.queue.size()));
  }
  kick();
  return true;
}

std::size_t WifiMac::queue_depth(RadioId peer) const {
  const Peer* p = find_peer(peer);
  return p ? p->queue.size() : 0;
}

void WifiMac::flush_peer(RadioId peer) {
  Peer* p = peers_.contains(peer) ? &peer_of(peer) : nullptr;
  if (p == nullptr) return;
  // Keep MPDUs that are part of an in-flight transmission; they resolve at
  // BA/timeout. (In practice flush is called while idle.)
  if (state_ == TxState::kAwaitingBa && outstanding_.peer == peer) return;
  p->queue.clear();
}

bool WifiMac::peer_has_eligible(const Peer& p) const {
  if (p.queue.empty()) return false;
  const std::uint16_t window_start = p.queue.front().mpdu.seq;
  for (const auto& t : p.queue) {
    if (seq_sub(t.mpdu.seq, window_start) >= kBaWindow) break;
    return true;  // front of the window always transmittable
  }
  return false;
}

RadioId WifiMac::pick_next_data_peer() {
  const std::size_t n = peer_order_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = (rr_cursor_ + i) % n;
    const RadioId id = peer_order_[idx];
    if (peer_has_eligible(peer_of(id))) {
      rr_cursor_ = (idx + 1) % n;
      return id;
    }
  }
  return RadioId{0xffffffff};
}

void WifiMac::kick() {
  if (state_ != TxState::kIdle) return;
  const bool have_mgmt = !mgmt_queue_.empty();
  const bool have_data =
      !peer_order_.empty() && pick_next_data_peer() != RadioId{0xffffffff};
  if (!have_mgmt && !have_data) return;
  start_contention();
}

void WifiMac::start_contention() {
  state_ = TxState::kContending;
  const int slots = static_cast<int>(rng_.uniform_int(static_cast<std::uint64_t>(cw_) + 1));
  const Time idle_at = medium_.busy_until(radio_);
  const Time target =
      idle_at + config_.timings.difs + config_.timings.slot * slots;
  contention_event_ = sched_.schedule_at(target, [this] { attempt_transmit(); },
                                         sim::EventCategory::kMacTx);
}

void WifiMac::attempt_transmit() {
  if (state_ != TxState::kContending) return;
  if (medium_.busy_until(radio_) > sched_.now()) {
    // Medium became busy during our backoff: re-contend after it clears.
    start_contention();
    return;
  }
  if (!mgmt_queue_.empty()) {
    MgmtItem item = std::move(mgmt_queue_.front());
    mgmt_queue_.pop_front();
    transmit_mgmt(item);
    return;
  }
  const RadioId peer = pick_next_data_peer();
  if (peer == RadioId{0xffffffff}) {
    state_ = TxState::kIdle;
    return;
  }
  transmit_data(peer);
}

void WifiMac::transmit_data(RadioId peer_id) {
  Peer& p = peer_of(peer_id);

  // Rate selection (fresh CSI if the controller is ESNR-driven).
  phy::Mcs mcs = phy::Mcs::kMcs0;
  if (p.rc) {
    if (sampler_) {
      const channel::CsiMeasurement csi = sampler_(peer_id);
      p.rc->observe_csi(csi.subcarrier_snr_db);
    }
    mcs = p.rc->select();
  }

  // Aggregate from the front of the BA window.
  DataFrame df;
  df.mcs = mcs;
  std::size_t bytes = 0;
  const std::uint16_t window_start = p.queue.front().mpdu.seq;
  for (auto& t : p.queue) {
    if (static_cast<int>(df.mpdus.size()) >= config_.max_ampdu_mpdus) break;
    if (seq_sub(t.mpdu.seq, window_start) >= kBaWindow) break;
    const std::size_t sz = t.mpdu.packet.air_bytes();
    if (!df.mpdus.empty() && bytes + sz > config_.max_ampdu_bytes) break;
    if (!df.mpdus.empty() &&
        phy::ampdu_duration(mcs, bytes + sz) > config_.max_tx_airtime) {
      break;
    }
    bytes += sz;
    if (t.ever_sent) {
      ++t.mpdu.retries;
      ++p.stats.retransmissions;
      if (metrics_) metrics_->retransmissions->inc();
    }
    t.ever_sent = true;
    df.mpdus.push_back(t.mpdu);
  }
  if (df.mpdus.empty()) {
    state_ = TxState::kIdle;
    return;
  }

  const Time duration = phy::ampdu_duration(mcs, bytes);
  Frame frame;
  frame.to = tx_to_bssid_ ? kBssidWgtt : peer_id;
  frame.body = df;

  outstanding_ = Outstanding{};
  outstanding_.peer = peer_id;
  outstanding_.mcs = mcs;
  for (const auto& m : df.mpdus) outstanding_.seqs.push_back(m.seq);

  ++p.stats.ampdus_sent;
  if (metrics_) {
    metrics_->ampdus_sent->inc();
    metrics_->ampdu_mpdus->observe(static_cast<double>(df.mpdus.size()));
  }
  if (on_tx_attempt) on_tx_attempt(peer_id, mcs, static_cast<int>(df.mpdus.size()));

  outstanding_.tx_uid = medium_.transmit(radio_, std::move(frame), duration);
  state_ = TxState::kAwaitingBa;
  ba_timer_->start(duration + config_.timings.sifs + phy::block_ack_duration() +
                   config_.ba_response_jitter_max + config_.ba_timeout_margin);
}

void WifiMac::transmit_mgmt(const MgmtItem& item) {
  Frame frame;
  frame.to = item.peer;
  frame.body = item.body;
  const bool is_beacon = std::holds_alternative<BeaconFrame>(item.body);
  const Time duration =
      is_beacon ? phy::beacon_duration() : phy::mpdu_duration(phy::Mcs::kMcs0, 96);
  medium_.transmit(radio_, std::move(frame), duration);
  state_ = TxState::kTransmitting;
  sched_.schedule_in(duration, [this] {
    state_ = TxState::kIdle;
    kick();
  }, sim::EventCategory::kMacTx);
}

void WifiMac::complete_mpdu(Peer& p, RadioId peer_id,
                            std::deque<TxMpdu>::iterator it,
                            bool via_forwarded) {
  ++p.stats.mpdus_delivered;
  if (via_forwarded) ++p.stats.mpdus_delivered_via_forwarded_ba;
  if (metrics_) {
    metrics_->mpdus_delivered->inc();
    if (via_forwarded) metrics_->mpdus_delivered_via_forwarded_ba->inc();
  }
  p.stats.bytes_delivered += it->mpdu.packet.payload_bytes;
  // Erase before the callback: on_mpdu_acked handlers re-enter (the AP pump
  // enqueues the next packet), which would invalidate `it`.
  Mpdu acked = std::move(it->mpdu);
  p.queue.erase(it);
  if (on_mpdu_acked) on_mpdu_acked(peer_id, acked.seq, acked.packet);
}

void WifiMac::process_ba(RadioId peer_id, const BaBitmap& ba, bool forwarded) {
  Peer* pp = peers_.contains(peer_id) ? &peer_of(peer_id) : nullptr;
  if (pp == nullptr) return;
  Peer& p = *pp;

  // Complete every queued MPDU the bitmap acks. Index-based loop: deque
  // erase invalidates iterators.
  for (std::size_t i = 0; i < p.queue.size();) {
    if (p.queue[i].ever_sent && ba.acks(p.queue[i].mpdu.seq)) {
      complete_mpdu(p, peer_id, p.queue.begin() + static_cast<std::ptrdiff_t>(i),
                    forwarded);
    } else {
      ++i;
    }
  }

  if (!forwarded && state_ == TxState::kAwaitingBa && outstanding_.peer == peer_id) {
    // Live BA for the outstanding aggregate: resolve it. An MPDU counts as
    // delivered if this bitmap acks it OR an earlier-merged BA (another AP
    // hearing the same BSSID-addressed aggregate, or a forwarded BA)
    // already completed it — otherwise the rate controller under-counts
    // multi-AP receptions and spirals down the MCS table.
    ba_timer_->cancel();
    int delivered = 0;
    for (std::uint16_t s : outstanding_.seqs) {
      if (ba.acks(s)) {
        ++delivered;
        continue;
      }
      const bool still_queued =
          std::any_of(p.queue.begin(), p.queue.end(),
                      [s](const TxMpdu& t) { return t.mpdu.seq == s; });
      if (!still_queued) ++delivered;
    }
    if (p.rc) {
      p.rc->report(outstanding_.mcs, static_cast<int>(outstanding_.seqs.size()),
                   delivered);
    }
    // Unacked MPDUs stay queued; drop those past the retry limit.
    for (auto it = p.queue.begin(); it != p.queue.end();) {
      if (it->ever_sent && !ba.acks(it->mpdu.seq) &&
          it->mpdu.retries >= config_.retry_limit) {
        ++p.stats.mpdus_dropped_retry;
        if (metrics_) metrics_->mpdus_dropped_retry->inc();
        it = p.queue.erase(it);
      } else {
        ++it;
      }
    }
    cw_ = config_.timings.cw_min;
    state_ = TxState::kIdle;
    kick();
  }
}

void WifiMac::on_ba_timeout() {
  if (state_ != TxState::kAwaitingBa) return;
  Peer* pp = peers_.contains(outstanding_.peer) ? &peer_of(outstanding_.peer) : nullptr;
  if (pp != nullptr) {
    Peer& p = *pp;
    ++p.stats.ba_timeouts;
    if (metrics_) metrics_->ba_timeouts->inc();
    if (p.rc) {
      // MPDUs completed out-of-band (merged BAs) still count as delivered.
      int delivered = 0;
      for (std::uint16_t s : outstanding_.seqs) {
        const bool still_queued =
            std::any_of(p.queue.begin(), p.queue.end(),
                        [s](const TxMpdu& t) { return t.mpdu.seq == s; });
        if (!still_queued) ++delivered;
      }
      p.rc->report(outstanding_.mcs, static_cast<int>(outstanding_.seqs.size()),
                   delivered);
    }
    for (auto it = p.queue.begin(); it != p.queue.end();) {
      if (it->ever_sent && it->mpdu.retries >= config_.retry_limit) {
        ++p.stats.mpdus_dropped_retry;
        if (metrics_) metrics_->mpdus_dropped_retry->inc();
        it = p.queue.erase(it);
      } else {
        ++it;
      }
    }
  }
  cw_ = std::min(cw_ * 2 + 1, config_.timings.cw_max);
  state_ = TxState::kIdle;
  kick();
}

void WifiMac::inject_block_ack(RadioId client, const BaBitmap& ba) {
  // Out-of-band scoreboard update (ath_tx_complete_aggr path in the paper).
  if (metrics_) metrics_->ba_injected->inc();
  process_ba(client, ba, /*forwarded=*/true);
  // If we are currently awaiting this client's BA over the air, the live
  // path still runs; the forwarded copy only completes queued MPDUs early.
}

void WifiMac::send_block_ack(RadioId to, const BaBitmap& ba,
                             std::uint64_t acked_uid) {
  // BA is sent SIFS (plus hardware jitter) after the data frame, without
  // contention (HT-immediate block ack).
  const Time jitter = Time::ns(static_cast<std::int64_t>(
      rng_.uniform() *
      static_cast<double>(config_.ba_response_jitter_max.count_ns())));
  sched_.schedule_in(config_.timings.sifs + jitter, [this, to, ba, acked_uid] {
    Frame f;
    f.to = to;
    BlockAckFrame baf;
    baf.start_seq = ba.start_seq;
    baf.bitmap = ba.bits;
    baf.acked_tx_uid = acked_uid;
    f.body = baf;
    medium_.transmit(radio_, std::move(f), phy::block_ack_duration());
  }, sim::EventCategory::kMacTx);
}

void WifiMac::handle_rx(const Frame& frame, const Medium::RxContext& ctx) {
  if (!sampler_) return;
  const bool addressed =
      frame.to == radio_ || (config_.accept_bssid && frame.to == kBssidWgtt) ||
      frame.to == kBroadcast;
  if (!addressed) {
    // Skip uninteresting overheard traffic before the channel sampling.
    if (!on_heard) return;
    if (interest_ && !interest_(frame.from)) return;
  }
  const channel::CsiMeasurement csi = sampler_(frame.from);

  if (addressed && std::holds_alternative<BlockAckFrame>(frame.body)) {
    ++ba_heard_;
    if (ctx.collided) ++ba_collided_;
    if (metrics_) {
      metrics_->ba_heard->inc();
      if (ctx.collided) metrics_->ba_collisions->inc();
    }
  }

  if (ctx.collided) {
    if (on_heard) on_heard(frame, false, csi);
    return;
  }

  if (const auto* df = std::get_if<DataFrame>(&frame.body)) {
    // Per-MPDU decode draws from this receiver's own channel realization.
    const double esnr = phy::effective_snr_db(
        csi.subcarrier_snr_db, phy::mcs_info(df->mcs).modulation);
    std::vector<std::uint16_t> decoded;
    decoded.reserve(df->mpdus.size());
    for (const auto& m : df->mpdus) {
      const double pr = phy::mpdu_delivery_probability(
          esnr, df->mcs, m.packet.air_bytes());
      if (rng_.chance(pr)) decoded.push_back(m.seq);
    }

    if (on_heard) on_heard(frame, !decoded.empty(), csi);

    if (!addressed) return;

    if (!decoded.empty() && df->needs_block_ack) {
      const BaBitmap ba =
          BaBitmap::from_decoded(df->mpdus.front().seq, decoded);
      Peer* p = peers_.contains(frame.from) ? &peer_of(frame.from) : nullptr;
      if (p != nullptr) ++p->stats.ba_sent;
      send_block_ack(frame.from, ba, frame.tx_uid);
    }

    // Deliver new MPDUs upward through the duplicate filter.
    for (const auto& m : df->mpdus) {
      if (std::find(decoded.begin(), decoded.end(), m.seq) == decoded.end()) {
        continue;
      }
      RxDupFilter& filter = config_.shared_rx_scoreboard
                                ? shared_filter_
                                : per_sender_filter_[frame.from];
      // Attribute rx stats to the logical peer: in thin-AP mode data from
      // any AP belongs to the single BSSID peer.
      const RadioId stats_peer =
          config_.shared_rx_scoreboard && peers_.contains(kBssidWgtt)
              ? kBssidWgtt
              : frame.from;
      Peer* p = peers_.contains(stats_peer) ? &peer_of(stats_peer) : nullptr;
      if (filter.accept(m.seq)) {
        if (p != nullptr) ++p->stats.rx_mpdus_decoded;
        if (on_deliver) on_deliver(frame.from, m.packet);
      } else if (p != nullptr) {
        ++p->stats.rx_mpdus_duplicate;
      }
    }
    return;
  }

  if (const auto* baf = std::get_if<BlockAckFrame>(&frame.body)) {
    const bool ok = rng_.chance(ba_decode_probability(csi));
    if (on_heard) on_heard(frame, ok, csi);
    if (!ok || !addressed) return;
    BaBitmap ba;
    ba.start_seq = baf->start_seq;
    ba.bits = baf->bitmap;
    if (state_ == TxState::kAwaitingBa &&
        (baf->acked_tx_uid == outstanding_.tx_uid)) {
      process_ba(outstanding_.peer, ba, /*forwarded=*/false);
    } else {
      // Late or duplicate BA (e.g. a second AP acking the same uplink
      // aggregate): still merge any acks it carries. In thin-AP (BSSID)
      // mode every AP's BA refers to the single network peer.
      process_ba(tx_to_bssid_ ? kBssidWgtt : frame.from, ba, /*forwarded=*/true);
    }
    return;
  }

  if (std::holds_alternative<BeaconFrame>(frame.body)) {
    const bool ok = rng_.chance(mgmt_decode_probability(csi, 300));
    if (on_heard) on_heard(frame, ok, csi);
    return;
  }

  if (const auto* mf = std::get_if<MgmtFrame>(&frame.body)) {
    const bool ok = rng_.chance(mgmt_decode_probability(csi, 96));
    if (on_heard) on_heard(frame, ok, csi);
    if (ok && addressed && on_mgmt) on_mgmt(frame.from, *mf);
    return;
  }
}

void WifiMac::enable_beacons(Time interval) {
  beacons_enabled_ = true;
  beacon_interval_ = interval;
  if (!beacon_timer_) {
    beacon_timer_ = std::make_unique<sim::Timer>(
        sched_,
        [this] {
          if (!beacons_enabled_) return;
          mgmt_queue_.push_back(MgmtItem{kBroadcast, BeaconFrame{}});
          kick();
          beacon_timer_->start(beacon_interval_);
        },
        sim::EventCategory::kMacTx);
  }
  beacon_timer_->start(beacon_interval_);
}

void WifiMac::disable_beacons() {
  beacons_enabled_ = false;
  if (beacon_timer_) beacon_timer_->cancel();
}

void WifiMac::send_mgmt(RadioId peer, MgmtFrame frame) {
  mgmt_queue_.push_back(MgmtItem{peer, frame});
  kick();
}

const WifiMac::PeerStats& WifiMac::stats(RadioId peer) const {
  static const PeerStats kEmpty{};
  const Peer* p = find_peer(peer);
  return p ? p->stats : kEmpty;
}

WifiMac::PeerStats WifiMac::total_stats() const {
  PeerStats total;
  for (const auto& [id, p] : peers_) {
    total.mpdus_enqueued += p.stats.mpdus_enqueued;
    total.enqueue_drops += p.stats.enqueue_drops;
    total.mpdus_delivered += p.stats.mpdus_delivered;
    total.mpdus_delivered_via_forwarded_ba +=
        p.stats.mpdus_delivered_via_forwarded_ba;
    total.mpdus_dropped_retry += p.stats.mpdus_dropped_retry;
    total.retransmissions += p.stats.retransmissions;
    total.ampdus_sent += p.stats.ampdus_sent;
    total.ba_timeouts += p.stats.ba_timeouts;
    total.bytes_delivered += p.stats.bytes_delivered;
    total.rx_mpdus_decoded += p.stats.rx_mpdus_decoded;
    total.rx_mpdus_duplicate += p.stats.rx_mpdus_duplicate;
    total.ba_sent += p.stats.ba_sent;
  }
  return total;
}

}  // namespace wgtt::mac
