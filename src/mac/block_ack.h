// 802.11 sequence-number and block-acknowledgement machinery.
//
// Sequence numbers live in a 12-bit space; comparisons are modular. The
// compressed block ACK covers a 64-frame window from a start sequence. WGTT
// shares this state across APs: the controller-assigned per-client index is
// used directly as the 802.11 sequence number, so when the serving AP
// changes mid-flow the client's receive window continues seamlessly
// (paper §3.2.1).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace wgtt::mac {

inline constexpr std::uint16_t kSeqSpace = 1u << 12;  // 12-bit (m = 12)
inline constexpr int kBaWindow = 64;

/// a < b in the modular sequence space (within half the space).
[[nodiscard]] constexpr bool seq_less(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::uint16_t>((b - a) & (kSeqSpace - 1)) != 0 &&
         static_cast<std::uint16_t>((b - a) & (kSeqSpace - 1)) < kSeqSpace / 2;
}

/// Modular distance b - a.
[[nodiscard]] constexpr std::uint16_t seq_sub(std::uint16_t b, std::uint16_t a) {
  return static_cast<std::uint16_t>((b - a) & (kSeqSpace - 1));
}

[[nodiscard]] constexpr std::uint16_t seq_add(std::uint16_t a, std::uint16_t d) {
  return static_cast<std::uint16_t>((a + d) & (kSeqSpace - 1));
}

/// Monotone 12-bit sequence counter.
class SeqCounter {
 public:
  SeqCounter() = default;
  explicit SeqCounter(std::uint16_t start) : next_(start & (kSeqSpace - 1)) {}
  std::uint16_t next() {
    const std::uint16_t v = next_;
    next_ = seq_add(next_, 1);
    return v;
  }
  [[nodiscard]] std::uint16_t peek() const { return next_; }

 private:
  std::uint16_t next_ = 0;
};

/// Compressed BA bitmap helper.
struct BaBitmap {
  std::uint16_t start_seq = 0;
  std::uint64_t bits = 0;

  /// Builds from the sequence numbers decoded out of one A-MPDU. `base` is
  /// the A-MPDU's first sequence number (BA start even if that MPDU itself
  /// was lost).
  [[nodiscard]] static BaBitmap from_decoded(std::uint16_t base,
                                             std::span<const std::uint16_t> decoded);

  [[nodiscard]] bool acks(std::uint16_t seq) const;
  void set(std::uint16_t seq);
  [[nodiscard]] int count() const;
};

/// Receiver-side duplicate filter over a sliding sequence window. Returns
/// whether a sequence number is new (deliver) or already seen / stale
/// (drop). Handles the retransmit-after-lost-BA case where the data arrived
/// but the transmitter does not know it.
class RxDupFilter {
 public:
  RxDupFilter() = default;

  /// Marks `seq` seen; returns true if it was new.
  bool accept(std::uint16_t seq);

  void reset();

 private:
  static constexpr int kWindow = 256;  // > 2 BA windows of slack
  bool started_ = false;
  std::uint16_t newest_ = 0;
  // seen_[i] tracks newest_ - i.
  std::vector<bool> seen_ = std::vector<bool>(kWindow, false);
};

}  // namespace wgtt::mac
