#include "mac/medium.h"

#include <algorithm>
#include <stdexcept>

namespace wgtt::mac {

Medium::Medium(sim::Scheduler& sched, const Config& config)
    : sched_(sched), config_(config) {}

RadioId Medium::add_radio(PositionFn position, RxHandler on_rx) {
  radios_.push_back(Radio{std::move(position), std::move(on_rx), true, 1});
  return RadioId{static_cast<std::uint32_t>(radios_.size() - 1)};
}

void Medium::remove_radio(RadioId id) {
  const auto i = static_cast<std::size_t>(id);
  if (i < radios_.size()) radios_[i].active = false;
}

void Medium::set_radio_channel(RadioId id, int channel) {
  const auto i = static_cast<std::size_t>(id);
  if (i >= radios_.size()) throw std::out_of_range("unknown radio");
  radios_[i].channel = channel;
}

int Medium::radio_channel(RadioId id) const {
  const auto i = static_cast<std::size_t>(id);
  if (i >= radios_.size()) throw std::out_of_range("unknown radio");
  return radios_[i].channel;
}

bool Medium::audible(const Flight& f, channel::Vec2 at, int rx_channel) const {
  if (rx_channel == kNoChannel || f.channel != rx_channel) return false;
  return channel::distance(f.origin, at) <= config_.sense_range_m;
}

void Medium::prune(Time now) {
  std::erase_if(in_flight_, [now](const Flight& f) { return f.end < now; });
}

Time Medium::busy_until(RadioId id) const {
  const auto i = static_cast<std::size_t>(id);
  if (i >= radios_.size()) throw std::out_of_range("unknown radio");
  const channel::Vec2 pos = radios_[i].position();
  const int ch = radios_[i].channel;
  const Time now = sched_.now();
  Time horizon = now;
  for (const auto& f : in_flight_) {
    if (f.end > horizon && f.from != id && audible(f, pos, ch)) horizon = f.end;
  }
  return horizon;
}

std::uint64_t Medium::transmit(RadioId from, Frame frame, Time duration) {
  const auto from_idx = static_cast<std::size_t>(from);
  if (from_idx >= radios_.size()) throw std::out_of_range("unknown radio");
  prune(sched_.now());

  const Time start = sched_.now();
  const Time end = start + duration;
  frame.tx_uid = next_tx_uid_++;
  frame.from = from;
  frame.air_start = start;
  frame.air_end = end;

  const channel::Vec2 origin = radios_[from_idx].position();
  in_flight_.push_back(
      Flight{frame.tx_uid, from, origin, start, end, radios_[from_idx].channel});

  // Schedule reception at air end for every radio that could hear the
  // frame: every registered radio, or — with a reach filter wired — the
  // filter's superset of the audible set. Audibility and collision are
  // evaluated at delivery time, against the receiver position/channel then
  // (positions move metres per second; a frame lasts microseconds, so
  // end-time evaluation is accurate — and a mid-frame retune correctly
  // loses the frame).
  if (reach_) {
    reach_scratch_.clear();
    reach_(origin, reach_scratch_);
    for (const RadioId rid : reach_scratch_) {
      const auto r = static_cast<std::size_t>(rid);
      if (r == from_idx || r >= radios_.size() || !radios_[r].active) continue;
      sched_.schedule_at(end, [this, r, frame] { deliver(r, frame); },
                         sim::EventCategory::kMacRx);
    }
  } else {
    for (std::size_t r = 0; r < radios_.size(); ++r) {
      if (r == from_idx || !radios_[r].active) continue;
      sched_.schedule_at(end, [this, r, frame] { deliver(r, frame); },
                         sim::EventCategory::kMacRx);
    }
  }
  return frame.tx_uid;
}

void Medium::deliver(std::size_t r, const Frame& frame) {
  if (r >= radios_.size() || !radios_[r].active) return;
  const channel::Vec2 pos = radios_[r].position();
  const int ch = radios_[r].channel;
  // Find this flight again (it is pruned lazily, so it may linger).
  const Flight* self = nullptr;
  bool collided = false;
  for (const auto& f : in_flight_) {
    if (f.uid == frame.tx_uid) {
      self = &f;
      continue;
    }
  }
  if (self == nullptr || !audible(*self, pos, ch)) return;
  const double own_dbm = power_ ? power_(frame.from, pos) : 0.0;
  for (const auto& f : in_flight_) {
    if (f.uid == frame.tx_uid) continue;
    const bool overlaps = f.start < self->end && f.end > self->start;
    if (!overlaps || !audible(f, pos, ch)) continue;
    if (power_) {
      // Capture effect: the frame survives if it is decisively
      // stronger than the interferer at this listener.
      const double other_dbm = power_(f.from, pos);
      if (own_dbm >= other_dbm + config_.capture_threshold_db) continue;
    }
    collided = true;
    break;
  }
  if (collided) ++collisions_;
  radios_[r].on_rx(frame, RxContext{collided});
}

}  // namespace wgtt::mac
