#include "mac/block_ack.h"

#include <bit>

namespace wgtt::mac {

BaBitmap BaBitmap::from_decoded(std::uint16_t base,
                                std::span<const std::uint16_t> decoded) {
  BaBitmap ba;
  ba.start_seq = base & (kSeqSpace - 1);
  for (std::uint16_t s : decoded) ba.set(s);
  return ba;
}

bool BaBitmap::acks(std::uint16_t seq) const {
  const std::uint16_t off = seq_sub(seq, start_seq);
  if (off >= kBaWindow) return false;
  return (bits >> off) & 1ULL;
}

void BaBitmap::set(std::uint16_t seq) {
  const std::uint16_t off = seq_sub(seq, start_seq);
  if (off < kBaWindow) bits |= 1ULL << off;
}

int BaBitmap::count() const { return std::popcount(bits); }

bool RxDupFilter::accept(std::uint16_t seq) {
  seq &= kSeqSpace - 1;
  if (!started_) {
    started_ = true;
    newest_ = seq;
    std::fill(seen_.begin(), seen_.end(), false);
    seen_[0] = true;
    return true;
  }
  if (seq == newest_) return false;
  if (seq_less(newest_, seq)) {
    // Advance the window: shift history by the advance amount.
    const std::uint16_t adv = seq_sub(seq, newest_);
    if (adv >= kWindow) {
      std::fill(seen_.begin(), seen_.end(), false);
    } else {
      // seen_[i] refers to newest_ - i; new newest shifts indices up.
      for (int i = kWindow - 1; i >= 0; --i) {
        seen_[static_cast<std::size_t>(i)] =
            i >= adv ? seen_[static_cast<std::size_t>(i - adv)] : false;
      }
    }
    newest_ = seq;
    seen_[0] = true;
    return true;
  }
  // Behind the newest: inside the window -> dedup; far behind -> treat as
  // stale duplicate and drop (matches hardware behaviour after reordering).
  const std::uint16_t back = seq_sub(newest_, seq);
  if (back >= kWindow) return false;
  if (seen_[back]) return false;
  seen_[back] = true;
  return true;
}

void RxDupFilter::reset() {
  started_ = false;
  newest_ = 0;
  std::fill(seen_.begin(), seen_.end(), false);
}

}  // namespace wgtt::mac
