// 802.11n MAC entity: one radio on the shared Medium.
//
// Implements DCF contention (DIFS + binary-exponential backoff), A-MPDU
// aggregation out of a hardware transmit queue, compressed block ACKs with
// a 64-frame window, retransmission with per-MPDU retry limits, beaconing
// and bare management exchanges (for the Enhanced 802.11r baseline).
//
// Two WGTT-specific hooks, both motivated by the paper:
//  - a shared downlink sequence space: the controller's 12-bit per-client
//    index is used as the 802.11 sequence number, so a client's block-ACK
//    window survives AP switches (enqueue() takes an explicit seq);
//  - inject_block_ack(): block-ACK state learned over the backhaul (from an
//    AP that overheard the client's BA) is merged into the transmit
//    scoreboard, suppressing spurious retransmissions (§3.2.1).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "channel/link_channel.h"
#include "mac/block_ack.h"
#include "mac/frame.h"
#include "mac/medium.h"
#include "net/packet.h"
#include "obs/metrics.h"
#include "phy/airtime.h"
#include "phy/rate_control.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace wgtt::mac {

class WifiMac {
 public:
  struct Config {
    phy::PhyTimings timings{};
    int max_ampdu_mpdus = 32;
    std::size_t max_ampdu_bytes = 48'000;
    /// TXOP-style cap on one A-MPDU's airtime. Without it a low-MCS
    /// aggregate of 32 full MPDUs would occupy the medium for ~50 ms and
    /// starve feedback; real 802.11n bounds transmissions to a few ms.
    Time max_tx_airtime = Time::millis(4.0);
    int retry_limit = 7;
    std::size_t hw_queue_capacity = 128;  // NIC hardware queue (paper Fig. 7)
    Time ba_timeout_margin = Time::us(150);
    /// HT-immediate BA responders jitter their reply by a few microseconds
    /// (paper §5.3.2 observed this on the TP-Link hardware); it is what
    /// keeps the multi-AP uplink BA collision rate near zero (Table 3).
    Time ba_response_jitter_max = Time::us(45);
    /// Client in a WGTT network: one downlink sequence space across all
    /// APs sharing the BSSID.
    bool shared_rx_scoreboard = false;
    /// This radio accepts data frames addressed to the shared WGTT BSSID.
    bool accept_bssid = false;
  };

  struct PeerStats {
    std::uint64_t mpdus_enqueued = 0;
    std::uint64_t enqueue_drops = 0;        // hw queue full
    std::uint64_t mpdus_delivered = 0;      // acked by (any) BA
    std::uint64_t mpdus_delivered_via_forwarded_ba = 0;
    std::uint64_t mpdus_dropped_retry = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t ampdus_sent = 0;
    std::uint64_t ba_timeouts = 0;
    std::uint64_t bytes_delivered = 0;      // MPDU payload bytes acked
    std::uint64_t rx_mpdus_decoded = 0;
    std::uint64_t rx_mpdus_duplicate = 0;
    std::uint64_t ba_sent = 0;
  };

  /// Sampler for the channel between this radio and `peer`, at now. Wired
  /// by the owner, which knows the geometry. Used both for decode draws on
  /// reception and (transmit side) for ESNR-driven rate control.
  using SampleFn = std::function<channel::CsiMeasurement(RadioId peer)>;

  WifiMac(sim::Scheduler& sched, Medium& medium, Rng rng, Config config);

  /// Registers this MAC's radio on the medium. Must be called exactly once
  /// before any traffic.
  RadioId attach(Medium::PositionFn position);
  [[nodiscard]] RadioId radio() const { return radio_; }

  void set_channel_sampler(SampleFn sampler) { sampler_ = std::move(sampler); }

  /// Optional receive filter: frames from radios for which this returns
  /// false and that are not addressed to us are discarded before the
  /// (expensive) channel sampling — e.g. an AP ignores other APs' downlink.
  void set_interest_filter(std::function<bool(RadioId from)> f) {
    interest_ = std::move(f);
  }

  // --- peers -------------------------------------------------------------
  void add_peer(RadioId peer);
  [[nodiscard]] bool has_peer(RadioId peer) const { return peers_.contains(peer); }
  void remove_peer(RadioId peer);
  void set_rate_controller(RadioId peer, std::unique_ptr<phy::RateController> rc);

  // --- data path ----------------------------------------------------------
  /// Queues one packet for `peer`. If `seq` is given it becomes the 802.11
  /// sequence number (WGTT: the controller's cyclic-queue index); otherwise
  /// the per-peer counter assigns one. Returns false if the hardware queue
  /// is full.
  bool enqueue(RadioId peer, net::Packet packet,
               std::optional<std::uint16_t> seq = std::nullopt);

  /// MPDUs queued (unsent + awaiting ack) toward `peer`.
  [[nodiscard]] std::size_t queue_depth(RadioId peer) const;
  /// Drops all queued MPDUs toward `peer` (ablation hook).
  void flush_peer(RadioId peer);
  /// Address downlink/uplink data to the shared WGTT BSSID instead of the
  /// peer radio (client side of a thin-AP network).
  void set_tx_to_bssid(bool v) { tx_to_bssid_ = v; }

  // --- WGTT block-ACK forwarding hook --------------------------------------
  /// Merges a block ACK learned out-of-band (forwarded over the backhaul)
  /// into the scoreboard for `client`. MPDUs it acks that are still queued
  /// are completed without retransmission.
  void inject_block_ack(RadioId client, const BaBitmap& ba);

  // --- management / beacons (baseline) -------------------------------------
  void enable_beacons(Time interval);
  void disable_beacons();
  void send_mgmt(RadioId peer, MgmtFrame frame);

  // --- stats ---------------------------------------------------------------
  [[nodiscard]] const PeerStats& stats(RadioId peer) const;
  [[nodiscard]] PeerStats total_stats() const;
  /// Block-ACK frames addressed to this radio that arrived at all /
  /// arrived garbled by a collision (the paper's Table 3 numerator).
  [[nodiscard]] std::uint64_t ba_frames_heard() const { return ba_heard_; }
  [[nodiscard]] std::uint64_t ba_frames_collided() const { return ba_collided_; }

  /// Registers and starts recording `<component>.*` metrics (A-MPDU sizes,
  /// retransmissions, BA merges/collisions, hardware-queue depth). The
  /// component prefix separates roles sharing this class — AP radios report
  /// as "mac", client radios as "client_mac" — while radios of the same
  /// role aggregate into one series. nullptr detaches.
  void set_metrics(obs::MetricsRegistry* registry, std::string_view component);

  // --- upward callbacks ----------------------------------------------------
  /// A decoded, non-duplicate data MPDU addressed to this radio (or its
  /// BSSID).
  std::function<void(RadioId from, const net::Packet&)> on_deliver;
  /// Every audible frame, addressed or not, after the decode draw; `csi` is
  /// the measurement used (valid only during the call). Monitor-mode hook:
  /// CSI extraction and BA overhearing plug in here.
  std::function<void(const Frame&, bool decoded,
                     const channel::CsiMeasurement& csi)>
      on_heard;
  /// Decoded management frame addressed to this radio.
  std::function<void(RadioId from, MgmtFrame)> on_mgmt;
  /// Transmit-side completion: seq acked by the client (BA or forwarded BA).
  std::function<void(RadioId peer, std::uint16_t seq, const net::Packet&)>
      on_mpdu_acked;
  /// Fired per A-MPDU attempt with the bitrate used — feeds Figure 16.
  std::function<void(RadioId peer, phy::Mcs mcs, int mpdus)> on_tx_attempt;

 private:
  struct TxMpdu {
    Mpdu mpdu;
    bool ever_sent = false;
  };
  struct Peer {
    std::deque<TxMpdu> queue;  // seq order; front = window start
    std::unique_ptr<phy::RateController> rc;
    SeqCounter seq_counter;
    PeerStats stats;
  };
  struct Outstanding {
    std::uint64_t tx_uid = 0;
    RadioId peer{};
    std::vector<std::uint16_t> seqs;
    phy::Mcs mcs{};
  };
  struct MgmtItem {
    RadioId peer{};
    FrameBody body;
  };

  Peer& peer_of(RadioId id);
  const Peer* find_peer(RadioId id) const;

  void kick();
  void start_contention();
  void attempt_transmit();
  void transmit_data(RadioId peer_id);
  void transmit_mgmt(const MgmtItem& item);
  void on_ba_timeout();
  void process_ba(RadioId from, const BaBitmap& ba, bool forwarded);
  void handle_rx(const Frame& frame, const Medium::RxContext& ctx);
  void send_block_ack(RadioId to, const BaBitmap& ba, std::uint64_t acked_uid);
  [[nodiscard]] RadioId pick_next_data_peer();
  [[nodiscard]] bool peer_has_eligible(const Peer& p) const;
  void complete_mpdu(Peer& p, RadioId peer_id, std::deque<TxMpdu>::iterator it,
                     bool via_forwarded);

  sim::Scheduler& sched_;
  Medium& medium_;
  Rng rng_;
  Config config_;
  RadioId radio_{0xffffffff};
  SampleFn sampler_;
  std::function<bool(RadioId)> interest_;

  std::unordered_map<RadioId, Peer> peers_;
  std::vector<RadioId> peer_order_;   // round-robin
  std::size_t rr_cursor_ = 0;

  std::deque<MgmtItem> mgmt_queue_;
  bool tx_to_bssid_ = false;

  enum class TxState { kIdle, kContending, kAwaitingBa, kTransmitting };
  TxState state_ = TxState::kIdle;
  int cw_ = 15;
  Outstanding outstanding_;
  std::unique_ptr<sim::Timer> ba_timer_;
  sim::EventId contention_event_{};

  // Receive-side duplicate filtering: shared (WGTT client) or per-sender.
  RxDupFilter shared_filter_;
  std::unordered_map<RadioId, RxDupFilter> per_sender_filter_;

  bool beacons_enabled_ = false;
  Time beacon_interval_ = Time::ms(100);
  std::unique_ptr<sim::Timer> beacon_timer_;
  std::uint64_t ba_heard_ = 0;
  std::uint64_t ba_collided_ = 0;

  struct Metrics {
    obs::Counter* ampdus_sent;
    obs::Counter* retransmissions;
    obs::Counter* mpdus_delivered;
    obs::Counter* mpdus_delivered_via_forwarded_ba;
    obs::Counter* mpdus_dropped_retry;
    obs::Counter* enqueue_drops;
    obs::Counter* ba_timeouts;
    obs::Counter* ba_injected;  // backhaul-forwarded BA merges (§3.2.1)
    obs::Counter* ba_heard;
    obs::Counter* ba_collisions;
    obs::Histogram* ampdu_mpdus;     // MPDUs per A-MPDU attempt
    obs::Histogram* hw_queue_depth;  // depth after each enqueue
  };
  std::optional<Metrics> metrics_;
};

}  // namespace wgtt::mac
