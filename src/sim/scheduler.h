// Discrete-event simulation core.
//
// A Scheduler owns a virtual clock and a min-heap of (time, callback)
// events. Everything in the WGTT simulation — frame transmissions, backhaul
// deliveries, beacon timers, TCP retransmission timeouts, vehicle position
// updates — is an event on one Scheduler, which guarantees a single total
// order of actions and therefore exact reproducibility.
//
// Hot-path layout (DESIGN.md §8): the heap orders 24-byte POD keys
// (when, seq, slot) in a 4-ary array heap; the callbacks themselves live in
// a slab of move-only InlineCallback slots addressed by the key, so nothing
// heap-allocates for typical captures and nothing is copied on pop.
// Cancellation is O(1) and generation-stamped: an EventId encodes
// (slot, generation), cancel() disarms the slot if the generation still
// matches, and the stale heap key is discarded when it surfaces. The
// (when, seq) FIFO tie-break is a hard contract — every seeded run is
// byte-identical to the pre-rewrite engine.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/profiler.h"
#include "util/units.h"

namespace wgtt::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
/// Encodes (slot << 32 | generation); the default value 0 never names a
/// live event, so a default-constructed id is always safe to cancel.
enum class EventId : std::uint64_t {};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current virtual time. Monotonically non-decreasing.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (must be >= now()). `cat` is
  /// the profiler attribution label (a one-byte tag, free when no profiler
  /// is attached); untagged call sites land in kOther.
  EventId schedule_at(Time when, InlineCallback fn,
                      EventCategory cat = EventCategory::kOther);

  /// Schedules `fn` `delay` after now(). Negative delays clamp to now().
  EventId schedule_in(Time delay, InlineCallback fn,
                      EventCategory cat = EventCategory::kOther);

  /// Cancels a pending event in O(1), releasing its captures immediately.
  /// Cancelling an already-fired, already-cancelled, unknown, or
  /// default-constructed id is a no-op (timeout races make that the common
  /// case) — the generation stamp makes the check exact, so stale ids never
  /// leak memory or skew pending().
  void cancel(EventId id);

  /// Runs events until the queue is empty or the clock would pass `limit`;
  /// the clock ends at min(limit, last event time). Events scheduled exactly
  /// at `limit` fire.
  void run_until(Time limit);

  /// Runs events with `when` strictly below `limit`; events exactly at
  /// `limit` stay pending and the clock is NOT advanced past the last
  /// executed event. This is the parallel engine's window primitive
  /// (DESIGN.md §11): a domain executes [window start, window end) and an
  /// event at the window edge must wait — the next window's mailbox drain
  /// may still inject messages at that exact time ahead of it in (when,
  /// seq) order.
  void run_before(Time limit);

  /// Runs until no events remain.
  void run_all();

  /// Executes exactly one event if any is pending; returns whether one ran.
  bool step();

  /// Live (scheduled, not yet fired or cancelled) events.
  [[nodiscard]] std::size_t pending() const { return live_; }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Earliest pending event time, or Time::max() when the queue is empty.
  /// Non-const: stale keys of cancelled events surfacing at the top are
  /// dropped on the way (they carry no information). Intended for callers
  /// that want to skip idle virtual time (e.g. a window-skip reduction in a
  /// conservative parallel engine); today only tests exercise it.
  [[nodiscard]] Time next_event_time();

  /// Attaches (or, with nullptr, detaches) a wall-time profiler. While one
  /// is attached, step() takes ONE steady_clock read per event and charges
  /// the elapsed time since the previous read — heap pop, cancelled-key
  /// skips, the callback, and the run_until loop glue in between — to the
  /// event's category. Chaining timestamps this way (instead of bracketing
  /// each event with two reads) halves the measurement cost and makes the
  /// per-category totals sum to essentially all of run_until's wall time;
  /// the price is that inter-event engine overhead lands on the *next*
  /// event's category. Virtual time is untouched either way: profiling is
  /// pure observation and seeded runs stay deterministic.
  void set_profiler(EventProfiler* profiler) {
    profiler_ = profiler;
    if (profiler != nullptr) profile_mark_ = std::chrono::steady_clock::now();
  }
  [[nodiscard]] EventProfiler* profiler() const { return profiler_; }

 private:
  // POD heap key; callbacks live in slots_, addressed by `slot`.
  struct HeapEntry {
    Time when;
    std::uint64_t seq;   // tie-break: FIFO among same-time events
    std::uint32_t slot;  // index into slots_
  };
  struct Slot {
    InlineCallback fn;
    std::uint64_t seq = 0;          // seq of the currently armed event
    std::uint32_t generation = 0;   // bumped on every arm; id must match
    EventCategory cat = EventCategory::kOther;  // profiler attribution
    bool armed = false;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Removes heap_[0] (swap-with-last + sift) and recycles its slot.
  void pop_top();

  // 4-ary: one level shallower than binary per ~4x entries, and the child
  // scan stays within one cache line of 24-byte entries.
  static constexpr std::size_t kArity = 4;

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  EventProfiler* profiler_ = nullptr;
  /// Timestamp of the last profiled read; the next event is charged the
  /// delta from here. Reset on attach.
  std::chrono::steady_clock::time_point profile_mark_{};
};

/// One-shot restartable timer bound to a Scheduler. Used for the switching
/// protocol's 30 ms ack timeout and for TCP's RTO — both restart constantly,
/// so start() must not rebuild the user callback: `on_fire_` is constructed
/// once, and each start() schedules only an 8-byte trampoline (stored inline
/// in the scheduler slot, no allocation).
class Timer {
 public:
  /// `cat` tags every firing of this timer for the event profiler; the
  /// kTimer default fits transport/app timers, protocol timers pass their
  /// own layer's category.
  Timer(Scheduler& sched, InlineCallback on_fire,
        EventCategory cat = EventCategory::kTimer)
      : sched_(sched), on_fire_(std::move(on_fire)), cat_(cat) {}
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arms the timer `delay` from now; a previously armed instance is
  /// cancelled first.
  void start(Time delay);
  void cancel();
  [[nodiscard]] bool armed() const { return armed_; }

 private:
  struct Fire {  // trampoline: the only thing scheduled per start()
    Timer* timer;
    void operator()() const {
      timer->armed_ = false;
      timer->on_fire_();
    }
  };

  Scheduler& sched_;
  InlineCallback on_fire_;
  EventId pending_{};
  EventCategory cat_;
  bool armed_ = false;
};

}  // namespace wgtt::sim
