// Discrete-event simulation core.
//
// A Scheduler owns a virtual clock and a priority queue of (time, callback)
// events. Everything in the WGTT simulation — frame transmissions, backhaul
// deliveries, beacon timers, TCP retransmission timeouts, vehicle position
// updates — is an event on one Scheduler, which guarantees a single total
// order of actions and therefore exact reproducibility.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.h"

namespace wgtt::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
enum class EventId : std::uint64_t {};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current virtual time. Monotonically non-decreasing.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (must be >= now()).
  EventId schedule_at(Time when, std::function<void()> fn);

  /// Schedules `fn` `delay` after now(). Negative delays clamp to now().
  EventId schedule_in(Time delay, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown id is a
  /// no-op (timeout races make that the common case).
  void cancel(EventId id);

  /// Runs events until the queue is empty or the clock would pass `limit`;
  /// the clock ends at min(limit, last event time). Events scheduled exactly
  /// at `limit` fire.
  void run_until(Time limit);

  /// Runs until no events remain.
  void run_all();

  /// Executes exactly one event if any is pending; returns whether one ran.
  bool step();

  [[nodiscard]] std::size_t pending() const { return heap_.size() - cancelled_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
};

/// One-shot restartable timer bound to a Scheduler. Used for the switching
/// protocol's 30 ms ack timeout and for TCP's RTO.
class Timer {
 public:
  Timer(Scheduler& sched, std::function<void()> on_fire)
      : sched_(sched), on_fire_(std::move(on_fire)) {}
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arms the timer `delay` from now; a previously armed instance is
  /// cancelled first.
  void start(Time delay);
  void cancel();
  [[nodiscard]] bool armed() const { return armed_; }

 private:
  Scheduler& sched_;
  std::function<void()> on_fire_;
  EventId pending_{};
  bool armed_ = false;
};

}  // namespace wgtt::sim
