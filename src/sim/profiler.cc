#include "sim/profiler.h"

namespace wgtt::sim {

namespace {
constexpr double kLo = EventProfiler::kHistLoUs;
constexpr double kHi = EventProfiler::kHistHiUs;
constexpr std::size_t kN = EventProfiler::kHistBuckets;
}  // namespace

std::string_view to_string(EventCategory cat) {
  switch (cat) {
    case EventCategory::kChannel: return "channel";
    case EventCategory::kMacTx: return "mac_tx";
    case EventCategory::kMacRx: return "mac_rx";
    case EventCategory::kBackhaul: return "backhaul";
    case EventCategory::kControl: return "control";
    case EventCategory::kTimer: return "timer";
    case EventCategory::kOther: return "other";
  }
  return "?";
}

EventProfiler::EventProfiler()
    : hist_{{{kLo, kHi, kN}, {kLo, kHi, kN}, {kLo, kHi, kN}, {kLo, kHi, kN},
             {kLo, kHi, kN}, {kLo, kHi, kN}, {kLo, kHi, kN}}} {}

void EventProfiler::record(EventCategory cat, std::uint64_t ns) {
  const auto i = static_cast<std::size_t>(cat);
  ++cells_[i].events;
  cells_[i].ns += ns;
  hist_[i].observe(static_cast<double>(ns) / 1e3);
}

std::uint64_t EventProfiler::events(EventCategory cat) const {
  return cells_[static_cast<std::size_t>(cat)].events;
}

std::uint64_t EventProfiler::total_ns(EventCategory cat) const {
  return cells_[static_cast<std::size_t>(cat)].ns;
}

std::uint64_t EventProfiler::total_events() const {
  std::uint64_t n = 0;
  for (const Cell& c : cells_) n += c.events;
  return n;
}

std::uint64_t EventProfiler::total_ns() const {
  std::uint64_t n = 0;
  for (const Cell& c : cells_) n += c.ns;
  return n;
}

void EventProfiler::merge_from(const EventProfiler& other) {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].events += other.cells_[i].events;
    cells_[i].ns += other.cells_[i].ns;
    hist_[i].merge_from(other.hist_[i]);
  }
}

void EventProfiler::flush_to(obs::MetricsRegistry& registry) const {
  for (int i = 0; i < kNumEventCategories; ++i) {
    const auto cat = static_cast<EventCategory>(i);
    const std::string base = "sim.profile." + std::string(to_string(cat));
    registry.histogram(base + "_us", kLo, kHi, kN)
        .merge_from(hist_[static_cast<std::size_t>(i)]);
    registry.counter(base + "_ns").inc(cells_[static_cast<std::size_t>(i)].ns);
  }
  registry.counter("sim.profile.events").inc(total_events());
}

}  // namespace wgtt::sim
