// Move-only small-buffer-optimized callback for the event engine.
//
// The scheduler fires millions of events per simulated second; with
// std::function every schedule of a lambda whose captures exceed the
// library's tiny inline buffer (16 bytes on libstdc++) heap-allocates, and
// every pop used to *copy* the callable off priority_queue::top(). An
// InlineCallback stores any callable up to kInlineBytes (48) in-place —
// enough for every capture list in the simulator's hot paths (this-pointer
// timers, a handful of ids, a moved-in message) — and is move-only, so
// callbacks are never duplicated, only relocated. Oversized callables fall
// back to a single heap allocation, so correctness never depends on capture
// size.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace wgtt::sim {

class InlineCallback {
 public:
  /// Captures up to this many bytes live inline (no heap allocation).
  static constexpr std::size_t kInlineBytes = 48;

  InlineCallback() = default;

  /// Implicit so call sites keep passing lambdas directly to schedule_*.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.buf_, buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// Destroys the stored callable (releasing its captures) and empties.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  /// Whether a callable of type F would be stored without heap allocation.
  template <typename F>
  [[nodiscard]] static constexpr bool fits_inline() {
    using Fn = std::decay_t<F>;
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    // Move-constructs into dst and destroys src; noexcept by construction
    // (inline storage requires a nothrow-movable callable, heap storage
    // relocates a raw pointer).
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void* self);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* self) { (*static_cast<Fn*>(self))(); },
      [](void* src, void* dst) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* self) { static_cast<Fn*>(self)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* self) { (**static_cast<Fn**>(self))(); },
      [](void* src, void* dst) {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* self) { delete *static_cast<Fn**>(self); },
  };

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace wgtt::sim
