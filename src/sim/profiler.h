// Event-kind profiler for the scheduler hot path (DESIGN.md §6.4).
//
// Every scheduled event carries a one-byte EventCategory chosen at the
// call site (channel sampling, MAC tx/rx, backhaul delivery, control
// handling, timer fires). The tag itself is free and always present; the
// *measurement* is opt-in: only when an EventProfiler is attached does
// Scheduler::step() bracket each event with two steady_clock reads and
// attribute the wall time to the event's category. With no profiler
// attached the scheduler pays a single pointer compare per event and
// seeded runs stay byte-identical — profiling never perturbs virtual time,
// only observes wall time.
//
// The profile answers the question ROADMAP item 3 (SIMD channel kernel,
// parallel event loop) depends on: where do the ~0.5M events/sec actually
// go? bench_perf_engine prints the per-kind breakdown and run_drive
// exports it as `sim.profile.*` instruments in the metrics snapshot.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "obs/metrics.h"

namespace wgtt::sim {

/// Attribution label for one scheduled event. The named categories mirror
/// the simulator's layers; kOther is the default for call sites that carry
/// no tag (accuracy probes, scenario glue).
enum class EventCategory : std::uint8_t {
  kChannel,   // CSI sampling / probing / channel scan-and-follow
  kMacTx,     // AP-side transmission: contention, A-MPDU tx, pump, beacons
  kMacRx,     // medium delivery: airtime end, decode, on_heard fan-out
  kBackhaul,  // wired message delivery (controller <-> APs, server wire)
  kControl,   // switching protocol handling, liveness, fault scripts
  kTimer,     // transport timers: TCP RTO, UDP pacing, app ticks
  kOther,     // untagged (scenario glue, accuracy probes)
};

/// Total number of categories; values are contiguous from 0. Tests iterate
/// this to catch a new category left out of to_string.
inline constexpr int kNumEventCategories = 7;

[[nodiscard]] std::string_view to_string(EventCategory cat);

/// Wall-time accumulator per event category. Owned by whoever drives the
/// run (the bench harness); attached to a Scheduler via set_profiler().
///
/// Per-event durations land in fixed-layout histograms (microseconds,
/// 0-50 us in 0.25 us buckets — comfortably around the ~2 us median event)
/// so flush_to() can fold them into a MetricsRegistry bucket-for-bucket
/// via Histogram::merge_from.
class EventProfiler {
 public:
  /// Shared bucket layout of the per-category histograms and their
  /// registry counterparts (`sim.profile.<cat>_us`). merge_from is a no-op
  /// on mismatch, so both sides construct from these constants.
  static constexpr double kHistLoUs = 0.0;
  static constexpr double kHistHiUs = 50.0;
  static constexpr std::size_t kHistBuckets = 200;

  EventProfiler();

  /// Records one event of `cat` that took `ns` wall nanoseconds.
  void record(EventCategory cat, std::uint64_t ns);

  [[nodiscard]] std::uint64_t events(EventCategory cat) const;
  [[nodiscard]] std::uint64_t total_ns(EventCategory cat) const;
  [[nodiscard]] std::uint64_t total_events() const;
  [[nodiscard]] std::uint64_t total_ns() const;

  /// Per-event duration distribution (microseconds) for one category.
  [[nodiscard]] const obs::Histogram& histogram(EventCategory cat) const {
    return hist_[static_cast<std::size_t>(cat)];
  }

  /// Folds another profiler's cells and histograms into this one. The
  /// parallel engine attaches one profiler per domain scheduler (each
  /// scheduler is stepped by exactly one worker at a time, so recording
  /// stays single-writer) and merges them in ascending domain order after
  /// the run — the merged totals keep bench_perf_engine's coverage and
  /// overhead gates meaningful when the run used several threads.
  void merge_from(const EventProfiler& other);

  /// Exports the profile into `registry`:
  ///   sim.profile.<cat>_us   histogram  per-event wall microseconds
  ///   sim.profile.<cat>_ns   counter    total wall nanoseconds
  ///   sim.profile.events     counter    events profiled across categories
  /// Wall-clock values vary host to host, so callers only flush when the
  /// profiler was explicitly enabled (the record_perf rule).
  void flush_to(obs::MetricsRegistry& registry) const;

 private:
  struct Cell {
    std::uint64_t events = 0;
    std::uint64_t ns = 0;
  };
  std::array<Cell, kNumEventCategories> cells_{};
  // Histogram is neither copyable nor movable (atomics); the aggregate
  // initializer in the constructor builds each element in place (guaranteed
  // elision).
  std::array<obs::Histogram, kNumEventCategories> hist_;
};

}  // namespace wgtt::sim
