#include "sim/parallel.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cassert>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace wgtt::sim {

namespace {

/// Injection order across one domain's in-edges: arrival time, then source
/// domain, then per-edge sequence. Total because (src, seq) is unique per
/// entry — so the sort is deterministic even though std::sort is unstable.
bool injection_order(const CrossEvent& a, const CrossEvent& b) {
  if (a.when != b.when) return a.when < b.when;
  if (a.src != b.src) return a.src < b.src;
  return a.seq < b.seq;
}

}  // namespace

ParallelEngine::ParallelEngine(const Config& config) : config_(config) {
  if (config_.lookahead <= Time::zero()) {
    throw std::invalid_argument("ParallelEngine lookahead must be positive");
  }
  if (config_.workers < 1) config_.workers = 1;
}

int ParallelEngine::add_domain(Scheduler* sched, std::function<void()> enter,
                               std::function<void()> exit) {
  assert(!running_);
  Domain d;
  d.sched = sched;
  d.enter = std::move(enter);
  d.exit = std::move(exit);
  domains_.push_back(std::move(d));
  return static_cast<int>(domains_.size()) - 1;
}

int ParallelEngine::connect(int src_domain, int dst_domain) {
  assert(!running_);
  assert(src_domain != dst_domain && "a domain talks to itself for free");
  Edge e;
  e.src = src_domain;
  e.dst = dst_domain;
  e.box = std::make_unique<SpscMailbox>();
  edges_.push_back(std::move(e));
  const int id = static_cast<int>(edges_.size()) - 1;
  domains_[static_cast<std::size_t>(dst_domain)].in_edges.push_back(id);
  return id;
}

void ParallelEngine::post(int edge, Time when, InlineCallback fn,
                          EventCategory cat) {
  Edge& e = edges_[static_cast<std::size_t>(edge)];
  const Time bound =
      domains_[static_cast<std::size_t>(e.src)].sched->now() + config_.lookahead;
  if (when < bound) {
    // The lookahead bound is what makes the lockstep window safe; clamping
    // (rather than delivering early) keeps a buggy caller both safe and
    // deterministic — the clamp is a function of virtual state only.
    lookahead_violations_.fetch_add(1, std::memory_order_relaxed);
    when = bound;
  }
  CrossEvent ev;
  ev.when = when;
  ev.seq = e.next_seq++;
  ev.src = e.src;
  ev.cat = cat;
  ev.fn = std::move(fn);
  ++e.posted;
  e.box->push(std::move(ev));
}

void ParallelEngine::drain_and_inject(Domain& dom, Time bound_exclusive) {
  CrossEvent ev;
  for (const int e : dom.in_edges) {
    while (edges_[static_cast<std::size_t>(e)].box->pop(ev)) {
      dom.staged.push_back(std::move(ev));
    }
  }
  if (dom.staged.empty()) return;
  // Entries this window covers move to the front, sorted; the remainder
  // stays staged for a later window.
  auto ready_end =
      std::partition(dom.staged.begin(), dom.staged.end(),
                     [&](const CrossEvent& c) { return c.when < bound_exclusive; });
  std::sort(dom.staged.begin(), ready_end, injection_order);
  for (auto it = dom.staged.begin(); it != ready_end; ++it) {
    // schedule_at acquires the destination seq numbers in sorted order, so
    // the (when, seq) FIFO contract inside the domain reproduces the
    // (when, src, seq) mailbox order exactly.
    dom.sched->schedule_at(it->when, std::move(it->fn), it->cat);
    ++dom.injected;
  }
  dom.staged.erase(dom.staged.begin(), ready_end);
}

void ParallelEngine::process_domain(Domain& dom, Time window_end) {
  if (dom.enter) dom.enter();
  drain_and_inject(dom, window_end);
  dom.sched->run_before(window_end);
  if (dom.exit) dom.exit();
}

void ParallelEngine::finish_domain(Domain& dom, Time horizon) {
  // Events exactly at the horizon fire (run_until semantics). Anything
  // they post arrives at >= horizon + lookahead and stays staged for a
  // later run_until call.
  if (dom.enter) dom.enter();
  drain_and_inject(dom, horizon + Time::ns(1));
  dom.sched->run_until(horizon);
  if (dom.exit) dom.exit();
}

void ParallelEngine::run_until(Time horizon) {
  const int nd = num_domains();
  if (nd == 0) return;
  const Time lookahead = config_.lookahead;
  const int workers = std::clamp(config_.workers, 1, nd);
  workers_used_ = workers;
  running_ = true;

  if (workers == 1) {
    // Inline path: identical virtual-time structure (same windows, same
    // drain points, same injection order), no threads.
    try {
      while (window_start_ < horizon) {
        const Time window_end = std::min(window_start_ + lookahead, horizon);
        for (Domain& dom : domains_) process_domain(dom, window_end);
        window_start_ = window_end;
        ++rounds_;
      }
      for (Domain& dom : domains_) finish_domain(dom, horizon);
      ++rounds_;
    } catch (...) {
      running_ = false;
      throw;
    }
    running_ = false;
    return;
  }

  // Lockstep worker pool. One barrier per round: a message posted during
  // round k is drained at round k+1, and the lookahead bound guarantees it
  // cannot be due before window k+1 — so the pre-drain pushes are exactly
  // the ones the barrier has already made visible.
  std::barrier sync(workers, [this, horizon] () noexcept {
    window_start_ = std::min(window_start_ + config_.lookahead, horizon);
    ++rounds_;
  });
  // A domain event that throws must not leave pool threads parked at the
  // barrier with joinable std::thread destructors calling std::terminate.
  // The throwing worker records the (first) exception, flags failure, and
  // drops out of the barrier; survivors notice the flag at their next round
  // boundary and exit cleanly. The error is rethrown after the join.
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto work = [&](int w) {
    try {
      for (;;) {
        if (failed.load(std::memory_order_acquire)) {
          // Must still count as an arrival for the in-flight phase, or a
          // sibling already parked at this round's barrier waits forever.
          sync.arrive_and_drop();
          return;
        }
        const Time window_start = window_start_;  // stable between barriers
        if (window_start >= horizon) break;
        const Time window_end = std::min(window_start + lookahead, horizon);
        for (int d = w; d < nd; d += workers) {
          process_domain(domains_[static_cast<std::size_t>(d)], window_end);
        }
        sync.arrive_and_wait();
      }
      for (int d = w; d < nd; d += workers) {
        finish_domain(domains_[static_cast<std::size_t>(d)], horizon);
      }
      sync.arrive_and_wait();
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      failed.store(true, std::memory_order_release);
      sync.arrive_and_drop();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) pool.emplace_back(work, w);
  work(0);
  for (std::thread& t : pool) t.join();
  running_ = false;
  if (first_error) std::rethrow_exception(first_error);
}

std::uint64_t ParallelEngine::messages_delivered() const {
  std::uint64_t n = 0;
  for (const Domain& d : domains_) n += d.injected;
  return n;
}

}  // namespace wgtt::sim
