// Conservative parallel execution of one simulation run (DESIGN.md §11).
//
// The run is partitioned into domains, each owning a Scheduler (its own
// virtual clock, heap and seq counter). Domains interact only through
// cross-domain messages carried by per-edge SPSC mailboxes, and every such
// message is delayed by at least the engine's lookahead L — the modeled
// minimum cross-domain backhaul/wire latency. That bound makes lockstep
// windows safe: in round k every domain executes its events with
// when ∈ [W, W+L) independently; a message posted by an event at time
// τ ≥ W arrives at τ + (≥ L) ≥ W + L, i.e. never inside the window being
// executed, so no domain can ever receive a message "from the past".
// A barrier ends the round, each domain drains its in-edges, injects the
// messages the next window covers in sorted (when, src domain, seq) order,
// and the window advances by L.
//
// Determinism (the §11.5 proof obligations): window boundaries are pure
// virtual-time arithmetic; a message's (when, src, seq) triple is fixed at
// post time by the sender's deterministic execution; injection sorts by
// that triple before acquiring destination seq numbers; and each domain's
// scheduler executes single-threaded within a round. None of these depend
// on the worker count or on wall-clock interleaving, so `workers = N`
// produces byte-identical runs for every N — the 20-seed sweep in
// tests/parallel_test.cc holds the engine to that.
//
// The engine does not own the domain schedulers (the scenario layer does);
// it owns the mailboxes, the worker pool, and the round loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/scheduler.h"
#include "sim/spsc_mailbox.h"
#include "util/units.h"

namespace wgtt::sim {

class ParallelEngine {
 public:
  struct Config {
    /// Minimum virtual latency of every cross-domain message. Must be > 0;
    /// it is both the lockstep window width and the safety bound post()
    /// enforces.
    Time lookahead = Time::ms(1);
    /// Worker threads driving the domains (round-robin by domain id).
    /// This is a wall-clock knob only: the domain graph is fixed by the
    /// scenario, and results are byte-identical for every worker count.
    /// Clamped to [1, num_domains]; 1 runs inline on the calling thread.
    int workers = 1;
  };

  explicit ParallelEngine(const Config& config);

  /// Registers a domain. `sched` must outlive the engine and must not be
  /// run by anything else between run_until calls. `enter`/`exit` (both
  /// optional) bracket every execution window of this domain on whichever
  /// worker runs it — the hook for swapping in domain-scoped thread-local
  /// state (e.g. the packet-uid stream) so results stay independent of the
  /// worker count.
  int add_domain(Scheduler* sched, std::function<void()> enter = nullptr,
                 std::function<void()> exit = nullptr);

  /// Creates the directed edge src -> dst and returns its id. All edges
  /// must exist before the first run_until (the mailbox topology is part
  /// of the scenario, not of execution).
  int connect(int src_domain, int dst_domain);

  /// Posts a cross-domain message: run `fn` in the edge's destination
  /// domain at virtual time `when`. Must be called from code executing in
  /// the edge's source domain (that worker is the mailbox's single
  /// producer). `when` must be at least the source clock plus lookahead;
  /// a violating `when` is clamped up to that bound and counted in
  /// lookahead_violations() — the clamp depends only on virtual state, so
  /// even a buggy caller stays deterministic, but the sweep tests assert
  /// the count is zero.
  void post(int edge, Time when, InlineCallback fn,
            EventCategory cat = EventCategory::kBackhaul);

  /// Runs all domains to `horizon` (inclusive, matching
  /// Scheduler::run_until semantics). May be called repeatedly with
  /// increasing horizons; each call spins up the worker pool and joins it
  /// before returning.
  void run_until(Time horizon);

  [[nodiscard]] int num_domains() const {
    return static_cast<int>(domains_.size());
  }
  /// Worker count actually used by the last run_until (config clamped to
  /// the domain count).
  [[nodiscard]] int workers_used() const { return workers_used_; }
  /// Lockstep rounds executed (windows of width L, plus the final
  /// inclusive pass).
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  /// Cross-domain messages injected into destination schedulers.
  [[nodiscard]] std::uint64_t messages_delivered() const;
  /// post() calls that violated the lookahead bound (clamped; must be 0).
  [[nodiscard]] std::uint64_t lookahead_violations() const {
    return lookahead_violations_.load(std::memory_order_relaxed);
  }
  /// Total events executed by domain d's scheduler.
  [[nodiscard]] std::uint64_t domain_events(int d) const {
    return domains_[static_cast<std::size_t>(d)].sched->events_executed();
  }

 private:
  struct Edge {
    int src = 0;
    int dst = 0;
    std::uint64_t next_seq = 1;  // producer-side; single writer per round
    std::uint64_t posted = 0;
    std::unique_ptr<SpscMailbox> box;
  };
  struct Domain {
    Scheduler* sched = nullptr;
    std::function<void()> enter;         // optional window brackets
    std::function<void()> exit;
    std::vector<int> in_edges;           // edge ids, ascending creation order
    std::vector<CrossEvent> staged;      // drained but beyond current window
    std::uint64_t injected = 0;
  };

  /// One domain's share of a round: drain in-edges, inject everything with
  /// when < `window_end` in (when, src, seq) order, execute the window.
  void process_domain(Domain& dom, Time window_end);
  /// The final inclusive pass: inject `when <= horizon`, run_until(horizon).
  void finish_domain(Domain& dom, Time horizon);
  void drain_and_inject(Domain& dom, Time bound_exclusive);

  Config config_;
  std::vector<Domain> domains_;
  std::vector<Edge> edges_;
  Time window_start_ = Time::zero();
  int workers_used_ = 1;
  std::uint64_t rounds_ = 0;
  std::atomic<std::uint64_t> lookahead_violations_{0};
  bool running_ = false;
};

}  // namespace wgtt::sim
