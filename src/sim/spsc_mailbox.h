// Single-producer single-consumer mailbox for cross-domain events
// (DESIGN.md §11.3).
//
// The parallel engine gives every directed domain edge its own mailbox:
// the producer is whichever worker is executing the source domain's events
// this round (domains never migrate mid-round, so pushes are serial), and
// the consumer is the worker draining the destination domain at its next
// window start. That pairing makes the queue strictly SPSC, so the fast
// path is two relaxed-plus-release/acquire index updates and zero locks.
//
// Capacity is unbounded without breaking the lock-free contract: entries
// live in fixed-size chunks chained through an atomic `next` pointer. When
// the producer fills a chunk it allocates a larger one, links it with a
// release store, and never touches the old chunk again; the consumer
// follows `next` only after draining a chunk completely, then frees it.
// Per-round traffic is a handful of wire messages per edge, so chunk
// growth is a cold path — but correctness (and the determinism sweep)
// never depends on a tuning constant.
//
// FIFO contract: entries pop in push order. The producer stamps each entry
// with a per-edge sequence number before pushing; the consumer's injection
// sort uses (when, src domain, seq), so same-arrival messages on one edge
// keep their send order — the mailbox analogue of the scheduler's
// (when, seq) tie-break.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/profiler.h"
#include "util/units.h"

namespace wgtt::sim {

/// One cross-domain message: run `fn` in the destination domain at virtual
/// time `when`. `src` and `seq` are the deterministic injection tie-break.
struct CrossEvent {
  Time when;
  std::uint64_t seq = 0;
  int src = 0;  // source domain id (injection sort rank across in-edges)
  EventCategory cat = EventCategory::kBackhaul;
  InlineCallback fn;
};

class SpscMailbox {
 public:
  explicit SpscMailbox(std::size_t initial_capacity = 64)
      : head_chunk_(new Chunk(initial_capacity)), tail_chunk_(head_chunk_) {}

  SpscMailbox(const SpscMailbox&) = delete;
  SpscMailbox& operator=(const SpscMailbox&) = delete;

  ~SpscMailbox() {
    // Destruction happens after both sides quiesced (the engine joins its
    // workers first), so a plain walk is safe.
    Chunk* c = head_chunk_;
    while (c != nullptr) {
      Chunk* next = c->next.load(std::memory_order_relaxed);
      delete c;
      c = next;
    }
  }

  /// Producer side only. Entries become visible to pop() in push order.
  void push(CrossEvent ev) {
    Chunk* c = tail_chunk_;
    const std::size_t t = c->tail.load(std::memory_order_relaxed);
    if (t - c->head.load(std::memory_order_acquire) == c->entries.size()) {
      // Chunk full: move to a bigger one. The old chunk is now immutable
      // from the producer's side; the consumer frees it once drained.
      Chunk* grown = new Chunk(c->entries.size() * 2);
      grown->entries[0] = std::move(ev);
      grown->tail.store(1, std::memory_order_relaxed);
      c->next.store(grown, std::memory_order_release);
      tail_chunk_ = grown;
      return;
    }
    c->entries[t % c->entries.size()] = std::move(ev);
    c->tail.store(t + 1, std::memory_order_release);
  }

  /// Consumer side only. Returns false when no entry is currently visible.
  bool pop(CrossEvent& out) {
    Chunk* c = head_chunk_;
    for (;;) {
      const std::size_t h = c->head.load(std::memory_order_relaxed);
      if (h != c->tail.load(std::memory_order_acquire)) {
        out = std::move(c->entries[h % c->entries.size()]);
        c->head.store(h + 1, std::memory_order_release);
        return true;
      }
      // Chunk looks drained — but the tail read above may be stale: the
      // producer could have filled the remaining capacity AND linked a
      // successor since. Observing `next` alone is therefore not licence to
      // retire the chunk. Once `next` is non-null the producer never touches
      // this chunk again, so a tail re-read *after* the next-load is final:
      // only if head still matches it is the chunk truly empty.
      Chunk* next = c->next.load(std::memory_order_acquire);
      if (next == nullptr) return false;
      if (h != c->tail.load(std::memory_order_acquire)) continue;  // drain first
      head_chunk_ = next;
      delete c;
      c = next;
    }
  }

 private:
  struct Chunk {
    explicit Chunk(std::size_t capacity) : entries(capacity) {}
    std::vector<CrossEvent> entries;
    std::atomic<std::size_t> head{0};  // consumer cursor
    std::atomic<std::size_t> tail{0};  // producer cursor
    std::atomic<Chunk*> next{nullptr};
  };

  Chunk* head_chunk_;  // consumer's current chunk
  Chunk* tail_chunk_;  // producer's current chunk
};

}  // namespace wgtt::sim
