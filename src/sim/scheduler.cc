#include "sim/scheduler.h"

#include <stdexcept>
#include <utility>

namespace wgtt::sim {

EventId Scheduler::schedule_at(Time when, std::function<void()> fn) {
  if (when < now_) when = now_;
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq, std::move(fn)});
  return EventId{seq};
}

EventId Scheduler::schedule_in(Time delay, std::function<void()> fn) {
  if (delay < Time::zero()) delay = Time::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

void Scheduler::cancel(EventId id) {
  cancelled_.insert(static_cast<std::uint64_t>(id));
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    // priority_queue::top is const; the callback must be moved out, so copy
    // the entry and pop. std::function copy is cheap relative to event work.
    Entry e = heap_.top();
    heap_.pop();
    if (auto it = cancelled_.find(e.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = e.when;
    ++executed_;
    e.fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(Time limit) {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (cancelled_.contains(top.seq)) {
      cancelled_.erase(top.seq);
      heap_.pop();
      continue;
    }
    if (top.when > limit) break;
    step();
  }
  if (now_ < limit) now_ = limit;
}

void Scheduler::run_all() {
  while (step()) {
  }
}

void Timer::start(Time delay) {
  cancel();
  armed_ = true;
  pending_ = sched_.schedule_in(delay, [this] {
    armed_ = false;
    on_fire_();
  });
}

void Timer::cancel() {
  if (armed_) {
    sched_.cancel(pending_);
    armed_ = false;
  }
}

}  // namespace wgtt::sim
