#include "sim/scheduler.h"

#include <cassert>
#include <chrono>
#include <utility>

namespace wgtt::sim {

namespace {
constexpr std::uint64_t make_id(std::uint32_t slot, std::uint32_t generation) {
  return (static_cast<std::uint64_t>(slot) << 32) | generation;
}
}  // namespace

EventId Scheduler::schedule_at(Time when, InlineCallback fn,
                               EventCategory cat) {
  if (when < now_) when = now_;
  const std::uint64_t seq = next_seq_++;

  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.seq = seq;
  s.cat = cat;
  s.armed = true;
  // Generation stamps make stale EventIds inert. A slot would need 2^32
  // re-arms between an id's issue and its cancel for a false match; ids are
  // held for at most one timeout interval, so that is unreachable.
  const std::uint32_t gen = ++s.generation;
  ++live_;

  heap_.push_back(HeapEntry{when, seq, slot});
  sift_up(heap_.size() - 1);
  return EventId{make_id(slot, gen)};
}

EventId Scheduler::schedule_in(Time delay, InlineCallback fn,
                               EventCategory cat) {
  if (delay < Time::zero()) delay = Time::zero();
  return schedule_at(now_ + delay, std::move(fn), cat);
}

void Scheduler::cancel(EventId id) {
  const auto raw = static_cast<std::uint64_t>(id);
  const auto slot = static_cast<std::uint32_t>(raw >> 32);
  const auto gen = static_cast<std::uint32_t>(raw);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (!s.armed || s.generation != gen) return;  // fired, cancelled, or stale
  s.armed = false;
  s.fn.reset();  // release captures now; the heap key is dropped lazily
  --live_;
}

bool Scheduler::step() {
  // Profiled path: one steady_clock read per event, charged as the delta
  // from profile_mark_ (stamped at attach and advanced per event). Covers
  // heap pop, cancelled-key skips, the callback, and loop glue since the
  // previous event; zero clock reads when no profiler is attached.
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    pop_top();
    Slot& s = slots_[top.slot];
    if (!s.armed) continue;  // cancelled; slot already recycled by pop_top
    assert(s.seq == top.seq && "slot re-armed while its heap key was live");
    // Move the callback out before invoking: the event may schedule (growing
    // slots_) or cancel, so the slot must be fully released first.
    InlineCallback fn = std::move(s.fn);
    const EventCategory cat = s.cat;
    s.armed = false;
    --live_;
    now_ = top.when;
    ++executed_;
    fn();
    if (profiler_ != nullptr) {
      const auto end = std::chrono::steady_clock::now();
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          end - profile_mark_)
                          .count();
      profile_mark_ = end;
      profiler_->record(cat, static_cast<std::uint64_t>(ns));
    }
    return true;
  }
  return false;
}

void Scheduler::run_until(Time limit) {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (!slots_[top.slot].armed) {  // cancelled: drop the stale key
      pop_top();
      continue;
    }
    if (top.when > limit) break;
    step();
  }
  if (now_ < limit) now_ = limit;
}

void Scheduler::run_before(Time limit) {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (!slots_[top.slot].armed) {  // cancelled: drop the stale key
      pop_top();
      continue;
    }
    if (top.when >= limit) break;
    step();
  }
  // The clock deliberately stays at the last executed event: a later window
  // may inject mailbox events anywhere in [now, its window end), and
  // schedule_at must not clamp them forward.
}

Time Scheduler::next_event_time() {
  while (!heap_.empty() && !slots_[heap_.front().slot].armed) pop_top();
  return heap_.empty() ? Time::max() : heap_.front().when;
}

void Scheduler::run_all() {
  while (step()) {
  }
}

void Scheduler::pop_top() {
  free_slots_.push_back(heap_.front().slot);
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Scheduler::sift_up(std::size_t i) {
  const HeapEntry moving = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(moving, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = moving;
}

void Scheduler::sift_down(std::size_t i) {
  const HeapEntry moving = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + kArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], moving)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moving;
}

void Timer::start(Time delay) {
  cancel();
  armed_ = true;
  pending_ = sched_.schedule_in(delay, Fire{this}, cat_);
}

void Timer::cancel() {
  if (armed_) {
    sched_.cancel(pending_);
    armed_ = false;
  }
}

}  // namespace wgtt::sim
