// Client mobility models. The testbed road runs along x; vehicles drive at
// a constant speed in either direction, in one of two lanes. The paper's
// multi-client scenarios (Figure 19) are built from these: following
// (same lane, 3 m spacing), parallel (adjacent lanes, same x), opposing
// (opposite directions).
#pragma once

#include <memory>

#include "channel/geometry.h"
#include "util/units.h"

namespace wgtt::mobility {

class Trajectory {
 public:
  virtual ~Trajectory() = default;
  [[nodiscard]] virtual channel::Vec2 position(Time t) const = 0;
  [[nodiscard]] virtual double speed_mps(Time t) const = 0;
};

/// Parked client (the "static" bars of Figure 13).
class StaticPosition final : public Trajectory {
 public:
  explicit StaticPosition(channel::Vec2 pos) : pos_(pos) {}
  [[nodiscard]] channel::Vec2 position(Time) const override { return pos_; }
  [[nodiscard]] double speed_mps(Time) const override { return 0.0; }

 private:
  channel::Vec2 pos_;
};

/// Constant-velocity drive along the road from a start position.
class LineDrive final : public Trajectory {
 public:
  /// speed_mps > 0 drives toward +x, < 0 toward -x. `lane_y` is the lane's
  /// perpendicular offset from the road centerline.
  LineDrive(double start_x, double lane_y, double speed_mps,
            Time depart = Time::zero());

  [[nodiscard]] channel::Vec2 position(Time t) const override;
  [[nodiscard]] double speed_mps(Time t) const override;

  /// Time at which the vehicle crosses road coordinate `x` (for aligning
  /// measurement windows with the AP array).
  [[nodiscard]] Time time_at_x(double x) const;

 private:
  double start_x_;
  double lane_y_;
  double speed_;
  Time depart_;
};

/// Convenience constructor from the paper's mph figures.
[[nodiscard]] std::unique_ptr<LineDrive> drive_mph(double start_x, double lane_y,
                                                   double mph,
                                                   Time depart = Time::zero());

}  // namespace wgtt::mobility
