#include "mobility/trajectory.h"

namespace wgtt::mobility {

LineDrive::LineDrive(double start_x, double lane_y, double speed_mps,
                     Time depart)
    : start_x_(start_x), lane_y_(lane_y), speed_(speed_mps), depart_(depart) {}

channel::Vec2 LineDrive::position(Time t) const {
  const double elapsed = (t - depart_).to_seconds();
  if (elapsed <= 0.0) return {start_x_, lane_y_};
  return {start_x_ + speed_ * elapsed, lane_y_};
}

double LineDrive::speed_mps(Time t) const {
  return t < depart_ ? 0.0 : std::abs(speed_);
}

Time LineDrive::time_at_x(double x) const {
  if (speed_ == 0.0) return Time::max();
  const double dt = (x - start_x_) / speed_;
  if (dt < 0.0) return Time::zero();
  return depart_ + Time::seconds(dt);
}

std::unique_ptr<LineDrive> drive_mph(double start_x, double lane_y, double mph,
                                     Time depart) {
  return std::make_unique<LineDrive>(start_x, lane_y, mph_to_mps(mph), depart);
}

}  // namespace wgtt::mobility
