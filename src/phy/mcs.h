// 802.11n single-spatial-stream MCS table (20 MHz), matching the testbed
// hardware: the splitter-combined parabolic antenna yields one spatial
// stream (paper §4.2 footnote 6).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace wgtt::phy {

enum class Modulation : std::uint8_t { kBpsk, kQpsk, kQam16, kQam64 };

[[nodiscard]] std::string_view to_string(Modulation m);

/// Bits per subcarrier per symbol.
[[nodiscard]] int bits_per_symbol(Modulation m);

enum class Mcs : std::uint8_t {
  kMcs0 = 0,  // BPSK 1/2
  kMcs1,      // QPSK 1/2
  kMcs2,      // QPSK 3/4
  kMcs3,      // 16-QAM 1/2
  kMcs4,      // 16-QAM 3/4
  kMcs5,      // 64-QAM 2/3
  kMcs6,      // 64-QAM 3/4
  kMcs7,      // 64-QAM 5/6
};

inline constexpr int kNumMcs = 8;

struct McsInfo {
  Mcs index;
  Modulation modulation;
  double coding_rate;
  double data_rate_mbps;        // short guard interval (matches the paper's
                                // "around 70 Mbit/s" top bit rate, MCS7 = 72.2)
  /// Minimum effective SNR (dB) for ~10% PER on a 1500 B MPDU, per the
  /// ESNR literature (Halperin et al.) receiver sensitivity ladder.
  double min_esnr_db;
};

[[nodiscard]] const McsInfo& mcs_info(Mcs mcs);
[[nodiscard]] const std::array<McsInfo, kNumMcs>& all_mcs();

/// Highest MCS whose min ESNR is <= esnr_db - margin_db; MCS0 if none.
[[nodiscard]] Mcs highest_mcs_for_esnr(double esnr_db, double margin_db = 0.0);

}  // namespace wgtt::phy
