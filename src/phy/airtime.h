// 802.11n airtime accounting (2.4 GHz, HT-mixed format, 20 MHz).
// The MAC charges the shared medium with these durations; they set the
// ratio of useful data time to fixed overhead that makes frame aggregation
// matter (paper §1: ~20 ms / ~100-packet driver queues exist to feed
// aggregation).
#pragma once

#include <cstddef>

#include "phy/mcs.h"
#include "util/units.h"

namespace wgtt::phy {

struct PhyTimings {
  Time sifs = Time::us(10);
  Time difs = Time::us(28);          // DIFS = SIFS + 2 * slot
  Time slot = Time::us(9);
  Time ht_preamble = Time::us(36);   // L-STF/LTF/SIG + HT-SIG/STF/LTF
  Time legacy_preamble = Time::us(20);
  double control_rate_mbps = 24.0;   // rate for ACK / Block ACK / beacons
  int cw_min = 15;
  int cw_max = 1023;
};

[[nodiscard]] const PhyTimings& default_timings();

/// Duration of an A-MPDU carrying `total_bytes` of MPDU payload (including
/// per-MPDU delimiters/padding, which we fold into a 4% overhead) at `mcs`.
[[nodiscard]] Time ampdu_duration(Mcs mcs, std::size_t total_bytes);

/// Single (non-aggregated) data MPDU duration.
[[nodiscard]] Time mpdu_duration(Mcs mcs, std::size_t bytes);

/// Compressed Block ACK frame (32 B at the control rate) + preamble.
[[nodiscard]] Time block_ack_duration();

/// Legacy ACK (14 B at the control rate) + preamble.
[[nodiscard]] Time ack_duration();

/// Beacon frame duration (~300 B management frame at the control rate).
[[nodiscard]] Time beacon_duration();

/// Complete data exchange: DIFS + backoff(slots) + A-MPDU + SIFS + BA.
[[nodiscard]] Time txop_duration(Mcs mcs, std::size_t total_bytes,
                                 int backoff_slots);

}  // namespace wgtt::phy
