#include "phy/rate_control.h"

#include <algorithm>
#include <array>

namespace wgtt::phy {

MinstrelLite::MinstrelLite(const Config& config, Rng rng)
    : config_(config), rng_(rng) {
  success_.fill(config_.initial_success);
}

Mcs MinstrelLite::select() {
  if (rng_.chance(config_.sample_fraction)) {
    return static_cast<Mcs>(rng_.uniform_int(kNumMcs));
  }
  double best_tput = -1.0;
  Mcs best = Mcs::kMcs0;
  for (const auto& info : all_mcs()) {
    const double tput =
        info.data_rate_mbps * success_[static_cast<std::size_t>(info.index)];
    if (tput > best_tput) {
      best_tput = tput;
      best = info.index;
    }
  }
  return best;
}

void MinstrelLite::report(Mcs used, int attempted, int delivered) {
  if (attempted <= 0) return;
  const double rate = static_cast<double>(delivered) / attempted;
  double& s = success_[static_cast<std::size_t>(used)];
  s = config_.ewma_alpha * rate + (1.0 - config_.ewma_alpha) * s;
}

void MinstrelLite::observe_csi(std::span<const double>) {}

double MinstrelLite::success_estimate(Mcs mcs) const {
  return success_[static_cast<std::size_t>(mcs)];
}

EsnrRateSelector::EsnrRateSelector(std::size_t reference_mpdu_bytes,
                                   double margin_db)
    : reference_bytes_(reference_mpdu_bytes), margin_db_(margin_db) {}

Mcs EsnrRateSelector::select() { return current_; }

void EsnrRateSelector::report(Mcs used, int attempted, int delivered) {
  if (attempted <= 0) return;
  // Track recent failure rate to add margin when CSI is stale: if the last
  // few aggregates mostly failed, retreat one MCS until fresh CSI arrives.
  failure_backoff_.add(1.0 - static_cast<double>(delivered) / attempted);
  if (failure_backoff_.value() > 0.6 && used == current_ &&
      current_ != Mcs::kMcs0) {
    current_ = static_cast<Mcs>(static_cast<int>(current_) - 1);
  }
}

void EsnrRateSelector::observe_csi(std::span<const double> subcarrier_snr_db) {
  // Derate the CSI by the staleness margin, then pick the expected-goodput
  // maximizer. CSI is at most kNumSubcarriers wide, so the derated copy
  // lives in fixed scratch — this runs per received frame and must not
  // allocate.
  std::array<double, kNumSubcarriers> scratch;
  const std::size_t n = std::min(subcarrier_snr_db.size(), scratch.size());
  for (std::size_t i = 0; i < n; ++i) {
    scratch[i] = subcarrier_snr_db[i] - margin_db_;
  }
  const std::span<const double> derated(scratch.data(), n);
  double best_goodput = -1.0;
  Mcs best = Mcs::kMcs0;
  for (const auto& info : all_mcs()) {
    const double g =
        expected_goodput_mbps(derated, info.index, reference_bytes_);
    if (g > best_goodput) {
      best_goodput = g;
      best = info.index;
    }
  }
  current_ = best;
  failure_backoff_.reset();
}

}  // namespace wgtt::phy
