// Transmit rate control. The testbed keeps the NIC's default controller
// (paper §4: "without modification of the default rate control algorithm"),
// a Minstrel-style statistics sampler; we provide that, plus a CSI-driven
// selector used for ablations ("better packet switching decisions, instead
// of physical-layer bit rate adaptation, are responsible for most of
// WGTT's gain" — Table 2 discussion).
#pragma once

#include <array>
#include <span>

#include "phy/esnr.h"
#include "phy/mcs.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/units.h"

namespace wgtt::phy {

class RateController {
 public:
  virtual ~RateController() = default;

  /// Rate for the next transmission attempt.
  [[nodiscard]] virtual Mcs select() = 0;

  /// Feedback from the MAC: `delivered` of `attempted` MPDUs at `used` got
  /// through (from the block-ACK bitmap).
  virtual void report(Mcs used, int attempted, int delivered) = 0;

  /// Fresh CSI observed on the client's uplink (ignored by samplers).
  virtual void observe_csi(std::span<const double> subcarrier_snr_db) = 0;
};

/// Minstrel-flavoured sampler: EWMA per-rate success probability, pick the
/// best expected-throughput rate, and spend a fraction of frames probing
/// other rates.
class MinstrelLite final : public RateController {
 public:
  struct Config {
    /// Stock Minstrel refreshes statistics on a 100 ms interval; per-frame
    /// EWMA with a small alpha approximates that sluggishness.
    double ewma_alpha = 0.12;
    double sample_fraction = 0.1;
    double initial_success = 0.5;
  };

  MinstrelLite(const Config& config, Rng rng);

  [[nodiscard]] Mcs select() override;
  void report(Mcs used, int attempted, int delivered) override;
  void observe_csi(std::span<const double> subcarrier_snr_db) override;

  [[nodiscard]] double success_estimate(Mcs mcs) const;

 private:
  Config config_;
  Rng rng_;
  std::array<double, kNumMcs> success_{};
};

/// ESNR-driven selector: chooses the highest MCS whose expected goodput for
/// the latest CSI is maximal. Models what a CSI-capable AP can do, and is
/// the selector used by the WGTT APs (they have per-frame CSI anyway).
class EsnrRateSelector final : public RateController {
 public:
  /// margin_db derates the observed ESNR before selection: CSI is a few
  /// milliseconds stale by the time the A-MPDU airs, which at vehicular
  /// speed is a coherence time. 2-3 dB absorbs typical decorrelation.
  explicit EsnrRateSelector(std::size_t reference_mpdu_bytes = 1500,
                            double margin_db = 2.5);

  [[nodiscard]] Mcs select() override;
  void report(Mcs used, int attempted, int delivered) override;
  void observe_csi(std::span<const double> subcarrier_snr_db) override;

 private:
  std::size_t reference_bytes_;
  double margin_db_;
  Mcs current_ = Mcs::kMcs0;
  Ewma failure_backoff_{0.3};
};

}  // namespace wgtt::phy
