#include "phy/esnr.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace wgtt::phy {

namespace {

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

}  // namespace

double bit_error_rate(Modulation m, double snr_linear) {
  const double g = std::max(snr_linear, 0.0);
  switch (m) {
    case Modulation::kBpsk:
      return q_function(std::sqrt(2.0 * g));
    case Modulation::kQpsk:
      return q_function(std::sqrt(g));
    case Modulation::kQam16:
      // Gray-coded square QAM nearest-neighbour approximation.
      return 0.75 * q_function(std::sqrt(g / 5.0));
    case Modulation::kQam64:
      return (7.0 / 12.0) * q_function(std::sqrt(g / 21.0));
  }
  return 0.5;
}

double snr_for_ber(Modulation m, double ber) {
  if (ber <= 0.0) throw std::invalid_argument("ber must be positive");
  const double target = std::min(ber, 0.5);
  // BER is monotone decreasing in SNR; bisect on log-SNR over a generous
  // range (-30 dB .. +60 dB).
  double lo = 1e-3;
  double hi = 1e6;
  if (bit_error_rate(m, lo) <= target) return lo;
  if (bit_error_rate(m, hi) >= target) return hi;
  for (int it = 0; it < 48; ++it) {
    const double mid = std::sqrt(lo * hi);
    if (bit_error_rate(m, mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::sqrt(lo * hi);
}

double effective_snr_db(std::span<const double> subcarrier_snr_db,
                        Modulation m) {
  if (subcarrier_snr_db.empty()) {
    throw std::invalid_argument("effective_snr_db on empty CSI");
  }
  double mean_ber = 0.0;
  for (double snr_db : subcarrier_snr_db) {
    mean_ber += bit_error_rate(m, from_db(snr_db));
  }
  mean_ber /= static_cast<double>(subcarrier_snr_db.size());
  // Clamp: all-subcarriers-perfect gives BER 0; report a high ceiling.
  if (mean_ber < 1e-12) return 45.0;
  return to_db(snr_for_ber(m, mean_ber));
}

double esnr_metric_db(std::span<const double> subcarrier_snr_db) {
  return effective_snr_db(subcarrier_snr_db, Modulation::kQam64);
}

double mpdu_delivery_probability(double esnr_db, Mcs mcs,
                                 std::size_t psdu_bytes) {
  const McsInfo& info = mcs_info(mcs);
  // Logistic success curve centred at the MCS sensitivity point; ~1.2 dB
  // transition width matches measured 802.11n waterfall curves.
  const double x = (esnr_db - info.min_esnr_db) / 1.2;
  const double p_ref = 1.0 / (1.0 + std::exp(-x));
  // Length scaling relative to the 1500 B reference frame: longer frames
  // expose more bits to the residual error rate. Floored at 1/4 of the
  // reference: even a minimal frame still needs its preamble, headers and
  // FCS intact, so arbitrarily short frames do not become arbitrarily
  // robust.
  const double ratio = std::max(
      static_cast<double>(std::max<std::size_t>(psdu_bytes, 1)) / 1500.0, 0.25);
  return std::pow(p_ref, ratio);
}

double mpdu_delivery_probability(std::span<const double> subcarrier_snr_db,
                                 Mcs mcs, std::size_t psdu_bytes) {
  const double esnr =
      effective_snr_db(subcarrier_snr_db, mcs_info(mcs).modulation);
  return mpdu_delivery_probability(esnr, mcs, psdu_bytes);
}

double expected_goodput_mbps(std::span<const double> subcarrier_snr_db,
                             Mcs mcs, std::size_t psdu_bytes) {
  return mcs_info(mcs).data_rate_mbps *
         mpdu_delivery_probability(subcarrier_snr_db, mcs, psdu_bytes);
}

}  // namespace wgtt::phy
