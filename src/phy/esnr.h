// Effective SNR (Halperin et al., SIGCOMM 2010): the link metric at the
// heart of WGTT's AP selection (§3.1.1).
//
// A frequency-selective channel delivers different SNR on each OFDM
// subcarrier. Averaging SNR in dB (or using RSSI) over-estimates delivery
// probability when a few subcarriers are deeply faded. ESNR instead:
//   1. maps each subcarrier's SNR to a bit error rate for the modulation,
//   2. averages the BERs across subcarriers,
//   3. inverts the BER->SNR map to get the flat-channel SNR that would have
//      produced the same average BER.
// The result predicts packet delivery far better under strong multipath —
// exactly the regime the roadside picocells live in.
#pragma once

#include <span>

#include "phy/mcs.h"

namespace wgtt::phy {

/// Uncoded bit error rate of `m` over AWGN at linear SNR `snr`.
[[nodiscard]] double bit_error_rate(Modulation m, double snr_linear);

/// Inverse of bit_error_rate in its SNR argument (binary search; BER must be
/// in (0, 0.5]). Returns linear SNR.
[[nodiscard]] double snr_for_ber(Modulation m, double ber);

/// Effective SNR in dB for modulation `m` given per-subcarrier SNRs in dB.
[[nodiscard]] double effective_snr_db(std::span<const double> subcarrier_snr_db,
                                      Modulation m);

/// The scalar link metric WGTT's controller tracks: ESNR evaluated for
/// 64-QAM. The highest-order modulation keeps discriminating between links
/// deep into the SNR range where lower orders' BER saturates to zero — a
/// saturated metric cannot rank two good APs and causes selection
/// ping-pong (see bench_abl_selection_metric).
[[nodiscard]] double esnr_metric_db(std::span<const double> subcarrier_snr_db);

/// Probability that an MPDU of `psdu_bytes` at `mcs` is received given
/// effective SNR `esnr_db` (for the MCS's modulation). Combines the coded
/// sensitivity ladder in the MCS table with a logistic roll-off and a
/// frame-length correction.
[[nodiscard]] double mpdu_delivery_probability(double esnr_db, Mcs mcs,
                                               std::size_t psdu_bytes);

/// Convenience: delivery probability straight from per-subcarrier SNRs.
[[nodiscard]] double mpdu_delivery_probability(
    std::span<const double> subcarrier_snr_db, Mcs mcs, std::size_t psdu_bytes);

/// Expected goodput (Mbit/s) of `mcs` for a given CSI vector — the quantity
/// an ESNR-driven rate controller maximizes.
[[nodiscard]] double expected_goodput_mbps(
    std::span<const double> subcarrier_snr_db, Mcs mcs, std::size_t psdu_bytes);

}  // namespace wgtt::phy
