#include "phy/airtime.h"

namespace wgtt::phy {

const PhyTimings& default_timings() {
  static const PhyTimings t{};
  return t;
}

namespace {
Time payload_time(double rate_mbps, std::size_t bytes) {
  // bits / (Mbit/s) = microseconds; round up to the 4 us symbol boundary.
  const double us = static_cast<double>(bytes) * 8.0 / rate_mbps;
  const auto symbols = static_cast<std::int64_t>((us + 3.999) / 4.0);
  return Time::us(symbols * 4);
}
}  // namespace

Time ampdu_duration(Mcs mcs, std::size_t total_bytes) {
  const auto& t = default_timings();
  // MPDU delimiters + padding: ~4% of aggregate size.
  const auto padded = static_cast<std::size_t>(static_cast<double>(total_bytes) * 1.04);
  return t.ht_preamble + payload_time(mcs_info(mcs).data_rate_mbps, padded);
}

Time mpdu_duration(Mcs mcs, std::size_t bytes) {
  const auto& t = default_timings();
  return t.ht_preamble + payload_time(mcs_info(mcs).data_rate_mbps, bytes);
}

Time block_ack_duration() {
  const auto& t = default_timings();
  return t.legacy_preamble + payload_time(t.control_rate_mbps, 32);
}

Time ack_duration() {
  const auto& t = default_timings();
  return t.legacy_preamble + payload_time(t.control_rate_mbps, 14);
}

Time beacon_duration() {
  const auto& t = default_timings();
  return t.legacy_preamble + payload_time(t.control_rate_mbps, 300);
}

Time txop_duration(Mcs mcs, std::size_t total_bytes, int backoff_slots) {
  const auto& t = default_timings();
  return t.difs + t.slot * backoff_slots + ampdu_duration(mcs, total_bytes) +
         t.sifs + block_ack_duration();
}

}  // namespace wgtt::phy
