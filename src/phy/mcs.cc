#include "phy/mcs.h"

#include <stdexcept>

namespace wgtt::phy {

std::string_view to_string(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return "BPSK";
    case Modulation::kQpsk: return "QPSK";
    case Modulation::kQam16: return "16-QAM";
    case Modulation::kQam64: return "64-QAM";
  }
  return "?";
}

int bits_per_symbol(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
  }
  return 1;
}

namespace {
constexpr std::array<McsInfo, kNumMcs> kTable{{
    {Mcs::kMcs0, Modulation::kBpsk, 0.50, 7.2, 4.0},
    {Mcs::kMcs1, Modulation::kQpsk, 0.50, 14.4, 7.0},
    {Mcs::kMcs2, Modulation::kQpsk, 0.75, 21.7, 9.5},
    {Mcs::kMcs3, Modulation::kQam16, 0.50, 28.9, 12.5},
    {Mcs::kMcs4, Modulation::kQam16, 0.75, 43.3, 16.0},
    {Mcs::kMcs5, Modulation::kQam64, 0.6667, 57.8, 20.5},
    {Mcs::kMcs6, Modulation::kQam64, 0.75, 65.0, 22.0},
    {Mcs::kMcs7, Modulation::kQam64, 0.8333, 72.2, 24.0},
}};
}  // namespace

const McsInfo& mcs_info(Mcs mcs) {
  const auto i = static_cast<std::size_t>(mcs);
  if (i >= kTable.size()) throw std::out_of_range("bad MCS index");
  return kTable[i];
}

const std::array<McsInfo, kNumMcs>& all_mcs() { return kTable; }

Mcs highest_mcs_for_esnr(double esnr_db, double margin_db) {
  Mcs best = Mcs::kMcs0;
  for (const auto& info : kTable) {
    if (info.min_esnr_db <= esnr_db - margin_db) best = info.index;
  }
  return best;
}

}  // namespace wgtt::phy
