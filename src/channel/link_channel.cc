#include "channel/link_channel.h"

#include <cmath>

namespace wgtt::channel {

LinkChannel::LinkChannel(Vec2 ap_position, Vec2 boresight_target,
                         const Config& config, Rng& rng)
    : ap_position_(ap_position),
      config_(config),
      ap_antenna_(config.budget.ap_antenna_peak_dbi,
                  config.budget.ap_beamwidth_deg,
                  angle_of(boresight_target - ap_position)),
      pathloss_(config.pathloss_exponent),
      shadowing_(config.shadowing_sigma_db, config.shadowing_decorrelation_m,
                 rng.next_u64()),
      fading_(config.fading, rng) {}

double LinkChannel::large_scale_rx_dbm(Vec2 client_pos) const {
  const auto& b = config_.budget;
  const double d = distance(ap_position_, client_pos);
  return b.tx_power_dbm + ap_antenna_.gain_toward(ap_position_, client_pos) +
         b.client_antenna_dbi - b.system_loss_db - pathloss_.loss_db(d) +
         shadowing_.sample_db(client_pos);
}

double LinkChannel::large_scale_snr_db(Vec2 client_pos) const {
  return large_scale_rx_dbm(client_pos) - config_.budget.noise_floor_dbm;
}

CsiMeasurement LinkChannel::measure(Vec2 client_pos, Time t) const {
  const double rx_dbm = large_scale_rx_dbm(client_pos);
  const CsiSnapshot snap = fading_.csi(client_pos, t);

  CsiMeasurement m;
  m.when = t;
  const double base_snr_db = rx_dbm - config_.budget.noise_floor_dbm;
  double mean_power = 0.0;
  double mean_snr_lin = 0.0;
  for (std::size_t i = 0; i < snap.gains.size(); ++i) {
    const double p = std::norm(snap.gains[i]);
    mean_power += p;
    // Floor the per-subcarrier fade at -40 dB to keep the dB math finite in
    // a deep null.
    const double snr_db = base_snr_db + to_db(std::max(p, 1e-4));
    m.subcarrier_snr_db[i] = snr_db;
    mean_snr_lin += from_db(snr_db);
  }
  mean_power /= static_cast<double>(snap.gains.size());
  m.rssi_dbm = rx_dbm + to_db(std::max(mean_power, 1e-4));
  m.mean_snr_db = to_db(mean_snr_lin / static_cast<double>(snap.gains.size()));
  return m;
}

}  // namespace wgtt::channel
