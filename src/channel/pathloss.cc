#include "channel/pathloss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wgtt::channel {

LogDistancePathLoss::LogDistancePathLoss(double exponent,
                                         double reference_loss_db)
    : exponent_(exponent), reference_loss_db_(reference_loss_db) {
  if (exponent <= 0.0) throw std::invalid_argument("path loss exponent must be positive");
}

double LogDistancePathLoss::loss_db(double distance_m) const {
  // Below 1 m the log-distance model is meaningless; clamp to the reference.
  const double d = std::max(distance_m, 1.0);
  return reference_loss_db_ + 10.0 * exponent_ * std::log10(d);
}

namespace {
/// splitmix64-style integer hash -> uniform double in (0,1).
double hash_to_uniform(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  // Avoid exactly 0 so the inverse-normal transform stays finite.
  return (static_cast<double>(x >> 11) + 0.5) * 0x1.0p-53;
}

/// Acklam-style inverse normal CDF approximation (|error| < 1.2e-8): turns
/// the hashed uniform into a unit Gaussian, keeping the field pure.
double inverse_normal_cdf(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}
}  // namespace

ShadowField::ShadowField(double sigma_db, double decorrelation_distance_m,
                         std::uint64_t seed)
    : sigma_db_(sigma_db), grid_m_(decorrelation_distance_m), seed_(seed) {
  if (sigma_db < 0.0) throw std::invalid_argument("shadowing sigma must be >= 0");
  if (decorrelation_distance_m <= 0.0) {
    throw std::invalid_argument("decorrelation distance must be positive");
  }
}

double ShadowField::node_value(std::int64_t ix, std::int64_t iy) const {
  const std::uint64_t key = seed_ ^
                            (static_cast<std::uint64_t>(ix) * 0x9e3779b97f4a7c15ULL) ^
                            (static_cast<std::uint64_t>(iy) * 0xc2b2ae3d27d4eb4fULL);
  return inverse_normal_cdf(hash_to_uniform(key));
}

double ShadowField::sample_db(Vec2 position) const {
  if (sigma_db_ == 0.0) return 0.0;
  const double gx = position.x / grid_m_;
  const double gy = position.y / grid_m_;
  const auto ix = static_cast<std::int64_t>(std::floor(gx));
  const auto iy = static_cast<std::int64_t>(std::floor(gy));
  const double fx = gx - static_cast<double>(ix);
  const double fy = gy - static_cast<double>(iy);

  const double w00 = (1.0 - fx) * (1.0 - fy);
  const double w10 = fx * (1.0 - fy);
  const double w01 = (1.0 - fx) * fy;
  const double w11 = fx * fy;
  const double blend = w00 * node_value(ix, iy) + w10 * node_value(ix + 1, iy) +
                       w01 * node_value(ix, iy + 1) +
                       w11 * node_value(ix + 1, iy + 1);
  // Normalize so the marginal stays N(0, sigma^2) everywhere in the cell.
  const double norm = std::sqrt(w00 * w00 + w10 * w10 + w01 * w01 + w11 * w11);
  return sigma_db_ * blend / norm;
}

}  // namespace wgtt::channel
