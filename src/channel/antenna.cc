#include "channel/antenna.h"

#include <algorithm>
#include <stdexcept>

namespace wgtt::channel {

ParabolicAntenna::ParabolicAntenna(double peak_gain_dbi, double beamwidth_deg,
                                   double boresight_rad,
                                   double sidelobe_attenuation_db,
                                   double rolloff_exponent)
    : peak_gain_dbi_(peak_gain_dbi),
      half_beamwidth_rad_(deg_to_rad(beamwidth_deg) / 2.0),
      boresight_rad_(boresight_rad),
      sidelobe_attenuation_db_(sidelobe_attenuation_db),
      rolloff_exponent_(rolloff_exponent) {
  if (beamwidth_deg <= 0.0) throw std::invalid_argument("beamwidth must be positive");
  if (sidelobe_attenuation_db <= 0.0) throw std::invalid_argument("side-lobe attenuation must be positive");
  if (rolloff_exponent <= 0.0) throw std::invalid_argument("rolloff exponent must be positive");
}

double ParabolicAntenna::gain_dbi(double toward_rad) const {
  const double off = angle_between(toward_rad, boresight_rad_);
  const double ratio = off / half_beamwidth_rad_;
  const double rolloff =
      std::min(3.0 * std::pow(ratio, rolloff_exponent_), sidelobe_attenuation_db_);
  return peak_gain_dbi_ - rolloff;
}

double ParabolicAntenna::gain_toward(Vec2 self, Vec2 target) const {
  return gain_dbi(angle_of(target - self));
}

}  // namespace wgtt::channel
