// LinkChannel: the complete radio channel between one AP and one client,
// combining the link budget (tx power, antenna patterns, cable/splitter
// losses), log-distance path loss, shadowing, and the frequency-selective
// fast-fading field. Channel reciprocity is assumed within a coherence time
// (as the paper does: downlink delivery is predicted from uplink CSI), so
// one LinkChannel serves both directions.
//
// measure() is const/pure: the channel at (position, time) is a fixed
// realization, so protocol code and ground-truth measurement code can both
// sample it without disturbing each other.
#pragma once

#include <array>

#include "channel/antenna.h"
#include "channel/fading.h"
#include "channel/geometry.h"
#include "channel/pathloss.h"
#include "util/rng.h"
#include "util/units.h"

namespace wgtt::channel {

/// Fixed gains/losses on the AP-client link.
struct LinkBudget {
  double tx_power_dbm = 18.0;         // TP-Link N750 class
  double ap_antenna_peak_dbi = 14.0;  // Laird parabolic
  double ap_beamwidth_deg = 21.0;
  double client_antenna_dbi = 0.0;
  /// Splitter (~5 dB for the 3-way Mini-Circuits combiner), cables, vehicle
  /// body penetration. Folded into one implementation-loss number.
  double system_loss_db = 23.0;
  double noise_floor_dbm = -94.0;  // kTB over 20 MHz + 7 dB noise figure
};

/// What an AP's NIC reports for one received frame: per-subcarrier SNR plus
/// the scalar RSSI legacy systems (the Enhanced 802.11r baseline) use.
///
/// The SNR vector is a fixed-size array (the subcarrier count is a PHY
/// constant): measure() allocates nothing per frame, and a measurement can
/// be copied into a CsiReport backhaul message as one flat memcpy-able
/// block (DESIGN.md §8).
struct CsiMeasurement {
  Time when;
  std::array<double, kNumSubcarriers> subcarrier_snr_db{};
  double rssi_dbm = 0.0;
  double mean_snr_db = 0.0;
};

class LinkChannel {
 public:
  struct Config {
    LinkBudget budget{};
    double pathloss_exponent = 2.9;
    double shadowing_sigma_db = 2.5;
    double shadowing_decorrelation_m = 8.0;
    TappedDelayChannel::Config fading{};
  };

  /// `boresight_target`: road point the AP's dish is aimed at.
  LinkChannel(Vec2 ap_position, Vec2 boresight_target, const Config& config,
              Rng& rng);

  /// Full CSI measurement for a frame heard at time t with the client at
  /// `client_pos` (either direction, by reciprocity).
  [[nodiscard]] CsiMeasurement measure(Vec2 client_pos, Time t) const;

  /// Mean received power over fading (large-scale only), dBm. This is what
  /// a long RSSI average converges to.
  [[nodiscard]] double large_scale_rx_dbm(Vec2 client_pos) const;

  /// Mean SNR over fading, dB (large-scale only).
  [[nodiscard]] double large_scale_snr_db(Vec2 client_pos) const;

  [[nodiscard]] Vec2 ap_position() const { return ap_position_; }
  [[nodiscard]] const LinkBudget& budget() const { return config_.budget; }

 private:
  Vec2 ap_position_;
  Config config_;
  ParabolicAntenna ap_antenna_;
  LogDistancePathLoss pathloss_;
  ShadowField shadowing_;
  TappedDelayChannel fading_;
};

}  // namespace wgtt::channel
