// Large-scale propagation: log-distance path loss plus spatially correlated
// lognormal shadowing. These produce the second-scale fading envelope in the
// paper's Figure 2; the millisecond structure comes from fading.h.
#pragma once

#include <cstdint>

#include "channel/geometry.h"

namespace wgtt::channel {

/// PL(d) = PL(d0) + 10 n log10(d / d0), d0 = 1 m.
class LogDistancePathLoss {
 public:
  /// exponent ~2.7-3.2 fits roadside links with a building-mounted AP;
  /// reference_loss_db is free-space loss at 1 m for 2.4 GHz (~40.2 dB).
  explicit LogDistancePathLoss(double exponent = 2.9,
                               double reference_loss_db = 40.2);

  [[nodiscard]] double loss_db(double distance_m) const;
  [[nodiscard]] double exponent() const { return exponent_; }

 private:
  double exponent_;
  double reference_loss_db_;
};

/// Lognormal shadowing as a *pure* spatial random field: the value at a
/// position is a normalized bilinear blend of hash-seeded unit Gaussians on
/// a grid whose pitch is the decorrelation distance (Gudmundson-style
/// spatial correlation). Purity matters: measurement code (ground-truth
/// "optimal AP" queries for the switching-accuracy metric) can sample the
/// field without perturbing the channel the protocols see.
class ShadowField {
 public:
  ShadowField(double sigma_db, double decorrelation_distance_m,
              std::uint64_t seed);

  /// Shadowing in dB (zero mean, stddev sigma) at `position`. Pure.
  [[nodiscard]] double sample_db(Vec2 position) const;

 private:
  [[nodiscard]] double node_value(std::int64_t ix, std::int64_t iy) const;

  double sigma_db_;
  double grid_m_;
  std::uint64_t seed_;
};

}  // namespace wgtt::channel
