// Planar geometry for the roadside deployment. The road runs along the
// x axis; APs sit at a perpendicular setback (the paper's third-floor
// building facade) with directional antennas aimed at points on the road.
#pragma once

#include <cmath>

namespace wgtt::channel {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double k) { return {a.x * k, a.y * k}; }
  friend constexpr Vec2 operator*(double k, Vec2 a) { return a * k; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }

  [[nodiscard]] double norm() const { return std::hypot(x, y); }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Angle of vector `v` in radians, in (-pi, pi].
[[nodiscard]] inline double angle_of(Vec2 v) { return std::atan2(v.y, v.x); }

/// Smallest absolute angular difference between two directions, in [0, pi].
[[nodiscard]] inline double angle_between(double a, double b) {
  double d = std::fmod(std::fabs(a - b), 2.0 * M_PI);
  return d > M_PI ? 2.0 * M_PI - d : d;
}

[[nodiscard]] constexpr double deg_to_rad(double deg) { return deg * M_PI / 180.0; }
[[nodiscard]] constexpr double rad_to_deg(double rad) { return rad * 180.0 / M_PI; }

}  // namespace wgtt::channel
