// Antenna gain patterns. The testbed uses a Laird 14 dBi parabolic antenna
// with 21 degree (full) 3 dB beamwidth per AP (paper §4.2); clients use
// omnidirectional antennas.
#pragma once

#include "channel/geometry.h"

namespace wgtt::channel {

/// Directional pattern: generalized parabolic-dish main-lobe approximation
/// with a flat side-lobe floor:
///   G(theta) = G0 - min(3 * (theta / theta_half)^p, sll) dBi
/// where theta_half is half the 3 dB beamwidth (so the gain is 3 dB down at
/// the beam edge by construction). p = 2 is the textbook quadratic; real
/// dishes fall off faster past the main lobe, and p ~ 3 with a ~32 dB
/// floor reproduces the paper's Figure 10 coverage: ~5 m cells, 6-10 m of
/// usable overlap with the adjacent AP, and side lobes just strong enough
/// that nearby APs still decode the client's (robust, short) control
/// frames — which block-ACK forwarding and uplink diversity depend on.
class ParabolicAntenna {
 public:
  /// beamwidth_deg: full 3 dB beamwidth (21 for the Laird GD24BP).
  /// boresight_rad: direction the dish points, world frame.
  ParabolicAntenna(double peak_gain_dbi, double beamwidth_deg,
                   double boresight_rad, double sidelobe_attenuation_db = 32.0,
                   double rolloff_exponent = 3.0);

  /// Gain toward absolute direction `toward_rad` (world frame), in dBi.
  [[nodiscard]] double gain_dbi(double toward_rad) const;

  /// Gain toward a point, from the antenna position.
  [[nodiscard]] double gain_toward(Vec2 self, Vec2 target) const;

  [[nodiscard]] double peak_gain_dbi() const { return peak_gain_dbi_; }
  [[nodiscard]] double boresight_rad() const { return boresight_rad_; }

 private:
  double peak_gain_dbi_;
  double half_beamwidth_rad_;
  double boresight_rad_;
  double sidelobe_attenuation_db_;
  double rolloff_exponent_;
};

/// Omnidirectional client antenna (constant gain).
class OmniAntenna {
 public:
  explicit OmniAntenna(double gain_dbi = 0.0) : gain_dbi_(gain_dbi) {}
  [[nodiscard]] double gain_dbi() const { return gain_dbi_; }

 private:
  double gain_dbi_;
};

}  // namespace wgtt::channel
