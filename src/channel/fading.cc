#include "channel/fading.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wgtt::channel {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
constexpr double kSubcarrierSpacingHz = 312.5e3;
}  // namespace

double CsiSnapshot::mean_power() const {
  double p = 0.0;
  for (const auto& g : gains) p += std::norm(g);
  return p / static_cast<double>(gains.size());
}

double subcarrier_offset_hz(int i) {
  // 56 tones at indices -28..-1, +1..+28 (DC skipped), 312.5 kHz spacing.
  const int k = i < 28 ? i - 28 : i - 27;
  return k * kSubcarrierSpacingHz;
}

SpatialTap::SpatialTap(int num_sinusoids, double env_doppler_hz, Rng& rng) {
  if (num_sinusoids <= 0) throw std::invalid_argument("need at least one sinusoid");
  const auto count = static_cast<std::size_t>(num_sinusoids);
  kx_.reserve(count);
  ky_.reserve(count);
  omega_.reserve(count);
  phase_.reserve(count);
  const double k_mag = kTwoPi / kWavelength;
  amplitude_ = 1.0 / std::sqrt(static_cast<double>(num_sinusoids));
  for (int m = 0; m < num_sinusoids; ++m) {
    const double alpha = rng.uniform(0.0, kTwoPi);  // arrival direction
    kx_.push_back(k_mag * std::cos(alpha));
    ky_.push_back(k_mag * std::sin(alpha));
    // Environmental Doppler: each scatterer drifts at a random rate within
    // +/- env_doppler_hz, so a static client still sees slow variation.
    omega_.push_back(kTwoPi * rng.uniform(-env_doppler_hz, env_doppler_hz));
    phase_.push_back(rng.uniform(0.0, kTwoPi));
  }
}

std::complex<double> SpatialTap::gain(Vec2 pos, Time t) const {
  const double ts = t.to_seconds();
  double re = 0.0;
  double im = 0.0;
  // Component order is the draw order; the reduction must stay in that
  // order (not reassociated) to keep gain() bit-identical to the seed
  // formula. The cos/sin pair dominates anyway, so the win from the SoA
  // layout is locality, not lane-parallel math.
  const std::size_t n = kx_.size();
  for (std::size_t m = 0; m < n; ++m) {
    const double ph = kx_[m] * pos.x + ky_[m] * pos.y + omega_[m] * ts + phase_[m];
    re += amplitude_ * std::cos(ph);
    im += amplitude_ * std::sin(ph);
  }
  return {re, im};
}

TappedDelayChannel::TappedDelayChannel(const Config& config, Rng& rng) {
  if (config.num_taps <= 0) throw std::invalid_argument("need at least one tap");
  // Rician K: power ratio of the LoS component to all scattered power.
  const double k_lin = from_db(config.rician_k_db);
  los_power_ = k_lin / (k_lin + 1.0);
  const double scatter_power = 1.0 / (k_lin + 1.0);
  los_phase_rate_ = kTwoPi / kWavelength;  // LoS phase advances with motion

  // Exponential power-delay profile over num_taps taps.
  std::vector<double> raw(static_cast<std::size_t>(config.num_taps));
  const double tap_spacing_ns =
      config.num_taps > 1 ? config.delay_spread_ns * 2.0 / (config.num_taps - 1) : 0.0;
  double total = 0.0;
  for (int l = 0; l < config.num_taps; ++l) {
    const double delay = l * tap_spacing_ns;
    raw[static_cast<std::size_t>(l)] =
        config.delay_spread_ns > 0.0 ? std::exp(-delay / config.delay_spread_ns) : (l == 0 ? 1.0 : 0.0);
    total += raw[static_cast<std::size_t>(l)];
  }

  los_amplitude_ = std::sqrt(los_power_);

  taps_.reserve(static_cast<std::size_t>(config.num_taps));
  const std::size_t table =
      static_cast<std::size_t>(config.num_taps) *
      static_cast<std::size_t>(kNumSubcarriers);
  rot_re_.resize(table);
  rot_im_.resize(table);
  for (int l = 0; l < config.num_taps; ++l) {
    const double power = scatter_power * raw[static_cast<std::size_t>(l)] / total;
    Tap tap{
        .power = power,
        .amplitude = std::sqrt(power),
        .delay_ns = l * tap_spacing_ns,
        .field = SpatialTap(config.sinusoids_per_tap, config.env_doppler_hz, rng),
    };
    const std::size_t row = static_cast<std::size_t>(l) *
                            static_cast<std::size_t>(kNumSubcarriers);
    for (int i = 0; i < kNumSubcarriers; ++i) {
      const double phase = -kTwoPi * subcarrier_offset_hz(i) * tap.delay_ns * 1e-9;
      rot_re_[row + static_cast<std::size_t>(i)] = std::cos(phase);
      rot_im_[row + static_cast<std::size_t>(i)] = std::sin(phase);
    }
    taps_.push_back(std::move(tap));
  }
}

// Hot path: every restructuring here (precomputed sqrt amplitudes, the SoA
// rotation tables, fixed-size gains, real/imaginary accumulator lanes)
// keeps the original operand values and accumulation order, so the output
// is bit-identical to the seed formula — channel_test's
// BitIdenticalToReferenceFormula and BatchMatchesScalarBitwise lock that in.
void TappedDelayChannel::csi_into(Vec2 pos, Time t, CsiSnapshot& out) const {
  out.when = t;

  // LoS term: flat across frequency (delay 0), phase tracks position.
  const double los_re = los_amplitude_ * std::cos(los_phase_rate_ * pos.x);
  const double los_im = los_amplitude_ * std::sin(los_phase_rate_ * pos.x);

  // Per-tap spatial gain is evaluated once (hoisted out of the subcarrier
  // loop); the inner loop is the batch kernel proper: 56 independent
  // complex multiply-accumulates, written as four real-lane streams over
  // the SoA rotation rows. Each lane's accumulator is independent across
  // subcarriers, so the compiler may vectorize the loop without changing
  // any rounding — (a+bi)(c+di) = (ac-bd) + (ad+bc)i is exactly what
  // std::complex multiplication computes for finite operands.
  double acc_re[kNumSubcarriers] = {};
  double acc_im[kNumSubcarriers] = {};
  for (std::size_t l = 0; l < taps_.size(); ++l) {
    const std::complex<double> g = taps_[l].amplitude * taps_[l].field.gain(pos, t);
    const double g_re = g.real();
    const double g_im = g.imag();
    const std::size_t row = l * static_cast<std::size_t>(kNumSubcarriers);
    const double* rr = &rot_re_[row];
    const double* ri = &rot_im_[row];
    for (int i = 0; i < kNumSubcarriers; ++i) {
      acc_re[i] += g_re * rr[i] - g_im * ri[i];
      acc_im[i] += g_re * ri[i] + g_im * rr[i];
    }
  }
  for (int i = 0; i < kNumSubcarriers; ++i) {
    out.gains[static_cast<std::size_t>(i)] = {acc_re[i] + los_re,
                                              acc_im[i] + los_im};
  }
}

CsiSnapshot TappedDelayChannel::csi(Vec2 pos, Time t) const {
  CsiSnapshot snap;
  csi_into(pos, t, snap);
  return snap;
}

void TappedDelayChannel::csi_batch(const Vec2* pos, const Time* t,
                                   std::size_t n, CsiSnapshot* out) const {
  for (std::size_t i = 0; i < n; ++i) csi_into(pos[i], t[i], out[i]);
}

std::complex<double> TappedDelayChannel::flat_gain(Vec2 pos, Time t) const {
  std::complex<double> sum =
      los_amplitude_ *
      std::complex<double>{std::cos(los_phase_rate_ * pos.x),
                           std::sin(los_phase_rate_ * pos.x)};
  for (const auto& tap : taps_) {
    sum += tap.amplitude * tap.field.gain(pos, t);
  }
  return sum;
}

}  // namespace wgtt::channel
