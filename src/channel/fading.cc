#include "channel/fading.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wgtt::channel {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
constexpr double kSubcarrierSpacingHz = 312.5e3;
}  // namespace

double CsiSnapshot::mean_power() const {
  double p = 0.0;
  for (const auto& g : gains) p += std::norm(g);
  return p / static_cast<double>(gains.size());
}

double subcarrier_offset_hz(int i) {
  // 56 tones at indices -28..-1, +1..+28 (DC skipped), 312.5 kHz spacing.
  const int k = i < 28 ? i - 28 : i - 27;
  return k * kSubcarrierSpacingHz;
}

SpatialTap::SpatialTap(int num_sinusoids, double env_doppler_hz, Rng& rng) {
  if (num_sinusoids <= 0) throw std::invalid_argument("need at least one sinusoid");
  comps_.reserve(static_cast<std::size_t>(num_sinusoids));
  const double k_mag = kTwoPi / kWavelength;
  const double amp = 1.0 / std::sqrt(static_cast<double>(num_sinusoids));
  for (int m = 0; m < num_sinusoids; ++m) {
    const double alpha = rng.uniform(0.0, kTwoPi);  // arrival direction
    Component c{};
    c.kx = k_mag * std::cos(alpha);
    c.ky = k_mag * std::sin(alpha);
    // Environmental Doppler: each scatterer drifts at a random rate within
    // +/- env_doppler_hz, so a static client still sees slow variation.
    c.omega = kTwoPi * rng.uniform(-env_doppler_hz, env_doppler_hz);
    c.phase = rng.uniform(0.0, kTwoPi);
    c.amplitude = amp;
    comps_.push_back(c);
  }
}

std::complex<double> SpatialTap::gain(Vec2 pos, Time t) const {
  const double ts = t.to_seconds();
  double re = 0.0;
  double im = 0.0;
  for (const auto& c : comps_) {
    const double ph = c.kx * pos.x + c.ky * pos.y + c.omega * ts + c.phase;
    re += c.amplitude * std::cos(ph);
    im += c.amplitude * std::sin(ph);
  }
  return {re, im};
}

TappedDelayChannel::TappedDelayChannel(const Config& config, Rng& rng) {
  if (config.num_taps <= 0) throw std::invalid_argument("need at least one tap");
  // Rician K: power ratio of the LoS component to all scattered power.
  const double k_lin = from_db(config.rician_k_db);
  los_power_ = k_lin / (k_lin + 1.0);
  const double scatter_power = 1.0 / (k_lin + 1.0);
  los_phase_rate_ = kTwoPi / kWavelength;  // LoS phase advances with motion

  // Exponential power-delay profile over num_taps taps.
  std::vector<double> raw(static_cast<std::size_t>(config.num_taps));
  const double tap_spacing_ns =
      config.num_taps > 1 ? config.delay_spread_ns * 2.0 / (config.num_taps - 1) : 0.0;
  double total = 0.0;
  for (int l = 0; l < config.num_taps; ++l) {
    const double delay = l * tap_spacing_ns;
    raw[static_cast<std::size_t>(l)] =
        config.delay_spread_ns > 0.0 ? std::exp(-delay / config.delay_spread_ns) : (l == 0 ? 1.0 : 0.0);
    total += raw[static_cast<std::size_t>(l)];
  }

  los_amplitude_ = std::sqrt(los_power_);

  taps_.reserve(static_cast<std::size_t>(config.num_taps));
  subcarrier_rotation_.resize(static_cast<std::size_t>(config.num_taps) *
                              static_cast<std::size_t>(kNumSubcarriers));
  for (int l = 0; l < config.num_taps; ++l) {
    const double power = scatter_power * raw[static_cast<std::size_t>(l)] / total;
    Tap tap{
        .power = power,
        .amplitude = std::sqrt(power),
        .delay_ns = l * tap_spacing_ns,
        .field = SpatialTap(config.sinusoids_per_tap, config.env_doppler_hz, rng),
    };
    std::complex<double>* rot =
        &subcarrier_rotation_[static_cast<std::size_t>(l) *
                              static_cast<std::size_t>(kNumSubcarriers)];
    for (int i = 0; i < kNumSubcarriers; ++i) {
      const double phase = -kTwoPi * subcarrier_offset_hz(i) * tap.delay_ns * 1e-9;
      rot[i] = {std::cos(phase), std::sin(phase)};
    }
    taps_.push_back(std::move(tap));
  }
}

// Hot path: every restructuring here (precomputed sqrt amplitudes, the
// flattened rotation table, fixed-size gains) keeps the original operand
// values and accumulation order, so the output is bit-identical to the seed
// formula — channel_test's BitIdenticalToReferenceFormula locks that in.
CsiSnapshot TappedDelayChannel::csi(Vec2 pos, Time t) const {
  CsiSnapshot snap;
  snap.when = t;

  // LoS term: flat across frequency (delay 0), phase tracks position.
  const std::complex<double> los =
      los_amplitude_ *
      std::complex<double>{std::cos(los_phase_rate_ * pos.x),
                           std::sin(los_phase_rate_ * pos.x)};

  // Per-tap spatial gain is evaluated once (hoisted out of the subcarrier
  // loop); the inner loop is a pure complex multiply-accumulate over the
  // precomputed rotation row.
  for (std::size_t l = 0; l < taps_.size(); ++l) {
    const std::complex<double> g = taps_[l].amplitude * taps_[l].field.gain(pos, t);
    const std::complex<double>* rot =
        &subcarrier_rotation_[l * static_cast<std::size_t>(kNumSubcarriers)];
    for (int i = 0; i < kNumSubcarriers; ++i) {
      snap.gains[static_cast<std::size_t>(i)] += g * rot[i];
    }
  }
  for (auto& g : snap.gains) g += los;
  return snap;
}

std::complex<double> TappedDelayChannel::flat_gain(Vec2 pos, Time t) const {
  std::complex<double> sum =
      los_amplitude_ *
      std::complex<double>{std::cos(los_phase_rate_ * pos.x),
                           std::sin(los_phase_rate_ * pos.x)};
  for (const auto& tap : taps_) {
    sum += tap.amplitude * tap.field.gain(pos, t);
  }
  return sum;
}

}  // namespace wgtt::channel
