// Small-scale multipath fading.
//
// The vehicular picocell regime (paper Figure 2) is defined by fast fading
// that decorrelates on the scale of an RF wavelength (~12 cm at 2.4 GHz):
// a car at 25 mph crosses a fade in ~2-3 ms, matching the coherence time the
// paper cites. We model each resolvable multipath tap as a *spatial*
// sum-of-sinusoids (Jakes-style) random field over the client's position,
// plus a slow temporal phase drift for environmental motion. Driving through
// the field at speed v then yields exactly the Doppler spectrum and
// coherence time that v implies — and a parked client sees an almost-static
// channel, as it should.
//
// A TappedDelayChannel combines several such taps (exponential power-delay
// profile) into a frequency-selective 56-subcarrier response: the CSI that
// WGTT APs extract from client uplink frames.
#pragma once

#include <array>
#include <complex>
#include <vector>

#include "channel/geometry.h"
#include "util/rng.h"
#include "util/units.h"

namespace wgtt::channel {

/// Per-subcarrier complex channel gains (linear voltage scale, unit average
/// power across the ensemble), in subcarrier order -28..-1, +1..+28.
///
/// Fixed-size: the subcarrier count is a PHY constant, so snapshots live
/// entirely on the stack — csi() performs zero heap allocations per frame
/// (DESIGN.md §8).
struct CsiSnapshot {
  Time when;
  std::array<std::complex<double>, kNumSubcarriers> gains{};

  /// Mean power across subcarriers (linear).
  [[nodiscard]] double mean_power() const;
};

/// One multipath tap: unit-power complex Gaussian spatial field.
///
/// Component parameters are stored as structure-of-arrays (one contiguous
/// vector per parameter) so the phase evaluation in gain() streams four
/// sequential arrays instead of strided struct fields. The sinusoid
/// reduction itself stays in component order — reassociating the sum would
/// change the rounded result, and gain() is locked bit-identical to the
/// seed formula (channel_test::SpatialTapSingleSinusoidAnalytic and
/// BitIdenticalToReferenceFormula).
class SpatialTap {
 public:
  /// num_sinusoids ~12-24 suffices for Rayleigh statistics.
  /// env_doppler_hz models scatterer motion seen by a static client.
  SpatialTap(int num_sinusoids, double env_doppler_hz, Rng& rng);

  /// Complex gain at client position `pos`, time `t`.
  [[nodiscard]] std::complex<double> gain(Vec2 pos, Time t) const;

  [[nodiscard]] int num_sinusoids() const { return static_cast<int>(kx_.size()); }

 private:
  std::vector<double> kx_, ky_;  // spatial wavevector (rad/m)
  std::vector<double> omega_;    // temporal angular rate (rad/s)
  std::vector<double> phase_;    // random phase offset
  double amplitude_ = 0.0;       // uniform 1/sqrt(M) per component
};

/// Power-delay profile + per-tap spatial fields -> frequency-selective CSI.
class TappedDelayChannel {
 public:
  struct Config {
    int num_taps = 6;
    double delay_spread_ns = 120.0;   // exponential PDP; small-cell outdoor
    /// LoS strength. The roadside overlap zones are effectively NLOS (the
    /// dish points elsewhere; energy arrives via reflections), so the
    /// default is a weak LoS: deep, frequent fades — the regime of Figure 2.
    double rician_k_db = -3.0;
    int sinusoids_per_tap = 16;
    double env_doppler_hz = 1.5;      // scatterer motion for static clients
  };

  TappedDelayChannel(const Config& config, Rng& rng);

  /// CSI across the 56 subcarriers at client position/time, normalized to
  /// unit average power (large-scale effects are applied by LinkChannel).
  [[nodiscard]] CsiSnapshot csi(Vec2 pos, Time t) const;

  /// Same evaluation written into a caller-provided snapshot: the batched
  /// SIMD-friendly kernel (DESIGN.md §11.6). All taps × 56 subcarriers are
  /// accumulated in separate real/imaginary lanes over the SoA rotation
  /// tables, so the complex multiply-accumulates auto-vectorize across
  /// subcarriers without -ffast-math; the per-tap operand values and the
  /// tap-order accumulation are unchanged, so the result is bit-identical
  /// to csi() before the restructure (channel_test locks this).
  void csi_into(Vec2 pos, Time t, CsiSnapshot& out) const;

  /// Evaluates `n` (position, time) samples in one call — the lazy-link
  /// sampling shape: one (AP, client) channel drawn at many points along a
  /// drive. The rotation/component tables stay hot across iterations;
  /// out[i] is bit-identical to csi(pos[i], t[i]).
  void csi_batch(const Vec2* pos, const Time* t, std::size_t n,
                 CsiSnapshot* out) const;

  /// Scalar (flat-fading) gain: tap sum without frequency selectivity.
  [[nodiscard]] std::complex<double> flat_gain(Vec2 pos, Time t) const;

  [[nodiscard]] int num_taps() const { return static_cast<int>(taps_.size()); }

 private:
  struct Tap {
    double power;      // linear, sums to (1 - los_power) over taps
    double amplitude;  // sqrt(power), hoisted out of every csi()/flat_gain()
    double delay_ns;
    SpatialTap field;
  };
  std::vector<Tap> taps_;
  double los_power_ = 0.0;         // Rician line-of-sight on the first delay
  double los_amplitude_ = 0.0;     // sqrt(los_power_), precomputed
  double los_phase_rate_ = 0.0;    // rad per metre of client motion (x axis)
  // Precomputed subcarrier phase factors exp(-j 2 pi f_k tau_l), flattened
  // to structure-of-arrays blocks: tap l's rotations occupy
  // [l * kNumSubcarriers, (l+1) * kNumSubcarriers) of each table. Separate
  // re/im arrays let csi_into()'s inner loop run as four independent
  // real-lane multiply-accumulate streams.
  std::vector<double> rot_re_;
  std::vector<double> rot_im_;
};

/// Centre frequency offset of subcarrier index i (0..55), Hz.
[[nodiscard]] double subcarrier_offset_hz(int i);

}  // namespace wgtt::channel
