// Small-scale multipath fading.
//
// The vehicular picocell regime (paper Figure 2) is defined by fast fading
// that decorrelates on the scale of an RF wavelength (~12 cm at 2.4 GHz):
// a car at 25 mph crosses a fade in ~2-3 ms, matching the coherence time the
// paper cites. We model each resolvable multipath tap as a *spatial*
// sum-of-sinusoids (Jakes-style) random field over the client's position,
// plus a slow temporal phase drift for environmental motion. Driving through
// the field at speed v then yields exactly the Doppler spectrum and
// coherence time that v implies — and a parked client sees an almost-static
// channel, as it should.
//
// A TappedDelayChannel combines several such taps (exponential power-delay
// profile) into a frequency-selective 56-subcarrier response: the CSI that
// WGTT APs extract from client uplink frames.
#pragma once

#include <array>
#include <complex>
#include <vector>

#include "channel/geometry.h"
#include "util/rng.h"
#include "util/units.h"

namespace wgtt::channel {

/// Per-subcarrier complex channel gains (linear voltage scale, unit average
/// power across the ensemble), in subcarrier order -28..-1, +1..+28.
///
/// Fixed-size: the subcarrier count is a PHY constant, so snapshots live
/// entirely on the stack — csi() performs zero heap allocations per frame
/// (DESIGN.md §8).
struct CsiSnapshot {
  Time when;
  std::array<std::complex<double>, kNumSubcarriers> gains{};

  /// Mean power across subcarriers (linear).
  [[nodiscard]] double mean_power() const;
};

/// One multipath tap: unit-power complex Gaussian spatial field.
class SpatialTap {
 public:
  /// num_sinusoids ~12-24 suffices for Rayleigh statistics.
  /// env_doppler_hz models scatterer motion seen by a static client.
  SpatialTap(int num_sinusoids, double env_doppler_hz, Rng& rng);

  /// Complex gain at client position `pos`, time `t`.
  [[nodiscard]] std::complex<double> gain(Vec2 pos, Time t) const;

 private:
  struct Component {
    double kx, ky;      // spatial wavevector (rad/m)
    double omega;       // temporal angular rate (rad/s)
    double phase;       // random phase offset
    double amplitude;
  };
  std::vector<Component> comps_;
};

/// Power-delay profile + per-tap spatial fields -> frequency-selective CSI.
class TappedDelayChannel {
 public:
  struct Config {
    int num_taps = 6;
    double delay_spread_ns = 120.0;   // exponential PDP; small-cell outdoor
    /// LoS strength. The roadside overlap zones are effectively NLOS (the
    /// dish points elsewhere; energy arrives via reflections), so the
    /// default is a weak LoS: deep, frequent fades — the regime of Figure 2.
    double rician_k_db = -3.0;
    int sinusoids_per_tap = 16;
    double env_doppler_hz = 1.5;      // scatterer motion for static clients
  };

  TappedDelayChannel(const Config& config, Rng& rng);

  /// CSI across the 56 subcarriers at client position/time, normalized to
  /// unit average power (large-scale effects are applied by LinkChannel).
  [[nodiscard]] CsiSnapshot csi(Vec2 pos, Time t) const;

  /// Scalar (flat-fading) gain: tap sum without frequency selectivity.
  [[nodiscard]] std::complex<double> flat_gain(Vec2 pos, Time t) const;

  [[nodiscard]] int num_taps() const { return static_cast<int>(taps_.size()); }

 private:
  struct Tap {
    double power;      // linear, sums to (1 - los_power) over taps
    double amplitude;  // sqrt(power), hoisted out of every csi()/flat_gain()
    double delay_ns;
    SpatialTap field;
  };
  std::vector<Tap> taps_;
  double los_power_ = 0.0;         // Rician line-of-sight on the first delay
  double los_amplitude_ = 0.0;     // sqrt(los_power_), precomputed
  double los_phase_rate_ = 0.0;    // rad per metre of client motion (x axis)
  // Precomputed subcarrier phase factors exp(-j 2 pi f_k tau_l), flattened
  // to one contiguous block: tap l's rotations at [l * kNumSubcarriers, ...).
  std::vector<std::complex<double>> subcarrier_rotation_;
};

/// Centre frequency offset of subcarrier index i (0..55), Hz.
[[nodiscard]] double subcarrier_offset_hz(int i);

}  // namespace wgtt::channel
