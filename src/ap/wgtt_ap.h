// The WGTT access point (paper §3, §4.2).
//
// Data plane: downlink packets arrive from the controller tagged with the
// client's 12-bit index and land in the per-client cyclic queue. If this AP
// is the client's serving AP, packets are pumped in index order into the
// NIC hardware queue (the WifiMac), which aggregates and transmits them.
// Non-serving APs accumulate the same packets silently, ready to take over.
//
// Control plane: the three-step switching protocol.
//   stop(c)      controller -> old AP   : cease sending; report first unsent
//   start(c, k)  old AP -> new AP       : resume from index k
//   ack          new AP -> controller   : switch complete
// Control messages bypass the data path (the paper prioritizes them in
// Click); their processing delays are modelled explicitly and calibrated to
// the paper's Table 1 (~17 ms end-to-end).
//
// Monitor mode: every AP overhears the client's block ACKs; when a BA is
// addressed to a different AP, it is forwarded there over the backhaul
// (§3.2.1). The receiving AP de-duplicates (it may have decoded the same BA
// itself, or receive copies from several APs) and merges the bitmap into
// its transmit scoreboard. CSI from every decoded client frame is reported
// to the controller (§3.1.1).
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ap/cyclic_queue.h"
#include "mac/wifi_mac.h"
#include "net/backhaul.h"
#include "net/ids.h"
#include "net/messages.h"
#include "net/packet_pool.h"
#include "obs/metrics.h"
#include "obs/span_timer.h"
#include "sim/scheduler.h"
#include "util/ring_buffer.h"
#include "util/rng.h"

namespace wgtt::ap {

class WgttAp {
 public:
  struct Config {
    mac::WifiMac::Config mac{};
    /// Userspace (Click) handling of a prioritized control packet.
    Time control_processing_mean = Time::micros(2500);
    Time control_processing_std = Time::micros(800);
    /// ioctl round trip to read the first-unsent index from the kernel and
    /// install the per-client filter (paper §3.1.2 "Implementing the
    /// switch").
    Time ioctl_query_mean = Time::micros(9000);
    Time ioctl_query_std = Time::micros(2500);
    /// New AP's processing between start(c, k) and resuming transmission.
    Time start_processing_mean = Time::micros(5000);
    Time start_processing_std = Time::micros(1800);
    /// Pump poll period (covers hw-queue space freed by retry drops).
    Time pump_period = Time::ms(1);
    /// Packets older than this are discarded instead of transmitted. Guards
    /// against replaying stale cyclic-queue slots after this AP re-enters
    /// the fan-out set (the 12-bit ring cannot distinguish a slot written
    /// one lap ago from a fresh one).
    Time cyclic_staleness = Time::ms(500);
    /// Ablation: ignore the start(c, k) index and resume from the newest
    /// buffered packet instead — i.e. a handover *without* the paper's
    /// cross-AP queue management. The backlog between k and newest is lost.
    bool start_from_newest = false;
  };

  struct Stats {
    std::uint64_t downlink_received = 0;
    std::uint64_t stops_handled = 0;
    std::uint64_t starts_handled = 0;
    /// Retransmitted stops answered by replaying the recorded start (same
    /// epoch, same first-unsent index — no kernel re-query).
    std::uint64_t stop_duplicates = 0;
    /// Retransmitted starts answered by replaying the ack (no serving or
    /// next_index change).
    std::uint64_t start_duplicates = 0;
    /// Stop/start messages discarded because their epoch predates the
    /// newest one seen for that client.
    std::uint64_t stale_control_ignored = 0;
    /// Times applying a start moved an already-serving drain pointer
    /// backward in 12-bit space — the duplicate-StartMsg rewind bug. The
    /// epoch guard makes this unreachable; the invariant checker asserts
    /// it stays zero.
    std::uint64_t index_regressions = 0;
    std::uint64_t csi_reports_sent = 0;
    std::uint64_t uplink_forwarded = 0;
    std::uint64_t ba_forwarded = 0;
    std::uint64_t ba_forward_received = 0;
    std::uint64_t ba_forward_duplicate = 0;
    std::uint64_t stale_dropped = 0;
    std::uint64_t heartbeats_answered = 0;
    /// AdoptAp messages that re-homed this AP to a different controller
    /// domain (controller failover or recovery).
    std::uint64_t adoptions = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    /// Times a new-epoch start pointed behind an already-serving drain
    /// pointer and was clamped forward (a forced-failover start racing a
    /// stop that died with the backhaul link). Re-sending from behind the
    /// pointer would duplicate everything already delivered since.
    std::uint64_t starts_clamped_forward = 0;
  };

  WgttAp(net::ApId id, sim::Scheduler& sched, mac::Medium& medium,
         net::Backhaul& backhaul, Rng rng, Config config,
         mac::Medium::PositionFn position);

  /// Wires the system-wide payload pool (owned by the scenario; must
  /// outlive the AP). Pooled DownlinkData handles land in cyclic queues
  /// backed by this shared pool instead of the AP-private one, and every
  /// path that discards a pooled message (unknown client, crashed AP)
  /// drops its reference. Call before register_client.
  void set_payload_pool(net::PacketPool* pool) { payload_pool_ = pool; }

  /// Maps a peer radio to the owning AP, for BA forwarding (the overheard
  /// BA's destination address names the serving AP's radio). Wired by the
  /// scenario.
  void set_ap_directory(
      std::function<std::optional<net::ApId>(mac::RadioId)> ap_of_radio);

  /// Replicated association state (paper §4.3): makes the client a MAC peer
  /// with an ESNR-driven rate controller.
  void register_client(net::ClientId client, mac::RadioId radio);

  /// Disable/enable block-ACK forwarding (ablation).
  void set_ba_forwarding(bool enabled) { ba_forwarding_ = enabled; }
  /// Disable CSI reporting (ablation; starves the controller's selector).
  void set_csi_reporting(bool enabled) { csi_reporting_ = enabled; }

  /// Hard crash: every per-client cyclic queue, drain pointer, and
  /// ControlRecord is wiped (volatile state dies with the process), the NIC
  /// queues are flushed, and the pump stops. The scenario additionally
  /// takes the radio off the air and the backhaul link down — the AP itself
  /// models only its own lost state.
  void crash();
  /// Restart after a crash: the AP rejoins with cold queues. Association
  /// state needs no re-handshake — the shared-BSSID replication (paper
  /// §4.3) means registered clients are re-read from the replicated store,
  /// which register_client already populated.
  void restart();
  [[nodiscard]] bool crashed() const { return crashed_; }
  /// MAC-level delivered-MPDU count snapshotted at the moment of the last
  /// crash; while the AP is down this must not advance (a Dead AP delivers
  /// nothing), which check_invariants asserts.
  [[nodiscard]] std::uint64_t delivered_at_crash() const {
    return delivered_at_crash_;
  }

  [[nodiscard]] net::ApId id() const { return id_; }
  [[nodiscard]] mac::WifiMac& mac() { return mac_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool serving(net::ClientId client) const;
  /// Clients this AP currently serves, ordered by client index. Kept
  /// incrementally at the serving transitions so the pump loop and the
  /// invariant checker's serving-count aggregation never scan the full
  /// per-client map (which holds every registered client at city scale).
  [[nodiscard]] const std::vector<net::ClientId>& serving_clients() const {
    return serving_clients_;
  }
  /// Backlog currently held for `client` in the cyclic queue.
  [[nodiscard]] std::size_t cyclic_backlog(net::ClientId client) const;
  /// Adds this AP's total cyclic backlog and NIC hardware-queue depth over
  /// every registered client to the two accumulators — one pass for the
  /// system-wide gauges instead of two map lookups per (AP, client) pair.
  void queue_totals(std::size_t& cyclic_backlog_total,
                    std::size_t& hw_queue_total) const;
  /// The AP-wide pool behind the per-client cyclic queues (live packet
  /// count, peak backlog, allocated capacity).
  [[nodiscard]] const net::PacketPool& packet_pool() const {
    return packet_pool_;
  }

  /// The controller address this AP reports to (uplink, CSI, switch acks,
  /// heartbeat echoes). Defaults to the legacy single-controller address;
  /// re-pointed by the scenario at domain build time and by an AdoptAp
  /// message when a neighbor controller adopts this AP after a crash.
  void set_controller_node(net::NodeId node) { controller_node_ = node; }
  [[nodiscard]] net::NodeId controller_node() const { return controller_node_; }

  /// Registers and starts recording `ap.*` metrics (cyclic-queue depth and
  /// overwrites, BA-forward traffic, the per-AP legs of the switch
  /// protocol). Instruments are shared by name, so every AP aggregates into
  /// the same `ap.*` series. nullptr detaches.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  /// Which side of the handshake the newest epoch put this AP on. An epoch
  /// names exactly one switch, and one AP sees either its stop (it is the
  /// old AP) or its start (it is the new AP), never both.
  enum class CtlOp : std::uint8_t { kNone, kStop, kStart };

  /// Per-client epoch guard for the switching handshake: the newest epoch
  /// seen plus the recorded answer, so retransmitted control messages are
  /// answered idempotently and stale ones are discarded.
  struct ControlRecord {
    bool have_epoch = false;
    std::uint32_t epoch = 0;  // newest stop/start epoch seen
    CtlOp op = CtlOp::kNone;
    net::ApId stop_new_ap{};
    /// First-unsent index recorded when the stop's kernel query answered;
    /// a retransmitted stop replays this instead of re-querying (the live
    /// next_index belongs to a drain that may have moved on).
    std::optional<std::uint16_t> stop_first_unsent;
    bool start_acked = false;
  };

  struct ClientState {
    mac::RadioId radio{};
    CyclicQueue queue;
    bool serving = false;
    std::uint16_t next_index = 0;  // next index to push toward the NIC
    ControlRecord ctl;
    RingBuffer<std::uint64_t> seen_ba_uids{64};
  };

  void handle_backhaul(net::NodeId from, net::BackhaulMessage msg);
  void handle_downlink(net::DownlinkData&& msg);
  void handle_stop(const net::StopMsg& msg);
  void handle_start(const net::StartMsg& msg);
  void handle_ba_forward(const net::BlockAckForward& msg);
  void on_heard(const mac::Frame& frame, bool decoded,
                const channel::CsiMeasurement& csi);
  void pump(ClientState& cs);
  void pump_all();
  /// Single point through which cs.serving ever changes, keeping the sorted
  /// serving_clients_ list exact.
  void set_serving(ClientState& cs, net::ClientId client, bool serving);
  ClientState* client_state(net::ClientId client);
  [[nodiscard]] bool ba_seen(ClientState& cs, std::uint64_t uid);
  [[nodiscard]] Time draw_delay(Time mean, Time std);

  net::ApId id_;
  sim::Scheduler& sched_;
  net::Backhaul& backhaul_;
  net::NodeId controller_node_ = net::NodeId::controller();
  Rng rng_;
  Config config_;
  mac::WifiMac mac_;
  std::function<std::optional<net::ApId>(mac::RadioId)> ap_of_radio_;
  /// Backs every per-client cyclic queue on this AP when no system-wide
  /// pool is wired; declared before clients_ so the queues release their
  /// handles into a live pool.
  net::PacketPool packet_pool_;
  /// The shared fan-out pool (set_payload_pool), or nullptr for the legacy
  /// per-AP pool above.
  net::PacketPool* payload_pool_ = nullptr;
  std::unordered_map<net::ClientId, ClientState> clients_;
  std::unordered_map<mac::RadioId, net::ClientId> client_of_radio_;
  /// Clients with cs.serving == true, sorted by client index (see
  /// serving_clients()); maintained only through set_serving.
  std::vector<net::ClientId> serving_clients_;
  bool ba_forwarding_ = true;
  bool csi_reporting_ = true;
  bool crashed_ = false;
  std::uint64_t delivered_at_crash_ = 0;
  Stats stats_;
  std::unique_ptr<sim::Timer> pump_timer_;

  struct Metrics {
    obs::Counter* downlink_received;
    obs::Counter* cyclic_overwrites;  // ring lapped an undrained slot
    obs::Counter* stale_dropped;
    obs::Counter* pump_enqueued;
    obs::Counter* stops_handled;
    obs::Counter* starts_handled;
    obs::Counter* stop_duplicates;
    obs::Counter* start_duplicates;
    obs::Counter* stale_control_ignored;
    obs::Counter* ba_forwarded;
    obs::Counter* ba_forward_received;
    obs::Counter* ba_forward_duplicate;
    obs::Counter* csi_reports_sent;
    obs::Counter* uplink_forwarded;
    obs::Histogram* cyclic_occupancy;  // sampled per downlink arrival
    // The two AP-side legs of Table 1's switch-time breakdown.
    obs::SpanTracker stop_to_start;  // stop received -> start sent (old AP)
    obs::SpanTracker start_to_ack;   // start received -> ack sent (new AP)
  };
  std::optional<Metrics> metrics_;
};

}  // namespace wgtt::ap
