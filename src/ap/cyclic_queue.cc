#include "ap/cyclic_queue.h"

namespace wgtt::ap {

CyclicQueue::CyclicQueue() : slots_(kIndexSpace) {}

void CyclicQueue::put(std::uint16_t index, net::Packet packet) {
  index &= kIndexSpace - 1;
  Slot& s = slots_[index];
  ++puts_;
  if (!s.occupied) {
    ++occupied_;
  } else {
    ++overwrites_;
  }
  s.index = index;
  s.occupied = true;
  s.packet = std::move(packet);
  newest_ = index;
}

const net::Packet* CyclicQueue::peek(std::uint16_t index) const {
  index &= kIndexSpace - 1;
  const Slot& s = slots_[index];
  return s.occupied && s.index == index ? &s.packet : nullptr;
}

std::optional<net::Packet> CyclicQueue::take(std::uint16_t index) {
  index &= kIndexSpace - 1;
  Slot& s = slots_[index];
  if (!s.occupied || s.index != index) return std::nullopt;
  s.occupied = false;
  --occupied_;
  return std::move(s.packet);
}

bool CyclicQueue::has(std::uint16_t index) const { return peek(index) != nullptr; }

void CyclicQueue::clear() {
  for (auto& s : slots_) s.occupied = false;
  occupied_ = 0;
  newest_.reset();
}

}  // namespace wgtt::ap
