#include "ap/cyclic_queue.h"

#include <utility>

namespace wgtt::ap {

CyclicQueue::CyclicQueue(net::PacketPool* pool)
    : owned_pool_(pool == nullptr ? std::make_unique<net::PacketPool>()
                                  : nullptr),
      pool_(pool == nullptr ? owned_pool_.get() : pool) {}
// The slot ring is allocated on the first put(): every AP keeps one queue
// per registered client, and at city scale (1024 APs x 256 clients) the
// eager 32 KB rings alone would cost ~8 GB while only the handful of
// queues near each client ever see a packet.

CyclicQueue::~CyclicQueue() {
  // Hand occupied slots back so a shared pool's accounting stays exact.
  if (pool_ != nullptr) clear();
}

void CyclicQueue::put(std::uint16_t index, net::Packet packet) {
  put_handle(index, pool_->acquire(std::move(packet)));
}

void CyclicQueue::put_handle(std::uint16_t index,
                             net::PacketPool::Handle handle) {
  index &= kIndexSpace - 1;
  if (slots_.empty()) slots_.resize(kIndexSpace);
  Slot& s = slots_[index];
  ++puts_;
  if (!s.occupied) {
    ++occupied_;
  } else {
    ++overwrites_;
    // The displaced occupant may be shared with other queues: drop this
    // queue's reference, never mutate the pool slot in place.
    pool_->drop(s.handle);
  }
  s.handle = handle;
  s.index = index;
  s.occupied = true;
  newest_ = index;
}

const net::Packet* CyclicQueue::peek(std::uint16_t index) const {
  if (slots_.empty()) return nullptr;
  index &= kIndexSpace - 1;
  const Slot& s = slots_[index];
  return s.occupied && s.index == index ? pool_->get(s.handle) : nullptr;
}

std::optional<net::Packet> CyclicQueue::take(std::uint16_t index) {
  if (slots_.empty()) return std::nullopt;
  index &= kIndexSpace - 1;
  Slot& s = slots_[index];
  if (!s.occupied || s.index != index) return std::nullopt;
  s.occupied = false;
  --occupied_;
  return pool_->release(std::exchange(s.handle, net::PacketPool::kNullHandle));
}

bool CyclicQueue::drop(std::uint16_t index) {
  if (slots_.empty()) return false;
  index &= kIndexSpace - 1;
  Slot& s = slots_[index];
  if (!s.occupied || s.index != index) return false;
  s.occupied = false;
  --occupied_;
  pool_->drop(std::exchange(s.handle, net::PacketPool::kNullHandle));
  return true;
}

bool CyclicQueue::has(std::uint16_t index) const { return peek(index) != nullptr; }

void CyclicQueue::clear() {
  for (auto& s : slots_) {
    if (s.occupied) {
      pool_->drop(std::exchange(s.handle, net::PacketPool::kNullHandle));
      s.occupied = false;
    }
  }
  occupied_ = 0;
  newest_.reset();
}

}  // namespace wgtt::ap
