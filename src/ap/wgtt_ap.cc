#include "ap/wgtt_ap.h"

#include <algorithm>

#include "mac/block_ack.h"
#include "phy/rate_control.h"

namespace wgtt::ap {

using net::BackhaulMessage;
using net::NodeId;

WgttAp::WgttAp(net::ApId id, sim::Scheduler& sched, mac::Medium& medium,
               net::Backhaul& backhaul, Rng rng, Config config,
               mac::Medium::PositionFn position)
    : id_(id),
      sched_(sched),
      backhaul_(backhaul),
      rng_(rng),
      config_([&] {
        Config c = config;
        c.mac.accept_bssid = true;  // thin-AP shared BSSID
        return c;
      }()),
      mac_(sched, medium, rng_.fork(), config_.mac) {
  mac_.attach(std::move(position));
  mac_.on_deliver = [this](mac::RadioId from, const net::Packet& pkt) {
    // Uplink data decoded by this AP: tunnel to the controller (§3.2.2).
    auto it = client_of_radio_.find(from);
    if (it == client_of_radio_.end()) return;
    ++stats_.uplink_forwarded;
    if (metrics_) metrics_->uplink_forwarded->inc();
    backhaul_.send(NodeId::ap(id_), controller_node_,
                   net::UplinkData{id_, pkt});
  };
  mac_.on_heard = [this](const mac::Frame& f, bool decoded,
                         const channel::CsiMeasurement& csi) {
    on_heard(f, decoded, csi);
  };
  mac_.on_mpdu_acked = [this](mac::RadioId peer, std::uint16_t, const net::Packet&) {
    auto it = client_of_radio_.find(peer);
    if (it == client_of_radio_.end()) return;
    ClientState* cs = client_state(it->second);
    if (cs != nullptr) pump(*cs);
  };
  backhaul_.attach(NodeId::ap(id_), [this](NodeId from, BackhaulMessage msg) {
    handle_backhaul(from, std::move(msg));
  });
  pump_timer_ = std::make_unique<sim::Timer>(
      sched_,
      [this] {
        pump_all();
        pump_timer_->start(config_.pump_period);
      },
      sim::EventCategory::kMacTx);
  pump_timer_->start(config_.pump_period);
}

void WgttAp::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_.reset();
    return;
  }
  Metrics m;
  m.downlink_received = &registry->counter("ap.downlink_received");
  m.cyclic_overwrites = &registry->counter("ap.cyclic_overwrites");
  m.stale_dropped = &registry->counter("ap.stale_dropped");
  m.pump_enqueued = &registry->counter("ap.pump_enqueued");
  m.stops_handled = &registry->counter("ap.stops_handled");
  m.starts_handled = &registry->counter("ap.starts_handled");
  m.stop_duplicates = &registry->counter("ap.stop_duplicates");
  m.start_duplicates = &registry->counter("ap.start_duplicates");
  m.stale_control_ignored = &registry->counter("ap.stale_control_ignored");
  m.ba_forwarded = &registry->counter("ap.ba_forwarded");
  m.ba_forward_received = &registry->counter("ap.ba_forward_received");
  m.ba_forward_duplicate = &registry->counter("ap.ba_forward_duplicate");
  m.csi_reports_sent = &registry->counter("ap.csi_reports_sent");
  m.uplink_forwarded = &registry->counter("ap.uplink_forwarded");
  m.cyclic_occupancy =
      &registry->histogram("ap.cyclic_occupancy", 0.0, 2048.0, 128);
  m.stop_to_start.set_sink(
      &registry->histogram("ap.stop_to_start_ms", 0.0, 40.0, 160));
  m.start_to_ack.set_sink(
      &registry->histogram("ap.start_to_ack_ms", 0.0, 40.0, 160));
  metrics_ = std::move(m);
}

void WgttAp::set_ap_directory(
    std::function<std::optional<net::ApId>(mac::RadioId)> ap_of_radio) {
  ap_of_radio_ = std::move(ap_of_radio);
}

void WgttAp::register_client(net::ClientId client, mac::RadioId radio) {
  if (clients_.contains(client)) return;
  ClientState cs;
  cs.radio = radio;
  // Queues share the system-wide payload pool when one is wired (pooled
  // fan-out handles must land in the pool that owns them), the AP-wide
  // pool otherwise.
  cs.queue =
      CyclicQueue(payload_pool_ != nullptr ? payload_pool_ : &packet_pool_);
  clients_.emplace(client, std::move(cs));
  client_of_radio_[radio] = client;
  mac_.add_peer(radio);
  // WGTT APs have per-frame CSI; drive the rate from it (§4.2 keeps the
  // default controller, but the default Atheros controller converges to the
  // same choice — see bench_abl_selection_metric for the comparison).
  mac_.set_rate_controller(radio, std::make_unique<phy::EsnrRateSelector>());
}

bool WgttAp::serving(net::ClientId client) const {
  auto it = clients_.find(client);
  return it != clients_.end() && it->second.serving;
}

std::size_t WgttAp::cyclic_backlog(net::ClientId client) const {
  auto it = clients_.find(client);
  return it == clients_.end() ? 0 : it->second.queue.occupancy();
}

void WgttAp::queue_totals(std::size_t& cyclic_backlog_total,
                          std::size_t& hw_queue_total) const {
  for (const auto& [client, cs] : clients_) {
    cyclic_backlog_total += cs.queue.occupancy();
    hw_queue_total += mac_.queue_depth(cs.radio);
  }
}

void WgttAp::set_serving(ClientState& cs, net::ClientId client, bool serving) {
  if (cs.serving == serving) return;
  cs.serving = serving;
  const auto pos = std::lower_bound(
      serving_clients_.begin(), serving_clients_.end(), client,
      [](net::ClientId a, net::ClientId b) {
        return net::index_of(a) < net::index_of(b);
      });
  if (serving) {
    serving_clients_.insert(pos, client);
  } else if (pos != serving_clients_.end() && *pos == client) {
    serving_clients_.erase(pos);
  }
}

WgttAp::ClientState* WgttAp::client_state(net::ClientId client) {
  auto it = clients_.find(client);
  return it == clients_.end() ? nullptr : &it->second;
}

Time WgttAp::draw_delay(Time mean, Time std) {
  const double ns = rng_.normal(static_cast<double>(mean.count_ns()),
                                static_cast<double>(std.count_ns()));
  return Time::ns(std::max<std::int64_t>(static_cast<std::int64_t>(ns),
                                         Time::micros(100).count_ns()));
}

void WgttAp::handle_backhaul(NodeId /*from*/, BackhaulMessage msg) {
  // Belt and braces: the scenario takes a crashed AP's backhaul link down,
  // so nothing should arrive here — but a dead process handles nothing.
  // A pooled payload reaching a corpse still owns a pool reference, which
  // must be dropped or the slot leaks for the rest of the run.
  if (crashed_) {
    if (const auto* d = std::get_if<net::DownlinkData>(&msg);
        d != nullptr && d->pooled() && payload_pool_ != nullptr) {
      payload_pool_->drop(d->handle);
    }
    return;
  }
  std::visit(
      [this](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, net::DownlinkData>) {
          handle_downlink(std::move(m));
        } else if constexpr (std::is_same_v<T, net::StopMsg>) {
          handle_stop(m);
        } else if constexpr (std::is_same_v<T, net::StartMsg>) {
          handle_start(m);
        } else if constexpr (std::is_same_v<T, net::BlockAckForward>) {
          handle_ba_forward(m);
        } else if constexpr (std::is_same_v<T, net::Heartbeat>) {
          // Answered inline, no Click crossing: the liveness probe runs in
          // the kernel path and the RTT sample measures the backhaul alone.
          ++stats_.heartbeats_answered;
          backhaul_.send(NodeId::ap(id_), controller_node_,
                         net::HeartbeatAck{id_, m.seq});
        } else if constexpr (std::is_same_v<T, net::AdoptAp>) {
          // A (new) controller domain took ownership of this AP. Re-point
          // the report path; idempotent on duplicates.
          const NodeId node = NodeId::controller(m.new_domain);
          if (!(node == controller_node_)) {
            controller_node_ = node;
            ++stats_.adoptions;
          }
        }
        // AssocSync is handled by the scenario wiring (register_client);
        // UplinkData / CsiReport / SwitchAck never address an AP.
      },
      std::move(msg));
}

void WgttAp::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++stats_.crashes;
  delivered_at_crash_ = mac_.total_stats().mpdus_delivered;
  for (auto& [client, cs] : clients_) {
    cs.queue.clear();
    set_serving(cs, client, false);
    cs.next_index = 0;
    cs.ctl = ControlRecord{};
    cs.seen_ba_uids.clear();
    mac_.flush_peer(cs.radio);
  }
  pump_timer_->cancel();
}

void WgttAp::restart() {
  if (!crashed_) return;
  crashed_ = false;
  ++stats_.restarts;
  pump_timer_->start(config_.pump_period);
}

void WgttAp::handle_downlink(net::DownlinkData&& msg) {
  const bool pooled = msg.pooled() && payload_pool_ != nullptr;
  // A pooled message carries no Packet body; the client is read through
  // the shared pool (one indexed load, the handle stays shared).
  const net::ClientId client =
      pooled ? payload_pool_->get(msg.handle)->client : msg.packet.client;
  ClientState* cs = client_state(client);
  if (cs == nullptr) {  // not yet associated here
    if (pooled) payload_pool_->drop(msg.handle);
    return;
  }
  ++stats_.downlink_received;
  const std::uint64_t overwrites_before = cs->queue.overwrites();
  if (pooled) {
    cs->queue.put_handle(msg.index, msg.handle);  // adopts the reference
  } else {
    cs->queue.put(msg.index, std::move(msg.packet));
  }
  if (metrics_) {
    metrics_->downlink_received->inc();
    metrics_->cyclic_overwrites->inc(cs->queue.overwrites() -
                                     overwrites_before);
    metrics_->cyclic_occupancy->observe(
        static_cast<double>(cs->queue.occupancy()));
  }
  if (cs->serving) pump(*cs);
}

void WgttAp::handle_stop(const net::StopMsg& msg) {
  ClientState* cs = client_state(msg.client);
  if (cs == nullptr) return;
  ControlRecord& ctl = cs->ctl;
  if (ctl.have_epoch && msg.epoch < ctl.epoch) {
    // A leftover of an already-superseded switch; acting on it would stop
    // a drain the controller believes is live.
    ++stats_.stale_control_ignored;
    if (metrics_) metrics_->stale_control_ignored->inc();
    return;
  }
  if (ctl.have_epoch && msg.epoch == ctl.epoch && ctl.op == CtlOp::kStop) {
    // Retransmit of a stop already seen (the start or the ack got lost
    // downstream). Replay the RECORDED first-unsent index rather than
    // re-querying: the live next_index belongs to whichever AP is draining
    // now, and a fresh query would hand the new AP a rewound (or advanced)
    // pointer. No span re-begin either — the switch started once.
    // An equal-epoch stop over a START record falls through instead: a
    // single controller never stops its serving AP within the same epoch,
    // but an inter-domain quench (the source stopping its drain under the
    // target's minted epoch, or an ownership yield) legitimately does.
    ++stats_.stop_duplicates;
    if (metrics_) metrics_->stop_duplicates->inc();
    if (ctl.op == CtlOp::kStop && ctl.stop_first_unsent) {
      const Time proc = draw_delay(config_.control_processing_mean,
                                   config_.control_processing_std);
      sched_.schedule_in(proc, [this, client = msg.client, epoch = msg.epoch] {
        ClientState* s = client_state(client);
        if (s == nullptr) return;
        const ControlRecord& c = s->ctl;
        if (!c.have_epoch || c.epoch != epoch || c.op != CtlOp::kStop ||
            !c.stop_first_unsent) {
          return;  // superseded while the replay was in flight
        }
        backhaul_.send(net::NodeId::ap(id_), net::NodeId::ap(c.stop_new_ap),
                       net::StartMsg{client, id_, *c.stop_first_unsent, epoch});
      }, sim::EventCategory::kControl);
    }
    // else: the kernel query is still in flight; its answer covers this
    // duplicate too.
    return;
  }
  ctl.have_epoch = true;
  ctl.epoch = msg.epoch;
  ctl.op = CtlOp::kStop;
  ctl.stop_new_ap = msg.new_ap;
  ctl.stop_first_unsent.reset();
  ctl.start_acked = false;
  ++stats_.stops_handled;
  if (metrics_) {
    metrics_->stops_handled->inc();
    metrics_->stop_to_start.begin(net::index_of(msg.client), sched_.now());
  }
  // Control packets are prioritized but still cross the Click userspace.
  const Time proc = draw_delay(config_.control_processing_mean,
                               config_.control_processing_std);
  sched_.schedule_in(proc, [this, client = msg.client, new_ap = msg.new_ap,
                            epoch = msg.epoch] {
    ClientState* s = client_state(client);
    if (s == nullptr) return;
    if (!s->ctl.have_epoch || s->ctl.epoch != epoch ||
        s->ctl.op != CtlOp::kStop) {
      return;  // a newer epoch took over while we crossed userspace
    }
    // Cease sending: stop pumping. MPDUs already in the NIC hardware queue
    // keep draining over the (deteriorating) old link — the paper measures
    // ~6 ms of residual transmissions and accepts them.
    set_serving(*s, client, false);
    // Query the kernel for the first unsent index (ioctl round trip), then
    // hand off to the new AP.
    const Time q = draw_delay(config_.ioctl_query_mean, config_.ioctl_query_std);
    sched_.schedule_in(q, [this, client, new_ap, epoch] {
      ClientState* s2 = client_state(client);
      if (s2 == nullptr) return;
      if (!s2->ctl.have_epoch || s2->ctl.epoch != epoch ||
          s2->ctl.op != CtlOp::kStop) {
        return;
      }
      s2->ctl.stop_first_unsent = s2->next_index;
      if (metrics_) {
        metrics_->stop_to_start.end(net::index_of(client), sched_.now());
      }
      backhaul_.send(net::NodeId::ap(id_), net::NodeId::ap(new_ap),
                     net::StartMsg{client, id_, s2->next_index, epoch});
    }, sim::EventCategory::kControl);
  }, sim::EventCategory::kControl);
}

void WgttAp::handle_start(const net::StartMsg& msg) {
  ClientState* cs = client_state(msg.client);
  if (cs == nullptr) return;
  ControlRecord& ctl = cs->ctl;
  if (ctl.have_epoch && msg.epoch < ctl.epoch) {
    // e.g. a delayed duplicate arriving after this AP was already stopped
    // for a later switch: becoming "serving" again would duplicate the
    // client's serving AP.
    ++stats_.stale_control_ignored;
    if (metrics_) metrics_->stale_control_ignored->inc();
    return;
  }
  if (ctl.have_epoch && msg.epoch == ctl.epoch) {
    // Retransmit chain reached us again (our ack was lost). Replay the ack
    // only: re-applying the stale k would rewind next_index and
    // re-transmit everything already delivered since.
    ++stats_.start_duplicates;
    if (metrics_) metrics_->start_duplicates->inc();
    if (ctl.op == CtlOp::kStart && ctl.start_acked) {
      const Time proc = draw_delay(config_.control_processing_mean,
                                   config_.control_processing_std);
      sched_.schedule_in(proc, [this, client = msg.client, epoch = msg.epoch] {
        if (client_state(client) == nullptr) return;
        backhaul_.send(net::NodeId::ap(id_), controller_node_,
                       net::SwitchAck{client, id_, epoch});
      }, sim::EventCategory::kControl);
    }
    // else: the original start is still being processed; it will ack.
    return;
  }
  ctl.have_epoch = true;
  ctl.epoch = msg.epoch;
  ctl.op = CtlOp::kStart;
  ctl.start_acked = false;
  ctl.stop_first_unsent.reset();
  ++stats_.starts_handled;
  if (metrics_) {
    metrics_->starts_handled->inc();
    metrics_->start_to_ack.begin(net::index_of(msg.client), sched_.now());
  }
  const Time proc = draw_delay(config_.start_processing_mean,
                               config_.start_processing_std);
  sched_.schedule_in(proc, [this, client = msg.client,
                            k = msg.first_unsent_index, epoch = msg.epoch] {
    ClientState* s = client_state(client);
    if (s == nullptr) return;
    if (!s->ctl.have_epoch || s->ctl.epoch != epoch ||
        s->ctl.op != CtlOp::kStart) {
      return;  // superseded while we crossed userspace
    }
    std::uint16_t applied;
    if (config_.start_from_newest && s->queue.newest()) {
      // Queue-management ablation: drop the handed-off backlog on the floor
      // and continue from whatever arrives next.
      applied = (*s->queue.newest() + 1) & (CyclicQueue::kIndexSpace - 1);
    } else {
      applied = k & (CyclicQueue::kIndexSpace - 1);
    }
    if (s->serving &&
        mac::seq_sub(applied, s->next_index) > CyclicQueue::kIndexSpace / 2) {
      // A NEW-epoch start pointing behind an already-serving drain pointer.
      // Reachable on forced failover: the controller bootstraps us from its
      // rewound watermark while the stop meant for us died with the old
      // epoch's backhaul fault, so we never stopped. Everything before our
      // own pointer is already delivered — resume from it, never rewind.
      // (A DUPLICATE start rewinding the pointer remains the bug the epoch
      // guard above makes unreachable — it never gets here. With the clamp,
      // index_regressions counts rewinds actually applied, i.e. stays zero,
      // which the invariant checker asserts.)
      ++stats_.starts_clamped_forward;
      applied = s->next_index;
    }
    if (s->serving &&
        mac::seq_sub(applied, s->next_index) > CyclicQueue::kIndexSpace / 2) {
      ++stats_.index_regressions;
    }
    set_serving(*s, client, true);
    s->next_index = applied;
    s->ctl.start_acked = true;
    if (metrics_) {
      metrics_->start_to_ack.end(net::index_of(client), sched_.now());
    }
    backhaul_.send(net::NodeId::ap(id_), controller_node_,
                   net::SwitchAck{client, id_, epoch});
    pump(*s);
  }, sim::EventCategory::kControl);
}

bool WgttAp::ba_seen(ClientState& cs, std::uint64_t uid) {
  for (std::size_t i = 0; i < cs.seen_ba_uids.size(); ++i) {
    if (cs.seen_ba_uids.at(i) == uid) return true;
  }
  if (cs.seen_ba_uids.full()) cs.seen_ba_uids.pop_front();
  cs.seen_ba_uids.push_back(uid);
  return false;
}

void WgttAp::handle_ba_forward(const net::BlockAckForward& msg) {
  ClientState* cs = client_state(msg.client);
  if (cs == nullptr) return;
  ++stats_.ba_forward_received;
  if (metrics_) metrics_->ba_forward_received->inc();
  if (ba_seen(*cs, msg.ba_uid)) {
    // Already merged (own NIC or another AP's forward): drop (§3.2.1).
    ++stats_.ba_forward_duplicate;
    if (metrics_) metrics_->ba_forward_duplicate->inc();
    return;
  }
  mac::BaBitmap ba;
  ba.start_seq = msg.start_seq;
  ba.bits = msg.bitmap;
  mac_.inject_block_ack(cs->radio, ba);
}

void WgttAp::on_heard(const mac::Frame& frame, bool decoded,
                      const channel::CsiMeasurement& csi) {
  if (!decoded) return;
  auto it = client_of_radio_.find(frame.from);
  if (it == client_of_radio_.end()) return;
  const net::ClientId client = it->second;

  // CSI extraction on every decoded client frame (§3.1.1).
  if (csi_reporting_) {
    ++stats_.csi_reports_sent;
    if (metrics_) metrics_->csi_reports_sent->inc();
    backhaul_.send(net::NodeId::ap(id_), controller_node_,
                   net::CsiReport{id_, client, csi});
  }

  // Monitor-mode BA forwarding (§3.2.1): a client BA addressed to another
  // AP is forwarded there; the serving AP has no monitor interface for its
  // own client (it decodes its BAs directly).
  if (const auto* ba = std::get_if<mac::BlockAckFrame>(&frame.body)) {
    ClientState* cs = client_state(client);
    if (cs == nullptr) return;
    if (frame.to == mac_.radio()) {
      // Our own BA: remember its identity so a forwarded copy is dropped.
      (void)ba_seen(*cs, frame.tx_uid);
      return;
    }
    if (!ba_forwarding_ || cs->serving || ap_of_radio_ == nullptr) return;
    const std::optional<net::ApId> dest = ap_of_radio_(frame.to);
    if (!dest || *dest == id_) return;
    ++stats_.ba_forwarded;
    if (metrics_) metrics_->ba_forwarded->inc();
    backhaul_.send(
        net::NodeId::ap(id_), net::NodeId::ap(*dest),
        net::BlockAckForward{client, id_, ba->start_seq, ba->bitmap, frame.tx_uid});
  }
}

void WgttAp::pump(ClientState& cs) {
  if (crashed_ || !cs.serving) return;
  while (mac_.queue_depth(cs.radio) < config_.mac.hw_queue_capacity) {
    if (const net::Packet* head = cs.queue.peek(cs.next_index)) {
      if (sched_.now() - head->created > config_.cyclic_staleness) {
        // A slot written a lap (or a long lull) ago: useless and, worse,
        // possibly already delivered by another AP. Discard — drop() just
        // decrements the pool reference, no Packet is materialized.
        cs.queue.drop(cs.next_index);
        ++stats_.stale_dropped;
        if (metrics_) metrics_->stale_dropped->inc();
      } else {
        mac_.enqueue(cs.radio, *cs.queue.take(cs.next_index), cs.next_index);
        if (metrics_) metrics_->pump_enqueued->inc();
      }
      cs.next_index = (cs.next_index + 1) & (CyclicQueue::kIndexSpace - 1);
      continue;
    }
    // Gap handling: if newer packets exist (this AP joined the fan-out set
    // after index k was assigned), skip forward to the next occupied slot.
    const auto newest = cs.queue.newest();
    if (!newest || cs.queue.occupancy() == 0) break;
    const std::uint16_t end = (*newest + 1) & (CyclicQueue::kIndexSpace - 1);
    std::uint16_t probe = cs.next_index;
    bool found = false;
    while (probe != end) {
      if (cs.queue.has(probe)) {
        found = true;
        break;
      }
      probe = (probe + 1) & (CyclicQueue::kIndexSpace - 1);
    }
    if (!found) break;
    cs.next_index = probe;
  }
}

void WgttAp::pump_all() {
  // Only serving queues ever drain; iterating the incrementally-maintained
  // list keeps the 1 ms tick O(served clients), not O(registered clients).
  for (const net::ClientId client : serving_clients_) {
    ClientState* cs = client_state(client);
    if (cs != nullptr) pump(*cs);
  }
}

}  // namespace wgtt::ap
