// The per-client cyclic queue (paper §3.1.2, Figure 7).
//
// The controller fans every downlink packet out to all in-range APs tagged
// with a 12-bit index number that increments per packet per client. Each AP
// stores packets in a ring indexed by that number. Only the serving AP
// drains the ring toward the radio; the others keep accumulating, so that
// on a switch the new AP already holds the backlog and can resume from any
// index k it is told in start(c, k) — no packets need to cross the backhaul
// at switch time. New packets for a slot simply overwrite what an old index
// left behind (the ring is sized to the whole 12-bit space, so overwrite
// only happens 4096 packets later, far beyond any realistic backlog).
//
// Storage: ring slots hold 4-byte net::PacketPool handles, not packets —
// the 4096-entry ring costs ~32 KB regardless of packet size, and packet
// memory scales with the live backlog via the pool (see packet_pool.h).
// The ring itself is allocated lazily on the first put(), so the vast
// majority of (AP, client) queues in a city-scale deployment — which never
// receive a packet thanks to the bounded fan-out — cost a few pointers.
// Queues of one AP share that AP's pool; a queue constructed without a pool
// (tests, microbenches) owns a private one.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "net/packet_pool.h"

namespace wgtt::ap {

class CyclicQueue {
 public:
  static constexpr std::uint16_t kIndexSpace = 1u << 12;  // m = 12

  /// `pool` backs the packet storage and must outlive the queue; nullptr
  /// gives the queue a private pool.
  explicit CyclicQueue(net::PacketPool* pool = nullptr);
  ~CyclicQueue();

  CyclicQueue(CyclicQueue&&) = default;
  CyclicQueue& operator=(CyclicQueue&&) = default;

  /// Stores `packet` under `index` (overwrites any stale occupant).
  void put(std::uint16_t index, net::Packet packet);

  /// Stores an already-pooled handle under `index`, taking ownership of one
  /// reference (the fan-out path: the controller acquired once and added a
  /// reference per AP). The handle must belong to this queue's pool. An
  /// overwritten occupant's reference is dropped, never copied.
  void put_handle(std::uint16_t index, net::PacketPool::Handle handle);

  /// Packet at `index`, if that exact index is present.
  [[nodiscard]] const net::Packet* peek(std::uint16_t index) const;

  /// Removes and returns the packet at `index`. Moves out of the pool slot
  /// when this queue held the last reference; copies while other queues
  /// still share the handle.
  std::optional<net::Packet> take(std::uint16_t index);

  /// Removes the packet at `index` without materializing it (the stale-drop
  /// path). Returns whether a slot was dropped.
  bool drop(std::uint16_t index);

  [[nodiscard]] bool has(std::uint16_t index) const;

  /// Number of occupied slots.
  [[nodiscard]] std::size_t occupancy() const { return occupied_; }

  /// Highest index ever stored (newest packet), if any; used to measure
  /// backlog depth in the queue microbenchmarks.
  [[nodiscard]] std::optional<std::uint16_t> newest() const { return newest_; }

  /// Lifetime put() calls, for occupancy/drop accounting.
  [[nodiscard]] std::uint64_t puts() const { return puts_; }
  /// put() calls that displaced an undrained occupant — the ring lapped the
  /// drain (or a non-serving AP accumulated a full 12-bit lap), so a packet
  /// was silently lost. Nonzero here is the signal the paper's "4096 slots
  /// is far beyond any realistic backlog" sizing argument has broken down.
  [[nodiscard]] std::uint64_t overwrites() const { return overwrites_; }

  /// Drops every occupied slot's reference back to the pool (crash wipe:
  /// no packets are materialized; handles shared with other queues stay
  /// live there).
  void clear();

 private:
  struct Slot {
    std::uint16_t index = 0;
    bool occupied = false;
    net::PacketPool::Handle handle = net::PacketPool::kNullHandle;
  };
  std::unique_ptr<net::PacketPool> owned_pool_;  // only when none was shared
  net::PacketPool* pool_;
  std::vector<Slot> slots_;
  std::size_t occupied_ = 0;
  std::optional<std::uint16_t> newest_;
  std::uint64_t puts_ = 0;
  std::uint64_t overwrites_ = 0;
};

}  // namespace wgtt::ap
