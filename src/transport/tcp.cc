#include "transport/tcp.h"

#include <algorithm>

namespace wgtt::transport {

TcpSender::TcpSender(sim::Scheduler& sched, SendFn send, Config config)
    : sched_(sched),
      send_(std::move(send)),
      config_(config),
      cwnd_(config.initial_cwnd_segments * static_cast<double>(config.mss)),
      ssthresh_(config.max_cwnd_segments * static_cast<double>(config.mss)),
      rto_(Time::sec(1)) {
  rto_timer_ = std::make_unique<sim::Timer>(sched_, [this] { on_rto(); },
                                            sim::EventCategory::kTimer);
}

void TcpSender::register_metrics(obs::MetricsRegistry& registry) {
  registry.counter("tcp.segments_sent");
  registry.counter("tcp.retransmissions");
  registry.counter("tcp.fast_retransmits");
  registry.counter("tcp.rtos");
  registry.gauge("tcp.cwnd_segments");
  registry.histogram("tcp.rtt_ms", 0.0, 500.0, 250);
}

void TcpSender::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_.reset();
    return;
  }
  Metrics m;
  m.segments_sent = &registry->counter("tcp.segments_sent");
  m.retransmissions = &registry->counter("tcp.retransmissions");
  m.fast_retransmits = &registry->counter("tcp.fast_retransmits");
  m.rtos = &registry->counter("tcp.rtos");
  m.cwnd_segments = &registry->gauge("tcp.cwnd_segments");
  m.rtt_ms = &registry->histogram("tcp.rtt_ms", 0.0, 500.0, 250);
  metrics_ = m;
}

std::uint64_t TcpSender::available() const {
  if (unlimited_) return ~0ULL >> 1;
  return app_limit_ > snd_nxt_ ? app_limit_ - snd_nxt_ : 0;
}

void TcpSender::send_bytes(std::uint64_t n) {
  app_limit_ += n;
  if (alive_) try_send();
}

void TcpSender::set_unlimited(bool v) {
  unlimited_ = v;
  if (alive_) try_send();
}

double TcpSender::cwnd_segments() const {
  return cwnd_ / static_cast<double>(config_.mss);
}

void TcpSender::send_segment(std::uint64_t seq, bool is_retransmission) {
  const std::uint64_t app_end = unlimited_ ? ~0ULL >> 1 : app_limit_;
  const std::size_t len = static_cast<std::size_t>(
      std::min<std::uint64_t>(config_.mss, app_end - seq));
  if (len == 0) return;

  net::Packet p = net::make_packet();
  p.client = config_.client;
  p.downlink = config_.downlink;
  p.proto = net::Proto::kTcp;
  p.src_port = config_.src_port;
  p.dst_port = config_.dst_port;
  p.ip_id = next_ip_id_++;
  p.payload_bytes = len;
  p.created = sched_.now();
  net::TcpFields tcp;
  tcp.seq = seq;
  p.tcp = tcp;

  ++stats_.segments_sent;
  if (is_retransmission) ++stats_.retransmissions;
  if (metrics_) {
    metrics_->segments_sent->inc();
    if (is_retransmission) metrics_->retransmissions->inc();
  }
  send_(std::move(p));
}

void TcpSender::try_send() {
  while (flight() + config_.mss <= static_cast<std::uint64_t>(cwnd_) &&
         available() > 0) {
    send_segment(snd_nxt_, false);
    snd_nxt_ += std::min<std::uint64_t>(config_.mss, available());
    if (!rto_timer_->armed()) arm_rto();
  }
}

void TcpSender::arm_rto() { rto_timer_->start(rto_); }

void TcpSender::on_ack_packet(const net::Packet& p) {
  if (!alive_ || !p.tcp || !p.tcp->is_ack) return;
  const std::uint64_t ack = p.tcp->ack;
  // RFC 9293: an ack for data not yet sent is ignored.
  if (ack > snd_nxt_) return;

  if (ack > snd_una_) {
    // New data acked.
    const std::uint64_t newly = ack - snd_una_;
    snd_una_ = ack;
    stats_.bytes_acked = snd_una_;
    consecutive_rtos_ = 0;
    dupacks_ = 0;

    // RTT sample from the echoed timestamp.
    const double sample = (sched_.now() - p.tcp->ts_echo).to_seconds();
    if (sample > 0.0) {
      if (!have_rtt_) {
        srtt_s_ = sample;
        rttvar_s_ = sample / 2.0;
        have_rtt_ = true;
      } else {
        rttvar_s_ = 0.75 * rttvar_s_ + 0.25 * std::abs(srtt_s_ - sample);
        srtt_s_ = 0.875 * srtt_s_ + 0.125 * sample;
      }
      stats_.last_srtt_ms = srtt_s_ * 1e3;
      const double rto_s = srtt_s_ + std::max(4.0 * rttvar_s_, 0.010);
      rto_ = std::clamp(Time::seconds(rto_s), config_.min_rto, config_.max_rto);
      if (metrics_) metrics_->rtt_ms->observe(sample * 1e3);
    }

    const double mss = static_cast<double>(config_.mss);
    if (in_recovery_) {
      if (ack > recover_) {
        // Full ack: leave recovery.
        in_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        // Partial ack (NewReno): retransmit the next lost segment, deflate.
        send_segment(snd_una_, true);
        cwnd_ = std::max(mss, cwnd_ - static_cast<double>(newly) + mss);
        arm_rto();
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += mss;  // slow start
    } else {
      cwnd_ += mss * mss / cwnd_;  // congestion avoidance
    }
    cwnd_ = std::min(cwnd_, config_.max_cwnd_segments * mss);
    if (metrics_) metrics_->cwnd_segments->set(cwnd_ / mss);

    if (on_progress) on_progress(snd_una_);
    if (snd_una_ >= snd_nxt_) {
      rto_timer_->cancel();  // everything acked
    } else {
      arm_rto();
    }
    try_send();
    return;
  }

  if (ack == snd_una_ && flight() > 0) {
    ++dupacks_;
    if (!in_recovery_ && dupacks_ == 3) {
      enter_fast_recovery();
    } else if (in_recovery_) {
      // Inflate: each dupack signals a departed segment.
      cwnd_ += static_cast<double>(config_.mss);
      try_send();
    }
  }
}

void TcpSender::enter_fast_recovery() {
  const double mss = static_cast<double>(config_.mss);
  ssthresh_ = std::max(static_cast<double>(flight()) / 2.0, 2.0 * mss);
  cwnd_ = ssthresh_ + 3.0 * mss;
  in_recovery_ = true;
  recover_ = snd_nxt_;
  ++stats_.fast_retransmits;
  if (metrics_) metrics_->fast_retransmits->inc();
  send_segment(snd_una_, true);
  arm_rto();
}

void TcpSender::on_rto() {
  if (!alive_) return;
  if (snd_una_ >= snd_nxt_) return;  // nothing outstanding
  ++stats_.rtos;
  if (metrics_) metrics_->rtos->inc();
  ++consecutive_rtos_;
  if (consecutive_rtos_ > config_.max_consecutive_rtos) {
    alive_ = false;
    rto_timer_->cancel();
    if (on_dead) on_dead();
    return;
  }
  const double mss = static_cast<double>(config_.mss);
  ssthresh_ = std::max(static_cast<double>(flight()) / 2.0, 2.0 * mss);
  cwnd_ = mss;
  in_recovery_ = false;
  dupacks_ = 0;
  send_segment(snd_una_, true);
  rto_ = std::min(rto_ * 2, config_.max_rto);
  arm_rto();
}

TcpReceiver::TcpReceiver(sim::Scheduler& sched, SendFn send_ack, Config config)
    : sched_(sched), send_(std::move(send_ack)), config_(config) {}

void TcpReceiver::on_data_packet(const net::Packet& p) {
  if (!p.tcp || p.tcp->is_ack) return;
  const std::uint64_t start = p.tcp->seq;
  const std::uint64_t end = start + p.payload_bytes;

  if (end > rcv_nxt_) {
    // Insert [max(start, rcv_nxt_), end) into the out-of-order store.
    const std::uint64_t s = std::max(start, rcv_nxt_);
    auto it = ooo_.insert({s, end}).first;
    // Merge with neighbours.
    if (it != ooo_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= it->first) {
        prev->second = std::max(prev->second, it->second);
        ooo_.erase(it);
        it = prev;
      }
    }
    auto next = std::next(it);
    while (next != ooo_.end() && next->first <= it->second) {
      it->second = std::max(it->second, next->second);
      next = ooo_.erase(next);
    }
    // Advance rcv_nxt_ through contiguous data.
    const std::uint64_t before = rcv_nxt_;
    auto front = ooo_.begin();
    if (front != ooo_.end() && front->first <= rcv_nxt_) {
      rcv_nxt_ = std::max(rcv_nxt_, front->second);
      ooo_.erase(front);
    }
    if (rcv_nxt_ > before) {
      goodput_.add(sched_.now(), rcv_nxt_ - before);
      if (on_delivered) on_delivered(rcv_nxt_ - before, sched_.now());
    }
  }
  send_ack(p.created);
}

void TcpReceiver::send_ack(Time ts_echo) {
  net::Packet a = net::make_packet();
  a.client = config_.client;
  a.downlink = config_.acks_downlink;
  a.proto = net::Proto::kTcp;
  a.src_port = config_.src_port;
  a.dst_port = config_.dst_port;
  a.ip_id = next_ip_id_++;
  a.payload_bytes = 0;
  a.created = sched_.now();
  net::TcpFields tcp;
  tcp.ack = rcv_nxt_;
  tcp.is_ack = true;
  tcp.ts_echo = ts_echo;
  a.tcp = tcp;
  send_(std::move(a));
}

}  // namespace wgtt::transport
