#include "transport/udp.h"

#include <algorithm>

namespace wgtt::transport {

void ThroughputRecorder::add(Time when, std::size_t bytes) {
  if (when < Time::zero()) return;
  const auto idx = static_cast<std::size_t>(when / bin_);
  if (idx >= bins_.size()) bins_.resize(idx + 1, 0);
  bins_[idx] += bytes;
  total_bytes_ += bytes;
}

std::vector<ThroughputRecorder::Point> ThroughputRecorder::series() const {
  std::vector<Point> out;
  out.reserve(bins_.size());
  const double bin_s = bin_.to_seconds();
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    out.push_back({bin_ * static_cast<std::int64_t>(i),
                   static_cast<double>(bins_[i]) * 8.0 / 1e6 / bin_s});
  }
  return out;
}

double ThroughputRecorder::average_mbps(Time from, Time to) const {
  if (to <= from) return 0.0;
  const auto lo = static_cast<std::size_t>(std::max<std::int64_t>(0, from / bin_));
  const auto hi = static_cast<std::size_t>(std::max<std::int64_t>(0, to / bin_));
  std::uint64_t bytes = 0;
  for (std::size_t i = lo; i < bins_.size() && i <= hi; ++i) bytes += bins_[i];
  return static_cast<double>(bytes) * 8.0 / 1e6 / (to - from).to_seconds();
}

void LossRecorder::add(Time when, std::uint32_t app_seq) {
  arrivals_.push_back({when, app_seq});
}

double LossRecorder::loss_rate(Time from, Time to) const {
  std::uint32_t lo_seq = 0;
  std::uint32_t hi_seq = 0;
  std::size_t received = 0;
  bool any = false;
  for (const auto& a : arrivals_) {
    if (a.when < from || a.when >= to) continue;
    if (!any) {
      lo_seq = hi_seq = a.seq;
      any = true;
    } else {
      lo_seq = std::min(lo_seq, a.seq);
      hi_seq = std::max(hi_seq, a.seq);
    }
    ++received;
  }
  if (!any) return 0.0;
  const std::size_t span = hi_seq - lo_seq + 1;
  if (span <= received) return 0.0;
  return static_cast<double>(span - received) / static_cast<double>(span);
}

std::vector<LossRecorder::Window> LossRecorder::windows(Time width,
                                                        Time horizon) const {
  std::vector<Window> out;
  for (Time t = Time::zero(); t < horizon; t += width) {
    out.push_back({t, loss_rate(t, t + width)});
  }
  return out;
}

UdpSource::UdpSource(sim::Scheduler& sched, SendFn send, Config config)
    : sched_(sched), send_(std::move(send)), config_(config) {
  const double pps =
      config_.rate_mbps * 1e6 / 8.0 / static_cast<double>(config_.payload_bytes);
  interval_ = Time::seconds(1.0 / pps);
}

UdpSource::~UdpSource() { stop(); }

void UdpSource::start() {
  if (running_) return;
  running_ = true;
  pending_ = sched_.schedule_in(Time::zero(), [this] { emit(); },
                                sim::EventCategory::kTimer);
}

void UdpSource::stop() {
  if (!running_) return;
  running_ = false;
  sched_.cancel(pending_);
}

void UdpSource::emit() {
  if (!running_) return;
  net::Packet p = net::make_packet();
  p.client = config_.client;
  p.downlink = config_.downlink;
  p.proto = net::Proto::kUdp;
  p.src_port = config_.src_port;
  p.dst_port = config_.dst_port;
  p.ip_id = next_ip_id_++;
  p.payload_bytes = config_.payload_bytes;
  p.app_seq = next_seq_++;
  p.created = sched_.now();
  ++sent_;
  send_(std::move(p));
  pending_ = sched_.schedule_in(interval_, [this] { emit(); },
                                sim::EventCategory::kTimer);
}

void UdpSink::on_packet(Time now, const net::Packet& p) {
  if (p.app_seq >= seen_.size()) seen_.resize(p.app_seq + 1024, false);
  if (seen_[p.app_seq]) {
    ++duplicates_;
    return;
  }
  seen_[p.app_seq] = true;
  ++received_;
  if (!any_ || p.app_seq > highest_seq_seen_) highest_seq_seen_ = p.app_seq;
  any_ = true;
  throughput_.add(now, p.payload_bytes);
  loss_.add(now, p.app_seq);
}

}  // namespace wgtt::transport
