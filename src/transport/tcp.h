// NewReno TCP, enough fidelity for the paper's end-to-end experiments:
// slow start, congestion avoidance, fast retransmit / fast recovery with
// partial-ack handling, an RFC 6298-style RTO with exponential backoff, and
// connection abort after repeated RTOs — the failure mode behind Figure 14,
// where the baseline's stalled handover kills the TCP flow mid-drive.
//
// The sender and receiver exchange net::Packet objects through caller-
// provided send functions, so the same code runs over the WGTT network,
// the Enhanced 802.11r baseline, or a plain test harness.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "net/packet.h"
#include "obs/metrics.h"
#include "sim/scheduler.h"
#include "transport/flow_stats.h"

namespace wgtt::transport {

using SendFn = std::function<void(net::Packet)>;

class TcpSender {
 public:
  struct Config {
    std::size_t mss = 1400;               // payload bytes per segment
    double initial_cwnd_segments = 4.0;
    double max_cwnd_segments = 256.0;
    Time min_rto = Time::ms(200);
    Time max_rto = Time::sec(3);
    /// Consecutive RTOs after which the connection is declared dead.
    int max_consecutive_rtos = 6;
    net::ClientId client{};
    bool downlink = true;                 // data flows toward the client
    std::uint16_t src_port = 80;
    std::uint16_t dst_port = 50000;
  };

  struct Stats {
    std::uint64_t segments_sent = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t fast_retransmits = 0;
    std::uint64_t rtos = 0;
    std::uint64_t bytes_acked = 0;
    double last_srtt_ms = 0.0;
  };

  TcpSender(sim::Scheduler& sched, SendFn send, Config config);

  /// Makes `n` more application bytes available to send.
  void send_bytes(std::uint64_t n);
  /// Bulk mode: never run out of data.
  void set_unlimited(bool v);

  /// Feed an arriving ack (the harness routes uplink packets here).
  void on_ack_packet(const net::Packet& p);

  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] std::uint64_t bytes_acked() const { return snd_una_; }
  [[nodiscard]] double cwnd_segments() const;
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Fires once if the connection aborts (max consecutive RTOs).
  std::function<void()> on_dead;
  /// Progress callback: cumulative acked bytes.
  std::function<void(std::uint64_t)> on_progress;

  /// Registers the `tcp.*` instruments without attaching a flow — ensures a
  /// metrics snapshot carries the keys even when no TCP flow ever runs
  /// (e.g. a UDP-workload drive).
  static void register_metrics(obs::MetricsRegistry& registry);
  /// Starts recording `tcp.*` metrics for this flow (all flows aggregate
  /// into the same series). nullptr detaches.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  void try_send();
  void send_segment(std::uint64_t seq, bool is_retransmission);
  void arm_rto();
  void on_rto();
  void enter_fast_recovery();
  [[nodiscard]] std::uint64_t flight() const { return snd_nxt_ - snd_una_; }
  [[nodiscard]] std::uint64_t available() const;

  sim::Scheduler& sched_;
  SendFn send_;
  Config config_;

  std::uint64_t app_limit_ = 0;   // app bytes made available
  bool unlimited_ = false;

  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  double cwnd_;                   // bytes
  double ssthresh_;               // bytes
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;

  // RTT estimation (RFC 6298).
  bool have_rtt_ = false;
  double srtt_s_ = 0.0;
  double rttvar_s_ = 0.0;
  Time rto_;
  int consecutive_rtos_ = 0;
  std::unique_ptr<sim::Timer> rto_timer_;
  bool alive_ = true;

  std::uint16_t next_ip_id_ = 1;
  Stats stats_;

  struct Metrics {
    obs::Counter* segments_sent;
    obs::Counter* retransmissions;
    obs::Counter* fast_retransmits;
    obs::Counter* rtos;
    obs::Gauge* cwnd_segments;
    obs::Histogram* rtt_ms;  // per-sample, from the echoed timestamp
  };
  std::optional<Metrics> metrics_;
};

class TcpReceiver {
 public:
  struct Config {
    net::ClientId client{};
    bool acks_downlink = false;   // acks travel opposite to the data
    std::uint16_t src_port = 50000;
    std::uint16_t dst_port = 80;
  };

  TcpReceiver(sim::Scheduler& sched, SendFn send_ack, Config config);

  /// Feed an arriving data segment.
  void on_data_packet(const net::Packet& p);

  [[nodiscard]] std::uint64_t bytes_delivered() const { return rcv_nxt_; }
  [[nodiscard]] const ThroughputRecorder& goodput() const { return goodput_; }

  /// In-order delivery callback (new contiguous bytes).
  std::function<void(std::uint64_t new_bytes, Time now)> on_delivered;

 private:
  void send_ack(Time ts_echo);

  sim::Scheduler& sched_;
  SendFn send_;
  Config config_;
  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, std::uint64_t> ooo_;  // start -> end (exclusive)
  std::uint16_t next_ip_id_ = 1;
  ThroughputRecorder goodput_{Time::ms(100)};
};

}  // namespace wgtt::transport
