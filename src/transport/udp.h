// Constant-bit-rate UDP source and sink (the paper's iperf3 workloads).
#pragma once

#include <functional>

#include "net/packet.h"
#include "sim/scheduler.h"
#include "transport/flow_stats.h"

namespace wgtt::transport {

using SendFn = std::function<void(net::Packet)>;

class UdpSource {
 public:
  struct Config {
    double rate_mbps = 15.0;
    std::size_t payload_bytes = 1400;
    net::ClientId client{};
    bool downlink = true;
    std::uint16_t src_port = 5201;
    std::uint16_t dst_port = 5201;
  };

  UdpSource(sim::Scheduler& sched, SendFn send, Config config);
  ~UdpSource();
  UdpSource(const UdpSource&) = delete;
  UdpSource& operator=(const UdpSource&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }

 private:
  void emit();

  sim::Scheduler& sched_;
  SendFn send_;
  Config config_;
  Time interval_;
  bool running_ = false;
  std::uint64_t sent_ = 0;
  std::uint32_t next_seq_ = 0;
  std::uint16_t next_ip_id_ = 1;
  sim::EventId pending_{};
};

class UdpSink {
 public:
  explicit UdpSink(Time throughput_bin = Time::ms(100))
      : throughput_(throughput_bin) {}

  void on_packet(Time now, const net::Packet& p);

  [[nodiscard]] const ThroughputRecorder& throughput() const { return throughput_; }
  [[nodiscard]] const LossRecorder& loss() const { return loss_; }
  [[nodiscard]] std::uint64_t packets_received() const { return received_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }

 private:
  ThroughputRecorder throughput_;
  LossRecorder loss_;
  std::uint64_t received_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint32_t highest_seq_seen_ = 0;
  bool any_ = false;
  std::vector<bool> seen_;  // grows with seq space usage
};

}  // namespace wgtt::transport
