// Measurement helpers shared by the evaluation harness: binned throughput
// timeseries (the paper's Figures 14/15/22), and sequence-gap loss
// accounting (Figure 18).
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace wgtt::transport {

/// Accumulates (time, bytes) arrivals into fixed-width bins and reports a
/// Mbit/s timeseries.
class ThroughputRecorder {
 public:
  explicit ThroughputRecorder(Time bin = Time::ms(100)) : bin_(bin) {}

  void add(Time when, std::size_t bytes);

  struct Point {
    Time start;
    double mbps;
  };
  /// One point per bin from time 0 through the last arrival.
  [[nodiscard]] std::vector<Point> series() const;

  /// Average Mbit/s between two times (by arrival bytes).
  [[nodiscard]] double average_mbps(Time from, Time to) const;

  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  Time bin_;
  std::vector<std::uint64_t> bins_;  // bytes per bin
  std::uint64_t total_bytes_ = 0;
};

/// UDP loss via app_seq gaps in a windowed fashion: loss rate per interval.
class LossRecorder {
 public:
  void add(Time when, std::uint32_t app_seq);

  /// Fraction lost in [from, to): 1 - received / span-of-seqs-seen.
  [[nodiscard]] double loss_rate(Time from, Time to) const;

  /// Loss rate in consecutive windows of `width` covering [0, horizon).
  struct Window {
    Time start;
    double loss;
  };
  [[nodiscard]] std::vector<Window> windows(Time width, Time horizon) const;

 private:
  struct Arrival {
    Time when;
    std::uint32_t seq;
  };
  std::vector<Arrival> arrivals_;
};

}  // namespace wgtt::transport
