// Metrics layer: named counters, gauges, and fixed-bucket histograms.
//
// The paper's evaluation is built on tcpdump-grade visibility: switch
// timing (Table 1), spurious-retransmission counts (Table 3) and per-AP
// airtime shares are all *measured*. The MetricsRegistry is the in-process
// equivalent: every component registers its counters under a stable
// `component.metric` name, increments them on the hot path (relaxed
// atomics, no locks), and the registry snapshots the whole system as JSON.
//
// Naming scheme: `component.metric`, lower_snake_case, with the unit as a
// suffix where one applies (`controller.switch_time_ms`, `tcp.rtt_ms`).
// Registering the same name twice returns the same instrument, so several
// instances of a component (the eight APs, say) naturally aggregate.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wgtt::obs {

/// Monotonic event count. Relaxed atomic: single writers are free, and
/// concurrent writers (a future threaded scheduler) never tear.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written instantaneous value (queue depth, table occupancy).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram over [lo, hi): `num_buckets` equal-width linear
/// buckets plus explicit underflow/overflow counts and exact min/max/sum.
/// Percentile queries interpolate linearly inside the bucket that crosses
/// the requested rank and clamp to the observed [min, max], so a
/// single-sample histogram answers every percentile exactly and estimates
/// are never off by more than one bucket width.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t num_buckets);

  void observe(double x);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Exact observed extrema (0 when empty).
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

  /// q in [0, 1]; 0 when empty.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double p50() const { return percentile(0.50); }
  [[nodiscard]] double p90() const { return percentile(0.90); }
  [[nodiscard]] double p99() const { return percentile(0.99); }

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t underflow() const {
    return underflow_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t overflow() const {
    return overflow_.load(std::memory_order_relaxed);
  }

  /// Folds `other` into this histogram: bucket-wise counts add, sum adds,
  /// and the extrema widen. Both histograms must have been registered with
  /// the same [lo, hi) range and bucket count — merging different layouts
  /// would silently misattribute counts, so that case is ignored (merge is
  /// a no-op and the caller's layout wins, mirroring the first-registration
  /// rule in MetricsRegistry::histogram).
  void merge_from(const Histogram& other);

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> underflow_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Owns every instrument, keyed by name. Registration takes a mutex (cold
/// path: components resolve raw pointers once in set_metrics); increments
/// go straight to the instrument. std::map keeps snapshots sorted, so the
/// JSON output is byte-for-byte deterministic for a deterministic run.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Returns the existing histogram if `name` was registered before (the
  /// bucket layout of the first registration wins).
  Histogram& histogram(std::string_view name, double lo, double hi,
                       std::size_t num_buckets);

  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  /// JSON snapshot (schema documented in DESIGN.md §Observability).
  void write_json(std::ostream& out) const;
  [[nodiscard]] std::string to_json() const;

  /// Folds another registry into this one: counters add, histograms merge
  /// bucket-wise (layouts must match — see Histogram::merge_from), and
  /// gauges take `other`'s value (last-write-wins, in merge order).
  /// Instruments missing on this side are created. The bench TrialPool
  /// uses this to combine per-trial registries into one aggregate snapshot
  /// in trial-index order, so the merged JSON is independent of how many
  /// worker threads ran the trials.
  void merge_from(const MetricsRegistry& other);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace wgtt::obs
