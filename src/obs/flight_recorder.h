// Bounded flight-recorder event sink: a drop-oldest ring buffer.
//
// Unlike util::RingBuffer (which refuses a push when full, because
// queue-full is a meaningful event for the AP data path), a flight recorder
// must always accept the *newest* event — when diagnosing a failure, the
// last seconds matter and the distant past does not. Overwritten events are
// counted so the overflow is visible (exposed as a metric by the owners).
//
// Memory is allocated once at construction and never grows: recording
// 10x the capacity leaves exactly `capacity` events resident.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace wgtt::obs {

template <typename T>
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity) : buf_(capacity) {
    if (capacity == 0) throw std::invalid_argument("FlightRecorder capacity 0");
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Events overwritten (dropped) because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Appends; overwrites (and counts) the oldest event when full.
  void push(T value) {
    if (size_ == buf_.size()) {
      buf_[head_] = std::move(value);
      head_ = (head_ + 1) % buf_.size();
      ++dropped_;
      return;
    }
    buf_[(head_ + size_) % buf_.size()] = std::move(value);
    ++size_;
  }

  /// i-th oldest retained event, 0 <= i < size().
  [[nodiscard]] const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("FlightRecorder::at");
    return buf_[(head_ + i) % buf_.size()];
  }

  /// Visits retained events oldest-first.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < size_; ++i) f(buf_[(head_ + i) % buf_.size()]);
  }

  void clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace wgtt::obs
