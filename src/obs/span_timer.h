// Span-style phase timing for multi-step protocols.
//
// The switch protocol's cost is a chain of legs — stop received -> start
// sent (old AP), start received -> ack sent (new AP), stop sent -> ack
// received (controller) — and Table 1 is exactly the distribution of those
// legs. A SpanTracker stamps begin(key) and, at end(key), feeds the elapsed
// milliseconds into a histogram. Keys are caller-chosen (client index for
// the switch protocol), so overlapping spans of different clients coexist.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "obs/metrics.h"
#include "util/units.h"

namespace wgtt::obs {

class SpanTracker {
 public:
  explicit SpanTracker(Histogram* sink_ms = nullptr) : sink_(sink_ms) {}

  void set_sink(Histogram* sink_ms) { sink_ = sink_ms; }

  /// Opens (or restarts) the span for `key` at `now`.
  void begin(std::uint64_t key, Time now) { open_[key] = now; }

  /// Closes the span for `key`; observes and returns the elapsed
  /// milliseconds, or nullopt if no span was open.
  std::optional<double> end(std::uint64_t key, Time now) {
    auto it = open_.find(key);
    if (it == open_.end()) return std::nullopt;
    const double ms = (now - it->second).to_millis();
    open_.erase(it);
    if (sink_ != nullptr) sink_->observe(ms);
    return ms;
  }

  /// Drops the span for `key` without observing (protocol aborted).
  void cancel(std::uint64_t key) { open_.erase(key); }

  [[nodiscard]] std::size_t open_spans() const { return open_.size(); }

 private:
  Histogram* sink_;
  std::unordered_map<std::uint64_t, Time> open_;
};

}  // namespace wgtt::obs
