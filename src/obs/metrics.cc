#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace wgtt::obs {

namespace {

void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void json_number(std::ostream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out << buf;
}

void json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

Histogram::Histogram(double lo, double hi, std::size_t num_buckets)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(num_buckets == 0 ? 1 : num_buckets)),
      buckets_(num_buckets == 0 ? 1 : num_buckets) {}

void Histogram::observe(double x) {
  const std::uint64_t before =
      count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, x);
  if (before == 0) {
    // First sample seeds the extrema; racing observers still converge via
    // the CAS min/max below.
    min_.store(x, std::memory_order_relaxed);
    max_.store(x, std::memory_order_relaxed);
  } else {
    atomic_min(min_, x);
    atomic_max(max_, x);
  }
  if (x < lo_) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
  } else if (x >= hi_) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
  } else {
    const auto idx = std::min(
        buckets_.size() - 1, static_cast<std::size_t>((x - lo_) / width_));
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  }
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::percentile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double mn = min();
  const double mx = max();
  const double target = q * static_cast<double>(n);

  // Walk the value ranges in order — [min, lo) for underflow, each bucket,
  // [hi, max] for overflow — and interpolate inside the range where the
  // cumulative count crosses the target rank.
  double cum = 0.0;
  double result = mx;
  bool done = false;
  auto segment = [&](std::uint64_t c, double s_lo, double s_hi) {
    if (done || c == 0) return;
    const double dc = static_cast<double>(c);
    if (cum + dc >= target) {
      const double f = std::clamp((target - cum) / dc, 0.0, 1.0);
      result = s_lo + f * (s_hi - s_lo);
      done = true;
      return;
    }
    cum += dc;
  };

  segment(underflow(), mn, lo_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    segment(bucket_count(i), lo_ + static_cast<double>(i) * width_,
            lo_ + static_cast<double>(i + 1) * width_);
  }
  segment(overflow(), hi_, mx);
  return std::clamp(result, mn, mx);
}

void Histogram::merge_from(const Histogram& other) {
  if (other.count() == 0) return;
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.buckets_.size() != buckets_.size()) {
    return;  // incompatible layout: keep ours untouched
  }
  const std::uint64_t before = count_.load(std::memory_order_relaxed);
  const double other_min = other.min();
  const double other_max = other.max();
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  atomic_add(sum_, other.sum());
  if (before == 0) {
    min_.store(other_min, std::memory_order_relaxed);
    max_.store(other_max, std::memory_order_relaxed);
  } else {
    atomic_min(min_, other_min);
    atomic_max(max_, other_max);
  }
  underflow_.fetch_add(other.underflow(), std::memory_order_relaxed);
  overflow_.fetch_add(other.overflow(), std::memory_order_relaxed);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].fetch_add(other.bucket_count(i), std::memory_order_relaxed);
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, double lo,
                                      double hi, std::size_t num_buckets) {
  std::scoped_lock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(lo, hi, num_buckets))
             .first;
  }
  return *it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  std::scoped_lock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  std::scoped_lock lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  std::scoped_lock lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Lock ordering: `other` is read under its own lock into plain snapshots
  // first, so the two registry mutexes are never held together.
  struct HistSnapshot {
    const Histogram* src;
    double lo, hi;
    std::size_t buckets;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistSnapshot>> histograms;
  {
    std::scoped_lock lock(other.mu_);
    for (const auto& [name, c] : other.counters_) {
      counters.emplace_back(name, c->value());
    }
    for (const auto& [name, g] : other.gauges_) {
      gauges.emplace_back(name, g->value());
    }
    for (const auto& [name, h] : other.histograms_) {
      histograms.emplace_back(
          name, HistSnapshot{h.get(), h->lo(), h->hi(), h->num_buckets()});
    }
  }
  for (const auto& [name, v] : counters) counter(name).inc(v);
  for (const auto& [name, v] : gauges) gauge(name).set(v);
  for (const auto& [name, snap] : histograms) {
    histogram(name, snap.lo, snap.hi, snap.buckets).merge_from(*snap.src);
  }
}

void MetricsRegistry::write_json(std::ostream& out) const {
  std::scoped_lock lock(mu_);
  out << "{\n  \"schema\": \"wgtt.metrics.v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(out, name);
    out << ": " << c->value();
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(out, name);
    out << ": ";
    json_number(out, g->value());
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(out, name);
    out << ": {\"count\": " << h->count() << ", \"sum\": ";
    json_number(out, h->sum());
    out << ", \"min\": ";
    json_number(out, h->min());
    out << ", \"max\": ";
    json_number(out, h->max());
    out << ", \"p50\": ";
    json_number(out, h->p50());
    out << ", \"p90\": ";
    json_number(out, h->p90());
    out << ", \"p99\": ";
    json_number(out, h->p99());
    out << ", \"lo\": ";
    json_number(out, h->lo());
    out << ", \"hi\": ";
    json_number(out, h->hi());
    out << ", \"underflow\": " << h->underflow()
        << ", \"overflow\": " << h->overflow() << ", \"bucket_counts\": [";
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      if (i != 0) out << ", ";
      out << h->bucket_count(i);
    }
    out << "]}";
  }
  out << "\n  }\n}\n";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

}  // namespace wgtt::obs
