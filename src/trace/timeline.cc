#include "trace/timeline.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "scenario/wgtt_system.h"

namespace wgtt::trace {

namespace {
// Same formatting as the metrics JSON writer: independent of any stream
// precision/locale state the caller left behind.
void put_double(std::ostream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out << buf;
}
}  // namespace

TimelineRecorder::TimelineRecorder(scenario::WgttSystem& system, Config config)
    : system_(system), config_(config) {}

void TimelineRecorder::start() {
  const auto n = static_cast<std::size_t>(system_.num_clients());
  delivered_bytes_.assign(n, 0);
  last_bytes_.assign(n, 0);
  for (int i = 0; i < system_.num_clients(); ++i) {
    auto& client = system_.client(i);
    client.on_downlink = [this, i, prev = std::move(client.on_downlink)](
                             const net::Packet& p) {
      if (prev) prev(p);
      delivered_bytes_[static_cast<std::size_t>(i)] += p.payload_bytes;
    };
  }
  if (!timer_) {
    timer_ = std::make_unique<sim::Timer>(
        system_.sched(), [this] { tick(); }, sim::EventCategory::kTimer);
  }
  timer_->start(config_.tick);
}

void TimelineRecorder::stop() {
  if (timer_) timer_->cancel();
}

void TimelineRecorder::tick() {
  const Time now = system_.sched().now();
  const auto debug = system_.controller().client_debug();
  auto& tracker = system_.controller().tracker();
  const double tick_s = config_.tick.to_seconds();

  for (int i = 0; i < system_.num_clients(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    Sample s;
    s.when = now;
    s.client = i;
    s.serving = system_.serving_ap(i);
    if (idx < debug.size()) {
      s.epoch = debug[idx].epoch;
      s.switch_pending = debug[idx].switch_pending;
    }
    const std::uint64_t delta = delivered_bytes_[idx] - last_bytes_[idx];
    last_bytes_[idx] = delivered_bytes_[idx];
    s.goodput_mbps =
        tick_s > 0.0 ? static_cast<double>(delta) * 8.0 / 1e6 / tick_s : 0.0;

    // Freshest ESNR per AP (const accessors only — see file comment).
    const net::ClientId cid{static_cast<std::uint32_t>(i)};
    for (int a = 0; a < system_.num_aps(); ++a) {
      const net::ApId ap{static_cast<std::uint32_t>(a)};
      const auto heard = tracker.last_heard(cid, ap);
      if (!heard || now - *heard > config_.esnr_freshness) continue;
      const auto value = tracker.last_value(cid, ap);
      if (!value) continue;
      s.esnr.push_back({a, *value});
    }
    std::sort(s.esnr.begin(), s.esnr.end(),
              [](const EsnrPoint& a, const EsnrPoint& b) {
                if (a.db != b.db) return a.db > b.db;
                return a.ap < b.ap;
              });
    if (s.esnr.size() > static_cast<std::size_t>(config_.top_aps)) {
      s.esnr.resize(static_cast<std::size_t>(config_.top_aps));
    }

    if (probe_) s.transport = probe_(i);
    samples_.push_back(std::move(s));
  }
  timer_->start(config_.tick);
}

void TimelineRecorder::write_jsonl(std::ostream& out) const {
  for (const Sample& s : samples_) {
    out << "{\"t_s\":";
    put_double(out, s.when.to_seconds());
    out << ",\"client\":" << s.client << ",\"serving\":" << s.serving
        << ",\"epoch\":" << s.epoch << ",\"switch_pending\":"
        << (s.switch_pending ? "true" : "false") << ",\"goodput_mbps\":";
    put_double(out, s.goodput_mbps);
    out << ",\"esnr\":[";
    for (std::size_t k = 0; k < s.esnr.size(); ++k) {
      if (k > 0) out << ',';
      out << "{\"ap\":" << s.esnr[k].ap << ",\"db\":";
      put_double(out, s.esnr[k].db);
      out << '}';
    }
    out << ']';
    if (s.transport) {
      out << ",\"cwnd_segments\":";
      put_double(out, s.transport->cwnd_segments);
      out << ",\"srtt_ms\":";
      put_double(out, s.transport->srtt_ms);
    }
    out << "}\n";
  }
}

}  // namespace wgtt::trace
