// Event tracing: the simulator's tcpdump.
//
// The paper's methodology logs every packet at the controller and the
// client with tcpdump and post-processes the traces into its figures. The
// Tracer plays the same role here: it subscribes (non-invasively, through
// the existing observation hooks) to a running WgttSystem, records a typed
// event stream, and offers the post-processing queries the evaluation
// needs — throughput series, switch timing, per-AP airtime shares, and CSV
// export for external plotting.
//
// Storage is a bounded obs::FlightRecorder ring (drop-oldest): a trace of a
// long run keeps the most recent `capacity` events and counts what it shed
// (`dropped()`), instead of growing without bound.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "util/units.h"

namespace wgtt::scenario {
class WgttSystem;
}

namespace wgtt::trace {

enum class EventKind : std::uint8_t {
  kFrameTx,          // an A-MPDU left an AP (node = AP, value = MPDU count)
  kPacketDelivered,  // downlink packet reached a client (node = client, value = bytes)
  kUplinkAccepted,   // uplink packet passed de-dup at the controller
  kSwitchInitiated,  // node = old AP, aux = new AP
  kSwitchCompleted,  // node = new AP, value = protocol ms
  kCsiReport,        // node = AP
  kFanoutEmptyDrop,  // downlink dropped: fan-out set empty after liveness
};

/// Total number of EventKind values; kinds are contiguous from 0. Tests
/// iterate this to catch a new kind left out of to_string/from_string.
inline constexpr int kNumEventKinds = 7;

[[nodiscard]] std::string_view to_string(EventKind kind);
/// Inverse of to_string (CSV round trip); nullopt for unknown names.
[[nodiscard]] std::optional<EventKind> event_kind_from_string(
    std::string_view name);

struct Event {
  Time when;
  EventKind kind;
  int client = -1;
  int node = -1;   // AP or client index, by kind
  int aux = -1;
  double value = 0.0;
};

class Tracer {
 public:
  /// Default ring capacity: ~260k events (≈10 MB), comfortably above any
  /// single drive-by experiment, bounded for long-running simulations.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

  explicit Tracer(std::size_t capacity = kDefaultCapacity)
      : events_(capacity) {}

  void record(Event e) { events_.push(e); }

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::size_t capacity() const { return events_.capacity(); }
  /// Events shed by the ring (oldest-first) once capacity was reached.
  [[nodiscard]] std::uint64_t dropped() const { return events_.dropped(); }
  /// i-th oldest retained event.
  [[nodiscard]] const Event& event(std::size_t i) const {
    return events_.at(i);
  }
  void clear() { events_.clear(); }

  /// Number of events of one kind (optionally for one client).
  [[nodiscard]] std::size_t count(EventKind kind, int client = -1) const;

  /// Delivered downlink throughput (Mbit/s) in fixed bins for a client.
  [[nodiscard]] std::vector<double> throughput_mbps(int client, Time bin,
                                                    Time horizon) const;

  /// Times between consecutive completed switches of a client (seconds).
  [[nodiscard]] std::vector<double> switch_intervals_s(int client) const;

  /// Serving-AP timeline for a client: (time s, AP index).
  [[nodiscard]] std::vector<std::pair<double, int>> serving_timeline(
      int client) const;

  /// Fraction of transmissions contributed by each AP (index -> share).
  [[nodiscard]] std::vector<double> ap_tx_share(int num_aps) const;

  /// `value` field of every event of `kind` (optionally for one client);
  /// e.g. the per-switch protocol milliseconds of kSwitchCompleted.
  [[nodiscard]] std::vector<double> values(EventKind kind,
                                           int client = -1) const;

  /// CSV export: when_s,kind,client,node,aux,value — one row per event.
  void write_csv(std::ostream& out) const;

 private:
  obs::FlightRecorder<Event> events_;
};

/// Subscribes a tracer to a WgttSystem's observation hooks. Existing hook
/// consumers are preserved (handlers are chained). Call after start() and
/// after any hooks of your own are installed.
void attach(Tracer& tracer, scenario::WgttSystem& system);

}  // namespace wgtt::trace
