// Event tracing: the simulator's tcpdump.
//
// The paper's methodology logs every packet at the controller and the
// client with tcpdump and post-processes the traces into its figures. The
// Tracer plays the same role here: it subscribes (non-invasively, through
// the existing observation hooks) to a running WgttSystem, records a typed
// event stream, and offers the post-processing queries the evaluation
// needs — throughput series, switch timing, per-AP airtime shares, and CSV
// export for external plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/units.h"

namespace wgtt::scenario {
class WgttSystem;
}

namespace wgtt::trace {

enum class EventKind : std::uint8_t {
  kFrameTx,          // an A-MPDU left an AP (node = AP, value = MPDU count)
  kPacketDelivered,  // downlink packet reached a client (node = client, value = bytes)
  kUplinkAccepted,   // uplink packet passed de-dup at the controller
  kSwitchInitiated,  // node = old AP, aux = new AP
  kSwitchCompleted,  // node = new AP, value = protocol ms
  kCsiReport,        // node = AP
};

[[nodiscard]] std::string_view to_string(EventKind kind);

struct Event {
  Time when;
  EventKind kind;
  int client = -1;
  int node = -1;   // AP or client index, by kind
  int aux = -1;
  double value = 0.0;
};

class Tracer {
 public:
  void record(Event e) { events_.push_back(e); }

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Number of events of one kind (optionally for one client).
  [[nodiscard]] std::size_t count(EventKind kind, int client = -1) const;

  /// Delivered downlink throughput (Mbit/s) in fixed bins for a client.
  [[nodiscard]] std::vector<double> throughput_mbps(int client, Time bin,
                                                    Time horizon) const;

  /// Times between consecutive completed switches of a client (seconds).
  [[nodiscard]] std::vector<double> switch_intervals_s(int client) const;

  /// Serving-AP timeline for a client: (time s, AP index).
  [[nodiscard]] std::vector<std::pair<double, int>> serving_timeline(
      int client) const;

  /// Fraction of transmissions contributed by each AP (index -> share).
  [[nodiscard]] std::vector<double> ap_tx_share(int num_aps) const;

  /// CSV export: when_s,kind,client,node,aux,value — one row per event.
  void write_csv(std::ostream& out) const;

 private:
  std::vector<Event> events_;
};

/// Subscribes a tracer to a WgttSystem's observation hooks. Existing hook
/// consumers are preserved (handlers are chained). Call after start() and
/// after any hooks of your own are installed.
void attach(Tracer& tracer, scenario::WgttSystem& system);

}  // namespace wgtt::trace
