#include "trace/postmortem.h"

#include <filesystem>
#include <fstream>

#include "core/controller.h"
#include "net/ids.h"

namespace wgtt::trace {

namespace {

std::string_view liveness_name(core::Controller::ApLiveness state) {
  using L = core::Controller::ApLiveness;
  switch (state) {
    case L::kAlive: return "alive";
    case L::kSuspect: return "suspect";
    case L::kDead: return "dead";
    case L::kRecovering: return "recovering";
  }
  return "?";
}

}  // namespace

bool write_postmortem(const std::string& dir, scenario::WgttSystem& system,
                      const scenario::InvariantReport& report,
                      const Tracer* tracer,
                      const obs::MetricsRegistry* metrics) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  const std::filesystem::path base(dir);
  bool ok = true;

  {
    std::ofstream out(base / "invariants.txt");
    if (out) {
      out << "sim_time_s " << system.now().to_seconds() << '\n'
          << "stalled_switches " << report.stalled_switches << '\n'
          << "duplicate_serving " << report.duplicate_serving << '\n'
          << "serving_disagreements " << report.serving_disagreements << '\n'
          << "index_regressions " << report.index_regressions << '\n'
          << "dead_ap_deliveries " << report.dead_ap_deliveries << '\n'
          << "dead_serving " << report.dead_serving << '\n'
          << "violations " << report.violations.size() << '\n';
      for (const auto& v : report.violations) out << v << '\n';
    } else {
      ok = false;
    }
  }

  if (tracer != nullptr) {
    std::ofstream out(base / "trace_tail.csv");
    if (out) {
      out << "# retained " << tracer->size() << " dropped "
          << tracer->dropped() << '\n';
      tracer->write_csv(out);
    } else {
      ok = false;
    }
  }

  if (metrics != nullptr) {
    std::ofstream out(base / "metrics.json");
    if (out) {
      metrics->write_json(out);
    } else {
      ok = false;
    }
  }

  {
    std::ofstream out(base / "liveness.txt");
    if (out) {
      for (int i = 0; i < system.num_aps(); ++i) {
        const auto h = system.controller().ap_health(
            net::ApId{static_cast<std::uint32_t>(i)});
        out << "ap " << i << ' ' << liveness_name(h.state) << " since_s "
            << h.since.to_seconds() << " crashed "
            << (system.ap(i).crashed() ? 1 : 0) << '\n';
      }
    } else {
      ok = false;
    }
  }

  {
    std::ofstream out(base / "clients.txt");
    if (out) {
      for (const auto& d : system.controller().client_debug()) {
        out << "client " << net::index_of(d.client) << " serving "
            << (d.serving ? static_cast<int>(net::index_of(*d.serving)) : -1)
            << " epoch " << d.epoch << " next_index " << d.next_index
            << " downlink_sent " << d.downlink_sent << " switch_pending "
            << (d.switch_pending ? 1 : 0) << " pending_forced "
            << (d.pending_forced ? 1 : 0);
        if (d.switch_pending) {
          out << " pending_from " << net::index_of(d.pending_from)
              << " pending_target " << net::index_of(d.pending_target)
              << " pending_since_s " << d.pending_since.to_seconds()
              << " pending_first_index " << d.pending_first_index;
        }
        out << " last_switch_completed_s "
            << d.last_switch_completed.to_seconds() << '\n';
      }
    } else {
      ok = false;
    }
  }

  return ok;
}

}  // namespace wgtt::trace
