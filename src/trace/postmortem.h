// Black-box forensics (DESIGN.md §6.6): when an invariant trips, dump
// everything a post-mortem needs into a directory, so a PR-5-style failover
// bug is diagnosable from artifacts instead of rerun-and-printf.
//
// The bundle:
//   invariants.txt   the InvariantReport — per-check counts plus one
//                    human-readable line per breach
//   trace_tail.csv   the flight-recorder ring's retained events (Tracer
//                    CSV; the tail of a long run, drop-oldest)
//   metrics.json     wgtt.metrics.v1 snapshot at dump time
//   liveness.txt     per-AP controller liveness verdict + crash state
//   clients.txt      per-client control-plane state: serving AP, epoch,
//                    fan-out watermark, pending-switch bookkeeping
// Sections whose source is absent (no tracer attached, no metrics
// registry) are skipped, never empty-filed.
//
// run_drive triggers a dump when check_invariants fails and either
// DriveConfig::postmortem_dir is set or WGTT_DUMP_ON_VIOLATION names a
// directory in the environment.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "scenario/wgtt_system.h"
#include "trace/tracer.h"

namespace wgtt::trace {

/// Writes the post-mortem bundle into `dir` (created, parents included, if
/// missing). `tracer` and `metrics` may be null — their files are skipped.
/// Returns false if the directory could not be created or a file could not
/// be opened; partial bundles are possible on I/O errors mid-way.
bool write_postmortem(const std::string& dir, scenario::WgttSystem& system,
                      const scenario::InvariantReport& report,
                      const Tracer* tracer, const obs::MetricsRegistry* metrics);

}  // namespace wgtt::trace
