// Per-client time-series recorder (DESIGN.md §6.5): the simulator's
// equivalent of the paper's tcpdump-derived timeline plots (Figs. 14/15/17).
//
// On a configurable virtual-time tick, one Sample per client captures the
// serving AP, the switch-epoch counter, the freshest ESNR of the top
// candidate APs, MAC-level goodput over the tick, and (when the harness
// provides a probe) TCP cwnd/srtt. write_jsonl() emits one JSON object per
// line; tools/wgtt_trace folds the series into Chrome trace_event counter
// tracks next to the switch spans.
//
// Determinism: the tick Timer adds events to the shared scheduler, so a
// timeline-ON run is a *different* (equally deterministic) event sequence
// than an OFF run — exactly like the metrics sampler. ESNR is read through
// EsnrTracker's const accessors (last_value/last_heard), never median(),
// which maintains the selection window incrementally and would perturb
// controller decisions if driven from here.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "sim/scheduler.h"
#include "util/units.h"

namespace wgtt::scenario {
class WgttSystem;
}

namespace wgtt::trace {

class TimelineRecorder {
 public:
  struct Config {
    /// Sampling period (virtual time).
    Time tick = Time::ms(100);
    /// ESNR entries kept per sample: the best `top_aps` candidates by
    /// freshest value, among APs heard within `esnr_freshness`.
    int top_aps = 3;
    Time esnr_freshness = Time::ms(250);
  };

  struct TransportSample {
    double cwnd_segments = 0.0;
    double srtt_ms = 0.0;
  };
  /// Supplied by the harness to surface per-client transport state (the
  /// recorder cannot see TCP flows — they live outside the WgttSystem).
  /// Return nullopt for clients without an instrumented flow.
  using TransportProbe = std::function<std::optional<TransportSample>(int)>;

  struct EsnrPoint {
    int ap = -1;
    double db = 0.0;
  };
  struct Sample {
    Time when;
    int client = -1;
    int serving = -1;  // -1 = unserved
    std::uint32_t epoch = 0;
    bool switch_pending = false;
    double goodput_mbps = 0.0;  // MAC-delivered bytes over the last tick
    std::vector<EsnrPoint> esnr;  // best-first
    std::optional<TransportSample> transport;
  };

  TimelineRecorder(scenario::WgttSystem& system, Config config);
  TimelineRecorder(const TimelineRecorder&) = delete;
  TimelineRecorder& operator=(const TimelineRecorder&) = delete;

  void set_transport_probe(TransportProbe probe) { probe_ = std::move(probe); }

  /// Chains the per-client delivery hooks (for goodput deltas) and arms the
  /// tick timer. Call after the system started and after all other hook
  /// consumers installed theirs (same contract as trace::attach).
  void start();
  void stop();

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }

  /// One JSON object per line:
  ///   {"t_s":..,"client":..,"serving":..,"epoch":..,"switch_pending":..,
  ///    "goodput_mbps":..,"esnr":[{"ap":..,"db":..},...],
  ///    "cwnd_segments":..,"srtt_ms":..}
  /// The transport fields appear only when the probe reported a sample.
  void write_jsonl(std::ostream& out) const;

 private:
  void tick();

  scenario::WgttSystem& system_;
  Config config_;
  TransportProbe probe_;
  std::unique_ptr<sim::Timer> timer_;
  std::vector<std::uint64_t> delivered_bytes_;  // cumulative, per client
  std::vector<std::uint64_t> last_bytes_;       // snapshot at previous tick
  std::vector<Sample> samples_;
};

}  // namespace wgtt::trace
