#include "trace/tracer.h"

#include <algorithm>
#include <ostream>

#include "scenario/wgtt_system.h"

namespace wgtt::trace {

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kFrameTx: return "frame_tx";
    case EventKind::kPacketDelivered: return "packet_delivered";
    case EventKind::kUplinkAccepted: return "uplink_accepted";
    case EventKind::kSwitchInitiated: return "switch_initiated";
    case EventKind::kSwitchCompleted: return "switch_completed";
    case EventKind::kCsiReport: return "csi_report";
    case EventKind::kFanoutEmptyDrop: return "fanout_empty_drop";
  }
  return "?";
}

std::optional<EventKind> event_kind_from_string(std::string_view name) {
  for (int i = 0; i < kNumEventKinds; ++i) {
    const auto kind = static_cast<EventKind>(i);
    if (to_string(kind) == name) return kind;
  }
  return std::nullopt;
}

std::size_t Tracer::count(EventKind kind, int client) const {
  std::size_t n = 0;
  events_.for_each([&](const Event& e) {
    if (e.kind == kind && (client < 0 || e.client == client)) ++n;
  });
  return n;
}

std::vector<double> Tracer::throughput_mbps(int client, Time bin,
                                            Time horizon) const {
  const auto bins = static_cast<std::size_t>(
      std::max<std::int64_t>(1, horizon / bin));
  std::vector<double> out(bins, 0.0);
  events_.for_each([&](const Event& e) {
    if (e.kind != EventKind::kPacketDelivered || e.client != client) return;
    const auto idx = static_cast<std::size_t>(e.when / bin);
    if (idx < bins) out[idx] += e.value * 8.0;  // bytes -> bits
  });
  const double bin_s = bin.to_seconds();
  for (double& v : out) v = v / 1e6 / bin_s;
  return out;
}

std::vector<double> Tracer::switch_intervals_s(int client) const {
  std::vector<double> out;
  double last = -1.0;
  events_.for_each([&](const Event& e) {
    if (e.kind != EventKind::kSwitchCompleted || e.client != client) return;
    const double t = e.when.to_seconds();
    if (last >= 0.0) out.push_back(t - last);
    last = t;
  });
  return out;
}

std::vector<std::pair<double, int>> Tracer::serving_timeline(int client) const {
  std::vector<std::pair<double, int>> out;
  events_.for_each([&](const Event& e) {
    if (e.kind == EventKind::kSwitchCompleted && e.client == client) {
      out.emplace_back(e.when.to_seconds(), e.node);
    }
  });
  return out;
}

std::vector<double> Tracer::ap_tx_share(int num_aps) const {
  std::vector<double> counts(static_cast<std::size_t>(num_aps), 0.0);
  double total = 0.0;
  events_.for_each([&](const Event& e) {
    if (e.kind != EventKind::kFrameTx) return;
    if (e.node >= 0 && e.node < num_aps) {
      counts[static_cast<std::size_t>(e.node)] += 1.0;
      total += 1.0;
    }
  });
  if (total > 0.0) {
    for (double& c : counts) c /= total;
  }
  return counts;
}

std::vector<double> Tracer::values(EventKind kind, int client) const {
  std::vector<double> out;
  events_.for_each([&](const Event& e) {
    if (e.kind == kind && (client < 0 || e.client == client)) {
      out.push_back(e.value);
    }
  });
  return out;
}

void Tracer::write_csv(std::ostream& out) const {
  out << "when_s,kind,client,node,aux,value\n";
  events_.for_each([&](const Event& e) {
    out << e.when.to_seconds() << ',' << to_string(e.kind) << ',' << e.client
        << ',' << e.node << ',' << e.aux << ',' << e.value << '\n';
  });
}

void attach(Tracer& tracer, scenario::WgttSystem& system) {
  // Per-client delivery events (chain any user handler).
  for (int i = 0; i < system.num_clients(); ++i) {
    auto& client = system.client(i);
    client.on_downlink = [&tracer, &system, i,
                          prev = std::move(client.on_downlink)](
                             const net::Packet& p) {
      if (prev) prev(p);
      tracer.record({system.now(), EventKind::kPacketDelivered, i, i, -1,
                     static_cast<double>(p.payload_bytes)});
    };
  }

  // Switch initiations: the opening edge of the stop→start→ack span.
  auto& ctrl = system.controller();
  ctrl.on_switch_initiated =
      [&tracer, prev = std::move(ctrl.on_switch_initiated)](
          net::ClientId c, std::optional<net::ApId> from, net::ApId to,
          Time t) {
        if (prev) prev(c, from, to, t);
        tracer.record({t, EventKind::kSwitchInitiated,
                       static_cast<int>(net::index_of(c)),
                       from ? static_cast<int>(net::index_of(*from)) : -1,
                       static_cast<int>(net::index_of(to)), 0.0});
      };

  // Switch completions (+ the protocol duration from the switch log).
  ctrl.on_serving_changed = [&tracer, &ctrl,
                             prev = std::move(ctrl.on_serving_changed)](
                                net::ClientId c, net::ApId ap, Time t) {
    if (prev) prev(c, ap, t);
    double protocol_ms = 0.0;
    if (!ctrl.switch_log().empty()) {
      const auto& rec = ctrl.switch_log().back();
      protocol_ms = (rec.completed - rec.initiated).to_millis();
    }
    tracer.record({t, EventKind::kSwitchCompleted,
                   static_cast<int>(net::index_of(c)),
                   static_cast<int>(net::index_of(ap)), -1, protocol_ms});
  };

  // Transmissions per AP.
  for (int i = 0; i < system.num_aps(); ++i) {
    auto& mac = system.ap(i).mac();
    mac.on_tx_attempt = [&tracer, &system, i,
                         prev = std::move(mac.on_tx_attempt)](
                            mac::RadioId peer, phy::Mcs mcs, int mpdus) {
      if (prev) prev(peer, mcs, mpdus);
      tracer.record({system.now(), EventKind::kFrameTx, -1, i, -1,
                     static_cast<double>(mpdus)});
    };
  }

  // Downlink packets dropped at the controller because every candidate AP
  // was evicted by liveness — the silent-drop path made visible.
  ctrl.on_fanout_empty = [&tracer, prev = std::move(ctrl.on_fanout_empty)](
                             net::ClientId c, Time t) {
    if (prev) prev(c, t);
    tracer.record({t, EventKind::kFanoutEmptyDrop,
                   static_cast<int>(net::index_of(c)), -1, -1, 0.0});
  };

  // Uplink packets surviving de-duplication.
  system.on_server_uplink = [&tracer, &system,
                             prev = std::move(system.on_server_uplink)](
                                const net::Packet& p) {
    if (prev) prev(p);
    tracer.record({system.now(), EventKind::kUplinkAccepted,
                   static_cast<int>(net::index_of(p.client)), -1, -1,
                   static_cast<double>(p.payload_bytes)});
  };
}

}  // namespace wgtt::trace
