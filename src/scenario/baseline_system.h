// Fully wired Enhanced 802.11r network over the same roadside testbed
// geometry as WgttSystem: router, eight BaselineAps, mobile clients with
// the beacon-driven handover state machine. Same-seed runs see the same
// radio environment as the WGTT system, making the comparison paired.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "baseline/baseline_ap.h"
#include "baseline/baseline_client.h"
#include "baseline/router.h"
#include "mac/medium.h"
#include "net/backhaul.h"
#include "scenario/testbed.h"
#include "sim/scheduler.h"

namespace wgtt::scenario {

struct BaselineSystemConfig {
  GeometryConfig geometry{};
  mac::Medium::Config medium{};
  net::Backhaul::Config backhaul{};
  baseline::BaselineAp::Config ap{};
  baseline::BaselineClient::Config client{};
  Time server_latency = Time::ms(1);
  /// ViFi-style uplink salvaging on every AP (paper §6 related work):
  /// non-serving APs forward overheard uplink data; the router
  /// de-duplicates. Adds WGTT's uplink-diversity ingredient to an
  /// otherwise conventional handover network.
  bool vifi_uplink_salvage = false;
};

class BaselineSystem {
 public:
  explicit BaselineSystem(const BaselineSystemConfig& config);

  int add_client(const mobility::Trajectory* trajectory);
  void start();
  void run_until(Time t) { sched_.run_until(t); }

  void server_send(net::Packet packet);
  std::function<void(const net::Packet&)> on_server_uplink;

  [[nodiscard]] sim::Scheduler& sched() { return sched_; }
  [[nodiscard]] Time now() const { return sched_.now(); }
  [[nodiscard]] TestbedGeometry& geometry() { return geometry_; }
  [[nodiscard]] baseline::Router& router() { return *router_; }
  [[nodiscard]] baseline::BaselineAp& ap(int i) {
    return *aps_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] baseline::BaselineClient& client(int i) {
    return *clients_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] int num_aps() const { return geometry_.num_aps(); }
  [[nodiscard]] int num_clients() const { return static_cast<int>(clients_.size()); }
  [[nodiscard]] mac::Medium& medium() { return medium_; }
  /// AP index the client is associated with, or -1.
  [[nodiscard]] int serving_ap(int client) const;

 private:
  [[nodiscard]] channel::CsiMeasurement sample_for_ap(int ap, mac::RadioId peer);
  [[nodiscard]] channel::CsiMeasurement sample_for_client(int client,
                                                          mac::RadioId peer);
  [[nodiscard]] channel::CsiMeasurement fallback_csi() const;

  BaselineSystemConfig config_;
  Rng rng_;
  sim::Scheduler sched_;
  mac::Medium medium_;
  net::Backhaul backhaul_;
  TestbedGeometry geometry_;
  std::unique_ptr<baseline::Router> router_;
  std::vector<std::unique_ptr<baseline::BaselineAp>> aps_;
  std::vector<std::unique_ptr<baseline::BaselineClient>> clients_;
  std::unordered_map<mac::RadioId, int> client_idx_of_radio_;
  std::unordered_map<mac::RadioId, int> ap_idx_of_radio_;
  bool started_ = false;
};

}  // namespace wgtt::scenario
