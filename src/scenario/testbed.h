// The roadside testbed geometry (paper §4, Figure 9): eight APs on a
// building facade overlooking the road, 7.5 m apart, each aiming a 21°
// parabolic antenna at its patch of road; cells ~5.2 m wide with 6-10 m of
// radio overlap between neighbours.
//
// TestbedGeometry owns the per-(AP, client) LinkChannel matrix and the
// ground-truth helpers (instantaneous optimal AP, ESNR heatmaps) used by
// the evaluation harness. Both the WGTT system and the baseline system
// build on it, so comparisons run over identical radio environments when
// given the same seed.
#pragma once

#include <memory>
#include <vector>

#include "channel/link_channel.h"
#include "mobility/trajectory.h"
#include "util/rng.h"
#include "util/units.h"

namespace wgtt::scenario {

struct GeometryConfig {
  int num_aps = 8;
  double ap_spacing_m = 7.5;
  double ap_setback_m = 15.0;   // perpendicular distance facade -> road
  double boresight_lane_y = 0.0;
  /// Installation imperfections, drawn once per AP: dish aiming error along
  /// the road and peak-gain spread. These make the coverage patchy and
  /// uneven like the paper's measured Figure 10 heatmaps (some AP pairs
  /// overlap 10 m, others barely 6 m) rather than perfectly periodic.
  double aim_jitter_m = 1.5;
  double gain_jitter_db = 1.5;
  channel::LinkChannel::Config link{};
  std::uint64_t seed = 1;
  /// Build each (AP, client) LinkChannel on first use instead of eagerly in
  /// add_client. Each lazy link draws from a private RNG seeded from
  /// (seed, ap, client), so the realization is deterministic and
  /// independent of access order — but DIFFERENT from the eager build,
  /// which draws all links sequentially from one shared stream. Default off
  /// (eager) keeps every existing seeded scenario byte-identical; the
  /// city-scale bench opts in because an eager 1024 x 256 matrix of
  /// multipath taps would dwarf the links that are ever actually used
  /// (each client only ever exercises the handful of APs in sense range).
  bool lazy_links = false;
};

class TestbedGeometry {
 public:
  explicit TestbedGeometry(const GeometryConfig& config);

  /// Adds a client slot; builds its channel to every AP. Returns the index.
  int add_client(const mobility::Trajectory* trajectory);

  [[nodiscard]] int num_aps() const { return config_.num_aps; }
  [[nodiscard]] int num_clients() const { return static_cast<int>(clients_.size()); }
  [[nodiscard]] channel::Vec2 ap_position(int ap) const;
  [[nodiscard]] const channel::LinkChannel& link(int ap, int client) const;
  [[nodiscard]] channel::Vec2 client_position(int client, Time now) const;
  [[nodiscard]] const mobility::Trajectory& trajectory(int client) const;

  /// Road x-coordinates covered by the array (first and last AP), for
  /// aligning measurement windows with the transit.
  [[nodiscard]] double first_ap_x() const { return 0.0; }
  [[nodiscard]] double last_ap_x() const {
    return (config_.num_aps - 1) * config_.ap_spacing_m;
  }

  /// Ground truth: the AP with maximal instantaneous ESNR to the client
  /// (the "optimal AP" of the paper's switching-accuracy metric, Table 2).
  [[nodiscard]] int optimal_ap(int client, Time now) const;

  /// Instantaneous ESNR of one link (pure; does not disturb anything).
  [[nodiscard]] double esnr_db(int ap, int client, Time now) const;

  /// Large-scale mean SNR (no fast fading), e.g. for the Figure 10 heatmap.
  [[nodiscard]] double large_scale_snr_db(int ap, channel::Vec2 at) const;

  [[nodiscard]] const GeometryConfig& config() const { return config_; }

 private:
  struct ApInstall {
    double aim_offset_m = 0.0;   // boresight target slid along the road
    double gain_delta_db = 0.0;  // peak gain deviation
  };

  [[nodiscard]] std::unique_ptr<channel::LinkChannel> make_link(int ap,
                                                               Rng& rng) const;
  /// Per-link seed for lazy construction: a splitmix-style combine of the
  /// geometry seed with (ap, client), so every link realization is fixed by
  /// configuration alone, never by who touched which link first.
  [[nodiscard]] std::uint64_t link_seed(int ap, int client) const;

  GeometryConfig config_;
  Rng rng_;
  std::vector<ApInstall> installs_;
  std::vector<const mobility::Trajectory*> clients_;
  // channels_[client][ap]; slots are null until first use in lazy mode,
  // hence mutable — materialising a link through the const accessor is not
  // an observable mutation.
  mutable std::vector<std::vector<std::unique_ptr<channel::LinkChannel>>>
      channels_;
};

}  // namespace wgtt::scenario
