#include "scenario/parallel_city.h"

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/spatial_index.h"
#include "mobility/trajectory.h"
#include "net/packet.h"
#include "scenario/wgtt_system.h"
#include "sim/parallel.h"
#include "sim/profiler.h"
#include "sim/scheduler.h"
#include "transport/udp.h"

namespace wgtt::scenario {

namespace {

/// splitmix64 finaliser over (seed, salt): corridors get decorrelated
/// geometry/fading draws from one scenario seed, and the mapping is a pure
/// function of (seed, corridor) — independent of build order or workers.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Scoped uid-stream redirect for the single-threaded build phase: every
/// packet drawn while constructing a domain's objects comes from that
/// domain's counter, so construction and execution share one namespace.
class StreamScope {
 public:
  explicit StreamScope(std::uint64_t* stream)
      : prev_(net::set_packet_uid_stream(stream)) {}
  ~StreamScope() { net::set_packet_uid_stream(prev_); }
  StreamScope(const StreamScope&) = delete;
  StreamScope& operator=(const StreamScope&) = delete;

 private:
  std::uint64_t* prev_;
};

struct Corridor {
  // Trajectories are declared before the system so they outlive it
  // (clients hold raw pointers into them).
  std::vector<std::unique_ptr<mobility::Trajectory>> trajectories;
  std::unique_ptr<WgttSystem> sys;
  std::vector<transport::UdpSink> down_sinks;  // client-side (downlink mode)
  std::vector<std::unique_ptr<transport::UdpSource>> up_srcs;  // uplink mode
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

}  // namespace

ParallelCityResult run_parallel_city(const ParallelCityConfig& config) {
  if (config.corridors < 1 || config.aps_per_corridor < 1 ||
      config.clients_per_corridor < 1) {
    throw std::invalid_argument("parallel_city: counts must be >= 1");
  }
  // RF isolation bound: carrier-sense range is ~120 m, so beyond 2x that no
  // corridor can sense (let alone decode) another's transmissions. The
  // domain decomposition is only exact because of this gap.
  if (config.corridor_gap_m < 250.0) {
    throw std::invalid_argument(
        "parallel_city: corridor_gap_m must be >= 250 m (2x carrier-sense "
        "range) for the corridors to be RF-isolated domains");
  }
  const double v = mph_to_mps(config.mph);
  if (v <= 0.0) throw std::invalid_argument("parallel_city: mph must be > 0");

  net::reset_packet_uids();
  ParallelCityResult result;

  const int C = config.corridors;
  const int ncli = config.clients_per_corridor;
  const Time horizon = config.horizon > Time::zero()
                           ? config.horizon
                           : Time::seconds(config.drive_span_m / v);

  // --- global road map -> domain partition ---------------------------------
  // Corridors live on one global road axis at a fixed pitch; one spatial
  // cell per pitch makes segment_of(global x) the domain id. The scenario
  // derives every client/AP -> domain assignment through this index (and
  // verifies it), so the partition provably follows the road-segment
  // structure rather than an ad-hoc list.
  const double spacing = GeometryConfig{}.ap_spacing_m;
  const double extent = (config.aps_per_corridor - 1) * spacing;
  const double pitch = extent + config.corridor_gap_m;
  std::vector<double> global_ap_x;
  global_ap_x.reserve(static_cast<std::size_t>(C) *
                      static_cast<std::size_t>(config.aps_per_corridor));
  for (int c = 0; c < C; ++c) {
    for (int a = 0; a < config.aps_per_corridor; ++a) {
      global_ap_x.push_back(c * pitch + a * spacing);
    }
  }
  core::SpatialIndex road;
  road.build(std::move(global_ap_x), pitch);
  for (int c = 0; c < C; ++c) {
    for (int a = 0; a < config.aps_per_corridor; ++a) {
      if (road.segment_of_ap(c * config.aps_per_corridor + a) != c) {
        throw std::logic_error("parallel_city: AP/segment partition mismatch");
      }
    }
  }

  // --- engine, domains, uid streams ----------------------------------------
  sim::ParallelEngine::Config ecfg;
  ecfg.lookahead = config.wire_latency;
  ecfg.workers = config.workers;
  sim::ParallelEngine engine(ecfg);

  // One uid counter per domain (hub = 0, corridor c = 1 + c), swapped in
  // around every execution window so uid draws never depend on which worker
  // runs a domain (DESIGN.md §11.5). The vector is sized once; element
  // addresses stay stable for the lambdas below.
  std::vector<std::uint64_t> uid(static_cast<std::size_t>(C) + 1);
  for (std::size_t d = 0; d < uid.size(); ++d) {
    uid[d] = net::packet_uid_domain_base(d);
  }
  auto enter_hook = [&uid](int d) {
    return [&uid, d] { net::set_packet_uid_stream(&uid[static_cast<std::size_t>(d)]); };
  };
  auto exit_hook = [] { net::set_packet_uid_stream(nullptr); };

  sim::Scheduler hub_sched;
  const int hub = engine.add_domain(&hub_sched, enter_hook(0), exit_hook);

  std::vector<Corridor> corridors(static_cast<std::size_t>(C));
  std::vector<int> down_edge(static_cast<std::size_t>(C));
  std::vector<int> up_edge(static_cast<std::size_t>(C));
  for (int c = 0; c < C; ++c) {
    Corridor& corr = corridors[static_cast<std::size_t>(c)];
    StreamScope scope(&uid[static_cast<std::size_t>(c) + 1]);

    WgttSystemConfig scfg;
    scfg.geometry.num_aps = config.aps_per_corridor;
    scfg.geometry.seed = mix_seed(config.seed, static_cast<std::uint64_t>(c));
    scfg.geometry.lazy_links = true;
    scfg.controller.bounded_fallback = true;
    scfg.num_domains = config.domains_per_corridor;
    // The hub <-> corridor wire is modeled by the engine edge (it IS the
    // lookahead); the in-corridor server stub adds nothing on top.
    scfg.server_latency = Time::zero();
    corr.sys = std::make_unique<WgttSystem>(scfg);

    // Clients spread evenly over the span they can traverse by the horizon
    // (constant density, always in-array — the kDistributed pattern).
    const double usable = std::max(0.0, extent - config.drive_span_m);
    for (int i = 0; i < ncli; ++i) {
      const double frac = ncli > 1 ? static_cast<double>(i) / (ncli - 1) : 0.0;
      const double start_local = usable * frac;
      if (road.segment_of(c * pitch + start_local) != c) {
        throw std::logic_error(
            "parallel_city: client/segment partition mismatch");
      }
      corr.trajectories.push_back(
          std::make_unique<mobility::LineDrive>(start_local, 0.0, v));
      corr.sys->add_client(corr.trajectories.back().get());
    }
    corr.sys->start();
    if (config.collect_metrics) {
      corr.metrics = std::make_shared<obs::MetricsRegistry>();
      corr.sys->enable_metrics(*corr.metrics);
    }

    const int d = engine.add_domain(&corr.sys->sched(), enter_hook(1 + c),
                                    exit_hook);
    if (d != 1 + c) throw std::logic_error("parallel_city: domain id drift");
    down_edge[static_cast<std::size_t>(c)] = engine.connect(hub, d);
    up_edge[static_cast<std::size_t>(c)] = engine.connect(d, hub);
  }

  // --- traffic --------------------------------------------------------------
  std::vector<std::unique_ptr<transport::UdpSource>> hub_srcs;
  std::vector<transport::UdpSink> hub_sinks(
      static_cast<std::size_t>(C) * static_cast<std::size_t>(ncli));

  for (int c = 0; c < C; ++c) {
    Corridor& corr = corridors[static_cast<std::size_t>(c)];
    WgttSystem* sys = corr.sys.get();
    const int edge_up = up_edge[static_cast<std::size_t>(c)];
    const int base = c * ncli;

    // Uplink data (minus probes) crosses the corridor -> hub wire and is
    // demultiplexed to the hub-side sink for (corridor, client).
    sys->on_server_uplink = [&engine, &hub_sched, &hub_sinks, sys, edge_up,
                             base, ncli,
                             wire = config.wire_latency](const net::Packet& p) {
      engine.post(edge_up, sys->now() + wire,
                  [&hub_sched, &hub_sinks, base, ncli, p] {
                    const auto i =
                        static_cast<int>(net::index_of(p.client));
                    if (i < 0 || i >= ncli) return;
                    hub_sinks[static_cast<std::size_t>(base + i)].on_packet(
                        hub_sched.now(), p);
                  });
    };

    if (!config.uplink) {
      // Downlink CBR: hub-side source per client; packets cross the
      // hub -> corridor wire, then the corridor's controller fans them out.
      // The measurement sink is the client device itself.
      corr.down_sinks = std::vector<transport::UdpSink>(
          static_cast<std::size_t>(ncli));
      for (int i = 0; i < ncli; ++i) {
        transport::UdpSink& sink = corr.down_sinks[static_cast<std::size_t>(i)];
        sys->client(i).on_downlink = [sys, &sink](const net::Packet& p) {
          sink.on_packet(sys->now(), p);
        };
      }
      StreamScope scope(&uid[0]);
      for (int i = 0; i < ncli; ++i) {
        const net::ClientId cid{static_cast<std::uint32_t>(i)};
        auto send = [&engine, &hub_sched, sys, cid,
                     edge = down_edge[static_cast<std::size_t>(c)],
                     wire = config.wire_latency](net::Packet p) {
          p.client = cid;
          engine.post(edge, hub_sched.now() + wire,
                      [sys, p = std::move(p)]() mutable {
                        sys->server_send(std::move(p));
                      });
        };
        hub_srcs.push_back(std::make_unique<transport::UdpSource>(
            hub_sched, send,
            transport::UdpSource::Config{.rate_mbps = config.udp_rate_mbps,
                                         .client = cid}));
        hub_srcs.back()->start();
      }
    } else {
      // Uplink CBR: sources live on the client, in the corridor domain.
      StreamScope scope(&uid[static_cast<std::size_t>(c) + 1]);
      for (int i = 0; i < ncli; ++i) {
        const net::ClientId cid{static_cast<std::uint32_t>(i)};
        auto send = [sys, i](net::Packet p) {
          sys->client(i).send_uplink(std::move(p));
        };
        corr.up_srcs.push_back(std::make_unique<transport::UdpSource>(
            sys->sched(), send,
            transport::UdpSource::Config{.rate_mbps = config.udp_rate_mbps,
                                         .client = cid,
                                         .downlink = false}));
        corr.up_srcs.back()->start();
      }
    }
  }

  // --- profiling (wall-clock, opt-in) ---------------------------------------
  std::vector<sim::EventProfiler> profs;
  if (config.profile) {
    profs = std::vector<sim::EventProfiler>(static_cast<std::size_t>(C) + 1);
    hub_sched.set_profiler(&profs[0]);
    for (int c = 0; c < C; ++c) {
      corridors[static_cast<std::size_t>(c)].sys->sched().set_profiler(
          &profs[static_cast<std::size_t>(c) + 1]);
    }
  }

  // --- run ------------------------------------------------------------------
  const auto wall_start = std::chrono::steady_clock::now();
  engine.run_until(horizon);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (config.profile) {
    hub_sched.set_profiler(nullptr);
    for (int c = 0; c < C; ++c) {
      corridors[static_cast<std::size_t>(c)].sys->sched().set_profiler(nullptr);
    }
  }

  // --- collect --------------------------------------------------------------
  const Time t0 = std::min(Time::ms(500), horizon);
  double total_mbps = 0.0;
  for (int c = 0; c < C; ++c) {
    Corridor& corr = corridors[static_cast<std::size_t>(c)];
    for (int i = 0; i < ncli; ++i) {
      const transport::UdpSink& sink =
          config.uplink
              ? hub_sinks[static_cast<std::size_t>(c * ncli + i)]
              : corr.down_sinks[static_cast<std::size_t>(i)];
      const double mbps = sink.throughput().average_mbps(t0, horizon);
      result.client_mbps.push_back(mbps);
      total_mbps += mbps;
    }
    for (int d = 0; d < corr.sys->num_domains(); ++d) {
      result.switches += corr.sys->controller(d).stats().switches_completed;
    }
    result.invariant_violations +=
        corr.sys->check_invariants().violations.size();
  }
  result.mean_mbps =
      result.client_mbps.empty()
          ? 0.0
          : total_mbps / static_cast<double>(result.client_mbps.size());
  result.lookahead_violations = engine.lookahead_violations();
  result.rounds = engine.rounds();
  result.messages = engine.messages_delivered();
  result.workers_used = engine.workers_used();
  result.domains = engine.num_domains();
  for (int d = 0; d < engine.num_domains(); ++d) {
    result.events_executed += engine.domain_events(d);
  }
  result.wall_s = wall_s;
  result.events_per_sec =
      wall_s > 0.0 ? static_cast<double>(result.events_executed) / wall_s : 0.0;

  if (config.collect_metrics) {
    result.metrics = std::make_shared<obs::MetricsRegistry>();
    // Ascending domain order — the merge is independent of worker count.
    for (int c = 0; c < C; ++c) {
      result.metrics->merge_from(*corridors[static_cast<std::size_t>(c)].metrics);
    }
    obs::MetricsRegistry& m = *result.metrics;
    m.counter("parallel.rounds").inc(result.rounds);
    m.counter("parallel.messages").inc(result.messages);
    m.counter("parallel.lookahead_violations").inc(result.lookahead_violations);
    for (int d = 0; d < engine.num_domains(); ++d) {
      m.counter("parallel.domain" + std::to_string(d) + ".events")
          .inc(engine.domain_events(d));
    }
  }
  if (config.record_perf) {
    // Wall-clock (and worker-count-dependent) gauges, opt-in only: they must
    // never enter a snapshot the byte-identity sweep compares.
    if (!result.metrics) result.metrics = std::make_shared<obs::MetricsRegistry>();
    result.metrics->gauge("sim.events_per_sec").set(result.events_per_sec);
    result.metrics->gauge("sim.profile.threads_used")
        .set(static_cast<double>(result.workers_used));
  }
  if (config.profile) {
    if (!result.metrics) result.metrics = std::make_shared<obs::MetricsRegistry>();
    sim::EventProfiler total;
    for (const sim::EventProfiler& p : profs) total.merge_from(p);
    total.flush_to(*result.metrics);
    result.metrics->gauge("sim.profile.threads_used")
        .set(static_cast<double>(result.workers_used));
  }
  return result;
}

}  // namespace wgtt::scenario
