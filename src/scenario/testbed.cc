#include "scenario/testbed.h"

#include <stdexcept>

#include "phy/esnr.h"

namespace wgtt::scenario {

TestbedGeometry::TestbedGeometry(const GeometryConfig& config)
    : config_(config), rng_(config.seed) {
  if (config.num_aps <= 0) throw std::invalid_argument("need at least one AP");
  installs_.reserve(static_cast<std::size_t>(config.num_aps));
  for (int i = 0; i < config.num_aps; ++i) {
    ApInstall inst;
    inst.aim_offset_m = rng_.normal(0.0, config.aim_jitter_m);
    inst.gain_delta_db = rng_.normal(0.0, config.gain_jitter_db);
    installs_.push_back(inst);
  }
}

channel::Vec2 TestbedGeometry::ap_position(int ap) const {
  return {ap * config_.ap_spacing_m, config_.ap_setback_m};
}

std::unique_ptr<channel::LinkChannel> TestbedGeometry::make_link(
    int ap, Rng& rng) const {
  const channel::Vec2 pos = ap_position(ap);
  const ApInstall& inst = installs_[static_cast<std::size_t>(ap)];
  const channel::Vec2 target{pos.x + inst.aim_offset_m,
                             config_.boresight_lane_y};
  channel::LinkChannel::Config link_cfg = config_.link;
  link_cfg.budget.ap_antenna_peak_dbi += inst.gain_delta_db;
  return std::make_unique<channel::LinkChannel>(pos, target, link_cfg, rng);
}

std::uint64_t TestbedGeometry::link_seed(int ap, int client) const {
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(client)) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(ap));
  // splitmix64 over (seed ^ golden-ratio-spread pair): decorrelates
  // neighbouring (ap, client) pairs.
  std::uint64_t z = config_.seed ^ (pair * 0x9e3779b97f4a7c15ULL);
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int TestbedGeometry::add_client(const mobility::Trajectory* trajectory) {
  const int idx = static_cast<int>(clients_.size());
  clients_.push_back(trajectory);
  auto& row = channels_.emplace_back();
  if (config_.lazy_links) {
    // Null slots; link() materialises each one on first use from its own
    // (seed, ap, client)-derived RNG.
    row.resize(static_cast<std::size_t>(config_.num_aps));
    return idx;
  }
  row.reserve(static_cast<std::size_t>(config_.num_aps));
  for (int ap = 0; ap < config_.num_aps; ++ap) {
    row.push_back(make_link(ap, rng_));
  }
  return idx;
}

const channel::LinkChannel& TestbedGeometry::link(int ap, int client) const {
  auto& slot = channels_.at(static_cast<std::size_t>(client))
                   .at(static_cast<std::size_t>(ap));
  if (slot == nullptr) {
    Rng rng(link_seed(ap, client));
    slot = make_link(ap, rng);
  }
  return *slot;
}

channel::Vec2 TestbedGeometry::client_position(int client, Time now) const {
  return clients_.at(static_cast<std::size_t>(client))->position(now);
}

const mobility::Trajectory& TestbedGeometry::trajectory(int client) const {
  return *clients_.at(static_cast<std::size_t>(client));
}

double TestbedGeometry::esnr_db(int ap, int client, Time now) const {
  const auto m = link(ap, client).measure(client_position(client, now), now);
  return phy::esnr_metric_db(m.subcarrier_snr_db);
}

int TestbedGeometry::optimal_ap(int client, Time now) const {
  int best = 0;
  double best_esnr = -1e9;
  for (int ap = 0; ap < config_.num_aps; ++ap) {
    const double e = esnr_db(ap, client, now);
    if (e > best_esnr) {
      best_esnr = e;
      best = ap;
    }
  }
  return best;
}

double TestbedGeometry::large_scale_snr_db(int ap, channel::Vec2 at) const {
  if (channels_.empty()) {
    throw std::logic_error("add a client before sampling the heatmap");
  }
  return link(ap, 0).large_scale_snr_db(at);
}

}  // namespace wgtt::scenario
