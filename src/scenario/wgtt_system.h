// Fully wired WGTT network over the roadside testbed: scheduler, medium,
// backhaul, controller, eight WgttAps, and any number of mobile clients.
// This is the top-level object examples and benches instantiate.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ap/wgtt_ap.h"
#include "core/controller.h"
#include "core/domain_map.h"
#include "core/spatial_index.h"
#include "core/wgtt_client.h"
#include "mac/medium.h"
#include "net/backhaul.h"
#include "net/packet_pool.h"
#include "obs/metrics.h"
#include "scenario/testbed.h"
#include "sim/scheduler.h"

namespace wgtt::scenario {

/// Result of WgttSystem::check_invariants: what the switching protocol must
/// guarantee even when the backhaul drops, delays or duplicates control
/// messages. `violations` holds one human-readable line per breach.
struct InvariantReport {
  /// Clients whose outstanding switch has been pending longer than the
  /// stall bound — the retransmit chain should have completed or superseded
  /// it by then (a handful of 30 ms timeouts).
  int stalled_switches = 0;
  /// Clients served by more than one AP while no switch is in flight and
  /// the last one completed at least the grace period ago (residual-drain
  /// overlap during a switch is expected and excluded).
  int duplicate_serving = 0;
  /// Clients where the controller's view of the serving AP disagrees with
  /// the AP-side serving flags after quiesce.
  int serving_disagreements = 0;
  /// Sum of WgttAp::Stats::index_regressions over all APs: times a start
  /// rewound an already-serving drain pointer (the duplicate-StartMsg bug).
  std::uint64_t index_regressions = 0;
  /// Crashed APs whose MAC delivered an MPDU after the crash instant — a
  /// dead AP must deliver nothing.
  int dead_ap_deliveries = 0;
  /// Clients the controller still routes through an AP it has itself
  /// declared Dead for longer than the stall bound: forced failover (or
  /// degraded-mode unserve) should have moved them long before.
  int dead_serving = 0;
  /// Multi-domain rule: clients owned by more than one non-crashed
  /// controller with no handover in flight that could explain the overlap
  /// (split-brain the gossip reconciliation should have collapsed).
  int ownership_violations = 0;
  /// Multi-domain rule: clients no non-crashed controller owns and no
  /// handover is moving — after a failover settles, some surviving domain
  /// must have adopted them.
  int orphaned_clients = 0;
  std::vector<std::string> violations;
  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Scripted faults for one AP (DESIGN.md §7). All events are wall-clock sim
/// times. An empty script list in the config schedules nothing and keeps
/// seeded runs byte-identical; a non-empty list auto-enables the
/// controller's liveness machinery.
struct ApFaultScript {
  int ap = 0;
  /// Hard crash: cyclic queues and ControlRecords wiped, radio off the air,
  /// backhaul link down.
  std::optional<Time> crash_at;
  /// Restart after a crash: link and radio restored, association state
  /// replayed from the replicated store, queues cold.
  std::optional<Time> restart_at;
  /// Zombie window: backhaul link dies but the radio keeps serving — the
  /// failure mode where the AP looks dead to the controller yet keeps
  /// transmitting stale backlog.
  std::optional<Time> zombie_at;
  std::optional<Time> zombie_end_at;
  /// Timed backhaul partition windows [from, until): link down, node state
  /// intact. Mechanically like a zombie window; kept separate so scripts
  /// read as what they model.
  std::vector<std::pair<Time, Time>> partitions;
};

/// Scripted faults for one controller domain (DESIGN.md §12). Fail-stop:
/// a crash takes the controller process and its backhaul port down
/// together; a restart comes back cold and re-learns ownership from peer
/// gossip. Only meaningful with num_domains > 1.
struct ControllerFaultScript {
  int domain = 0;
  std::optional<Time> crash_at;
  std::optional<Time> restart_at;
};

/// Spatial interest management (DESIGN.md §9): a road-segment index over
/// the AP positions that bounds every per-(client, AP) hot-path scan —
/// medium delivery fan-out, CSI sampling, ESNR argmax, heartbeat sharding —
/// to the O(1) neighborhood that can physically matter. The index is purely
/// an exactness-preserving accelerator: with `use_index` on (the default),
/// every candidate set, metric and packet is byte-identical to the brute
/// O(APs) scans, which tests/spatial_test.cc proves seed-by-seed.
struct SpatialConfig {
  bool use_index = true;
  /// Road-segment (grid cell) width. APs are 7.5 m apart in the testbed,
  /// so 30 m buckets ~4 APs per segment.
  double cell_m = 30.0;
  /// Neighborhood radius for per-client AP interest (tracker scans, bounded
  /// fan-out fallback, liveness sharding). 0 derives the safe default
  /// 2 * sense_range + 50 m: any AP that could hold in-window or fresh CSI
  /// for a client anchored at AP a heard the client within sense range,
  /// and the client moved < 50 m since (see esnr_tracker.h).
  double neighbor_radius_m = 0.0;
};

struct WgttSystemConfig {
  GeometryConfig geometry{};
  mac::Medium::Config medium{};
  net::Backhaul::Config backhaul{};
  core::Controller::Config controller{};
  ap::WgttAp::Config ap{};
  core::WgttClient::Config client{};
  SpatialConfig spatial{};
  /// One-way wire latency between the (local) server and the controller.
  Time server_latency = Time::ms(1);
  /// Channel reuse factor (paper §7 "Multi-channel settings"). 1 = the
  /// paper's single-channel deployment. N > 1 assigns AP i to channel
  /// i mod N; clients retune to follow their serving AP (with a brief
  /// blackout), and APs on other channels can no longer overhear the
  /// client — killing uplink diversity, BA forwarding and neighbour CSI.
  int channel_reuse = 1;
  /// Client retune blackout when following a cross-channel switch.
  Time retune_blackout = Time::micros(1500.0);
  /// Off-channel scan cadence in multi-channel mode: how often a client
  /// hops to another channel to announce itself (so that channel's APs can
  /// measure CSI on it), and how long it lingers there. Time spent off the
  /// serving channel is dead air for downlink — the structural cost the
  /// paper's §7 points at.
  Time scan_period = Time::ms(150);
  Time scan_dwell = Time::ms(8);
  /// Per-AP fault scripts. Empty (the default) schedules nothing — zero
  /// extra events, zero extra RNG draws, byte-identical seeded runs.
  std::vector<ApFaultScript> ap_faults;
  /// Controller domains (DESIGN.md §12). 1 (the default) instantiates the
  /// single legacy controller — no inter-controller traffic, no extra
  /// timers, byte-identical seeded runs. N > 1 splits the AP array into N
  /// contiguous domains (segment-aligned when the spatial index is on) and
  /// turns on inter-domain handover + controller-to-controller liveness.
  int num_domains = 1;
  /// Scripted controller crashes/restarts. Ignored with num_domains == 1.
  std::vector<ControllerFaultScript> controller_faults;
  /// Single-copy downlink fan-out: the controller acquires each downlink
  /// packet once in a system-wide net::PacketPool and fans 4-byte
  /// refcounted handles out to the in-range APs instead of N payload
  /// copies. Pure memory/CPU optimisation — every delivered byte, metric
  /// and RNG draw is identical with it off (tests/backhaul_model_test.cc
  /// proves this seed-by-seed), so it defaults on.
  bool use_fanout_pool = true;
};

class WgttSystem {
 public:
  explicit WgttSystem(const WgttSystemConfig& config);

  /// Adds a mobile client following `trajectory` (not owned; must outlive
  /// the system). Returns the client index.
  int add_client(const mobility::Trajectory* trajectory);

  /// Registers all clients at all APs (replicated association, §4.3) and
  /// starts their background probing. Call once after add_client calls.
  void start();

  /// Runs the simulation until `t`.
  void run_until(Time t) { sched_.run_until(t); }

  /// Wires every component (controller, APs, AP MACs, client MACs — also
  /// clients added afterwards) into `registry` and starts a periodic
  /// sampler that records system-wide queue-occupancy gauges every
  /// `sample_period`. The registry must outlive the system.
  void enable_metrics(obs::MetricsRegistry& registry,
                      Time sample_period = Time::ms(100));

  // --- server-side traffic attachment -------------------------------------
  /// Sends a downlink packet from the server (adds the wire latency).
  void server_send(net::Packet packet);
  /// De-duplicated uplink packets (minus background probes) arrive here
  /// after the wire latency.
  std::function<void(const net::Packet&)> on_server_uplink;

  // --- accessors ------------------------------------------------------------
  [[nodiscard]] sim::Scheduler& sched() { return sched_; }
  [[nodiscard]] Time now() const { return sched_.now(); }
  [[nodiscard]] TestbedGeometry& geometry() { return geometry_; }
  /// Domain 0's controller — the only one with num_domains == 1, so every
  /// legacy caller keeps working unchanged.
  [[nodiscard]] core::Controller& controller() { return *controllers_.front(); }
  [[nodiscard]] core::Controller& controller(int d) {
    return *controllers_.at(static_cast<std::size_t>(d));
  }
  [[nodiscard]] int num_domains() const {
    return static_cast<int>(controllers_.size());
  }
  /// The AP-to-domain partition; empty when num_domains == 1.
  [[nodiscard]] const core::DomainMap& domain_map() const { return domain_map_; }
  /// The domain the server currently routes client i's downlink through.
  [[nodiscard]] int owner_domain(int client) const {
    return owner_of_.at(static_cast<std::size_t>(client));
  }
  [[nodiscard]] ap::WgttAp& ap(int i) { return *aps_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] core::WgttClient& client(int i) {
    return *clients_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] int num_aps() const { return geometry_.num_aps(); }
  [[nodiscard]] int num_clients() const { return static_cast<int>(clients_.size()); }
  [[nodiscard]] mac::Medium& medium() { return medium_; }
  [[nodiscard]] net::Backhaul& backhaul() { return backhaul_; }
  /// AP index serving client i, or -1 before bootstrap.
  [[nodiscard]] int serving_ap(int client) const;
  /// Ground truth for the switching-accuracy metric: the AP with maximal
  /// instantaneous ESNR to client i. With the spatial index on, only the
  /// neighborhood within sense range (plus margin) is evaluated — an AP the
  /// client cannot hear at all can never be the paper's "optimal AP" — and
  /// falls back to the nearest AP when the neighborhood is empty. With the
  /// index off this is exactly TestbedGeometry::optimal_ap.
  [[nodiscard]] int optimal_ap(int client, Time now) const;
  /// The road-segment index, empty when `spatial.use_index` is off.
  [[nodiscard]] const core::SpatialIndex& spatial_index() const {
    return spatial_index_;
  }

  // --- fault orchestration --------------------------------------------------
  // Normally driven by the scripted schedule in `ap_faults`, public so tests
  // can inject faults at exact protocol states.
  /// Hard-crashes AP i: radio off the air, backhaul link down, volatile AP
  /// state wiped (WgttAp::crash).
  void crash_ap(int i);
  /// Restarts a crashed AP i: channel and link restored, WgttAp::restart.
  void restart_ap(int i);
  /// Takes AP i's backhaul link down/up without touching the node (zombie
  /// mode / partition): the radio keeps serving whatever it has.
  void set_ap_backhaul(int i, bool up);
  /// Fail-stop crash of controller domain d: backhaul port dark, volatile
  /// ownership/handover state wiped. No-op with num_domains == 1 intact —
  /// a single-controller deployment has no one to fail over to.
  void crash_controller(int d);
  /// Cold restart of a crashed controller: link restored, state re-learned
  /// from peer gossip; its home APs migrate back via AdoptAp.
  void restart_controller(int d);

  /// Checks the switching-protocol invariants at the current sim time (see
  /// InvariantReport). `stall_bound` is how long a pending switch may stay
  /// outstanding before it counts as stalled; `serving_grace` is how long
  /// after a completed switch the old AP may still be winding down before
  /// duplicate-serving counts as a breach.
  [[nodiscard]] InvariantReport check_invariants(
      Time stall_bound = Time::ms(300),
      Time serving_grace = Time::ms(60)) const;

 private:
  [[nodiscard]] channel::CsiMeasurement sample_for_ap(int ap, mac::RadioId peer);
  [[nodiscard]] channel::CsiMeasurement sample_for_client(int client,
                                                          mac::RadioId peer);
  [[nodiscard]] channel::CsiMeasurement fallback_csi() const;
  [[nodiscard]] int nearest_ap(int client) const;
  /// The controller the server should route client c's traffic through:
  /// the last-announced owner, or the lowest-index alive controller when
  /// that domain is down (its adopter announces itself within a failover).
  [[nodiscard]] core::Controller& route_controller(int client);
  [[nodiscard]] const core::Controller& route_controller(int client) const;
  /// The controller currently homing AP a (follows AdoptAp re-homing).
  [[nodiscard]] const core::Controller& ap_controller(std::size_t a) const;

  WgttSystemConfig config_;
  Rng rng_;
  sim::Scheduler sched_;
  mac::Medium medium_;
  net::Backhaul backhaul_;
  // Shared downlink payload pool (use_fanout_pool). Declared before the
  // controller and APs so their queues (which hold pool references) are
  // destroyed first.
  net::PacketPool payload_pool_;
  TestbedGeometry geometry_;
  core::SpatialIndex spatial_index_;
  double spatial_radius_m_ = 0.0;
  mutable std::vector<int> spatial_scratch_;
  core::DomainMap domain_map_;
  std::vector<std::unique_ptr<core::Controller>> controllers_;
  /// Server-side routing table, updated by Controller::on_ownership_changed.
  std::vector<int> owner_of_;
  std::vector<std::unique_ptr<ap::WgttAp>> aps_;
  std::vector<std::unique_ptr<core::WgttClient>> clients_;
  std::unordered_map<mac::RadioId, int> client_idx_of_radio_;
  std::unordered_map<mac::RadioId, int> ap_idx_of_radio_;
  std::unique_ptr<sim::Timer> channel_follow_timer_;
  std::vector<std::unique_ptr<sim::Timer>> scan_timers_;
  std::vector<bool> client_retuning_;
  std::vector<int> scan_next_offset_;
  std::vector<int> ap_channel_before_crash_;
  /// When the last scripted/injected controller crash or restart fired —
  /// check_invariants grants a settle window after it.
  std::optional<Time> last_controller_fault_;
  bool started_ = false;

  void sample_system_metrics();
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<sim::Timer> metrics_sampler_;
  Time metrics_sample_period_ = Time::ms(100);
};

}  // namespace wgtt::scenario
