#include "scenario/wgtt_system.h"

#include <algorithm>
#include <limits>

namespace wgtt::scenario {
namespace {
/// Slack added to sense range when turning the medium's audibility rule
/// into an interest neighborhood: covers receiver motion during a frame's
/// flight (centimetres at transit speeds) with room to spare, so the
/// filtered candidate set is always a superset of the audible set.
constexpr double kReachMarginM = 5.0;
}  // namespace

WgttSystem::WgttSystem(const WgttSystemConfig& config)
    : config_(config),
      rng_(config.geometry.seed ^ 0x5747745747ULL),
      medium_(sched_, config.medium),
      backhaul_(sched_, config.backhaul, Rng{config.geometry.seed ^ 0xbacc}),
      geometry_(config.geometry) {
  // Fault scripts imply liveness: detecting a scripted AP death requires
  // the heartbeat machinery. Scenarios may also enable it explicitly (to
  // study the heartbeat overhead with no faults); with neither, the
  // controller runs exactly as before — no heartbeats, no extra RNG draws.
  if (!config_.ap_faults.empty()) config_.controller.liveness_enabled = true;
  // The spatial index is built before the controllers so the domain split
  // can align its cuts to road-segment boundaries. Index construction draws
  // no RNG, so hoisting it preserves byte-identical seeded runs.
  if (config_.spatial.use_index) {
    std::vector<double> xs;
    xs.reserve(static_cast<std::size_t>(config_.geometry.num_aps));
    for (int i = 0; i < config_.geometry.num_aps; ++i) {
      xs.push_back(geometry_.ap_position(i).x);
    }
    spatial_index_.build(std::move(xs), config_.spatial.cell_m);
    spatial_radius_m_ = config_.spatial.neighbor_radius_m > 0.0
                            ? config_.spatial.neighbor_radius_m
                            : 2.0 * config_.medium.sense_range_m + 50.0;
  }
  const int nd = std::clamp(config_.num_domains, 1,
                            std::max(1, config_.geometry.num_aps));
  if (nd > 1) {
    if (!spatial_index_.empty()) {
      domain_map_.build(spatial_index_, static_cast<std::uint32_t>(nd));
    } else {
      domain_map_.build(static_cast<std::uint32_t>(config_.geometry.num_aps),
                        static_cast<std::uint32_t>(nd));
    }
  }
  if (config_.use_fanout_pool) backhaul_.set_payload_pool(&payload_pool_);
  for (int d = 0; d < nd; ++d) {
    core::Controller::Config ccfg = config_.controller;
    if (nd > 1) {
      ccfg.domains.enabled = true;
      ccfg.domains.id = static_cast<std::uint32_t>(d);
      ccfg.domains.num_domains = static_cast<std::uint32_t>(nd);
    }
    auto ctrl = std::make_unique<core::Controller>(sched_, backhaul_, ccfg);
    if (nd > 1) ctrl->set_domain_map(&domain_map_);
    if (config_.use_fanout_pool) {
      // Single-copy fan-out: the controller acquires once, each target AP
      // holds a reference, and the backhaul drops/refs payloads along with
      // the messages it loses or duplicates.
      ctrl->set_payload_pool(&payload_pool_);
    }
    if (config_.spatial.use_index) {
      ctrl->set_spatial(&spatial_index_, spatial_radius_m_);
    }
    ctrl->on_ownership_changed = [this](net::ClientId c, std::uint32_t owner) {
      const std::size_t i = net::index_of(c);
      if (i < owner_of_.size()) owner_of_[i] = static_cast<int>(owner);
    };
    controllers_.push_back(std::move(ctrl));
  }
  for (int i = 0; i < config_.geometry.num_aps; ++i) {
    const net::ApId ap_id{static_cast<std::uint32_t>(i)};
    auto ap = std::make_unique<ap::WgttAp>(
        ap_id, sched_, medium_, backhaul_, rng_.fork(), config_.ap,
        [this, i] { return geometry_.ap_position(i); });
    if (config_.use_fanout_pool) ap->set_payload_pool(&payload_pool_);
    ap_idx_of_radio_[ap->mac().radio()] = i;
    ap->mac().set_channel_sampler([this, i](mac::RadioId peer) {
      return sample_for_ap(i, peer);
    });
    ap->mac().set_interest_filter([this](mac::RadioId from) {
      return client_idx_of_radio_.contains(from);
    });
    ap->set_ap_directory([this](mac::RadioId r) -> std::optional<net::ApId> {
      auto it = ap_idx_of_radio_.find(r);
      if (it == ap_idx_of_radio_.end()) return std::nullopt;
      return net::ApId{static_cast<std::uint32_t>(it->second)};
    });
    const int home =
        nd > 1 ? static_cast<int>(domain_map_.domain_of_ap(ap_id)) : 0;
    ap->set_controller_node(
        net::NodeId::controller(static_cast<std::uint32_t>(home)));
    controllers_[static_cast<std::size_t>(home)]->add_ap(ap_id);
    aps_.push_back(std::move(ap));
  }
  ap_channel_before_crash_.assign(aps_.size(), mac::Medium::kNoChannel);
  if (config_.spatial.use_index) {
    // Medium interest filter: only radios that could possibly be within
    // sense range of the transmit origin get delivery events. AP radios are
    // 0..A-1 in AP-index order and client radios follow in add_client
    // order, so appending index-sorted APs then index-ordered clients
    // satisfies the medium's increasing-RadioId contract.
    medium_.set_reach_filter(
        [this](channel::Vec2 origin, std::vector<mac::RadioId>& out) {
          const double reach = config_.medium.sense_range_m + kReachMarginM;
          spatial_scratch_.clear();
          spatial_index_.neighbors(origin.x, reach, spatial_scratch_);
          for (const int i : spatial_scratch_) {
            out.push_back(aps_[static_cast<std::size_t>(i)]->mac().radio());
          }
          const Time now = sched_.now();
          for (std::size_t c = 0; c < clients_.size(); ++c) {
            const channel::Vec2 pos =
                geometry_.client_position(static_cast<int>(c), now);
            if (channel::distance(origin, pos) <= reach) {
              out.push_back(clients_[c]->radio());
            }
          }
        });
  }
  // Capture-effect power oracle: large-scale rx power of any transmitter at
  // any point, from the link-budget models.
  medium_.set_power_oracle([this](mac::RadioId tx, channel::Vec2 at) -> double {
    if (geometry_.num_clients() == 0) return -90.0;
    if (auto it = ap_idx_of_radio_.find(tx); it != ap_idx_of_radio_.end()) {
      return geometry_.link(it->second, 0).large_scale_rx_dbm(at);
    }
    if (auto it = client_idx_of_radio_.find(tx); it != client_idx_of_radio_.end()) {
      // Reciprocal: the client's power at `at` equals an AP-at-`at`'s power
      // at the client; use the nearest AP's link as the estimate.
      const channel::Vec2 cpos =
          geometry_.client_position(it->second, sched_.now());
      // All APs share the facade y, so argmin 2D distance == argmin |dx|
      // and the index's nearest() (ties to the lowest AP index, like this
      // loop's strict-<) gives the identical answer in O(log A).
      int best = spatial_index_.nearest(at.x);
      if (best < 0) {
        best = 0;
        double best_d = std::numeric_limits<double>::max();
        for (int i = 0; i < geometry_.num_aps(); ++i) {
          const double d = channel::distance(at, geometry_.ap_position(i));
          if (d < best_d) {
            best_d = d;
            best = i;
          }
        }
      }
      return geometry_.link(best, it->second).large_scale_rx_dbm(cpos);
    }
    return -90.0;
  });

  // Only the owning controller delivers a de-duplicated uplink stream (a
  // non-owner forwards raw uplink to the believed owner), so hooking every
  // controller yields each server packet exactly once.
  for (auto& ctrl : controllers_) {
    ctrl->on_uplink = [this](const net::Packet& p) {
      if (p.proto == net::Proto::kArp) return;  // background probes stop here
      if (!on_server_uplink) return;
      sched_.schedule_in(config_.server_latency,
                         [this, p] { on_server_uplink(p); },
                         sim::EventCategory::kBackhaul);
    };
  }
}

int WgttSystem::add_client(const mobility::Trajectory* trajectory) {
  const int idx = geometry_.add_client(trajectory);
  const net::ClientId cid{static_cast<std::uint32_t>(idx)};
  auto client = std::make_unique<core::WgttClient>(
      cid, sched_, medium_, rng_.fork(), config_.client, trajectory);
  client_idx_of_radio_[client->radio()] = idx;
  client->mac().set_channel_sampler([this, idx](mac::RadioId peer) {
    return sample_for_client(idx, peer);
  });
  if (metrics_ != nullptr) client->mac().set_metrics(metrics_, "client_mac");
  for (auto& ctrl : controllers_) ctrl->add_client(cid);
  int owner = 0;
  if (num_domains() > 1) {
    // Initial owner: the domain homing the AP nearest the client's start
    // position. Every controller starts from the same belief.
    owner = static_cast<int>(domain_map_.domain_of_ap(
        net::ApId{static_cast<std::uint32_t>(nearest_ap(idx))}));
    for (auto& ctrl : controllers_) {
      ctrl->set_client_owner(cid, static_cast<std::uint32_t>(owner));
    }
  }
  owner_of_.push_back(owner);
  clients_.push_back(std::move(client));
  return idx;
}

void WgttSystem::enable_metrics(obs::MetricsRegistry& registry,
                                Time sample_period) {
  metrics_ = &registry;
  metrics_sample_period_ = sample_period;
  // Controllers share instruments by key, so multi-domain counters
  // aggregate across domains in one registry entry.
  for (auto& ctrl : controllers_) ctrl->set_metrics(&registry);
  for (auto& ap : aps_) {
    ap->set_metrics(&registry);
    ap->mac().set_metrics(&registry, "mac");
  }
  for (auto& client : clients_) {
    client->mac().set_metrics(&registry, "client_mac");
  }
  // Pre-register the sampled gauges so a snapshot taken before the first
  // sampler tick already carries the keys.
  registry.gauge("system.cyclic_backlog_total");
  registry.gauge("system.hw_queue_depth_total");
  registry.histogram("system.cyclic_backlog_depth", 0.0, 4096.0, 128);
  // Backhaul-model gauges only exist when the bandwidth model or batching
  // is enabled — default-config snapshots must stay byte-identical to the
  // infinite-pipe engine (same gating discipline as the liveness metrics).
  if (config_.backhaul.link_rate_mbps > 0.0 || config_.backhaul.batching) {
    registry.gauge("backhaul.link_utilization");
    registry.gauge("backhaul.queue_drops");
    registry.gauge("net.pool_refs");
  }
  if (!metrics_sampler_) {
    metrics_sampler_ = std::make_unique<sim::Timer>(sched_, [this] {
      sample_system_metrics();
      metrics_sampler_->start(metrics_sample_period_);
    });
  }
  metrics_sampler_->start(metrics_sample_period_);
}

void WgttSystem::sample_system_metrics() {
  if (metrics_ == nullptr) return;
  std::size_t backlog = 0;
  std::size_t hw_depth = 0;
  for (const auto& ap : aps_) ap->queue_totals(backlog, hw_depth);
  metrics_->gauge("system.cyclic_backlog_total")
      .set(static_cast<double>(backlog));
  metrics_->gauge("system.hw_queue_depth_total")
      .set(static_cast<double>(hw_depth));
  metrics_->histogram("system.cyclic_backlog_depth", 0.0, 4096.0, 128)
      .observe(static_cast<double>(backlog));
  if (config_.backhaul.link_rate_mbps > 0.0 || config_.backhaul.batching) {
    metrics_->gauge("backhaul.link_utilization")
        .set(backhaul_.max_link_utilization(sched_.now()));
    metrics_->gauge("backhaul.queue_drops")
        .set(static_cast<double>(backhaul_.queue_drops()));
    metrics_->gauge("net.pool_refs")
        .set(static_cast<double>(payload_pool_.total_refs()));
  }
}

void WgttSystem::start() {
  if (started_) return;
  started_ = true;
  // Replicated association (§4.3): every AP learns every client.
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    const net::ClientId cid{static_cast<std::uint32_t>(c)};
    for (auto& ap : aps_) ap->register_client(cid, clients_[c]->radio());
    clients_[c]->start_probing();
  }

  if (config_.channel_reuse > 1) {
    // §7 multi-channel: AP i on channel i mod N; each client follows its
    // serving AP's channel (checked every millisecond — optimistic: a real
    // client needs a channel-switch announcement, so this is a LOWER bound
    // on the cost of multi-channel operation).
    for (int i = 0; i < num_aps(); ++i) {
      medium_.set_radio_channel(aps_[static_cast<std::size_t>(i)]->mac().radio(),
                                1 + i % config_.channel_reuse);
    }
    client_retuning_.assign(clients_.size(), false);
    scan_next_offset_.assign(clients_.size(), 1);

    // Off-channel scanning: periodically hop to another channel, announce
    // with a probe, and return — that is how APs on other channels obtain
    // CSI for this client, making cross-channel switches possible at all.
    for (std::size_t c = 0; c < clients_.size(); ++c) {
      scan_timers_.push_back(std::make_unique<sim::Timer>(
          sched_,
          [this, c] {
        if (!client_retuning_[c]) {
          const mac::RadioId radio = clients_[c]->radio();
          const int current = medium_.radio_channel(radio);
          if (current != mac::Medium::kNoChannel) {
            int& off = scan_next_offset_[c];
            const int scan_ch =
                1 + (current - 1 + off) % config_.channel_reuse;
            off = 1 + off % (config_.channel_reuse - 1);
            client_retuning_[c] = true;  // suspend channel-follow
            medium_.set_radio_channel(radio, scan_ch);
            clients_[c]->probe_now();
            sched_.schedule_in(config_.scan_dwell,
                               [this, c, radio, current] {
                                 medium_.set_radio_channel(radio, current);
                                 client_retuning_[c] = false;
                               },
                               sim::EventCategory::kChannel);
          }
        }
        scan_timers_[c]->start(config_.scan_period);
      },
          sim::EventCategory::kChannel));
      // Stagger scans so clients do not hop in lockstep.
      scan_timers_.back()->start(config_.scan_period +
                                 Time::ms(static_cast<std::int64_t>(c) * 37));
    }

    channel_follow_timer_ = std::make_unique<sim::Timer>(
        sched_,
        [this] {
      for (std::size_t c = 0; c < clients_.size(); ++c) {
        if (client_retuning_[c]) continue;
        const int serving = serving_ap(static_cast<int>(c));
        if (serving < 0) continue;
        const int want = 1 + serving % config_.channel_reuse;
        const mac::RadioId radio = clients_[c]->radio();
        if (medium_.radio_channel(radio) == want) continue;
        // Retune: blackout, then land on the new channel.
        client_retuning_[c] = true;
        medium_.set_radio_channel(radio, mac::Medium::kNoChannel);
        sched_.schedule_in(config_.retune_blackout,
                           [this, c, radio, want] {
                             medium_.set_radio_channel(radio, want);
                             client_retuning_[c] = false;
                           },
                           sim::EventCategory::kChannel);
      }
      channel_follow_timer_->start(Time::ms(1));
    },
        sim::EventCategory::kChannel);
    channel_follow_timer_->start(Time::ms(1));
  }

  // Scripted AP faults (DESIGN.md §7). Events are plain scheduler entries:
  // an empty script list adds nothing to the event stream.
  for (const auto& fs : config_.ap_faults) {
    if (fs.ap < 0 || fs.ap >= num_aps()) continue;
    const int i = fs.ap;
    if (fs.crash_at) {
      sched_.schedule_at(*fs.crash_at, [this, i] { crash_ap(i); },
                         sim::EventCategory::kControl);
    }
    if (fs.restart_at) {
      sched_.schedule_at(*fs.restart_at, [this, i] { restart_ap(i); },
                         sim::EventCategory::kControl);
    }
    if (fs.zombie_at) {
      sched_.schedule_at(*fs.zombie_at,
                         [this, i] { set_ap_backhaul(i, false); },
                         sim::EventCategory::kControl);
    }
    if (fs.zombie_end_at) {
      sched_.schedule_at(*fs.zombie_end_at,
                         [this, i] { set_ap_backhaul(i, true); },
                         sim::EventCategory::kControl);
    }
    for (const auto& [from, until] : fs.partitions) {
      sched_.schedule_at(from, [this, i] { set_ap_backhaul(i, false); },
                         sim::EventCategory::kControl);
      sched_.schedule_at(until, [this, i] { set_ap_backhaul(i, true); },
                         sim::EventCategory::kControl);
    }
  }

  // Scripted controller faults (DESIGN.md §12). Meaningless with a single
  // domain — there is nobody to fail over to — so they are dropped there.
  if (num_domains() > 1) {
    for (const auto& fs : config_.controller_faults) {
      if (fs.domain < 0 || fs.domain >= num_domains()) continue;
      const int d = fs.domain;
      if (fs.crash_at) {
        sched_.schedule_at(*fs.crash_at, [this, d] { crash_controller(d); },
                           sim::EventCategory::kControl);
      }
      if (fs.restart_at) {
        sched_.schedule_at(*fs.restart_at,
                           [this, d] { restart_controller(d); },
                           sim::EventCategory::kControl);
      }
    }
  }
}

void WgttSystem::crash_controller(int d) {
  if (num_domains() <= 1) return;
  auto& ctrl = *controllers_.at(static_cast<std::size_t>(d));
  if (ctrl.crashed()) return;
  // Fail-stop: the process and its backhaul port die together. In-flight
  // messages to it are dropped by the link model, not queued.
  backhaul_.set_node_up(
      net::NodeId::controller(static_cast<std::uint32_t>(d)), false);
  ctrl.set_crashed(true);
  last_controller_fault_ = sched_.now();
}

void WgttSystem::restart_controller(int d) {
  if (num_domains() <= 1) return;
  auto& ctrl = *controllers_.at(static_cast<std::size_t>(d));
  if (!ctrl.crashed()) return;
  backhaul_.set_node_up(
      net::NodeId::controller(static_cast<std::uint32_t>(d)), true);
  // Cold restart: ownership is re-learned from peer gossip; the home APs
  // migrate back via AdoptAp once the peers see the heartbeats again.
  ctrl.set_crashed(false);
  last_controller_fault_ = sched_.now();
}

void WgttSystem::crash_ap(int i) {
  auto& ap = *aps_.at(static_cast<std::size_t>(i));
  if (ap.crashed()) return;
  const mac::RadioId radio = ap.mac().radio();
  // Power loss takes everything at once: the radio off the air, the
  // backhaul port dark, and the process state (modelled inside crash()).
  ap_channel_before_crash_[static_cast<std::size_t>(i)] =
      medium_.radio_channel(radio);
  medium_.set_radio_channel(radio, mac::Medium::kNoChannel);
  backhaul_.set_node_up(net::NodeId::ap(net::ApId{static_cast<std::uint32_t>(i)}),
                        false);
  ap.crash();
}

void WgttSystem::restart_ap(int i) {
  auto& ap = *aps_.at(static_cast<std::size_t>(i));
  if (!ap.crashed()) return;
  const mac::RadioId radio = ap.mac().radio();
  medium_.set_radio_channel(radio,
                            ap_channel_before_crash_[static_cast<std::size_t>(i)]);
  backhaul_.set_node_up(net::NodeId::ap(net::ApId{static_cast<std::uint32_t>(i)}),
                        true);
  // Association state needs no over-the-air handshake: the shared-BSSID
  // replication (§4.3) means the restarted AP re-reads every client's
  // sta_info from the replicated store — register_client state persists in
  // the WgttAp across the crash, only volatile queue state was wiped.
  ap.restart();
}

void WgttSystem::set_ap_backhaul(int i, bool up) {
  backhaul_.set_node_up(net::NodeId::ap(net::ApId{static_cast<std::uint32_t>(i)}),
                        up);
}

core::Controller& WgttSystem::route_controller(int client) {
  const auto c = static_cast<std::size_t>(client);
  int d = c < owner_of_.size() ? owner_of_[c] : 0;
  if (d < 0 || d >= num_domains() ||
      controllers_[static_cast<std::size_t>(d)]->crashed()) {
    // Owner down (or unknown): hand to the lowest-index alive controller.
    // It forwards to — or stands in for — whoever adopts the client; the
    // adopter re-announces itself through on_ownership_changed.
    for (int i = 0; i < num_domains(); ++i) {
      if (!controllers_[static_cast<std::size_t>(i)]->crashed()) {
        d = i;
        break;
      }
    }
  }
  return *controllers_.at(static_cast<std::size_t>(std::max(d, 0)));
}

const core::Controller& WgttSystem::route_controller(int client) const {
  return const_cast<WgttSystem*>(this)->route_controller(client);
}

const core::Controller& WgttSystem::ap_controller(std::size_t a) const {
  const std::uint32_t d = aps_[a]->controller_node().index;
  if (d < controllers_.size()) return *controllers_[d];
  return *controllers_.front();
}

void WgttSystem::server_send(net::Packet packet) {
  sched_.schedule_in(config_.server_latency,
                     [this, p = std::move(packet)] {
                       route_controller(static_cast<int>(net::index_of(p.client)))
                           .send_downlink(p);
                     },
                     sim::EventCategory::kBackhaul);
}

int WgttSystem::serving_ap(int client) const {
  const auto ap = route_controller(client).serving_ap(
      net::ClientId{static_cast<std::uint32_t>(client)});
  return ap ? static_cast<int>(net::index_of(*ap)) : -1;
}

InvariantReport WgttSystem::check_invariants(Time stall_bound,
                                             Time serving_grace) const {
  InvariantReport report;
  const Time now = sched_.now();
  // An AP is `settled` when its serving flags are trustworthy evidence:
  // Alive and not readmitted within the grace period. A Dead or zombie AP
  // legitimately holds stale serving state until its quench lands; judging
  // it would turn every mid-failover snapshot into a false positive.
  const auto settled = [&](std::size_t a) {
    if (aps_[a]->crashed()) return false;
    // Judge by the controller currently homing the AP (AdoptAp re-homing
    // included); an AP whose controller is down holds legitimately stale
    // serving state until a survivor adopts and re-drives it.
    const core::Controller& cc = ap_controller(a);
    if (cc.crashed()) return false;
    const auto h = cc.ap_health(net::ApId{static_cast<std::uint32_t>(a)});
    return h.state == core::Controller::ApLiveness::kAlive &&
           now - h.since > serving_grace;
  };
  // Serving-count aggregation, inverted: instead of probing every AP per
  // client (A x C map lookups), walk each settled AP's (short) serving list
  // once. Integer sums are order-free, so the counts are identical.
  std::vector<char> settled_ap(aps_.size(), 0);
  for (std::size_t a = 0; a < aps_.size(); ++a) {
    settled_ap[a] = settled(a) ? 1 : 0;
  }
  std::vector<int> serving_count(clients_.size(), 0);
  for (std::size_t a = 0; a < aps_.size(); ++a) {
    if (!settled_ap[a]) continue;
    for (const net::ClientId cid : aps_[a]->serving_clients()) {
      const std::size_t c = net::index_of(cid);
      if (c < serving_count.size()) ++serving_count[c];
    }
  }
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    const net::ClientId cid{static_cast<std::uint32_t>(c)};
    // The controller whose view of this client we judge: the one the
    // server currently routes through (the owner, modulo failover).
    const core::Controller& ctrl = route_controller(static_cast<int>(c));

    // Every initiated switch completes or is superseded: an outstanding
    // switch older than the stall bound means the retransmit chain wedged.
    if (const auto since = ctrl.pending_switch_since(cid)) {
      if (now - *since > stall_bound) {
        ++report.stalled_switches;
        report.violations.push_back(
            "client " + std::to_string(c) + ": switch pending for " +
            std::to_string((now - *since).to_millis()) + " ms");
      }
    }

    // At most one serving AP per client after quiesce. During a switch the
    // old AP legitimately keeps draining its hardware queue for a few ms
    // (the paper accepts ~6 ms of residual transmissions), so only judge
    // clients with no switch in flight and a completed switch at least
    // `serving_grace` ago.
    const bool quiesced =
        !ctrl.pending_switch_since(cid).has_value() &&
        !ctrl.handover_pending(cid) &&
        now - ctrl.last_switch_completed(cid) > serving_grace;
    if (quiesced) {
      if (serving_count[c] > 1) {
        ++report.duplicate_serving;
        report.violations.push_back("client " + std::to_string(c) + ": " +
                                    std::to_string(serving_count[c]) +
                                    " APs serving after quiesce");
      }
      // Controller and AP layer must agree on who is serving.
      const int ctrl_view = serving_ap(static_cast<int>(c));
      if (ctrl_view >= 0 && settled_ap[static_cast<std::size_t>(ctrl_view)] &&
          !aps_[static_cast<std::size_t>(ctrl_view)]->serving(cid)) {
        ++report.serving_disagreements;
        report.violations.push_back(
            "client " + std::to_string(c) + ": controller says AP " +
            std::to_string(ctrl_view) + " but that AP is not serving");
      }
    }

    // A client must not stay routed through an AP the controller itself
    // declared Dead: forced failover (or the degraded-mode unserve) bounds
    // the stall under single-AP failure.
    const int ctrl_view = serving_ap(static_cast<int>(c));
    if (ctrl_view >= 0) {
      const auto h = ap_controller(static_cast<std::size_t>(ctrl_view))
                         .ap_health(
          net::ApId{static_cast<std::uint32_t>(ctrl_view)});
      if (h.state == core::Controller::ApLiveness::kDead &&
          now - h.since > stall_bound) {
        ++report.dead_serving;
        report.violations.push_back(
            "client " + std::to_string(c) + ": still routed through Dead AP " +
            std::to_string(ctrl_view) + " after " +
            std::to_string((now - h.since).to_millis()) + " ms");
      }
    }
  }

  // No cyclic-queue index regression anywhere: applying a start must never
  // rewind an already-serving AP's drain pointer.
  for (const auto& ap : aps_) {
    report.index_regressions += ap->stats().index_regressions;
  }
  if (report.index_regressions > 0) {
    report.violations.push_back(
        std::to_string(report.index_regressions) +
        " cyclic-queue index regression(s) across the AP set");
  }

  // A crashed AP delivers nothing: its MAC-level delivered count must still
  // equal the snapshot taken at the crash instant.
  for (std::size_t a = 0; a < aps_.size(); ++a) {
    if (!aps_[a]->crashed()) continue;
    const auto delivered = aps_[a]->mac().total_stats().mpdus_delivered;
    if (delivered != aps_[a]->delivered_at_crash()) {
      ++report.dead_ap_deliveries;
      report.violations.push_back(
          "AP " + std::to_string(a) + ": delivered " +
          std::to_string(delivered - aps_[a]->delivered_at_crash()) +
          " MPDU(s) while crashed");
    }
  }

  // Multi-domain ownership rules (DESIGN.md §12): once the system has had
  // a stall bound to settle after the last controller fault, every client
  // is owned by exactly one non-crashed controller — unless a handover or
  // transfer-landing switch is in flight, which legitimately overlaps
  // (source keeps ownership until the ack) or gaps (never) the sets.
  bool domains_settled =
      !last_controller_fault_ || now - *last_controller_fault_ > stall_bound;
  // Peer-liveness churn counts too: under a lossy inter-controller link a
  // controller can falsely declare a live peer dead, adopt its clients, and
  // heal via gossip once the heartbeats recover. That dual-ownership window
  // is failover in flight, not a violation — exempt it the same way as a
  // scripted crash, keyed off each controller's own transition clock.
  for (const auto& ctrl : controllers_) {
    const auto t = ctrl->last_peer_transition();
    if (t && now - *t <= stall_bound) domains_settled = false;
  }
  if (num_domains() > 1 && domains_settled) {
    for (std::size_t c = 0; c < clients_.size(); ++c) {
      const net::ClientId cid{static_cast<std::uint32_t>(c)};
      int owners = 0;
      bool in_flight = false;
      bool any_alive = false;
      for (const auto& ctrl : controllers_) {
        if (ctrl->crashed()) continue;
        any_alive = true;
        if (ctrl->owns_client(cid)) ++owners;
        if (ctrl->handover_pending(cid) ||
            ctrl->pending_switch_since(cid).has_value()) {
          in_flight = true;
        }
      }
      if (!any_alive || in_flight) continue;
      if (owners > 1) {
        ++report.ownership_violations;
        report.violations.push_back(
            "client " + std::to_string(c) + ": owned by " +
            std::to_string(owners) + " domains with no handover in flight");
      } else if (owners == 0) {
        ++report.orphaned_clients;
        report.violations.push_back(
            "client " + std::to_string(c) +
            ": no surviving domain owns it after failover settled");
      }
    }
  }
  return report;
}

channel::CsiMeasurement WgttSystem::fallback_csi() const {
  // Channel between two nodes we do not model (AP-AP, client-client):
  // weak flat channel so decode draws almost always fail.
  channel::CsiMeasurement m;
  m.when = sched_.now();
  m.subcarrier_snr_db.fill(0.0);
  m.rssi_dbm = -94.0;
  m.mean_snr_db = 0.0;
  return m;
}

int WgttSystem::nearest_ap(int client) const {
  const channel::Vec2 pos = geometry_.client_position(client, sched_.now());
  // Same argmin-|dx| equivalence as the power oracle: the index answer is
  // byte-identical to the brute scan whenever it is available.
  if (const int best = spatial_index_.nearest(pos.x); best >= 0) return best;
  int best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (int i = 0; i < geometry_.num_aps(); ++i) {
    const double d = channel::distance(pos, geometry_.ap_position(i));
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

int WgttSystem::optimal_ap(int client, Time now) const {
  if (spatial_index_.empty()) return geometry_.optimal_ap(client, now);
  const channel::Vec2 pos = geometry_.client_position(client, now);
  spatial_scratch_.clear();
  spatial_index_.neighbors(pos.x, config_.medium.sense_range_m + kReachMarginM,
                           spatial_scratch_);
  // An AP outside sense range cannot be heard at all, so it can never be
  // the accuracy metric's ground-truth choice; when the whole array is out
  // of range the nearest AP is the degenerate answer.
  if (spatial_scratch_.empty()) return spatial_index_.nearest(pos.x);
  int best = spatial_scratch_.front();
  double best_esnr = -std::numeric_limits<double>::infinity();
  for (const int ap : spatial_scratch_) {
    const double e = geometry_.esnr_db(ap, client, now);
    if (e > best_esnr) {
      best_esnr = e;
      best = ap;
    }
  }
  return best;
}

channel::CsiMeasurement WgttSystem::sample_for_ap(int ap, mac::RadioId peer) {
  auto it = client_idx_of_radio_.find(peer);
  if (it == client_idx_of_radio_.end()) return fallback_csi();
  const int c = it->second;
  return geometry_.link(ap, c).measure(geometry_.client_position(c, sched_.now()),
                                       sched_.now());
}

channel::CsiMeasurement WgttSystem::sample_for_client(int client,
                                                      mac::RadioId peer) {
  int ap = -1;
  if (peer == mac::kBssidWgtt) {
    // Rate-control query against "the AP": approximate with the nearest.
    ap = nearest_ap(client);
  } else {
    auto it = ap_idx_of_radio_.find(peer);
    if (it == ap_idx_of_radio_.end()) return fallback_csi();
    ap = it->second;
  }
  return geometry_.link(ap, client)
      .measure(geometry_.client_position(client, sched_.now()), sched_.now());
}

}  // namespace wgtt::scenario
