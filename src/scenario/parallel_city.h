// City-scale scenario wired for the parallel engine (DESIGN.md §11).
//
// The city is a set of RF-isolated corridor deployments (distinct streets:
// each has its own AP array, controller shard, backhaul and clients, and
// the streets are farther apart than twice the carrier-sense range, so no
// MAC-layer interaction between them is physically possible) plus one
// traffic hub modelling the server side: per-client UDP sources and sinks
// behind the operator's wire. Domain 0 is the hub; domain 1+c is corridor
// c. The only cross-domain interaction is the server wire — downlink
// packets hub -> corridor controller, de-duplicated uplink packets
// corridor -> hub — which has a fixed minimum latency, and that latency is
// exactly the ParallelEngine lookahead.
//
// The corridor partition is derived from the global road map through
// core::SpatialIndex::segment_of: corridors are laid out along one global
// road axis with one index cell per corridor pitch, every AP's global
// coordinate maps to its corridor's segment, and each client is assigned
// to the domain segment_of(its start position) returns. The builder
// asserts the mapping is consistent, so the domain graph provably follows
// the road-segment structure rather than an ad-hoc list.
//
// `workers` is a wall-clock knob only: the domain graph is fixed by
// (corridors, geometry), and runs are byte-identical for every worker
// count — tests/parallel_test.cc sweeps 20 seeds x {1, 2, 4} workers and
// compares whole wgtt.metrics.v1 snapshots.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "util/units.h"

namespace wgtt::scenario {

struct ParallelCityConfig {
  /// Corridor (domain) count — fixed by the scenario, NOT by --parallel-
  /// domains. Changing it changes the city; changing `workers` never
  /// changes anything but wall-clock time.
  int corridors = 4;
  int aps_per_corridor = 8;
  int clients_per_corridor = 2;
  double mph = 15.0;
  double udp_rate_mbps = 4.0;
  std::uint64_t seed = 1;
  /// Per-client drive distance; also derives the horizon (span / speed).
  double drive_span_m = 45.0;
  /// Street-to-street spacing beyond the corridor's own extent. Must stay
  /// well above twice the carrier-sense range (120 m) so corridors are
  /// RF-isolated — the builder enforces it.
  double corridor_gap_m = 400.0;
  /// One-way hub <-> corridor wire latency = the engine lookahead.
  Time wire_latency = Time::ms(1);
  /// false: downlink UDP CBR per client (hub -> corridors). true: uplink
  /// CBR (corridor clients -> hub sinks) — the direction that exercises
  /// the corridor -> hub mailboxes with data traffic.
  bool uplink = false;
  /// Controller domains per corridor (DESIGN.md §12). 1 (the default)
  /// keeps the legacy single controller per corridor; N > 1 splits each
  /// corridor's AP stretch into N ControllerDomains with inter-domain
  /// handover — the §12 layer running *inside* a §11 engine domain, which
  /// is how the two "domain" notions compose: engine domains partition
  /// the event space, controller domains partition ownership.
  int domains_per_corridor = 1;
  /// Worker threads for the engine (clamped to 1 + corridors).
  int workers = 1;
  /// Horizon override; zero derives drive_span_m / speed.
  Time horizon = Time::zero();

  /// Collect a merged wgtt.metrics.v1 snapshot (per-corridor registries
  /// folded in ascending domain order, plus the deterministic parallel.*
  /// counters).
  bool collect_metrics = false;
  /// Wall-clock gauges (events/sec, threads used) — off by default, the
  /// record_perf rule: they differ run to run, so they never enter a
  /// snapshot that byte-identity tests compare.
  bool record_perf = false;
  /// Attach one sim::EventProfiler per domain and flush the merged
  /// per-category breakdown (plus sim.profile.threads_used) — wall-clock,
  /// same rule as record_perf.
  bool profile = false;
};

struct ParallelCityResult {
  /// In-array goodput per client, corridor-major order.
  std::vector<double> client_mbps;
  double mean_mbps = 0.0;
  std::uint64_t switches = 0;
  std::size_t invariant_violations = 0;
  std::uint64_t lookahead_violations = 0;
  std::uint64_t events_executed = 0;   // all domains
  std::uint64_t messages = 0;          // cross-domain deliveries
  std::uint64_t rounds = 0;
  int workers_used = 1;
  int domains = 0;
  double wall_s = 0.0;                 // engine run wall time
  double events_per_sec = 0.0;
  std::shared_ptr<obs::MetricsRegistry> metrics;  // when collect_metrics
};

/// Builds the city, runs it to the horizon on `config.workers` workers and
/// tears it down. Deterministic per config (including `workers`).
ParallelCityResult run_parallel_city(const ParallelCityConfig& config);

}  // namespace wgtt::scenario
