#include "scenario/baseline_system.h"

#include <limits>

namespace wgtt::scenario {

BaselineSystem::BaselineSystem(const BaselineSystemConfig& config)
    : config_(config),
      rng_(config.geometry.seed ^ 0xba5e11e0ULL),
      medium_(sched_, config.medium),
      backhaul_(sched_, config.backhaul, Rng{config.geometry.seed ^ 0xbacc}),
      geometry_(config.geometry) {
  router_ = std::make_unique<baseline::Router>(sched_, backhaul_);
  for (int i = 0; i < config_.geometry.num_aps; ++i) {
    const net::ApId ap_id{static_cast<std::uint32_t>(i)};
    auto ap = std::make_unique<baseline::BaselineAp>(
        ap_id, sched_, medium_, backhaul_, rng_.fork(), config_.ap,
        [this, i] { return geometry_.ap_position(i); });
    ap_idx_of_radio_[ap->mac().radio()] = i;
    ap->mac().set_channel_sampler([this, i](mac::RadioId peer) {
      return sample_for_ap(i, peer);
    });
    ap->mac().set_interest_filter([this](mac::RadioId from) {
      return client_idx_of_radio_.contains(from);
    });
    ap->set_ap_directory([this](mac::RadioId r) -> std::optional<net::ApId> {
      auto it = ap_idx_of_radio_.find(r);
      if (it == ap_idx_of_radio_.end()) return std::nullopt;
      return net::ApId{static_cast<std::uint32_t>(it->second)};
    });
    ap->set_uplink_salvaging(config_.vifi_uplink_salvage);
    router_->add_ap(ap_id);
    aps_.push_back(std::move(ap));
  }
  // Same capture-effect oracle as the WGTT system (identical physics).
  medium_.set_power_oracle([this](mac::RadioId tx, channel::Vec2 at) -> double {
    if (geometry_.num_clients() == 0) return -90.0;
    if (auto it = ap_idx_of_radio_.find(tx); it != ap_idx_of_radio_.end()) {
      return geometry_.link(it->second, 0).large_scale_rx_dbm(at);
    }
    if (auto it = client_idx_of_radio_.find(tx); it != client_idx_of_radio_.end()) {
      const channel::Vec2 cpos =
          geometry_.client_position(it->second, sched_.now());
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (int i = 0; i < geometry_.num_aps(); ++i) {
        const double d = channel::distance(at, geometry_.ap_position(i));
        if (d < best_d) {
          best_d = d;
          best = i;
        }
      }
      return geometry_.link(best, it->second).large_scale_rx_dbm(cpos);
    }
    return -90.0;
  });

  router_->on_uplink = [this](const net::Packet& p) {
    if (p.proto == net::Proto::kArp) return;
    if (!on_server_uplink) return;
    sched_.schedule_in(config_.server_latency,
                       [this, p] { on_server_uplink(p); });
  };
}

int BaselineSystem::add_client(const mobility::Trajectory* trajectory) {
  const int idx = geometry_.add_client(trajectory);
  const net::ClientId cid{static_cast<std::uint32_t>(idx)};
  auto client = std::make_unique<baseline::BaselineClient>(
      cid, sched_, medium_, rng_.fork(), config_.client, trajectory);
  client_idx_of_radio_[client->radio()] = idx;
  client->mac().set_channel_sampler([this, idx](mac::RadioId peer) {
    return sample_for_client(idx, peer);
  });
  client->mac().set_interest_filter([this](mac::RadioId from) {
    return ap_idx_of_radio_.contains(from);
  });
  router_->add_client(cid);
  clients_.push_back(std::move(client));
  return idx;
}

void BaselineSystem::start() {
  if (started_) return;
  started_ = true;
  // Enhanced item (3): client auth state is pre-shared with every AP.
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    const net::ClientId cid{static_cast<std::uint32_t>(c)};
    for (auto& ap : aps_) ap->learn_client(cid, clients_[c]->radio());
    clients_[c]->start();
  }
}

void BaselineSystem::server_send(net::Packet packet) {
  sched_.schedule_in(config_.server_latency, [this, p = std::move(packet)] {
    router_->send_downlink(p);
  });
}

int BaselineSystem::serving_ap(int client) const {
  const auto ap = router_->associated_ap(
      net::ClientId{static_cast<std::uint32_t>(client)});
  return ap ? static_cast<int>(net::index_of(*ap)) : -1;
}

channel::CsiMeasurement BaselineSystem::fallback_csi() const {
  channel::CsiMeasurement m;
  m.when = sched_.now();
  m.subcarrier_snr_db.fill(0.0);
  m.rssi_dbm = -94.0;
  m.mean_snr_db = 0.0;
  return m;
}

channel::CsiMeasurement BaselineSystem::sample_for_ap(int ap,
                                                      mac::RadioId peer) {
  auto it = client_idx_of_radio_.find(peer);
  if (it == client_idx_of_radio_.end()) return fallback_csi();
  const int c = it->second;
  return geometry_.link(ap, c).measure(
      geometry_.client_position(c, sched_.now()), sched_.now());
}

channel::CsiMeasurement BaselineSystem::sample_for_client(int client,
                                                          mac::RadioId peer) {
  auto it = ap_idx_of_radio_.find(peer);
  if (it == ap_idx_of_radio_.end()) return fallback_csi();
  return geometry_.link(it->second, client)
      .measure(geometry_.client_position(client, sched_.now()), sched_.now());
}

}  // namespace wgtt::scenario
