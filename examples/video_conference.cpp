// Example: a bidirectional video call from a moving vehicle (paper §5.4).
//
// The mobile client simultaneously uploads its camera stream and downloads
// the remote party's, both as real-time UDP video. Prints the received
// frame rate per second of the drive.
#include <cstdio>

#include "apps/conference.h"
#include "mobility/trajectory.h"
#include "scenario/wgtt_system.h"
#include "util/stats.h"

using namespace wgtt;

int main() {
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 5;
  scenario::WgttSystem system(cfg);

  mobility::LineDrive drive(-15.0, 0.0, mph_to_mps(15.0));
  system.add_client(&drive);
  system.start();

  const auto profile = apps::skype_like();

  apps::ConferenceSource down_src(
      system.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        system.server_send(std::move(p));
      },
      profile, net::ClientId{0}, /*downlink=*/true);
  apps::ConferenceSink down_sink(profile, down_src.packets_per_frame());
  system.client(0).on_downlink = [&](const net::Packet& p) {
    down_sink.on_packet(system.now(), p);
  };

  apps::ConferenceSource up_src(
      system.sched(),
      [&](net::Packet p) { system.client(0).send_uplink(std::move(p)); },
      profile, net::ClientId{0}, /*downlink=*/false);
  apps::ConferenceSink up_sink(profile, up_src.packets_per_frame());
  system.on_server_uplink = [&](const net::Packet& p) {
    up_sink.on_packet(system.now(), p);
  };

  down_src.start();
  up_src.start();

  const Time horizon = Time::seconds(82.5 / mph_to_mps(15.0));
  system.run_until(horizon);

  const auto down_fps = down_sink.fps_samples(horizon);
  const auto up_fps = up_sink.fps_samples(horizon);
  std::printf("=== 30 fps video call during a %.0f s drive at 15 mph ===\n\n",
              horizon.to_seconds());
  std::printf("%6s %14s %14s\n", "t (s)", "downlink fps", "uplink fps");
  for (std::size_t i = 0; i < down_fps.size(); ++i) {
    std::printf("%6zu %14.0f %14.0f\n", i,
                down_fps[i], i < up_fps.size() ? up_fps[i] : 0.0);
  }
  std::printf("\nmedian downlink fps: %.0f (source sends %.0f fps)\n",
              median(down_fps), profile.fps);
  std::printf("paper (Figure 24): ~20 fps at the 85th percentile with the "
              "Skype-like stream.\n");
  return 0;
}
