// Quickstart: one client drives past the eight-AP WGTT array at 15 mph
// receiving a bulk UDP stream; prints the delivered throughput timeline and
// the AP switching behaviour. This is the smallest end-to-end use of the
// public API: build a WgttSystem, attach traffic, run, read stats.
#include <cstdio>
#include <functional>
#include <vector>

#include "mobility/trajectory.h"
#include "scenario/wgtt_system.h"
#include "transport/udp.h"

using namespace wgtt;

int main() {
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 42;

  scenario::WgttSystem system(cfg);

  // Start 20 m before the first AP; drive the full array plus 20 m.
  mobility::LineDrive drive(-20.0, 0.0, mph_to_mps(15.0));
  const int c = system.add_client(&drive);
  system.start();

  // Bulk UDP downlink at 20 Mbit/s from the local server.
  transport::UdpSource source(
      system.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{static_cast<std::uint32_t>(c)};
        system.server_send(std::move(p));
      },
      {.rate_mbps = 20.0, .client = net::ClientId{0}});
  transport::UdpSink sink;
  system.client(c).on_downlink = [&](const net::Packet& p) {
    sink.on_packet(system.now(), p);
  };

  source.start();

  // Record the serving AP per 100 ms bin as the drive unfolds.
  std::vector<int> serving_by_bin;
  std::function<void()> sample_serving = [&] {
    serving_by_bin.push_back(system.serving_ap(c));
    system.sched().schedule_in(Time::ms(100), sample_serving);
  };
  system.sched().schedule_in(Time::ms(100), sample_serving);

  const double span_m = 20.0 + system.geometry().last_ap_x() + 20.0;
  const Time horizon = Time::seconds(span_m / mph_to_mps(15.0));
  std::printf("driving %.0f m at 15 mph (%.1f s simulated)...\n", span_m,
              horizon.to_seconds());
  system.run_until(horizon);

  const auto& ctrl = system.controller().stats();
  std::printf("\n== results ==\n");
  std::printf("UDP delivered: %.2f Mbit/s average (%llu packets, %llu dup)\n",
              sink.throughput().average_mbps(Time::zero(), horizon),
              static_cast<unsigned long long>(sink.packets_received()),
              static_cast<unsigned long long>(sink.duplicates()));
  std::printf("switches: %llu completed / %llu initiated, %llu stop rtx\n",
              static_cast<unsigned long long>(ctrl.switches_completed),
              static_cast<unsigned long long>(ctrl.switches_initiated),
              static_cast<unsigned long long>(ctrl.stop_retransmissions));
  std::printf("CSI reports: %llu, uplink dups dropped: %llu\n",
              static_cast<unsigned long long>(ctrl.csi_reports),
              static_cast<unsigned long long>(ctrl.uplink_duplicates_dropped));

  std::printf("\nthroughput timeline (500 ms bins):\n");
  const auto series = sink.throughput().series();
  double acc = 0.0;
  int n = 0;
  std::size_t bin = 0;
  for (const auto& pt : series) {
    acc += pt.mbps;
    ++bin;
    if (++n == 5) {
      const int serving =
          bin - 1 < serving_by_bin.size() ? serving_by_bin[bin - 1] : -1;
      std::printf("  t=%5.1fs  %6.2f Mbit/s  serving AP %d\n",
                  pt.start.to_seconds(), acc / n, serving);
      acc = 0.0;
      n = 0;
    }
  }
  std::printf("\nswitch log (first 20):\n");
  int shown = 0;
  for (const auto& sw : system.controller().switch_log()) {
    if (++shown > 20) break;
    std::printf("  %7.3fs  AP%u -> AP%u  (%.1f ms protocol time)\n",
                sw.initiated.to_seconds(),
                net::index_of(sw.from), net::index_of(sw.to),
                (sw.completed - sw.initiated).to_millis());
  }
  return 0;
}
