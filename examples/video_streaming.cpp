// Example: HD video streaming to a moving vehicle (the paper's §5.4 online
// video case study).
//
// A 2.5 Mbit/s HD stream is served over TCP from a local server to a client
// driving past the eight-AP array at 15 mph, played through a VLC-like
// player with a 1.5 s pre-buffer. Prints the playback health and the
// per-second buffer state.
#include <cstdio>

#include "apps/video.h"
#include "mobility/trajectory.h"
#include "scenario/wgtt_system.h"
#include "transport/tcp.h"

using namespace wgtt;

int main() {
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 7;
  scenario::WgttSystem system(cfg);

  mobility::LineDrive drive(-15.0, 0.0, mph_to_mps(15.0));
  system.add_client(&drive);
  system.start();

  // Server-side TCP sender streams the video file; client-side receiver
  // feeds the player as bytes arrive in order.
  transport::TcpSender sender(
      system.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        system.server_send(std::move(p));
      },
      {.client = net::ClientId{0}});
  transport::TcpReceiver receiver(
      system.sched(),
      [&](net::Packet p) { system.client(0).send_uplink(std::move(p)); },
      {.client = net::ClientId{0}});
  system.client(0).on_downlink = [&](const net::Packet& p) {
    receiver.on_data_packet(p);
  };
  system.on_server_uplink = [&](const net::Packet& p) {
    sender.on_ack_packet(p);
  };

  apps::VideoPlayer player(system.sched(),
                           {.video_bitrate_mbps = 2.5,
                            .prebuffer = Time::millis(1500.0)});
  receiver.on_delivered = [&](std::uint64_t bytes, Time) {
    player.on_bytes(bytes);
  };

  sender.set_unlimited(true);  // FTP-style: push as fast as TCP allows
  player.start();

  const Time horizon = Time::seconds(82.5 / mph_to_mps(15.0));
  std::printf("streaming HD video during a %.1f s drive at 15 mph...\n\n",
              horizon.to_seconds());
  for (Time t = Time::sec(1); t <= horizon; t += Time::sec(1)) {
    system.run_until(t);
    std::printf("  t=%4.0fs  %-10s  delivered %6.2f MB  serving AP %d\n",
                t.to_seconds(), player.playing() ? "PLAYING" : "buffering",
                static_cast<double>(receiver.bytes_delivered()) / 1e6,
                system.serving_ap(0));
  }
  player.stop();

  const auto r = player.report();
  std::printf("\nplayback report: %d rebuffer events, %.2f s stalled, "
              "rebuffer ratio %.2f\n",
              r.rebuffer_events, r.stalled_total.to_seconds(),
              r.rebuffer_ratio);
  std::printf("(the paper's Table 4: WGTT achieves ratio 0 at all speeds)\n");
  return 0;
}
