// Example: three vehicles sharing the array (paper §5.2.2).
//
// A convoy of three clients drives past at 15 mph, each receiving its own
// bulk UDP stream. Shows per-client throughput, the controller's switching
// activity, and the uplink de-duplication at work.
#include <cstdio>

#include "mobility/trajectory.h"
#include "scenario/wgtt_system.h"
#include "transport/udp.h"

using namespace wgtt;

int main() {
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 11;
  scenario::WgttSystem system(cfg);

  std::vector<std::unique_ptr<mobility::LineDrive>> drives;
  for (int i = 0; i < 3; ++i) {
    drives.push_back(
        std::make_unique<mobility::LineDrive>(-15.0 - 10.0 * i, 0.0,
                                              mph_to_mps(15.0)));
    system.add_client(drives.back().get());
  }
  system.start();

  std::vector<std::unique_ptr<transport::UdpSource>> sources;
  std::vector<transport::UdpSink> sinks(3);
  for (int i = 0; i < 3; ++i) {
    sources.push_back(std::make_unique<transport::UdpSource>(
        system.sched(),
        [&system, i](net::Packet p) {
          p.client = net::ClientId{static_cast<std::uint32_t>(i)};
          system.server_send(std::move(p));
        },
        transport::UdpSource::Config{
            .rate_mbps = 15.0,
            .client = net::ClientId{static_cast<std::uint32_t>(i)}}));
    system.client(i).on_downlink = [&sinks, &system, i](const net::Packet& p) {
      sinks[static_cast<std::size_t>(i)].on_packet(system.now(), p);
    };
    sources.back()->start();
  }

  const Time horizon = Time::seconds((82.5 + 20.0) / mph_to_mps(15.0));
  system.run_until(horizon);

  std::printf("=== three-client convoy at 15 mph (15 Mbit/s offered each) ===\n\n");
  for (int i = 0; i < 3; ++i) {
    const auto& sink = sinks[static_cast<std::size_t>(i)];
    std::printf("client %d: %.2f Mbit/s delivered (%llu packets, %llu dup)\n",
                i, sink.throughput().average_mbps(Time::zero(), horizon),
                static_cast<unsigned long long>(sink.packets_received()),
                static_cast<unsigned long long>(sink.duplicates()));
  }
  const auto& st = system.controller().stats();
  std::printf("\ncontroller: %llu switches, %llu CSI reports, "
              "%llu duplicate uplink copies dropped\n",
              static_cast<unsigned long long>(st.switches_completed),
              static_cast<unsigned long long>(st.csi_reports),
              static_cast<unsigned long long>(st.uplink_duplicates_dropped));
  return 0;
}
