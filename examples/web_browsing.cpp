// Example: loading a web page from a moving vehicle (paper §5.4, Table 5),
// comparing WGTT against the Enhanced 802.11r baseline on the same
// radio world.
#include <cstdio>
#include <memory>

#include "apps/web.h"
#include "mobility/trajectory.h"
#include "scenario/baseline_system.h"
#include "scenario/wgtt_system.h"
#include "transport/tcp.h"

using namespace wgtt;

namespace {

template <typename SystemT>
double load_page(SystemT& system, const Time horizon) {
  apps::WebPageLoad page;  // the 2.1 MB eBay homepage
  transport::TcpSender sender(
      system.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        system.server_send(std::move(p));
      },
      {.client = net::ClientId{0}});
  transport::TcpReceiver receiver(
      system.sched(),
      [&](net::Packet p) { system.client(0).send_uplink(std::move(p)); },
      {.client = net::ClientId{0}});
  receiver.on_delivered = [&](std::uint64_t, Time now) {
    page.on_progress(receiver.bytes_delivered(), now);
  };
  system.client(0).on_downlink = [&](const net::Packet& p) {
    receiver.on_data_packet(p);
  };
  system.on_server_uplink = [&](const net::Packet& p) {
    sender.on_ack_packet(p);
  };
  page.begin(Time::zero());
  sender.send_bytes(page.page_bytes());
  system.run_until(horizon);
  const auto t = page.load_time();
  return t ? t->to_seconds() : -1.0;
}

}  // namespace

int main() {
  const double mph = 15.0;
  const Time horizon = Time::seconds(82.5 / mph_to_mps(mph));

  std::printf("=== loading a 2.1 MB page at %.0f mph ===\n\n", mph);

  {
    scenario::WgttSystemConfig cfg;
    cfg.geometry.seed = 3;
    scenario::WgttSystem system(cfg);
    mobility::LineDrive drive(-15.0, 0.0, mph_to_mps(mph));
    system.add_client(&drive);
    system.start();
    const double t = load_page(system, horizon);
    if (t >= 0) {
      std::printf("WGTT:              page loaded in %.2f s\n", t);
    } else {
      std::printf("WGTT:              page did NOT finish loading\n");
    }
  }
  {
    scenario::BaselineSystemConfig cfg;
    cfg.geometry.seed = 3;
    scenario::BaselineSystem system(cfg);
    mobility::LineDrive drive(-15.0, 0.0, mph_to_mps(mph));
    system.add_client(&drive);
    system.start();
    const double t = load_page(system, horizon);
    if (t >= 0) {
      std::printf("Enhanced 802.11r:  page loaded in %.2f s\n", t);
    } else {
      std::printf("Enhanced 802.11r:  page did NOT finish loading "
                  "(the paper's \"infinity\" row)\n");
    }
  }
  std::printf("\npaper (Table 5): WGTT ~4.3-4.6 s at every speed; the "
              "baseline needs 15-18 s\nat 5-10 mph and never finishes at "
              "15+ mph.\n");
  return 0;
}
