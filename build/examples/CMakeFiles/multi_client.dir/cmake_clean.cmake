file(REMOVE_RECURSE
  "CMakeFiles/multi_client.dir/multi_client.cpp.o"
  "CMakeFiles/multi_client.dir/multi_client.cpp.o.d"
  "multi_client"
  "multi_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
