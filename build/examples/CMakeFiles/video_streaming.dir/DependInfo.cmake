
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/video_streaming.cpp" "examples/CMakeFiles/video_streaming.dir/video_streaming.cpp.o" "gcc" "examples/CMakeFiles/video_streaming.dir/video_streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/wgtt_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wgtt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/wgtt_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/wgtt_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wgtt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ap/CMakeFiles/wgtt_ap.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/wgtt_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/wgtt_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/wgtt_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wgtt_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wgtt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wgtt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/wgtt_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wgtt_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wgtt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
