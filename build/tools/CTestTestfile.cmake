# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(metrics_snapshot_check "/root/repo/build/tools/metrics_check" "/root/repo/build/tools/wgtt-sim")
set_tests_properties(metrics_snapshot_check PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wgtt_sim_unknown_flag_fails "/root/repo/build/tools/wgtt-sim" "--no-such-flag")
set_tests_properties(wgtt_sim_unknown_flag_fails PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wgtt_sim_help_ok "/root/repo/build/tools/wgtt-sim" "--help")
set_tests_properties(wgtt_sim_help_ok PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
