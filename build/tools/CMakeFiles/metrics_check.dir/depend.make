# Empty dependencies file for metrics_check.
# This may be replaced when dependencies are built.
