# Empty compiler generated dependencies file for wgtt_sim_cli.
# This may be replaced when dependencies are built.
