file(REMOVE_RECURSE
  "CMakeFiles/wgtt_sim_cli.dir/wgtt_sim.cc.o"
  "CMakeFiles/wgtt_sim_cli.dir/wgtt_sim.cc.o.d"
  "wgtt-sim"
  "wgtt-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgtt_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
