file(REMOVE_RECURSE
  "CMakeFiles/wgtt_baseline.dir/baseline_ap.cc.o"
  "CMakeFiles/wgtt_baseline.dir/baseline_ap.cc.o.d"
  "CMakeFiles/wgtt_baseline.dir/baseline_client.cc.o"
  "CMakeFiles/wgtt_baseline.dir/baseline_client.cc.o.d"
  "CMakeFiles/wgtt_baseline.dir/router.cc.o"
  "CMakeFiles/wgtt_baseline.dir/router.cc.o.d"
  "libwgtt_baseline.a"
  "libwgtt_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgtt_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
