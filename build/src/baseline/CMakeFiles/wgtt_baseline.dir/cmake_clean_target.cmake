file(REMOVE_RECURSE
  "libwgtt_baseline.a"
)
