# Empty dependencies file for wgtt_baseline.
# This may be replaced when dependencies are built.
