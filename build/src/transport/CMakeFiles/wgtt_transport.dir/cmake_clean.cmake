file(REMOVE_RECURSE
  "CMakeFiles/wgtt_transport.dir/tcp.cc.o"
  "CMakeFiles/wgtt_transport.dir/tcp.cc.o.d"
  "CMakeFiles/wgtt_transport.dir/udp.cc.o"
  "CMakeFiles/wgtt_transport.dir/udp.cc.o.d"
  "libwgtt_transport.a"
  "libwgtt_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgtt_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
