file(REMOVE_RECURSE
  "libwgtt_transport.a"
)
