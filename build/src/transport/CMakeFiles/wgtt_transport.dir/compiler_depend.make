# Empty compiler generated dependencies file for wgtt_transport.
# This may be replaced when dependencies are built.
