file(REMOVE_RECURSE
  "libwgtt_mac.a"
)
