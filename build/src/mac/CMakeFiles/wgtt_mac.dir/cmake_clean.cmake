file(REMOVE_RECURSE
  "CMakeFiles/wgtt_mac.dir/block_ack.cc.o"
  "CMakeFiles/wgtt_mac.dir/block_ack.cc.o.d"
  "CMakeFiles/wgtt_mac.dir/medium.cc.o"
  "CMakeFiles/wgtt_mac.dir/medium.cc.o.d"
  "CMakeFiles/wgtt_mac.dir/wifi_mac.cc.o"
  "CMakeFiles/wgtt_mac.dir/wifi_mac.cc.o.d"
  "libwgtt_mac.a"
  "libwgtt_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgtt_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
