# Empty dependencies file for wgtt_mac.
# This may be replaced when dependencies are built.
