# Empty dependencies file for wgtt_obs.
# This may be replaced when dependencies are built.
