file(REMOVE_RECURSE
  "CMakeFiles/wgtt_obs.dir/metrics.cc.o"
  "CMakeFiles/wgtt_obs.dir/metrics.cc.o.d"
  "libwgtt_obs.a"
  "libwgtt_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgtt_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
