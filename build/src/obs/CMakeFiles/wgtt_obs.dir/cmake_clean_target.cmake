file(REMOVE_RECURSE
  "libwgtt_obs.a"
)
