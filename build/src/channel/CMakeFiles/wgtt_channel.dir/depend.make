# Empty dependencies file for wgtt_channel.
# This may be replaced when dependencies are built.
