file(REMOVE_RECURSE
  "libwgtt_channel.a"
)
