file(REMOVE_RECURSE
  "CMakeFiles/wgtt_channel.dir/antenna.cc.o"
  "CMakeFiles/wgtt_channel.dir/antenna.cc.o.d"
  "CMakeFiles/wgtt_channel.dir/fading.cc.o"
  "CMakeFiles/wgtt_channel.dir/fading.cc.o.d"
  "CMakeFiles/wgtt_channel.dir/link_channel.cc.o"
  "CMakeFiles/wgtt_channel.dir/link_channel.cc.o.d"
  "CMakeFiles/wgtt_channel.dir/pathloss.cc.o"
  "CMakeFiles/wgtt_channel.dir/pathloss.cc.o.d"
  "libwgtt_channel.a"
  "libwgtt_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgtt_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
