
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/antenna.cc" "src/channel/CMakeFiles/wgtt_channel.dir/antenna.cc.o" "gcc" "src/channel/CMakeFiles/wgtt_channel.dir/antenna.cc.o.d"
  "/root/repo/src/channel/fading.cc" "src/channel/CMakeFiles/wgtt_channel.dir/fading.cc.o" "gcc" "src/channel/CMakeFiles/wgtt_channel.dir/fading.cc.o.d"
  "/root/repo/src/channel/link_channel.cc" "src/channel/CMakeFiles/wgtt_channel.dir/link_channel.cc.o" "gcc" "src/channel/CMakeFiles/wgtt_channel.dir/link_channel.cc.o.d"
  "/root/repo/src/channel/pathloss.cc" "src/channel/CMakeFiles/wgtt_channel.dir/pathloss.cc.o" "gcc" "src/channel/CMakeFiles/wgtt_channel.dir/pathloss.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wgtt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
