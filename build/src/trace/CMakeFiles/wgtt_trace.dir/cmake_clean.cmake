file(REMOVE_RECURSE
  "CMakeFiles/wgtt_trace.dir/tracer.cc.o"
  "CMakeFiles/wgtt_trace.dir/tracer.cc.o.d"
  "libwgtt_trace.a"
  "libwgtt_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgtt_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
