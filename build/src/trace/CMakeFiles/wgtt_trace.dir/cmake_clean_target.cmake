file(REMOVE_RECURSE
  "libwgtt_trace.a"
)
