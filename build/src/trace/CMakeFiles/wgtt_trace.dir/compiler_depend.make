# Empty compiler generated dependencies file for wgtt_trace.
# This may be replaced when dependencies are built.
