# Empty compiler generated dependencies file for wgtt_util.
# This may be replaced when dependencies are built.
