file(REMOVE_RECURSE
  "libwgtt_util.a"
)
