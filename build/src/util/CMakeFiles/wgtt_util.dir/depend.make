# Empty dependencies file for wgtt_util.
# This may be replaced when dependencies are built.
