file(REMOVE_RECURSE
  "CMakeFiles/wgtt_util.dir/rng.cc.o"
  "CMakeFiles/wgtt_util.dir/rng.cc.o.d"
  "CMakeFiles/wgtt_util.dir/stats.cc.o"
  "CMakeFiles/wgtt_util.dir/stats.cc.o.d"
  "libwgtt_util.a"
  "libwgtt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgtt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
