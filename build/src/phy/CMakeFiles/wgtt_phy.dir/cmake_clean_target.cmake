file(REMOVE_RECURSE
  "libwgtt_phy.a"
)
