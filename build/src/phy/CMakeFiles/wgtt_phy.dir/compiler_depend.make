# Empty compiler generated dependencies file for wgtt_phy.
# This may be replaced when dependencies are built.
