file(REMOVE_RECURSE
  "CMakeFiles/wgtt_phy.dir/airtime.cc.o"
  "CMakeFiles/wgtt_phy.dir/airtime.cc.o.d"
  "CMakeFiles/wgtt_phy.dir/esnr.cc.o"
  "CMakeFiles/wgtt_phy.dir/esnr.cc.o.d"
  "CMakeFiles/wgtt_phy.dir/mcs.cc.o"
  "CMakeFiles/wgtt_phy.dir/mcs.cc.o.d"
  "CMakeFiles/wgtt_phy.dir/rate_control.cc.o"
  "CMakeFiles/wgtt_phy.dir/rate_control.cc.o.d"
  "libwgtt_phy.a"
  "libwgtt_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgtt_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
