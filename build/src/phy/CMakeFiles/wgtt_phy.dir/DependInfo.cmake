
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/airtime.cc" "src/phy/CMakeFiles/wgtt_phy.dir/airtime.cc.o" "gcc" "src/phy/CMakeFiles/wgtt_phy.dir/airtime.cc.o.d"
  "/root/repo/src/phy/esnr.cc" "src/phy/CMakeFiles/wgtt_phy.dir/esnr.cc.o" "gcc" "src/phy/CMakeFiles/wgtt_phy.dir/esnr.cc.o.d"
  "/root/repo/src/phy/mcs.cc" "src/phy/CMakeFiles/wgtt_phy.dir/mcs.cc.o" "gcc" "src/phy/CMakeFiles/wgtt_phy.dir/mcs.cc.o.d"
  "/root/repo/src/phy/rate_control.cc" "src/phy/CMakeFiles/wgtt_phy.dir/rate_control.cc.o" "gcc" "src/phy/CMakeFiles/wgtt_phy.dir/rate_control.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wgtt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wgtt_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
