
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/abr.cc" "src/apps/CMakeFiles/wgtt_apps.dir/abr.cc.o" "gcc" "src/apps/CMakeFiles/wgtt_apps.dir/abr.cc.o.d"
  "/root/repo/src/apps/conference.cc" "src/apps/CMakeFiles/wgtt_apps.dir/conference.cc.o" "gcc" "src/apps/CMakeFiles/wgtt_apps.dir/conference.cc.o.d"
  "/root/repo/src/apps/video.cc" "src/apps/CMakeFiles/wgtt_apps.dir/video.cc.o" "gcc" "src/apps/CMakeFiles/wgtt_apps.dir/video.cc.o.d"
  "/root/repo/src/apps/web.cc" "src/apps/CMakeFiles/wgtt_apps.dir/web.cc.o" "gcc" "src/apps/CMakeFiles/wgtt_apps.dir/web.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wgtt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wgtt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wgtt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/wgtt_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wgtt_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/wgtt_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
