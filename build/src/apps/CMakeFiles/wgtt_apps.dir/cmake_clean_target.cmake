file(REMOVE_RECURSE
  "libwgtt_apps.a"
)
