file(REMOVE_RECURSE
  "CMakeFiles/wgtt_apps.dir/abr.cc.o"
  "CMakeFiles/wgtt_apps.dir/abr.cc.o.d"
  "CMakeFiles/wgtt_apps.dir/conference.cc.o"
  "CMakeFiles/wgtt_apps.dir/conference.cc.o.d"
  "CMakeFiles/wgtt_apps.dir/video.cc.o"
  "CMakeFiles/wgtt_apps.dir/video.cc.o.d"
  "CMakeFiles/wgtt_apps.dir/web.cc.o"
  "CMakeFiles/wgtt_apps.dir/web.cc.o.d"
  "libwgtt_apps.a"
  "libwgtt_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgtt_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
