# Empty dependencies file for wgtt_apps.
# This may be replaced when dependencies are built.
