file(REMOVE_RECURSE
  "libwgtt_core.a"
)
