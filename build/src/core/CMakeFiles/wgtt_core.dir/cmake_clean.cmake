file(REMOVE_RECURSE
  "CMakeFiles/wgtt_core.dir/controller.cc.o"
  "CMakeFiles/wgtt_core.dir/controller.cc.o.d"
  "CMakeFiles/wgtt_core.dir/esnr_tracker.cc.o"
  "CMakeFiles/wgtt_core.dir/esnr_tracker.cc.o.d"
  "CMakeFiles/wgtt_core.dir/wgtt_client.cc.o"
  "CMakeFiles/wgtt_core.dir/wgtt_client.cc.o.d"
  "libwgtt_core.a"
  "libwgtt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgtt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
