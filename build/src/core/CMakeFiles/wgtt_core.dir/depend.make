# Empty dependencies file for wgtt_core.
# This may be replaced when dependencies are built.
