file(REMOVE_RECURSE
  "CMakeFiles/wgtt_scenario.dir/baseline_system.cc.o"
  "CMakeFiles/wgtt_scenario.dir/baseline_system.cc.o.d"
  "CMakeFiles/wgtt_scenario.dir/testbed.cc.o"
  "CMakeFiles/wgtt_scenario.dir/testbed.cc.o.d"
  "CMakeFiles/wgtt_scenario.dir/wgtt_system.cc.o"
  "CMakeFiles/wgtt_scenario.dir/wgtt_system.cc.o.d"
  "libwgtt_scenario.a"
  "libwgtt_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgtt_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
