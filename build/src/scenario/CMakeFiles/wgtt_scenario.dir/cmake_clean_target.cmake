file(REMOVE_RECURSE
  "libwgtt_scenario.a"
)
