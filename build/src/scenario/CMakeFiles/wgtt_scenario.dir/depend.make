# Empty dependencies file for wgtt_scenario.
# This may be replaced when dependencies are built.
