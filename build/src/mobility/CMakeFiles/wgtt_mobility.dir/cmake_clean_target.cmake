file(REMOVE_RECURSE
  "libwgtt_mobility.a"
)
