# Empty dependencies file for wgtt_mobility.
# This may be replaced when dependencies are built.
