file(REMOVE_RECURSE
  "CMakeFiles/wgtt_mobility.dir/trajectory.cc.o"
  "CMakeFiles/wgtt_mobility.dir/trajectory.cc.o.d"
  "libwgtt_mobility.a"
  "libwgtt_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgtt_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
