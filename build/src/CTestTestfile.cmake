# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("obs")
subdirs("sim")
subdirs("channel")
subdirs("phy")
subdirs("net")
subdirs("mac")
subdirs("ap")
subdirs("mobility")
subdirs("transport")
subdirs("core")
subdirs("baseline")
subdirs("apps")
subdirs("scenario")
subdirs("trace")
