# Empty dependencies file for wgtt_ap.
# This may be replaced when dependencies are built.
