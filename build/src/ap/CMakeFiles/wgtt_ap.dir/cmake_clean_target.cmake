file(REMOVE_RECURSE
  "libwgtt_ap.a"
)
