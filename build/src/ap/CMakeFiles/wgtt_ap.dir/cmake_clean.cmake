file(REMOVE_RECURSE
  "CMakeFiles/wgtt_ap.dir/cyclic_queue.cc.o"
  "CMakeFiles/wgtt_ap.dir/cyclic_queue.cc.o.d"
  "CMakeFiles/wgtt_ap.dir/wgtt_ap.cc.o"
  "CMakeFiles/wgtt_ap.dir/wgtt_ap.cc.o.d"
  "libwgtt_ap.a"
  "libwgtt_ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgtt_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
