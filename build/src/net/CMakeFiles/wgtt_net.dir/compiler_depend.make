# Empty compiler generated dependencies file for wgtt_net.
# This may be replaced when dependencies are built.
