file(REMOVE_RECURSE
  "CMakeFiles/wgtt_net.dir/backhaul.cc.o"
  "CMakeFiles/wgtt_net.dir/backhaul.cc.o.d"
  "CMakeFiles/wgtt_net.dir/packet.cc.o"
  "CMakeFiles/wgtt_net.dir/packet.cc.o.d"
  "libwgtt_net.a"
  "libwgtt_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgtt_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
