file(REMOVE_RECURSE
  "libwgtt_net.a"
)
