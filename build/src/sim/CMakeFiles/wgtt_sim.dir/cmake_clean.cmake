file(REMOVE_RECURSE
  "CMakeFiles/wgtt_sim.dir/scheduler.cc.o"
  "CMakeFiles/wgtt_sim.dir/scheduler.cc.o.d"
  "libwgtt_sim.a"
  "libwgtt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgtt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
