file(REMOVE_RECURSE
  "libwgtt_sim.a"
)
