# Empty compiler generated dependencies file for wgtt_sim.
# This may be replaced when dependencies are built.
