file(REMOVE_RECURSE
  "CMakeFiles/abr_test.dir/abr_test.cc.o"
  "CMakeFiles/abr_test.dir/abr_test.cc.o.d"
  "abr_test"
  "abr_test.pdb"
  "abr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
