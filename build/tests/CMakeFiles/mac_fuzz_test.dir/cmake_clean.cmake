file(REMOVE_RECURSE
  "CMakeFiles/mac_fuzz_test.dir/mac_fuzz_test.cc.o"
  "CMakeFiles/mac_fuzz_test.dir/mac_fuzz_test.cc.o.d"
  "mac_fuzz_test"
  "mac_fuzz_test.pdb"
  "mac_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
