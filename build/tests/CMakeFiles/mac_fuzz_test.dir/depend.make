# Empty dependencies file for mac_fuzz_test.
# This may be replaced when dependencies are built.
