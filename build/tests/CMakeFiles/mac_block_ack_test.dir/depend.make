# Empty dependencies file for mac_block_ack_test.
# This may be replaced when dependencies are built.
