file(REMOVE_RECURSE
  "CMakeFiles/mac_block_ack_test.dir/mac_block_ack_test.cc.o"
  "CMakeFiles/mac_block_ack_test.dir/mac_block_ack_test.cc.o.d"
  "mac_block_ack_test"
  "mac_block_ack_test.pdb"
  "mac_block_ack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_block_ack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
