file(REMOVE_RECURSE
  "CMakeFiles/mac_wifi_test.dir/mac_wifi_test.cc.o"
  "CMakeFiles/mac_wifi_test.dir/mac_wifi_test.cc.o.d"
  "mac_wifi_test"
  "mac_wifi_test.pdb"
  "mac_wifi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_wifi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
