# Empty compiler generated dependencies file for mac_wifi_test.
# This may be replaced when dependencies are built.
