file(REMOVE_RECURSE
  "CMakeFiles/ap_test.dir/ap_test.cc.o"
  "CMakeFiles/ap_test.dir/ap_test.cc.o.d"
  "ap_test"
  "ap_test.pdb"
  "ap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
