# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/channel_test[1]_include.cmake")
include("/root/repo/build/tests/phy_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/mac_block_ack_test[1]_include.cmake")
include("/root/repo/build/tests/mac_medium_test[1]_include.cmake")
include("/root/repo/build/tests/mac_wifi_test[1]_include.cmake")
include("/root/repo/build/tests/ap_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/mac_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_property_test[1]_include.cmake")
include("/root/repo/build/tests/abr_test[1]_include.cmake")
