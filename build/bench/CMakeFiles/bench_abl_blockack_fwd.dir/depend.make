# Empty dependencies file for bench_abl_blockack_fwd.
# This may be replaced when dependencies are built.
