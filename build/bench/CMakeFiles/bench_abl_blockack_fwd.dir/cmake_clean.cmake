file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_blockack_fwd.dir/bench_abl_blockack_fwd.cc.o"
  "CMakeFiles/bench_abl_blockack_fwd.dir/bench_abl_blockack_fwd.cc.o.d"
  "bench_abl_blockack_fwd"
  "bench_abl_blockack_fwd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_blockack_fwd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
