# Empty dependencies file for bench_fig04_80211r_failure.
# This may be replaced when dependencies are built.
