# Empty dependencies file for bench_fig20_driving_patterns.
# This may be replaced when dependencies are built.
