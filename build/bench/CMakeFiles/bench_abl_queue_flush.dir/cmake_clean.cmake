file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_queue_flush.dir/bench_abl_queue_flush.cc.o"
  "CMakeFiles/bench_abl_queue_flush.dir/bench_abl_queue_flush.cc.o.d"
  "bench_abl_queue_flush"
  "bench_abl_queue_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_queue_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
