# Empty dependencies file for bench_abl_queue_flush.
# This may be replaced when dependencies are built.
