# Empty dependencies file for bench_stat_confidence.
# This may be replaced when dependencies are built.
