file(REMOVE_RECURSE
  "CMakeFiles/bench_stat_confidence.dir/bench_stat_confidence.cc.o"
  "CMakeFiles/bench_stat_confidence.dir/bench_stat_confidence.cc.o.d"
  "bench_stat_confidence"
  "bench_stat_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stat_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
