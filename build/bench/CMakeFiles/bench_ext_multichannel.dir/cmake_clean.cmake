file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multichannel.dir/bench_ext_multichannel.cc.o"
  "CMakeFiles/bench_ext_multichannel.dir/bench_ext_multichannel.cc.o.d"
  "bench_ext_multichannel"
  "bench_ext_multichannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multichannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
