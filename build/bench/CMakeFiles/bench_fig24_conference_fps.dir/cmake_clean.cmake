file(REMOVE_RECURSE
  "CMakeFiles/bench_fig24_conference_fps.dir/bench_fig24_conference_fps.cc.o"
  "CMakeFiles/bench_fig24_conference_fps.dir/bench_fig24_conference_fps.cc.o.d"
  "bench_fig24_conference_fps"
  "bench_fig24_conference_fps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_conference_fps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
