# Empty compiler generated dependencies file for bench_fig24_conference_fps.
# This may be replaced when dependencies are built.
