file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_hysteresis.dir/bench_fig22_hysteresis.cc.o"
  "CMakeFiles/bench_fig22_hysteresis.dir/bench_fig22_hysteresis.cc.o.d"
  "bench_fig22_hysteresis"
  "bench_fig22_hysteresis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_hysteresis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
