# Empty dependencies file for bench_fig22_hysteresis.
# This may be replaced when dependencies are built.
