file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_large_deployment.dir/bench_ext_large_deployment.cc.o"
  "CMakeFiles/bench_ext_large_deployment.dir/bench_ext_large_deployment.cc.o.d"
  "bench_ext_large_deployment"
  "bench_ext_large_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_large_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
