# Empty dependencies file for bench_ext_large_deployment.
# This may be replaced when dependencies are built.
