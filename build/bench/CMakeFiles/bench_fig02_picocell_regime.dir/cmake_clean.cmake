file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_picocell_regime.dir/bench_fig02_picocell_regime.cc.o"
  "CMakeFiles/bench_fig02_picocell_regime.dir/bench_fig02_picocell_regime.cc.o.d"
  "bench_fig02_picocell_regime"
  "bench_fig02_picocell_regime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_picocell_regime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
