# Empty dependencies file for bench_fig02_picocell_regime.
# This may be replaced when dependencies are built.
