# Empty compiler generated dependencies file for bench_fig10_esnr_heatmap.
# This may be replaced when dependencies are built.
