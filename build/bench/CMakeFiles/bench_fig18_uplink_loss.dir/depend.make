# Empty dependencies file for bench_fig18_uplink_loss.
# This may be replaced when dependencies are built.
