# Empty compiler generated dependencies file for bench_ext_vifi.
# This may be replaced when dependencies are built.
