file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_vifi.dir/bench_ext_vifi.cc.o"
  "CMakeFiles/bench_ext_vifi.dir/bench_ext_vifi.cc.o.d"
  "bench_ext_vifi"
  "bench_ext_vifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_vifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
