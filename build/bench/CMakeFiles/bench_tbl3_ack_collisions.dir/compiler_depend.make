# Empty compiler generated dependencies file for bench_tbl3_ack_collisions.
# This may be replaced when dependencies are built.
