file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl3_ack_collisions.dir/bench_tbl3_ack_collisions.cc.o"
  "CMakeFiles/bench_tbl3_ack_collisions.dir/bench_tbl3_ack_collisions.cc.o.d"
  "bench_tbl3_ack_collisions"
  "bench_tbl3_ack_collisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl3_ack_collisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
