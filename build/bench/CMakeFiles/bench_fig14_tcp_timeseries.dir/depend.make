# Empty dependencies file for bench_fig14_tcp_timeseries.
# This may be replaced when dependencies are built.
