# Empty compiler generated dependencies file for bench_tbl2_switch_accuracy.
# This may be replaced when dependencies are built.
