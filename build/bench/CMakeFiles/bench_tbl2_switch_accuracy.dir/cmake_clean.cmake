file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl2_switch_accuracy.dir/bench_tbl2_switch_accuracy.cc.o"
  "CMakeFiles/bench_tbl2_switch_accuracy.dir/bench_tbl2_switch_accuracy.cc.o.d"
  "bench_tbl2_switch_accuracy"
  "bench_tbl2_switch_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl2_switch_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
