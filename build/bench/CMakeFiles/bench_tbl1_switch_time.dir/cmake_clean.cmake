file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl1_switch_time.dir/bench_tbl1_switch_time.cc.o"
  "CMakeFiles/bench_tbl1_switch_time.dir/bench_tbl1_switch_time.cc.o.d"
  "bench_tbl1_switch_time"
  "bench_tbl1_switch_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl1_switch_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
