# Empty dependencies file for bench_tbl1_switch_time.
# This may be replaced when dependencies are built.
