file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_udp_timeseries.dir/bench_fig15_udp_timeseries.cc.o"
  "CMakeFiles/bench_fig15_udp_timeseries.dir/bench_fig15_udp_timeseries.cc.o.d"
  "bench_fig15_udp_timeseries"
  "bench_fig15_udp_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_udp_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
