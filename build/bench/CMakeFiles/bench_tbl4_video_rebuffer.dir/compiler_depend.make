# Empty compiler generated dependencies file for bench_tbl4_video_rebuffer.
# This may be replaced when dependencies are built.
