file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl4_video_rebuffer.dir/bench_tbl4_video_rebuffer.cc.o"
  "CMakeFiles/bench_tbl4_video_rebuffer.dir/bench_tbl4_video_rebuffer.cc.o.d"
  "bench_tbl4_video_rebuffer"
  "bench_tbl4_video_rebuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl4_video_rebuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
