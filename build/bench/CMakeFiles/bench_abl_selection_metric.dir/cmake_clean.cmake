file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_selection_metric.dir/bench_abl_selection_metric.cc.o"
  "CMakeFiles/bench_abl_selection_metric.dir/bench_abl_selection_metric.cc.o.d"
  "bench_abl_selection_metric"
  "bench_abl_selection_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_selection_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
