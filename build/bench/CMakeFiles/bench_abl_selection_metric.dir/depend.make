# Empty dependencies file for bench_abl_selection_metric.
# This may be replaced when dependencies are built.
