# Empty dependencies file for bench_ext_abr_video.
# This may be replaced when dependencies are built.
