file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_abr_video.dir/bench_ext_abr_video.cc.o"
  "CMakeFiles/bench_ext_abr_video.dir/bench_ext_abr_video.cc.o.d"
  "bench_ext_abr_video"
  "bench_ext_abr_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_abr_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
