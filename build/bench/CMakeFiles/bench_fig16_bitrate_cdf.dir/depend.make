# Empty dependencies file for bench_fig16_bitrate_cdf.
# This may be replaced when dependencies are built.
