# Empty dependencies file for bench_tbl5_web_loading.
# This may be replaced when dependencies are built.
