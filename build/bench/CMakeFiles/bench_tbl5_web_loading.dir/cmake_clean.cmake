file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl5_web_loading.dir/bench_tbl5_web_loading.cc.o"
  "CMakeFiles/bench_tbl5_web_loading.dir/bench_tbl5_web_loading.cc.o.d"
  "bench_tbl5_web_loading"
  "bench_tbl5_web_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl5_web_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
