# Empty compiler generated dependencies file for wgtt_bench_common.
# This may be replaced when dependencies are built.
