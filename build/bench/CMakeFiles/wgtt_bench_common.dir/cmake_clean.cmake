file(REMOVE_RECURSE
  "CMakeFiles/wgtt_bench_common.dir/harness.cc.o"
  "CMakeFiles/wgtt_bench_common.dir/harness.cc.o.d"
  "libwgtt_bench_common.a"
  "libwgtt_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgtt_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
