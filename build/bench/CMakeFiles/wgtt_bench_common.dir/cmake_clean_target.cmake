file(REMOVE_RECURSE
  "libwgtt_bench_common.a"
)
