// Tests for the bench TrialPool: the determinism contract (results and
// merged metrics independent of --jobs), the metrics_path redirect that
// fixes the per-trial snapshot overwrite, and the bench flag parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace wgtt::benchx {
namespace {

/// Small but non-trivial drive: 3 APs, one client at 25 mph, ~4 s of
/// simulated time per trial.
DriveConfig small_config(std::uint64_t seed) {
  DriveConfig cfg;
  cfg.mph = 25.0;
  cfg.udp_rate_mbps = 10.0;
  cfg.seed = seed;
  scenario::GeometryConfig geo;
  geo.num_aps = 3;
  cfg.geometry = geo;
  return cfg;
}

std::vector<DriveResult> run_batch(int jobs, bool with_metrics) {
  TrialPool pool(TrialPool::Options{.jobs = jobs});
  for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    DriveConfig cfg = small_config(seed);
    cfg.collect_metrics = with_metrics;
    pool.submit(cfg);
  }
  return pool.run();
}

TEST(TrialPoolTest, ResultsIdenticalAcrossJobCounts) {
  const auto seq = run_batch(1, /*with_metrics=*/false);
  const auto par = run_batch(8, /*with_metrics=*/false);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const DriveResult& a = seq[i];
    const DriveResult& b = par[i];
    // Bit-exact, not approximate: same trial, same RNG stream, same
    // scheduler, regardless of which worker thread ran it.
    ASSERT_EQ(a.clients.size(), b.clients.size());
    for (std::size_t c = 0; c < a.clients.size(); ++c) {
      EXPECT_EQ(a.clients[c].mbps, b.clients[c].mbps);
      EXPECT_EQ(a.clients[c].accuracy, b.clients[c].accuracy);
      EXPECT_EQ(a.clients[c].bytes, b.clients[c].bytes);
      EXPECT_EQ(a.clients[c].assoc_timeline, b.clients[c].assoc_timeline);
    }
    EXPECT_EQ(a.switches, b.switches);
    EXPECT_EQ(a.switch_protocol_ms, b.switch_protocol_ms);
    EXPECT_EQ(a.retransmissions, b.retransmissions);
    EXPECT_EQ(a.mpdus_delivered, b.mpdus_delivered);
    EXPECT_EQ(a.uplink_dups_dropped, b.uplink_dups_dropped);
    EXPECT_EQ(a.invariant_violations, b.invariant_violations);
  }
}

TEST(TrialPoolTest, MergedMetricsIdenticalAcrossJobCounts) {
  TrialPool seq(TrialPool::Options{.jobs = 1});
  TrialPool par(TrialPool::Options{.jobs = 8});
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    DriveConfig cfg = small_config(seed);
    cfg.collect_metrics = true;
    seq.submit(cfg);
    par.submit(cfg);
  }
  seq.run();
  par.run();
  ASSERT_NE(seq.merged_metrics(), nullptr);
  ASSERT_NE(par.merged_metrics(), nullptr);
  // Byte-identical JSON: merge happens in submission order either way.
  EXPECT_EQ(seq.merged_metrics()->to_json(), par.merged_metrics()->to_json());
}

TEST(TrialPoolTest, MetricsPathIsRedirectedToOneMergedWrite) {
  const std::string path =
      testing::TempDir() + "/trial_pool_metrics_test.json";
  TrialPool pool;
  for (std::uint64_t seed : {31u, 32u}) {
    DriveConfig cfg = small_config(seed);
    cfg.metrics_path = path;  // pre-fix, trial 2 would clobber trial 1
    pool.submit(cfg);
  }
  pool.run();
  ASSERT_NE(pool.merged_metrics(), nullptr);
  // The merged registry holds both trials' counts, and the file holds the
  // merged snapshot, written once after the join.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), pool.merged_metrics()->to_json());
}

TEST(TrialPoolTest, MeanOverSeedsMatchesSequentialHelper) {
  DriveConfig cfg = small_config(1);
  const double seq = mean_mbps_over_seeds(cfg, 3);
  const double par = mean_mbps_over_seeds(cfg, 3, 8);
  EXPECT_EQ(seq, par);
}

TEST(AckTimeoutKnob, ShorterTimeoutTightensSwitchTimeTail) {
  // Satellite for the configurable control retransmission timeout: under
  // control-plane loss every lost stop/start/ack leg costs one timeout
  // round, so an 8 ms timeout must pull the switch-time tail in versus the
  // paper's 30 ms default. Averaged over seeds to wash out which switches
  // the loss happens to hit.
  auto worst_switch_ms = [](Time timeout) {
    double worst = 0.0;
    for (std::uint64_t seed : {21u, 22u, 23u}) {
      DriveConfig cfg;
      cfg.mph = 15.0;
      cfg.udp_rate_mbps = 10.0;
      cfg.seed = seed;
      cfg.control_loss_rate = 0.25;
      cfg.ack_timeout = timeout;
      const DriveResult r = run_drive(cfg);
      for (double ms : r.switch_protocol_ms) worst = std::max(worst, ms);
      EXPECT_EQ(r.invariant_violations, 0u) << "timeout="
                                            << timeout.to_millis() << " ms";
    }
    return worst;
  };
  const double slow_tail = worst_switch_ms(Time::ms(30));
  const double fast_tail = worst_switch_ms(Time::ms(8));
  // At 25% loss some switch lost a leg, so the 30 ms config's tail carries
  // at least one full timeout round...
  EXPECT_GE(slow_tail, 30.0);
  // ...while the 8 ms config re-drives the handshake before a 30 ms round
  // would even have fired once.
  EXPECT_LT(fast_tail, slow_tail);
}

TEST(BenchOptionsTest, ParsesAndStripsFlags) {
  const char* raw[] = {"bench", "--jobs", "4", "--benchmark_format=json",
                       "--smoke", "--jobs=7"};
  std::vector<char*> argv;
  std::vector<std::string> storage(std::begin(raw), std::end(raw));
  for (auto& s : storage) argv.push_back(s.data());
  argv.push_back(nullptr);
  int argc = static_cast<int>(storage.size());

  const BenchOptions opts = parse_bench_options(&argc, argv.data());
  EXPECT_EQ(opts.jobs, 7);  // last flag wins
  EXPECT_TRUE(opts.smoke);
  // Only the google-benchmark flag survives for finish().
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "--benchmark_format=json");
  EXPECT_EQ(argv[2], nullptr);
}

}  // namespace
}  // namespace wgtt::benchx
