// Tests for the Enhanced 802.11r baseline: beacon-driven association, the
// below-threshold time hysteresis, the stock-802.11r slow-decision mode,
// and the distribution router.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/baseline_ap.h"
#include "baseline/baseline_client.h"
#include "baseline/router.h"
#include "mobility/trajectory.h"
#include "scenario/baseline_system.h"
#include "transport/udp.h"

namespace wgtt::baseline {
namespace {

using net::ApId;
using net::ClientId;

// The full BaselineSystem wires geometry + channels; using it keeps these
// tests at the public-API level.
scenario::BaselineSystemConfig test_config(std::uint64_t seed) {
  scenario::BaselineSystemConfig cfg;
  cfg.geometry.seed = seed;
  return cfg;
}

TEST(BaselineClientTest, AssociatesToNearestApWhenParked) {
  scenario::BaselineSystem sys(test_config(3));
  mobility::StaticPosition pos({15.0, 0.0});  // AP2 boresight
  const int c = sys.add_client(&pos);
  sys.start();
  sys.run_until(Time::sec(2));
  EXPECT_EQ(sys.serving_ap(c), 2);
  EXPECT_EQ(sys.client(c).stats().handovers_completed, 1u);
}

TEST(BaselineClientTest, StaysPutWhileRssiAboveThreshold) {
  scenario::BaselineSystem sys(test_config(4));
  mobility::StaticPosition pos({22.5, 0.0});
  const int c = sys.add_client(&pos);
  sys.start();
  sys.run_until(Time::sec(10));
  // A parked client at a boresight never crosses the threshold: exactly the
  // initial association, no ping-pong.
  EXPECT_EQ(sys.client(c).stats().handovers_completed, 1u);
}

TEST(BaselineClientTest, HandsOverWhenDriving) {
  scenario::BaselineSystem sys(test_config(5));
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
  const int c = sys.add_client(&drive);
  sys.start();
  const Time horizon = Time::seconds(70.0 / mph_to_mps(15.0));
  sys.run_until(horizon);
  // Crossing eight cells forces several (but, with 1 s hysteresis, not
  // dozens of) handovers.
  const auto& st = sys.client(c).stats();
  EXPECT_GE(st.handovers_completed, 4u);
  EXPECT_LE(st.handovers_completed, 12u);
}

TEST(BaselineClientTest, StockModeSwitchesFarLessAtSpeed) {
  // The §2 experiment: a 5 s decision history at 20 mph means the client
  // leaves the cell before it ever decides to switch.
  auto cfg = test_config(6);
  cfg.client.below_threshold_persistence = Time::sec(5);  // stock 802.11r
  // Stock clients also react slowly to total beacon loss (background scan
  // intervals are seconds).
  cfg.client.beacon_staleness = Time::sec(3);
  scenario::BaselineSystem sys(cfg);
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(20.0));
  const int c = sys.add_client(&drive);
  sys.start();
  sys.run_until(Time::seconds(70.0 / mph_to_mps(20.0)));
  // Only the initial association (plus at most a beacon-staleness rescue).
  EXPECT_LE(sys.client(c).stats().handovers_completed, 3u);
}

TEST(BaselineClientTest, UplinkRequiresAssociation) {
  scenario::BaselineSystem sys(test_config(7));
  mobility::StaticPosition pos({15.0, 0.0});
  const int c = sys.add_client(&pos);
  sys.start();
  int uplinks = 0;
  sys.on_server_uplink = [&](const net::Packet&) { ++uplinks; };
  // Before any beacons have been processed, uplink is dropped silently.
  net::Packet p = net::make_packet();
  p.proto = net::Proto::kUdp;
  p.payload_bytes = 100;
  sys.client(c).send_uplink(p);
  sys.run_until(Time::ms(1));
  EXPECT_EQ(uplinks, 0);
  // Once associated, uplink flows.
  sys.run_until(Time::sec(2));
  net::Packet q = net::make_packet();
  q.proto = net::Proto::kUdp;
  q.payload_bytes = 100;
  sys.client(c).send_uplink(q);
  sys.run_until(Time::sec(2) + Time::ms(100));
  EXPECT_EQ(uplinks, 1);
}

TEST(RouterTest, RoutesDownlinkToAssociatedApOnly) {
  scenario::BaselineSystem sys(test_config(8));
  mobility::StaticPosition pos({0.0, 0.0});  // AP0
  const int c = sys.add_client(&pos);
  sys.start();
  sys.run_until(Time::sec(2));
  ASSERT_EQ(sys.serving_ap(c), 0);
  int delivered = 0;
  sys.client(c).on_downlink = [&](const net::Packet&) { ++delivered; };
  for (int i = 0; i < 5; ++i) {
    net::Packet p = net::make_packet();
    p.client = ClientId{0};
    p.proto = net::Proto::kUdp;
    p.payload_bytes = 1000;
    p.created = sys.now();
    sys.server_send(std::move(p));
  }
  sys.run_until(Time::sec(2) + Time::ms(200));
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(sys.ap(0).stats().downlink_received, 5u);
  for (int i = 1; i < sys.num_aps(); ++i) {
    EXPECT_EQ(sys.ap(i).stats().downlink_received, 0u) << "AP" << i;
  }
}

TEST(RouterTest, DropsDownlinkForUnassociatedClient) {
  scenario::BaselineSystem sys(test_config(9));
  mobility::StaticPosition pos({0.0, 0.0});
  sys.add_client(&pos);
  // Not started: no association ever happens.
  net::Packet p = net::make_packet();
  p.client = ClientId{0};
  sys.server_send(std::move(p));
  sys.run_until(Time::ms(100));
  EXPECT_EQ(sys.router().stats().downlink_dropped_unassociated, 1u);
}

TEST(RouterTest, AssociationMoveNotifiesOldAp) {
  scenario::BaselineSystem sys(test_config(10));
  mobility::LineDrive drive(0.0, 0.0, mph_to_mps(25.0));
  const int c = sys.add_client(&drive);
  sys.start();
  sys.run_until(Time::sec(4));
  // The client has moved down the road and re-associated at least once; the
  // router saw the moves, and the first AP is no longer "associated".
  EXPECT_GE(sys.router().stats().association_moves, 2u);
  EXPECT_FALSE(sys.ap(0).associated(ClientId{0}));
}

TEST(BaselineEndToEnd, UdpFlowsWhileDriving) {
  scenario::BaselineSystem sys(test_config(11));
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
  const int c = sys.add_client(&drive);
  sys.start();
  transport::UdpSink sink;
  sys.client(c).on_downlink = [&](const net::Packet& p) {
    sink.on_packet(sys.now(), p);
  };
  transport::UdpSource src(
      sys.sched(),
      [&](net::Packet p) {
        p.client = ClientId{0};
        sys.server_send(std::move(p));
      },
      {.rate_mbps = 10.0, .client = ClientId{0}});
  src.start();
  const Time horizon = Time::seconds(70.0 / mph_to_mps(15.0));
  sys.run_until(horizon);
  // The baseline delivers something, but well below the offered rate (it
  // wastes the tail of every cell — the paper's core complaint).
  const double mbps = sink.throughput().average_mbps(Time::zero(), horizon);
  EXPECT_GT(mbps, 0.5);
  EXPECT_LT(mbps, 9.5);
}

TEST(ViFiSalvage, RecoversUplinkLostToTheServingAp) {
  // Same world, uplink UDP, with and without ViFi-style salvaging: salvage
  // must strictly help (more packets reach the server) and the router must
  // de-duplicate the fan-in.
  auto run = [](bool salvage) {
    net::reset_packet_uids();
    auto cfg = test_config(12);
    cfg.vifi_uplink_salvage = salvage;
    scenario::BaselineSystem sys(cfg);
    mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
    const int c = sys.add_client(&drive);
    sys.start();
    int received = 0;
    sys.on_server_uplink = [&](const net::Packet&) { ++received; };
    transport::UdpSource src(
        sys.sched(),
        [&](net::Packet p) { sys.client(c).send_uplink(std::move(p)); },
        {.rate_mbps = 5.0, .client = net::ClientId{0}, .downlink = false});
    src.start();
    sys.run_until(Time::sec(9));
    return std::pair<int, std::uint64_t>(
        received, sys.router().stats().uplink_duplicates_dropped);
  };
  const auto [plain, plain_dups] = run(false);
  const auto [salvaged, salvage_dups] = run(true);
  EXPECT_GT(salvaged, plain);
  EXPECT_EQ(plain_dups, 0u);       // single path: nothing to de-dup
  EXPECT_GT(salvage_dups, 0u);     // fan-in de-duplicated, not delivered twice
}

}  // namespace
}  // namespace wgtt::baseline
