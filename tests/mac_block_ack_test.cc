// Unit tests for sequence arithmetic, block-ACK bitmaps, and the receive
// duplicate filter — the state WGTT shares across APs.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mac/block_ack.h"
#include "util/rng.h"

namespace wgtt::mac {
namespace {

TEST(SeqMathTest, BasicOrdering) {
  EXPECT_TRUE(seq_less(1, 2));
  EXPECT_FALSE(seq_less(2, 1));
  EXPECT_FALSE(seq_less(5, 5));
}

TEST(SeqMathTest, WrapAround) {
  EXPECT_TRUE(seq_less(4090, 5));     // wraps forward
  EXPECT_FALSE(seq_less(5, 4090));
  EXPECT_EQ(seq_sub(5, 4090), 11);
  EXPECT_EQ(seq_add(4090, 11), 5);
  EXPECT_EQ(seq_add(4095, 1), 0);
}

TEST(SeqMathTest, HalfSpaceBoundary) {
  // Differences of exactly half the space are "not less" by convention.
  EXPECT_FALSE(seq_less(0, 2048));
  EXPECT_TRUE(seq_less(0, 2047));
}

TEST(SeqCounterTest, IncrementsAndWraps) {
  SeqCounter c(4094);
  EXPECT_EQ(c.next(), 4094);
  EXPECT_EQ(c.next(), 4095);
  EXPECT_EQ(c.next(), 0);
  EXPECT_EQ(c.peek(), 1);
}

TEST(BaBitmapTest, FromDecoded) {
  std::vector<std::uint16_t> decoded{10, 12, 13};
  const BaBitmap ba = BaBitmap::from_decoded(10, decoded);
  EXPECT_TRUE(ba.acks(10));
  EXPECT_FALSE(ba.acks(11));
  EXPECT_TRUE(ba.acks(12));
  EXPECT_TRUE(ba.acks(13));
  EXPECT_FALSE(ba.acks(14));
  EXPECT_EQ(ba.count(), 3);
}

TEST(BaBitmapTest, WindowBoundary) {
  BaBitmap ba;
  ba.start_seq = 100;
  ba.set(100);
  ba.set(163);      // last in the 64-window
  ba.set(164);      // outside: ignored
  EXPECT_TRUE(ba.acks(100));
  EXPECT_TRUE(ba.acks(163));
  EXPECT_FALSE(ba.acks(164));
  EXPECT_FALSE(ba.acks(99));
  EXPECT_EQ(ba.count(), 2);
}

TEST(BaBitmapTest, WrapsAroundSeqSpace) {
  BaBitmap ba;
  ba.start_seq = 4090;
  ba.set(4095);
  ba.set(3);  // 4090 + 9
  EXPECT_TRUE(ba.acks(4095));
  EXPECT_TRUE(ba.acks(3));
  EXPECT_FALSE(ba.acks(4090));
}

TEST(RxDupFilterTest, FirstIsNew) {
  RxDupFilter f;
  EXPECT_TRUE(f.accept(100));
  EXPECT_FALSE(f.accept(100));
}

TEST(RxDupFilterTest, InOrderStream) {
  RxDupFilter f;
  for (std::uint16_t s = 0; s < 1000; ++s) {
    EXPECT_TRUE(f.accept(s & 0x0fff));
  }
  // Replays within the window are duplicates.
  EXPECT_FALSE(f.accept(999));
  EXPECT_FALSE(f.accept(900));
}

TEST(RxDupFilterTest, OutOfOrderAccepted) {
  RxDupFilter f;
  EXPECT_TRUE(f.accept(10));
  EXPECT_TRUE(f.accept(12));
  EXPECT_TRUE(f.accept(11));   // late but new
  EXPECT_FALSE(f.accept(11));  // now a duplicate
}

TEST(RxDupFilterTest, FarBehindIsStale) {
  RxDupFilter f;
  EXPECT_TRUE(f.accept(1000));
  // 500 behind the newest is outside the 256 window: treated as stale.
  EXPECT_FALSE(f.accept(500));
}

TEST(RxDupFilterTest, LargeJumpClearsHistory) {
  RxDupFilter f;
  EXPECT_TRUE(f.accept(10));
  EXPECT_TRUE(f.accept(10 + 300));  // advance beyond window
  EXPECT_TRUE(f.accept(10 + 299));  // behind newest, inside window, unseen
}

TEST(RxDupFilterTest, WrapsThroughSeqSpace) {
  RxDupFilter f;
  for (int lap = 0; lap < 3; ++lap) {
    for (int s = 0; s < 4096; s += 16) {
      EXPECT_TRUE(f.accept(static_cast<std::uint16_t>(s))) << "lap " << lap;
    }
  }
}

TEST(RxDupFilterTest, Reset) {
  RxDupFilter f;
  EXPECT_TRUE(f.accept(5));
  f.reset();
  EXPECT_TRUE(f.accept(5));
}

// Property test: against a reference model (set of recently seen seqs), the
// filter never delivers a duplicate within the window and always accepts
// genuinely new in-window sequence numbers.
class DupFilterProperty : public ::testing::TestWithParam<int> {};

TEST_P(DupFilterProperty, MatchesReferenceModel) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  RxDupFilter f;
  std::set<int> delivered;  // absolute sequence numbers accepted
  int base = 0;             // absolute position of the stream head
  for (int step = 0; step < 3000; ++step) {
    // Move forward a little, sometimes retransmit an older one.
    int abs_seq;
    if (rng.chance(0.3) && base > 0) {
      abs_seq = base - static_cast<int>(rng.uniform_int(40));  // retransmit
    } else {
      base += static_cast<int>(rng.uniform_int(3));
      abs_seq = base;
    }
    if (abs_seq < 0) abs_seq = 0;
    const bool accepted = f.accept(static_cast<std::uint16_t>(abs_seq & 0x0fff));
    const bool was_new = !delivered.contains(abs_seq);
    if (accepted) {
      // Never deliver something already delivered.
      EXPECT_TRUE(was_new) << "duplicate delivered at step " << step;
      delivered.insert(abs_seq);
    }
    // Note: the filter may *drop* a new-but-stale seq (outside its window);
    // that is allowed — correctness is "no duplicates", completeness is
    // best-effort within the window.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DupFilterProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace wgtt::mac
