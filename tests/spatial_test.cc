// Spatial interest management (DESIGN.md §9): proof that the road-segment
// index is purely an exactness-preserving accelerator, plus the city-scale
// pieces that ride on it (lazy channel matrix, distributed drive pattern).
//
// The load-bearing test is the 20-seed sweep: a full seeded drive with the
// index ON must produce a byte-identical `wgtt.metrics.v1` snapshot — every
// counter, gauge and histogram bucket — to the same drive with the index
// OFF. Any reordered event, extra RNG draw or changed candidate set anywhere
// in the hot path (medium fan-out, CSI sampling, ESNR argmax, downlink
// fan-out, invariant sweep) shows up as a diff here.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/esnr_tracker.h"
#include "mobility/trajectory.h"
#include "net/ids.h"
#include "scenario/testbed.h"
#include "scenario/wgtt_system.h"

namespace wgtt {
namespace {

using benchx::DriveConfig;
using benchx::DriveResult;
using benchx::Pattern;

/// Asserts two runs of the same drive agree on everything observable.
void expect_identical(const DriveResult& plain, const DriveResult& indexed,
                      const std::string& what) {
  EXPECT_EQ(plain.invariant_violations, 0u) << what;
  EXPECT_EQ(indexed.invariant_violations, 0u) << what;
  EXPECT_EQ(plain.switches, indexed.switches) << what;
  ASSERT_EQ(plain.clients.size(), indexed.clients.size()) << what;
  for (std::size_t c = 0; c < plain.clients.size(); ++c) {
    // Exact, not approximate: the same floating-point reductions must have
    // happened in the same order.
    EXPECT_EQ(plain.clients[c].mbps, indexed.clients[c].mbps)
        << what << " client " << c;
    EXPECT_EQ(plain.clients[c].bytes, indexed.clients[c].bytes)
        << what << " client " << c;
    EXPECT_EQ(plain.clients[c].accuracy, indexed.clients[c].accuracy)
        << what << " client " << c;
  }
  ASSERT_NE(plain.metrics, nullptr) << what;
  ASSERT_NE(indexed.metrics, nullptr) << what;
  EXPECT_EQ(plain.metrics->to_json(), indexed.metrics->to_json())
      << what << ": indexed run diverged from the brute-force snapshot";
}

TEST(SpatialEquivalenceTest, TwentySeedDrivesByteIdentical) {
  scenario::GeometryConfig geo;
  geo.num_aps = 4;  // short drive; 20 seeds x 2 runs must stay CI-friendly
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    DriveConfig base;
    base.mph = 25.0;
    base.udp_rate_mbps = 8.0;
    base.seed = seed;
    base.geometry = geo;
    base.collect_metrics = true;

    DriveConfig plain_cfg = base;
    plain_cfg.use_spatial_index = false;
    DriveConfig indexed_cfg = base;
    indexed_cfg.use_spatial_index = true;

    const DriveResult plain = benchx::run_drive(plain_cfg);
    const DriveResult indexed = benchx::run_drive(indexed_cfg);
    expect_identical(plain, indexed, "seed " + std::to_string(seed));
  }
}

TEST(SpatialEquivalenceTest, LargeArrayDistributedDrivesByteIdentical) {
  // The 64-AP end of the equivalence claim, under the city-scale drive
  // pattern: four clients spread along the array, each driving its own
  // 40 m span. At this scale the indexed medium fan-out visits < 1/4 of
  // the radios the brute scan does, so any filter bug would diverge fast.
  scenario::GeometryConfig geo;
  geo.num_aps = 64;
  for (std::uint64_t seed = 3; seed <= 4; ++seed) {
    DriveConfig base;
    base.mph = 25.0;
    base.udp_rate_mbps = 4.0;
    base.seed = seed;
    base.num_clients = 4;
    base.pattern = Pattern::kDistributed;
    base.drive_span_m = 40.0;
    base.geometry = geo;
    base.collect_metrics = true;

    DriveConfig plain_cfg = base;
    plain_cfg.use_spatial_index = false;
    DriveConfig indexed_cfg = base;
    indexed_cfg.use_spatial_index = true;

    const DriveResult plain = benchx::run_drive(plain_cfg);
    const DriveResult indexed = benchx::run_drive(indexed_cfg);
    expect_identical(plain, indexed, "64-AP seed " + std::to_string(seed));
  }
}

TEST(SpatialEquivalenceTest, CandidateSetsMatchBruteForceStepByStep) {
  // Two fully wired systems over the same seed — index on vs off — stepped
  // in lockstep. At every sample instant the controller-visible candidate
  // state (serving AP, fan-out set, selection argmax, optimal-AP ground
  // truth) must agree element for element.
  scenario::WgttSystemConfig on_cfg;
  on_cfg.spatial.use_index = true;
  scenario::WgttSystemConfig off_cfg;
  off_cfg.spatial.use_index = false;

  scenario::WgttSystem on_sys(on_cfg);
  scenario::WgttSystem off_sys(off_cfg);
  EXPECT_EQ(on_sys.spatial_index().num_aps(), on_sys.num_aps());
  EXPECT_TRUE(off_sys.spatial_index().empty());

  mobility::LineDrive car0(-15.0, 0.0, 11.0);
  mobility::LineDrive car1(20.0, 0.0, -8.0);
  for (auto* sys : {&on_sys, &off_sys}) {
    sys->add_client(&car0);
    sys->add_client(&car1);
    sys->start();
  }

  for (Time t = Time::ms(50); t <= Time::sec(3); t += Time::ms(50)) {
    on_sys.run_until(t);
    off_sys.run_until(t);
    for (int c = 0; c < 2; ++c) {
      const net::ClientId id{static_cast<std::uint32_t>(c)};
      EXPECT_EQ(on_sys.serving_ap(c), off_sys.serving_ap(c))
          << "t=" << t.to_millis() << " client " << c;
      EXPECT_EQ(on_sys.optimal_ap(c, t), off_sys.optimal_ap(c, t))
          << "t=" << t.to_millis() << " client " << c;
      EXPECT_EQ(off_sys.optimal_ap(c, t), off_sys.geometry().optimal_ap(c, t));
      EXPECT_EQ(on_sys.controller().tracker().fresh_aps(id, t, Time::ms(200)),
                off_sys.controller().tracker().fresh_aps(id, t, Time::ms(200)))
          << "t=" << t.to_millis() << " client " << c;
      EXPECT_EQ(on_sys.controller().tracker().best_ap(id, t),
                off_sys.controller().tracker().best_ap(id, t))
          << "t=" << t.to_millis() << " client " << c;
    }
  }
  const scenario::InvariantReport on_rep = on_sys.check_invariants();
  const scenario::InvariantReport off_rep = off_sys.check_invariants();
  EXPECT_EQ(on_rep.violations, off_rep.violations);
  EXPECT_TRUE(on_rep.ok());
}

TEST(CityScaleTest, LazyLinksDeterministicAndAccessOrderIndependent) {
  // Lazy links draw each (AP, client) channel from a private RNG seeded by
  // (geometry seed, ap, client): the realization must be a pure function of
  // configuration, never of which link was touched first.
  scenario::GeometryConfig cfg;
  cfg.lazy_links = true;
  cfg.seed = 5;
  mobility::StaticPosition parked({20.0, 0.0});

  scenario::TestbedGeometry forward(cfg);
  scenario::TestbedGeometry backward(cfg);
  forward.add_client(&parked);
  backward.add_client(&parked);
  const Time t = Time::ms(100);
  std::vector<double> fwd;
  for (int ap = 0; ap < forward.num_aps(); ++ap) {
    fwd.push_back(forward.esnr_db(ap, 0, t));
  }
  for (int ap = backward.num_aps() - 1; ap >= 0; --ap) {
    EXPECT_EQ(backward.esnr_db(ap, 0, t), fwd[static_cast<std::size_t>(ap)])
        << "ap " << ap << ": realization depended on access order";
  }
  // And on a re-run with the same config, the realization repeats exactly.
  scenario::TestbedGeometry again(cfg);
  again.add_client(&parked);
  for (int ap = 0; ap < again.num_aps(); ++ap) {
    EXPECT_EQ(again.esnr_db(ap, 0, t), fwd[static_cast<std::size_t>(ap)]);
  }
}

TEST(CityScaleTest, DistributedPatternDrivesClean) {
  // Smoke for the city bench's exact knob combination at a CI-sized scale:
  // distributed clients, lazy links, bounded fallback, spatial index on.
  scenario::GeometryConfig geo;
  geo.num_aps = 16;
  geo.lazy_links = true;
  DriveConfig cfg;
  cfg.mph = 15.0;
  cfg.udp_rate_mbps = 4.0;
  cfg.seed = 11;
  cfg.num_clients = 4;
  cfg.pattern = Pattern::kDistributed;
  cfg.drive_span_m = 40.0;
  cfg.bounded_fallback = true;
  cfg.geometry = geo;
  const DriveResult r = benchx::run_drive(cfg);
  EXPECT_EQ(r.invariant_violations, 0u);
  ASSERT_EQ(r.clients.size(), 4u);
  for (std::size_t c = 0; c < r.clients.size(); ++c) {
    EXPECT_GT(r.clients[c].mbps, 0.0) << "client " << c;
  }
  // kDistributed sets the horizon to drive_span / speed, so every client
  // stays in-array for the whole run.
  EXPECT_NEAR(r.duration_s, 40.0 / (15.0 * 0.44704), 0.5);
}

}  // namespace
}  // namespace wgtt
