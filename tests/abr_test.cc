// Tests for the adaptive-bitrate video player extension.
#include <gtest/gtest.h>

#include "apps/abr.h"
#include "sim/scheduler.h"

namespace wgtt::apps {
namespace {

// Harness: delivers requested bytes at a configurable constant rate.
class FakeOrigin {
 public:
  FakeOrigin(sim::Scheduler& sched, AbrPlayer& player, double rate_mbps)
      : sched_(sched), player_(player), rate_mbps_(rate_mbps) {
    player_.request_bytes = [this](std::uint64_t bytes) { enqueue(bytes); };
  }

  void set_rate(double mbps) { rate_mbps_ = mbps; }

 private:
  void enqueue(std::uint64_t bytes) {
    pending_ += bytes;
    pump();
  }
  void pump() {
    if (pumping_ || pending_ == 0) return;
    pumping_ = true;
    // Deliver in 10 ms slices at the configured rate.
    const auto slice = static_cast<std::uint64_t>(
        std::max(1.0, rate_mbps_ * 1e6 / 8.0 * 0.010));
    sched_.schedule_in(Time::ms(10), [this, slice] {
      const std::uint64_t d = std::min(slice, pending_);
      pending_ -= d;
      delivered_ += d;
      pumping_ = false;
      player_.on_progress(delivered_);
      pump();
    });
  }

  sim::Scheduler& sched_;
  AbrPlayer& player_;
  double rate_mbps_;
  std::uint64_t pending_ = 0;
  std::uint64_t delivered_ = 0;
  bool pumping_ = false;
};

TEST(AbrPlayerTest, ClimbsToTopRungOnFastLink) {
  sim::Scheduler sched;
  AbrPlayer player(sched, {});
  FakeOrigin origin(sched, player, 40.0);  // link >> top rung
  player.start();
  sched.run_until(Time::sec(60));
  const auto r = player.report();
  EXPECT_NEAR(r.rebuffer_ratio, 0.0, 1e-6);
  EXPECT_GT(r.top_rung_fraction, 0.5);
  EXPECT_GT(r.mean_played_mbps, 2.5);  // well above the ladder bottom
  EXPECT_GT(r.segments_fetched, 20);
}

TEST(AbrPlayerTest, StaysLowOnSlowLink) {
  sim::Scheduler sched;
  AbrPlayer player(sched, {});
  FakeOrigin origin(sched, player, 1.0);  // only the bottom rung sustainable
  player.start();
  sched.run_until(Time::sec(60));
  const auto r = player.report();
  EXPECT_LT(r.mean_played_mbps, 1.3);
  EXPECT_LT(r.top_rung_fraction, 0.2);
}

TEST(AbrPlayerTest, AdaptsDownwardWhenLinkDegrades) {
  sim::Scheduler sched;
  AbrPlayer player(sched, {});
  FakeOrigin origin(sched, player, 40.0);
  player.start();
  sched.run_until(Time::sec(30));
  const int rung_fast = player.current_rung();
  origin.set_rate(0.8);
  sched.run_until(Time::sec(90));
  const auto r = player.report();
  EXPECT_GT(rung_fast, 0);
  EXPECT_LT(player.current_rung(), rung_fast);
  EXPECT_GT(r.quality_switches, 0);
}

TEST(AbrPlayerTest, StallsWithoutData) {
  sim::Scheduler sched;
  AbrPlayer player(sched, {});
  // No origin wired beyond the first request sink: nothing ever arrives.
  player.request_bytes = [](std::uint64_t) {};
  player.start();
  sched.run_until(Time::sec(30));
  const auto r = player.report();
  EXPECT_FALSE(player.playing());
  EXPECT_DOUBLE_EQ(r.rebuffer_ratio, 1.0);  // never started = fully stalled
}

TEST(AbrPlayerTest, OneOutstandingFetchAtATime) {
  sim::Scheduler sched;
  AbrPlayer player(sched, {});
  int outstanding = 0;
  int max_outstanding = 0;
  std::uint64_t delivered = 0;
  player.request_bytes = [&](std::uint64_t bytes) {
    ++outstanding;
    max_outstanding = std::max(max_outstanding, outstanding);
    sched.schedule_in(Time::ms(100), [&, bytes] {
      --outstanding;
      delivered += bytes;
      player.on_progress(delivered);
    });
  };
  player.start();
  sched.run_until(Time::sec(20));
  EXPECT_EQ(max_outstanding, 1);
}

}  // namespace
}  // namespace wgtt::apps
