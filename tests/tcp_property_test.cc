// Property tests for the TCP model: under arbitrary loss/reorder/delay
// patterns, the stream must remain correct (in-order, gapless, no phantom
// bytes) and must always recover once the path heals.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "sim/scheduler.h"
#include "transport/tcp.h"
#include "util/rng.h"

namespace wgtt::transport {
namespace {

// A hostile pipe: drops, duplicates, reorders and delays packets randomly.
class HostilePipe {
 public:
  HostilePipe(sim::Scheduler& sched, Rng rng, double loss, double dup,
              double reorder)
      : sched_(sched), rng_(rng), loss_(loss), dup_(dup), reorder_(reorder) {
    TcpSender::Config scfg;
    scfg.max_consecutive_rtos = 100;  // survive hostile episodes
    sender = std::make_unique<TcpSender>(
        sched_, [this](net::Packet p) { to_receiver(std::move(p)); }, scfg);
    receiver = std::make_unique<TcpReceiver>(
        sched_, [this](net::Packet p) { to_sender(std::move(p)); },
        TcpReceiver::Config{});
  }

  void set_hostile(bool v) { hostile_ = v; }

  void to_receiver(net::Packet p) { forward(p, /*to_rx=*/true); }
  void to_sender(net::Packet p) { forward(p, /*to_rx=*/false); }

  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;

 private:
  void forward(net::Packet p, bool to_rx) {
    const double loss = hostile_ ? loss_ : 0.0;
    if (rng_.chance(loss)) return;
    int copies = 1;
    if (hostile_ && rng_.chance(dup_)) copies = 2;
    for (int i = 0; i < copies; ++i) {
      Time delay = Time::ms(10);
      if (hostile_ && rng_.chance(reorder_)) {
        delay += Time::millis(rng_.uniform(0.0, 30.0));
      }
      sched_.schedule_in(delay, [this, p, to_rx] {
        if (to_rx) {
          receiver->on_data_packet(p);
        } else {
          sender->on_ack_packet(p);
        }
      });
    }
  }

  sim::Scheduler& sched_;
  Rng rng_;
  double loss_;
  double dup_;
  double reorder_;
  bool hostile_ = true;
};

class TcpHostileProperty : public ::testing::TestWithParam<int> {};

TEST_P(TcpHostileProperty, StreamIntegrityUnderChaos) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  sim::Scheduler sched;
  Rng rng(seed * 40503 + 5);
  HostilePipe pipe(sched, Rng{seed + 99}, /*loss=*/rng.uniform(0.05, 0.35),
                   /*dup=*/rng.uniform(0.0, 0.2),
                   /*reorder=*/rng.uniform(0.0, 0.5));

  // The receiver's in-order byte stream must advance monotonically and
  // never outrun what the application offered.
  const std::uint64_t kAppBytes = 400'000;
  std::uint64_t last_delivered = 0;
  pipe.receiver->on_delivered = [&](std::uint64_t, Time) {
    const std::uint64_t now_delivered = pipe.receiver->bytes_delivered();
    EXPECT_GE(now_delivered, last_delivered);
    EXPECT_LE(now_delivered, kAppBytes);
    last_delivered = now_delivered;
  };
  pipe.sender->send_bytes(kAppBytes);

  // A hostile phase, then the path heals; the stream must complete.
  sched.run_until(Time::sec(60));
  pipe.set_hostile(false);
  sched.run_until(Time::sec(240));

  EXPECT_TRUE(pipe.sender->alive());
  EXPECT_EQ(pipe.receiver->bytes_delivered(), kAppBytes);
  EXPECT_EQ(pipe.sender->bytes_acked(), kAppBytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpHostileProperty, ::testing::Range(0, 12));

TEST(TcpInvariants, CwndNeverBelowOneSegment) {
  sim::Scheduler sched;
  TcpSender::Config cfg;
  cfg.max_consecutive_rtos = 50;
  // Blackhole everything: RTO after RTO, cwnd must stay >= 1 MSS.
  TcpSender sender(sched, [](net::Packet) {}, cfg);
  sender.set_unlimited(true);
  for (int i = 0; i < 20; ++i) {
    sched.run_until(sched.now() + Time::sec(1));
    EXPECT_GE(sender.cwnd_segments(), 1.0);
  }
}

TEST(TcpInvariants, AckBeyondSndNxtIgnored) {
  // A corrupted/forged ack past everything sent must not teleport the
  // sender forward. (Defensive check; the simulator cannot forge acks, but
  // the state machine should still be safe.)
  sim::Scheduler sched;
  int sent = 0;
  TcpSender sender(sched, [&](net::Packet) { ++sent; }, {});
  sender.send_bytes(5'000);
  sched.run_until(Time::ms(10));
  ASSERT_GT(sent, 0);
  net::Packet forged = net::make_packet();
  forged.proto = net::Proto::kTcp;
  net::TcpFields f;
  f.is_ack = true;
  f.ack = 1'000'000'000;  // far past snd_nxt
  f.ts_echo = sched.now();
  forged.tcp = f;
  sender.on_ack_packet(forged);
  // RFC 9293: acks beyond snd_nxt are ignored outright.
  EXPECT_LT(sender.bytes_acked(), 5'000u);
  sched.run_until(Time::sec(5));
  EXPECT_TRUE(sender.alive());
}

}  // namespace
}  // namespace wgtt::transport
