// Unit tests for the channel substrate: path loss, shadowing field, antenna
// pattern, fading statistics, and the composite LinkChannel.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "channel/antenna.h"
#include "channel/fading.h"
#include "channel/geometry.h"
#include "channel/link_channel.h"
#include "channel/pathloss.h"
#include "util/rng.h"
#include "util/stats.h"

namespace wgtt::channel {
namespace {

TEST(GeometryTest, VectorOps) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, a), 5.0);
  const Vec2 b = a + Vec2{1.0, -1.0};
  EXPECT_EQ(b, (Vec2{4.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{6.0, 8.0}));
}

TEST(GeometryTest, Angles) {
  EXPECT_NEAR(angle_of({1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(angle_of({0.0, 1.0}), M_PI / 2, 1e-12);
  EXPECT_NEAR(angle_between(0.1, -0.1), 0.2, 1e-12);
  // Wraps correctly across +/- pi.
  EXPECT_NEAR(angle_between(M_PI - 0.05, -M_PI + 0.05), 0.1, 1e-12);
  EXPECT_NEAR(deg_to_rad(180.0), M_PI, 1e-12);
  EXPECT_NEAR(rad_to_deg(M_PI / 2), 90.0, 1e-12);
}

TEST(PathLossTest, MonotoneInDistance) {
  LogDistancePathLoss pl(2.9);
  double prev = pl.loss_db(1.0);
  for (double d = 2.0; d < 200.0; d *= 1.5) {
    const double cur = pl.loss_db(d);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(PathLossTest, TenXDistanceCostsTenNdb) {
  LogDistancePathLoss pl(2.9, 40.0);
  EXPECT_NEAR(pl.loss_db(10.0) - pl.loss_db(1.0), 29.0, 1e-9);
  EXPECT_NEAR(pl.loss_db(100.0) - pl.loss_db(10.0), 29.0, 1e-9);
}

TEST(PathLossTest, ClampsBelowOneMetre) {
  LogDistancePathLoss pl(3.0, 40.0);
  EXPECT_DOUBLE_EQ(pl.loss_db(0.01), 40.0);
  EXPECT_THROW(LogDistancePathLoss(-1.0), std::invalid_argument);
}

TEST(ShadowFieldTest, PureAndDeterministic) {
  ShadowField f(4.0, 8.0, 42);
  const Vec2 p{13.7, -2.4};
  const double v1 = f.sample_db(p);
  const double v2 = f.sample_db(p);
  EXPECT_DOUBLE_EQ(v1, v2);  // pure: repeated queries identical
  ShadowField g(4.0, 8.0, 42);
  EXPECT_DOUBLE_EQ(g.sample_db(p), v1);  // same seed, same field
  ShadowField h(4.0, 8.0, 43);
  EXPECT_NE(h.sample_db(p), v1);  // different seed, different field
}

TEST(ShadowFieldTest, ZeroSigmaIsZero) {
  ShadowField f(0.0, 8.0, 1);
  EXPECT_DOUBLE_EQ(f.sample_db({5.0, 5.0}), 0.0);
}

TEST(ShadowFieldTest, MarginalStatistics) {
  ShadowField f(4.0, 8.0, 7);
  RunningStats s;
  // Sample far-apart points so they are nearly independent.
  for (int i = 0; i < 4000; ++i) {
    s.add(f.sample_db({i * 37.0, (i % 13) * 29.0}));
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.3);
  EXPECT_NEAR(s.stddev(), 4.0, 0.4);
}

TEST(ShadowFieldTest, SpatialCorrelation) {
  ShadowField f(4.0, 8.0, 9);
  // Nearby points are similar; distant points are not.
  RunningStats near_diff;
  RunningStats far_diff;
  for (int i = 0; i < 2000; ++i) {
    const Vec2 p{i * 23.0, 0.0};
    near_diff.add(std::fabs(f.sample_db(p) - f.sample_db(p + Vec2{0.5, 0.0})));
    far_diff.add(std::fabs(f.sample_db(p) - f.sample_db(p + Vec2{40.0, 0.0})));
  }
  EXPECT_LT(near_diff.mean(), far_diff.mean() * 0.5);
}

TEST(AntennaTest, BoresightPeak) {
  ParabolicAntenna a(14.0, 21.0, 0.0);
  EXPECT_DOUBLE_EQ(a.gain_dbi(0.0), 14.0);
}

TEST(AntennaTest, ThreeDbAtBeamEdge) {
  ParabolicAntenna a(14.0, 21.0, 0.0);
  const double half = deg_to_rad(21.0) / 2.0;
  EXPECT_NEAR(a.gain_dbi(half), 11.0, 1e-9);
  EXPECT_NEAR(a.gain_dbi(-half), 11.0, 1e-9);  // symmetric
}

TEST(AntennaTest, SidelobeFloor) {
  ParabolicAntenna a(14.0, 21.0, 0.0, 32.0);
  EXPECT_NEAR(a.gain_dbi(M_PI), 14.0 - 32.0, 1e-9);
  EXPECT_NEAR(a.gain_dbi(M_PI / 2), 14.0 - 32.0, 1e-9);
}

TEST(AntennaTest, MonotoneRolloffInMainLobe) {
  ParabolicAntenna a(14.0, 21.0, 0.0);
  double prev = a.gain_dbi(0.0);
  for (double deg = 2.0; deg <= 20.0; deg += 2.0) {
    const double g = a.gain_dbi(deg_to_rad(deg));
    EXPECT_LT(g, prev);
    prev = g;
  }
}

TEST(AntennaTest, GainToward) {
  // Dish at origin aiming +x: a target on +x gets peak gain.
  ParabolicAntenna a(14.0, 21.0, 0.0);
  EXPECT_DOUBLE_EQ(a.gain_toward({0, 0}, {10, 0}), 14.0);
  EXPECT_LT(a.gain_toward({0, 0}, {0, 10}), 0.0);
}

TEST(AntennaTest, InvalidArgs) {
  EXPECT_THROW(ParabolicAntenna(14.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ParabolicAntenna(14.0, 21.0, 0.0, -1.0), std::invalid_argument);
  EXPECT_THROW(ParabolicAntenna(14.0, 21.0, 0.0, 30.0, 0.0), std::invalid_argument);
}

TEST(SubcarrierTest, OffsetsSpanTwentyMhz) {
  EXPECT_EQ(kNumSubcarriers, 56);
  EXPECT_DOUBLE_EQ(subcarrier_offset_hz(0), -28 * 312.5e3);
  EXPECT_DOUBLE_EQ(subcarrier_offset_hz(27), -1 * 312.5e3);
  EXPECT_DOUBLE_EQ(subcarrier_offset_hz(28), 1 * 312.5e3);  // DC skipped
  EXPECT_DOUBLE_EQ(subcarrier_offset_hz(55), 28 * 312.5e3);
}

// The tone map the batch kernel's rotation tables are built from: indices
// 0..55 cover exactly tones -28..-1, +1..+28 — strictly increasing, DC
// never emitted, and mirror-symmetric (index i and 55-i are opposite
// tones). An off-by-one here would silently shear every rotation row.
TEST(SubcarrierTest, ToneMapExhaustive) {
  for (int i = 0; i < kNumSubcarriers; ++i) {
    const double f = subcarrier_offset_hz(i);
    const double tone = f / 312.5e3;
    EXPECT_DOUBLE_EQ(tone, std::round(tone)) << "index " << i;
    EXPECT_NE(tone, 0.0) << "index " << i;  // DC is skipped
    EXPECT_GE(tone, -28.0);
    EXPECT_LE(tone, 28.0);
    if (i > 0) EXPECT_LT(subcarrier_offset_hz(i - 1), f) << "index " << i;
    EXPECT_DOUBLE_EQ(subcarrier_offset_hz(kNumSubcarriers - 1 - i), -f)
        << "index " << i;
  }
  // The boundary pairs around DC and at the band edges, by name.
  EXPECT_DOUBLE_EQ(subcarrier_offset_hz(27), -subcarrier_offset_hz(28));
  EXPECT_DOUBLE_EQ(subcarrier_offset_hz(0), -subcarrier_offset_hz(55));
}

// One sinusoid has a closed form: gain = A * exp(j(kx*x + ky*y + w*t + p))
// with A = 1/sqrt(1) = 1. Replays the constructor's four RNG draws to
// recover the component parameters, then checks gain() against the
// analytic value at several (pos, t) — the ground truth the SoA component
// tables must reproduce.
TEST(SpatialTapTest, SingleSinusoidAnalyticValue) {
  constexpr double two_pi = 2.0 * std::numbers::pi;
  constexpr double env_doppler_hz = 1.5;
  Rng rng_tap(91);
  SpatialTap tap(1, env_doppler_hz, rng_tap);
  ASSERT_EQ(tap.num_sinusoids(), 1);

  Rng rng_ref(91);
  const double alpha = rng_ref.uniform(0.0, two_pi);
  const double kx = two_pi / kWavelength * std::cos(alpha);
  const double ky = two_pi / kWavelength * std::sin(alpha);
  const double omega = two_pi * rng_ref.uniform(-env_doppler_hz, env_doppler_hz);
  const double phase = rng_ref.uniform(0.0, two_pi);

  for (int s = 0; s < 32; ++s) {
    const Vec2 pos{s * 0.83, (s % 3) * 1.7};
    const Time t = Time::ms(s * 41);
    const double ph = kx * pos.x + ky * pos.y + omega * t.to_seconds() + phase;
    const auto g = tap.gain(pos, t);
    EXPECT_DOUBLE_EQ(g.real(), std::cos(ph)) << "sample " << s;
    EXPECT_DOUBLE_EQ(g.imag(), std::sin(ph)) << "sample " << s;
    EXPECT_NEAR(std::abs(g), 1.0, 1e-12) << "sample " << s;
  }
}

TEST(SpatialTapTest, UnitAveragePower) {
  Rng rng(5);
  SpatialTap tap(16, 1.0, rng);
  RunningStats power;
  for (int i = 0; i < 5000; ++i) {
    // Far-separated positions decorrelate the field.
    const Vec2 p{i * 3.1, (i % 7) * 2.3};
    power.add(std::norm(tap.gain(p, Time::zero())));
  }
  EXPECT_NEAR(power.mean(), 1.0, 0.1);
}

TEST(SpatialTapTest, StaticInTimeAtZeroEnvDoppler) {
  Rng rng(6);
  SpatialTap tap(16, 0.0, rng);
  const Vec2 p{1.0, 2.0};
  const auto g0 = tap.gain(p, Time::zero());
  const auto g1 = tap.gain(p, Time::sec(100));
  EXPECT_NEAR(std::abs(g0 - g1), 0.0, 1e-9);
}

TEST(TappedDelayTest, CsiShapeAndPower) {
  Rng rng(7);
  TappedDelayChannel::Config cfg;
  TappedDelayChannel ch(cfg, rng);
  RunningStats p;
  for (int i = 0; i < 3000; ++i) {
    const auto snap = ch.csi({i * 2.7, 0.0}, Time::zero());
    ASSERT_EQ(snap.gains.size(), static_cast<std::size_t>(kNumSubcarriers));
    p.add(snap.mean_power());
  }
  EXPECT_NEAR(p.mean(), 1.0, 0.12);  // normalized to unit average power
}

TEST(TappedDelayTest, FrequencySelectivity) {
  // Multiple taps with spread delays -> different subcarriers fade
  // differently (this is what makes ESNR differ from mean SNR).
  Rng rng(8);
  TappedDelayChannel::Config cfg;
  cfg.rician_k_db = -100.0;  // pure scatter, maximal selectivity
  TappedDelayChannel ch(cfg, rng);
  double total_spread = 0.0;
  for (int i = 0; i < 50; ++i) {
    const auto snap = ch.csi({i * 5.0, 0.0}, Time::zero());
    RunningStats s;
    for (const auto& g : snap.gains) s.add(std::norm(g));
    total_spread += s.stddev() / (s.mean() + 1e-12);
  }
  EXPECT_GT(total_spread / 50.0, 0.3);
}

TEST(TappedDelayTest, SingleTapIsFlat) {
  Rng rng(9);
  TappedDelayChannel::Config cfg;
  cfg.num_taps = 1;
  cfg.delay_spread_ns = 0.0;
  TappedDelayChannel ch(cfg, rng);
  const auto snap = ch.csi({3.0, 1.0}, Time::zero());
  // All subcarriers identical for a single zero-delay tap.
  for (const auto& g : snap.gains) {
    EXPECT_NEAR(std::abs(g - snap.gains[0]), 0.0, 1e-9);
  }
}

TEST(TappedDelayTest, SpatialCoherence) {
  // The field decorrelates on the wavelength scale: |correlation| high at
  // lambda/20 displacement, low at 10 lambda.
  Rng rng(10);
  TappedDelayChannel::Config cfg;
  cfg.rician_k_db = -100.0;
  TappedDelayChannel ch(cfg, rng);
  double close_corr = 0.0;
  double far_corr = 0.0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    const Vec2 p{i * 1.7, 0.0};
    const auto a = ch.flat_gain(p, Time::zero());
    const auto b = ch.flat_gain(p + Vec2{kWavelength / 20.0, 0.0}, Time::zero());
    const auto c = ch.flat_gain(p + Vec2{10.0 * kWavelength, 0.0}, Time::zero());
    close_corr += std::real(a * std::conj(b));
    far_corr += std::real(a * std::conj(c));
  }
  EXPECT_GT(close_corr / n, 0.7);
  EXPECT_LT(std::fabs(far_corr) / n, 0.3);
}

TEST(TappedDelayTest, RicianLosRaisesMinimumPower) {
  Rng rng(11);
  TappedDelayChannel::Config strong;
  strong.rician_k_db = 12.0;
  TappedDelayChannel::Config weak;
  weak.rician_k_db = -100.0;
  TappedDelayChannel ch_strong(strong, rng);
  TappedDelayChannel ch_weak(weak, rng);
  double min_strong = 1e9;
  double min_weak = 1e9;
  for (int i = 0; i < 2000; ++i) {
    const Vec2 p{i * 0.21, 0.0};
    min_strong = std::min(min_strong, std::norm(ch_strong.flat_gain(p, Time::zero())));
    min_weak = std::min(min_weak, std::norm(ch_weak.flat_gain(p, Time::zero())));
  }
  // A strong LoS component bounds fades away from zero.
  EXPECT_GT(min_strong, min_weak * 10.0);
}

// ISSUE 4 contract: the hot-path restructuring of the CSI compute path
// (fixed-size gains, precomputed sqrt amplitudes, flattened rotation table)
// must be *bit-identical* to the seed formula. This reference re-derives
// every constructor-computed constant with the seed's exact expressions and
// RNG consumption order, evaluates the seed's per-sample formula, and
// compares sample by sample with exact floating-point equality.
TEST(TappedDelayTest, BitIdenticalToReferenceFormula) {
  const TappedDelayChannel::Config cfg;  // paper defaults: 6 taps, 16 sinusoids
  Rng rng_real(77);
  TappedDelayChannel ch(cfg, rng_real);

  constexpr double two_pi = 2.0 * std::numbers::pi;
  Rng rng_ref(77);
  const double k_lin = from_db(cfg.rician_k_db);
  const double los_power = k_lin / (k_lin + 1.0);
  const double scatter_power = 1.0 / (k_lin + 1.0);
  const double los_phase_rate = two_pi / kWavelength;
  const double tap_spacing_ns =
      cfg.num_taps > 1 ? cfg.delay_spread_ns * 2.0 / (cfg.num_taps - 1) : 0.0;
  std::vector<double> raw(static_cast<std::size_t>(cfg.num_taps));
  double total = 0.0;
  for (int l = 0; l < cfg.num_taps; ++l) {
    const double delay = l * tap_spacing_ns;
    raw[static_cast<std::size_t>(l)] =
        cfg.delay_spread_ns > 0.0 ? std::exp(-delay / cfg.delay_spread_ns)
                                  : (l == 0 ? 1.0 : 0.0);
    total += raw[static_cast<std::size_t>(l)];
  }
  std::vector<double> power;
  std::vector<SpatialTap> fields;
  std::vector<std::vector<std::complex<double>>> rot;
  for (int l = 0; l < cfg.num_taps; ++l) {
    power.push_back(scatter_power * raw[static_cast<std::size_t>(l)] / total);
    fields.emplace_back(cfg.sinusoids_per_tap, cfg.env_doppler_hz, rng_ref);
    std::vector<std::complex<double>> r(kNumSubcarriers);
    const double delay_ns = l * tap_spacing_ns;
    for (int i = 0; i < kNumSubcarriers; ++i) {
      const double phase = -two_pi * subcarrier_offset_hz(i) * delay_ns * 1e-9;
      r[static_cast<std::size_t>(i)] = {std::cos(phase), std::sin(phase)};
    }
    rot.push_back(std::move(r));
  }

  for (int s = 0; s < 200; ++s) {
    const Vec2 pos{s * 0.37, (s % 5) * 0.11};
    const Time t = Time::us(s * 137);
    const CsiSnapshot snap = ch.csi(pos, t);

    // The seed formula, verbatim: per-call sqrt, nested rotation vectors.
    std::vector<std::complex<double>> ref(kNumSubcarriers, {0.0, 0.0});
    const std::complex<double> los =
        std::sqrt(los_power) *
        std::complex<double>{std::cos(los_phase_rate * pos.x),
                             std::sin(los_phase_rate * pos.x)};
    for (std::size_t l = 0; l < fields.size(); ++l) {
      const std::complex<double> g = std::sqrt(power[l]) * fields[l].gain(pos, t);
      for (int i = 0; i < kNumSubcarriers; ++i) {
        ref[static_cast<std::size_t>(i)] += g * rot[l][static_cast<std::size_t>(i)];
      }
    }
    for (auto& g : ref) g += los;

    for (int i = 0; i < kNumSubcarriers; ++i) {
      const auto k = static_cast<std::size_t>(i);
      ASSERT_EQ(snap.gains[k].real(), ref[k].real()) << "sample " << s << " sc " << i;
      ASSERT_EQ(snap.gains[k].imag(), ref[k].imag()) << "sample " << s << " sc " << i;
    }

    // flat_gain shares the precomputed amplitudes; check it the same way.
    std::complex<double> flat_ref =
        std::sqrt(los_power) *
        std::complex<double>{std::cos(los_phase_rate * pos.x),
                             std::sin(los_phase_rate * pos.x)};
    for (std::size_t l = 0; l < fields.size(); ++l) {
      flat_ref += std::sqrt(power[l]) * fields[l].gain(pos, t);
    }
    const std::complex<double> flat = ch.flat_gain(pos, t);
    ASSERT_EQ(flat.real(), flat_ref.real()) << "sample " << s;
    ASSERT_EQ(flat.imag(), flat_ref.imag()) << "sample " << s;
  }
}

// The batched kernel contract (DESIGN.md §11.6): csi_into/csi_batch are
// the same evaluation as csi(), lane-restructured but never reassociated —
// every sample is bit-identical, so there is no accuracy knob to document.
TEST(TappedDelayTest, BatchMatchesScalarBitwise) {
  const TappedDelayChannel::Config cfg;
  Rng rng(123);
  TappedDelayChannel ch(cfg, rng);

  constexpr std::size_t kSamples = 300;
  std::vector<Vec2> pos;
  std::vector<Time> when;
  for (std::size_t s = 0; s < kSamples; ++s) {
    // A drive-like sweep: monotone x (the lazy-link sampling shape) with
    // lane wobble, millisecond-scale time steps.
    pos.push_back({static_cast<double>(s) * 0.067,
                   (s % 2 == 0 ? 0.0 : -3.5)});
    when.push_back(Time::us(s * 913));
  }
  std::vector<CsiSnapshot> batch(kSamples);
  ch.csi_batch(pos.data(), when.data(), kSamples, batch.data());

  for (std::size_t s = 0; s < kSamples; ++s) {
    const CsiSnapshot one = ch.csi(pos[s], when[s]);
    ASSERT_EQ(batch[s].when, one.when) << "sample " << s;
    for (std::size_t i = 0; i < one.gains.size(); ++i) {
      ASSERT_EQ(batch[s].gains[i].real(), one.gains[i].real())
          << "sample " << s << " sc " << i;
      ASSERT_EQ(batch[s].gains[i].imag(), one.gains[i].imag())
          << "sample " << s << " sc " << i;
    }
  }

  // csi_into over a caller-held snapshot: same path, no fresh object.
  CsiSnapshot reused;
  for (std::size_t s = 0; s < kSamples; s += 17) {
    ch.csi_into(pos[s], when[s], reused);
    for (std::size_t i = 0; i < reused.gains.size(); ++i) {
      ASSERT_EQ(reused.gains[i], batch[s].gains[i]) << "sample " << s;
    }
  }
}

// Same contract one layer up: measure()'s indexed fill into the fixed-size
// SNR array must reproduce the seed's push_back loop bit for bit.
TEST(LinkChannelTest, MeasureBitIdenticalToSeedFormula) {
  LinkChannel::Config cfg;
  Rng rng_real(31);
  LinkChannel link({0.0, 15.0}, {40.0, 0.0}, cfg, rng_real);

  // Replay the constructor's RNG consumption: one next_u64() for the shadow
  // field seed, then the fading field construction.
  Rng rng_ref(31);
  (void)rng_ref.next_u64();
  TappedDelayChannel ref_fading(cfg.fading, rng_ref);

  for (int s = 0; s < 100; ++s) {
    const Vec2 pos{-20.0 + s * 0.83, (s % 3) * 0.4};
    const Time t = Time::ms(s * 7);
    const CsiMeasurement m = link.measure(pos, t);

    const double rx_dbm = link.large_scale_rx_dbm(pos);
    const CsiSnapshot snap = ref_fading.csi(pos, t);
    const double base_snr_db = rx_dbm - cfg.budget.noise_floor_dbm;
    std::vector<double> ref_snr;
    ref_snr.reserve(snap.gains.size());
    double mean_power = 0.0;
    double mean_snr_lin = 0.0;
    for (const auto& g : snap.gains) {
      const double p = std::norm(g);
      mean_power += p;
      const double snr_db = base_snr_db + to_db(std::max(p, 1e-4));
      ref_snr.push_back(snr_db);
      mean_snr_lin += from_db(snr_db);
    }
    mean_power /= static_cast<double>(snap.gains.size());
    const double ref_rssi = rx_dbm + to_db(std::max(mean_power, 1e-4));
    const double ref_mean_snr =
        to_db(mean_snr_lin / static_cast<double>(snap.gains.size()));

    for (int i = 0; i < kNumSubcarriers; ++i) {
      const auto k = static_cast<std::size_t>(i);
      ASSERT_EQ(m.subcarrier_snr_db[k], ref_snr[k]) << "sample " << s << " sc " << i;
    }
    ASSERT_EQ(m.rssi_dbm, ref_rssi) << "sample " << s;
    ASSERT_EQ(m.mean_snr_db, ref_mean_snr) << "sample " << s;
  }
}

TEST(LinkChannelTest, SnrFallsWithDistanceAlongRoad) {
  Rng rng(12);
  LinkChannel::Config cfg;
  cfg.shadowing_sigma_db = 0.0;
  LinkChannel link({0.0, 15.0}, {0.0, 0.0}, cfg, rng);
  const double at_boresight = link.large_scale_snr_db({0.0, 0.0});
  const double at_5m = link.large_scale_snr_db({5.0, 0.0});
  const double at_15m = link.large_scale_snr_db({15.0, 0.0});
  EXPECT_GT(at_boresight, at_5m);
  EXPECT_GT(at_5m, at_15m);
  EXPECT_GT(at_boresight - at_15m, 20.0);  // picocell: fast die-off
}

TEST(LinkChannelTest, MeasureIsPure) {
  Rng rng(13);
  LinkChannel::Config cfg;
  LinkChannel link({0.0, 15.0}, {0.0, 0.0}, cfg, rng);
  const auto a = link.measure({1.0, 0.0}, Time::ms(5));
  const auto b = link.measure({1.0, 0.0}, Time::ms(5));
  ASSERT_EQ(a.subcarrier_snr_db.size(), b.subcarrier_snr_db.size());
  for (std::size_t i = 0; i < a.subcarrier_snr_db.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.subcarrier_snr_db[i], b.subcarrier_snr_db[i]);
  }
  EXPECT_DOUBLE_EQ(a.rssi_dbm, b.rssi_dbm);
}

TEST(LinkChannelTest, MeasurementFieldsConsistent) {
  Rng rng(14);
  LinkChannel::Config cfg;
  LinkChannel link({0.0, 15.0}, {0.0, 0.0}, cfg, rng);
  const auto m = link.measure({0.5, 0.0}, Time::ms(1));
  ASSERT_EQ(m.subcarrier_snr_db.size(), static_cast<std::size_t>(kNumSubcarriers));
  // Mean SNR lies within the subcarrier range.
  double lo = 1e9;
  double hi = -1e9;
  for (double s : m.subcarrier_snr_db) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_GE(m.mean_snr_db, lo);
  EXPECT_LE(m.mean_snr_db, hi + 1e-9);
  // RSSI = noise floor + mean power: consistent with the budget.
  EXPECT_GT(m.rssi_dbm, -95.0);
  EXPECT_LT(m.rssi_dbm, 0.0);
}

// Physics property: driving through the fading field yields the classic
// Clarke coherence behaviour — the autocorrelation of the channel gain
// falls off on the scale of ~lambda/2 of TRAVEL DISTANCE, so the coherence
// TIME halves when the speed doubles.
class CoherenceProperty : public ::testing::TestWithParam<double> {};

TEST_P(CoherenceProperty, CoherenceTimeScalesInverselyWithSpeed) {
  const double mph = GetParam();
  const double v = mph_to_mps(mph);
  Rng rng(31);
  TappedDelayChannel::Config cfg;
  cfg.rician_k_db = -100.0;  // Rayleigh: cleanest statistics
  cfg.env_doppler_hz = 0.0;  // isolate motion-induced decorrelation
  TappedDelayChannel ch(cfg, rng);

  // Sample the flat gain along a drive at speed v and find the lag at which
  // the (complex) autocorrelation first drops below 0.5.
  const double dt = 0.0002;  // 0.2 ms sampling
  const int n = 20000;
  std::vector<std::complex<double>> g;
  g.reserve(n);
  for (int i = 0; i < n; ++i) {
    g.push_back(ch.flat_gain({v * i * dt, 0.0}, Time::zero()));
  }
  double power = 0.0;
  for (const auto& x : g) power += std::norm(x);
  power /= n;
  int lag = 1;
  for (; lag < 2000; ++lag) {
    std::complex<double> acc{0.0, 0.0};
    for (int i = 0; i + lag < n; ++i) acc += g[i] * std::conj(g[i + lag]);
    const double corr = std::abs(acc) / ((n - lag) * power);
    if (corr < 0.5) break;
  }
  const double coherence_ms = lag * dt * 1e3;
  // Clarke: Tc ~ 9 lambda / (16 pi v) ... various constants; what must hold
  // exactly is the inverse-speed scaling. Check the product v * Tc lands in
  // a fixed band (equivalent to a decorrelation distance of ~2-8 cm).
  const double decorrelation_m = v * coherence_ms * 1e-3;
  EXPECT_GT(decorrelation_m, 0.02) << "at " << mph << " mph";
  EXPECT_LT(decorrelation_m, 0.08) << "at " << mph << " mph";
  // And the paper's quoted regime: ~2-3 ms coherence at 2.4 GHz driving
  // speeds (we accept a wider band across the sweep).
  if (mph >= 15.0) {
    EXPECT_GT(coherence_ms, 0.5);
    EXPECT_LT(coherence_ms, 12.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Speeds, CoherenceProperty,
                         ::testing::Values(5.0, 15.0, 25.0, 35.0));

}  // namespace
}  // namespace wgtt::channel
