// Cross-system integration tests: WGTT vs the Enhanced 802.11r baseline
// over identical radio worlds, TCP over the full stack, and ablations of
// WGTT's mechanisms (block-ACK forwarding).
#include <gtest/gtest.h>

#include "mobility/trajectory.h"
#include "scenario/baseline_system.h"
#include "scenario/wgtt_system.h"
#include "transport/tcp.h"
#include "transport/udp.h"

namespace wgtt {
namespace {

using net::ClientId;

double run_wgtt_udp(std::uint64_t seed, double mph, double rate_mbps,
                    bool ba_forwarding = true) {
  net::reset_packet_uids();
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = seed;
  scenario::WgttSystem sys(cfg);
  mobility::LineDrive drive(-15.0, 0.0, mph_to_mps(mph));
  const int c = sys.add_client(&drive);
  sys.start();
  if (!ba_forwarding) {
    for (int i = 0; i < sys.num_aps(); ++i) sys.ap(i).set_ba_forwarding(false);
  }
  transport::UdpSink sink;
  sys.client(c).on_downlink = [&](const net::Packet& p) {
    sink.on_packet(sys.now(), p);
  };
  transport::UdpSource src(
      sys.sched(),
      [&](net::Packet p) {
        p.client = ClientId{0};
        sys.server_send(std::move(p));
      },
      {.rate_mbps = rate_mbps, .client = ClientId{0}});
  src.start();
  const Time t0 = drive.time_at_x(0.0);
  const Time t1 = drive.time_at_x(52.5);
  sys.run_until(t1);
  return sink.throughput().average_mbps(t0, t1);
}

double run_baseline_udp(std::uint64_t seed, double mph, double rate_mbps) {
  net::reset_packet_uids();
  scenario::BaselineSystemConfig cfg;
  cfg.geometry.seed = seed;
  scenario::BaselineSystem sys(cfg);
  mobility::LineDrive drive(-15.0, 0.0, mph_to_mps(mph));
  const int c = sys.add_client(&drive);
  sys.start();
  transport::UdpSink sink;
  sys.client(c).on_downlink = [&](const net::Packet& p) {
    sink.on_packet(sys.now(), p);
  };
  transport::UdpSource src(
      sys.sched(),
      [&](net::Packet p) {
        p.client = ClientId{0};
        sys.server_send(std::move(p));
      },
      {.rate_mbps = rate_mbps, .client = ClientId{0}});
  src.start();
  const Time t0 = drive.time_at_x(0.0);
  const Time t1 = drive.time_at_x(52.5);
  sys.run_until(t1);
  return sink.throughput().average_mbps(t0, t1);
}

TEST(WgttVsBaseline, WgttWinsAtDrivingSpeed) {
  // The headline claim, at one seed and 25 mph: WGTT beats the baseline by
  // a clear factor (paper: 2.6-4.0x for UDP).
  const double wgtt = run_wgtt_udp(5, 25.0, 30.0);
  const double base = run_baseline_udp(5, 25.0, 30.0);
  EXPECT_GT(wgtt, 1.8 * base);
  EXPECT_GT(wgtt, 5.0);  // sanity: WGTT itself is healthy
}

TEST(WgttVsBaseline, GapGrowsWithSpeed) {
  const double wgtt_fast = run_wgtt_udp(6, 35.0, 30.0);
  const double base_fast = run_baseline_udp(6, 35.0, 30.0);
  const double base_slow = run_baseline_udp(6, 5.0, 30.0);
  // The baseline collapses with speed; WGTT stays serviceable.
  EXPECT_GT(base_slow, base_fast * 1.5);
  EXPECT_GT(wgtt_fast, base_fast * 2.0);
}

TEST(WgttTcp, BulkTcpFlowsOverFullStack) {
  net::reset_packet_uids();
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 31;
  scenario::WgttSystem sys(cfg);
  mobility::LineDrive drive(-15.0, 0.0, mph_to_mps(15.0));
  const int c = sys.add_client(&drive);
  sys.start();

  transport::TcpSender::Config scfg;
  scfg.client = ClientId{0};
  transport::TcpSender sender(
      sys.sched(),
      [&](net::Packet p) { sys.server_send(std::move(p)); }, scfg);
  transport::TcpReceiver::Config rcfg;
  rcfg.client = ClientId{0};
  transport::TcpReceiver receiver(
      sys.sched(),
      [&](net::Packet p) { sys.client(c).send_uplink(std::move(p)); }, rcfg);
  sys.client(c).on_downlink = [&](const net::Packet& p) {
    receiver.on_data_packet(p);
  };
  sys.on_server_uplink = [&](const net::Packet& p) { sender.on_ack_packet(p); };
  sender.set_unlimited(true);

  const Time horizon = drive.time_at_x(52.5);
  sys.run_until(horizon);
  const double mbps = static_cast<double>(receiver.bytes_delivered()) * 8.0 /
                      1e6 / horizon.to_seconds();
  EXPECT_GT(mbps, 3.0);  // bulk TCP survives the whole drive
  EXPECT_TRUE(sender.alive());
}

TEST(Ablation, BlockAckForwardingReducesRetransmissions) {
  // Same world, BA forwarding on vs off: forwarding recovers BAs the
  // serving AP missed, so fewer MPDUs are retransmitted.
  auto retx_with = [](bool fwd) {
    net::reset_packet_uids();
    scenario::WgttSystemConfig cfg;
    cfg.geometry.seed = 41;
    scenario::WgttSystem sys(cfg);
    mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
    const int c = sys.add_client(&drive);
    sys.start();
    for (int i = 0; i < sys.num_aps(); ++i) sys.ap(i).set_ba_forwarding(fwd);
    sys.client(c).on_downlink = [](const net::Packet&) {};
    transport::UdpSource src(
        sys.sched(),
        [&](net::Packet p) {
          p.client = ClientId{0};
          sys.server_send(std::move(p));
        },
        {.rate_mbps = 25.0, .client = ClientId{0}});
    src.start();
    sys.run_until(Time::sec(9));
    std::uint64_t retx = 0;
    std::uint64_t delivered = 0;
    std::uint64_t via_fwd = 0;
    for (int i = 0; i < sys.num_aps(); ++i) {
      const auto s = sys.ap(i).mac().total_stats();
      retx += s.retransmissions;
      delivered += s.mpdus_delivered;
      via_fwd += s.mpdus_delivered_via_forwarded_ba;
    }
    struct R {
      double retx_per_delivered;
      std::uint64_t via_fwd;
    };
    return R{static_cast<double>(retx) / std::max<std::uint64_t>(delivered, 1),
             via_fwd};
  };
  const auto with = retx_with(true);
  const auto without = retx_with(false);
  // The mechanism fires (MPDUs complete via forwarded BAs) and never makes
  // retransmissions worse. The absolute saving is small in this channel
  // model — the serving AP, being well-chosen, decodes most BAs itself —
  // so we assert direction-with-tolerance, not magnitude (see
  // EXPERIMENTS.md for the measured effect size).
  EXPECT_GT(with.via_fwd, 0u);
  EXPECT_LT(with.retx_per_delivered, without.retx_per_delivered * 1.03);
}

TEST(PairedWorlds, SameSeedSameGeometryAcrossSystems) {
  // WGTT and baseline systems built from the same seed share the same
  // large-scale radio world (paired comparison).
  scenario::WgttSystemConfig wcfg;
  wcfg.geometry.seed = 55;
  scenario::WgttSystem wgtt(wcfg);
  scenario::BaselineSystemConfig bcfg;
  bcfg.geometry.seed = 55;
  scenario::BaselineSystem base(bcfg);
  mobility::StaticPosition pos({20.0, 0.0});
  wgtt.add_client(&pos);
  base.add_client(&pos);
  for (int ap = 0; ap < 8; ++ap) {
    EXPECT_DOUBLE_EQ(wgtt.geometry().link(ap, 0).large_scale_snr_db({20.0, 0.0}),
                     base.geometry().link(ap, 0).large_scale_snr_db({20.0, 0.0}));
  }
}

}  // namespace
}  // namespace wgtt
