// Tests for the transport substrate: flow statistics, UDP CBR, and the
// NewReno TCP model (growth, fast retransmit, RTO, connection death).
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "sim/scheduler.h"
#include "transport/flow_stats.h"
#include "transport/tcp.h"
#include "transport/udp.h"
#include "util/rng.h"

namespace wgtt::transport {
namespace {

TEST(ThroughputRecorderTest, BinsAndSeries) {
  ThroughputRecorder r(Time::ms(100));
  r.add(Time::ms(50), 12'500);   // 1 Mbit in bin 0
  r.add(Time::ms(150), 25'000);  // 2 Mbit in bin 1
  const auto s = r.series();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_NEAR(s[0].mbps, 1.0, 1e-9);
  EXPECT_NEAR(s[1].mbps, 2.0, 1e-9);
  EXPECT_EQ(r.total_bytes(), 37'500u);
}

TEST(ThroughputRecorderTest, AverageOverWindow) {
  ThroughputRecorder r(Time::ms(100));
  for (int i = 0; i < 10; ++i) r.add(Time::ms(i * 100 + 5), 12'500);
  EXPECT_NEAR(r.average_mbps(Time::zero(), Time::sec(1)), 1.0, 1e-9);
  EXPECT_NEAR(r.average_mbps(Time::ms(500), Time::sec(1)), 1.0, 0.3);
  EXPECT_EQ(r.average_mbps(Time::sec(1), Time::sec(1)), 0.0);
}

TEST(LossRecorderTest, GapDetection) {
  LossRecorder lr;
  for (std::uint32_t s : {0u, 1u, 2u, 4u, 5u, 9u}) {
    lr.add(Time::ms(s * 10), s);
  }
  // Seqs 0..9 span 10, received 6 -> loss 0.4 over the whole window.
  EXPECT_NEAR(lr.loss_rate(Time::zero(), Time::sec(1)), 0.4, 1e-9);
  EXPECT_EQ(lr.loss_rate(Time::sec(5), Time::sec(6)), 0.0);  // empty window
}

TEST(LossRecorderTest, Windows) {
  LossRecorder lr;
  lr.add(Time::ms(10), 0);
  lr.add(Time::ms(20), 2);  // one missing in the first 100 ms
  lr.add(Time::ms(110), 3);
  lr.add(Time::ms(120), 4);  // none missing in the second
  const auto w = lr.windows(Time::ms(100), Time::ms(200));
  ASSERT_EQ(w.size(), 2u);
  EXPECT_NEAR(w[0].loss, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(w[1].loss, 0.0, 1e-9);
}

TEST(UdpSourceTest, PacesAtConfiguredRate) {
  sim::Scheduler sched;
  int sent = 0;
  std::uint32_t last_seq = 0;
  UdpSource src(
      sched,
      [&](net::Packet p) {
        ++sent;
        last_seq = p.app_seq;
        EXPECT_EQ(p.payload_bytes, 1400u);
        EXPECT_EQ(p.proto, net::Proto::kUdp);
      },
      {.rate_mbps = 11.2, .payload_bytes = 1400});
  src.start();
  sched.run_until(Time::sec(1));
  // 11.2 Mbit/s / (1400*8 bits) = 1000 pkt/s.
  EXPECT_NEAR(sent, 1000, 2);
  EXPECT_EQ(last_seq, static_cast<std::uint32_t>(sent - 1));
  src.stop();
  const int at_stop = sent;
  sched.run_until(Time::sec(2));
  EXPECT_EQ(sent, at_stop);
}

TEST(UdpSinkTest, CountsAndDeduplicates) {
  UdpSink sink;
  net::Packet p = net::make_packet();
  p.app_seq = 5;
  p.payload_bytes = 100;
  sink.on_packet(Time::ms(1), p);
  sink.on_packet(Time::ms(2), p);  // duplicate app_seq
  EXPECT_EQ(sink.packets_received(), 1u);
  EXPECT_EQ(sink.duplicates(), 1u);
}

// --- TCP harness -------------------------------------------------------------
//
// Sender and receiver connected by a configurable pipe: fixed one-way delay,
// optional deterministic drop pattern. This isolates the TCP state machine
// from the radio stack.
class TcpHarness {
 public:
  explicit TcpHarness(Time one_way = Time::ms(10)) : one_way_(one_way) {
    TcpSender::Config scfg;
    sender = std::make_unique<TcpSender>(
        sched, [this](net::Packet p) { deliver_to_receiver(std::move(p)); },
        scfg);
    receiver = std::make_unique<TcpReceiver>(
        sched, [this](net::Packet p) { deliver_to_sender(std::move(p)); },
        TcpReceiver::Config{});
  }

  void deliver_to_receiver(net::Packet p) {
    if (drop_next_data > 0 && p.payload_bytes > 0) {
      --drop_next_data;
      ++dropped;
      return;
    }
    if (blackhole) return;
    sched.schedule_in(one_way_, [this, p] { receiver->on_data_packet(p); });
  }

  void deliver_to_sender(net::Packet p) {
    if (blackhole_acks) return;
    sched.schedule_in(one_way_, [this, p] { sender->on_ack_packet(p); });
  }

  sim::Scheduler sched;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;
  int drop_next_data = 0;
  int dropped = 0;
  bool blackhole = false;
  bool blackhole_acks = false;
  Time one_way_;
};

TEST(TcpTest, TransfersFiniteData) {
  TcpHarness h;
  h.sender->send_bytes(100'000);
  h.sched.run_until(Time::sec(10));
  EXPECT_EQ(h.receiver->bytes_delivered(), 100'000u);
  EXPECT_EQ(h.sender->bytes_acked(), 100'000u);
  EXPECT_TRUE(h.sender->alive());
  EXPECT_EQ(h.sender->stats().retransmissions, 0u);
}

TEST(TcpTest, SlowStartDoublesCwnd) {
  TcpHarness h;
  const double cwnd0 = h.sender->cwnd_segments();
  h.sender->set_unlimited(true);
  // After a few RTTs of lossless delivery, cwnd grows well beyond initial.
  h.sched.run_until(Time::ms(200));  // ~10 RTTs
  EXPECT_GT(h.sender->cwnd_segments(), cwnd0 * 4);
}

TEST(TcpTest, ProgressCallbackFires) {
  TcpHarness h;
  std::uint64_t last = 0;
  h.sender->on_progress = [&](std::uint64_t acked) { last = acked; };
  h.sender->send_bytes(50'000);
  h.sched.run_until(Time::sec(5));
  EXPECT_EQ(last, 50'000u);
}

TEST(TcpTest, FastRetransmitRecoversSingleLoss) {
  TcpHarness h;
  h.sender->set_unlimited(true);
  h.sched.run_until(Time::ms(150));  // get a healthy cwnd
  h.drop_next_data = 1;              // drop exactly one segment
  h.sched.run_until(Time::sec(3));
  EXPECT_EQ(h.dropped, 1);
  EXPECT_GE(h.sender->stats().fast_retransmits, 1u);
  EXPECT_EQ(h.sender->stats().rtos, 0u);  // recovered without a timeout
  // Stream keeps making progress past the loss point.
  EXPECT_GT(h.receiver->bytes_delivered(), 500'000u);
}

TEST(TcpTest, RtoOnBlackhole) {
  TcpHarness h;
  h.sender->set_unlimited(true);
  h.sched.run_until(Time::ms(100));
  h.blackhole = true;
  h.sched.run_until(Time::ms(100) + Time::sec(2));
  EXPECT_GE(h.sender->stats().rtos, 1u);
  // Un-blackhole: the connection recovers.
  h.blackhole = false;
  const std::uint64_t before = h.receiver->bytes_delivered();
  h.sched.run_until(Time::ms(100) + Time::sec(8));
  EXPECT_GT(h.receiver->bytes_delivered(), before);
  EXPECT_TRUE(h.sender->alive());
}

TEST(TcpTest, ConnectionDiesAfterRepeatedRtos) {
  TcpHarness h;
  bool died = false;
  h.sender->on_dead = [&] { died = true; };
  h.sender->set_unlimited(true);
  h.sched.run_until(Time::ms(50));
  h.blackhole = true;
  // Default config: max 6 consecutive RTOs with exponential backoff caps
  // at 3 s -> death within ~15 s (the Figure 14 baseline failure mode).
  h.sched.run_until(Time::sec(30));
  EXPECT_TRUE(died);
  EXPECT_FALSE(h.sender->alive());
  // A dead sender stays dead.
  const auto segs = h.sender->stats().segments_sent;
  h.blackhole = false;
  h.sched.run_until(Time::sec(40));
  EXPECT_EQ(h.sender->stats().segments_sent, segs);
}

TEST(TcpTest, ReceiverReordersOutOfOrderSegments) {
  sim::Scheduler sched;
  std::vector<net::Packet> acks;
  TcpReceiver rx(sched, [&](net::Packet p) { acks.push_back(p); },
                 TcpReceiver::Config{});
  auto seg = [&](std::uint64_t seq, std::size_t len) {
    net::Packet p = net::make_packet();
    p.proto = net::Proto::kTcp;
    p.payload_bytes = len;
    p.created = sched.now();
    net::TcpFields f;
    f.seq = seq;
    p.tcp = f;
    return p;
  };
  rx.on_data_packet(seg(0, 1000));
  EXPECT_EQ(rx.bytes_delivered(), 1000u);
  rx.on_data_packet(seg(2000, 1000));  // gap
  EXPECT_EQ(rx.bytes_delivered(), 1000u);
  ASSERT_EQ(acks.size(), 2u);
  EXPECT_EQ(acks[1].tcp->ack, 1000u);  // duplicate cumulative ack
  rx.on_data_packet(seg(1000, 1000));  // fills the gap
  EXPECT_EQ(rx.bytes_delivered(), 3000u);
  EXPECT_EQ(acks[2].tcp->ack, 3000u);
}

TEST(TcpTest, ReceiverMergesOverlappingSegments) {
  sim::Scheduler sched;
  int acks = 0;
  TcpReceiver rx(sched, [&](net::Packet) { ++acks; }, TcpReceiver::Config{});
  auto seg = [&](std::uint64_t seq, std::size_t len) {
    net::Packet p = net::make_packet();
    p.proto = net::Proto::kTcp;
    p.payload_bytes = len;
    net::TcpFields f;
    f.seq = seq;
    p.tcp = f;
    return p;
  };
  rx.on_data_packet(seg(1000, 500));
  rx.on_data_packet(seg(1200, 800));  // overlaps previous ooo segment
  rx.on_data_packet(seg(0, 1000));
  EXPECT_EQ(rx.bytes_delivered(), 2000u);
}

TEST(TcpTest, DuplicateDataReAcked) {
  sim::Scheduler sched;
  std::vector<std::uint64_t> acks;
  TcpReceiver rx(sched, [&](net::Packet p) { acks.push_back(p.tcp->ack); },
                 TcpReceiver::Config{});
  net::Packet p = net::make_packet();
  p.proto = net::Proto::kTcp;
  p.payload_bytes = 1000;
  net::TcpFields f;
  f.seq = 0;
  p.tcp = f;
  rx.on_data_packet(p);
  rx.on_data_packet(p);  // retransmitted duplicate (e.g. lost ack)
  ASSERT_EQ(acks.size(), 2u);
  EXPECT_EQ(acks[0], 1000u);
  EXPECT_EQ(acks[1], 1000u);  // re-acked so the sender can proceed
}

TEST(TcpTest, ThroughputScalesWithRtt) {
  TcpHarness fast(Time::ms(5));
  TcpHarness slow(Time::ms(50));
  fast.sender->set_unlimited(true);
  slow.sender->set_unlimited(true);
  fast.sched.run_until(Time::sec(2));
  slow.sched.run_until(Time::sec(2));
  EXPECT_GT(fast.receiver->bytes_delivered(),
            slow.receiver->bytes_delivered());
}

}  // namespace
}  // namespace wgtt::transport
