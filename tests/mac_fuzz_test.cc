// Randomized invariant tests for the MAC: under arbitrary channel quality
// sequences, dynamic peers and BA injections, the MAC must (1) never
// deliver the same packet twice to the application, (2) never lose packets
// silently (every enqueued MPDU is eventually delivered, retry-dropped, or
// still queued), and (3) never wedge (traffic keeps flowing once the
// channel recovers).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mac/medium.h"
#include "mac/wifi_mac.h"
#include "net/packet.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace wgtt::mac {
namespace {

channel::CsiMeasurement flat_csi(double snr_db, Time when) {
  channel::CsiMeasurement m;
  m.when = when;
  m.subcarrier_snr_db.fill(snr_db);
  m.rssi_dbm = -94.0 + snr_db;
  m.mean_snr_db = snr_db;
  return m;
}

class MacFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MacFuzz, ConservationAndNoDuplicates) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed * 2654435761ULL + 11);

  sim::Scheduler sched;
  Medium medium(sched, {});

  // The channel quality is a shared variable the fuzzer mutates over time.
  auto snr = std::make_shared<double>(35.0);

  WifiMac::Config cfg;
  cfg.retry_limit = 1 + static_cast<int>(rng.uniform_int(6));
  cfg.hw_queue_capacity = 16 + rng.uniform_int(100);
  WifiMac tx(sched, medium, Rng{seed + 1}, cfg);
  WifiMac rx(sched, medium, Rng{seed + 2}, {});
  tx.attach([] { return channel::Vec2{0, 0}; });
  rx.attach([] { return channel::Vec2{5, 0}; });
  auto sampler = [&sched, snr](RadioId) { return flat_csi(*snr, sched.now()); };
  tx.set_channel_sampler(sampler);
  rx.set_channel_sampler(sampler);
  tx.add_peer(rx.radio());
  rx.add_peer(tx.radio());

  std::multiset<std::uint64_t> delivered_uids;
  rx.on_deliver = [&](RadioId, const net::Packet& p) {
    delivered_uids.insert(p.uid);
  };
  std::set<std::uint64_t> acked_uids;
  tx.on_mpdu_acked = [&](RadioId, std::uint16_t, const net::Packet& p) {
    // Transmit-side completion must be unique per packet too.
    EXPECT_TRUE(acked_uids.insert(p.uid).second)
        << "packet acked twice at tx side";
  };

  std::uint64_t enqueued = 0;
  std::uint64_t accepted = 0;
  for (int round = 0; round < 200; ++round) {
    // Mutate the channel: anywhere from dead to perfect.
    *snr = rng.uniform(-10.0, 40.0);
    // Offer a burst of packets.
    const int burst = static_cast<int>(rng.uniform_int(12));
    for (int i = 0; i < burst; ++i) {
      net::Packet p = net::make_packet();
      p.payload_bytes = 100 + rng.uniform_int(1300);
      ++enqueued;
      accepted += tx.enqueue(rx.radio(), std::move(p)) ? 1 : 0;
    }
    // Occasionally inject a (nonsense) forwarded BA: must never corrupt
    // state or cause duplicate completions.
    if (rng.chance(0.1)) {
      BaBitmap ba;
      ba.start_seq = static_cast<std::uint16_t>(rng.uniform_int(4096));
      ba.bits = rng.next_u64();
      tx.inject_block_ack(rx.radio(), ba);
    }
    sched.run_until(sched.now() + Time::millis(rng.uniform(1.0, 15.0)));
  }
  // Let everything settle on a good channel.
  *snr = 40.0;
  sched.run_until(sched.now() + Time::sec(2));

  // (1) No duplicate deliveries.
  for (const auto& uid : delivered_uids) {
    EXPECT_EQ(delivered_uids.count(uid), 1u) << "duplicate delivery";
  }
  // (2) Conservation: accepted = delivered-or-lost-to-retry + still queued.
  const auto& st = tx.stats(rx.radio());
  EXPECT_EQ(st.mpdus_enqueued, accepted);
  EXPECT_EQ(st.mpdus_delivered + st.mpdus_dropped_retry +
                tx.queue_depth(rx.radio()),
            accepted);
  EXPECT_EQ(st.enqueue_drops, enqueued - accepted);
  // (3) No wedge: on the recovered channel the queue drained fully.
  EXPECT_EQ(tx.queue_depth(rx.radio()), 0u);
  // Note: rx-side and tx-side delivery counts need not match exactly — a
  // lost BA can leave a delivered packet counted as retry-dropped at the
  // transmitter, and an injected (garbage) forwarded BA can complete a
  // packet the receiver never got. The invariants above are the ones the
  // design must guarantee.
}

INSTANTIATE_TEST_SUITE_P(Seeds, MacFuzz, ::testing::Range(0, 15));

}  // namespace
}  // namespace wgtt::mac
