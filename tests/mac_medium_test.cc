// Unit tests for the shared-medium model: carrier sense, audibility,
// collision marking.
#include <gtest/gtest.h>

#include <vector>

#include <cmath>

#include "mac/medium.h"
#include "sim/scheduler.h"

namespace wgtt::mac {
namespace {

struct Rx {
  Frame frame;
  Medium::RxContext ctx;
};

class MediumTest : public ::testing::Test {
 protected:
  RadioId add(channel::Vec2 pos, std::vector<Rx>* log) {
    return medium_.add_radio([pos] { return pos; },
                             [log](const Frame& f, const Medium::RxContext& c) {
                               if (log) log->push_back({f, c});
                             });
  }

  Frame beacon(RadioId to = kBroadcast) {
    Frame f;
    f.to = to;
    f.body = BeaconFrame{};
    return f;
  }

  sim::Scheduler sched_;
  Medium medium_{sched_, {}};
};

TEST_F(MediumTest, DeliversToAudibleRadios) {
  std::vector<Rx> a_log;
  std::vector<Rx> b_log;
  const RadioId a = add({0, 0}, &a_log);
  add({50, 0}, &b_log);
  medium_.transmit(a, beacon(), Time::us(100));
  sched_.run_all();
  EXPECT_TRUE(a_log.empty());  // no self-reception
  ASSERT_EQ(b_log.size(), 1u);
  EXPECT_EQ(b_log[0].frame.from, a);
  EXPECT_FALSE(b_log[0].ctx.collided);
  EXPECT_EQ(b_log[0].frame.air_end, Time::us(100));
}

TEST_F(MediumTest, OutOfRangeHearsNothing) {
  std::vector<Rx> far_log;
  const RadioId a = add({0, 0}, nullptr);
  add({500, 0}, &far_log);  // beyond the 120 m sense range
  medium_.transmit(a, beacon(), Time::us(100));
  sched_.run_all();
  EXPECT_TRUE(far_log.empty());
}

TEST_F(MediumTest, BusyUntilReflectsInFlight) {
  const RadioId a = add({0, 0}, nullptr);
  const RadioId b = add({10, 0}, nullptr);
  EXPECT_EQ(medium_.busy_until(b), sched_.now());
  medium_.transmit(a, beacon(), Time::ms(2));
  EXPECT_EQ(medium_.busy_until(b), Time::ms(2));
  // The transmitter itself is not blocked by its own frame.
  EXPECT_EQ(medium_.busy_until(a), sched_.now());
}

TEST_F(MediumTest, BusyUntilIgnoresFarTransmitters) {
  add({0, 0}, nullptr);
  const RadioId far = medium_.add_radio([] { return channel::Vec2{500, 0}; },
                                        [](const Frame&, const Medium::RxContext&) {});
  const RadioId near = add({10, 0}, nullptr);
  medium_.transmit(far, beacon(), Time::ms(5));
  EXPECT_EQ(medium_.busy_until(near), sched_.now());
}

TEST_F(MediumTest, OverlappingTransmissionsCollide) {
  std::vector<Rx> c_log;
  const RadioId a = add({0, 0}, nullptr);
  const RadioId b = add({20, 0}, nullptr);
  add({10, 0}, &c_log);
  medium_.transmit(a, beacon(), Time::us(100));
  sched_.run_until(Time::us(50));
  medium_.transmit(b, beacon(), Time::us(100));
  sched_.run_all();
  ASSERT_EQ(c_log.size(), 2u);
  EXPECT_TRUE(c_log[0].ctx.collided);
  EXPECT_TRUE(c_log[1].ctx.collided);
  EXPECT_GE(medium_.collisions_observed(), 2u);
}

TEST_F(MediumTest, NonOverlappingDoNotCollide) {
  std::vector<Rx> c_log;
  const RadioId a = add({0, 0}, nullptr);
  const RadioId b = add({20, 0}, nullptr);
  add({10, 0}, &c_log);
  medium_.transmit(a, beacon(), Time::us(100));
  sched_.run_until(Time::us(200));
  medium_.transmit(b, beacon(), Time::us(100));
  sched_.run_all();
  ASSERT_EQ(c_log.size(), 2u);
  EXPECT_FALSE(c_log[0].ctx.collided);
  EXPECT_FALSE(c_log[1].ctx.collided);
}

TEST_F(MediumTest, HiddenTerminalCollision) {
  // a and b are out of range of each other but both audible at c: their
  // concurrent transmissions collide at c even though each sensed idle.
  std::vector<Rx> c_log;
  const RadioId a = add({0, 0}, nullptr);
  const RadioId b = add({200, 0}, nullptr);
  add({100, 0}, &c_log);
  EXPECT_EQ(medium_.busy_until(b), sched_.now());
  medium_.transmit(a, beacon(), Time::us(100));
  EXPECT_EQ(medium_.busy_until(b), sched_.now());  // b cannot hear a
  medium_.transmit(b, beacon(), Time::us(100));
  sched_.run_all();
  ASSERT_EQ(c_log.size(), 2u);
  EXPECT_TRUE(c_log[0].ctx.collided);
}

TEST_F(MediumTest, RemovedRadioStopsReceiving) {
  std::vector<Rx> b_log;
  const RadioId a = add({0, 0}, nullptr);
  const RadioId b = add({10, 0}, &b_log);
  medium_.remove_radio(b);
  medium_.transmit(a, beacon(), Time::us(100));
  sched_.run_all();
  EXPECT_TRUE(b_log.empty());
}

TEST_F(MediumTest, FrameMetadataFilledIn) {
  std::vector<Rx> b_log;
  const RadioId a = add({0, 0}, nullptr);
  add({10, 0}, &b_log);
  sched_.run_until(Time::ms(3));
  const std::uint64_t uid = medium_.transmit(a, beacon(), Time::us(40));
  sched_.run_all();
  ASSERT_EQ(b_log.size(), 1u);
  EXPECT_EQ(b_log[0].frame.tx_uid, uid);
  EXPECT_EQ(b_log[0].frame.air_start, Time::ms(3));
  EXPECT_EQ(b_log[0].frame.air_end, Time::ms(3) + Time::us(40));
}

TEST_F(MediumTest, MovingReceiverEvaluatedAtDelivery) {
  // A radio that moves out of range during a long frame is evaluated at the
  // frame end: it should not receive.
  std::vector<Rx> log;
  const RadioId a = add({0, 0}, nullptr);
  auto pos = std::make_shared<channel::Vec2>(channel::Vec2{10, 0});
  medium_.add_radio([pos] { return *pos; },
                    [&log](const Frame& f, const Medium::RxContext& c) {
                      log.push_back({f, c});
                    });
  medium_.transmit(a, beacon(), Time::ms(1));
  *pos = {400, 0};  // teleports away before air end
  sched_.run_all();
  EXPECT_TRUE(log.empty());
}

TEST_F(MediumTest, ChannelsIsolateRadios) {
  std::vector<Rx> b_log;
  const RadioId a = add({0, 0}, nullptr);
  const RadioId b = add({10, 0}, &b_log);
  medium_.set_radio_channel(a, 1);
  medium_.set_radio_channel(b, 6);
  medium_.transmit(a, beacon(), Time::us(100));
  sched_.run_all();
  EXPECT_TRUE(b_log.empty());  // different channel: deaf
  medium_.set_radio_channel(b, 1);
  medium_.transmit(a, beacon(), Time::us(100));
  sched_.run_all();
  EXPECT_EQ(b_log.size(), 1u);
}

TEST_F(MediumTest, NoChannelHearsNothing) {
  std::vector<Rx> b_log;
  const RadioId a = add({0, 0}, nullptr);
  const RadioId b = add({10, 0}, &b_log);
  medium_.set_radio_channel(b, Medium::kNoChannel);  // mid-retune blackout
  medium_.transmit(a, beacon(), Time::us(100));
  sched_.run_all();
  EXPECT_TRUE(b_log.empty());
}

TEST_F(MediumTest, BusyUntilIsPerChannel) {
  const RadioId a = add({0, 0}, nullptr);
  const RadioId b = add({10, 0}, nullptr);
  medium_.set_radio_channel(b, 6);
  medium_.transmit(a, beacon(), Time::ms(2));
  // b is on another channel: the medium looks idle to it.
  EXPECT_EQ(medium_.busy_until(b), sched_.now());
}

TEST_F(MediumTest, MidFrameRetuneLosesFrame) {
  std::vector<Rx> b_log;
  const RadioId a = add({0, 0}, nullptr);
  const RadioId b = add({10, 0}, &b_log);
  medium_.transmit(a, beacon(), Time::ms(1));
  sched_.run_until(Time::us(500));
  medium_.set_radio_channel(b, 6);  // retunes away mid-frame
  sched_.run_all();
  EXPECT_TRUE(b_log.empty());
}

TEST_F(MediumTest, CaptureEffectStrongFrameSurvives) {
  // With a power oracle, the much-stronger of two overlapping frames is
  // decodable; the weaker one is marked collided.
  std::vector<Rx> c_log;
  const RadioId a = add({0, 0}, nullptr);    // strong (close to listener)
  const RadioId b = add({100, 0}, nullptr);  // weak (far)
  add({5, 0}, &c_log);
  medium_.set_power_oracle([](RadioId tx, channel::Vec2 at) {
    const double d = tx == RadioId{0} ? channel::distance({0, 0}, at)
                                      : channel::distance({100, 0}, at);
    return -40.0 - 20.0 * std::log10(std::max(d, 1.0));
  });
  medium_.transmit(a, beacon(), Time::us(100));
  medium_.transmit(b, beacon(), Time::us(100));
  sched_.run_all();
  ASSERT_EQ(c_log.size(), 2u);
  int collided = 0;
  int clean = 0;
  for (const auto& rx : c_log) {
    if (rx.ctx.collided) {
      ++collided;
    } else {
      ++clean;
      EXPECT_EQ(rx.frame.from, a);  // the strong one survives
    }
  }
  EXPECT_EQ(clean, 1);
  EXPECT_EQ(collided, 1);
}

}  // namespace
}  // namespace wgtt::mac
