// Parallel engine tests (DESIGN.md §11): SPSC mailbox FIFO/growth/threading,
// the scheduler's window primitives, conservative lockstep determinism on
// synthetic domain graphs, and the headline contract — run_parallel_city is
// byte-identical (whole wgtt.metrics.v1 snapshots, exact per-client Mbps)
// across worker counts, 20 seeds deep. `--parallel-workers N` is a wall-clock
// knob, never a results knob.
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/parallel_city.h"
#include "sim/parallel.h"
#include "sim/profiler.h"
#include "sim/scheduler.h"
#include "sim/spsc_mailbox.h"
#include "util/units.h"

namespace wgtt {
namespace {

// --- SPSC mailbox ----------------------------------------------------------

sim::CrossEvent make_event(std::uint64_t seq) {
  sim::CrossEvent ev;
  ev.when = Time::ns(static_cast<double>(seq));
  ev.seq = seq;
  return ev;
}

TEST(SpscMailboxTest, FifoSingleThread) {
  sim::SpscMailbox box(8);
  for (std::uint64_t i = 1; i <= 100; ++i) box.push(make_event(i));
  sim::CrossEvent ev;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    ASSERT_TRUE(box.pop(ev));
    EXPECT_EQ(ev.seq, i);
  }
  EXPECT_FALSE(box.pop(ev));
}

TEST(SpscMailboxTest, GrowthAcrossChunksPreservesOrder) {
  // Tiny initial chunk: the push stream crosses several growth boundaries,
  // with pops interleaved so drained chunks get freed mid-stream.
  sim::SpscMailbox box(2);
  sim::CrossEvent ev;
  std::uint64_t next_push = 1;
  std::uint64_t next_pop = 1;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 7; ++i) box.push(make_event(next_push++));
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(box.pop(ev));
      EXPECT_EQ(ev.seq, next_pop++);
    }
  }
  while (box.pop(ev)) EXPECT_EQ(ev.seq, next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscMailboxTest, TwoThreadStressKeepsFifo) {
  sim::SpscMailbox box(4);
  constexpr std::uint64_t kCount = 50000;
  std::thread producer([&box] {
    for (std::uint64_t i = 1; i <= kCount; ++i) box.push(make_event(i));
  });
  std::uint64_t expected = 1;
  std::uint64_t out_of_order = 0;
  sim::CrossEvent ev;
  while (expected <= kCount) {
    if (!box.pop(ev)) continue;
    if (ev.seq != expected) ++out_of_order;
    ++expected;
  }
  producer.join();
  EXPECT_EQ(out_of_order, 0u);
  EXPECT_FALSE(box.pop(ev));
}

TEST(SpscMailboxTest, RacyGrowthAtEmptyBoundaryLosesNothing) {
  // Regression for a TOCTOU in pop(): the consumer observed tail == head,
  // the producer then filled the chunk's remaining capacity and linked a
  // successor, and the consumer — seeing next != nullptr — retired the
  // chunk with live entries still inside. Keep the box hovering at empty
  // with a tiny chunk so nearly every pop takes the retirement path while
  // pushes race chunk growth; a dropped entry shows up as a seq gap (or,
  // if the tail of the stream is lost, as a test timeout).
  sim::SpscMailbox box(2);
  constexpr std::uint64_t kCount = 20000;
  std::thread producer([&box] {
    for (std::uint64_t i = 1; i <= kCount; ++i) {
      box.push(make_event(i));
      if (i % 3 == 0) std::this_thread::yield();
    }
  });
  sim::CrossEvent ev;
  for (std::uint64_t expected = 1; expected <= kCount; ++expected) {
    while (!box.pop(ev)) {
    }
    ASSERT_EQ(ev.seq, expected);
  }
  producer.join();
  EXPECT_FALSE(box.pop(ev));
}

// --- scheduler window primitives -------------------------------------------

TEST(SchedulerWindowTest, RunBeforeIsExclusiveAndKeepsClockUsable) {
  sim::Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(Time::ms(1), [&order] { order.push_back(1); });
  sched.schedule_at(Time::ms(2), [&order] { order.push_back(2); });
  sched.run_before(Time::ms(2));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sched.next_event_time(), Time::ms(2));
  // The clock stopped at the last executed event, so a later window may
  // still inject work anywhere past it — including before the 2 ms event.
  sched.schedule_at(Time::ms(1) + Time::micros(500),
                    [&order] { order.push_back(3); });
  sched.run_until(Time::ms(5));
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(SchedulerWindowTest, NextEventTimeOnEmptyHeap) {
  sim::Scheduler sched;
  EXPECT_EQ(sched.next_event_time(), Time::max());
  sched.schedule_at(Time::ms(3), [] {});
  EXPECT_EQ(sched.next_event_time(), Time::ms(3));
  sched.run_until(Time::ms(4));
  EXPECT_EQ(sched.next_event_time(), Time::max());
}

// --- profiler merge --------------------------------------------------------

TEST(ProfilerMergeTest, MergeFromAddsCellsAndHistograms) {
  sim::EventProfiler a;
  sim::EventProfiler b;
  a.record(sim::EventCategory::kMacTx, 1500);
  a.record(sim::EventCategory::kChannel, 500);
  b.record(sim::EventCategory::kMacTx, 2500);
  b.record(sim::EventCategory::kTimer, 1000);
  a.merge_from(b);
  EXPECT_EQ(a.events(sim::EventCategory::kMacTx), 2u);
  EXPECT_EQ(a.total_ns(sim::EventCategory::kMacTx), 4000u);
  EXPECT_EQ(a.total_events(), 4u);
  EXPECT_EQ(a.total_ns(), 5500u);
  EXPECT_EQ(a.histogram(sim::EventCategory::kMacTx).count(), 2u);
  EXPECT_EQ(a.histogram(sim::EventCategory::kTimer).count(), 1u);
}

// --- synthetic domain graph ------------------------------------------------

struct PingPongRun {
  // One log per domain: each is appended only by the worker executing that
  // domain, so the runs are data-race free at any worker count.
  std::vector<std::string> log_a;
  std::vector<std::string> log_b;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t events = 0;
};

PingPongRun run_ping_pong(int workers) {
  PingPongRun r;
  sim::Scheduler a;
  sim::Scheduler b;
  sim::ParallelEngine::Config cfg;
  cfg.lookahead = Time::ms(1);
  cfg.workers = workers;
  sim::ParallelEngine eng(cfg);
  const int da = eng.add_domain(&a);
  const int db = eng.add_domain(&b);
  const int ab = eng.connect(da, db);
  const int ba = eng.connect(db, da);

  std::function<void()> ping;
  std::function<void()> pong;
  ping = [&] {
    r.log_a.push_back("a@" + std::to_string(a.now().to_seconds()));
    if (a.now() < Time::ms(8)) {
      // Two messages per hop: one due next window, one staged 2.5 windows
      // out — exercises the partition between ready and future entries.
      eng.post(ab, a.now() + Time::ms(1), [&] { pong(); });
      eng.post(ab, a.now() + Time::ms(2) + Time::micros(500), [&] { pong(); });
    }
  };
  pong = [&] {
    r.log_b.push_back("b@" + std::to_string(b.now().to_seconds()));
    if (b.now() < Time::ms(8)) {
      eng.post(ba, b.now() + Time::ms(1), [&] { ping(); });
    }
  };
  a.schedule_at(Time::micros(500), [&] { ping(); });
  eng.run_until(Time::ms(12));
  r.rounds = eng.rounds();
  r.messages = eng.messages_delivered();
  r.events = eng.domain_events(0) + eng.domain_events(1);
  return r;
}

TEST(ParallelEngineTest, PingPongIdenticalAcrossWorkerCounts) {
  const PingPongRun one = run_ping_pong(1);
  ASSERT_FALSE(one.log_a.empty());
  ASSERT_FALSE(one.log_b.empty());
  EXPECT_GT(one.messages, 10u);
  const PingPongRun two = run_ping_pong(2);
  EXPECT_EQ(one.log_a, two.log_a);
  EXPECT_EQ(one.log_b, two.log_b);
  EXPECT_EQ(one.rounds, two.rounds);
  EXPECT_EQ(one.messages, two.messages);
  EXPECT_EQ(one.events, two.events);
}

TEST(ParallelEngineTest, LookaheadViolationClampsDeterministically) {
  sim::Scheduler a;
  sim::Scheduler b;
  sim::ParallelEngine eng(
      sim::ParallelEngine::Config{.lookahead = Time::ms(1), .workers = 1});
  const int da = eng.add_domain(&a);
  const int db = eng.add_domain(&b);
  const int ab = eng.connect(da, db);
  Time delivered = Time::zero();
  a.schedule_at(Time::ms(2), [&] {
    // `when` equal to the sender's clock: one full lookahead short.
    eng.post(ab, Time::ms(2), [&] { delivered = b.now(); });
  });
  eng.run_until(Time::ms(5));
  EXPECT_EQ(eng.lookahead_violations(), 1u);
  EXPECT_EQ(delivered, Time::ms(3));
}

TEST(ParallelEngineTest, WorkerCountClampsToDomains) {
  sim::Scheduler a;
  sim::Scheduler b;
  sim::ParallelEngine eng(
      sim::ParallelEngine::Config{.lookahead = Time::ms(1), .workers = 16});
  eng.add_domain(&a);
  eng.add_domain(&b);
  eng.run_until(Time::ms(2));
  EXPECT_EQ(eng.workers_used(), 2);
}

TEST(ParallelEngineTest, DomainExceptionPropagatesWithoutTerminate) {
  // A throwing domain event must surface from run_until as the original
  // exception after the pool joins — not leave workers parked at the
  // barrier so that joinable thread destructors call std::terminate.
  for (const int workers : {1, 2, 3}) {
    sim::Scheduler a;
    sim::Scheduler b;
    sim::Scheduler c;
    sim::ParallelEngine eng(sim::ParallelEngine::Config{
        .lookahead = Time::ms(1), .workers = workers});
    eng.add_domain(&a);
    eng.add_domain(&b);
    eng.add_domain(&c);
    // Keep every domain busy so non-throwing workers are mid-round (or
    // parked at the barrier) when the failure hits.
    std::function<void(sim::Scheduler&)> tick = [&](sim::Scheduler& s) {
      if (s.now() < Time::ms(20)) {
        s.schedule_at(s.now() + Time::micros(100), [&tick, &s] { tick(s); });
      }
    };
    a.schedule_at(Time::micros(100), [&tick, &a] { tick(a); });
    b.schedule_at(Time::micros(100), [&tick, &b] { tick(b); });
    c.schedule_at(Time::ms(5), [] { throw std::runtime_error("domain boom"); });
    EXPECT_THROW(eng.run_until(Time::ms(20)), std::runtime_error)
        << "workers=" << workers;
  }
}

// --- parallel city ----------------------------------------------------------

scenario::ParallelCityConfig small_city(std::uint64_t seed) {
  scenario::ParallelCityConfig cfg;
  cfg.corridors = 2;
  cfg.aps_per_corridor = 4;
  cfg.clients_per_corridor = 1;
  cfg.udp_rate_mbps = 2.0;
  cfg.drive_span_m = 10.0;
  cfg.seed = seed;
  return cfg;
}

TEST(ParallelCityTest, DownlinkSmoke) {
  scenario::ParallelCityConfig cfg = small_city(7);
  cfg.collect_metrics = true;
  const scenario::ParallelCityResult r = scenario::run_parallel_city(cfg);
  EXPECT_EQ(r.domains, 3);
  EXPECT_EQ(r.workers_used, 1);
  ASSERT_EQ(r.client_mbps.size(), 2u);
  // CBR 2 Mbps over a well-covered corridor: the clients should see most
  // of the offered load once bootstrap settles.
  EXPECT_GT(r.mean_mbps, 1.0);
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_EQ(r.lookahead_violations, 0u);
  EXPECT_GT(r.messages, 100u);  // every data packet crosses the wire
  EXPECT_GT(r.rounds, 100u);
  EXPECT_GT(r.events_executed, 1000u);
  ASSERT_NE(r.metrics, nullptr);
  const auto* rounds = r.metrics->find_counter("parallel.rounds");
  ASSERT_NE(rounds, nullptr);
  EXPECT_EQ(rounds->value(), r.rounds);
  EXPECT_NE(r.metrics->find_counter("parallel.domain0.events"), nullptr);
  EXPECT_NE(r.metrics->find_counter("parallel.domain2.events"), nullptr);
  // No wall-clock gauges in a default snapshot (the record_perf rule) —
  // that is exactly what lets the sweep below compare bytes across N.
  EXPECT_EQ(r.metrics->find_gauge("sim.events_per_sec"), nullptr);
  EXPECT_EQ(r.metrics->find_gauge("sim.profile.threads_used"), nullptr);
}

TEST(ParallelCityTest, ByteIdenticalAcrossWorkersTwentySeeds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    scenario::ParallelCityConfig cfg = small_city(seed);
    cfg.collect_metrics = true;
    const scenario::ParallelCityResult ref = scenario::run_parallel_city(cfg);
    ASSERT_NE(ref.metrics, nullptr);
    const std::string ref_json = ref.metrics->to_json();
    ASSERT_EQ(ref.lookahead_violations, 0u) << "seed " << seed;
    ASSERT_EQ(ref.invariant_violations, 0u) << "seed " << seed;
    for (const int workers : {2, 4}) {
      cfg.workers = workers;
      const scenario::ParallelCityResult r = scenario::run_parallel_city(cfg);
      ASSERT_NE(r.metrics, nullptr);
      // Whole-snapshot byte identity: every counter, gauge and histogram
      // bucket in wgtt.metrics.v1, not a curated subset.
      EXPECT_EQ(r.metrics->to_json(), ref_json)
          << "seed " << seed << " workers " << workers;
      EXPECT_EQ(r.client_mbps, ref.client_mbps)
          << "seed " << seed << " workers " << workers;
      EXPECT_EQ(r.switches, ref.switches);
      EXPECT_EQ(r.events_executed, ref.events_executed);
      EXPECT_EQ(r.rounds, ref.rounds);
      EXPECT_EQ(r.messages, ref.messages);
      EXPECT_EQ(r.lookahead_violations, 0u);
      EXPECT_EQ(r.invariant_violations, 0u);
    }
  }
}

TEST(ParallelCityTest, UplinkByteIdenticalAcrossWorkers) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    scenario::ParallelCityConfig cfg = small_city(seed * 31);
    cfg.uplink = true;
    cfg.collect_metrics = true;
    const scenario::ParallelCityResult ref = scenario::run_parallel_city(cfg);
    ASSERT_NE(ref.metrics, nullptr);
    EXPECT_GT(ref.mean_mbps, 0.5);  // uplink data really crossed the wire
    cfg.workers = 2;
    const scenario::ParallelCityResult r = scenario::run_parallel_city(cfg);
    EXPECT_EQ(r.metrics->to_json(), ref.metrics->to_json()) << "seed " << seed;
    EXPECT_EQ(r.client_mbps, ref.client_mbps) << "seed " << seed;
    EXPECT_EQ(r.lookahead_violations, 0u);
  }
}

// §12 inside §11: each corridor's AP stretch split into two
// ControllerDomains with inter-domain handover live, the whole thing
// running under the parallel engine. The two "domain" notions must
// compose without breaking either contract — byte identity across
// worker counts, zero lookahead violations, zero protocol/ownership
// invariant violations.
TEST(ParallelCityTest, MultiControllerCorridorsByteIdenticalAcrossWorkers) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    scenario::ParallelCityConfig cfg = small_city(seed * 17);
    cfg.aps_per_corridor = 8;  // 2 controller domains of 4 APs each
    cfg.domains_per_corridor = 2;
    cfg.drive_span_m = 30.0;   // long enough to cross the controller cut
    cfg.collect_metrics = true;
    const scenario::ParallelCityResult ref = scenario::run_parallel_city(cfg);
    ASSERT_NE(ref.metrics, nullptr);
    ASSERT_EQ(ref.lookahead_violations, 0u) << "seed " << seed;
    ASSERT_EQ(ref.invariant_violations, 0u) << "seed " << seed;
    cfg.workers = 2;
    const scenario::ParallelCityResult r = scenario::run_parallel_city(cfg);
    EXPECT_EQ(r.metrics->to_json(), ref.metrics->to_json()) << "seed " << seed;
    EXPECT_EQ(r.client_mbps, ref.client_mbps) << "seed " << seed;
    EXPECT_EQ(r.lookahead_violations, 0u);
    EXPECT_EQ(r.invariant_violations, 0u);
  }
}

TEST(ParallelCityTest, RecordPerfExposesThreadAttribution) {
  scenario::ParallelCityConfig cfg = small_city(3);
  cfg.workers = 2;
  cfg.record_perf = true;
  const scenario::ParallelCityResult r = scenario::run_parallel_city(cfg);
  EXPECT_EQ(r.workers_used, 2);
  ASSERT_NE(r.metrics, nullptr);
  const auto* threads = r.metrics->find_gauge("sim.profile.threads_used");
  ASSERT_NE(threads, nullptr);
  EXPECT_EQ(threads->value(), 2.0);
  ASSERT_NE(r.metrics->find_gauge("sim.events_per_sec"), nullptr);
}

TEST(ParallelCityTest, ProfileMergesPerDomainProfilers) {
  scenario::ParallelCityConfig cfg = small_city(4);
  cfg.workers = 3;
  cfg.profile = true;
  const scenario::ParallelCityResult r = scenario::run_parallel_city(cfg);
  ASSERT_NE(r.metrics, nullptr);
  const auto* events = r.metrics->find_counter("sim.profile.events");
  ASSERT_NE(events, nullptr);
  // The merged profile covers every domain's events, not just one worker's.
  EXPECT_EQ(events->value(), r.events_executed);
}

TEST(ParallelCityTest, RejectsNonIsolatedCorridors) {
  scenario::ParallelCityConfig cfg = small_city(1);
  cfg.corridor_gap_m = 100.0;  // within carrier-sense reach: not isolable
  EXPECT_THROW(scenario::run_parallel_city(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace wgtt
