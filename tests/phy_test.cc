// Unit tests for the PHY layer: MCS table, BER/ESNR math, delivery
// probability, airtime accounting, and rate control.
#include <gtest/gtest.h>

#include <vector>

#include "phy/airtime.h"
#include "phy/esnr.h"
#include "phy/mcs.h"
#include "phy/rate_control.h"
#include "util/rng.h"
#include "util/units.h"

namespace wgtt::phy {
namespace {

std::vector<double> flat_csi(double snr_db) {
  return std::vector<double>(static_cast<std::size_t>(kNumSubcarriers), snr_db);
}

TEST(McsTest, TableShape) {
  EXPECT_EQ(all_mcs().size(), 8u);
  // Rates strictly increase with index, as do sensitivity thresholds.
  for (int i = 1; i < kNumMcs; ++i) {
    EXPECT_GT(mcs_info(static_cast<Mcs>(i)).data_rate_mbps,
              mcs_info(static_cast<Mcs>(i - 1)).data_rate_mbps);
    EXPECT_GT(mcs_info(static_cast<Mcs>(i)).min_esnr_db,
              mcs_info(static_cast<Mcs>(i - 1)).min_esnr_db);
  }
  // Top rate matches the paper's "around 70 Mbit/s" (MCS7 short GI).
  EXPECT_NEAR(mcs_info(Mcs::kMcs7).data_rate_mbps, 72.2, 1e-9);
}

TEST(McsTest, HighestMcsForEsnr) {
  EXPECT_EQ(highest_mcs_for_esnr(-10.0), Mcs::kMcs0);
  EXPECT_EQ(highest_mcs_for_esnr(100.0), Mcs::kMcs7);
  EXPECT_EQ(highest_mcs_for_esnr(13.0), Mcs::kMcs3);
  EXPECT_EQ(highest_mcs_for_esnr(13.0, 5.0), Mcs::kMcs1);  // margin derates
}

TEST(McsTest, ModulationBits) {
  EXPECT_EQ(bits_per_symbol(Modulation::kBpsk), 1);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam64), 6);
  EXPECT_EQ(to_string(Modulation::kQam16), "16-QAM");
}

TEST(BerTest, MonotoneDecreasingInSnr) {
  for (auto m : {Modulation::kBpsk, Modulation::kQpsk, Modulation::kQam16,
                 Modulation::kQam64}) {
    double prev = bit_error_rate(m, 0.01);
    for (double snr = 0.1; snr < 1e5; snr *= 3.0) {
      const double cur = bit_error_rate(m, snr);
      EXPECT_LE(cur, prev + 1e-15);
      prev = cur;
    }
  }
}

TEST(BerTest, HigherOrderModulationWorseAtSameSnr) {
  const double snr = from_db(12.0);
  EXPECT_LT(bit_error_rate(Modulation::kBpsk, snr),
            bit_error_rate(Modulation::kQpsk, snr));
  EXPECT_LT(bit_error_rate(Modulation::kQpsk, snr),
            bit_error_rate(Modulation::kQam16, snr));
  EXPECT_LT(bit_error_rate(Modulation::kQam16, snr),
            bit_error_rate(Modulation::kQam64, snr));
}

TEST(BerTest, KnownBpskPoint) {
  // BPSK at 9.6 dB -> BER ~1e-5 (textbook).
  const double ber = bit_error_rate(Modulation::kBpsk, from_db(9.6));
  EXPECT_GT(ber, 1e-6);
  EXPECT_LT(ber, 1e-4);
}

TEST(SnrForBerTest, InverseOfBer) {
  for (auto m : {Modulation::kBpsk, Modulation::kQpsk, Modulation::kQam16,
                 Modulation::kQam64}) {
    for (double target : {1e-2, 1e-3, 1e-5}) {
      const double snr = snr_for_ber(m, target);
      EXPECT_NEAR(bit_error_rate(m, snr), target, target * 0.05);
    }
  }
  EXPECT_THROW(snr_for_ber(Modulation::kBpsk, 0.0), std::invalid_argument);
}

TEST(EsnrTest, FlatChannelEsnrEqualsSnr) {
  // Stay below each modulation's BER floor (where the inverse map
  // saturates and ESNR reports its ceiling).
  for (double snr_db : {2.0, 6.0, 10.0}) {
    EXPECT_NEAR(effective_snr_db(flat_csi(snr_db), Modulation::kBpsk), snr_db, 0.1);
  }
  for (double snr_db : {5.0, 10.0, 13.0}) {
    EXPECT_NEAR(effective_snr_db(flat_csi(snr_db), Modulation::kQpsk), snr_db, 0.1);
  }
  for (double snr_db : {10.0, 15.0, 20.0}) {
    EXPECT_NEAR(effective_snr_db(flat_csi(snr_db), Modulation::kQam16), snr_db, 0.1);
  }
  for (double snr_db : {15.0, 20.0, 25.0}) {
    EXPECT_NEAR(effective_snr_db(flat_csi(snr_db), Modulation::kQam64), snr_db, 0.1);
  }
}

TEST(EsnrTest, FadedSubcarriersDragEsnrBelowMeanSnr) {
  // Half the subcarriers at 25 dB, half at 5 dB: mean SNR (dB of mean
  // power) ~22 dB, but ESNR is dominated by the faded half.
  std::vector<double> csi = flat_csi(25.0);
  for (std::size_t i = 0; i < csi.size(); i += 2) csi[i] = 5.0;
  const double esnr = effective_snr_db(csi, Modulation::kQam16);
  EXPECT_LT(esnr, 12.0);
  EXPECT_GT(esnr, 4.0);
}

TEST(EsnrTest, EmptyCsisThrow) {
  EXPECT_THROW(effective_snr_db({}, Modulation::kBpsk), std::invalid_argument);
}

TEST(EsnrTest, MetricIsMonotoneInUniformSnr) {
  double prev = -100.0;
  for (double snr_db = -5.0; snr_db <= 40.0; snr_db += 2.5) {
    const double e = esnr_metric_db(flat_csi(snr_db));
    EXPECT_GE(e, prev - 1e-9);
    prev = e;
  }
}

TEST(DeliveryProbabilityTest, MonotoneInEsnr) {
  for (const auto& info : all_mcs()) {
    double prev = -1.0;
    for (double esnr = -5.0; esnr <= 40.0; esnr += 1.0) {
      const double p = mpdu_delivery_probability(esnr, info.index, 1500);
      EXPECT_GE(p, prev - 1e-12);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      prev = p;
    }
  }
}

TEST(DeliveryProbabilityTest, SensitivityPointIsHalfForReferenceLength) {
  for (const auto& info : all_mcs()) {
    const double p = mpdu_delivery_probability(info.min_esnr_db, info.index, 1500);
    EXPECT_NEAR(p, 0.5, 1e-9);
  }
}

TEST(DeliveryProbabilityTest, LongerFramesFailMore) {
  const double esnr = mcs_info(Mcs::kMcs4).min_esnr_db + 1.0;
  const double p_short = mpdu_delivery_probability(esnr, Mcs::kMcs4, 200);
  const double p_long = mpdu_delivery_probability(esnr, Mcs::kMcs4, 1500);
  EXPECT_GT(p_short, p_long);
}

TEST(DeliveryProbabilityTest, HighSnrNearCertain) {
  EXPECT_GT(mpdu_delivery_probability(flat_csi(35.0), Mcs::kMcs7, 1500), 0.95);
  EXPECT_LT(mpdu_delivery_probability(flat_csi(0.0), Mcs::kMcs7, 1500), 0.01);
}

TEST(ExpectedGoodputTest, PrefersRobustRateAtLowSnr) {
  // At 8 dB, MCS7's goodput collapses while MCS1's survives.
  const auto csi = flat_csi(8.0);
  EXPECT_GT(expected_goodput_mbps(csi, Mcs::kMcs1, 1500),
            expected_goodput_mbps(csi, Mcs::kMcs7, 1500));
}

TEST(AirtimeTest, PayloadRoundsToSymbols) {
  // 1 byte at MCS0 (7.2 Mbit/s): ~1.1 us -> rounds up to one 4 us symbol.
  const Time t = mpdu_duration(Mcs::kMcs0, 1);
  EXPECT_EQ(t, default_timings().ht_preamble + Time::us(4));
}

TEST(AirtimeTest, HigherMcsIsFaster) {
  const Time slow = ampdu_duration(Mcs::kMcs0, 10'000);
  const Time fast = ampdu_duration(Mcs::kMcs7, 10'000);
  EXPECT_LT(fast, slow);
}

TEST(AirtimeTest, AggregationAmortizesPreamble) {
  // 10 MPDUs aggregated cost far less than 10 singles.
  const Time aggregated = ampdu_duration(Mcs::kMcs7, 15'000);
  const Time singles = mpdu_duration(Mcs::kMcs7, 1'500) * 10;
  EXPECT_LT(aggregated, singles);
}

TEST(AirtimeTest, ControlFrameDurations) {
  EXPECT_GT(block_ack_duration(), Time::zero());
  EXPECT_LT(block_ack_duration(), Time::us(100));
  EXPECT_GT(beacon_duration(), ack_duration());
}

TEST(AirtimeTest, TxopComposition) {
  const Time t = txop_duration(Mcs::kMcs7, 1500, 0);
  const auto& tm = default_timings();
  EXPECT_EQ(t, tm.difs + ampdu_duration(Mcs::kMcs7, 1500) + tm.sifs +
                   block_ack_duration());
  EXPECT_EQ(txop_duration(Mcs::kMcs7, 1500, 3) - t, tm.slot * 3);
}

TEST(MinstrelTest, ConvergesToBestRate) {
  MinstrelLite::Config cfg;
  cfg.sample_fraction = 0.0;  // deterministic for the test
  MinstrelLite rc(cfg, Rng{3});
  // Feed feedback as if MCS4 succeeds fully and anything above fails.
  for (int round = 0; round < 300; ++round) {
    const Mcs pick = rc.select();
    const bool ok = static_cast<int>(pick) <= 4;
    rc.report(pick, 10, ok ? 10 : 0);
  }
  EXPECT_EQ(rc.select(), Mcs::kMcs4);
  EXPECT_GT(rc.success_estimate(Mcs::kMcs4), 0.9);
}

TEST(MinstrelTest, SamplesOtherRates) {
  MinstrelLite::Config cfg;
  cfg.sample_fraction = 0.5;
  MinstrelLite rc(cfg, Rng{4});
  bool saw_non_best = false;
  for (int i = 0; i < 200; ++i) {
    if (rc.select() != Mcs::kMcs7) {
      // With equal initial success the best-throughput pick is MCS7; any
      // other pick is a sample.
      saw_non_best = true;
    }
  }
  EXPECT_TRUE(saw_non_best);
}

TEST(EsnrSelectorTest, TracksCsi) {
  EsnrRateSelector rc(1500, /*margin_db=*/0.0);
  rc.observe_csi(flat_csi(35.0));
  EXPECT_EQ(rc.select(), Mcs::kMcs7);
  rc.observe_csi(flat_csi(10.0));
  const Mcs low = rc.select();
  EXPECT_LE(static_cast<int>(low), 2);
}

TEST(EsnrSelectorTest, MarginDerates) {
  EsnrRateSelector no_margin(1500, 0.0);
  EsnrRateSelector margin(1500, 6.0);
  no_margin.observe_csi(flat_csi(24.0));
  margin.observe_csi(flat_csi(24.0));
  EXPECT_LT(static_cast<int>(margin.select()),
            static_cast<int>(no_margin.select()));
}

TEST(EsnrSelectorTest, RetreatsAfterSustainedFailure) {
  EsnrRateSelector rc(1500, 0.0);
  rc.observe_csi(flat_csi(30.0));
  const Mcs initial = rc.select();
  for (int i = 0; i < 10; ++i) rc.report(rc.select(), 10, 0);
  EXPECT_LT(static_cast<int>(rc.select()), static_cast<int>(initial));
}

// Parameterized property: for every MCS, delivery probability at its
// sensitivity + 4 dB exceeds 0.9, and at sensitivity - 4 dB is below 0.1
// (the logistic waterfall is centred and steep).
class WaterfallProperty : public ::testing::TestWithParam<int> {};

TEST_P(WaterfallProperty, SteepAroundSensitivity) {
  const Mcs mcs = static_cast<Mcs>(GetParam());
  const double sens = mcs_info(mcs).min_esnr_db;
  EXPECT_GT(mpdu_delivery_probability(sens + 4.0, mcs, 1500), 0.9);
  EXPECT_LT(mpdu_delivery_probability(sens - 4.0, mcs, 1500), 0.1);
}

INSTANTIATE_TEST_SUITE_P(AllMcs, WaterfallProperty, ::testing::Range(0, kNumMcs));

}  // namespace
}  // namespace wgtt::phy
