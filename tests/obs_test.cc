// Tests for the observability layer: metrics instruments, registry
// snapshots, the flight-recorder ring, span timers, and the end-to-end
// consistency of the controller's switch-time histogram against the
// tracer's per-switch record of the same protocol runs.
#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "mobility/trajectory.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span_timer.h"
#include "scenario/wgtt_system.h"
#include "trace/tracer.h"
#include "transport/udp.h"
#include "util/stats.h"

namespace wgtt::obs {
namespace {

TEST(CounterTest, IncrementAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetOverwrites) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(HistogramTest, EmptyAnswersZero) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(HistogramTest, SingleSampleExactAtEveryPercentile) {
  Histogram h(0.0, 60.0, 240);
  h.observe(17.25);
  for (double q : {0.0, 0.01, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(q), 17.25) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.min(), 17.25);
  EXPECT_DOUBLE_EQ(h.max(), 17.25);
  EXPECT_DOUBLE_EQ(h.sum(), 17.25);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, UnderflowOverflowClampToObservedExtrema) {
  Histogram h(0.0, 10.0, 10);
  h.observe(-5.0);  // underflow
  h.observe(5.0);   // bucket
  h.observe(25.0);  // overflow
  h.observe(30.0);  // overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 30.0);
  // Every percentile stays inside the observed range even though half the
  // samples fell outside [lo, hi).
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    const double p = h.percentile(q);
    EXPECT_GE(p, -5.0) << "q=" << q;
    EXPECT_LE(p, 30.0) << "q=" << q;
  }
  // The top of the distribution lives in the overflow segment.
  EXPECT_GE(h.percentile(1.0), 10.0);
}

TEST(HistogramTest, UniformDistributionWithinOneBucketWidth) {
  // 1000 samples uniform over [0, 1000) with 10-wide buckets: the
  // interpolated estimate must land within one bucket width of the exact
  // order statistic.
  Histogram h(0.0, 1000.0, 100);
  std::vector<double> xs;
  xs.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    const double x = static_cast<double>(i);
    h.observe(x);
    xs.push_back(x);
  }
  const double bucket_width = 10.0;
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(h.percentile(q), wgtt::percentile(xs, q), bucket_width)
        << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 999.0);
  EXPECT_DOUBLE_EQ(h.mean(), 499.5);
}

TEST(RegistryTest, GetOrCreateReturnsSameInstrument) {
  MetricsRegistry r;
  Counter& c1 = r.counter("x.count");
  c1.inc(3);
  Counter& c2 = r.counter("x.count");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 3u);

  Gauge& g1 = r.gauge("x.depth");
  EXPECT_EQ(&g1, &r.gauge("x.depth"));

  // First registration's bucket layout wins.
  Histogram& h1 = r.histogram("x.lat_ms", 0.0, 10.0, 10);
  Histogram& h2 = r.histogram("x.lat_ms", 0.0, 999.0, 7);
  EXPECT_EQ(&h1, &h2);
  EXPECT_DOUBLE_EQ(h2.hi(), 10.0);
  EXPECT_EQ(h2.num_buckets(), 10u);

  EXPECT_EQ(r.find_counter("x.count"), &c1);
  EXPECT_EQ(r.find_counter("no.such"), nullptr);
  EXPECT_EQ(r.find_gauge("no.such"), nullptr);
  EXPECT_EQ(r.find_histogram("x.lat_ms"), &h1);
}

TEST(RegistryTest, SnapshotIsDeterministic) {
  // Two registries populated with the same values in different orders must
  // serialize byte-for-byte identically (std::map sorts the names).
  auto populate = [](MetricsRegistry& r, bool reversed) {
    const std::vector<std::string> counters = {"b.two", "a.one", "c.three"};
    for (std::size_t k = 0; k < counters.size(); ++k) {
      const auto& name =
          reversed ? counters[counters.size() - 1 - k] : counters[k];
      r.counter(name);
    }
    r.counter("a.one").inc(7);
    r.counter("b.two").inc(11);
    r.gauge("z.gauge").set(2.5);
    r.gauge("a.gauge").set(-4.0);
    Histogram& h = r.histogram("m.lat_ms", 0.0, 100.0, 20);
    h.observe(12.0);
    h.observe(55.5);
    h.observe(99.9);
  };
  MetricsRegistry r1;
  MetricsRegistry r2;
  populate(r1, false);
  populate(r2, true);
  const std::string j1 = r1.to_json();
  const std::string j2 = r2.to_json();
  EXPECT_EQ(j1, j2);
  EXPECT_NE(j1.find("\"schema\": \"wgtt.metrics.v1\""), std::string::npos);
  EXPECT_NE(j1.find("\"a.one\": 7"), std::string::npos);
  EXPECT_NE(j1.find("\"bucket_counts\""), std::string::npos);
}

TEST(FlightRecorderTest, DropOldestStress) {
  // Record 10x the capacity: memory stays at capacity, the drop counter
  // equals the overflow exactly, and the retained window is the newest.
  constexpr std::size_t kCapacity = 1000;
  constexpr std::size_t kPushes = 10 * kCapacity;
  FlightRecorder<std::size_t> fr(kCapacity);
  EXPECT_TRUE(fr.empty());
  for (std::size_t i = 0; i < kPushes; ++i) fr.push(i);
  EXPECT_EQ(fr.capacity(), kCapacity);
  EXPECT_EQ(fr.size(), kCapacity);
  EXPECT_EQ(fr.dropped(), kPushes - kCapacity);
  EXPECT_EQ(fr.at(0), kPushes - kCapacity);  // oldest retained
  EXPECT_EQ(fr.at(kCapacity - 1), kPushes - 1);  // newest
  std::size_t visited = 0;
  std::size_t expect = kPushes - kCapacity;
  fr.for_each([&](std::size_t v) {
    EXPECT_EQ(v, expect++);
    ++visited;
  });
  EXPECT_EQ(visited, kCapacity);
  EXPECT_THROW(fr.at(kCapacity), std::out_of_range);
  fr.clear();
  EXPECT_TRUE(fr.empty());
  EXPECT_EQ(fr.dropped(), 0u);
}

TEST(FlightRecorderTest, ExactCapacityBoundaries) {
  // The wraparound seams: exactly full (no drop yet), one past full (first
  // drop), exactly twice around (window is precisely the second half), and
  // the degenerate capacity-1 ring.
  constexpr std::size_t kCapacity = 64;
  FlightRecorder<std::size_t> fr(kCapacity);
  for (std::size_t i = 0; i < kCapacity; ++i) fr.push(i);
  EXPECT_EQ(fr.size(), kCapacity);
  EXPECT_EQ(fr.dropped(), 0u);
  EXPECT_EQ(fr.at(0), 0u);
  EXPECT_EQ(fr.at(kCapacity - 1), kCapacity - 1);

  fr.push(kCapacity);  // first overwrite
  EXPECT_EQ(fr.size(), kCapacity);
  EXPECT_EQ(fr.dropped(), 1u);
  EXPECT_EQ(fr.at(0), 1u);
  EXPECT_EQ(fr.at(kCapacity - 1), kCapacity);

  for (std::size_t i = kCapacity + 1; i < 2 * kCapacity; ++i) fr.push(i);
  EXPECT_EQ(fr.dropped(), kCapacity);
  EXPECT_EQ(fr.at(0), kCapacity);
  EXPECT_EQ(fr.at(kCapacity - 1), 2 * kCapacity - 1);
  std::size_t expect = kCapacity;
  fr.for_each([&](std::size_t v) { EXPECT_EQ(v, expect++); });
  EXPECT_EQ(expect, 2 * kCapacity);

  FlightRecorder<int> one(1);
  one.push(10);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(one.dropped(), 0u);
  one.push(11);
  one.push(12);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(one.dropped(), 2u);
  EXPECT_EQ(one.at(0), 12);
}

TEST(HistogramMergeTest, EmptySourceIsANoOp) {
  Histogram dst(0.0, 10.0, 10);
  dst.observe(2.0);
  dst.observe(7.5);
  const Histogram empty(0.0, 10.0, 10);
  dst.merge_from(empty);
  // Counts, sum and — critically — the extrema are untouched: an empty
  // source's min()/max() answer 0.0 and must not clobber real ones.
  EXPECT_EQ(dst.count(), 2u);
  EXPECT_DOUBLE_EQ(dst.sum(), 9.5);
  EXPECT_DOUBLE_EQ(dst.min(), 2.0);
  EXPECT_DOUBLE_EQ(dst.max(), 7.5);

  Histogram both_empty(0.0, 10.0, 10);
  both_empty.merge_from(empty);
  EXPECT_EQ(both_empty.count(), 0u);
  EXPECT_DOUBLE_EQ(both_empty.min(), 0.0);
  EXPECT_DOUBLE_EQ(both_empty.max(), 0.0);
}

TEST(HistogramMergeTest, MergeIntoEmptyAdoptsSourceExtrema) {
  Histogram src(0.0, 10.0, 10);
  src.observe(-3.0);  // underflow
  src.observe(4.0);
  src.observe(42.0);  // overflow
  Histogram dst(0.0, 10.0, 10);
  dst.merge_from(src);
  EXPECT_EQ(dst.count(), 3u);
  EXPECT_EQ(dst.underflow(), 1u);
  EXPECT_EQ(dst.overflow(), 1u);
  EXPECT_DOUBLE_EQ(dst.min(), -3.0);
  EXPECT_DOUBLE_EQ(dst.max(), 42.0);
  EXPECT_DOUBLE_EQ(dst.sum(), 43.0);
}

TEST(HistogramMergeTest, MismatchedLayoutIsIgnored) {
  Histogram dst(0.0, 10.0, 10);
  dst.observe(5.0);
  Histogram wider(0.0, 20.0, 10);   // different range
  wider.observe(15.0);
  Histogram finer(0.0, 10.0, 20);   // different bucket count
  finer.observe(1.0);
  dst.merge_from(wider);
  dst.merge_from(finer);
  EXPECT_EQ(dst.count(), 1u);
  EXPECT_DOUBLE_EQ(dst.sum(), 5.0);
  EXPECT_DOUBLE_EQ(dst.max(), 5.0);
}

TEST(RegistryMergeTest, DisjointInstrumentSetsUnion) {
  // Merging registries with disjoint (and partially overlapping) key sets:
  // missing instruments are created, overlapping counters add, gauges take
  // the source's value, disjoint histograms arrive with their own layout.
  MetricsRegistry a;
  a.counter("shared.count").inc(5);
  a.counter("only_a.count").inc(1);
  a.histogram("only_a.lat_ms", 0.0, 10.0, 10).observe(3.0);

  MetricsRegistry b;
  b.counter("shared.count").inc(7);
  b.counter("only_b.count").inc(2);
  b.gauge("only_b.depth").set(4.5);
  b.histogram("only_b.lat_ms", 0.0, 50.0, 25).observe(30.0);

  a.merge_from(b);
  EXPECT_EQ(a.find_counter("shared.count")->value(), 12u);
  EXPECT_EQ(a.find_counter("only_a.count")->value(), 1u);
  EXPECT_EQ(a.find_counter("only_b.count")->value(), 2u);
  EXPECT_DOUBLE_EQ(a.find_gauge("only_b.depth")->value(), 4.5);
  const Histogram* hb = a.find_histogram("only_b.lat_ms");
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(hb->count(), 1u);
  EXPECT_DOUBLE_EQ(hb->hi(), 50.0);
  EXPECT_EQ(hb->num_buckets(), 25u);
  const Histogram* ha = a.find_histogram("only_a.lat_ms");
  ASSERT_NE(ha, nullptr);
  EXPECT_EQ(ha->count(), 1u);
}

TEST(RegistryMergeTest, EmptySourceLeavesSnapshotUnchanged) {
  MetricsRegistry a;
  a.counter("x.count").inc(3);
  a.gauge("x.depth").set(1.5);
  a.histogram("x.lat_ms", 0.0, 10.0, 10).observe(2.0);
  const std::string before = a.to_json();
  const MetricsRegistry empty;
  a.merge_from(empty);
  EXPECT_EQ(a.to_json(), before);
}

TEST(SpanTrackerTest, BeginEndCancel) {
  Histogram sink(0.0, 100.0, 100);
  SpanTracker spans(&sink);
  EXPECT_EQ(spans.open_spans(), 0u);

  spans.begin(7, Time::ms(10));
  spans.begin(8, Time::ms(12));
  EXPECT_EQ(spans.open_spans(), 2u);

  const auto ms = spans.end(7, Time::ms(27));
  ASSERT_TRUE(ms.has_value());
  EXPECT_DOUBLE_EQ(*ms, 17.0);
  EXPECT_EQ(sink.count(), 1u);
  EXPECT_DOUBLE_EQ(sink.max(), 17.0);

  // Ending an unknown key observes nothing.
  EXPECT_FALSE(spans.end(99, Time::ms(30)).has_value());
  EXPECT_EQ(sink.count(), 1u);

  // Cancel drops the open span without observing.
  spans.cancel(8);
  EXPECT_EQ(spans.open_spans(), 0u);
  EXPECT_FALSE(spans.end(8, Time::ms(40)).has_value());
  EXPECT_EQ(sink.count(), 1u);

  // begin() restarts an already-open span.
  spans.begin(5, Time::ms(0));
  spans.begin(5, Time::ms(50));
  EXPECT_EQ(spans.open_spans(), 1u);
  EXPECT_DOUBLE_EQ(spans.end(5, Time::ms(60)).value(), 10.0);
}

// End-to-end: drive a client through the picocell chain with BOTH the
// tracer and the metrics registry attached, then check that the
// controller's switch-time histogram tells the same story as the tracer's
// per-switch protocol-duration events.
TEST(MetricsSystemTest, SwitchTimesMatchTracerWithinOneMs) {
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 91;
  scenario::WgttSystem system(cfg);
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(25.0));
  const int c = system.add_client(&drive);
  system.start();

  MetricsRegistry metrics;
  system.enable_metrics(metrics, Time::ms(100));
  trace::Tracer tracer;
  trace::attach(tracer, system);

  transport::UdpSource src(
      system.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        system.server_send(std::move(p));
      },
      {.rate_mbps = 12.0, .client = net::ClientId{static_cast<unsigned>(c)}});
  src.start();
  system.run_until(Time::sec(5));

  const auto switch_ms = tracer.values(trace::EventKind::kSwitchCompleted, c);
  ASSERT_GT(switch_ms.size(), 2u) << "drive produced too few switches";

  const Histogram* h = metrics.find_histogram("controller.switch_time_ms");
  ASSERT_NE(h, nullptr);
  // Every completed switch the tracer saw must be accounted for in the
  // histogram (both hook the same protocol completion).
  EXPECT_EQ(h->count(), switch_ms.size());
  const auto* completed = metrics.find_counter("controller.switches_completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->value(), switch_ms.size());

  // Percentiles from the fixed-bucket histogram agree with the exact
  // order-statistic percentiles of the tracer's samples within 1 ms
  // (bucket width is 0.25 ms).
  for (double q : {0.50, 0.90, 0.99}) {
    EXPECT_NEAR(h->percentile(q), wgtt::percentile(switch_ms, q), 1.0)
        << "q=" << q;
  }
  EXPECT_NEAR(h->sum(), std::accumulate(switch_ms.begin(), switch_ms.end(), 0.0),
              1e-6);

  // The data-path instruments saw traffic too.
  const auto* downlink = metrics.find_counter("controller.downlink_packets");
  ASSERT_NE(downlink, nullptr);
  EXPECT_GT(downlink->value(), 100u);
  const auto* ampdus = metrics.find_counter("mac.ampdus_sent");
  ASSERT_NE(ampdus, nullptr);
  EXPECT_GT(ampdus->value(), 0u);
  const Histogram* occ = metrics.find_histogram("ap.cyclic_occupancy");
  ASSERT_NE(occ, nullptr);
  EXPECT_GT(occ->count(), 0u);
}

// The knobs-at-rest contract (DESIGN.md §6.4-§6.6): merely HAVING the
// observability knobs in DriveConfig — profiler off, a non-default timeline
// tick with no timeline path, a postmortem directory that never triggers —
// must not change one byte of a seeded run's metrics snapshot. 20 seeds,
// each compared against a plain collect_metrics run of the same config.
TEST(KnobsAtRestTest, TwentySeedSnapshotsByteIdentical) {
  scenario::GeometryConfig geo;
  geo.num_aps = 4;  // short drive; 20 seeds x 2 runs must stay CI-friendly
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    benchx::DriveConfig base;
    base.mph = 25.0;
    base.udp_rate_mbps = 8.0;
    base.seed = seed;
    base.geometry = geo;
    base.collect_metrics = true;

    benchx::DriveConfig knobs = base;
    knobs.profile = false;                   // present, off
    knobs.timeline_tick = Time::ms(37);      // present, unused (no path)
    knobs.timeline_path.clear();
    knobs.trace_csv_path.clear();
    // A postmortem dir is armed but the run is healthy, so nothing fires;
    // arming it does attach a Tracer, which must be pure observation.
    knobs.postmortem_dir = ::testing::TempDir() + "wgtt_knobs_at_rest";

    const benchx::DriveResult plain = benchx::run_drive(base);
    const benchx::DriveResult armed = benchx::run_drive(knobs);
    ASSERT_NE(plain.metrics, nullptr);
    ASSERT_NE(armed.metrics, nullptr);
    EXPECT_EQ(armed.invariant_violations, 0u) << "seed " << seed;

    const std::string a = plain.metrics->to_json();
    const std::string b = armed.metrics->to_json();
    EXPECT_EQ(a, b) << "seed " << seed
                    << ": knobs-at-rest run diverged from the seed snapshot";
    // Wall-clock instruments must not leak in uninvited (record_perf rule).
    EXPECT_EQ(b.find("sim.profile."), std::string::npos) << "seed " << seed;
  }
}

}  // namespace
}  // namespace wgtt::obs
