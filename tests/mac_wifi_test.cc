// Tests for the WifiMac state machine: aggregation, block ACK, retransmission,
// duplicate filtering, forwarded-BA injection, beacons, management frames.
//
// The fixture wires two (or three) MACs on one Medium with a controllable
// flat channel per node pair, so tests can set a link to "perfect" or "dead"
// and observe the protocol's reaction deterministically.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mac/medium.h"
#include "mac/wifi_mac.h"
#include "net/packet.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace wgtt::mac {
namespace {

channel::CsiMeasurement flat_csi(double snr_db, Time when) {
  channel::CsiMeasurement m;
  m.when = when;
  m.subcarrier_snr_db.fill(snr_db);
  m.rssi_dbm = -94.0 + snr_db;
  m.mean_snr_db = snr_db;
  return m;
}

net::Packet data_packet(std::size_t bytes = 1400) {
  net::Packet p = net::make_packet();
  p.proto = net::Proto::kUdp;
  p.payload_bytes = bytes;
  return p;
}

class WifiMacTest : public ::testing::Test {
 protected:
  WifiMacTest() : medium_(sched_, {}) {}

  WifiMac& make_mac(channel::Vec2 pos, WifiMac::Config cfg = {}) {
    auto mac = std::make_unique<WifiMac>(sched_, medium_, Rng{seed_++}, cfg);
    WifiMac* raw = mac.get();
    const RadioId id = raw->attach([pos] { return pos; });
    raw->set_channel_sampler([this, id](RadioId peer) {
      return flat_csi(snr(id, peer), sched_.now());
    });
    macs_.push_back(std::move(mac));
    return *raw;
  }

  // Symmetric link SNR table; default 40 dB (perfect).
  static std::pair<std::uint32_t, std::uint32_t> link_key(RadioId a, RadioId b) {
    const auto x = static_cast<std::uint32_t>(a);
    const auto y = static_cast<std::uint32_t>(b);
    return {std::min(x, y), std::max(x, y)};
  }
  double snr(RadioId a, RadioId b) const {
    auto it = snr_.find(link_key(a, b));
    return it == snr_.end() ? 40.0 : it->second;
  }
  void set_snr(RadioId a, RadioId b, double snr_db) {
    snr_[link_key(a, b)] = snr_db;
  }

  sim::Scheduler sched_;
  Medium medium_;
  std::vector<std::unique_ptr<WifiMac>> macs_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> snr_;
  std::uint64_t seed_ = 1000;
};

TEST_F(WifiMacTest, DeliversPacketsOverPerfectLink) {
  WifiMac& tx = make_mac({0, 0});
  WifiMac& rx = make_mac({5, 0});
  tx.add_peer(rx.radio());
  rx.add_peer(tx.radio());
  std::vector<net::Packet> delivered;
  rx.on_deliver = [&](RadioId, const net::Packet& p) { delivered.push_back(p); };
  for (int i = 0; i < 10; ++i) tx.enqueue(rx.radio(), data_packet());
  sched_.run_until(Time::ms(100));
  EXPECT_EQ(delivered.size(), 10u);
  EXPECT_EQ(tx.stats(rx.radio()).mpdus_delivered, 10u);
  EXPECT_EQ(tx.stats(rx.radio()).retransmissions, 0u);
  EXPECT_EQ(tx.queue_depth(rx.radio()), 0u);
}

TEST_F(WifiMacTest, AggregatesQueuedPackets) {
  WifiMac& tx = make_mac({0, 0});
  WifiMac& rx = make_mac({5, 0});
  tx.add_peer(rx.radio());
  rx.add_peer(tx.radio());
  // CSI-driven rate control: at 40 dB it runs MCS7, where the airtime cap
  // admits full 32-MPDU aggregates.
  tx.set_rate_controller(rx.radio(), std::make_unique<phy::EsnrRateSelector>());
  int attempts = 0;
  int total_mpdus = 0;
  tx.on_tx_attempt = [&](RadioId, phy::Mcs, int n) {
    ++attempts;
    total_mpdus += n;
  };
  for (int i = 0; i < 32; ++i) tx.enqueue(rx.radio(), data_packet());
  sched_.run_until(Time::ms(200));
  EXPECT_EQ(total_mpdus, 32);
  // Far fewer attempts than packets: aggregation worked.
  EXPECT_LT(attempts, 10);
}

TEST_F(WifiMacTest, AirtimeCapLimitsLowRateAggregates) {
  WifiMac::Config cfg;
  cfg.max_tx_airtime = Time::millis(4.0);
  WifiMac& tx = make_mac({0, 0}, cfg);
  WifiMac& rx = make_mac({5, 0});
  tx.add_peer(rx.radio());
  rx.add_peer(tx.radio());
  // Force MCS0 via a rate controller that always picks the lowest rate.
  class Mcs0Controller : public phy::RateController {
   public:
    phy::Mcs select() override { return phy::Mcs::kMcs0; }
    void report(phy::Mcs, int, int) override {}
    void observe_csi(std::span<const double>) override {}
  };
  tx.set_rate_controller(rx.radio(), std::make_unique<Mcs0Controller>());
  int max_batch = 0;
  tx.on_tx_attempt = [&](RadioId, phy::Mcs, int n) { max_batch = std::max(max_batch, n); };
  for (int i = 0; i < 32; ++i) tx.enqueue(rx.radio(), data_packet(1400));
  sched_.run_until(Time::ms(500));
  // 4 ms at 7.2 Mbit/s is ~3.6 kB: at most 2-3 MPDUs per aggregate.
  EXPECT_LE(max_batch, 3);
  EXPECT_GE(max_batch, 1);
}

TEST_F(WifiMacTest, RetransmitsOnDeadLinkThenDrops) {
  WifiMac::Config cfg;
  cfg.retry_limit = 3;
  WifiMac& tx = make_mac({0, 0}, cfg);
  WifiMac& rx = make_mac({5, 0});
  tx.add_peer(rx.radio());
  rx.add_peer(tx.radio());
  set_snr(tx.radio(), rx.radio(), -20.0);  // dead link
  tx.enqueue(rx.radio(), data_packet());
  sched_.run_until(Time::sec(2));
  const auto& st = tx.stats(rx.radio());
  EXPECT_EQ(st.mpdus_delivered, 0u);
  EXPECT_EQ(st.mpdus_dropped_retry, 1u);
  EXPECT_GE(st.ba_timeouts, 1u);
  EXPECT_EQ(tx.queue_depth(rx.radio()), 0u);  // eventually gives up
}

TEST_F(WifiMacTest, DuplicateFilterSuppressesRetransmittedDelivery) {
  // Craft the asymmetry the paper fixes with BA forwarding: data gets
  // through but the BA back is lost, so the transmitter retransmits MPDUs
  // the receiver already has. The receiver must deliver each exactly once.
  WifiMac& tx = make_mac({0, 0});
  WifiMac& rx = make_mac({5, 0});
  tx.add_peer(rx.radio());
  rx.add_peer(tx.radio());
  // There is no per-direction SNR knob (reciprocity), so emulate BA loss by
  // a third radio colliding with the BA... simpler: use statistics. Set a
  // marginal link; over many packets some BAs are lost and retransmissions
  // occur, yet deliveries never exceed enqueues.
  set_snr(tx.radio(), rx.radio(), 11.0);
  int delivered = 0;
  rx.on_deliver = [&](RadioId, const net::Packet&) { ++delivered; };
  const int kPackets = 200;
  for (int i = 0; i < kPackets; ++i) tx.enqueue(rx.radio(), data_packet(300));
  sched_.run_until(Time::sec(5));
  EXPECT_LE(delivered, kPackets);
  EXPECT_GT(delivered, kPackets / 2);
  const auto& st = rx.stats(tx.radio());
  // If any retransmission raced a lost BA, duplicates were filtered.
  EXPECT_EQ(st.rx_mpdus_decoded, static_cast<std::uint64_t>(delivered));
}

TEST_F(WifiMacTest, InjectedBlockAckCompletesWithoutRetransmission) {
  WifiMac& tx = make_mac({0, 0});
  WifiMac& rx = make_mac({5, 0});
  tx.add_peer(rx.radio());
  rx.add_peer(tx.radio());
  set_snr(tx.radio(), rx.radio(), -20.0);  // nothing gets through by air
  std::vector<std::uint16_t> seqs;
  tx.on_tx_attempt = [&](RadioId, phy::Mcs, int) {};
  tx.enqueue(rx.radio(), data_packet(), 100);
  tx.enqueue(rx.radio(), data_packet(), 101);
  // Let the first (failing) transmission happen.
  sched_.run_until(Time::ms(20));
  EXPECT_EQ(tx.stats(rx.radio()).mpdus_delivered, 0u);
  // Now a forwarded BA arrives out-of-band claiming both were received.
  BaBitmap ba;
  ba.start_seq = 100;
  ba.set(100);
  ba.set(101);
  tx.inject_block_ack(rx.radio(), ba);
  EXPECT_EQ(tx.stats(rx.radio()).mpdus_delivered, 2u);
  EXPECT_EQ(tx.stats(rx.radio()).mpdus_delivered_via_forwarded_ba, 2u);
  EXPECT_EQ(tx.queue_depth(rx.radio()), 0u);
}

TEST_F(WifiMacTest, ExplicitSequenceNumbersUsed) {
  WifiMac& tx = make_mac({0, 0});
  WifiMac& rx = make_mac({5, 0});
  tx.add_peer(rx.radio());
  rx.add_peer(tx.radio());
  std::vector<std::uint16_t> acked;
  tx.on_mpdu_acked = [&](RadioId, std::uint16_t seq, const net::Packet&) {
    acked.push_back(seq);
  };
  tx.enqueue(rx.radio(), data_packet(), 777);
  tx.enqueue(rx.radio(), data_packet(), 778);
  sched_.run_until(Time::ms(50));
  ASSERT_EQ(acked.size(), 2u);
  EXPECT_EQ(acked[0], 777);
  EXPECT_EQ(acked[1], 778);
}

TEST_F(WifiMacTest, QueueFullDrops) {
  WifiMac::Config cfg;
  cfg.hw_queue_capacity = 4;
  WifiMac& tx = make_mac({0, 0}, cfg);
  WifiMac& rx = make_mac({5, 0});
  tx.add_peer(rx.radio());
  set_snr(tx.radio(), rx.radio(), -20.0);  // keep the queue from draining
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    accepted += tx.enqueue(rx.radio(), data_packet());
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(tx.stats(rx.radio()).enqueue_drops, 6u);
}

TEST_F(WifiMacTest, BeaconsBroadcastPeriodically) {
  WifiMac& ap = make_mac({0, 0});
  WifiMac& client = make_mac({5, 0});
  int beacons_heard = 0;
  client.on_heard = [&](const Frame& f, bool decoded, const channel::CsiMeasurement&) {
    if (std::holds_alternative<BeaconFrame>(f.body) && decoded) ++beacons_heard;
  };
  ap.enable_beacons(Time::ms(100));
  sched_.run_until(Time::ms(1050));
  EXPECT_GE(beacons_heard, 9);
  EXPECT_LE(beacons_heard, 11);
  ap.disable_beacons();
  const int so_far = beacons_heard;
  sched_.run_until(Time::ms(2000));
  EXPECT_EQ(beacons_heard, so_far);
}

TEST_F(WifiMacTest, MgmtFrameDelivery) {
  WifiMac& client = make_mac({0, 0});
  WifiMac& ap = make_mac({5, 0});
  bool got_req = false;
  ap.on_mgmt = [&](RadioId from, MgmtFrame f) {
    EXPECT_EQ(from, client.radio());
    EXPECT_EQ(f.kind, MgmtFrame::Kind::kAssocReq);
    got_req = true;
  };
  client.send_mgmt(ap.radio(), MgmtFrame{MgmtFrame::Kind::kAssocReq});
  sched_.run_until(Time::ms(10));
  EXPECT_TRUE(got_req);
}

TEST_F(WifiMacTest, BssidAddressedFramesAcceptedByApMode) {
  WifiMac::Config ap_cfg;
  ap_cfg.accept_bssid = true;
  WifiMac::Config client_cfg;
  client_cfg.shared_rx_scoreboard = true;
  WifiMac& client = make_mac({0, 0}, client_cfg);
  WifiMac& ap1 = make_mac({5, 0}, ap_cfg);
  WifiMac& ap2 = make_mac({10, 0}, ap_cfg);
  client.set_tx_to_bssid(true);
  client.add_peer(kBssidWgtt);
  ap1.add_peer(client.radio());
  ap2.add_peer(client.radio());
  int got1 = 0;
  int got2 = 0;
  ap1.on_deliver = [&](RadioId, const net::Packet&) { ++got1; };
  ap2.on_deliver = [&](RadioId, const net::Packet&) { ++got2; };
  client.enqueue(kBssidWgtt, data_packet(200));
  sched_.run_until(Time::ms(20));
  // Both APs accept the BSSID-addressed uplink frame (uplink diversity).
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got2, 1);
  // And the client's outstanding aggregate resolves via whichever BA came
  // first (no stuck state).
  EXPECT_EQ(client.queue_depth(kBssidWgtt), 0u);
}

TEST_F(WifiMacTest, SharedScoreboardSurvivesSenderChange) {
  // The WGTT client keeps one downlink dup-filter across APs: the same seq
  // from a second AP (cross-AP retransmission after a switch) must not be
  // delivered twice.
  WifiMac::Config client_cfg;
  client_cfg.shared_rx_scoreboard = true;
  WifiMac& client = make_mac({0, 0}, client_cfg);
  WifiMac& ap1 = make_mac({5, 0});
  WifiMac& ap2 = make_mac({10, 0});
  ap1.add_peer(client.radio());
  ap2.add_peer(client.radio());
  int delivered = 0;
  client.on_deliver = [&](RadioId, const net::Packet&) { ++delivered; };
  net::Packet p = data_packet();
  ap1.enqueue(client.radio(), p, 500);
  sched_.run_until(Time::ms(30));
  ap2.enqueue(client.radio(), p, 500);  // same index from the next AP
  sched_.run_until(Time::ms(60));
  EXPECT_EQ(delivered, 1);
}

TEST_F(WifiMacTest, FlushPeerDropsQueue) {
  WifiMac& tx = make_mac({0, 0});
  WifiMac& rx = make_mac({5, 0});
  tx.add_peer(rx.radio());
  set_snr(tx.radio(), rx.radio(), -20.0);
  for (int i = 0; i < 8; ++i) tx.enqueue(rx.radio(), data_packet());
  EXPECT_GT(tx.queue_depth(rx.radio()), 0u);
  sched_.run_until(Time::sec(2));  // let outstanding tx resolve
  tx.flush_peer(rx.radio());
  EXPECT_EQ(tx.queue_depth(rx.radio()), 0u);
}

TEST_F(WifiMacTest, RoundRobinAcrossPeers) {
  WifiMac& tx = make_mac({0, 0});
  WifiMac& rx1 = make_mac({5, 0});
  WifiMac& rx2 = make_mac({6, 0});
  tx.add_peer(rx1.radio());
  tx.add_peer(rx2.radio());
  rx1.add_peer(tx.radio());
  rx2.add_peer(tx.radio());
  int got1 = 0;
  int got2 = 0;
  rx1.on_deliver = [&](RadioId, const net::Packet&) { ++got1; };
  rx2.on_deliver = [&](RadioId, const net::Packet&) { ++got2; };
  for (int i = 0; i < 20; ++i) {
    tx.enqueue(rx1.radio(), data_packet(300));
    tx.enqueue(rx2.radio(), data_packet(300));
  }
  sched_.run_until(Time::ms(300));
  EXPECT_EQ(got1, 20);
  EXPECT_EQ(got2, 20);
}

}  // namespace
}  // namespace wgtt::mac
