// Unit tests for the discrete-event scheduler and timers.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "sim/scheduler.h"
#include "util/rng.h"

namespace wgtt::sim {
namespace {

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time::ms(3), [&] { order.push_back(3); });
  s.schedule_at(Time::ms(1), [&] { order.push_back(1); });
  s.schedule_at(Time::ms(2), [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), Time::ms(3));
}

TEST(SchedulerTest, SameTimeEventsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(Time::ms(5), [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerTest, ScheduleInIsRelative) {
  Scheduler s;
  Time fired;
  s.schedule_at(Time::ms(10), [&] {
    s.schedule_in(Time::ms(5), [&] { fired = s.now(); });
  });
  s.run_all();
  EXPECT_EQ(fired, Time::ms(15));
}

TEST(SchedulerTest, PastSchedulesClampToNow) {
  Scheduler s;
  s.run_until(Time::ms(10));
  Time fired;
  s.schedule_at(Time::ms(1), [&] { fired = s.now(); });
  s.run_all();
  EXPECT_EQ(fired, Time::ms(10));
  s.schedule_in(Time::ms(-5), [&] { fired = s.now(); });
  s.run_all();
  EXPECT_EQ(fired, Time::ms(10));
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_at(Time::ms(1), [&] { ran = true; });
  s.cancel(id);
  s.run_all();
  EXPECT_FALSE(ran);
  // Cancelling twice or cancelling unknown ids is harmless.
  s.cancel(id);
  s.cancel(EventId{999'999});
}

// Regression (ISSUE 4): the seed's cancel() recorded every id it was handed
// in a tombstone set, so cancelling an already-fired or unknown id grew
// memory forever and made pending() (heap size minus tombstones) underflow
// size_t. Generation-stamped cancellation makes those cancels true no-ops.
TEST(SchedulerTest, CancelFiredOrUnknownKeepsPendingSane) {
  Scheduler s;
  std::vector<EventId> fired_ids;
  for (int i = 0; i < 16; ++i) {
    fired_ids.push_back(s.schedule_at(Time::ms(i), [] {}));
  }
  EXPECT_EQ(s.pending(), 16u);
  s.run_all();
  EXPECT_EQ(s.pending(), 0u);

  // Cancel every fired id (twice), plus a pile of ids that never existed.
  for (const EventId id : fired_ids) {
    s.cancel(id);
    s.cancel(id);
  }
  for (std::uint64_t k = 0; k < 1000; ++k) {
    s.cancel(EventId{(k << 32) | 12345u});
  }
  EXPECT_EQ(s.pending(), 0u);  // the seed reported ~2^64 here

  // The scheduler still works and counts correctly afterwards.
  bool ran = false;
  const EventId live = s.schedule_in(Time::ms(1), [&] { ran = true; });
  EXPECT_EQ(s.pending(), 1u);
  s.cancel(fired_ids[0]);  // stale id again, with a live event present
  EXPECT_EQ(s.pending(), 1u);
  s.run_all();
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.pending(), 0u);
  s.cancel(live);  // now fired; still a no-op
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerTest, CancelledThenCancelledAgainDecrementsPendingOnce) {
  Scheduler s;
  const EventId a = s.schedule_at(Time::ms(1), [] {});
  s.schedule_at(Time::ms(2), [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.cancel(a);  // double-cancel must not decrement again
  EXPECT_EQ(s.pending(), 1u);
  s.run_all();
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.events_executed(), 1u);
}

// A stale EventId whose slot has been recycled for a newer event must not
// cancel that newer event (the generation stamp distinguishes them).
TEST(SchedulerTest, StaleIdDoesNotCancelRecycledSlot) {
  Scheduler s;
  const EventId old_id = s.schedule_at(Time::ms(1), [] {});
  s.cancel(old_id);
  s.run_all();  // pops the tombstoned key, recycling the slot

  bool ran = false;
  s.schedule_at(Time::ms(2), [&] { ran = true; });  // reuses the slot
  s.cancel(old_id);  // stale: same slot, older generation
  s.run_all();
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, CancelReleasesCapturesImmediately) {
  Scheduler s;
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  const EventId id = s.schedule_at(Time::ms(1), [t = std::move(token)] {});
  EXPECT_FALSE(watch.expired());
  s.cancel(id);
  // O(1) cancel destroys the callback (and its captures) right away, not
  // when the dead heap key eventually surfaces.
  EXPECT_TRUE(watch.expired());
  s.run_all();
}

// Ordering contract, locked in across the heap rewrite: an arbitrary
// schedule/cancel interleaving fires exactly the surviving events, in
// (when, seq) order — verified against a simple reference model.
TEST(SchedulerTest, ChurnMatchesReferenceModel) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Scheduler s;
    Rng rng(seed * 7919 + 3);
    struct Ref {
      Time when;
      int tag;
      bool cancelled = false;
    };
    std::vector<Ref> model;
    std::vector<EventId> ids;
    std::vector<int> fired;
    for (int i = 0; i < 400; ++i) {
      if (!ids.empty() && rng.chance(0.3)) {
        // Cancel a random prior event (possibly already cancelled).
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(static_cast<int>(ids.size())));
        s.cancel(ids[pick]);
        model[pick].cancelled = true;
      } else {
        const Time when =
            Time::us(static_cast<std::int64_t>(rng.uniform_int(2'000)));
        const int tag = i;
        ids.push_back(s.schedule_at(when, [&fired, tag] { fired.push_back(tag); }));
        model.push_back(Ref{when, tag});
      }
    }
    s.run_all();

    // Reference order: stable sort by time — equal times keep schedule order.
    std::vector<int> expected;
    std::vector<Ref> survivors;
    for (const auto& r : model) {
      if (!r.cancelled) survivors.push_back(r);
    }
    std::stable_sort(survivors.begin(), survivors.end(),
                     [](const Ref& a, const Ref& b) { return a.when < b.when; });
    for (const auto& r : survivors) expected.push_back(r.tag);
    ASSERT_EQ(fired, expected) << "seed " << seed;
    EXPECT_EQ(s.pending(), 0u);
  }
}

TEST(SchedulerTest, RunUntilStopsAtLimit) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(Time::ms(i), [&] { ++count; });
  }
  s.run_until(Time::ms(5));
  EXPECT_EQ(count, 5);  // events at exactly the limit fire
  EXPECT_EQ(s.now(), Time::ms(5));
  s.run_until(Time::ms(20));
  EXPECT_EQ(count, 10);
  EXPECT_EQ(s.now(), Time::ms(20));  // clock advances to the limit
}

TEST(SchedulerTest, EventsScheduledDuringRunExecute) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_in(Time::ms(1), recurse);
  };
  s.schedule_at(Time::ms(1), recurse);
  s.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), Time::ms(5));
}

TEST(SchedulerTest, StepExecutesOne) {
  Scheduler s;
  int count = 0;
  s.schedule_at(Time::ms(1), [&] { ++count; });
  s.schedule_at(Time::ms(2), [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(count, 2);
}

TEST(SchedulerTest, ExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_in(Time::ms(i), [] {});
  s.run_all();
  EXPECT_EQ(s.events_executed(), 7u);
}

TEST(SchedulerTest, CancelledEventsDontBlockRunUntil) {
  Scheduler s;
  const EventId id = s.schedule_at(Time::ms(1), [] {});
  s.cancel(id);
  bool ran = false;
  s.schedule_at(Time::ms(2), [&] { ran = true; });
  s.run_until(Time::ms(3));
  EXPECT_TRUE(ran);
}

TEST(TimerTest, FiresOnce) {
  Scheduler s;
  int fires = 0;
  Timer t(s, [&] { ++fires; });
  t.start(Time::ms(5));
  EXPECT_TRUE(t.armed());
  s.run_all();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.armed());
}

TEST(TimerTest, RestartReplacesPending) {
  Scheduler s;
  std::vector<Time> fires;
  Timer t(s, [&] { fires.push_back(s.now()); });
  t.start(Time::ms(5));
  t.start(Time::ms(10));  // re-arm: only the second should fire
  s.run_all();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], Time::ms(10));
}

TEST(TimerTest, CancelStops) {
  Scheduler s;
  int fires = 0;
  Timer t(s, [&] { ++fires; });
  t.start(Time::ms(5));
  t.cancel();
  s.run_all();
  EXPECT_EQ(fires, 0);
}

TEST(TimerTest, PeriodicRestartFromCallback) {
  Scheduler s;
  int fires = 0;
  Timer* handle = nullptr;
  Timer t(s, [&] {
    if (++fires < 3) handle->start(Time::ms(1));
  });
  handle = &t;
  t.start(Time::ms(1));
  s.run_until(Time::ms(100));
  EXPECT_EQ(fires, 3);
}

TEST(TimerTest, DestructorCancels) {
  Scheduler s;
  int fires = 0;
  {
    Timer t(s, [&] { ++fires; });
    t.start(Time::ms(1));
  }
  s.run_all();
  EXPECT_EQ(fires, 0);
}

TEST(TimerTest, CancelAfterFireIsHarmless) {
  Scheduler s;
  int fires = 0;
  Timer t(s, [&] { ++fires; });
  t.start(Time::ms(1));
  s.run_all();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.armed());
  // The timeout race: the event fired, then the owner cancels. Must not
  // disturb the scheduler or any later use of the timer.
  t.cancel();
  EXPECT_FALSE(t.armed());
  EXPECT_EQ(s.pending(), 0u);
  t.start(Time::ms(1));
  s.run_all();
  EXPECT_EQ(fires, 2);
}

// The RTO/switch-ack pattern: one Timer restarted thousands of times. Each
// start() must reuse the constructed-once callback (the trampoline is tiny
// and inline), and semantics must hold across heavy restart churn.
TEST(TimerTest, HeavyRestartChurn) {
  Scheduler s;
  int fires = 0;
  Timer t(s, [&] { ++fires; });
  for (int round = 0; round < 1000; ++round) {
    t.start(Time::ms(5));  // restart-while-armed, 999 times
  }
  EXPECT_TRUE(t.armed());
  EXPECT_EQ(s.pending(), 1u);  // exactly one live event despite the churn
  s.run_all();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(s.pending(), 0u);
}

// Callables bigger than InlineCallback's inline buffer fall back to a heap
// allocation but behave identically (captures destroyed on fire/cancel).
TEST(SchedulerTest, OversizedCapturesStillWork) {
  Scheduler s;
  std::array<std::uint64_t, 16> payload{};  // 128 bytes: > kInlineBytes
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i * 3 + 1;
  static_assert(!sim::InlineCallback::fits_inline<decltype([p = payload] {})>());

  std::uint64_t sum = 0;
  s.schedule_at(Time::ms(1), [p = payload, &sum] {
    for (const auto v : p) sum += v;
  });
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  const EventId big =
      s.schedule_at(Time::ms(2), [p = payload, t = std::move(token)] {});
  s.cancel(big);
  EXPECT_TRUE(watch.expired());  // heap-path cancel frees captures too
  s.run_all();
  std::uint64_t expected = 0;
  for (const auto v : payload) expected += v;
  EXPECT_EQ(sum, expected);
}

// Property: N randomly ordered schedules execute in nondecreasing time.
class SchedulerOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerOrderProperty, MonotoneExecution) {
  Scheduler s;
  Rng r(static_cast<std::uint64_t>(GetParam()) * 977 + 1);
  std::vector<Time> executed;
  for (int i = 0; i < 200; ++i) {
    const Time when = Time::us(static_cast<std::int64_t>(r.uniform_int(10'000)));
    s.schedule_at(when, [&executed, &s] { executed.push_back(s.now()); });
  }
  s.run_all();
  ASSERT_EQ(executed.size(), 200u);
  for (std::size_t i = 1; i < executed.size(); ++i) {
    EXPECT_LE(executed[i - 1], executed[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerOrderProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace wgtt::sim
