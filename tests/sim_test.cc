// Unit tests for the discrete-event scheduler and timers.
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.h"
#include "util/rng.h"

namespace wgtt::sim {
namespace {

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time::ms(3), [&] { order.push_back(3); });
  s.schedule_at(Time::ms(1), [&] { order.push_back(1); });
  s.schedule_at(Time::ms(2), [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), Time::ms(3));
}

TEST(SchedulerTest, SameTimeEventsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(Time::ms(5), [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerTest, ScheduleInIsRelative) {
  Scheduler s;
  Time fired;
  s.schedule_at(Time::ms(10), [&] {
    s.schedule_in(Time::ms(5), [&] { fired = s.now(); });
  });
  s.run_all();
  EXPECT_EQ(fired, Time::ms(15));
}

TEST(SchedulerTest, PastSchedulesClampToNow) {
  Scheduler s;
  s.run_until(Time::ms(10));
  Time fired;
  s.schedule_at(Time::ms(1), [&] { fired = s.now(); });
  s.run_all();
  EXPECT_EQ(fired, Time::ms(10));
  s.schedule_in(Time::ms(-5), [&] { fired = s.now(); });
  s.run_all();
  EXPECT_EQ(fired, Time::ms(10));
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_at(Time::ms(1), [&] { ran = true; });
  s.cancel(id);
  s.run_all();
  EXPECT_FALSE(ran);
  // Cancelling twice or cancelling unknown ids is harmless.
  s.cancel(id);
  s.cancel(EventId{999'999});
}

TEST(SchedulerTest, RunUntilStopsAtLimit) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(Time::ms(i), [&] { ++count; });
  }
  s.run_until(Time::ms(5));
  EXPECT_EQ(count, 5);  // events at exactly the limit fire
  EXPECT_EQ(s.now(), Time::ms(5));
  s.run_until(Time::ms(20));
  EXPECT_EQ(count, 10);
  EXPECT_EQ(s.now(), Time::ms(20));  // clock advances to the limit
}

TEST(SchedulerTest, EventsScheduledDuringRunExecute) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_in(Time::ms(1), recurse);
  };
  s.schedule_at(Time::ms(1), recurse);
  s.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), Time::ms(5));
}

TEST(SchedulerTest, StepExecutesOne) {
  Scheduler s;
  int count = 0;
  s.schedule_at(Time::ms(1), [&] { ++count; });
  s.schedule_at(Time::ms(2), [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(count, 2);
}

TEST(SchedulerTest, ExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_in(Time::ms(i), [] {});
  s.run_all();
  EXPECT_EQ(s.events_executed(), 7u);
}

TEST(SchedulerTest, CancelledEventsDontBlockRunUntil) {
  Scheduler s;
  const EventId id = s.schedule_at(Time::ms(1), [] {});
  s.cancel(id);
  bool ran = false;
  s.schedule_at(Time::ms(2), [&] { ran = true; });
  s.run_until(Time::ms(3));
  EXPECT_TRUE(ran);
}

TEST(TimerTest, FiresOnce) {
  Scheduler s;
  int fires = 0;
  Timer t(s, [&] { ++fires; });
  t.start(Time::ms(5));
  EXPECT_TRUE(t.armed());
  s.run_all();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.armed());
}

TEST(TimerTest, RestartReplacesPending) {
  Scheduler s;
  std::vector<Time> fires;
  Timer t(s, [&] { fires.push_back(s.now()); });
  t.start(Time::ms(5));
  t.start(Time::ms(10));  // re-arm: only the second should fire
  s.run_all();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], Time::ms(10));
}

TEST(TimerTest, CancelStops) {
  Scheduler s;
  int fires = 0;
  Timer t(s, [&] { ++fires; });
  t.start(Time::ms(5));
  t.cancel();
  s.run_all();
  EXPECT_EQ(fires, 0);
}

TEST(TimerTest, PeriodicRestartFromCallback) {
  Scheduler s;
  int fires = 0;
  Timer* handle = nullptr;
  Timer t(s, [&] {
    if (++fires < 3) handle->start(Time::ms(1));
  });
  handle = &t;
  t.start(Time::ms(1));
  s.run_until(Time::ms(100));
  EXPECT_EQ(fires, 3);
}

TEST(TimerTest, DestructorCancels) {
  Scheduler s;
  int fires = 0;
  {
    Timer t(s, [&] { ++fires; });
    t.start(Time::ms(1));
  }
  s.run_all();
  EXPECT_EQ(fires, 0);
}

// Property: N randomly ordered schedules execute in nondecreasing time.
class SchedulerOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerOrderProperty, MonotoneExecution) {
  Scheduler s;
  Rng r(static_cast<std::uint64_t>(GetParam()) * 977 + 1);
  std::vector<Time> executed;
  for (int i = 0; i < 200; ++i) {
    const Time when = Time::us(static_cast<std::int64_t>(r.uniform_int(10'000)));
    s.schedule_at(when, [&executed, &s] { executed.push_back(s.now()); });
  }
  s.run_all();
  ASSERT_EQ(executed.size(), 200u);
  for (std::size_t i = 1; i < executed.size(); ++i) {
    EXPECT_LE(executed[i - 1], executed[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerOrderProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace wgtt::sim
