// Tests for the application models: video player buffering, conference
// frame accounting, web page load timing.
#include <gtest/gtest.h>

#include "apps/conference.h"
#include "apps/video.h"
#include "apps/web.h"
#include "sim/scheduler.h"

namespace wgtt::apps {
namespace {

TEST(VideoPlayerTest, WaitsForPrebuffer) {
  sim::Scheduler sched;
  VideoPlayer::Config cfg;
  cfg.video_bitrate_mbps = 2.0;
  cfg.prebuffer = Time::sec(1);
  VideoPlayer player(sched, cfg);
  player.start();
  sched.run_until(Time::ms(500));
  EXPECT_FALSE(player.playing());
  // 1 s of media at 2 Mbit/s = 250 kB.
  player.on_bytes(250'000);
  sched.run_until(Time::ms(600));
  EXPECT_TRUE(player.playing());
}

TEST(VideoPlayerTest, SmoothPlaybackHasZeroRebufferRatio) {
  sim::Scheduler sched;
  VideoPlayer::Config cfg;
  cfg.video_bitrate_mbps = 2.0;
  VideoPlayer player(sched, cfg);
  player.start();
  // Feed media faster than realtime: 2.5 Mbit/s of a 2 Mbit/s stream.
  for (int i = 0; i < 100; ++i) {
    sched.schedule_at(Time::ms(i * 100), [&player] { player.on_bytes(31'250); });
  }
  sched.run_until(Time::sec(10));
  const auto r = player.report();
  EXPECT_EQ(r.rebuffer_events, 0);
  EXPECT_NEAR(r.rebuffer_ratio, 0.0, 1e-9);
}

TEST(VideoPlayerTest, StallsWhenStarved) {
  sim::Scheduler sched;
  VideoPlayer::Config cfg;
  cfg.video_bitrate_mbps = 2.0;
  cfg.prebuffer = Time::ms(500);
  VideoPlayer player(sched, cfg);
  player.start();
  // Enough for prebuffer + ~1 s of playback, then nothing for 3 s.
  player.on_bytes(375'000);  // 1.5 s of media
  sched.run_until(Time::sec(4));
  EXPECT_FALSE(player.playing());
  const auto mid = player.report();
  EXPECT_EQ(mid.rebuffer_events, 1);
  EXPECT_GT(mid.stalled_total, Time::sec(1));
  // Refill: playback resumes and the ratio reflects the stall.
  player.on_bytes(1'000'000);
  sched.run_until(Time::sec(5));
  EXPECT_TRUE(player.playing());
  const auto r = player.report();
  EXPECT_GT(r.rebuffer_ratio, 0.2);
  EXPECT_LT(r.rebuffer_ratio, 0.9);
}

TEST(ConferenceTest, ProfilesMatchPaperApplications) {
  const auto skype = skype_like();
  const auto hangouts = hangouts_like();
  EXPECT_LT(skype.fps, hangouts.fps);          // Hangouts: more fps...
  EXPECT_GT(skype.frame_bytes, hangouts.frame_bytes);  // ...smaller frames
}

TEST(ConferenceTest, SourceEmitsFramesAtRate) {
  sim::Scheduler sched;
  int packets = 0;
  ConferenceSource src(
      sched, [&](net::Packet) { ++packets; }, skype_like(), net::ClientId{0},
      true);
  src.start();
  sched.run_until(Time::sec(1));
  // 30 fps x ceil(10000/1200)=9 packets.
  EXPECT_NEAR(packets, 30 * src.packets_per_frame(), src.packets_per_frame());
  EXPECT_GE(src.frames_sent(), 30u);
}

TEST(ConferenceTest, SinkCountsOnlyCompleteFrames) {
  ConferenceSink sink(skype_like(), 3);
  // Frame 0: all 3 packets -> complete. Frame 1: only 2 -> incomplete.
  net::Packet p = net::make_packet();
  for (std::uint32_t i : {0u, 1u, 2u, 3u, 4u}) {
    p.app_seq = i;
    sink.on_packet(Time::ms(10 * i), p);
  }
  EXPECT_EQ(sink.frames_completed(), 1u);
  const auto fps = sink.fps_samples(Time::sec(1));
  ASSERT_EQ(fps.size(), 1u);
  EXPECT_DOUBLE_EQ(fps[0], 1.0);
}

TEST(ConferenceTest, FpsSamplesBinnedPerSecond) {
  ConferenceSink sink(skype_like(), 1);
  net::Packet p = net::make_packet();
  for (std::uint32_t i = 0; i < 45; ++i) {
    p.app_seq = i;
    // 30 frames in second 0, 15 in second 1.
    sink.on_packet(i < 30 ? Time::ms(i * 30) : Time::ms(1000 + (i - 30) * 60), p);
  }
  const auto fps = sink.fps_samples(Time::sec(2));
  ASSERT_EQ(fps.size(), 2u);
  EXPECT_DOUBLE_EQ(fps[0], 30.0);
  EXPECT_DOUBLE_EQ(fps[1], 15.0);
}

TEST(WebPageLoadTest, CompletesAtPageSize) {
  WebPageLoad load(1'000'000);
  load.begin(Time::sec(1));
  load.on_progress(500'000, Time::sec(2));
  EXPECT_FALSE(load.complete());
  load.on_progress(1'000'000, Time::sec(3));
  ASSERT_TRUE(load.complete());
  EXPECT_EQ(load.load_time().value(), Time::sec(2));
  // Later progress does not change the recorded completion.
  load.on_progress(2'000'000, Time::sec(9));
  EXPECT_EQ(load.load_time().value(), Time::sec(2));
}

TEST(WebPageLoadTest, IncompleteIsInfinity) {
  WebPageLoad load;
  load.begin(Time::zero());
  load.on_progress(100, Time::sec(1));
  EXPECT_FALSE(load.load_time().has_value());  // the paper's "∞" row
  EXPECT_EQ(load.page_bytes(), 2'100'000u);
}

}  // namespace
}  // namespace wgtt::apps
