// Multi-controller domains (DESIGN.md §12): the AP-array partition, the
// inter-domain handover handshake (state transfer, retry/backoff, abort-to-
// source), boundary flap damping, and controller crash/failover — a dead
// domain's APs and clients are adopted by the nearest surviving neighbor
// and the multi-domain invariants (exactly one owner, no orphans, zero
// index regressions) hold throughout.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/domain_map.h"
#include "core/spatial_index.h"
#include "mobility/trajectory.h"
#include "net/messages.h"
#include "scenario/wgtt_system.h"
#include "transport/udp.h"

namespace wgtt {
namespace {

// Oscillates across a point on the road: triangle wave of half-span
// `amp_m` around `center_x` with the given period. The deterministic
// boundary-flapper for the penalty-damping tests.
class PingPongDrive final : public mobility::Trajectory {
 public:
  PingPongDrive(double center_x, double lane_y, double amp_m, Time period)
      : center_x_(center_x), lane_y_(lane_y), amp_m_(amp_m), period_(period) {}

  [[nodiscard]] channel::Vec2 position(Time t) const override {
    const double phase =
        std::fmod(t.to_millis(), period_.to_millis()) / period_.to_millis();
    const double tri =
        phase < 0.5 ? 4.0 * phase - 1.0 : 3.0 - 4.0 * phase;  // [-1, 1]
    return {center_x_ + amp_m_ * tri, lane_y_};
  }
  [[nodiscard]] double speed_mps(Time) const override {
    return 4.0 * amp_m_ / (period_.to_millis() / 1e3);
  }

 private:
  double center_x_;
  double lane_y_;
  double amp_m_;
  Time period_;
};

void attach_traffic(scenario::WgttSystem& sys, int c, double rate_mbps,
                    transport::UdpSink& sink,
                    std::vector<std::unique_ptr<transport::UdpSource>>& srcs) {
  sys.client(c).on_downlink = [&sink, &sys](const net::Packet& p) {
    sink.on_packet(sys.now(), p);
  };
  srcs.push_back(std::make_unique<transport::UdpSource>(
      sys.sched(),
      [&sys, c](net::Packet p) {
        p.client = net::ClientId{static_cast<std::uint32_t>(c)};
        sys.server_send(std::move(p));
      },
      transport::UdpSource::Config{
          .rate_mbps = rate_mbps,
          .client = net::ClientId{static_cast<std::uint32_t>(c)}}));
  srcs.back()->start();
}

// --- the partition ------------------------------------------------------------

TEST(DomainMapTest, EvenSplitCoversContiguously) {
  core::DomainMap map;
  map.build(8, 3);
  EXPECT_EQ(map.num_domains(), 3u);
  EXPECT_EQ(map.num_aps(), 8u);
  // Remainder goes to the leading domains: 3 / 3 / 2.
  EXPECT_EQ(map.first_ap(0), 0u);
  EXPECT_EQ(map.last_ap(0), 3u);
  EXPECT_EQ(map.last_ap(1), 6u);
  EXPECT_EQ(map.last_ap(2), 8u);
  for (std::uint32_t a = 0; a < 8; ++a) {
    const std::uint32_t d = map.domain_of_ap(net::ApId{a});
    EXPECT_GE(a, map.first_ap(d));
    EXPECT_LT(a, map.last_ap(d));
  }
  EXPECT_EQ(map.neighbors(0), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(map.neighbors(1), (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(map.neighbors(2), (std::vector<std::uint32_t>{1}));
}

TEST(DomainMapTest, SegmentAlignedCutsNeverStraddleSegments) {
  // 12 APs at 7.5 m over 30 m cells: segments hold APs {0-3},{4-7},{8-11}.
  core::SpatialIndex index;
  std::vector<double> xs;
  for (int i = 0; i < 12; ++i) xs.push_back(7.5 * i);
  index.build(std::move(xs), 30.0);
  core::DomainMap map;
  map.build(index, 3);
  ASSERT_EQ(map.num_domains(), 3u);
  for (std::uint32_t d = 0; d + 1 < map.num_domains(); ++d) {
    const std::uint32_t cut = map.last_ap(d);
    // The AP just before the cut and the AP at the cut are in different
    // road segments — the cut landed on a segment boundary.
    EXPECT_NE(index.segment_of_ap(static_cast<int>(cut - 1)),
              index.segment_of_ap(static_cast<int>(cut)));
  }
}

TEST(DomainMapTest, NearestAliveBreaksTiesLow) {
  core::DomainMap map;
  map.build(10, 5);
  // Domain 2 dead, 1 and 3 equidistant: everyone must agree on 1.
  EXPECT_EQ(map.nearest_alive(2, {true, true, false, true, true}), 1u);
  // Only a far neighbor left.
  EXPECT_EQ(map.nearest_alive(0, {false, false, false, false, true}), 4u);
  // Nobody alive: sentinel.
  EXPECT_EQ(map.nearest_alive(1, {false, false, false, false, false}), 5u);
}

// Tick-exact PenaltyTimers unit tests live in core_test.cc; here the timers
// are exercised end to end through the flap and abort scenarios below.

// --- inter-domain handover ----------------------------------------------------

TEST(InterDomainHandover, ClientCrossingBoundaryIsHandedOver) {
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 1101;
  cfg.num_domains = 2;
  scenario::WgttSystem sys(cfg);
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
  const int c = sys.add_client(&drive);
  sys.start();
  transport::UdpSink sink;
  std::vector<std::unique_ptr<transport::UdpSource>> srcs;
  attach_traffic(sys, c, 12.0, sink, srcs);
  sys.run_until(Time::sec(9));

  // The client started in domain 0's stretch and ended in domain 1's; its
  // ownership followed it across the boundary via the handshake.
  EXPECT_GE(sys.controller(0).stats().handover_requests, 1u);
  EXPECT_GE(sys.controller(0).stats().handovers_out, 1u);
  EXPECT_GE(sys.controller(1).stats().handovers_in, 1u);
  EXPECT_EQ(sys.owner_domain(c), 1);
  EXPECT_TRUE(sys.controller(1).owns_client(net::ClientId{0}));
  EXPECT_FALSE(sys.controller(0).owns_client(net::ClientId{0}));
  // The serving AP kept following the car into the second domain.
  EXPECT_GE(sys.serving_ap(c), 4);
  // Cross-domain measurement flow existed before the handover: the foreign
  // APs' CSI was relayed to the owner.
  EXPECT_GT(sys.controller(0).stats().csi_forwarded +
                sys.controller(1).stats().csi_forwarded,
            0u);
  // The data plane never stalled.
  EXPECT_GT(sink.throughput().average_mbps(Time::sec(2), Time::sec(9)), 4.0);
  const auto report = sys.check_invariants();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_EQ(report.index_regressions, 0u);
}

TEST(InterDomainHandover, HandshakeSurvivesMessageLoss) {
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 1102;
  cfg.num_domains = 2;
  // One in three handshake messages vanish: the per-message timeout/backoff
  // retry chain must still land the transfer.
  cfg.backhaul.fault(net::MsgKind::kHandoverRequest).loss_rate = 0.3;
  cfg.backhaul.fault(net::MsgKind::kHandoverAck).loss_rate = 0.3;
  scenario::WgttSystem sys(cfg);
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
  const int c = sys.add_client(&drive);
  sys.start();
  transport::UdpSink sink;
  std::vector<std::unique_ptr<transport::UdpSource>> srcs;
  attach_traffic(sys, c, 12.0, sink, srcs);
  sys.run_until(Time::sec(9));

  EXPECT_GE(sys.controller(1).stats().handovers_in, 1u);
  EXPECT_EQ(sys.owner_domain(c), 1);
  EXPECT_GT(sink.throughput().average_mbps(Time::sec(2), Time::sec(9)), 4.0);
  const auto report = sys.check_invariants();
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

TEST(InterDomainHandover, AbortsToSourceWhenTargetNeverAnswers) {
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 1103;
  cfg.num_domains = 2;
  // Every handover request vanishes while heartbeats and gossip still flow:
  // the target looks alive but the handshake can never complete. The
  // bounded retry budget must abort back to the source, arm the penalty,
  // and keep serving the client from the source domain.
  cfg.backhaul.fault(net::MsgKind::kHandoverRequest).loss_rate = 1.0;
  scenario::WgttSystem sys(cfg);
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
  const int c = sys.add_client(&drive);
  sys.start();
  transport::UdpSink sink;
  std::vector<std::unique_ptr<transport::UdpSource>> srcs;
  attach_traffic(sys, c, 12.0, sink, srcs);
  sys.run_until(Time::sec(9));

  const auto& s0 = sys.controller(0).stats();
  EXPECT_GE(s0.handover_requests, 1u);
  EXPECT_GT(s0.handover_retries, 0u);
  EXPECT_GE(s0.handover_aborts, 1u);
  EXPECT_EQ(s0.handovers_out, 0u);
  // After an abort the penalty bars immediate re-attempts toward the target.
  EXPECT_GT(s0.penalty_blocked, 0u);
  // Ownership never moved; the source keeps driving the client (through
  // its own stretch — foreign APs are unreachable targets, so service
  // degrades but never wedges).
  EXPECT_EQ(sys.owner_domain(c), 0);
  EXPECT_GT(sink.throughput().average_mbps(Time::sec(2), Time::sec(9)), 1.0);
  const auto report = sys.check_invariants();
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

TEST(BoundaryFlap, PenaltyTimersDampPingPong) {
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 1104;
  cfg.num_domains = 2;
  cfg.controller.domains.penalty_window = Time::ms(2000);
  scenario::WgttSystem sys(cfg);
  // Flap hard across the domain cut (AP 3 at x=22.5 / AP 4 at x=30): a
  // full crossing every 400 ms, ~20 boundary crossings over the run.
  PingPongDrive flapper(26.25, 0.0, 7.0, Time::ms(800));
  const int c = sys.add_client(&flapper);
  sys.start();
  transport::UdpSink sink;
  std::vector<std::unique_ptr<transport::UdpSource>> srcs;
  attach_traffic(sys, c, 8.0, sink, srcs);
  sys.run_until(Time::sec(8));

  const auto& s0 = sys.controller(0).stats();
  const auto& s1 = sys.controller(1).stats();
  const auto handovers = s0.handovers_out + s1.handovers_out;
  // The client oscillates ~10 full periods, but the per-(client, target)
  // penalty bars a hand-back within 2 s of the last transfer: at most one
  // domain switch per penalty window (plus the very first).
  EXPECT_LE(handovers, 8u / 2u + 1u);
  // The damping actually engaged: attempts were blocked by the bar.
  EXPECT_GT(s0.penalty_blocked + s1.penalty_blocked, 0u);
  EXPECT_GT(sink.throughput().average_mbps(Time::sec(2), Time::sec(8)), 1.0);
  const auto report = sys.check_invariants();
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

// --- controller crash / failover ----------------------------------------------

TEST(ControllerFailover, NeighborAdoptsDeadDomain) {
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 1105;
  cfg.num_domains = 2;
  cfg.controller_faults.push_back({.domain = 1, .crash_at = Time::sec(4)});
  scenario::WgttSystem sys(cfg);
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
  const int c = sys.add_client(&drive);
  sys.start();
  transport::UdpSink sink;
  std::vector<std::unique_ptr<transport::UdpSource>> srcs;
  attach_traffic(sys, c, 12.0, sink, srcs);
  // By t=4 s the car (~6.7 m/s from x=-10) is around x=17, still domain 0;
  // it crosses into domain 1's stretch while domain 1 is a corpse.
  sys.run_until(Time::sec(9));

  const auto& s0 = sys.controller(0).stats();
  EXPECT_GE(s0.peers_marked_dead, 1u);
  // Domain 0 adopted the dead domain's whole AP stretch...
  EXPECT_EQ(s0.aps_adopted, 4u);
  for (int a = 4; a < 8; ++a) {
    EXPECT_EQ(sys.ap(a).controller_node().index, 0u) << "AP " << a;
  }
  // ...and kept the client served across what is now an intra-controller
  // switch into the adopted stretch.
  EXPECT_TRUE(sys.controller(0).owns_client(net::ClientId{0}));
  EXPECT_EQ(sys.owner_domain(c), 0);
  EXPECT_GE(sys.serving_ap(c), 4);
  EXPECT_GT(sink.throughput().average_mbps(Time::sec(5), Time::sec(9)), 2.0);
  const auto report = sys.check_invariants();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_EQ(report.orphaned_clients, 0);
  EXPECT_EQ(report.index_regressions, 0u);
}

TEST(ControllerFailover, OwnerCrashAdoptsFromGossipedWatermark) {
  // The client is already owned and served INSIDE domain 1 when its
  // controller dies: domain 0 must adopt from the last-gossiped state
  // without disturbing the surviving data plane.
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 1106;
  cfg.num_domains = 2;
  cfg.controller_faults.push_back({.domain = 1, .crash_at = Time::sec(3)});
  scenario::WgttSystem sys(cfg);
  mobility::StaticPosition pos({41.0, 0.0});  // deep in domain 1
  const int c = sys.add_client(&pos);
  sys.start();
  transport::UdpSink sink;
  std::vector<std::unique_ptr<transport::UdpSource>> srcs;
  attach_traffic(sys, c, 12.0, sink, srcs);
  sys.run_until(Time::sec(8));

  const auto& s0 = sys.controller(0).stats();
  EXPECT_GE(s0.clients_adopted, 1u);
  EXPECT_TRUE(sys.controller(0).owns_client(net::ClientId{0}));
  // Goodput degrades gracefully across the crash, not to zero.
  EXPECT_GT(sink.throughput().average_mbps(Time::sec(4), Time::sec(8)), 2.0);
  const auto report = sys.check_invariants();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_EQ(report.orphaned_clients, 0);
}

TEST(ControllerFailover, RestartReturnsHomeStretch) {
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 1107;
  cfg.num_domains = 2;
  cfg.controller_faults.push_back(
      {.domain = 1, .crash_at = Time::sec(2), .restart_at = Time::sec(4)});
  scenario::WgttSystem sys(cfg);
  mobility::StaticPosition pos({41.0, 0.0});
  const int c = sys.add_client(&pos);
  sys.start();
  transport::UdpSink sink;
  std::vector<std::unique_ptr<transport::UdpSource>> srcs;
  attach_traffic(sys, c, 12.0, sink, srcs);
  sys.run_until(Time::sec(8));

  const auto& s0 = sys.controller(0).stats();
  EXPECT_GE(s0.peers_recovered, 1u);
  EXPECT_EQ(s0.aps_adopted, 4u);
  EXPECT_EQ(s0.aps_returned, 4u);
  // The home stretch went back to the restarted controller.
  for (int a = 4; a < 8; ++a) {
    EXPECT_EQ(sys.ap(a).controller_node().index, 1u) << "AP " << a;
  }
  EXPECT_GT(sink.throughput().average_mbps(Time::sec(5), Time::sec(8)), 2.0);
  const auto report = sys.check_invariants();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_EQ(report.orphaned_clients, 0);
}

TEST(ControllerFailover, DegradedWithEveryControllerDownThenRecovers) {
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 1108;
  cfg.num_domains = 2;
  cfg.controller_faults.push_back({.domain = 0, .crash_at = Time::sec(2)});
  cfg.controller_faults.push_back(
      {.domain = 1, .crash_at = Time::sec(2), .restart_at = Time::sec(4)});
  scenario::WgttSystem sys(cfg);
  mobility::StaticPosition pos({11.0, 0.0});  // domain 0's stretch
  const int c = sys.add_client(&pos);
  sys.start();
  transport::UdpSink sink;
  std::vector<std::unique_ptr<transport::UdpSource>> srcs;
  attach_traffic(sys, c, 8.0, sink, srcs);
  // [2 s, 4 s): no controller alive anywhere — degraded mode, nobody to
  // adopt anything, and the invariant checker must not cry wolf about it.
  sys.run_until(Time::sec(3));
  EXPECT_TRUE(sys.check_invariants().ok());
  // Domain 1 comes back alone, finds domain 0 dead, and adopts everything.
  sys.run_until(Time::sec(8));
  const auto& s1 = sys.controller(1).stats();
  EXPECT_GE(s1.aps_adopted, 4u);
  EXPECT_TRUE(sys.controller(1).owns_client(net::ClientId{0}));
  EXPECT_GT(sink.throughput().average_mbps(Time::sec(5), Time::sec(8)), 1.0);
  const auto report = sys.check_invariants();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_EQ(report.orphaned_clients, 0);
}

// --- the acceptance sweep: loss x crashes x seeds -----------------------------

TEST(DomainSweep, InvariantsHoldUnderLossAndCrashes) {
  for (const double loss : {0.0, 0.05, 0.2}) {
    for (std::uint64_t seed = 700; seed < 705; ++seed) {
      scenario::WgttSystemConfig cfg;
      cfg.geometry.seed = seed;
      cfg.num_domains = 2;
      for (const auto kind :
           {net::MsgKind::kCsiForward, net::MsgKind::kUplinkForward,
            net::MsgKind::kDownlinkForward, net::MsgKind::kHandoverRequest,
            net::MsgKind::kHandoverAck, net::MsgKind::kDomainHeartbeat,
            net::MsgKind::kDomainHeartbeatAck, net::MsgKind::kDomainSync}) {
        cfg.backhaul.fault(kind).loss_rate = loss;
      }
      cfg.controller_faults.push_back(
          {.domain = 1, .crash_at = Time::sec(3), .restart_at = Time::sec(5)});
      scenario::WgttSystem sys(cfg);
      mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(20.0));
      const int c = sys.add_client(&drive);
      sys.start();
      transport::UdpSink sink;
      std::vector<std::unique_ptr<transport::UdpSource>> srcs;
      attach_traffic(sys, c, 8.0, sink, srcs);
      sys.run_until(Time::sec(8));
      const auto report = sys.check_invariants();
      EXPECT_TRUE(report.ok())
          << "seed " << seed << " loss " << loss << ": "
          << report.violations.front();
      EXPECT_EQ(report.index_regressions, 0u) << "seed " << seed;
      EXPECT_GT(sink.throughput().average_mbps(Time::sec(1), Time::sec(8)),
                0.5)
          << "seed " << seed << " loss " << loss;
    }
  }
}

}  // namespace
}  // namespace wgtt
