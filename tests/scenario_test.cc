// Tests for the testbed geometry and the fully wired WGTT system.
#include <gtest/gtest.h>

#include "mobility/trajectory.h"
#include "scenario/testbed.h"
#include "scenario/wgtt_system.h"
#include "transport/udp.h"

namespace wgtt::scenario {
namespace {

using net::ClientId;

TEST(TrajectoryTest, LineDriveKinematics) {
  mobility::LineDrive d(-20.0, 1.5, 10.0);
  EXPECT_EQ(d.position(Time::zero()), (channel::Vec2{-20.0, 1.5}));
  EXPECT_EQ(d.position(Time::sec(2)), (channel::Vec2{0.0, 1.5}));
  EXPECT_DOUBLE_EQ(d.speed_mps(Time::sec(1)), 10.0);
  EXPECT_EQ(d.time_at_x(0.0), Time::sec(2));
  EXPECT_EQ(d.time_at_x(30.0), Time::sec(5));
}

TEST(TrajectoryTest, DelayedDeparture) {
  mobility::LineDrive d(0.0, 0.0, 5.0, Time::sec(10));
  EXPECT_EQ(d.position(Time::sec(5)).x, 0.0);
  EXPECT_DOUBLE_EQ(d.speed_mps(Time::sec(5)), 0.0);
  EXPECT_EQ(d.position(Time::sec(12)).x, 10.0);
}

TEST(TrajectoryTest, ReverseDirection) {
  mobility::LineDrive d(60.0, 0.0, -10.0);
  EXPECT_EQ(d.position(Time::sec(1)).x, 50.0);
  EXPECT_DOUBLE_EQ(d.speed_mps(Time::sec(1)), 10.0);  // magnitude
  EXPECT_EQ(d.time_at_x(40.0), Time::sec(2));
}

TEST(TrajectoryTest, DriveMphFactory) {
  auto d = mobility::drive_mph(-20.0, 0.0, 15.0);
  EXPECT_NEAR(d->speed_mps(Time::sec(1)), mph_to_mps(15.0), 1e-9);
}

TEST(GeometryTest, ApLayout) {
  GeometryConfig cfg;
  TestbedGeometry geo(cfg);
  EXPECT_EQ(geo.num_aps(), 8);
  EXPECT_EQ(geo.ap_position(0), (channel::Vec2{0.0, 15.0}));
  EXPECT_EQ(geo.ap_position(7), (channel::Vec2{52.5, 15.0}));
  EXPECT_DOUBLE_EQ(geo.last_ap_x(), 52.5);
}

TEST(GeometryTest, OptimalApFollowsClient) {
  GeometryConfig cfg;
  cfg.seed = 2;
  cfg.aim_jitter_m = 0.0;  // clean geometry for the assertion
  cfg.gain_jitter_db = 0.0;
  cfg.link.shadowing_sigma_db = 0.0;
  TestbedGeometry geo(cfg);
  mobility::StaticPosition at_ap1({7.5, 0.0});
  geo.add_client(&at_ap1);
  // Average over fading: the boresight AP wins most instants.
  int ap1_wins = 0;
  for (int ms = 0; ms < 400; ms += 10) {
    if (geo.optimal_ap(0, Time::ms(ms)) == 1) ++ap1_wins;
  }
  EXPECT_GT(ap1_wins, 30);
}

TEST(GeometryTest, LargeScaleSnrPeaksAtBoresight) {
  GeometryConfig cfg;
  cfg.aim_jitter_m = 0.0;
  cfg.gain_jitter_db = 0.0;
  cfg.link.shadowing_sigma_db = 0.0;
  TestbedGeometry geo(cfg);
  mobility::StaticPosition dummy({0.0, 0.0});
  geo.add_client(&dummy);
  const double at_boresight = geo.large_scale_snr_db(3, {22.5, 0.0});
  const double off_5m = geo.large_scale_snr_db(3, {27.5, 0.0});
  const double off_15m = geo.large_scale_snr_db(3, {37.5, 0.0});
  EXPECT_GT(at_boresight, off_5m);
  EXPECT_GT(off_5m, off_15m);
  // Picocell regime: the cell dies within about two cell widths.
  EXPECT_GT(at_boresight - off_15m, 15.0);
}

TEST(GeometryTest, DeterministicAcrossInstances) {
  GeometryConfig cfg;
  cfg.seed = 77;
  TestbedGeometry a(cfg);
  TestbedGeometry b(cfg);
  mobility::StaticPosition pos({10.0, 0.0});
  a.add_client(&pos);
  b.add_client(&pos);
  for (int ap = 0; ap < 8; ++ap) {
    EXPECT_DOUBLE_EQ(a.esnr_db(ap, 0, Time::ms(5)), b.esnr_db(ap, 0, Time::ms(5)));
  }
}

TEST(GeometryTest, GroundTruthQueriesArePure) {
  GeometryConfig cfg;
  cfg.seed = 78;
  TestbedGeometry geo(cfg);
  mobility::StaticPosition pos({10.0, 0.0});
  geo.add_client(&pos);
  const double before = geo.esnr_db(2, 0, Time::ms(5));
  for (int i = 0; i < 100; ++i) geo.optimal_ap(0, Time::ms(i));
  EXPECT_DOUBLE_EQ(geo.esnr_db(2, 0, Time::ms(5)), before);
}

TEST(WgttSystemTest, EndToEndUdpDelivery) {
  WgttSystemConfig cfg;
  cfg.geometry.seed = 21;
  WgttSystem sys(cfg);
  mobility::StaticPosition pos({22.5, 0.0});
  const int c = sys.add_client(&pos);
  sys.start();
  transport::UdpSink sink;
  sys.client(c).on_downlink = [&](const net::Packet& p) {
    sink.on_packet(sys.now(), p);
  };
  transport::UdpSource src(
      sys.sched(),
      [&](net::Packet p) {
        p.client = ClientId{0};
        sys.server_send(std::move(p));
      },
      {.rate_mbps = 10.0, .client = ClientId{0}});
  src.start();
  sys.run_until(Time::sec(4));
  // A parked client near a boresight receives nearly everything.
  EXPECT_GT(sink.throughput().average_mbps(Time::sec(1), Time::sec(4)), 8.0);
  EXPECT_EQ(sink.duplicates(), 0u);
}

TEST(WgttSystemTest, SwitchesWhileDriving) {
  WgttSystemConfig cfg;
  cfg.geometry.seed = 22;
  WgttSystem sys(cfg);
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
  const int c = sys.add_client(&drive);
  sys.start();
  transport::UdpSource src(
      sys.sched(),
      [&](net::Packet p) {
        p.client = ClientId{0};
        sys.server_send(std::move(p));
      },
      {.rate_mbps = 10.0, .client = ClientId{0}});
  sys.client(c).on_downlink = [](const net::Packet&) {};
  src.start();
  sys.run_until(Time::sec(8));
  const auto& st = sys.controller().stats();
  // The paper observes ~5 switches/s at 15 mph.
  EXPECT_GT(st.switches_completed, 10u);
  EXPECT_LT(st.switches_completed, 120u);
  EXPECT_GT(st.csi_reports, 100u);
}

TEST(WgttSystemTest, UplinkDeduplicatedAcrossAps) {
  WgttSystemConfig cfg;
  cfg.geometry.seed = 23;
  WgttSystem sys(cfg);
  mobility::StaticPosition pos({22.5, 0.0});
  const int c = sys.add_client(&pos);
  sys.start();
  int uplinks = 0;
  sys.on_server_uplink = [&](const net::Packet&) { ++uplinks; };
  sys.run_until(Time::sec(1));
  for (int i = 0; i < 20; ++i) {
    net::Packet p = net::make_packet();
    p.proto = net::Proto::kUdp;
    p.payload_bytes = 400;
    sys.client(c).send_uplink(std::move(p));
  }
  sys.run_until(Time::sec(2));
  // Every distinct packet arrives exactly once, although several APs
  // forwarded copies.
  EXPECT_EQ(uplinks, 20);
  EXPECT_GT(sys.controller().stats().uplink_duplicates_dropped, 0u);
}

TEST(WgttSystemTest, SameSeedReproducesExactly) {
  auto run_once = [](std::uint64_t seed) {
    WgttSystemConfig cfg;
    cfg.geometry.seed = seed;
    WgttSystem sys(cfg);
    mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(25.0));
    const int c = sys.add_client(&drive);
    sys.start();
    std::uint64_t bytes = 0;
    sys.client(c).on_downlink = [&](const net::Packet& p) {
      bytes += p.payload_bytes;
    };
    transport::UdpSource src(
        sys.sched(),
        [&](net::Packet p) {
          p.client = ClientId{0};
          sys.server_send(std::move(p));
        },
        {.rate_mbps = 12.0, .client = ClientId{0}});
    src.start();
    sys.run_until(Time::sec(5));
    return std::make_pair(bytes, sys.controller().stats().switches_completed);
  };
  net::reset_packet_uids();
  const auto a = run_once(99);
  net::reset_packet_uids();
  const auto b = run_once(99);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  net::reset_packet_uids();
  const auto c = run_once(100);
  EXPECT_NE(a.first, c.first);  // different world, different outcome
}

TEST(WgttSystemTest, ServingApReportedAndChanges) {
  WgttSystemConfig cfg;
  cfg.geometry.seed = 24;
  WgttSystem sys(cfg);
  mobility::LineDrive drive(0.0, 0.0, mph_to_mps(25.0));
  const int c = sys.add_client(&drive);
  sys.start();
  EXPECT_EQ(sys.serving_ap(c), -1);  // before bootstrap
  std::vector<int> timeline;
  sys.controller().on_serving_changed = [&](ClientId, net::ApId ap, Time) {
    timeline.push_back(static_cast<int>(net::index_of(ap)));
  };
  sys.run_until(Time::sec(10));
  EXPECT_GE(timeline.size(), 3u);
  EXPECT_NE(sys.serving_ap(c), -1);
  // The serving AP trends forward along the road overall.
  EXPECT_GT(timeline.back(), timeline.front());
}

}  // namespace
}  // namespace wgtt::scenario
