// Unit tests for packets, backhaul messages, and the simulated Ethernet.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/backhaul.h"
#include "net/ids.h"
#include "net/messages.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace wgtt::net {
namespace {

TEST(PacketTest, UidsUniqueAndResettable) {
  reset_packet_uids();
  const Packet a = make_packet();
  const Packet b = make_packet();
  EXPECT_NE(a.uid, b.uid);
  EXPECT_EQ(a.uid, 1u);
  reset_packet_uids();
  EXPECT_EQ(make_packet().uid, 1u);
}

TEST(PacketTest, SizeAccounting) {
  Packet p = make_packet();
  p.proto = Proto::kUdp;
  p.payload_bytes = 1400;
  EXPECT_EQ(p.ip_bytes(), 1400 + kIpUdpHeaderBytes);
  EXPECT_EQ(p.air_bytes(), p.ip_bytes() + kMacHeaderBytes);
  EXPECT_EQ(p.tunnel_bytes(), p.ip_bytes() + kTunnelHeaderBytes);
  p.proto = Proto::kTcp;
  EXPECT_EQ(p.ip_bytes(), 1400 + kIpTcpHeaderBytes);
}

TEST(MessagesTest, WireBytes) {
  Packet p = make_packet();
  p.payload_bytes = 1000;
  EXPECT_EQ(wire_bytes(DownlinkData{p, 5}), p.tunnel_bytes());
  EXPECT_EQ(wire_bytes(UplinkData{ApId{0}, p}), p.tunnel_bytes());
  EXPECT_EQ(wire_bytes(StopMsg{}), 64u);
  EXPECT_EQ(wire_bytes(StartMsg{}), 64u);
  EXPECT_EQ(wire_bytes(SwitchAck{}), 64u);
  // CSI: 56 subcarriers x 2 B + headers (paper §3.1.1 packs CSI in UDP).
  EXPECT_GT(wire_bytes(CsiReport{}), 112u);
  EXPECT_GT(wire_bytes(AssocSync{}), 0u);
  EXPECT_GT(wire_bytes(BlockAckForward{}), 0u);
  EXPECT_EQ(wire_bytes(Heartbeat{}), 64u);
  EXPECT_EQ(wire_bytes(HeartbeatAck{}), 64u);
}

TEST(MessagesTest, ControlClassification) {
  EXPECT_TRUE(is_control(BackhaulMessage{StopMsg{}}));
  EXPECT_TRUE(is_control(BackhaulMessage{StartMsg{}}));
  EXPECT_TRUE(is_control(BackhaulMessage{SwitchAck{}}));
  // Liveness probes ride the control class: they must not queue behind a
  // bulk data burst, or heartbeat RTT would measure the data backlog.
  EXPECT_TRUE(is_control(BackhaulMessage{Heartbeat{}}));
  EXPECT_TRUE(is_control(BackhaulMessage{HeartbeatAck{}}));
  EXPECT_FALSE(is_control(BackhaulMessage{DownlinkData{}}));
  EXPECT_FALSE(is_control(BackhaulMessage{CsiReport{}}));
  EXPECT_FALSE(is_control(BackhaulMessage{BlockAckForward{}}));
}

TEST(NodeIdTest, IdentityAndHash) {
  EXPECT_EQ(NodeId::controller(), NodeId::controller());
  EXPECT_EQ(NodeId::ap(ApId{3}), NodeId::ap(ApId{3}));
  EXPECT_NE(NodeId::ap(ApId{3}), NodeId::ap(ApId{4}));
  EXPECT_NE(NodeId::controller(), NodeId::ap(ApId{0}));
  std::hash<NodeId> h;
  EXPECT_NE(h(NodeId::controller()), h(NodeId::ap(ApId{0})));
}

class BackhaulTest : public ::testing::Test {
 protected:
  sim::Scheduler sched_;
};

TEST_F(BackhaulTest, DeliversWithLatency) {
  Backhaul bh(sched_, {}, Rng{1});
  Time delivered_at;
  bool got = false;
  bh.attach(NodeId::controller(), [&](NodeId from, BackhaulMessage msg) {
    EXPECT_EQ(from, NodeId::ap(ApId{2}));
    EXPECT_TRUE(std::holds_alternative<SwitchAck>(msg));
    delivered_at = sched_.now();
    got = true;
  });
  bh.attach(NodeId::ap(ApId{2}), [](NodeId, BackhaulMessage) {});
  bh.send(NodeId::ap(ApId{2}), NodeId::controller(), SwitchAck{});
  sched_.run_all();
  EXPECT_TRUE(got);
  EXPECT_GT(delivered_at, Time::zero());
  EXPECT_LT(delivered_at, Time::ms(1));  // GigE switch: tens of microseconds
}

TEST_F(BackhaulTest, LargerMessagesTakeLonger) {
  Backhaul::Config cfg;
  cfg.jitter_max = Time::zero();
  Backhaul bh(sched_, cfg, Rng{1});
  Time small_at;
  Time big_at;
  int count = 0;
  bh.attach(NodeId::controller(), [&](NodeId, BackhaulMessage msg) {
    if (std::holds_alternative<StopMsg>(msg)) small_at = sched_.now();
    if (std::holds_alternative<DownlinkData>(msg)) big_at = sched_.now();
    ++count;
  });
  bh.attach(NodeId::ap(ApId{0}), [](NodeId, BackhaulMessage) {});
  Packet p = make_packet();
  p.payload_bytes = 1400;
  bh.send(NodeId::ap(ApId{0}), NodeId::controller(), StopMsg{});
  bh.send(NodeId::ap(ApId{0}), NodeId::controller(), DownlinkData{p, 0});
  sched_.run_all();
  EXPECT_EQ(count, 2);
  EXPECT_LT(small_at, big_at);
}

TEST_F(BackhaulTest, UnattachedDestinationThrows) {
  Backhaul bh(sched_, {}, Rng{1});
  bh.attach(NodeId::ap(ApId{0}), [](NodeId, BackhaulMessage) {});
  EXPECT_THROW(bh.send(NodeId::ap(ApId{0}), NodeId::controller(), StopMsg{}),
               std::logic_error);
}

TEST_F(BackhaulTest, LossInjection) {
  Backhaul::Config cfg;
  cfg.loss_rate = 1.0;
  Backhaul bh(sched_, cfg, Rng{1});
  int got = 0;
  bh.attach(NodeId::controller(), [&](NodeId, BackhaulMessage) { ++got; });
  bh.attach(NodeId::ap(ApId{0}), [](NodeId, BackhaulMessage) {});
  for (int i = 0; i < 10; ++i) {
    bh.send(NodeId::ap(ApId{0}), NodeId::controller(), SwitchAck{});
  }
  sched_.run_all();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(bh.messages_dropped(), 10u);
  EXPECT_EQ(bh.messages_sent(), 10u);
}

TEST_F(BackhaulTest, PartialLossStatistics) {
  Backhaul::Config cfg;
  cfg.loss_rate = 0.3;
  Backhaul bh(sched_, cfg, Rng{5});
  int got = 0;
  bh.attach(NodeId::controller(), [&](NodeId, BackhaulMessage) { ++got; });
  bh.attach(NodeId::ap(ApId{0}), [](NodeId, BackhaulMessage) {});
  for (int i = 0; i < 2000; ++i) {
    bh.send(NodeId::ap(ApId{0}), NodeId::controller(), SwitchAck{});
  }
  sched_.run_all();
  EXPECT_NEAR(got, 1400, 100);
}

TEST_F(BackhaulTest, HandlerReplacement) {
  Backhaul bh(sched_, {}, Rng{1});
  int first = 0;
  int second = 0;
  bh.attach(NodeId::controller(), [&](NodeId, BackhaulMessage) { ++first; });
  bh.attach(NodeId::ap(ApId{0}), [](NodeId, BackhaulMessage) {});
  bh.send(NodeId::ap(ApId{0}), NodeId::controller(), SwitchAck{});
  // Replace before delivery: the new handler receives it (lookup happens at
  // delivery time).
  bh.attach(NodeId::controller(), [&](NodeId, BackhaulMessage) { ++second; });
  sched_.run_all();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST_F(BackhaulTest, PerFlowFifoDespiteJitter) {
  // Regression test: random per-message jitter must never reorder messages
  // between one (src, dst) pair — the WGTT index stream depends on it.
  // (An early version of the backhaul reordered closely spaced sends,
  // which made rejoining APs replay stale cyclic-queue slots.)
  Backhaul::Config cfg;
  cfg.jitter_max = Time::us(200);  // much larger than the serialization gap
  Backhaul bh(sched_, cfg, Rng{11});
  std::vector<std::uint16_t> received;
  bh.attach(NodeId::ap(ApId{0}), [&](NodeId, BackhaulMessage msg) {
    if (auto* d = std::get_if<DownlinkData>(&msg)) {
      received.push_back(d->index);
    }
  });
  bh.attach(NodeId::controller(), [](NodeId, BackhaulMessage) {});
  for (std::uint16_t i = 0; i < 500; ++i) {
    Packet p = make_packet();
    p.payload_bytes = 100;
    bh.send(NodeId::controller(), NodeId::ap(ApId{0}), DownlinkData{p, i});
  }
  sched_.run_all();
  ASSERT_EQ(received.size(), 500u);
  for (std::uint16_t i = 0; i < 500; ++i) {
    ASSERT_EQ(received[i], i) << "backhaul reordered a flow";
  }
}

TEST_F(BackhaulTest, IndependentFlowsMayInterleave) {
  // FIFO is per flow, not global: flows to different destinations are
  // delivered independently.
  Backhaul::Config cfg;
  cfg.jitter_max = Time::zero();
  Backhaul bh(sched_, cfg, Rng{12});
  std::vector<int> order;
  bh.attach(NodeId::ap(ApId{0}), [&](NodeId, BackhaulMessage) { order.push_back(0); });
  bh.attach(NodeId::ap(ApId{1}), [&](NodeId, BackhaulMessage) { order.push_back(1); });
  Packet big = make_packet();
  big.payload_bytes = 60'000;  // long serialization to AP0
  bh.send(NodeId::controller(), NodeId::ap(ApId{0}), DownlinkData{big, 0});
  bh.send(NodeId::controller(), NodeId::ap(ApId{1}), StopMsg{});
  sched_.run_all();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // the tiny control message was not queued behind
}

TEST(MessagesTest, KindOfMatchesAlternative) {
  EXPECT_EQ(kind_of(BackhaulMessage{DownlinkData{}}), MsgKind::kDownlinkData);
  EXPECT_EQ(kind_of(BackhaulMessage{UplinkData{}}), MsgKind::kUplinkData);
  EXPECT_EQ(kind_of(BackhaulMessage{CsiReport{}}), MsgKind::kCsiReport);
  EXPECT_EQ(kind_of(BackhaulMessage{StopMsg{}}), MsgKind::kStop);
  EXPECT_EQ(kind_of(BackhaulMessage{StartMsg{}}), MsgKind::kStart);
  EXPECT_EQ(kind_of(BackhaulMessage{SwitchAck{}}), MsgKind::kSwitchAck);
  EXPECT_EQ(kind_of(BackhaulMessage{BlockAckForward{}}), MsgKind::kBlockAckForward);
  EXPECT_EQ(kind_of(BackhaulMessage{AssocSync{}}), MsgKind::kAssocSync);
  EXPECT_EQ(kind_of(BackhaulMessage{Heartbeat{}}), MsgKind::kHeartbeat);
  EXPECT_EQ(kind_of(BackhaulMessage{HeartbeatAck{}}), MsgKind::kHeartbeatAck);
}

TEST_F(BackhaulTest, FaultPlanLossTargetsOnlyItsKind) {
  Backhaul::Config cfg;
  cfg.fault(MsgKind::kSwitchAck).loss_rate = 1.0;
  Backhaul bh(sched_, cfg, Rng{7});
  int acks = 0;
  int stops = 0;
  bh.attach(NodeId::controller(), [&](NodeId, BackhaulMessage msg) {
    if (std::holds_alternative<SwitchAck>(msg)) ++acks;
    if (std::holds_alternative<StopMsg>(msg)) ++stops;
  });
  bh.attach(NodeId::ap(ApId{0}), [](NodeId, BackhaulMessage) {});
  for (int i = 0; i < 20; ++i) {
    bh.send(NodeId::ap(ApId{0}), NodeId::controller(), SwitchAck{});
    bh.send(NodeId::ap(ApId{0}), NodeId::controller(), StopMsg{});
  }
  sched_.run_all();
  EXPECT_EQ(acks, 0);
  EXPECT_EQ(stops, 20);
  EXPECT_EQ(bh.fault_dropped(), 20u);
}

TEST_F(BackhaulTest, DropFirstIsDeterministic) {
  Backhaul::Config cfg;
  cfg.fault(MsgKind::kSwitchAck).drop_first = 2;
  Backhaul bh(sched_, cfg, Rng{7});
  int acks = 0;
  bh.attach(NodeId::controller(), [&](NodeId, BackhaulMessage msg) {
    if (std::holds_alternative<SwitchAck>(msg)) ++acks;
  });
  bh.attach(NodeId::ap(ApId{0}), [](NodeId, BackhaulMessage) {});
  for (int i = 0; i < 5; ++i) {
    bh.send(NodeId::ap(ApId{0}), NodeId::controller(), SwitchAck{});
  }
  sched_.run_all();
  // Exactly the first two vanish; the rest pass untouched.
  EXPECT_EQ(acks, 3);
  EXPECT_EQ(bh.fault_dropped(), 2u);
}

TEST_F(BackhaulTest, DuplicationDeliversCopyInOrder) {
  Backhaul::Config cfg;
  cfg.jitter_max = Time::zero();
  cfg.fault(MsgKind::kStart).dup_rate = 1.0;
  Backhaul bh(sched_, cfg, Rng{7});
  std::vector<std::uint16_t> indices;
  bh.attach(NodeId::ap(ApId{1}), [&](NodeId, BackhaulMessage msg) {
    if (const auto* s = std::get_if<StartMsg>(&msg)) {
      indices.push_back(s->first_unsent_index);
    }
  });
  bh.attach(NodeId::ap(ApId{0}), [](NodeId, BackhaulMessage) {});
  bh.send(NodeId::ap(ApId{0}), NodeId::ap(ApId{1}),
          StartMsg{ClientId{0}, ApId{0}, 3, 1});
  bh.send(NodeId::ap(ApId{0}), NodeId::ap(ApId{1}),
          StartMsg{ClientId{0}, ApId{0}, 4, 2});
  sched_.run_all();
  // Each start arrives twice; the copy trails its original and the flow
  // stays in order.
  ASSERT_EQ(indices.size(), 4u);
  EXPECT_EQ(indices[0], 3);
  EXPECT_EQ(indices[1], 3);
  EXPECT_EQ(indices[2], 4);
  EXPECT_EQ(indices[3], 4);
  EXPECT_EQ(bh.messages_duplicated(), 2u);
}

TEST_F(BackhaulTest, InjectedDelayPreservesPerFlowFifo) {
  Backhaul::Config cfg;
  cfg.jitter_max = Time::zero();
  cfg.fault(MsgKind::kDownlinkData).delay_rate = 0.5;
  cfg.fault(MsgKind::kDownlinkData).delay_max = Time::ms(5);
  Backhaul bh(sched_, cfg, Rng{13});
  std::vector<std::uint16_t> received;
  bh.attach(NodeId::ap(ApId{0}), [&](NodeId, BackhaulMessage msg) {
    if (auto* d = std::get_if<DownlinkData>(&msg)) received.push_back(d->index);
  });
  bh.attach(NodeId::controller(), [](NodeId, BackhaulMessage) {});
  for (std::uint16_t i = 0; i < 300; ++i) {
    Packet p = make_packet();
    p.payload_bytes = 100;
    bh.send(NodeId::controller(), NodeId::ap(ApId{0}), DownlinkData{p, i});
  }
  sched_.run_all();
  ASSERT_EQ(received.size(), 300u);
  for (std::uint16_t i = 0; i < 300; ++i) {
    ASSERT_EQ(received[i], i) << "injected delay reordered a flow";
  }
  EXPECT_GT(bh.messages_delayed(), 0u);
}

TEST_F(BackhaulTest, ZeroFaultPlanKeepsSeededRunsIdentical) {
  // Fault injection must be invisible when every knob is zero: the exact
  // same RNG draw sequence, hence bit-identical delivery times. Seeded
  // regression baselines across the repo depend on this.
  auto trace = [](const Backhaul::Config& cfg) {
    sim::Scheduler sched;
    Backhaul bh(sched, cfg, Rng{42});
    std::vector<Time> arrivals;
    bh.attach(NodeId::controller(), [&](NodeId, BackhaulMessage) {
      arrivals.push_back(sched.now());
    });
    bh.attach(NodeId::ap(ApId{0}), [](NodeId, BackhaulMessage) {});
    for (int i = 0; i < 100; ++i) {
      Packet p = make_packet();
      p.payload_bytes = 500;
      bh.send(NodeId::ap(ApId{0}), NodeId::controller(), UplinkData{ApId{0}, p});
    }
    sched.run_all();
    return arrivals;
  };
  Backhaul::Config plain;
  plain.loss_rate = 0.1;
  Backhaul::Config with_plan = plain;  // all FaultPlan knobs still zero
  EXPECT_EQ(trace(plain), trace(with_plan));
}

TEST_F(BackhaulTest, ReorderInjectionEscapesPerFlowFifo) {
  // reorder_rate is the one fault that may break the per-flow FIFO: a
  // reordered message bypasses the clamp (and the watermark update), so
  // later sends genuinely overtake it. Nothing is lost — same multiset,
  // different order.
  Backhaul::Config cfg;
  cfg.jitter_max = Time::zero();
  cfg.fault(MsgKind::kDownlinkData).reorder_rate = 0.3;
  cfg.fault(MsgKind::kDownlinkData).reorder_max = Time::ms(2);
  Backhaul bh(sched_, cfg, Rng{21});
  std::vector<std::uint16_t> received;
  bh.attach(NodeId::ap(ApId{0}), [&](NodeId, BackhaulMessage msg) {
    if (auto* d = std::get_if<DownlinkData>(&msg)) received.push_back(d->index);
  });
  bh.attach(NodeId::controller(), [](NodeId, BackhaulMessage) {});
  for (std::uint16_t i = 0; i < 300; ++i) {
    Packet p = make_packet();
    p.payload_bytes = 100;
    bh.send(NodeId::controller(), NodeId::ap(ApId{0}), DownlinkData{p, i});
  }
  sched_.run_all();
  ASSERT_EQ(received.size(), 300u);  // reorder never drops
  EXPECT_GT(bh.messages_reordered(), 0u);
  bool out_of_order = false;
  for (std::size_t i = 1; i < received.size(); ++i) {
    if (received[i] < received[i - 1]) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order) << "reorder_rate=0.3 never reordered anything";
  std::vector<std::uint16_t> sorted = received;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint16_t i = 0; i < 300; ++i) {
    ASSERT_EQ(sorted[i], i) << "reorder lost or duplicated a message";
  }
}

TEST_F(BackhaulTest, DownNodeDropsAtSendTimeBothDirections) {
  Backhaul bh(sched_, {}, Rng{3});
  int got = 0;
  bh.attach(NodeId::controller(), [&](NodeId, BackhaulMessage) { ++got; });
  bh.attach(NodeId::ap(ApId{0}), [&](NodeId, BackhaulMessage) { ++got; });
  bh.set_node_up(NodeId::ap(ApId{0}), false);
  EXPECT_FALSE(bh.node_up(NodeId::ap(ApId{0})));
  // Nothing in, nothing out: both directions die at the cut cable.
  bh.send(NodeId::controller(), NodeId::ap(ApId{0}), StopMsg{});
  bh.send(NodeId::ap(ApId{0}), NodeId::controller(), SwitchAck{});
  sched_.run_all();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(bh.link_dropped(), 2u);
  // Re-up restores delivery.
  bh.set_node_up(NodeId::ap(ApId{0}), true);
  EXPECT_TRUE(bh.node_up(NodeId::ap(ApId{0})));
  bh.send(NodeId::controller(), NodeId::ap(ApId{0}), StopMsg{});
  sched_.run_all();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(bh.link_dropped(), 2u);
}

TEST_F(BackhaulTest, MessageInFlightTowardDownNodeIsLost) {
  // The cable cut catches messages already on the wire toward the node,
  // but messages the node sent before the cut still arrive (they are past
  // the cut point).
  Backhaul bh(sched_, {}, Rng{3});
  int to_ap = 0;
  int to_ctrl = 0;
  bh.attach(NodeId::controller(), [&](NodeId, BackhaulMessage) { ++to_ctrl; });
  bh.attach(NodeId::ap(ApId{0}), [&](NodeId, BackhaulMessage) { ++to_ap; });
  bh.send(NodeId::controller(), NodeId::ap(ApId{0}), StopMsg{});
  bh.send(NodeId::ap(ApId{0}), NodeId::controller(), SwitchAck{});
  bh.set_node_up(NodeId::ap(ApId{0}), false);  // cut while both are in flight
  sched_.run_all();
  EXPECT_EQ(to_ap, 0);
  EXPECT_EQ(to_ctrl, 1);
  EXPECT_EQ(bh.link_dropped(), 1u);
}

TEST_F(BackhaulTest, FiniteLinkRateSerializesBackToBack) {
  // With the link model on, consecutive messages on one link queue behind
  // each other at the configured rate: message i's arrival is one
  // serialization time after message i-1's.
  Backhaul::Config cfg;
  cfg.jitter_max = Time::zero();
  cfg.link_rate_mbps = 10.0;  // 1000 B => 800 us each
  Backhaul bh(sched_, cfg, Rng{9});
  std::vector<Time> arrivals;
  bh.attach(NodeId::ap(ApId{0}), [&](NodeId, BackhaulMessage) {
    arrivals.push_back(sched_.now());
  });
  bh.attach(NodeId::controller(), [](NodeId, BackhaulMessage) {});
  Packet p = make_packet();
  p.payload_bytes = 1000 - kIpUdpHeaderBytes - kTunnelHeaderBytes;
  const Time ser = Time::micros(1000.0 * 8.0 / cfg.link_rate_mbps);
  for (std::uint16_t i = 0; i < 3; ++i) {
    bh.send(NodeId::controller(), NodeId::ap(ApId{0}), DownlinkData{p, i});
  }
  sched_.run_all();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], ser + cfg.switch_overhead);
  EXPECT_EQ(arrivals[1] - arrivals[0], ser);
  EXPECT_EQ(arrivals[2] - arrivals[1], ser);
}

TEST_F(BackhaulTest, LinkQueueBoundDropsExcessBytes) {
  // A burst past the byte bound is tail-dropped at send time; the drops are
  // visible in queue_drops() and everything admitted still delivers in
  // order.
  Backhaul::Config cfg;
  cfg.jitter_max = Time::zero();
  cfg.link_rate_mbps = 10.0;
  cfg.link_queue_bytes = 4000;  // ~4 x 1000 B messages deep
  Backhaul bh(sched_, cfg, Rng{9});
  std::vector<std::uint16_t> received;
  bh.attach(NodeId::ap(ApId{0}), [&](NodeId, BackhaulMessage msg) {
    if (auto* d = std::get_if<DownlinkData>(&msg)) received.push_back(d->index);
  });
  bh.attach(NodeId::controller(), [](NodeId, BackhaulMessage) {});
  Packet p = make_packet();
  p.payload_bytes = 1000 - kIpUdpHeaderBytes - kTunnelHeaderBytes;
  for (std::uint16_t i = 0; i < 50; ++i) {
    bh.send(NodeId::controller(), NodeId::ap(ApId{0}), DownlinkData{p, i});
  }
  sched_.run_all();
  EXPECT_GT(bh.queue_drops(), 0u);
  EXPECT_EQ(bh.queue_drops(), bh.messages_dropped());
  EXPECT_EQ(received.size() + bh.queue_drops(), 50u);
  for (std::size_t i = 1; i < received.size(); ++i) {
    ASSERT_LT(received[i - 1], received[i]);
  }
  EXPECT_GT(bh.max_link_utilization(sched_.now()), 0.0);
}

TEST_F(BackhaulTest, BatchingCoalescesDeliveriesInOrder) {
  // A quiet window's worth of fan-out traffic arrives as ONE delivery event
  // carrying every message in send order, on one shared timestamp.
  Backhaul::Config cfg;
  cfg.jitter_max = Time::zero();
  cfg.batching = true;
  Backhaul bh(sched_, cfg, Rng{9});
  std::vector<std::uint16_t> received;
  std::vector<Time> arrivals;
  bh.attach(NodeId::ap(ApId{0}), [&](NodeId, BackhaulMessage msg) {
    if (auto* d = std::get_if<DownlinkData>(&msg)) {
      received.push_back(d->index);
      arrivals.push_back(sched_.now());
    }
  });
  bh.attach(NodeId::controller(), [](NodeId, BackhaulMessage) {});
  Packet p = make_packet();
  p.payload_bytes = 500;
  for (std::uint16_t i = 0; i < 10; ++i) {
    bh.send(NodeId::controller(), NodeId::ap(ApId{0}), DownlinkData{p, i});
  }
  sched_.run_all();
  ASSERT_EQ(received.size(), 10u);
  EXPECT_EQ(bh.batches_flushed(), 1u);
  EXPECT_EQ(bh.messages_batched(), 10u);
  for (std::uint16_t i = 0; i < 10; ++i) {
    ASSERT_EQ(received[i], i);
    EXPECT_EQ(arrivals[static_cast<std::size_t>(i)], arrivals[0])
        << "batch members must share one arrival timestamp";
  }
}

TEST_F(BackhaulTest, BatchMaxMsgsBoundsCoalescing) {
  Backhaul::Config cfg;
  cfg.jitter_max = Time::zero();
  cfg.batching = true;
  cfg.batch_max_msgs = 4;
  Backhaul bh(sched_, cfg, Rng{9});
  int got = 0;
  bh.attach(NodeId::ap(ApId{0}), [&](NodeId, BackhaulMessage) { ++got; });
  bh.attach(NodeId::controller(), [](NodeId, BackhaulMessage) {});
  Packet p = make_packet();
  p.payload_bytes = 500;
  for (std::uint16_t i = 0; i < 10; ++i) {
    bh.send(NodeId::controller(), NodeId::ap(ApId{0}), DownlinkData{p, i});
  }
  sched_.run_all();
  EXPECT_EQ(got, 10);
  // 10 sends at max 4 per batch: two full flushes plus the window flush.
  EXPECT_EQ(bh.batches_flushed(), 3u);
}

TEST_F(BackhaulTest, ControlFlushesOpenBatchAndStaysBehindIt) {
  // Non-batchable traffic on a link must empty the open batch first — a
  // stop/start can never overtake data queued before it.
  Backhaul::Config cfg;
  cfg.jitter_max = Time::zero();
  cfg.batching = true;
  Backhaul bh(sched_, cfg, Rng{9});
  std::vector<int> order;  // data indices as-is, stop as -1
  bh.attach(NodeId::ap(ApId{0}), [&](NodeId, BackhaulMessage msg) {
    if (auto* d = std::get_if<DownlinkData>(&msg)) {
      order.push_back(d->index);
    } else if (std::holds_alternative<StopMsg>(msg)) {
      order.push_back(-1);
    }
  });
  bh.attach(NodeId::controller(), [](NodeId, BackhaulMessage) {});
  Packet p = make_packet();
  p.payload_bytes = 500;
  for (std::uint16_t i = 0; i < 3; ++i) {
    bh.send(NodeId::controller(), NodeId::ap(ApId{0}), DownlinkData{p, i});
  }
  bh.send(NodeId::controller(), NodeId::ap(ApId{0}), StopMsg{});
  sched_.run_all();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
  EXPECT_EQ(order[3], -1);
}

TEST_F(BackhaulTest, BatchingPreservesFifoUnderLossDupDelay) {
  // The FIFO-equivalence contract: under loss, duplication and injected
  // delay, a batched flow never overtakes itself — per-flow indices stay
  // non-decreasing, exactly like the per-message path (reorder excepted,
  // tested separately).
  Backhaul::Config cfg;
  cfg.batching = true;
  cfg.batch_max_msgs = 8;
  cfg.fault(MsgKind::kDownlinkData).loss_rate = 0.1;
  cfg.fault(MsgKind::kDownlinkData).dup_rate = 0.1;
  cfg.fault(MsgKind::kDownlinkData).delay_rate = 0.2;
  cfg.fault(MsgKind::kDownlinkData).delay_max = Time::ms(3);
  Backhaul bh(sched_, cfg, Rng{23});
  std::vector<std::uint16_t> received;
  bh.attach(NodeId::ap(ApId{0}), [&](NodeId, BackhaulMessage msg) {
    if (auto* d = std::get_if<DownlinkData>(&msg)) received.push_back(d->index);
  });
  bh.attach(NodeId::controller(), [](NodeId, BackhaulMessage) {});
  for (std::uint16_t i = 0; i < 600; ++i) {
    Packet p = make_packet();
    p.payload_bytes = 200;
    bh.send(NodeId::controller(), NodeId::ap(ApId{0}), DownlinkData{p, i});
  }
  sched_.run_all();
  EXPECT_GT(bh.messages_batched(), 0u);
  EXPECT_GT(bh.messages_dropped(), 0u);
  EXPECT_GT(bh.messages_duplicated(), 0u);
  ASSERT_GT(received.size(), 0u);
  for (std::size_t i = 1; i < received.size(); ++i) {
    ASSERT_GE(received[i], received[i - 1])
        << "batching let the flow overtake itself at delivery " << i;
  }
}

TEST_F(BackhaulTest, ReorderStillEscapesFifoWithBatching) {
  Backhaul::Config cfg;
  cfg.batching = true;
  cfg.fault(MsgKind::kDownlinkData).reorder_rate = 0.2;
  cfg.fault(MsgKind::kDownlinkData).reorder_max = Time::ms(2);
  Backhaul bh(sched_, cfg, Rng{29});
  std::vector<std::uint16_t> received;
  bh.attach(NodeId::ap(ApId{0}), [&](NodeId, BackhaulMessage msg) {
    if (auto* d = std::get_if<DownlinkData>(&msg)) received.push_back(d->index);
  });
  bh.attach(NodeId::controller(), [](NodeId, BackhaulMessage) {});
  for (std::uint16_t i = 0; i < 400; ++i) {
    Packet p = make_packet();
    p.payload_bytes = 200;
    bh.send(NodeId::controller(), NodeId::ap(ApId{0}), DownlinkData{p, i});
  }
  sched_.run_all();
  ASSERT_EQ(received.size(), 400u);  // reorder never drops
  bool out_of_order = false;
  for (std::size_t i = 1; i < received.size(); ++i) {
    if (received[i] < received[i - 1]) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order);
  std::vector<std::uint16_t> sorted = received;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint16_t i = 0; i < 400; ++i) ASSERT_EQ(sorted[i], i);
}

// --- pooled payloads across the backhaul ----------------------------------

/// Builds a pooled DownlinkData whose single reference the message owns
/// (the controller's fan-out pattern after its acquisition ref is dropped).
DownlinkData pooled_msg(PacketPool& pool, std::uint16_t index) {
  Packet p = make_packet();
  p.payload_bytes = 700;
  DownlinkData d;
  d.index = index;
  d.tunnel_bytes = static_cast<std::uint32_t>(p.tunnel_bytes());
  d.handle = pool.acquire(std::move(p));
  return d;
}

TEST_F(BackhaulTest, PooledPayloadRefsDropOnEveryLossPath) {
  // Whatever kills a pooled message — uniform loss, plan loss, a downed
  // link, the queue bound — must drop its pool reference, or the payload
  // leaks forever. Drive each path and end at zero live refs.
  Backhaul::Config cfg;
  cfg.loss_rate = 0.5;
  cfg.link_rate_mbps = 10.0;
  cfg.link_queue_bytes = 2000;  // tight: forces queue drops too
  PacketPool pool;
  Backhaul bh(sched_, cfg, Rng{31});
  bh.set_payload_pool(&pool);
  bh.attach(NodeId::ap(ApId{0}), [&](NodeId, BackhaulMessage msg) {
    if (auto* d = std::get_if<DownlinkData>(&msg)) {
      ASSERT_TRUE(d->pooled());
      pool.drop(d->handle);  // the receiver adopts, then consumes
    }
  });
  bh.attach(NodeId::controller(), [](NodeId, BackhaulMessage) {});
  for (std::uint16_t i = 0; i < 100; ++i) {
    bh.send(NodeId::controller(), NodeId::ap(ApId{0}), pooled_msg(pool, i));
  }
  // And the in-flight-toward-a-downed-node path:
  bh.send(NodeId::controller(), NodeId::ap(ApId{0}), pooled_msg(pool, 100));
  bh.set_node_up(NodeId::ap(ApId{0}), false);
  sched_.run_all();
  EXPECT_GT(bh.messages_dropped(), 0u);
  EXPECT_GT(bh.queue_drops(), 0u);
  EXPECT_EQ(pool.total_refs(), 0u) << "a drop path leaked a payload ref";
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST_F(BackhaulTest, PooledDuplicateCarriesItsOwnRef) {
  Backhaul::Config cfg;
  cfg.fault(MsgKind::kDownlinkData).dup_rate = 1.0;
  PacketPool pool;
  Backhaul bh(sched_, cfg, Rng{31});
  bh.set_payload_pool(&pool);
  int got = 0;
  bh.attach(NodeId::ap(ApId{0}), [&](NodeId, BackhaulMessage msg) {
    if (auto* d = std::get_if<DownlinkData>(&msg)) {
      ++got;
      pool.drop(d->handle);
    }
  });
  bh.attach(NodeId::controller(), [](NodeId, BackhaulMessage) {});
  for (std::uint16_t i = 0; i < 5; ++i) {
    bh.send(NodeId::controller(), NodeId::ap(ApId{0}), pooled_msg(pool, i));
  }
  sched_.run_all();
  EXPECT_EQ(got, 10);  // each original + its copy, each with a live ref
  EXPECT_EQ(pool.total_refs(), 0u);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST_F(BackhaulTest, PooledBatchDropsRefsWithTheCable) {
  // A whole batch lost to a cable cut drops one ref per member.
  Backhaul::Config cfg;
  cfg.batching = true;
  PacketPool pool;
  Backhaul bh(sched_, cfg, Rng{31});
  bh.set_payload_pool(&pool);
  bh.attach(NodeId::ap(ApId{0}), [](NodeId, BackhaulMessage) {
    FAIL() << "nothing may arrive through a cut cable";
  });
  bh.attach(NodeId::controller(), [](NodeId, BackhaulMessage) {});
  for (std::uint16_t i = 0; i < 6; ++i) {
    bh.send(NodeId::controller(), NodeId::ap(ApId{0}), pooled_msg(pool, i));
  }
  bh.set_node_up(NodeId::ap(ApId{0}), false);  // cut while the batch is open
  sched_.run_all();
  EXPECT_EQ(pool.total_refs(), 0u);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(PacketPoolTest, RoundTripsPackets) {
  PacketPool pool;
  Packet p = make_packet();
  p.payload_bytes = 1400;
  p.ip_id = 77;
  const auto h = pool.acquire(std::move(p));
  ASSERT_NE(h, PacketPool::kNullHandle);
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_EQ(pool.get(h)->ip_id, 77);
  const Packet out = pool.release(h);
  EXPECT_EQ(out.ip_id, 77);
  EXPECT_EQ(out.payload_bytes, 1400u);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(PacketPoolTest, RecyclesHandlesAndGrowsByChunks) {
  PacketPool pool;
  // Fill well past one 256-packet chunk, with stable addresses throughout.
  std::vector<PacketPool::Handle> handles;
  std::vector<const Packet*> addrs;
  for (int i = 0; i < 1000; ++i) {
    Packet p = make_packet();
    p.app_seq = static_cast<std::uint32_t>(i);
    handles.push_back(pool.acquire(std::move(p)));
    addrs.push_back(pool.get(handles.back()));
  }
  EXPECT_EQ(pool.in_use(), 1000u);
  EXPECT_GE(pool.capacity(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    // Addresses must not move as later chunks are added.
    EXPECT_EQ(pool.get(handles[static_cast<std::size_t>(i)]),
              addrs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(pool.get(handles[static_cast<std::size_t>(i)])->app_seq,
              static_cast<std::uint32_t>(i));
  }
  for (auto h : handles) pool.release(h);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.peak_in_use(), 1000u);

  // Refilling reuses the freed slots: capacity must not grow.
  const std::size_t cap = pool.capacity();
  for (int i = 0; i < 1000; ++i) {
    handles[static_cast<std::size_t>(i)] = pool.acquire(make_packet());
  }
  EXPECT_EQ(pool.capacity(), cap);
}

TEST(PacketPoolTest, SharedHandleCopiesUntilLastRef) {
  // The fan-out pattern: one acquire, one add_ref per extra holder. Interior
  // releases copy (other holders still read the slot); the last release
  // moves the packet out and recycles the slot.
  PacketPool pool;
  Packet p = make_packet();
  p.payload_bytes = 900;
  p.ip_id = 41;
  const auto h = pool.acquire(std::move(p));
  pool.add_ref(h);
  pool.add_ref(h);
  EXPECT_EQ(pool.ref_count(h), 3u);
  EXPECT_EQ(pool.total_refs(), 3u);
  EXPECT_EQ(pool.in_use(), 1u);  // three refs, ONE packet

  const Packet first = pool.release(h);
  EXPECT_EQ(first.ip_id, 41);
  EXPECT_EQ(pool.ref_count(h), 2u);
  ASSERT_NE(pool.get(h), nullptr);
  EXPECT_EQ(pool.get(h)->ip_id, 41) << "interior release must copy, not move";

  const Packet second = pool.release(h);
  EXPECT_EQ(second.ip_id, 41);
  const Packet last = pool.release(h);
  EXPECT_EQ(last.ip_id, 41);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.total_refs(), 0u);
}

TEST(PacketPoolTest, DropReleasesWithoutMaterializing) {
  PacketPool pool;
  const auto h = pool.acquire(make_packet());
  pool.add_ref(h);
  pool.drop(h);
  EXPECT_EQ(pool.ref_count(h), 1u);
  EXPECT_EQ(pool.in_use(), 1u);
  pool.drop(h);  // last reference frees the slot
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.total_refs(), 0u);
}

TEST(PacketPoolDeathTest, DoubleReleaseAborts) {
  // A second release of a dead handle would corrupt whoever reused the
  // slot — the pool aborts instead of limping (the check survives release
  // builds; assert() would not).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  PacketPool pool;
  const auto h = pool.acquire(make_packet());
  pool.drop(h);
  EXPECT_DEATH(pool.drop(h), "dead handle");
  EXPECT_DEATH(pool.release(h), "dead handle");
  EXPECT_DEATH(pool.add_ref(h), "dead handle");
}

}  // namespace
}  // namespace wgtt::net
