// Tests for the cyclic queue and the WGTT AP's data/control-plane logic:
// fan-in of downlink packets, the stop/start/ack switching protocol, stale
// drop, and block-ACK forwarding with de-duplication.
#include <gtest/gtest.h>

#include <optional>

#include "ap/cyclic_queue.h"
#include "ap/wgtt_ap.h"
#include "mac/medium.h"
#include "net/backhaul.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace wgtt::ap {
namespace {

using net::ApId;
using net::BackhaulMessage;
using net::ClientId;
using net::NodeId;

net::Packet data_packet(ClientId c, Time created) {
  net::Packet p = net::make_packet();
  p.client = c;
  p.proto = net::Proto::kUdp;
  p.payload_bytes = 1400;
  p.created = created;
  return p;
}

TEST(CyclicQueueTest, PutTakeBasics) {
  CyclicQueue q;
  EXPECT_EQ(q.occupancy(), 0u);
  EXPECT_FALSE(q.has(5));
  net::Packet p = net::make_packet();
  p.payload_bytes = 100;
  q.put(5, p);
  EXPECT_TRUE(q.has(5));
  EXPECT_EQ(q.occupancy(), 1u);
  ASSERT_NE(q.peek(5), nullptr);
  EXPECT_EQ(q.peek(5)->payload_bytes, 100u);
  auto taken = q.take(5);
  ASSERT_TRUE(taken.has_value());
  EXPECT_FALSE(q.has(5));
  EXPECT_EQ(q.occupancy(), 0u);
  EXPECT_FALSE(q.take(5).has_value());
}

TEST(CyclicQueueTest, IndexMasking) {
  CyclicQueue q;
  net::Packet p = net::make_packet();
  q.put(4096 + 7, p);  // masked to 7
  EXPECT_TRUE(q.has(7));
}

TEST(CyclicQueueTest, OverwriteSameSlot) {
  CyclicQueue q;
  net::Packet a = net::make_packet();
  a.payload_bytes = 1;
  net::Packet b = net::make_packet();
  b.payload_bytes = 2;
  q.put(9, a);
  q.put(9, b);
  EXPECT_EQ(q.occupancy(), 1u);
  EXPECT_EQ(q.peek(9)->payload_bytes, 2u);
}

TEST(CyclicQueueTest, NewestTracksLastPut) {
  CyclicQueue q;
  EXPECT_FALSE(q.newest().has_value());
  q.put(10, net::make_packet());
  q.put(12, net::make_packet());
  EXPECT_EQ(q.newest().value(), 12);
  q.clear();
  EXPECT_EQ(q.occupancy(), 0u);
  EXPECT_FALSE(q.newest().has_value());
}

TEST(CyclicQueueTest, FullLapKeepsAllSlots) {
  CyclicQueue q;
  for (std::uint16_t i = 0; i < CyclicQueue::kIndexSpace; ++i) {
    q.put(i, net::make_packet());
  }
  EXPECT_EQ(q.occupancy(), static_cast<std::size_t>(CyclicQueue::kIndexSpace));
}

TEST(CyclicQueueTest, DropDiscardsWithoutMaterializing) {
  CyclicQueue q;
  q.put(3, net::make_packet());
  EXPECT_TRUE(q.drop(3));
  EXPECT_FALSE(q.has(3));
  EXPECT_EQ(q.occupancy(), 0u);
  EXPECT_FALSE(q.drop(3));  // already empty
}

TEST(CyclicQueueTest, SharedHandleSurvivesPeerCrashWipe) {
  // The fan-out invariant: N queues hold N references to ONE pooled packet.
  // Wiping one queue (an AP crash) must leave every other queue's view of
  // the shared slot intact, and taking from the survivors must not disturb
  // the rest either.
  net::PacketPool pool;
  CyclicQueue a(&pool);
  CyclicQueue b(&pool);
  CyclicQueue c(&pool);
  net::Packet p = net::make_packet();
  p.payload_bytes = 777;
  const auto h = pool.acquire(std::move(p));  // controller's acquisition ref
  pool.add_ref(h);
  a.put_handle(40, h);
  pool.add_ref(h);
  b.put_handle(40, h);
  pool.add_ref(h);
  c.put_handle(40, h);
  pool.drop(h);  // controller lets go; the queues hold theirs
  EXPECT_EQ(pool.ref_count(h), 3u);
  EXPECT_EQ(pool.in_use(), 1u);  // three queues, ONE packet

  a.clear();  // AP a crashes: its ref drops, nothing is copied or moved
  EXPECT_EQ(pool.ref_count(h), 2u);
  ASSERT_NE(b.peek(40), nullptr);
  EXPECT_EQ(b.peek(40)->payload_bytes, 777u);

  const auto from_b = b.take(40);  // shared: must copy, leaving c's view
  ASSERT_TRUE(from_b.has_value());
  EXPECT_EQ(from_b->payload_bytes, 777u);
  ASSERT_NE(c.peek(40), nullptr);
  EXPECT_EQ(c.peek(40)->payload_bytes, 777u);

  const auto from_c = c.take(40);  // last ref: moves out and frees the slot
  ASSERT_TRUE(from_c.has_value());
  EXPECT_EQ(from_c->payload_bytes, 777u);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.total_refs(), 0u);
}

TEST(CyclicQueueTest, OverwriteDropsDisplacedSharedRef) {
  // A new packet landing on an occupied slot drops the displaced occupant's
  // reference; a peer still holding that occupant keeps reading it.
  net::PacketPool pool;
  CyclicQueue a(&pool);
  CyclicQueue b(&pool);
  net::Packet old = net::make_packet();
  old.payload_bytes = 1;
  const auto h = pool.acquire(std::move(old));
  pool.add_ref(h);
  a.put_handle(9, h);
  b.put_handle(9, h);
  net::Packet fresh = net::make_packet();
  fresh.payload_bytes = 2;
  a.put(9, fresh);  // a's ref on the old packet drops; b's stays
  EXPECT_EQ(a.overwrites(), 1u);
  EXPECT_EQ(a.peek(9)->payload_bytes, 2u);
  EXPECT_EQ(b.peek(9)->payload_bytes, 1u);
  EXPECT_EQ(pool.ref_count(h), 1u);
}

// --- WgttAp fixture ---------------------------------------------------------

channel::CsiMeasurement flat_csi(double snr_db, Time when) {
  channel::CsiMeasurement m;
  m.when = when;
  m.subcarrier_snr_db.fill(snr_db);
  m.rssi_dbm = -94.0 + snr_db;
  m.mean_snr_db = snr_db;
  return m;
}

class WgttApTest : public ::testing::Test {
 protected:
  static constexpr ClientId kClient{0};

  WgttApTest() : medium_(sched_, {}), backhaul_(sched_, {}, Rng{99}) {
    // Controller endpoint: records everything it receives.
    backhaul_.attach(NodeId::controller(),
                     [this](NodeId from, BackhaulMessage msg) {
                       controller_log_.emplace_back(from, std::move(msg));
                     });
    ap0_ = make_ap(0);
    ap1_ = make_ap(1);
    // Client radio on the medium.
    client_radio_ = client_mac_template();
    ap0_->register_client(kClient, client_radio_);
    ap1_->register_client(kClient, client_radio_);
  }

  std::unique_ptr<WgttAp> make_ap(int idx) {
    auto ap = std::make_unique<WgttAp>(
        ApId{static_cast<std::uint32_t>(idx)}, sched_, medium_, backhaul_,
        Rng{static_cast<std::uint64_t>(idx) + 5}, WgttAp::Config{},
        [idx] { return channel::Vec2{idx * 7.5, 15.0}; });
    ap->mac().set_channel_sampler(
        [this](mac::RadioId) { return flat_csi(40.0, sched_.now()); });
    ap->set_ap_directory([this](mac::RadioId r) -> std::optional<ApId> {
      if (ap0_ && r == ap0_->mac().radio()) return ApId{0};
      if (ap1_ && r == ap1_->mac().radio()) return ApId{1};
      return std::nullopt;
    });
    return ap;
  }

  mac::RadioId client_mac_template() {
    client_mac_ = std::make_unique<mac::WifiMac>(
        sched_, medium_, Rng{777}, mac::WifiMac::Config{.shared_rx_scoreboard = true});
    const mac::RadioId id =
        client_mac_->attach([] { return channel::Vec2{0.0, 0.0}; });
    client_mac_->set_channel_sampler(
        [this](mac::RadioId) { return flat_csi(40.0, sched_.now()); });
    client_mac_->set_tx_to_bssid(true);
    client_mac_->add_peer(mac::kBssidWgtt);
    client_mac_->on_deliver = [this](mac::RadioId, const net::Packet& p) {
      client_rx_.push_back(p);
    };
    return id;
  }

  void send_downlink(WgttAp& ap, std::uint16_t index) {
    backhaul_.send(NodeId::controller(), NodeId::ap(ap.id()),
                   net::DownlinkData{data_packet(kClient, sched_.now()), index});
  }

  int count_controller(auto pred) const {
    int n = 0;
    for (const auto& [from, msg] : controller_log_) {
      if (pred(msg)) ++n;
    }
    return n;
  }

  sim::Scheduler sched_;
  mac::Medium medium_;
  net::Backhaul backhaul_;
  std::unique_ptr<WgttAp> ap0_;
  std::unique_ptr<WgttAp> ap1_;
  std::unique_ptr<mac::WifiMac> client_mac_;
  mac::RadioId client_radio_{};
  std::vector<net::Packet> client_rx_;
  std::vector<std::pair<NodeId, BackhaulMessage>> controller_log_;
};

TEST_F(WgttApTest, NonServingApBuffersWithoutTransmitting) {
  send_downlink(*ap0_, 0);
  send_downlink(*ap0_, 1);
  sched_.run_until(Time::ms(50));
  EXPECT_EQ(ap0_->cyclic_backlog(kClient), 2u);
  EXPECT_TRUE(client_rx_.empty());
  EXPECT_FALSE(ap0_->serving(kClient));
}

TEST_F(WgttApTest, StartMakesApServeFromIndex) {
  for (std::uint16_t i = 0; i < 5; ++i) send_downlink(*ap0_, i);
  backhaul_.send(NodeId::controller(), NodeId::ap(ApId{0}),
                 net::StartMsg{kClient, ApId{0}, 2});
  sched_.run_until(Time::ms(100));
  EXPECT_TRUE(ap0_->serving(kClient));
  // Serves from index 2: packets 2,3,4 delivered; 0,1 remain buffered.
  EXPECT_EQ(client_rx_.size(), 3u);
  // ack went back to the controller.
  EXPECT_EQ(count_controller([](const BackhaulMessage& m) {
              return std::holds_alternative<net::SwitchAck>(m);
            }),
            1);
}

TEST_F(WgttApTest, SwitchingProtocolHandsOffFirstUnsent) {
  // AP0 serves 0..9; stop arrives mid-stream; AP0 must send start(c, k) to
  // AP1 with k = its first unsent index, and AP1 resumes exactly there.
  for (std::uint16_t i = 0; i < 10; ++i) {
    send_downlink(*ap0_, i);
    send_downlink(*ap1_, i);
  }
  backhaul_.send(NodeId::controller(), NodeId::ap(ApId{0}),
                 net::StartMsg{kClient, ApId{0}, 0, /*epoch=*/1});
  sched_.run_until(Time::ms(60));
  const std::size_t delivered_by_ap0 = client_rx_.size();
  EXPECT_GT(delivered_by_ap0, 0u);

  backhaul_.send(NodeId::controller(), NodeId::ap(ApId{0}),
                 net::StopMsg{kClient, ApId{1}, /*epoch=*/2});
  sched_.run_until(Time::ms(300));
  EXPECT_FALSE(ap0_->serving(kClient));
  EXPECT_TRUE(ap1_->serving(kClient));
  EXPECT_EQ(ap0_->stats().stops_handled, 1u);
  EXPECT_EQ(ap1_->stats().starts_handled, 1u);
  // All ten packets arrive exactly once across the two APs.
  EXPECT_EQ(client_rx_.size(), 10u);
}

TEST_F(WgttApTest, SwitchTimingMatchesTableOne) {
  // The stop -> start -> ack pipeline takes ~17 ms (paper Table 1).
  for (std::uint16_t i = 0; i < 3; ++i) {
    send_downlink(*ap0_, i);
    send_downlink(*ap1_, i);
  }
  backhaul_.send(NodeId::controller(), NodeId::ap(ApId{0}),
                 net::StartMsg{kClient, ApId{0}, 0, /*epoch=*/1});
  sched_.run_until(Time::ms(100));
  const Time t0 = sched_.now();
  backhaul_.send(NodeId::controller(), NodeId::ap(ApId{0}),
                 net::StopMsg{kClient, ApId{1}, /*epoch=*/2});
  // Wait for the SwitchAck from AP1.
  Time acked;
  backhaul_.attach(NodeId::controller(),
                   [&](NodeId, BackhaulMessage msg) {
                     if (std::holds_alternative<net::SwitchAck>(msg)) {
                       acked = sched_.now();
                     }
                   });
  sched_.run_until(t0 + Time::ms(200));
  const double ms = (acked - t0).to_millis();
  EXPECT_GT(ms, 5.0);
  EXPECT_LT(ms, 40.0);
}

TEST_F(WgttApTest, DuplicateStopReplaysRecordedIndexWithoutRequery) {
  // Capture what AP0 hands to AP1 (detaches the real AP1 — fine, the test
  // only watches AP0's side of the handshake).
  std::vector<net::StartMsg> starts_to_ap1;
  backhaul_.attach(NodeId::ap(ApId{1}), [&](NodeId, BackhaulMessage msg) {
    if (const auto* s = std::get_if<net::StartMsg>(&msg)) {
      starts_to_ap1.push_back(*s);
    }
  });
  for (std::uint16_t i = 0; i < 6; ++i) send_downlink(*ap0_, i);
  backhaul_.send(NodeId::controller(), NodeId::ap(ApId{0}),
                 net::StartMsg{kClient, ApId{0}, 0, /*epoch=*/1});
  sched_.run_until(Time::ms(60));
  backhaul_.send(NodeId::controller(), NodeId::ap(ApId{0}),
                 net::StopMsg{kClient, ApId{1}, /*epoch=*/2});
  sched_.run_until(Time::ms(120));
  ASSERT_EQ(starts_to_ap1.size(), 1u);
  // The ack never comes (AP1 is detached), so the controller would
  // retransmit the stop. The duplicate must replay the RECORDED index, not
  // re-query a pointer that may have moved.
  backhaul_.send(NodeId::controller(), NodeId::ap(ApId{0}),
                 net::StopMsg{kClient, ApId{1}, /*epoch=*/2});
  sched_.run_until(Time::ms(180));
  EXPECT_EQ(ap0_->stats().stops_handled, 1u);
  EXPECT_EQ(ap0_->stats().stop_duplicates, 1u);
  ASSERT_EQ(starts_to_ap1.size(), 2u);
  EXPECT_EQ(starts_to_ap1[1].first_unsent_index,
            starts_to_ap1[0].first_unsent_index);
  EXPECT_EQ(starts_to_ap1[1].epoch, starts_to_ap1[0].epoch);
}

TEST_F(WgttApTest, DuplicateStartReacksWithoutRewinding) {
  for (std::uint16_t i = 0; i < 5; ++i) send_downlink(*ap0_, i);
  backhaul_.send(NodeId::controller(), NodeId::ap(ApId{0}),
                 net::StartMsg{kClient, ApId{0}, 0, /*epoch=*/1});
  sched_.run_until(Time::ms(100));
  EXPECT_EQ(client_rx_.size(), 5u);
  const auto acks = [this] {
    return count_controller([](const BackhaulMessage& m) {
      return std::holds_alternative<net::SwitchAck>(m);
    });
  };
  EXPECT_EQ(acks(), 1);
  // The ack was lost upstream; the retransmit chain delivers the same
  // start again. The AP must replay the ack but NOT rewind next_index —
  // pre-fix it re-applied k=0 and re-transmitted all five packets.
  backhaul_.send(NodeId::controller(), NodeId::ap(ApId{0}),
                 net::StartMsg{kClient, ApId{0}, 0, /*epoch=*/1});
  sched_.run_until(Time::ms(200));
  EXPECT_EQ(acks(), 2);
  EXPECT_EQ(client_rx_.size(), 5u);  // nothing re-delivered
  EXPECT_EQ(ap0_->stats().start_duplicates, 1u);
  EXPECT_EQ(ap0_->stats().starts_handled, 1u);
  EXPECT_EQ(ap0_->stats().index_regressions, 0u);
}

TEST_F(WgttApTest, StaleControlMessagesIgnored) {
  backhaul_.send(NodeId::controller(), NodeId::ap(ApId{0}),
                 net::StartMsg{kClient, ApId{0}, 0, /*epoch=*/3});
  sched_.run_until(Time::ms(50));
  EXPECT_TRUE(ap0_->serving(kClient));
  // A delayed stop from a superseded switch (epoch 2 < 3) surfaces late.
  // Acting on it would halt a drain the controller believes is live.
  backhaul_.send(NodeId::controller(), NodeId::ap(ApId{0}),
                 net::StopMsg{kClient, ApId{1}, /*epoch=*/2});
  sched_.run_until(Time::ms(120));
  EXPECT_TRUE(ap0_->serving(kClient));
  EXPECT_EQ(ap0_->stats().stops_handled, 0u);
  EXPECT_EQ(ap0_->stats().stale_control_ignored, 1u);
  // A stale start is equally ignored.
  backhaul_.send(NodeId::controller(), NodeId::ap(ApId{0}),
                 net::StartMsg{kClient, ApId{0}, 7, /*epoch=*/1});
  sched_.run_until(Time::ms(180));
  EXPECT_EQ(ap0_->stats().starts_handled, 1u);
  EXPECT_EQ(ap0_->stats().stale_control_ignored, 2u);
}

TEST_F(WgttApTest, StaleCyclicEntriesDropped) {
  send_downlink(*ap0_, 0);
  // Age the packet past the staleness bound before serving begins.
  sched_.run_until(Time::sec(2));
  backhaul_.send(NodeId::controller(), NodeId::ap(ApId{0}),
                 net::StartMsg{kClient, ApId{0}, 0});
  sched_.run_until(Time::sec(2) + Time::ms(100));
  EXPECT_TRUE(client_rx_.empty());
  EXPECT_EQ(ap0_->stats().stale_dropped, 1u);
}

TEST_F(WgttApTest, UplinkForwardedToController) {
  net::Packet up = data_packet(kClient, sched_.now());
  up.downlink = false;
  client_mac_->enqueue(mac::kBssidWgtt, up);
  sched_.run_until(Time::ms(50));
  // Both APs decode the BSSID-addressed uplink and forward it.
  EXPECT_EQ(count_controller([](const BackhaulMessage& m) {
              return std::holds_alternative<net::UplinkData>(m);
            }),
            2);
}

TEST_F(WgttApTest, CsiReportedOnClientFrames) {
  net::Packet up = data_packet(kClient, sched_.now());
  up.downlink = false;
  client_mac_->enqueue(mac::kBssidWgtt, up);
  sched_.run_until(Time::ms(50));
  EXPECT_GE(count_controller([](const BackhaulMessage& m) {
              return std::holds_alternative<net::CsiReport>(m);
            }),
            2);  // one per AP at least (data frame; BAs may add more)
}

TEST_F(WgttApTest, CsiReportingCanBeDisabled) {
  ap0_->set_csi_reporting(false);
  ap1_->set_csi_reporting(false);
  net::Packet up = data_packet(kClient, sched_.now());
  up.downlink = false;
  client_mac_->enqueue(mac::kBssidWgtt, up);
  sched_.run_until(Time::ms(50));
  EXPECT_EQ(count_controller([](const BackhaulMessage& m) {
              return std::holds_alternative<net::CsiReport>(m);
            }),
            0);
}

TEST_F(WgttApTest, ForwardedBaDeduplicated) {
  // Two identical BlockAckForward messages (same over-the-air BA uid, e.g.
  // forwarded by two monitor APs): the second is dropped (§3.2.1).
  backhaul_.send(NodeId::controller(), NodeId::ap(ApId{0}),
                 net::StartMsg{kClient, ApId{0}, 0});
  sched_.run_until(Time::ms(50));
  net::BlockAckForward fwd{kClient, ApId{1}, 0, 0x3, /*ba_uid=*/555};
  backhaul_.send(NodeId::ap(ApId{1}), NodeId::ap(ApId{0}), fwd);
  backhaul_.send(NodeId::ap(ApId{1}), NodeId::ap(ApId{0}), fwd);
  sched_.run_until(Time::ms(100));
  EXPECT_EQ(ap0_->stats().ba_forward_received, 2u);
  EXPECT_EQ(ap0_->stats().ba_forward_duplicate, 1u);
}

}  // namespace
}  // namespace wgtt::ap
