// Unit tests for util: units, RNG, statistics, containers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/ring_buffer.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timed_window.h"
#include "util/units.h"

namespace wgtt {
namespace {

TEST(TimeTest, ConstructorsAgree) {
  EXPECT_EQ(Time::us(1).count_ns(), 1'000);
  EXPECT_EQ(Time::ms(1).count_ns(), 1'000'000);
  EXPECT_EQ(Time::sec(1).count_ns(), 1'000'000'000);
  EXPECT_EQ(Time::seconds(1.5).count_ns(), 1'500'000'000);
  EXPECT_EQ(Time::millis(2.5).count_ns(), 2'500'000);
  EXPECT_EQ(Time::micros(0.5).count_ns(), 500);
}

TEST(TimeTest, Arithmetic) {
  const Time a = Time::ms(3);
  const Time b = Time::ms(1);
  EXPECT_EQ((a + b).count_ns(), Time::ms(4).count_ns());
  EXPECT_EQ((a - b).count_ns(), Time::ms(2).count_ns());
  EXPECT_EQ((a * 3).count_ns(), Time::ms(9).count_ns());
  EXPECT_EQ(a / b, 3);
  Time c = a;
  c += b;
  EXPECT_EQ(c, Time::ms(4));
  c -= Time::ms(2);
  EXPECT_EQ(c, Time::ms(2));
}

TEST(TimeTest, ComparisonAndConversion) {
  EXPECT_LT(Time::us(999), Time::ms(1));
  EXPECT_GT(Time::sec(1), Time::ms(999));
  EXPECT_DOUBLE_EQ(Time::ms(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Time::us(1500).to_millis(), 1.5);
  EXPECT_DOUBLE_EQ(Time::ns(1500).to_micros(), 1.5);
  EXPECT_LT(Time::seconds(-1.0), Time::zero());
}

TEST(UnitsTest, DecibelRoundTrip) {
  for (double db : {-20.0, -3.0, 0.0, 3.0, 10.0, 30.0}) {
    EXPECT_NEAR(to_db(from_db(db)), db, 1e-9);
  }
  EXPECT_NEAR(from_db(3.0), 1.995, 0.01);
  EXPECT_NEAR(dbm_to_mw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(mw_to_dbm(100.0), 20.0, 1e-9);
}

TEST(UnitsTest, SpeedConversion) {
  EXPECT_NEAR(mph_to_mps(25.0), 11.176, 1e-3);
  EXPECT_NEAR(mps_to_mph(mph_to_mps(15.0)), 15.0, 1e-9);
}

TEST(UnitsTest, WavelengthIsTwelveCentimetres) {
  EXPECT_NEAR(kWavelength, 0.1218, 5e-4);  // channel 11 @ 2.462 GHz
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1'000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng r(9);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70'000; ++i) {
    const auto v = r.uniform_int(7);
    ASSERT_LT(v, 7u);
    ++counts[static_cast<std::size_t>(v)];
  }
  // Roughly uniform: each bucket within 10% of expectation.
  for (int c : counts) EXPECT_NEAR(c, 10'000, 1'000);
}

TEST(RngTest, NormalMoments) {
  Rng r(11);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(r.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(r.exponential(4.0));
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
  EXPECT_GE(s.min(), 0.0);
}

TEST(RngTest, ChanceEdgeCases) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-0.5));
    EXPECT_TRUE(r.chance(1.5));
  }
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(hits, 30'000, 1'000);
}

TEST(RngTest, ForkIndependence) {
  Rng root(21);
  Rng child = root.fork();
  // The child must not replay the parent stream.
  Rng parent_copy(21);
  parent_copy.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == root.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RunningStatsTest, Basic) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(EwmaTest, FirstSampleInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.add(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  e.reset();
  EXPECT_FALSE(e.initialized());
}

TEST(StatsTest, MedianOddEven) {
  std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
  EXPECT_THROW(median({}), std::invalid_argument);
}

TEST(StatsTest, LowerMedianMatchesPaperFormula) {
  // Paper: e_{floor(L/2)} with 1-based indexing of the sorted window.
  std::vector<double> l1{5.0};
  EXPECT_DOUBLE_EQ(lower_median(l1), 5.0);
  std::vector<double> l2{7.0, 3.0};
  EXPECT_DOUBLE_EQ(lower_median(l2), 3.0);  // floor(2/2)=1 -> 1st sorted
  std::vector<double> l4{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(lower_median(l4), 2.0);
  std::vector<double> l5{5.0, 4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(lower_median(l5), 3.0);
}

TEST(StatsTest, Percentile) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
  EXPECT_THROW(percentile(xs, 1.5), std::invalid_argument);
}

TEST(StatsTest, EmpiricalCdf) {
  std::vector<double> xs{3.0, 1.0, 2.0};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_NEAR(cdf[0].fraction, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(RingBufferTest, FifoSemantics) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  EXPECT_TRUE(rb.push_back(1));
  EXPECT_TRUE(rb.push_back(2));
  EXPECT_TRUE(rb.push_back(3));
  EXPECT_TRUE(rb.full());
  EXPECT_FALSE(rb.push_back(4));  // full drops
  EXPECT_EQ(rb.front(), 1);
  EXPECT_EQ(rb.back(), 3);
  EXPECT_EQ(rb.pop_front(), 1);
  EXPECT_TRUE(rb.push_back(4));
  EXPECT_EQ(rb.at(0), 2);
  EXPECT_EQ(rb.at(2), 4);
  rb.clear();
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, WrapsManyTimes) {
  RingBuffer<int> rb(4);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(rb.push_back(i));
    ASSERT_EQ(rb.pop_front(), i);
  }
}

TEST(RingBufferTest, Errors) {
  RingBuffer<int> rb(2);
  EXPECT_THROW(rb.pop_front(), std::logic_error);
  EXPECT_THROW(rb.front(), std::logic_error);
  EXPECT_THROW((void)rb.at(0), std::out_of_range);
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(TimedWindowTest, EvictsOldSamples) {
  TimedWindow<double> w(Time::ms(10));
  w.add(Time::ms(0), 1.0);
  w.add(Time::ms(5), 2.0);
  w.add(Time::ms(12), 3.0);
  // At t=12, the t=0 sample is older than 10 ms -> evicted; t=5 survives
  // (12 - 5 = 7 < 10).
  auto vals = w.values(Time::ms(12));
  EXPECT_EQ(vals.size(), 2u);
  EXPECT_DOUBLE_EQ(vals[0], 2.0);
  // At t=16, t=5 is evicted too.
  vals = w.values(Time::ms(16));
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_DOUBLE_EQ(vals[0], 3.0);
}

TEST(TimedWindowTest, BoundaryIsInclusiveEviction) {
  TimedWindow<int> w(Time::ms(10));
  w.add(Time::ms(0), 1);
  // Sample at exactly now - window is evicted (<= cutoff).
  EXPECT_TRUE(w.values(Time::ms(10)).empty());
}

TEST(TimedWindowTest, NewestAndClear) {
  TimedWindow<int> w(Time::ms(50));
  EXPECT_TRUE(w.empty());
  w.add(Time::ms(1), 1);
  w.add(Time::ms(2), 2);
  EXPECT_EQ(w.newest(), Time::ms(2));
  w.clear();
  EXPECT_TRUE(w.empty());
}

// Property sweep: lower_median of a window of identical values is that
// value, and is always a member of the input.
class LowerMedianProperty : public ::testing::TestWithParam<int> {};

TEST_P(LowerMedianProperty, AlwaysAMember) {
  Rng r(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs;
  const int n = 1 + static_cast<int>(r.uniform_int(20));
  for (int i = 0; i < n; ++i) xs.push_back(r.uniform(-50.0, 50.0));
  const double m = lower_median(xs);
  EXPECT_NE(std::find(xs.begin(), xs.end(), m), xs.end());
  // Lower median is <= upper median.
  EXPECT_LE(m, median(xs) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LowerMedianProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace wgtt
