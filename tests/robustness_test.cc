// Robustness and failure-injection tests: control-plane packet loss on the
// switching protocol, AP crash/zombie liveness and forced failover, fuzzed
// queue/filter workloads, and end-to-end behaviour under degraded
// conditions.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ap/cyclic_queue.h"
#include "mac/block_ack.h"
#include "mobility/trajectory.h"
#include "obs/metrics.h"
#include "scenario/wgtt_system.h"
#include "transport/udp.h"
#include "util/rng.h"

namespace wgtt {
namespace {

// --- control-plane loss -------------------------------------------------------

// The switching protocol must survive lossy backhaul control delivery via
// its 30 ms retransmission (paper §3.1.2). We inject heavy random loss on
// the backhaul and require the system to keep delivering data and keep the
// serving AP moving with the client.
TEST(ControlPlaneLoss, SwitchingSurvivesBackhaulLoss) {
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 303;
  cfg.backhaul.loss_rate = 0.15;  // 15% of ALL backhaul messages vanish
  scenario::WgttSystem sys(cfg);
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
  const int c = sys.add_client(&drive);
  sys.start();
  transport::UdpSink sink;
  sys.client(c).on_downlink = [&](const net::Packet& p) {
    sink.on_packet(sys.now(), p);
  };
  transport::UdpSource src(
      sys.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        sys.server_send(std::move(p));
      },
      {.rate_mbps = 15.0, .client = net::ClientId{0}});
  src.start();
  sys.run_until(Time::sec(9));
  // Retransmissions kicked in...
  EXPECT_GT(sys.controller().stats().stop_retransmissions, 0u);
  // ...and both the control plane and the data plane stayed alive.
  EXPECT_GT(sys.controller().stats().switches_completed, 5u);
  EXPECT_GT(sink.throughput().average_mbps(Time::sec(2), Time::sec(9)), 2.0);
  // The serving AP followed the car down the road.
  EXPECT_GE(sys.serving_ap(c), 4);
}

TEST(ControlPlaneLoss, NoSwitchLivelockUnderTotalAckLoss) {
  // Even with extreme control loss the controller never wedges: the
  // at-most-one-outstanding-switch rule plus the 30 ms timer keeps
  // retrying, and the data path keeps using the old AP meanwhile.
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 304;
  cfg.backhaul.loss_rate = 0.5;
  scenario::WgttSystem sys(cfg);
  mobility::StaticPosition pos({22.5, 0.0});
  const int c = sys.add_client(&pos);
  sys.start();
  sys.client(c).on_downlink = [](const net::Packet&) {};
  transport::UdpSource src(
      sys.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        sys.server_send(std::move(p));
      },
      {.rate_mbps = 8.0, .client = net::ClientId{0}});
  src.start();
  sys.run_until(Time::sec(6));
  // Initiated switches are eventually resolved or retried; the run ends
  // with a serving AP in place.
  EXPECT_NE(sys.serving_ap(c), -1);
}

// Regression for the duplicate-StartMsg rewind bug: drop exactly the FIRST
// SwitchAck. The controller's 30 ms timer retransmits, the duplicate
// control message reaches an AP that already acted on the original, and
// pre-fix that re-applied the start index — rewinding next_index and
// re-transmitting (or, on the bootstrap path, skipping) packets. Post-fix
// the duplicate is answered idempotently: same recorded index, ack replay,
// no queue-pointer movement.
TEST(ControlPlaneLoss, DroppedFirstSwitchAckIsIdempotent) {
  net::reset_packet_uids();
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 311;
  cfg.backhaul.fault(net::MsgKind::kSwitchAck).drop_first = 1;
  scenario::WgttSystem sys(cfg);
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
  const int c = sys.add_client(&drive);
  sys.start();
  std::map<std::uint64_t, int> deliveries;  // uid -> times delivered
  sys.client(c).on_downlink = [&](const net::Packet& p) { ++deliveries[p.uid]; };
  transport::UdpSource src(
      sys.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        sys.server_send(std::move(p));
      },
      {.rate_mbps = 10.0, .client = net::ClientId{0}});
  src.start();
  sys.run_until(Time::sec(6));

  // The lost ack forced the retransmit chain through the duplicate path.
  EXPECT_GE(sys.controller().stats().stop_retransmissions, 1u);
  std::uint64_t duplicates_answered = 0;
  for (int i = 0; i < sys.num_aps(); ++i) {
    duplicates_answered += sys.ap(i).stats().stop_duplicates +
                           sys.ap(i).stats().start_duplicates;
  }
  EXPECT_GE(duplicates_answered, 1u);
  // Exactly-once delivery: no packet reached the client twice (pre-fix the
  // rewound pointer re-transmitted everything after the duplicated start).
  for (const auto& [uid, times] : deliveries) {
    ASSERT_LE(times, 1) << "packet " << uid << " delivered " << times
                        << " times";
  }
  const auto report = sys.check_invariants();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_EQ(report.index_regressions, 0u);
  EXPECT_NE(sys.serving_ap(c), -1);
}

// Loss sweep (the ISSUE's acceptance case): for each seed, a probe-driven
// drive-by is run losslessly and then under 1% and 5% loss. Two loss
// shapes, two claims:
//   - UNIFORM loss (every backhaul message, CSI included): the protocol
//     invariants must hold — this is the acceptance criterion.
//   - CONTROL-PLANE loss (stop/start/ack only, via the fault plans): the
//     selection inputs are untouched, so the retransmission machinery must
//     also keep the per-client switch count within +/-1 of the lossless
//     run — a lost control message may delay a switch, never add or lose
//     one. (Under uniform loss the count legitimately drifts more: dropped
//     CSI changes the selection itself, not the protocol.)
class LossSweep : public ::testing::TestWithParam<int> {};

TEST_P(LossSweep, InvariantsHoldAndSwitchCountStable) {
  const std::uint64_t seed = 400 + static_cast<std::uint64_t>(GetParam());
  auto run = [&](double loss, bool control_only) {
    net::reset_packet_uids();
    scenario::WgttSystemConfig cfg;
    cfg.geometry.seed = seed;
    if (control_only) {
      for (const auto kind : {net::MsgKind::kStop, net::MsgKind::kStart,
                              net::MsgKind::kSwitchAck}) {
        cfg.backhaul.fault(kind).loss_rate = loss;
      }
    } else {
      cfg.backhaul.loss_rate = loss;
    }
    // Probe-driven runs see CSI every 50 ms, so the paper's 10 ms window
    // would hold a single sample and the "median" would be one noisy
    // reading. Window + margin + hysteresis make the switch sequence
    // geometry-driven (roughly one switch per picocell crossing).
    cfg.controller.selection_window = Time::ms(200);
    cfg.controller.switch_margin_db = 1.0;
    cfg.controller.switch_hysteresis = Time::ms(150);
    scenario::WgttSystem sys(cfg);
    mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
    (void)sys.add_client(&drive);
    sys.start();  // probe-driven: no data traffic needed to exercise switching
    sys.run_until(Time::sec(8));
    const auto report = sys.check_invariants();
    EXPECT_TRUE(report.ok())
        << "loss=" << loss << " control_only=" << control_only
        << " seed=" << seed << ": " << report.violations.front();
    EXPECT_EQ(report.index_regressions, 0u);
    return sys.controller().stats().switches_completed;
  };
  const std::uint64_t baseline = run(0.0, false);
  EXPECT_GE(baseline, 3u);  // the drive-by crosses several picocells
  for (const double loss : {0.01, 0.05}) {
    (void)run(loss, false);  // uniform loss: invariants checked inside
    const std::uint64_t lossy = run(loss, true);
    const std::uint64_t diff =
        lossy > baseline ? lossy - baseline : baseline - lossy;
    EXPECT_LE(diff, 1u) << "control loss=" << loss << " seed=" << seed
                        << ": baseline=" << baseline << " lossy=" << lossy;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossSweep, ::testing::Range(0, 20));

TEST(ControlPlaneFaults, MixedControlFaultsKeepInvariants) {
  // Duplication, targeted loss and reorder-free extra delay on the control
  // plane all at once: the epoch guard must keep the handshake idempotent.
  net::reset_packet_uids();
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 313;
  cfg.backhaul.fault(net::MsgKind::kStop).dup_rate = 0.3;
  cfg.backhaul.fault(net::MsgKind::kStart).dup_rate = 0.3;
  cfg.backhaul.fault(net::MsgKind::kStart).delay_rate = 0.3;
  cfg.backhaul.fault(net::MsgKind::kStart).delay_max = Time::ms(5);
  cfg.backhaul.fault(net::MsgKind::kSwitchAck).loss_rate = 0.2;
  scenario::WgttSystem sys(cfg);
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
  const int c = sys.add_client(&drive);
  sys.start();
  sys.run_until(Time::sec(8));
  const auto report = sys.check_invariants();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_EQ(report.index_regressions, 0u);
  EXPECT_NE(sys.serving_ap(c), -1);
  // The fault machinery actually fired.
  EXPECT_GT(sys.controller().stats().switches_completed, 3u);
  std::uint64_t idempotent_replies = 0;
  for (int i = 0; i < sys.num_aps(); ++i) {
    idempotent_replies += sys.ap(i).stats().stop_duplicates +
                          sys.ap(i).stats().start_duplicates +
                          sys.ap(i).stats().stale_control_ignored;
  }
  EXPECT_GT(idempotent_replies, 0u);
}

// --- AP liveness, crash failover, and degraded-mode recovery ------------------

// Hard-crash the SERVING AP mid-drive and bound the delivery outage: the
// heartbeat machinery needs at most (miss_threshold + 1) intervals to
// declare death (a probe sent at tick N is judged at tick N+1), and the
// forced failover is one start/ack round trip on a healthy backhaul. The
// paper's protocol machinery contributes ~1 ms; the bound is dominated by
// detection.
TEST(ApFailover, ServingApCrashRecoversWithinDetectionBound) {
  net::reset_packet_uids();
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 501;
  cfg.controller.liveness_enabled = true;
  // Windowed median selection (as in LossSweep): the crashed AP's samples
  // stay in the argmax until eviction, so recovery genuinely rides the
  // liveness path rather than CSI staleness.
  cfg.controller.selection_window = Time::ms(200);
  cfg.controller.switch_margin_db = 1.0;
  cfg.controller.switch_hysteresis = Time::ms(150);
  scenario::WgttSystem sys(cfg);
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
  const int c = sys.add_client(&drive);
  sys.start();

  const Time crash_at = Time::sec(3);
  std::map<std::uint64_t, int> deliveries;
  Time first_after_crash = Time::ms(-1);
  sys.client(c).on_downlink = [&](const net::Packet& p) {
    ++deliveries[p.uid];
    if (sys.now() > crash_at && first_after_crash < Time::zero()) {
      first_after_crash = sys.now();
    }
  };
  transport::UdpSource src(
      sys.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        sys.server_send(std::move(p));
      },
      {.rate_mbps = 20.0, .client = net::ClientId{0}});
  src.start();

  int crashed_ap = -1;
  sys.sched().schedule_at(crash_at, [&] {
    crashed_ap = sys.serving_ap(c);
    ASSERT_GE(crashed_ap, 0);
    sys.crash_ap(crashed_ap);
  });
  sys.run_until(Time::sec(6));

  ASSERT_GE(crashed_ap, 0);
  EXPECT_GE(sys.controller().stats().aps_marked_dead, 1u);
  EXPECT_GE(sys.controller().stats().forced_failovers, 1u);
  EXPECT_NE(sys.serving_ap(c), crashed_ap);
  // Outage bound: detection + one switch round trip + scheduling slack.
  const Time bound = cfg.controller.heartbeat_interval *
                         (cfg.controller.heartbeat_miss_threshold + 1) +
                     Time::ms(50);
  ASSERT_GE(first_after_crash, Time::zero()) << "downlink never recovered";
  EXPECT_LE(first_after_crash - crash_at, bound);
  // Exactly-once delivery: the failover replay overlap must be absorbed by
  // the MAC scoreboard and the uid filter, never surfaced twice.
  for (const auto& [uid, times] : deliveries) {
    ASSERT_LE(times, 1) << "packet " << uid << " delivered " << times
                        << " times";
  }
  const auto report = sys.check_invariants();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_EQ(report.index_regressions, 0u);
}

// Zombie window: the serving AP's backhaul dies while its radio keeps
// transmitting stale backlog. The controller must fail the client over,
// and once the link heals, quench the zombie so no two APs serve the
// client after things settle.
TEST(ApFailover, ZombieServingApQuenchedAfterLinkHeals) {
  net::reset_packet_uids();
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 503;
  cfg.controller.selection_window = Time::ms(200);
  cfg.controller.switch_margin_db = 1.0;
  cfg.controller.switch_hysteresis = Time::ms(150);
  // Parked next to AP1 so the zombie script targets the serving AP.
  scenario::ApFaultScript fs;
  fs.ap = 1;
  fs.zombie_at = Time::sec(3);
  fs.zombie_end_at = Time::sec(4) + Time::ms(500);
  cfg.ap_faults.push_back(fs);  // auto-enables liveness
  scenario::WgttSystem sys(cfg);
  mobility::StaticPosition pos({7.5, 0.0});
  const int c = sys.add_client(&pos);
  sys.start();
  std::map<std::uint64_t, int> deliveries;
  sys.client(c).on_downlink = [&](const net::Packet& p) { ++deliveries[p.uid]; };
  transport::UdpSource src(
      sys.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        sys.server_send(std::move(p));
      },
      {.rate_mbps = 15.0, .client = net::ClientId{0}});
  src.start();
  sys.run_until(Time::sec(3));
  ASSERT_EQ(sys.serving_ap(c), 1);  // parked at AP1: it must be serving
  sys.run_until(Time::sec(7));

  // The zombie was declared dead and the client failed over off it.
  EXPECT_GE(sys.controller().stats().aps_marked_dead, 1u);
  EXPECT_GE(sys.controller().stats().forced_failovers, 1u);
  // The link healed: the AP was readmitted and its stale serving state
  // quenched (directly, or superseded by a fresh switch back onto it).
  EXPECT_GE(sys.controller().stats().aps_readmitted, 1u);
  using Liveness = core::Controller::ApLiveness;
  EXPECT_EQ(sys.controller().ap_health(net::ApId{1}).state, Liveness::kAlive);
  // No packet surfaced twice despite the zombie draining stale backlog.
  for (const auto& [uid, times] : deliveries) {
    ASSERT_LE(times, 1) << "packet " << uid << " delivered " << times
                        << " times";
  }
  const auto report = sys.check_invariants();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_EQ(report.duplicate_serving, 0);
  EXPECT_EQ(report.index_regressions, 0u);
}

// Figure-17 style: several staggered clients mid-drive when an AP in the
// middle of the array crashes and later restarts. Every client keeps its
// stream, the restarted AP rejoins (association replayed from the
// replicated store), and the protocol invariants hold throughout.
TEST(ApFailover, MultiClientMidDriveCrashAllRecover) {
  net::reset_packet_uids();
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 505;
  cfg.controller.selection_window = Time::ms(200);
  cfg.controller.switch_margin_db = 1.0;
  cfg.controller.switch_hysteresis = Time::ms(150);
  scenario::ApFaultScript fs;
  fs.ap = 3;
  fs.crash_at = Time::sec(3) + Time::ms(500);
  fs.restart_at = Time::sec(5);
  cfg.ap_faults.push_back(fs);
  scenario::WgttSystem sys(cfg);
  mobility::LineDrive d0(-10.0, 0.0, mph_to_mps(15.0));
  mobility::LineDrive d1(-17.5, 0.0, mph_to_mps(15.0));
  mobility::LineDrive d2(-25.0, 0.0, mph_to_mps(15.0));
  const int c0 = sys.add_client(&d0);
  const int c1 = sys.add_client(&d1);
  const int c2 = sys.add_client(&d2);
  sys.start();
  std::map<int, std::map<std::uint64_t, int>> deliveries;
  std::map<int, std::uint64_t> after_restart;
  for (int c : {c0, c1, c2}) {
    sys.client(c).on_downlink = [&, c](const net::Packet& p) {
      ++deliveries[c][p.uid];
      if (sys.now() > Time::sec(5)) ++after_restart[c];
    };
  }
  std::vector<std::unique_ptr<transport::UdpSource>> sources;
  for (int c : {c0, c1, c2}) {
    sources.push_back(std::make_unique<transport::UdpSource>(
        sys.sched(),
        [&, c](net::Packet p) {
          p.client = net::ClientId{static_cast<std::uint32_t>(c)};
          sys.server_send(std::move(p));
        },
        transport::UdpSource::Config{
            .rate_mbps = 8.0,
            .client = net::ClientId{static_cast<std::uint32_t>(c)}}));
    sources.back()->start();
  }
  sys.run_until(Time::sec(9));

  EXPECT_EQ(sys.controller().stats().aps_marked_dead, 1u);
  EXPECT_GE(sys.controller().stats().aps_readmitted, 1u);
  for (int c : {c0, c1, c2}) {
    // Every client's stream survived past the crash/restart window.
    EXPECT_GT(after_restart[c], 0u) << "client " << c << " starved";
    for (const auto& [uid, times] : deliveries[c]) {
      ASSERT_LE(times, 1) << "client " << c << " packet " << uid
                          << " delivered " << times << " times";
    }
    EXPECT_NE(sys.serving_ap(c), -1);
  }
  const auto report = sys.check_invariants();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_EQ(report.index_regressions, 0u);
  EXPECT_EQ(report.dead_ap_deliveries, 0);
}

// Degraded mode: every AP with in-window CSI is dead. The controller must
// drop the client to unserved (not wedge on a corpse) and re-bootstrap as
// soon as fresh CSI arrives from a live AP.
TEST(ApFailover, AllCandidatesDeadDropsToUnservedThenRebootstraps) {
  net::reset_packet_uids();
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 507;
  cfg.controller.liveness_enabled = true;
  cfg.controller.selection_window = Time::ms(200);
  scenario::WgttSystem sys(cfg);
  mobility::StaticPosition pos({0.0, 0.0});  // parked at AP0: neighbours far
  const int c = sys.add_client(&pos);
  sys.start();
  sys.client(c).on_downlink = [](const net::Packet&) {};
  sys.run_until(Time::sec(2));
  const int serving = sys.serving_ap(c);
  ASSERT_GE(serving, 0);
  // Crash the serving AP and every neighbour close enough to have
  // in-window CSI: the failover has no usable candidate.
  for (int i = 0; i < sys.num_aps(); ++i) {
    if (std::abs(i - serving) <= 2) sys.crash_ap(i);
  }
  sys.run_until(Time::sec(2) + Time::ms(500));
  // The failover found no usable candidate and dropped to unserved rather
  // than wedging on a corpse. (A distant live AP's probe CSI may already
  // have re-bootstrapped the client by now — that IS the recovery path —
  // but it must never land on a dead AP.)
  EXPECT_GE(sys.controller().stats().failovers_unserved, 1u);
  const int mid_outage = sys.serving_ap(c);
  if (mid_outage != -1) {
    EXPECT_GT(std::abs(mid_outage - serving), 2)
        << "re-bootstrapped onto a dead AP";
  }
  // The neighbourhood comes back; probe-driven CSI re-bootstraps the
  // client through the normal path.
  for (int i = 0; i < sys.num_aps(); ++i) {
    if (std::abs(i - serving) <= 2) sys.restart_ap(i);
  }
  sys.run_until(Time::sec(5));
  EXPECT_NE(sys.serving_ap(c), -1);
  const auto report = sys.check_invariants();
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

// Satellite: opt-in backhaul reordering on the control plane. Stops,
// starts and acks overtaking each other must be absorbed by the epoch
// guards exactly like duplicates and delays.
TEST(ControlPlaneFaults, ControlReorderingKeepsInvariants) {
  net::reset_packet_uids();
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 509;
  for (const auto kind : {net::MsgKind::kStop, net::MsgKind::kStart,
                          net::MsgKind::kSwitchAck}) {
    cfg.backhaul.fault(kind).reorder_rate = 0.4;
    cfg.backhaul.fault(kind).reorder_max = Time::ms(10);
  }
  cfg.controller.selection_window = Time::ms(200);
  cfg.controller.switch_margin_db = 1.0;
  cfg.controller.switch_hysteresis = Time::ms(150);
  scenario::WgttSystem sys(cfg);
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
  const int c = sys.add_client(&drive);
  sys.start();
  sys.run_until(Time::sec(8));
  EXPECT_GT(sys.backhaul().messages_reordered(), 0u)
      << "reorder injection never fired";
  EXPECT_GT(sys.controller().stats().switches_completed, 3u);
  EXPECT_NE(sys.serving_ap(c), -1);
  const auto report = sys.check_invariants();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_EQ(report.index_regressions, 0u);
}

// Satellite: the determinism contract. All the liveness/fault machinery is
// opt-in; with every knob at rest a seeded run must be BYTE-identical (via
// its full metrics snapshot) to one whose config never mentions the new
// fields. 20 seeds, probe-driven drives.
TEST(ApFailoverDeterminism, ZeroFaultScriptKeepsSeededRunsByteIdentical) {
  auto snapshot = [](std::uint64_t seed, bool mention_idle_knobs) {
    net::reset_packet_uids();
    scenario::WgttSystemConfig cfg;
    cfg.geometry.seed = seed;
    if (mention_idle_knobs) {
      // Touch every new knob without arming any of them: empty fault
      // script list, reorder rate zero, liveness tuning behind a master
      // switch that stays off.
      cfg.ap_faults.clear();
      cfg.backhaul.fault(net::MsgKind::kDownlinkData).reorder_max = Time::ms(5);
      cfg.controller.heartbeat_interval = Time::ms(10);
      cfg.controller.heartbeat_miss_threshold = 2;
      cfg.controller.readmission_backoff = Time::ms(50);
      cfg.controller.failover_replay = 64;
    }
    obs::MetricsRegistry registry;
    scenario::WgttSystem sys(cfg);
    sys.enable_metrics(registry);
    mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
    (void)sys.add_client(&drive);
    sys.start();
    sys.run_until(Time::sec(3));
    return registry.to_json();
  };
  for (std::uint64_t seed = 600; seed < 620; ++seed) {
    const std::string plain = snapshot(seed, false);
    const std::string with_knobs = snapshot(seed, true);
    ASSERT_EQ(plain, with_knobs) << "seed " << seed;
    // Liveness metrics must not even appear in a liveness-off snapshot.
    EXPECT_EQ(plain.find("controller.ap_marked_dead"), std::string::npos);
  }
}

// PR-10 satellite: same determinism contract for the multi-controller layer.
// A single-domain config that *mentions* every domain knob (fault list,
// handshake tuning, penalty window, gossip cadence) but arms none of them
// must snapshot byte-identical to a config that never heard of domains.
// 20 seeds, same probe-driven drive as the AP-liveness sweep above.
TEST(DomainDeterminism, SingleDomainKeepsSeededRunsByteIdentical) {
  auto snapshot = [](std::uint64_t seed, bool mention_idle_knobs) {
    net::reset_packet_uids();
    scenario::WgttSystemConfig cfg;
    cfg.geometry.seed = seed;
    if (mention_idle_knobs) {
      // Everything at rest: one domain, no fault script, tuning fields
      // touched but inert while num_domains == 1.
      cfg.num_domains = 1;
      cfg.controller_faults.clear();
      cfg.controller.domains.handover_timeout = Time::ms(20);
      cfg.controller.domains.handover_max_retries = 6;
      cfg.controller.domains.penalty_window = Time::ms(250);
      cfg.controller.domains.epoch_jump = 128;
      cfg.controller.domains.sync_interval = Time::ms(50);
    }
    obs::MetricsRegistry registry;
    scenario::WgttSystem sys(cfg);
    sys.enable_metrics(registry);
    mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
    (void)sys.add_client(&drive);
    sys.start();
    sys.run_until(Time::sec(3));
    return registry.to_json();
  };
  for (std::uint64_t seed = 640; seed < 660; ++seed) {
    const std::string plain = snapshot(seed, false);
    const std::string with_knobs = snapshot(seed, true);
    ASSERT_EQ(plain, with_knobs) << "seed " << seed;
    // Domain metrics must not even register in a single-domain snapshot.
    EXPECT_EQ(plain.find("domain.handovers_out"), std::string::npos);
    EXPECT_EQ(plain.find("controller.handover_requests"), std::string::npos);
  }
}

TEST(ApFailoverDeterminism, LivenessMetricsAppearOnlyWhenEnabled) {
  net::reset_packet_uids();
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 621;
  scenario::ApFaultScript fs;
  fs.ap = 0;
  fs.crash_at = Time::sec(1);
  cfg.ap_faults.push_back(fs);
  obs::MetricsRegistry registry;
  scenario::WgttSystem sys(cfg);
  sys.enable_metrics(registry);
  mobility::StaticPosition pos({0.0, 0.0});
  (void)sys.add_client(&pos);
  sys.start();
  sys.run_until(Time::sec(2));
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("controller.ap_marked_dead"), std::string::npos);
  EXPECT_NE(json.find("controller.forced_failovers"), std::string::npos);
  EXPECT_NE(json.find("controller.heartbeat_rtt_ms"), std::string::npos);
}

// --- fuzzing ------------------------------------------------------------------

class CyclicQueueFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CyclicQueueFuzz, MatchesReferenceMap) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  ap::CyclicQueue q;
  std::map<std::uint16_t, std::uint64_t> reference;  // index -> packet uid
  for (int step = 0; step < 5000; ++step) {
    const auto index = static_cast<std::uint16_t>(rng.uniform_int(4096));
    if (rng.chance(0.6)) {
      net::Packet p = net::make_packet();
      q.put(index, p);
      reference[index] = p.uid;
    } else {
      const auto got = q.take(index);
      auto it = reference.find(index);
      if (it == reference.end()) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->uid, it->second);
        reference.erase(it);
      }
    }
    if (step % 512 == 0) {
      EXPECT_EQ(q.occupancy(), reference.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CyclicQueueFuzz, ::testing::Range(0, 8));

class SeqSpaceProperty : public ::testing::TestWithParam<int> {};

TEST_P(SeqSpaceProperty, SubAddRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 17);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint16_t>(rng.uniform_int(4096));
    const auto d = static_cast<std::uint16_t>(rng.uniform_int(2048));
    const auto b = mac::seq_add(a, d);
    EXPECT_EQ(mac::seq_sub(b, a), d);
    if (d != 0) {
      EXPECT_TRUE(mac::seq_less(a, b));
      EXPECT_FALSE(mac::seq_less(b, a));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqSpaceProperty, ::testing::Range(0, 5));

// --- end-to-end degradation ordering -------------------------------------------

TEST(Degradation, ThroughputMonotoneInBackhaulQuality) {
  // More backhaul loss can only hurt. (Monotonicity with slack: separate
  // seeds would add noise, so the same world is reused and we allow a
  // small tolerance for stochastic MAC draws.)
  auto run_with_loss = [](double loss) {
    net::reset_packet_uids();
    scenario::WgttSystemConfig cfg;
    cfg.geometry.seed = 305;
    cfg.backhaul.loss_rate = loss;
    scenario::WgttSystem sys(cfg);
    mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
    const int c = sys.add_client(&drive);
    sys.start();
    transport::UdpSink sink;
    sys.client(c).on_downlink = [&](const net::Packet& p) {
      sink.on_packet(sys.now(), p);
    };
    transport::UdpSource src(
        sys.sched(),
        [&](net::Packet p) {
          p.client = net::ClientId{0};
          sys.server_send(std::move(p));
        },
        {.rate_mbps = 20.0, .client = net::ClientId{0}});
    src.start();
    sys.run_until(Time::sec(9));
    return sink.throughput().average_mbps(Time::sec(1), Time::sec(9));
  };
  const double clean = run_with_loss(0.0);
  const double lossy = run_with_loss(0.35);
  EXPECT_GT(clean, lossy * 1.1);
}

TEST(Degradation, MultiChannelScanningCostsAreBounded) {
  // The §7 multi-channel extension: reuse > 1 must still deliver a usable
  // stream (scan dead-air and retunes degrade, not destroy).
  auto run_reuse = [](int reuse) {
    net::reset_packet_uids();
    scenario::WgttSystemConfig cfg;
    cfg.geometry.seed = 307;
    cfg.channel_reuse = reuse;
    scenario::WgttSystem sys(cfg);
    mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
    const int c = sys.add_client(&drive);
    sys.start();
    transport::UdpSink sink;
    sys.client(c).on_downlink = [&](const net::Packet& p) {
      sink.on_packet(sys.now(), p);
    };
    transport::UdpSource src(
        sys.sched(),
        [&](net::Packet p) {
          p.client = net::ClientId{0};
          sys.server_send(std::move(p));
        },
        {.rate_mbps = 20.0, .client = net::ClientId{0}});
    src.start();
    sys.run_until(Time::sec(9));
    return sink.throughput().average_mbps(Time::sec(2), Time::sec(9));
  };
  const double single = run_reuse(1);
  const double multi = run_reuse(3);
  EXPECT_GT(single, 5.0);
  EXPECT_GT(multi, 2.0);  // degraded but functional
}

}  // namespace
}  // namespace wgtt
