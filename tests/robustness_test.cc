// Robustness and failure-injection tests: control-plane packet loss on the
// switching protocol, fuzzed queue/filter workloads, and end-to-end
// behaviour under degraded conditions.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>

#include "ap/cyclic_queue.h"
#include "mac/block_ack.h"
#include "mobility/trajectory.h"
#include "scenario/wgtt_system.h"
#include "transport/udp.h"
#include "util/rng.h"

namespace wgtt {
namespace {

// --- control-plane loss -------------------------------------------------------

// The switching protocol must survive lossy backhaul control delivery via
// its 30 ms retransmission (paper §3.1.2). We inject heavy random loss on
// the backhaul and require the system to keep delivering data and keep the
// serving AP moving with the client.
TEST(ControlPlaneLoss, SwitchingSurvivesBackhaulLoss) {
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 303;
  cfg.backhaul.loss_rate = 0.15;  // 15% of ALL backhaul messages vanish
  scenario::WgttSystem sys(cfg);
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
  const int c = sys.add_client(&drive);
  sys.start();
  transport::UdpSink sink;
  sys.client(c).on_downlink = [&](const net::Packet& p) {
    sink.on_packet(sys.now(), p);
  };
  transport::UdpSource src(
      sys.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        sys.server_send(std::move(p));
      },
      {.rate_mbps = 15.0, .client = net::ClientId{0}});
  src.start();
  sys.run_until(Time::sec(9));
  // Retransmissions kicked in...
  EXPECT_GT(sys.controller().stats().stop_retransmissions, 0u);
  // ...and both the control plane and the data plane stayed alive.
  EXPECT_GT(sys.controller().stats().switches_completed, 5u);
  EXPECT_GT(sink.throughput().average_mbps(Time::sec(2), Time::sec(9)), 2.0);
  // The serving AP followed the car down the road.
  EXPECT_GE(sys.serving_ap(c), 4);
}

TEST(ControlPlaneLoss, NoSwitchLivelockUnderTotalAckLoss) {
  // Even with extreme control loss the controller never wedges: the
  // at-most-one-outstanding-switch rule plus the 30 ms timer keeps
  // retrying, and the data path keeps using the old AP meanwhile.
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 304;
  cfg.backhaul.loss_rate = 0.5;
  scenario::WgttSystem sys(cfg);
  mobility::StaticPosition pos({22.5, 0.0});
  const int c = sys.add_client(&pos);
  sys.start();
  sys.client(c).on_downlink = [](const net::Packet&) {};
  transport::UdpSource src(
      sys.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        sys.server_send(std::move(p));
      },
      {.rate_mbps = 8.0, .client = net::ClientId{0}});
  src.start();
  sys.run_until(Time::sec(6));
  // Initiated switches are eventually resolved or retried; the run ends
  // with a serving AP in place.
  EXPECT_NE(sys.serving_ap(c), -1);
}

// Regression for the duplicate-StartMsg rewind bug: drop exactly the FIRST
// SwitchAck. The controller's 30 ms timer retransmits, the duplicate
// control message reaches an AP that already acted on the original, and
// pre-fix that re-applied the start index — rewinding next_index and
// re-transmitting (or, on the bootstrap path, skipping) packets. Post-fix
// the duplicate is answered idempotently: same recorded index, ack replay,
// no queue-pointer movement.
TEST(ControlPlaneLoss, DroppedFirstSwitchAckIsIdempotent) {
  net::reset_packet_uids();
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 311;
  cfg.backhaul.fault(net::MsgKind::kSwitchAck).drop_first = 1;
  scenario::WgttSystem sys(cfg);
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
  const int c = sys.add_client(&drive);
  sys.start();
  std::map<std::uint64_t, int> deliveries;  // uid -> times delivered
  sys.client(c).on_downlink = [&](const net::Packet& p) { ++deliveries[p.uid]; };
  transport::UdpSource src(
      sys.sched(),
      [&](net::Packet p) {
        p.client = net::ClientId{0};
        sys.server_send(std::move(p));
      },
      {.rate_mbps = 10.0, .client = net::ClientId{0}});
  src.start();
  sys.run_until(Time::sec(6));

  // The lost ack forced the retransmit chain through the duplicate path.
  EXPECT_GE(sys.controller().stats().stop_retransmissions, 1u);
  std::uint64_t duplicates_answered = 0;
  for (int i = 0; i < sys.num_aps(); ++i) {
    duplicates_answered += sys.ap(i).stats().stop_duplicates +
                           sys.ap(i).stats().start_duplicates;
  }
  EXPECT_GE(duplicates_answered, 1u);
  // Exactly-once delivery: no packet reached the client twice (pre-fix the
  // rewound pointer re-transmitted everything after the duplicated start).
  for (const auto& [uid, times] : deliveries) {
    ASSERT_LE(times, 1) << "packet " << uid << " delivered " << times
                        << " times";
  }
  const auto report = sys.check_invariants();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_EQ(report.index_regressions, 0u);
  EXPECT_NE(sys.serving_ap(c), -1);
}

// Loss sweep (the ISSUE's acceptance case): for each seed, a probe-driven
// drive-by is run losslessly and then under 1% and 5% loss. Two loss
// shapes, two claims:
//   - UNIFORM loss (every backhaul message, CSI included): the protocol
//     invariants must hold — this is the acceptance criterion.
//   - CONTROL-PLANE loss (stop/start/ack only, via the fault plans): the
//     selection inputs are untouched, so the retransmission machinery must
//     also keep the per-client switch count within +/-1 of the lossless
//     run — a lost control message may delay a switch, never add or lose
//     one. (Under uniform loss the count legitimately drifts more: dropped
//     CSI changes the selection itself, not the protocol.)
class LossSweep : public ::testing::TestWithParam<int> {};

TEST_P(LossSweep, InvariantsHoldAndSwitchCountStable) {
  const std::uint64_t seed = 400 + static_cast<std::uint64_t>(GetParam());
  auto run = [&](double loss, bool control_only) {
    net::reset_packet_uids();
    scenario::WgttSystemConfig cfg;
    cfg.geometry.seed = seed;
    if (control_only) {
      for (const auto kind : {net::MsgKind::kStop, net::MsgKind::kStart,
                              net::MsgKind::kSwitchAck}) {
        cfg.backhaul.fault(kind).loss_rate = loss;
      }
    } else {
      cfg.backhaul.loss_rate = loss;
    }
    // Probe-driven runs see CSI every 50 ms, so the paper's 10 ms window
    // would hold a single sample and the "median" would be one noisy
    // reading. Window + margin + hysteresis make the switch sequence
    // geometry-driven (roughly one switch per picocell crossing).
    cfg.controller.selection_window = Time::ms(200);
    cfg.controller.switch_margin_db = 1.0;
    cfg.controller.switch_hysteresis = Time::ms(150);
    scenario::WgttSystem sys(cfg);
    mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
    (void)sys.add_client(&drive);
    sys.start();  // probe-driven: no data traffic needed to exercise switching
    sys.run_until(Time::sec(8));
    const auto report = sys.check_invariants();
    EXPECT_TRUE(report.ok())
        << "loss=" << loss << " control_only=" << control_only
        << " seed=" << seed << ": " << report.violations.front();
    EXPECT_EQ(report.index_regressions, 0u);
    return sys.controller().stats().switches_completed;
  };
  const std::uint64_t baseline = run(0.0, false);
  EXPECT_GE(baseline, 3u);  // the drive-by crosses several picocells
  for (const double loss : {0.01, 0.05}) {
    (void)run(loss, false);  // uniform loss: invariants checked inside
    const std::uint64_t lossy = run(loss, true);
    const std::uint64_t diff =
        lossy > baseline ? lossy - baseline : baseline - lossy;
    EXPECT_LE(diff, 1u) << "control loss=" << loss << " seed=" << seed
                        << ": baseline=" << baseline << " lossy=" << lossy;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossSweep, ::testing::Range(0, 20));

TEST(ControlPlaneFaults, MixedControlFaultsKeepInvariants) {
  // Duplication, targeted loss and reorder-free extra delay on the control
  // plane all at once: the epoch guard must keep the handshake idempotent.
  net::reset_packet_uids();
  scenario::WgttSystemConfig cfg;
  cfg.geometry.seed = 313;
  cfg.backhaul.fault(net::MsgKind::kStop).dup_rate = 0.3;
  cfg.backhaul.fault(net::MsgKind::kStart).dup_rate = 0.3;
  cfg.backhaul.fault(net::MsgKind::kStart).delay_rate = 0.3;
  cfg.backhaul.fault(net::MsgKind::kStart).delay_max = Time::ms(5);
  cfg.backhaul.fault(net::MsgKind::kSwitchAck).loss_rate = 0.2;
  scenario::WgttSystem sys(cfg);
  mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
  const int c = sys.add_client(&drive);
  sys.start();
  sys.run_until(Time::sec(8));
  const auto report = sys.check_invariants();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_EQ(report.index_regressions, 0u);
  EXPECT_NE(sys.serving_ap(c), -1);
  // The fault machinery actually fired.
  EXPECT_GT(sys.controller().stats().switches_completed, 3u);
  std::uint64_t idempotent_replies = 0;
  for (int i = 0; i < sys.num_aps(); ++i) {
    idempotent_replies += sys.ap(i).stats().stop_duplicates +
                          sys.ap(i).stats().start_duplicates +
                          sys.ap(i).stats().stale_control_ignored;
  }
  EXPECT_GT(idempotent_replies, 0u);
}

// --- fuzzing ------------------------------------------------------------------

class CyclicQueueFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CyclicQueueFuzz, MatchesReferenceMap) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  ap::CyclicQueue q;
  std::map<std::uint16_t, std::uint64_t> reference;  // index -> packet uid
  for (int step = 0; step < 5000; ++step) {
    const auto index = static_cast<std::uint16_t>(rng.uniform_int(4096));
    if (rng.chance(0.6)) {
      net::Packet p = net::make_packet();
      q.put(index, p);
      reference[index] = p.uid;
    } else {
      const auto got = q.take(index);
      auto it = reference.find(index);
      if (it == reference.end()) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->uid, it->second);
        reference.erase(it);
      }
    }
    if (step % 512 == 0) {
      EXPECT_EQ(q.occupancy(), reference.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CyclicQueueFuzz, ::testing::Range(0, 8));

class SeqSpaceProperty : public ::testing::TestWithParam<int> {};

TEST_P(SeqSpaceProperty, SubAddRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 17);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint16_t>(rng.uniform_int(4096));
    const auto d = static_cast<std::uint16_t>(rng.uniform_int(2048));
    const auto b = mac::seq_add(a, d);
    EXPECT_EQ(mac::seq_sub(b, a), d);
    if (d != 0) {
      EXPECT_TRUE(mac::seq_less(a, b));
      EXPECT_FALSE(mac::seq_less(b, a));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqSpaceProperty, ::testing::Range(0, 5));

// --- end-to-end degradation ordering -------------------------------------------

TEST(Degradation, ThroughputMonotoneInBackhaulQuality) {
  // More backhaul loss can only hurt. (Monotonicity with slack: separate
  // seeds would add noise, so the same world is reused and we allow a
  // small tolerance for stochastic MAC draws.)
  auto run_with_loss = [](double loss) {
    net::reset_packet_uids();
    scenario::WgttSystemConfig cfg;
    cfg.geometry.seed = 305;
    cfg.backhaul.loss_rate = loss;
    scenario::WgttSystem sys(cfg);
    mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
    const int c = sys.add_client(&drive);
    sys.start();
    transport::UdpSink sink;
    sys.client(c).on_downlink = [&](const net::Packet& p) {
      sink.on_packet(sys.now(), p);
    };
    transport::UdpSource src(
        sys.sched(),
        [&](net::Packet p) {
          p.client = net::ClientId{0};
          sys.server_send(std::move(p));
        },
        {.rate_mbps = 20.0, .client = net::ClientId{0}});
    src.start();
    sys.run_until(Time::sec(9));
    return sink.throughput().average_mbps(Time::sec(1), Time::sec(9));
  };
  const double clean = run_with_loss(0.0);
  const double lossy = run_with_loss(0.35);
  EXPECT_GT(clean, lossy * 1.1);
}

TEST(Degradation, MultiChannelScanningCostsAreBounded) {
  // The §7 multi-channel extension: reuse > 1 must still deliver a usable
  // stream (scan dead-air and retunes degrade, not destroy).
  auto run_reuse = [](int reuse) {
    net::reset_packet_uids();
    scenario::WgttSystemConfig cfg;
    cfg.geometry.seed = 307;
    cfg.channel_reuse = reuse;
    scenario::WgttSystem sys(cfg);
    mobility::LineDrive drive(-10.0, 0.0, mph_to_mps(15.0));
    const int c = sys.add_client(&drive);
    sys.start();
    transport::UdpSink sink;
    sys.client(c).on_downlink = [&](const net::Packet& p) {
      sink.on_packet(sys.now(), p);
    };
    transport::UdpSource src(
        sys.sched(),
        [&](net::Packet p) {
          p.client = net::ClientId{0};
          sys.server_send(std::move(p));
        },
        {.rate_mbps = 20.0, .client = net::ClientId{0}});
    src.start();
    sys.run_until(Time::sec(9));
    return sink.throughput().average_mbps(Time::sec(2), Time::sec(9));
  };
  const double single = run_reuse(1);
  const double multi = run_reuse(3);
  EXPECT_GT(single, 5.0);
  EXPECT_GT(multi, 2.0);  // degraded but functional
}

}  // namespace
}  // namespace wgtt
